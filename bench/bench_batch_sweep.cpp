// Ablation A2 (paper §VI-A): the batched IOV method's B parameter -- how
// many operations are issued per lock epoch. B = 0 (unlimited, the paper's
// default) amortizes the epoch overhead best, but platforms whose per-epoch
// op queues degrade superlinearly (MVAPICH2) favor intermediate B.

#include <benchmark/benchmark.h>

#include "bench/common.hpp"

namespace {

void register_all() {
  for (mpisim::Platform plat :
       {mpisim::Platform::infiniband, mpisim::Platform::cray_xt5}) {
    for (std::size_t limit : {std::size_t{1}, std::size_t{4}, std::size_t{16},
                              std::size_t{64}, std::size_t{256},
                              std::size_t{0}}) {
      std::string name = std::string("BatchSweep/") +
                         mpisim::platform_id(plat) + "/B:" +
                         (limit == 0 ? "unlimited" : std::to_string(limit));
      benchmark::RegisterBenchmark(
          name.c_str(),
          [plat, limit](benchmark::State& st) {
            const std::size_t seg = 1024, nseg = 512;
            double gibps = 0.0;
            for (auto _ : st) {
              gibps = bench::strided_bw(plat, bench::StridedImpl::iov_batched,
                                        bench::Xfer::put, seg, nseg, limit);
              st.SetIterationTime(static_cast<double>(seg * nseg) /
                                  (gibps * bench::kGiB));
            }
            st.counters["GiB/s"] = gibps;
          })
          ->UseManualTime()
          ->Iterations(1)
          ->Unit(benchmark::kMicrosecond);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  bench::write_report("bench_batch_sweep");
  benchmark::Shutdown();
  return 0;
}
