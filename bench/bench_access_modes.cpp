// Ablation A4 (paper §VIII-A): GA/ARMCI access-mode hints. By default
// every ARMCI-MPI operation takes an exclusive epoch, serializing all
// origins targeting one process; declaring an allocation accumulate_only
// (or read_only) lets concurrent operations use shared epochs. Measured as
// total virtual time for N ranks each issuing accumulates (or gets) to one
// hot target.

#include <benchmark/benchmark.h>

#include "bench/common.hpp"
#include "src/mpisim/comm.hpp"

namespace {

double hot_target_seconds(armci::AccessMode mode, bench::Xfer op, int nranks,
                          std::size_t bytes, int iters) {
  double result = 0.0;
  mpisim::Config cfg;
  cfg.nranks = nranks;
  cfg.platform = mpisim::Platform::infiniband;
  mpisim::run(cfg, [&] {
    armci::Options o;
    o.backend = armci::Backend::mpi;
    o.metrics = true;
    o.trace = true;
    armci::init(o);
    std::vector<void*> bases = armci::malloc_world(bytes);
    armci::set_access_mode(mode,
                           bases[static_cast<std::size_t>(mpisim::rank())]);
    auto* local = static_cast<double*>(armci::malloc_local(bytes));
    for (std::size_t i = 0; i < bytes / 8; ++i) local[i] = 1.0;
    armci::barrier();
    const double one = 1.0;
    const double t0 = mpisim::clock().now_ns();
    for (int i = 0; i < iters; ++i) {
      if (op == bench::Xfer::acc)
        armci::acc(armci::AccType::float64, &one, local, bases[0], bytes, 0);
      else
        armci::get(bases[0], local, bytes, 0);
    }
    armci::barrier();
    const double mine = (mpisim::clock().now_ns() - t0) * 1e-9;
    double max_s = 0.0;
    mpisim::world().allreduce(&mine, &max_s, 1, mpisim::BasicType::float64,
                              mpisim::Op::max);
    if (mpisim::rank() == 0) result = max_s;
    bench::Reporter::instance().capture_rank();
    armci::free_local(local);
    armci::free(bases[static_cast<std::size_t>(mpisim::rank())]);
    armci::finalize();
  });
  return result;
}

void register_all() {
  struct Case {
    const char* name;
    armci::AccessMode mode;
    bench::Xfer op;
  };
  const Case cases[] = {
      {"acc/exclusive", armci::AccessMode::exclusive, bench::Xfer::acc},
      {"acc/accumulate_only", armci::AccessMode::accumulate_only,
       bench::Xfer::acc},
      {"get/exclusive", armci::AccessMode::exclusive, bench::Xfer::get},
      {"get/read_only", armci::AccessMode::read_only, bench::Xfer::get},
  };
  for (const Case& c : cases) {
    for (int nranks : {2, 4, 8, 16}) {
      std::string name = std::string("AccessModes/") + c.name +
                         "/ranks:" + std::to_string(nranks);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [c, nranks, name](benchmark::State& st) {
            double secs = 0.0;
            for (auto _ : st) {
              secs = hot_target_seconds(c.mode, c.op, nranks, 64 << 10, 8);
              st.SetIterationTime(secs);
            }
            st.counters["seconds"] = secs;
            bench::Reporter::instance().add_point(name, secs, "s");
          })
          ->UseManualTime()
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  bench::write_report("bench_access_modes");
  benchmark::Shutdown();
  return 0;
}
