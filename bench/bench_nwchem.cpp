// Figure 6 reproduction: NWChem CCSD and (T) execution time for
// ARMCI-Native vs ARMCI-MPI, scaling over process counts, on all four
// platform profiles.
//
// The workload is the CCSD(T) proxy on a scaled-down water-pentamer
// problem (DESIGN.md §2): tile get -> contract (modeled DGEMM time) ->
// tile accumulate, dynamically load-balanced through a shared counter,
// followed by the get-heavy perturbative-triples phase. Reported times are
// virtual minutes; the figure's content is the Native-vs-MPI comparison
// and the scaling trend, not absolute minutes.

#include <benchmark/benchmark.h>

#include "bench/common.hpp"
#include "src/nwproxy/ccsd.hpp"

namespace {

/// Scaled w5 problem (paper: no=20, nv=435): small enough to simulate,
/// large enough that tasks outnumber the biggest process count.
nwproxy::CcsdParams bench_params() {
  nwproxy::CcsdParams p;
  p.no = 8;    // 120 (T) triples
  p.nv = 80;   // 6400 amplitude columns -> 25 tiles -> 325 CCSD tasks
  p.tile = 16;
  p.iterations = 1;
  return p;
}

struct NwTimes {
  double ccsd_min = 0.0;
  double t_min = 0.0;
};

NwTimes run_proxy(mpisim::Platform plat, armci::Backend backend, int nranks) {
  NwTimes out;
  mpisim::Config cfg;
  cfg.nranks = nranks;
  cfg.platform = plat;
  mpisim::run(cfg, [&] {
    armci::Options o;
    o.backend = backend;
    armci::init(o);
    nwproxy::Amplitudes t2;
    nwproxy::PhaseResult ccsd = nwproxy::run_ccsd(bench_params(), t2);
    nwproxy::PhaseResult tr = nwproxy::run_triples(bench_params(), t2);
    if (mpisim::rank() == 0) {
      out.ccsd_min = ccsd.virtual_seconds / 60.0;
      out.t_min = tr.virtual_seconds / 60.0;
    }
    t2.destroy();
    armci::finalize();
  });
  return out;
}

void register_all() {
  for (mpisim::Platform plat : mpisim::kPaperPlatforms) {
    for (auto backend : {armci::Backend::native, armci::Backend::mpi}) {
      for (int nranks : {4, 8, 16, 32, 64}) {
        std::string name =
            std::string("Fig6/") + mpisim::platform_id(plat) + "/" +
            (backend == armci::Backend::mpi ? "ARMCI-MPI" : "ARMCI-Native") +
            "/ranks:" + std::to_string(nranks);
        benchmark::RegisterBenchmark(
            name.c_str(),
            [plat, backend, nranks, name](benchmark::State& st) {
              NwTimes t{};
              for (auto _ : st) {
                t = run_proxy(plat, backend, nranks);
                st.SetIterationTime(t.ccsd_min * 60.0 + t.t_min * 60.0);
              }
              st.counters["CCSD_min"] = t.ccsd_min;
              st.counters["T_min"] = t.t_min;
              st.counters["ranks"] = nranks;
              bench::Reporter::instance().add_point(name + "/ccsd", t.ccsd_min,
                                                    "min");
              bench::Reporter::instance().add_point(name + "/triples", t.t_min,
                                                    "min");
            })
            ->UseManualTime()
            ->Iterations(1)
            ->Unit(benchmark::kSecond);
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  bench::write_report("bench_nwchem");
  benchmark::Shutdown();
  return 0;
}
