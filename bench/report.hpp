#ifndef BENCH_REPORT_HPP
#define BENCH_REPORT_HPP

/// \file report.hpp
/// Machine-readable results for the benchmark binaries.
///
/// Every measurement point is recorded into a process-wide Reporter; each
/// bench main() calls write_report() at exit to produce
///   results/<bench>.json        -- all points, each with its per-rank
///                                  armci metrics documents (schema
///                                  armci-bench-v1)
///   results/<bench>.trace.json  -- Chrome trace_event document of the
///                                  *last* captured point (one virtual-time
///                                  track per rank); load in
///                                  chrome://tracing or Perfetto.
///
/// Harnesses that run a simulation have each rank call capture_rank()
/// while ARMCI is still initialized; the driving thread then closes the
/// point with add_point() after mpisim::run() returns. Points without a
/// capture (pure-CPU benches) simply carry an empty "ranks" array.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/armci/armci.hpp"
#include "src/mpisim/runtime.hpp"
#include "src/mpisim/trace.hpp"

namespace bench {

class Reporter {
 public:
  static Reporter& instance() {
    static Reporter r;
    return r;
  }

  /// Snapshot the calling rank's metrics + trace events for the point in
  /// flight. Call from inside the simulation, before armci::finalize().
  void capture_rank() {
    std::string json = armci::metrics_json();
    mpisim::RankTrace rt;
    rt.rank = mpisim::rank();
    rt.events = mpisim::tracer().events();
    std::lock_guard lk(mu_);
    current_ranks_.push_back(std::move(json));
    current_traces_.push_back(std::move(rt));
  }

  /// Close the point in flight, attaching whatever the ranks captured.
  void add_point(std::string name, double value, const char* unit) {
    std::lock_guard lk(mu_);
    Point p;
    p.name = std::move(name);
    p.value = value;
    p.unit = unit;
    p.ranks = std::move(current_ranks_);
    current_ranks_.clear();
    if (!current_traces_.empty()) {
      last_traces_ = std::move(current_traces_);
      current_traces_.clear();
    }
    points_.push_back(std::move(p));
  }

  /// Write results/<bench_name>.json (+ .trace.json when any point traced).
  bool write(const std::string& bench_name) {
    std::lock_guard lk(mu_);
    std::error_code ec;
    std::filesystem::create_directories("results", ec);
    if (ec) return false;

    std::string doc = "{\"schema\":\"armci-bench-v1\",\"bench\":\"" +
                      escape(bench_name) + "\",\"points\":[";
    for (std::size_t i = 0; i < points_.size(); ++i) {
      const Point& p = points_[i];
      if (i != 0) doc += ',';
      char num[64];
      std::snprintf(num, sizeof num, "%.6g", p.value);
      doc += "{\"name\":\"" + escape(p.name) + "\",\"value\":" + num +
             ",\"unit\":\"" + escape(p.unit) + "\",\"ranks\":[";
      for (std::size_t r = 0; r < p.ranks.size(); ++r) {
        if (r != 0) doc += ',';
        doc += p.ranks[r];  // already a JSON object (armci::metrics_json)
      }
      doc += "]}";
    }
    doc += "]}";
    if (!dump("results/" + bench_name + ".json", doc)) return false;

    if (!last_traces_.empty()) {
      // Ranks finish in nondeterministic order; sort for stable output.
      std::sort(last_traces_.begin(), last_traces_.end(),
                [](const mpisim::RankTrace& a, const mpisim::RankTrace& b) {
                  return a.rank < b.rank;
                });
      if (!dump("results/" + bench_name + ".trace.json",
                mpisim::chrome_trace_json(last_traces_)))
        return false;
    }
    return true;
  }

 private:
  struct Point {
    std::string name;
    double value = 0.0;
    std::string unit;
    std::vector<std::string> ranks;
  };

  static std::string escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out;
  }

  static bool dump(const std::string& path, const std::string& content) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    const std::size_t n = std::fwrite(content.data(), 1, content.size(), f);
    return std::fclose(f) == 0 && n == content.size();
  }

  std::mutex mu_;
  std::vector<Point> points_;
  std::vector<std::string> current_ranks_;
  std::vector<mpisim::RankTrace> current_traces_;
  std::vector<mpisim::RankTrace> last_traces_;
};

/// Bench main() epilogue: flush the report files, warn on failure.
inline void write_report(const char* bench_name) {
  if (!Reporter::instance().write(bench_name))
    std::fprintf(stderr, "warning: could not write results/%s.json\n",
                 bench_name);
}

}  // namespace bench

#endif  // BENCH_REPORT_HPP
