// Ablation A3 (paper §V-D): mutex scalability under contention -- the
// Latham et al. MPI-RMA queueing mutex (blocked waiters sleep on a message;
// the unlock forwards the lock fairly) versus the native CHT-serviced
// mutex, measured as virtual time per lock/unlock pair while all ranks
// hammer one mutex.

#include <benchmark/benchmark.h>

#include "bench/common.hpp"
#include "src/mpisim/comm.hpp"

namespace {

double mutex_us_per_pair(mpisim::Platform plat, armci::Backend backend,
                         int nranks, int iters) {
  double result = 0.0;
  mpisim::Config cfg;
  cfg.nranks = nranks;
  cfg.platform = plat;
  mpisim::run(cfg, [&] {
    armci::Options o;
    o.backend = backend;
    o.metrics = true;
    o.trace = true;
    armci::init(o);
    armci::create_mutexes(1);
    armci::barrier();
    const double t0 = mpisim::clock().now_ns();
    for (int i = 0; i < iters; ++i) {
      armci::lock(0, 0);
      armci::unlock(0, 0);
    }
    armci::barrier();
    const double mine = (mpisim::clock().now_ns() - t0) * 1e-3 /
                        (iters * nranks);
    double max_us = 0.0;
    mpisim::world().allreduce(&mine, &max_us, 1, mpisim::BasicType::float64,
                              mpisim::Op::max);
    if (mpisim::rank() == 0) result = max_us;
    armci::barrier();
    bench::Reporter::instance().capture_rank();
    armci::destroy_mutexes();
    armci::finalize();
  });
  return result;
}

void register_all() {
  for (auto backend : {armci::Backend::mpi, armci::Backend::native}) {
    for (int nranks : {2, 4, 8, 16}) {
      std::string name =
          std::string("MutexContention/") +
          (backend == armci::Backend::mpi ? "Queueing-MPI" : "Native-CHT") +
          "/ranks:" + std::to_string(nranks);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [backend, nranks, name](benchmark::State& st) {
            double us = 0.0;
            for (auto _ : st) {
              us = mutex_us_per_pair(mpisim::Platform::infiniband, backend,
                                     nranks, 16);
              st.SetIterationTime(us * 1e-6);
            }
            st.counters["us_per_lock"] = us;
            bench::Reporter::instance().add_point(name, us, "us_per_lock");
          })
          ->UseManualTime()
          ->Iterations(1)
          ->Unit(benchmark::kMicrosecond);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  bench::write_report("bench_mutex");
  benchmark::Shutdown();
  return 0;
}
