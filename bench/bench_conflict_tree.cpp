// Ablation A1 (paper §VI-B): IOV overlap detection cost -- the AVL
// conflict tree's O(N log N) check-and-insert versus the naive O(N^2)
// pairwise scan, over descriptor sizes up to NWChem scale (hundreds of
// thousands of segments). This is a real-wall-clock benchmark: the scan is
// local CPU work, not modeled communication.

#include <benchmark/benchmark.h>

#include <chrono>
#include <random>
#include <string>
#include <vector>

#include "bench/report.hpp"
#include "src/armci/iov.hpp"

namespace {

/// Record approximate wall time per iteration into the bench report (the
/// precise statistics remain google-benchmark's console/JSON output).
class WallPoint {
 public:
  WallPoint(const char* what, std::size_t n)
      : name_(std::string(what) + "/n:" + std::to_string(n)),
        start_(std::chrono::steady_clock::now()) {}

  void close(benchmark::IterationCount iters) {
    const std::chrono::duration<double> secs =
        std::chrono::steady_clock::now() - start_;
    if (iters > 0)
      bench::Reporter::instance().add_point(
          name_, secs.count() / static_cast<double>(iters), "s_per_iter");
  }

 private:
  std::string name_;
  std::chrono::steady_clock::time_point start_;
};

std::vector<const void*> make_segments(std::size_t n, std::size_t bytes,
                                       bool shuffled) {
  std::vector<const void*> ptrs(n);
  for (std::size_t i = 0; i < n; ++i)
    ptrs[i] = reinterpret_cast<const void*>(0x100000 + i * bytes * 2);
  if (shuffled) {
    std::mt19937_64 rng(12345);
    std::shuffle(ptrs.begin(), ptrs.end(), rng);
  }
  return ptrs;
}

void BM_ConflictTree(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t bytes = 64;
  const auto ptrs = make_segments(n, bytes, /*shuffled=*/true);
  WallPoint point("ConflictTree", n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(armci::iov_has_overlap(ptrs, bytes));
  }
  point.close(state.iterations());
  state.SetComplexityN(state.range(0));
}

void BM_NaiveScan(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t bytes = 64;
  const auto ptrs = make_segments(n, bytes, /*shuffled=*/true);
  WallPoint point("NaiveScan", n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(armci::iov_has_overlap_naive(ptrs, bytes));
  }
  point.close(state.iterations());
  state.SetComplexityN(state.range(0));
}

// Sorted (in-order) insertion: the adversarial case a non-balancing tree
// degrades on; the AVL tree must stay logarithmic.
void BM_ConflictTreeSorted(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t bytes = 64;
  const auto ptrs = make_segments(n, bytes, /*shuffled=*/false);
  WallPoint point("ConflictTreeSorted", n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(armci::iov_has_overlap(ptrs, bytes));
  }
  point.close(state.iterations());
  state.SetComplexityN(state.range(0));
}

}  // namespace

BENCHMARK(BM_ConflictTree)->RangeMultiplier(4)->Range(16, 1 << 17)
    ->Complexity(benchmark::oNLogN);
BENCHMARK(BM_ConflictTreeSorted)->RangeMultiplier(4)->Range(16, 1 << 17)
    ->Complexity(benchmark::oNLogN);
// The naive scan is capped at 2^13 segments; beyond that the quadratic cost
// dominates the whole benchmark run (that is the point of the ablation).
BENCHMARK(BM_NaiveScan)->RangeMultiplier(4)->Range(16, 1 << 13)
    ->Complexity(benchmark::oNSquared);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  bench::write_report("bench_conflict_tree");
  benchmark::Shutdown();
  return 0;
}
