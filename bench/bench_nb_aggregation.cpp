// Nonblocking-op aggregation ablation: queue depth x message size, blocking
// one-epoch-per-op versus deferred nb_* ops coalesced into one epoch per
// (allocation, target) queue at wait_all. On the MPI-2 backend each blocking
// put pays a full exclusive lock/unlock round trip, so at depth d the
// coalesced path opens d times fewer epochs; the MPI-3 backend batches the
// queue under its standing lock_all and saves per-op flushes instead.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstring>

#include "bench/common.hpp"
#include "src/mpisim/trace.hpp"

namespace {

/// Lock/unlock synchronization epochs rank 0 opened, over every window.
std::uint64_t lock_epoch_total() {
  std::uint64_t n = 0;
  for (const auto& [id, ws] : mpisim::tracer().win_stats())
    n += ws.exclusive_locks + ws.shared_locks;
  return n;
}

struct NbPoint {
  double us = 0.0;           // virtual time per round of `depth` transfers
  std::uint64_t epochs = 0;  // lock epochs per round
};

/// Rank 0 moves `depth` buffers of `bytes` each to disjoint slots on rank 1,
/// either with blocking puts or with deferred nb_puts completed by one
/// wait_all; returns per-round virtual time and epoch count.
NbPoint nb_sweep(mpisim::Platform plat, armci::Backend backend,
                 std::size_t depth, std::size_t bytes, bool coalesced,
                 int reps = 8) {
  NbPoint res;
  mpisim::Config cfg;
  cfg.nranks = 2;
  cfg.platform = plat;
  mpisim::run(cfg, [&] {
    armci::Options o;
    o.backend = backend;
    o.metrics = true;
    o.trace = true;
    armci::init(o);
    std::vector<void*> bases = armci::malloc_world(depth * bytes);
    auto* local =
        static_cast<std::uint8_t*>(armci::malloc_local(depth * bytes));
    std::memset(local, 5, depth * bytes);
    armci::barrier();
    if (mpisim::rank() == 0) {
      char* rbase = static_cast<char*>(bases[1]);
      auto round = [&] {
        if (coalesced) {
          for (std::size_t i = 0; i < depth; ++i)
            armci::nb_put(local + i * bytes, rbase + i * bytes, bytes, 1);
          armci::wait_all();
        } else {
          for (std::size_t i = 0; i < depth; ++i)
            armci::put(local + i * bytes, rbase + i * bytes, bytes, 1);
        }
      };
      round();  // warm-up (registration, allocation effects)
      const std::uint64_t epochs0 = lock_epoch_total();
      const double t0 = mpisim::clock().now_ns();
      for (int r = 0; r < reps; ++r) round();
      res.us = (mpisim::clock().now_ns() - t0) * 1e-3 / reps;
      res.epochs = (lock_epoch_total() - epochs0) / static_cast<unsigned>(reps);
    }
    armci::barrier();
    bench::Reporter::instance().capture_rank();
    armci::free_local(local);
    armci::free(bases[static_cast<std::size_t>(mpisim::rank())]);
    armci::finalize();
  });
  return res;
}

void register_all() {
  const mpisim::Platform plat = mpisim::Platform::infiniband;
  for (armci::Backend backend : {armci::Backend::mpi, armci::Backend::mpi3}) {
    for (std::size_t depth : {std::size_t{4}, std::size_t{8},
                              std::size_t{32}}) {
      for (std::size_t bytes : {std::size_t{64}, std::size_t{4096}}) {
        for (bool coalesced : {false, true}) {
          std::string name = std::string("NbAgg/") + mpisim::platform_id(plat) +
                             "/" + bench::backend_name(backend) + "/" +
                             (coalesced ? "coalesced" : "blocking") + "/d" +
                             std::to_string(depth) + "/b" +
                             std::to_string(bytes);
          benchmark::RegisterBenchmark(
              name.c_str(),
              [=](benchmark::State& st) {
                NbPoint p;
                for (auto _ : st) {
                  p = nb_sweep(plat, backend, depth, bytes, coalesced);
                  st.SetIterationTime(p.us * 1e-6);
                }
                st.counters["epochs"] = static_cast<double>(p.epochs);
                bench::Reporter::instance().add_point(name + "/us", p.us,
                                                      "us");
                bench::Reporter::instance().add_point(
                    name + "/epochs", static_cast<double>(p.epochs),
                    "epochs");
              })
              ->UseManualTime()
              ->Iterations(1)
              ->Unit(benchmark::kMicrosecond);
        }
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  bench::write_report("bench_nb_aggregation");
  benchmark::Shutdown();
  return 0;
}
