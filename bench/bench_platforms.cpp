// Table II reproduction: the experimental platforms and their system
// characteristics, printed alongside the calibrated cost-model parameters,
// plus microbenchmarks of the primitive model costs (lock/unlock epoch
// overhead, small-message latency) on each platform.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/common.hpp"
#include "src/mpisim/netmodel.hpp"

namespace {

void print_table_ii() {
  std::printf("\nTable II: Experimental platforms and system characteristics\n");
  std::printf("%-28s %7s %10s %10s %-16s %-14s\n", "System", "Nodes",
              "Cores/Node", "Mem/Node", "Interconnect", "MPI Version");
  for (mpisim::Platform p : mpisim::kPaperPlatforms) {
    const auto& prof = mpisim::platform_profile(p);
    char cores[32];
    std::snprintf(cores, sizeof cores, "%d x %d", prof.sockets_per_node,
                  prof.cores_per_socket);
    char mem[32];
    std::snprintf(mem, sizeof mem, "%.0f GB", prof.memory_per_node_gb);
    std::printf("%-28s %7d %10s %10s %-16s %-14s\n", prof.name.c_str(),
                prof.nodes, cores, mem, prof.interconnect.c_str(),
                prof.mpi_version.c_str());
  }
  std::printf("\nCalibrated model parameters (see DESIGN.md):\n");
  std::printf("%-8s %8s %8s %9s %9s %9s %9s %9s\n", "id", "lat(us)",
              "bw(GiB/s)", "mpi_bw", "mpi_acc", "nat_bw", "nat_acc",
              "GF/core");
  for (mpisim::Platform p : mpisim::kPaperPlatforms) {
    const auto& prof = mpisim::platform_profile(p);
    std::printf("%-8s %8.1f %8.2f %9.2f %9.2f %9.2f %9.2f %9.1f\n",
                mpisim::platform_id(p), prof.net_latency_us, prof.net_bw_gbps,
                prof.mpi_bw_eff, prof.mpi_acc_eff, prof.nat_bw_eff,
                prof.nat_acc_eff, prof.dgemm_gflops);
  }
  std::printf("\n");
}

/// Virtual cost of one empty exclusive epoch (lock+unlock) on rank 1.
double epoch_overhead_us(mpisim::Platform plat) {
  double result = 0.0;
  mpisim::Config cfg;
  cfg.nranks = 2;
  cfg.platform = plat;
  mpisim::run(cfg, [&] {
    armci::init({});
    std::vector<void*> bases = armci::malloc_world(64);
    armci::barrier();
    if (mpisim::rank() == 0) {
      const int reps = 32;
      char v = 1;
      const double t0 = mpisim::clock().now_ns();
      for (int r = 0; r < reps; ++r) armci::put(&v, bases[1], 1, 1);
      result = (mpisim::clock().now_ns() - t0) * 1e-3 / reps;
    }
    armci::barrier();
    armci::free(bases[static_cast<std::size_t>(mpisim::rank())]);
    armci::finalize();
  });
  return result;
}

void register_all() {
  for (mpisim::Platform plat : mpisim::kPaperPlatforms) {
    std::string name =
        std::string("TableII/small_put_us/") + mpisim::platform_id(plat);
    benchmark::RegisterBenchmark(
        name.c_str(),
        [plat, name](benchmark::State& st) {
          double us = 0.0;
          for (auto _ : st) {
            us = epoch_overhead_us(plat);
            st.SetIterationTime(us * 1e-6);
          }
          st.counters["usec"] = us;
          bench::Reporter::instance().add_point(name, us, "us");
        })
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(benchmark::kMicrosecond);
  }
}

}  // namespace

int main(int argc, char** argv) {
  print_table_ii();
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  bench::write_report("bench_platforms");
  benchmark::Shutdown();
  return 0;
}
