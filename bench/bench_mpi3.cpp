// Ablation A5 (paper §VIII-B, implemented): ARMCI over MPI-3 RMA versus
// the paper's MPI-2 implementation and the native baseline.
//
// Quantifies each §VIII-B item:
//  - small-operation latency: MPI-3 drops the per-op lock/unlock epoch;
//  - pipelined puts: operations between flushes pay wire latency once;
//  - read-modify-write: MPI_Fetch_and_op vs mutex + two exclusive epochs;
//  - hot-target throughput: shared lock_all epochs remove the target-side
//    exclusive-epoch serialization;
//  - the CCSD proxy end-to-end on all three backends.

#include <benchmark/benchmark.h>

#include "bench/common.hpp"
#include "src/mpisim/comm.hpp"
#include "src/nwproxy/ccsd.hpp"

namespace {

const char* backend_name(armci::Backend b) {
  switch (b) {
    case armci::Backend::mpi: return "MPI-2";
    case armci::Backend::mpi3: return "MPI-3";
    case armci::Backend::native: return "Native";
  }
  return "?";
}

constexpr armci::Backend kAll[] = {armci::Backend::mpi, armci::Backend::mpi3,
                                   armci::Backend::native};

/// Virtual microseconds per 8-byte put (small-op latency).
double small_put_us(armci::Backend b) {
  double result = 0.0;
  mpisim::Config cfg;
  cfg.nranks = 2;
  cfg.platform = mpisim::Platform::infiniband;
  mpisim::run(cfg, [&] {
    armci::Options o;
    o.backend = b;
    armci::init(o);
    std::vector<void*> bases = armci::malloc_world(64);
    armci::barrier();
    if (mpisim::rank() == 0) {
      const int reps = 64;
      double v = 1.0;
      armci::put(&v, bases[1], sizeof v, 1);
      const double t0 = mpisim::clock().now_ns();
      for (int i = 0; i < reps; ++i) armci::put(&v, bases[1], sizeof v, 1);
      armci::fence(1);
      result = (mpisim::clock().now_ns() - t0) * 1e-3 / reps;
    }
    armci::barrier();
    armci::free(bases[static_cast<std::size_t>(mpisim::rank())]);
    armci::finalize();
  });
  return result;
}

/// Virtual microseconds per fetch-and-add under contention.
double rmw_us(armci::Backend b, int nranks) {
  double result = 0.0;
  mpisim::Config cfg;
  cfg.nranks = nranks;
  cfg.platform = mpisim::Platform::infiniband;
  mpisim::run(cfg, [&] {
    armci::Options o;
    o.backend = b;
    armci::init(o);
    std::vector<void*> bases =
        armci::malloc_world(mpisim::rank() == 0 ? 8 : 0);
    armci::barrier();
    const int reps = 16;
    const double t0 = mpisim::clock().now_ns();
    for (int i = 0; i < reps; ++i) {
      std::int64_t old = 0;
      armci::rmw(armci::RmwOp::fetch_and_add_long, &old, bases[0], 1, 0);
    }
    armci::barrier();
    const double mine = (mpisim::clock().now_ns() - t0) * 1e-3 / reps;
    double max_us = 0.0;
    mpisim::world().allreduce(&mine, &max_us, 1, mpisim::BasicType::float64,
                              mpisim::Op::max);
    if (mpisim::rank() == 0) result = max_us;
    armci::free(bases[static_cast<std::size_t>(mpisim::rank())]);
    armci::finalize();
  });
  return result;
}

/// Total virtual ms for N ranks accumulating 64 KiB to one hot target.
double hot_acc_ms(armci::Backend b, int nranks) {
  double result = 0.0;
  mpisim::Config cfg;
  cfg.nranks = nranks;
  cfg.platform = mpisim::Platform::infiniband;
  mpisim::run(cfg, [&] {
    armci::Options o;
    o.backend = b;
    armci::init(o);
    const std::size_t bytes = 64 << 10;
    std::vector<void*> bases = armci::malloc_world(bytes);
    auto* local = static_cast<double*>(armci::malloc_local(bytes));
    for (std::size_t i = 0; i < bytes / 8; ++i) local[i] = 1.0;
    armci::barrier();
    const double one = 1.0;
    const double t0 = mpisim::clock().now_ns();
    for (int i = 0; i < 8; ++i)
      armci::acc(armci::AccType::float64, &one, local, bases[0], bytes, 0);
    armci::barrier();
    const double mine = (mpisim::clock().now_ns() - t0) * 1e-6;
    double max_ms = 0.0;
    mpisim::world().allreduce(&mine, &max_ms, 1, mpisim::BasicType::float64,
                              mpisim::Op::max);
    if (mpisim::rank() == 0) result = max_ms;
    armci::free_local(local);
    armci::free(bases[static_cast<std::size_t>(mpisim::rank())]);
    armci::finalize();
  });
  return result;
}

/// CCSD proxy time (virtual seconds).
double ccsd_s(armci::Backend b, int nranks) {
  double result = 0.0;
  mpisim::Config cfg;
  cfg.nranks = nranks;
  cfg.platform = mpisim::Platform::infiniband;
  mpisim::run(cfg, [&] {
    armci::Options o;
    o.backend = b;
    armci::init(o);
    nwproxy::CcsdParams p;
    p.no = 6;
    p.nv = 48;
    p.tile = 12;
    p.iterations = 1;
    nwproxy::Amplitudes t2;
    nwproxy::PhaseResult r = nwproxy::run_ccsd(p, t2);
    if (mpisim::rank() == 0) result = r.virtual_seconds;
    t2.destroy();
    armci::finalize();
  });
  return result;
}

void register_all() {
  for (armci::Backend b : kAll) {
    const std::string put_name =
        std::string("Mpi3/small_put_us/") + backend_name(b);
    benchmark::RegisterBenchmark(
        put_name.c_str(),
        [b, put_name](benchmark::State& st) {
          double us = 0.0;
          for (auto _ : st) {
            us = small_put_us(b);
            st.SetIterationTime(us * 1e-6);
          }
          st.counters["usec"] = us;
          bench::Reporter::instance().add_point(put_name, us, "us");
        })
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(benchmark::kMicrosecond);

    for (int nranks : {2, 8}) {
      const std::string rmw_name = std::string("Mpi3/rmw_us/") +
                                   backend_name(b) +
                                   "/ranks:" + std::to_string(nranks);
      benchmark::RegisterBenchmark(
          rmw_name.c_str(),
          [b, nranks, rmw_name](benchmark::State& st) {
            double us = 0.0;
            for (auto _ : st) {
              us = rmw_us(b, nranks);
              st.SetIterationTime(us * 1e-6);
            }
            st.counters["usec"] = us;
            bench::Reporter::instance().add_point(rmw_name, us, "us");
          })
          ->UseManualTime()
          ->Iterations(1)
          ->Unit(benchmark::kMicrosecond);
    }

    for (int nranks : {2, 16}) {
      const std::string hot_name = std::string("Mpi3/hot_acc_ms/") +
                                   backend_name(b) +
                                   "/ranks:" + std::to_string(nranks);
      benchmark::RegisterBenchmark(
          hot_name.c_str(),
          [b, nranks, hot_name](benchmark::State& st) {
            double ms = 0.0;
            for (auto _ : st) {
              ms = hot_acc_ms(b, nranks);
              st.SetIterationTime(ms * 1e-3);
            }
            st.counters["ms"] = ms;
            bench::Reporter::instance().add_point(hot_name, ms, "ms");
          })
          ->UseManualTime()
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }

    for (int nranks : {8, 32}) {
      const std::string ccsd_name = std::string("Mpi3/ccsd_s/") +
                                    backend_name(b) +
                                    "/ranks:" + std::to_string(nranks);
      benchmark::RegisterBenchmark(
          ccsd_name.c_str(),
          [b, nranks, ccsd_name](benchmark::State& st) {
            double s = 0.0;
            for (auto _ : st) {
              s = ccsd_s(b, nranks);
              st.SetIterationTime(s);
            }
            st.counters["seconds"] = s;
            bench::Reporter::instance().add_point(ccsd_name, s, "s");
          })
          ->UseManualTime()
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  bench::write_report("bench_mpi3");
  benchmark::Shutdown();
  return 0;
}
