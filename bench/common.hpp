#ifndef BENCH_COMMON_HPP
#define BENCH_COMMON_HPP

/// \file common.hpp
/// Shared measurement harnesses for the paper-reproduction benchmarks.
///
/// All communication performance is *virtual time* from the simulator's
/// platform cost model (deterministic, independent of host load); the
/// harnesses run a small simulation, time an operation loop on rank 0's
/// virtual clock, and return the achieved bandwidth or elapsed time.
/// Benchmarks feed these into google-benchmark via manual timing.

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "bench/report.hpp"
#include "src/armci/armci.hpp"
#include "src/mpisim/runtime.hpp"

namespace bench {

inline constexpr double kGiB = 1073741824.0;

inline const char* backend_name(armci::Backend b) {
  switch (b) {
    case armci::Backend::mpi: return "mpi";
    case armci::Backend::native: return "native";
    case armci::Backend::mpi3: return "mpi3";
  }
  return "?";
}

/// Operation selector shared by the bandwidth benchmarks.
enum class Xfer { get, put, acc };

inline const char* xfer_name(Xfer x) {
  switch (x) {
    case Xfer::get: return "get";
    case Xfer::put: return "put";
    case Xfer::acc: return "acc";
  }
  return "?";
}

/// Contiguous bandwidth (paper Fig. 3): rank 0 moves `bytes` to/from rank 1
/// `reps` times; returns GiB/s of virtual bandwidth.
inline double contig_bw(mpisim::Platform plat, armci::Backend backend,
                        Xfer op, std::size_t bytes, int reps = 0) {
  // Virtual time is deterministic, so few repetitions suffice; large
  // transfers use fewer to bound the harness's real memcpy work.
  if (reps == 0) reps = bytes >= (std::size_t{1} << 20) ? 3 : 16;
  double result = 0.0;
  mpisim::Config cfg;
  cfg.nranks = 2;
  cfg.platform = plat;
  mpisim::run(cfg, [&] {
    armci::Options o;
    o.backend = backend;
    o.metrics = true;
    o.trace = true;
    armci::init(o);
    std::vector<void*> bases = armci::malloc_world(bytes);
    auto* local = static_cast<double*>(armci::malloc_local(bytes));
    std::memset(local, 1, bytes);
    armci::barrier();
    if (mpisim::rank() == 0) {
      const double one = 1.0;
      auto issue = [&] {
        switch (op) {
          case Xfer::get: armci::get(bases[1], local, bytes, 1); break;
          case Xfer::put: armci::put(local, bases[1], bytes, 1); break;
          case Xfer::acc:
            armci::acc(armci::AccType::float64, &one, local, bases[1], bytes,
                       1);
            break;
        }
      };
      issue();  // warm-up (registration, allocation effects)
      const double t0 = mpisim::clock().now_ns();
      for (int r = 0; r < reps; ++r) issue();
      const double secs = (mpisim::clock().now_ns() - t0) * 1e-9;
      result = static_cast<double>(bytes) * reps / secs / kGiB;
    }
    armci::barrier();
    Reporter::instance().capture_rank();
    armci::free_local(local);
    armci::free(bases[static_cast<std::size_t>(mpisim::rank())]);
    armci::finalize();
  });
  Reporter::instance().add_point(std::string("contig/") +
                                     mpisim::platform_id(plat) + "/" +
                                     xfer_name(op) + "/" +
                                     backend_name(backend) + "/" +
                                     std::to_string(bytes),
                                 result, "GiB/s");
  return result;
}

/// Epoch traffic of the calling rank: lock/lock_all acquisitions plus
/// flushes, over every window. The intra-node direct path must leave this
/// flat while it moves data.
inline std::uint64_t epoch_traffic() {
  std::uint64_t n = 0;
  for (const auto& [id, ws] : mpisim::tracer().win_stats())
    n += ws.exclusive_locks + ws.shared_locks + ws.lock_alls + ws.flushes;
  return n;
}

/// One point of the intra-node vs cross-node curves: latency, bandwidth,
/// and epoch traffic of the timed loop, plus the locality classification
/// counters (armci_ops_same_node / _remote) so the report can prove which
/// path ran.
struct LocalityPoint {
  double us_per_op = 0.0;
  double gibps = 0.0;
  std::uint64_t epoch_ops = 0;
  std::uint64_t ops_same_node = 0;
  std::uint64_t ops_remote = 0;
};

/// Contiguous transfer between two ranks whose node placement is chosen by
/// \p co_located: true pins both on one node (the shared-memory direct path
/// on the MPI-3 backend), false gives each its own node (the lock/flush
/// path). Everything else matches contig_bw.
inline LocalityPoint contig_locality(mpisim::Platform plat,
                                     armci::Backend backend, Xfer op,
                                     std::size_t bytes, bool co_located,
                                     int reps = 0) {
  if (reps == 0) reps = bytes >= (std::size_t{1} << 20) ? 3 : 16;
  LocalityPoint res;
  mpisim::Config cfg;
  cfg.nranks = 2;
  cfg.platform = plat;
  cfg.ranks_per_node = co_located ? 2 : 1;
  mpisim::run(cfg, [&] {
    armci::Options o;
    o.backend = backend;
    o.metrics = true;
    o.trace = true;
    armci::init(o);
    std::vector<void*> bases = armci::malloc_world(bytes);
    auto* local = static_cast<double*>(armci::malloc_local(bytes));
    std::memset(local, 1, bytes);
    armci::barrier();
    if (mpisim::rank() == 0) {
      const double one = 1.0;
      auto issue = [&] {
        switch (op) {
          case Xfer::get: armci::get(bases[1], local, bytes, 1); break;
          case Xfer::put: armci::put(local, bases[1], bytes, 1); break;
          case Xfer::acc:
            armci::acc(armci::AccType::float64, &one, local, bases[1], bytes,
                       1);
            break;
        }
      };
      issue();  // warm-up
      const std::uint64_t epochs0 = epoch_traffic();
      const std::uint64_t same0 = armci::stats().ops_same_node;
      const std::uint64_t remote0 = armci::stats().ops_remote;
      const double t0 = mpisim::clock().now_ns();
      for (int r = 0; r < reps; ++r) issue();
      const double elapsed_ns = mpisim::clock().now_ns() - t0;
      res.us_per_op = elapsed_ns * 1e-3 / reps;
      res.gibps = static_cast<double>(bytes) * reps / (elapsed_ns * 1e-9) /
                  kGiB;
      res.epoch_ops = epoch_traffic() - epochs0;
      res.ops_same_node = armci::stats().ops_same_node - same0;
      res.ops_remote = armci::stats().ops_remote - remote0;
    }
    armci::barrier();
    Reporter::instance().capture_rank();
    armci::free_local(local);
    armci::free(bases[static_cast<std::size_t>(mpisim::rank())]);
    armci::finalize();
  });
  const std::string stem = std::string("locality/") +
                           mpisim::platform_id(plat) + "/" +
                           (co_located ? "intra" : "cross") + "/" +
                           xfer_name(op) + "/" + backend_name(backend) + "/" +
                           std::to_string(bytes);
  Reporter::instance().add_point(stem + "/us", res.us_per_op, "us");
  Reporter::instance().add_point(stem + "/bw", res.gibps, "GiB/s");
  Reporter::instance().add_point(stem + "/epochs",
                                 static_cast<double>(res.epoch_ops),
                                 "epochs");
  return res;
}

/// Strided method selector for Fig. 4 (Native is the native backend; the
/// rest are ARMCI-MPI methods).
enum class StridedImpl { native, direct, iov_direct, iov_batched, iov_consrv };

inline const char* strided_impl_name(StridedImpl m) {
  switch (m) {
    case StridedImpl::native: return "Native";
    case StridedImpl::direct: return "Direct";
    case StridedImpl::iov_direct: return "IOV-Direct";
    case StridedImpl::iov_batched: return "IOV-Batched";
    case StridedImpl::iov_consrv: return "IOV-Consrv";
  }
  return "?";
}

/// Strided bandwidth (paper Fig. 4): `nseg` segments of `seg_bytes`, remote
/// side strided with a 2x pitch, local side packed. Returns GiB/s.
inline double strided_bw(mpisim::Platform plat, StridedImpl impl, Xfer op,
                         std::size_t seg_bytes, std::size_t nseg,
                         std::size_t batch_limit = 0, int reps = 0) {
  if (reps == 0) reps = seg_bytes * nseg >= (std::size_t{1} << 19) ? 3 : 8;
  double result = 0.0;
  mpisim::Config cfg;
  cfg.nranks = 2;
  cfg.platform = plat;
  mpisim::run(cfg, [&] {
    armci::Options o;
    o.backend = impl == StridedImpl::native ? armci::Backend::native
                                            : armci::Backend::mpi;
    switch (impl) {
      case StridedImpl::native:
      case StridedImpl::direct:
        o.strided_method = armci::StridedMethod::direct;
        break;
      case StridedImpl::iov_direct:
        o.strided_method = armci::StridedMethod::iov_direct;
        break;
      case StridedImpl::iov_batched:
        o.strided_method = armci::StridedMethod::iov_batched;
        break;
      case StridedImpl::iov_consrv:
        o.strided_method = armci::StridedMethod::iov_conservative;
        break;
    }
    o.iov_batched_limit = batch_limit;
    o.metrics = true;
    o.trace = true;
    armci::init(o);

    const std::size_t pitch = seg_bytes * 2;
    std::vector<void*> bases = armci::malloc_world(nseg * pitch);
    auto* local = static_cast<std::uint8_t*>(
        armci::malloc_local(nseg * seg_bytes));
    std::memset(local, 3, nseg * seg_bytes);
    armci::barrier();
    if (mpisim::rank() == 0) {
      armci::StridedSpec spec;
      spec.stride_levels = 1;
      spec.count = {seg_bytes, nseg};
      const double one = 1.0;
      auto issue = [&] {
        switch (op) {
          case Xfer::get:
            spec.src_strides = {pitch};
            spec.dst_strides = {seg_bytes};
            armci::get_strided(bases[1], local, spec, 1);
            break;
          case Xfer::put:
            spec.src_strides = {seg_bytes};
            spec.dst_strides = {pitch};
            armci::put_strided(local, bases[1], spec, 1);
            break;
          case Xfer::acc:
            spec.src_strides = {seg_bytes};
            spec.dst_strides = {pitch};
            armci::acc_strided(armci::AccType::float64, &one, local, bases[1],
                               spec, 1);
            break;
        }
      };
      issue();
      const double t0 = mpisim::clock().now_ns();
      for (int r = 0; r < reps; ++r) issue();
      const double secs = (mpisim::clock().now_ns() - t0) * 1e-9;
      result =
          static_cast<double>(seg_bytes * nseg) * reps / secs / kGiB;
    }
    armci::barrier();
    Reporter::instance().capture_rank();
    armci::free_local(local);
    armci::free(bases[static_cast<std::size_t>(mpisim::rank())]);
    armci::finalize();
  });
  Reporter::instance().add_point(
      std::string("strided/") + mpisim::platform_id(plat) + "/" +
          strided_impl_name(impl) + "/" + xfer_name(op) + "/seg" +
          std::to_string(seg_bytes) + "/n" + std::to_string(nseg) + "/B" +
          std::to_string(batch_limit),
      result, "GiB/s");
  return result;
}

}  // namespace bench

#endif  // BENCH_COMMON_HPP
