// Compute/communication overlap ablation for the cooperative progress
// engine (Options::progress, nb.hpp progress_tick): compute grain x message
// size, engine off vs on. Rank 0 issues a batch of nb_gets, charges one
// slab of DGEMM-class compute through SimClock::advance_compute -- which
// fires the rank's progress persona every Config::progress_interval_ns of
// it -- then waits. Engine off, the whole batch drains inside wait() after
// the compute; engine on, ticks inside the compute issue the batch and
// complete it at the target, so the round costs ~max(compute, comm) instead
// of compute + comm. The per-run overlap_efficiency gauge (hidden comm
// time / total tick comm time) is reported next to the round time.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstring>

#include "bench/common.hpp"

namespace {

struct OverlapPoint {
  double us = 0.0;          // virtual time per round
  double efficiency = 0.0;  // Stats::overlap_efficiency over the reps
};

/// One configuration: rank 0 fetches `kDepth` disjoint slots of `bytes`
/// from rank 1 nonblocking, computes for `grain_ns`, completes. Both ranks
/// on distinct nodes so every transfer takes the remote path.
OverlapPoint overlap_sweep(armci::Backend backend, double grain_ns,
                           std::size_t bytes, bool engine, int reps = 8) {
  OverlapPoint res;
  mpisim::Config cfg;
  cfg.nranks = 2;
  cfg.platform = mpisim::Platform::infiniband;
  cfg.ranks_per_node = 1;
  mpisim::run(cfg, [&] {
    armci::Options o;
    o.backend = backend;
    o.metrics = true;
    o.progress = engine;
    armci::init(o);
    constexpr std::size_t kDepth = 8;
    std::vector<void*> bases = armci::malloc_world(kDepth * bytes);
    auto* local =
        static_cast<std::uint8_t*>(armci::malloc_local(kDepth * bytes));
    std::memset(bases[static_cast<std::size_t>(mpisim::rank())], 3,
                kDepth * bytes);
    armci::barrier();
    if (mpisim::rank() == 0) {
      char* rbase = static_cast<char*>(bases[1]);
      auto round = [&] {
        armci::Request req;
        for (std::size_t i = 0; i < kDepth; ++i)
          req.merge(armci::nb_get(rbase + i * bytes, local + i * bytes,
                                  bytes, 1));
        mpisim::clock().advance_compute(grain_ns);
        armci::wait(req);
      };
      round();  // warm-up (registration, allocation effects)
      armci::reset_stats();
      const double t0 = mpisim::clock().now_ns();
      for (int r = 0; r < reps; ++r) round();
      res.us = (mpisim::clock().now_ns() - t0) * 1e-3 / reps;
      res.efficiency = armci::stats().overlap_efficiency();
    }
    armci::barrier();
    bench::Reporter::instance().capture_rank();
    armci::free_local(local);
    armci::free(bases[static_cast<std::size_t>(mpisim::rank())]);
    armci::finalize();
  });
  return res;
}

void register_all() {
  for (armci::Backend backend : {armci::Backend::mpi, armci::Backend::mpi3}) {
    // Grains relative to the 10 us default progress interval: below it
    // (no tick fits), a handful of ticks, and compute-dominated.
    for (double grain : {5'000.0, 50'000.0, 500'000.0}) {
      for (std::size_t bytes : {std::size_t{4096}, std::size_t{65536}}) {
        for (bool engine : {false, true}) {
          std::string name = std::string("Overlap/infiniband/") +
                             bench::backend_name(backend) + "/" +
                             (engine ? "on" : "off") + "/g" +
                             std::to_string(static_cast<long long>(grain)) +
                             "/b" + std::to_string(bytes);
          benchmark::RegisterBenchmark(
              name.c_str(),
              [=](benchmark::State& st) {
                OverlapPoint p;
                for (auto _ : st) {
                  p = overlap_sweep(backend, grain, bytes, engine);
                  st.SetIterationTime(p.us * 1e-6);
                }
                st.counters["efficiency"] = p.efficiency;
                bench::Reporter::instance().add_point(name + "/us", p.us,
                                                      "us");
                bench::Reporter::instance().add_point(name + "/efficiency",
                                                      p.efficiency, "ratio");
              })
              ->UseManualTime()
              ->Iterations(1)
              ->Unit(benchmark::kMicrosecond);
        }
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  bench::write_report("bench_overlap");
  benchmark::Shutdown();
  return 0;
}
