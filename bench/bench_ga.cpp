// Multi-owner GA access sweep: one GA get/put whose patch spans k remote
// owners, blocking per-owner strided epochs versus the pipelined path that
// routes every owner through the nonblocking aggregation engine and
// completes them at one covering wait. On the MPI-2 backend both paths
// open one lock epoch per owner (<= 1 epoch per owner, not k * levels),
// but the pipelined path overlaps the k epoch round trips, so its
// coalesced virtual time beats the serial baseline; the MPI-3 backend
// saves the per-batch flush waits the same way.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "src/ga/ga.hpp"
#include "src/mpisim/trace.hpp"

namespace {

/// Lock/unlock synchronization epochs this rank opened, over every window.
std::uint64_t lock_epoch_total() {
  std::uint64_t n = 0;
  for (const auto& [id, ws] : mpisim::tracer().win_stats())
    n += ws.exclusive_locks + ws.shared_locks;
  return n;
}

enum class GaOp { get, put };

struct GaPoint {
  double us = 0.0;           // virtual time per k-owner access
  std::uint64_t epochs = 0;  // lock epochs per access
};

/// Rank 0 accesses a patch owned entirely by ranks 1..k: an 8 x (k+1)*8
/// double array with chunk hints {8, 1} distributes one 8-column tile per
/// rank, and the measured region covers the k tiles rank 0 does not own,
/// so every per-owner operation is remote and deferrable.
GaPoint ga_sweep(armci::Backend backend, GaOp op, int k, bool pipelined,
                 int reps = 6) {
  GaPoint res;
  mpisim::Config cfg;
  cfg.nranks = k + 1;
  cfg.platform = mpisim::Platform::infiniband;
  mpisim::run(cfg, [&] {
    armci::Options o;
    o.backend = backend;
    o.nb_aggregation = pipelined;  // false: nb_* falls back to blocking
    o.trace = true;
    armci::init(o);

    const std::int64_t rows = 8, cols_per = 8;
    const std::int64_t dims[] = {rows, (k + 1) * cols_per};
    const std::int64_t chunk[] = {rows, 1};
    ga::GlobalArray g =
        ga::GlobalArray::create("sweep", dims, ga::ElemType::dbl, chunk);
    g.zero();

    ga::Patch region;
    region.lo = {0, cols_per};
    region.hi = {rows - 1, (k + 1) * cols_per - 1};
    std::vector<double> buf(static_cast<std::size_t>(region.num_elems()));
    std::iota(buf.begin(), buf.end(), 1.0);

    if (mpisim::rank() == 0) {
      auto round = [&] {
        if (op == GaOp::get)
          g.get(region, buf.data());
        else
          g.put(region, buf.data());
      };
      round();  // warm-up (registration, datatype-cache effects)
      const std::uint64_t epochs0 = lock_epoch_total();
      const double t0 = mpisim::clock().now_ns();
      for (int r = 0; r < reps; ++r) round();
      res.us = (mpisim::clock().now_ns() - t0) * 1e-3 / reps;
      res.epochs = (lock_epoch_total() - epochs0) / static_cast<unsigned>(reps);
    }
    g.sync();
    bench::Reporter::instance().capture_rank();
    g.destroy();
    armci::finalize();
  });
  return res;
}

/// Node-aware vs linear mapping on a co-located config: 16 ranks, 4 per
/// node, a 64x64 double array split 4x4. Rank 0 works its neighborhood (the
/// 32x32 quadrant containing its own tile, i.e. 4 adjacent tiles). Under
/// NodeMapping::node_aware those tiles all live on rank 0's node, so every
/// per-owner transfer rides the MPI-3 shared-memory direct path and the
/// lock-epoch counter stays flat; the linear mapping spreads them over two
/// nodes and pays lock/flush epochs for the remote half.
GaPoint ga_locality(ga::NodeMapping mapping, int reps = 6) {
  GaPoint res;
  mpisim::Config cfg;
  cfg.nranks = 16;
  cfg.platform = mpisim::Platform::infiniband;
  cfg.ranks_per_node = 4;
  mpisim::run(cfg, [&] {
    armci::Options o;
    o.backend = armci::Backend::mpi3;
    o.trace = true;
    armci::init(o);

    const std::int64_t dims[] = {64, 64};
    ga::GlobalArray g =
        ga::GlobalArray::create("locality", dims, ga::ElemType::dbl, {},
                                mapping);
    g.zero();

    ga::Patch region;
    region.lo = {0, 0};
    region.hi = {31, 31};
    std::vector<double> buf(static_cast<std::size_t>(region.num_elems()));
    std::iota(buf.begin(), buf.end(), 1.0);

    if (mpisim::rank() == 0) {
      auto round = [&] {
        g.put(region, buf.data());
        g.get(region, buf.data());
      };
      round();  // warm-up
      // mpi3 never locks (standing lock_all), so count flushes too: the
      // remote half of the linear mapping pays one flush per get batch,
      // the node-aware mapping none.
      const std::uint64_t epochs0 = bench::epoch_traffic();
      const double t0 = mpisim::clock().now_ns();
      for (int r = 0; r < reps; ++r) round();
      res.us = (mpisim::clock().now_ns() - t0) * 1e-3 / reps;
      res.epochs =
          (bench::epoch_traffic() - epochs0) / static_cast<unsigned>(reps);
    }
    g.sync();
    bench::Reporter::instance().capture_rank();
    g.destroy();
    armci::finalize();
  });
  return res;
}

void register_locality() {
  for (ga::NodeMapping mapping :
       {ga::NodeMapping::linear, ga::NodeMapping::node_aware}) {
    const bool aware = mapping == ga::NodeMapping::node_aware;
    std::string name = std::string("GaLocality/ib/mpi3/") +
                       (aware ? "node_aware" : "linear");
    benchmark::RegisterBenchmark(
        name.c_str(),
        [mapping, name](benchmark::State& st) {
          GaPoint p;
          for (auto _ : st) {
            p = ga_locality(mapping);
            st.SetIterationTime(p.us * 1e-6);
          }
          st.counters["epochs"] = static_cast<double>(p.epochs);
          bench::Reporter::instance().add_point(name + "/us", p.us, "us");
          bench::Reporter::instance().add_point(
              name + "/epochs", static_cast<double>(p.epochs), "epochs");
        })
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(benchmark::kMicrosecond);
  }
}

void register_all() {
  register_locality();
  for (armci::Backend backend : {armci::Backend::mpi, armci::Backend::mpi3}) {
    for (GaOp op : {GaOp::get, GaOp::put}) {
      for (int k : {4, 8}) {
        for (bool pipelined : {false, true}) {
          std::string name = std::string("GaPipeline/ib/") +
                             bench::backend_name(backend) + "/" +
                             (op == GaOp::get ? "get" : "put") + "/" +
                             (pipelined ? "pipelined" : "blocking") + "/k" +
                             std::to_string(k);
          benchmark::RegisterBenchmark(
              name.c_str(),
              [=](benchmark::State& st) {
                GaPoint p;
                for (auto _ : st) {
                  p = ga_sweep(backend, op, k, pipelined);
                  st.SetIterationTime(p.us * 1e-6);
                }
                st.counters["epochs"] = static_cast<double>(p.epochs);
                bench::Reporter::instance().add_point(name + "/us", p.us,
                                                      "us");
                bench::Reporter::instance().add_point(
                    name + "/epochs", static_cast<double>(p.epochs),
                    "epochs");
              })
              ->UseManualTime()
              ->Iterations(1)
              ->Unit(benchmark::kMicrosecond);
        }
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  bench::write_report("bench_ga");
  benchmark::Shutdown();
  return 0;
}
