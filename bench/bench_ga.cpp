// Multi-owner GA access sweep: one GA get/put whose patch spans k remote
// owners, blocking per-owner strided epochs versus the pipelined path that
// routes every owner through the nonblocking aggregation engine and
// completes them at one covering wait. On the MPI-2 backend both paths
// open one lock epoch per owner (<= 1 epoch per owner, not k * levels),
// but the pipelined path overlaps the k epoch round trips, so its
// coalesced virtual time beats the serial baseline; the MPI-3 backend
// saves the per-batch flush waits the same way.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "src/ga/ga.hpp"
#include "src/mpisim/trace.hpp"

namespace {

/// Lock/unlock synchronization epochs this rank opened, over every window.
std::uint64_t lock_epoch_total() {
  std::uint64_t n = 0;
  for (const auto& [id, ws] : mpisim::tracer().win_stats())
    n += ws.exclusive_locks + ws.shared_locks;
  return n;
}

enum class GaOp { get, put };

struct GaPoint {
  double us = 0.0;           // virtual time per k-owner access
  std::uint64_t epochs = 0;  // lock epochs per access
};

/// Rank 0 accesses a patch owned entirely by ranks 1..k: an 8 x (k+1)*8
/// double array with chunk hints {8, 1} distributes one 8-column tile per
/// rank, and the measured region covers the k tiles rank 0 does not own,
/// so every per-owner operation is remote and deferrable.
GaPoint ga_sweep(armci::Backend backend, GaOp op, int k, bool pipelined,
                 int reps = 6) {
  GaPoint res;
  mpisim::Config cfg;
  cfg.nranks = k + 1;
  cfg.platform = mpisim::Platform::infiniband;
  mpisim::run(cfg, [&] {
    armci::Options o;
    o.backend = backend;
    o.nb_aggregation = pipelined;  // false: nb_* falls back to blocking
    o.trace = true;
    armci::init(o);

    const std::int64_t rows = 8, cols_per = 8;
    const std::int64_t dims[] = {rows, (k + 1) * cols_per};
    const std::int64_t chunk[] = {rows, 1};
    ga::GlobalArray g =
        ga::GlobalArray::create("sweep", dims, ga::ElemType::dbl, chunk);
    g.zero();

    ga::Patch region;
    region.lo = {0, cols_per};
    region.hi = {rows - 1, (k + 1) * cols_per - 1};
    std::vector<double> buf(static_cast<std::size_t>(region.num_elems()));
    std::iota(buf.begin(), buf.end(), 1.0);

    if (mpisim::rank() == 0) {
      auto round = [&] {
        if (op == GaOp::get)
          g.get(region, buf.data());
        else
          g.put(region, buf.data());
      };
      round();  // warm-up (registration, datatype-cache effects)
      const std::uint64_t epochs0 = lock_epoch_total();
      const double t0 = mpisim::clock().now_ns();
      for (int r = 0; r < reps; ++r) round();
      res.us = (mpisim::clock().now_ns() - t0) * 1e-3 / reps;
      res.epochs = (lock_epoch_total() - epochs0) / static_cast<unsigned>(reps);
    }
    g.sync();
    bench::Reporter::instance().capture_rank();
    g.destroy();
    armci::finalize();
  });
  return res;
}

void register_all() {
  for (armci::Backend backend : {armci::Backend::mpi, armci::Backend::mpi3}) {
    for (GaOp op : {GaOp::get, GaOp::put}) {
      for (int k : {4, 8}) {
        for (bool pipelined : {false, true}) {
          std::string name = std::string("GaPipeline/ib/") +
                             bench::backend_name(backend) + "/" +
                             (op == GaOp::get ? "get" : "put") + "/" +
                             (pipelined ? "pipelined" : "blocking") + "/k" +
                             std::to_string(k);
          benchmark::RegisterBenchmark(
              name.c_str(),
              [=](benchmark::State& st) {
                GaPoint p;
                for (auto _ : st) {
                  p = ga_sweep(backend, op, k, pipelined);
                  st.SetIterationTime(p.us * 1e-6);
                }
                st.counters["epochs"] = static_cast<double>(p.epochs);
                bench::Reporter::instance().add_point(name + "/us", p.us,
                                                      "us");
                bench::Reporter::instance().add_point(
                    name + "/epochs", static_cast<double>(p.epochs),
                    "epochs");
              })
              ->UseManualTime()
              ->Iterations(1)
              ->Unit(benchmark::kMicrosecond);
        }
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  bench::write_report("bench_ga");
  benchmark::Shutdown();
  return 0;
}
