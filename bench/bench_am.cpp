// Active-message layer sweep (Ablation A10, DESIGN.md §10): delegate
// throughput and RPC latency over the src/am layer.
//
// Stream: rank 0 pipelines a window of rpc()s at rank 1, which is busy
// charging a compute slab. With the cooperative progress engine off, the
// server only serves after its compute finishes, so the client's window
// stalls and the run costs ~compute + stream; with the engine on, every
// progress_interval_ns tick inside the compute drains the request queue
// and the run costs ~max(compute, stream). Swept over backend x payload
// size x engine on/off.
//
// Latency: blocking rpc round-trips with both ranks on one node vs one
// rank per node -- the request and reply ride the node-aware delivery
// model (shm_copy_ns vs p2p_ns), so same-node delegation must be cheaper.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstring>
#include <deque>
#include <string>

#include "bench/common.hpp"
#include "src/am/am.hpp"

namespace {

/// Client-observed delegate completion rate in kops per virtual second.
double stream_rate(armci::Backend backend, bool engine, std::size_t bytes,
                   int ops = 2000) {
  // Server compute comparable to the client's stream time, so overlap
  // (engine on) roughly halves the round instead of merely trimming it.
  const double compute_ns = 4e6;
  double rate = 0.0;
  mpisim::Config cfg;
  cfg.nranks = 2;
  cfg.platform = mpisim::Platform::infiniband;
  cfg.ranks_per_node = 1;
  mpisim::run(cfg, [&] {
    armci::Options o;
    o.backend = backend;
    o.metrics = true;
    o.progress = engine;
    armci::init(o);
    am::init();
    const int h_echo = am::register_handler(
        [](int, const void* a, std::size_t n, void* r, std::size_t cap) {
          const std::size_t out = n < cap ? n : cap;
          std::memcpy(r, a, out);
          return out;
        });
    std::vector<std::uint8_t> arg(bytes, 7);
    armci::barrier();
    if (mpisim::rank() == 0) {
      constexpr std::size_t kWindow = 16;
      const double t0 = mpisim::clock().now_ns();
      std::deque<am::Handle> window;
      for (int i = 0; i < ops; ++i) {
        if (window.size() == kWindow) {
          window.front().wait();
          window.pop_front();
        }
        window.push_back(am::rpc(1, h_echo, arg.data(), arg.size()));
      }
      while (!window.empty()) {
        window.front().wait();
        window.pop_front();
      }
      const double secs = (mpisim::clock().now_ns() - t0) * 1e-9;
      rate = static_cast<double>(ops) / secs / 1e3;
    } else {
      mpisim::clock().advance_compute(compute_ns);
      const std::uint64_t target = static_cast<std::uint64_t>(ops);
      am::poll_wait([&] { return armci::stats().am_served >= target; });
    }
    am::barrier();
    bench::Reporter::instance().capture_rank();
    am::finalize();
    armci::finalize();
  });
  return rate;
}

/// Blocking rpc round-trip latency in virtual microseconds.
double rpc_latency_us(bool co_located, std::size_t bytes = 64,
                      int reps = 200) {
  double us = 0.0;
  mpisim::Config cfg;
  cfg.nranks = 2;
  cfg.platform = mpisim::Platform::infiniband;
  cfg.ranks_per_node = co_located ? 2 : 1;
  mpisim::run(cfg, [&] {
    armci::Options o;
    o.backend = armci::Backend::mpi3;
    o.metrics = true;
    armci::init(o);
    am::init();
    const int h_echo = am::register_handler(
        [](int, const void* a, std::size_t n, void* r, std::size_t cap) {
          const std::size_t out = n < cap ? n : cap;
          std::memcpy(r, a, out);
          return out;
        });
    std::vector<std::uint8_t> arg(bytes, 9);
    armci::barrier();
    if (mpisim::rank() == 0) {
      am::rpc(1, h_echo, arg.data(), arg.size()).wait();  // warm-up
      const double t0 = mpisim::clock().now_ns();
      for (int r = 0; r < reps; ++r)
        am::rpc(1, h_echo, arg.data(), arg.size()).wait();
      us = (mpisim::clock().now_ns() - t0) * 1e-3 / reps;
    } else {
      const std::uint64_t target = static_cast<std::uint64_t>(reps) + 1;
      am::poll_wait([&] { return armci::stats().am_served >= target; });
    }
    am::barrier();
    bench::Reporter::instance().capture_rank();
    am::finalize();
    armci::finalize();
  });
  return us;
}

void register_all() {
  for (armci::Backend backend : {armci::Backend::mpi, armci::Backend::mpi3}) {
    for (std::size_t bytes : {std::size_t{16}, std::size_t{1024}}) {
      for (bool engine : {false, true}) {
        std::string name = std::string("Am/stream/") +
                           bench::backend_name(backend) + "/" +
                           (engine ? "on" : "off") + "/b" +
                           std::to_string(bytes);
        benchmark::RegisterBenchmark(
            name.c_str(),
            [=](benchmark::State& st) {
              double rate = 0.0;
              for (auto _ : st) {
                rate = stream_rate(backend, engine, bytes);
                st.SetIterationTime(rate > 0.0 ? 1.0 / rate : 1.0);
              }
              st.counters["kops"] = rate;
              bench::Reporter::instance().add_point(name + "/kops", rate,
                                                    "kops/s");
            })
            ->UseManualTime()
            ->Iterations(1);
      }
    }
  }
  for (bool co : {true, false}) {
    std::string name =
        std::string("Am/rpc/") + (co ? "same_node" : "cross_node");
    benchmark::RegisterBenchmark(
        name.c_str(),
        [=](benchmark::State& st) {
          double us = 0.0;
          for (auto _ : st) {
            us = rpc_latency_us(co);
            st.SetIterationTime(us * 1e-6);
          }
          bench::Reporter::instance().add_point(name + "/us", us, "us");
        })
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(benchmark::kMicrosecond);
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  bench::write_report("bench_am");
  benchmark::Shutdown();
  return 0;
}
