// Figure 4 reproduction: bandwidth of strided ARMCI operations for the
// ARMCI-MPI transfer methods (Direct, IOV-Direct, IOV-Batched, IOV-Consrv)
// vs ARMCI-Native, on all four platforms, for contiguous segment sizes of
// 16 B and 1024 B and segment counts 2^0 .. 2^10.

#include <benchmark/benchmark.h>

#include "bench/common.hpp"

namespace {

using bench::StridedImpl;
using bench::Xfer;

constexpr StridedImpl kImpls[] = {
    StridedImpl::native, StridedImpl::direct, StridedImpl::iov_direct,
    StridedImpl::iov_batched, StridedImpl::iov_consrv};

void run_point(benchmark::State& state, mpisim::Platform plat,
               StridedImpl impl, Xfer op, std::size_t seg, std::size_t nseg) {
  double gibps = 0.0;
  for (auto _ : state) {
    gibps = bench::strided_bw(plat, impl, op, seg, nseg);
    state.SetIterationTime(static_cast<double>(seg * nseg) /
                           (gibps * bench::kGiB));
  }
  state.counters["GiB/s"] = gibps;
  state.counters["segments"] = static_cast<double>(nseg);
}

void register_all() {
  for (mpisim::Platform plat : mpisim::kPaperPlatforms) {
    for (std::size_t seg : {std::size_t{16}, std::size_t{1024}}) {
      for (Xfer op : {Xfer::get, Xfer::acc, Xfer::put}) {
        for (StridedImpl impl : kImpls) {
          for (int logn = 0; logn <= 10; ++logn) {
            const std::size_t nseg = std::size_t{1} << logn;
            std::string name = std::string("Fig4/") +
                               mpisim::platform_id(plat) + "/seg" +
                               std::to_string(seg) + "B/" +
                               bench::xfer_name(op) + "/" +
                               bench::strided_impl_name(impl) + "/" +
                               std::to_string(nseg);
            benchmark::RegisterBenchmark(
                name.c_str(),
                [plat, impl, op, seg, nseg](benchmark::State& st) {
                  run_point(st, plat, impl, op, seg, nseg);
                })
                ->UseManualTime()
                ->Iterations(1)
                ->Unit(benchmark::kMicrosecond);
          }
        }
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  bench::write_report("bench_strided");
  benchmark::Shutdown();
  return 0;
}
