// Figure 5 reproduction: interoperability of the two runtime systems'
// memory-registration mechanisms on the InfiniBand cluster profile.
//
// Four curves of contiguous-get bandwidth vs transfer size:
//   ARMCI-IB, ARMCI Alloc -- native ARMCI with a pre-pinned local buffer
//                            (ARMCI_Malloc_local): the fast path.
//   MPI, MPI Touch        -- ARMCI-MPI with a local buffer MPI has already
//                            registered (warm transfer): on-demand cache hit.
//   ARMCI-IB, MPI Touch   -- native ARMCI with a buffer it did NOT pin
//                            (plain malloc): ARMCI's nonpinned path.
//   MPI, ARMCI Alloc      -- ARMCI-MPI with a buffer MPI has never seen:
//                            cold transfer paying on-demand registration
//                            (>8 KiB) or the pre-pinned bounce copy (<8 KiB).

#include <benchmark/benchmark.h>

#include <memory>

#include "bench/common.hpp"

namespace {

enum class Curve {
  native_armci_alloc,
  mpi_mpi_touch,
  native_mpi_touch,
  mpi_armci_alloc,
};

const char* curve_name(Curve c) {
  switch (c) {
    case Curve::native_armci_alloc: return "ARMCI-IB_ARMCI-Alloc";
    case Curve::mpi_mpi_touch: return "MPI_MPI-Touch";
    case Curve::native_mpi_touch: return "ARMCI-IB_MPI-Touch";
    case Curve::mpi_armci_alloc: return "MPI_ARMCI-Alloc";
  }
  return "?";
}

/// One get of `bytes` under the given registration scenario; GiB/s.
double interop_bw(Curve curve, std::size_t bytes) {
  double result = 0.0;
  mpisim::Config cfg;
  cfg.nranks = 2;
  cfg.platform = mpisim::Platform::infiniband;
  mpisim::run(cfg, [&] {
    armci::Options o;
    o.backend = (curve == Curve::native_armci_alloc ||
                 curve == Curve::native_mpi_touch)
                    ? armci::Backend::native
                    : armci::Backend::mpi;
    armci::init(o);
    std::vector<void*> bases = armci::malloc_world(bytes);
    armci::barrier();
    if (mpisim::rank() == 0) {
      const int reps = 8;
      double total_ns = 0.0;
      // Buffers stay alive across repetitions so the allocator cannot hand
      // back an address a previous repetition already registered.
      std::vector<void*> armci_bufs;
      std::vector<std::unique_ptr<std::uint8_t[]>> plain_bufs;
      for (int r = 0; r < reps; ++r) {
        // A fresh buffer per repetition keeps "cold" curves cold; "warm"
        // curves touch once before measuring.
        void* buf = nullptr;
        switch (curve) {
          case Curve::native_armci_alloc:
          case Curve::mpi_armci_alloc:
            buf = armci::malloc_local(bytes);  // pre-pinned by native ARMCI,
                                               // unknown to MPI's cache
            armci_bufs.push_back(buf);
            break;
          case Curve::mpi_mpi_touch:
          case Curve::native_mpi_touch:
            plain_bufs.push_back(std::make_unique<std::uint8_t[]>(bytes));
            buf = plain_bufs.back().get();
            break;
        }
        if (curve == Curve::mpi_mpi_touch)
          armci::get(bases[1], buf, bytes, 1);  // MPI registers ("touch")
        const double t0 = mpisim::clock().now_ns();
        armci::get(bases[1], buf, bytes, 1);
        total_ns += mpisim::clock().now_ns() - t0;
      }
      for (void* b : armci_bufs) armci::free_local(b);
      result = static_cast<double>(bytes) * reps / (total_ns * 1e-9) /
               bench::kGiB;
    }
    armci::barrier();
    armci::free(bases[static_cast<std::size_t>(mpisim::rank())]);
    armci::finalize();
  });
  return result;
}

void register_all() {
  for (Curve curve : {Curve::native_armci_alloc, Curve::mpi_mpi_touch,
                      Curve::native_mpi_touch, Curve::mpi_armci_alloc}) {
    for (int logb = 2; logb <= 22; ++logb) {
      const std::size_t bytes = std::size_t{1} << logb;
      std::string name = std::string("Fig5/") + curve_name(curve) + "/" +
                         std::to_string(bytes);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [curve, bytes, name](benchmark::State& st) {
            double gibps = 0.0;
            for (auto _ : st) {
              gibps = interop_bw(curve, bytes);
              st.SetIterationTime(static_cast<double>(bytes) /
                                  (gibps * bench::kGiB));
            }
            st.counters["GiB/s"] = gibps;
            bench::Reporter::instance().add_point(name, gibps, "GiB/s");
          })
          ->UseManualTime()
          ->Iterations(1)
          ->Unit(benchmark::kMicrosecond);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  bench::write_report("bench_interop");
  benchmark::Shutdown();
  return 0;
}
