// Figure 3 reproduction: bandwidth of contiguous ARMCI get/put/accumulate
// for ARMCI-MPI vs ARMCI-Native, on all four platform profiles, over
// transfer sizes 2^0 .. 2^25 bytes.
//
// Each benchmark row is one point of one curve of Fig. 3; the GiB/s counter
// is the figure's y value (virtual-time bandwidth from the platform model).

#include <benchmark/benchmark.h>

#include "bench/common.hpp"

namespace {

using bench::Xfer;

void run_point(benchmark::State& state, mpisim::Platform plat,
               armci::Backend backend, Xfer op, std::size_t bytes) {
  double gibps = 0.0;
  for (auto _ : state) {
    gibps = bench::contig_bw(plat, backend, op, bytes);
    state.SetIterationTime(static_cast<double>(bytes) / (gibps * bench::kGiB));
  }
  state.counters["GiB/s"] = gibps;
  state.counters["bytes"] = static_cast<double>(bytes);
}

void run_locality_point(benchmark::State& state, armci::Backend backend,
                        Xfer op, std::size_t bytes, bool co_located) {
  bench::LocalityPoint p;
  for (auto _ : state) {
    p = bench::contig_locality(mpisim::Platform::infiniband, backend, op,
                               bytes, co_located);
    state.SetIterationTime(p.us_per_op * 1e-6);
  }
  state.counters["us/op"] = p.us_per_op;
  state.counters["GiB/s"] = p.gibps;
  state.counters["epochs"] = static_cast<double>(p.epoch_ops);
  state.counters["bytes"] = static_cast<double>(bytes);
}

/// Intra-node vs cross-node latency/bandwidth curves on the MPI-3 backend
/// (infiniband profile, 8 ranks per node): the intra rows ride the
/// shared-memory direct path and must report zero epoch traffic.
void register_locality() {
  for (Xfer op : {Xfer::get, Xfer::put, Xfer::acc}) {
    for (bool co_located : {true, false}) {
      for (int logb = 3; logb <= 21; logb += 3) {
        const std::size_t bytes = std::size_t{1} << logb;
        std::string name = std::string("Locality/ib/") +
                           (co_located ? "intra" : "cross") + "/" +
                           bench::xfer_name(op) + "/" + std::to_string(bytes);
        benchmark::RegisterBenchmark(
            name.c_str(),
            [op, bytes, co_located](benchmark::State& st) {
              run_locality_point(st, armci::Backend::mpi3, op, bytes,
                                 co_located);
            })
            ->UseManualTime()
            ->Iterations(1)
            ->Unit(benchmark::kMicrosecond);
      }
    }
  }
}

void register_all() {
  register_locality();
  for (mpisim::Platform plat : mpisim::kPaperPlatforms) {
    for (Xfer op : {Xfer::get, Xfer::put, Xfer::acc}) {
      for (auto backend : {armci::Backend::native, armci::Backend::mpi}) {
        for (int logb = 0; logb <= 25; logb += 1) {
          const std::size_t bytes = std::size_t{1} << logb;
          if (op == Xfer::acc && bytes < sizeof(double)) continue;
          std::string name = std::string("Fig3/") +
                             mpisim::platform_id(plat) + "/" +
                             bench::xfer_name(op) + "/" +
                             (backend == armci::Backend::mpi ? "MPI" : "Nat") +
                             "/" + std::to_string(bytes);
          benchmark::RegisterBenchmark(
              name.c_str(),
              [plat, backend, op, bytes](benchmark::State& st) {
                run_point(st, plat, backend, op, bytes);
              })
              ->UseManualTime()
              ->Iterations(1)
              ->Unit(benchmark::kMicrosecond);
        }
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  bench::write_report("bench_contig");
  benchmark::Shutdown();
  return 0;
}
