# Empty dependencies file for bench_contig.
# This may be replaced when dependencies are built.
