file(REMOVE_RECURSE
  "CMakeFiles/bench_contig.dir/bench_contig.cpp.o"
  "CMakeFiles/bench_contig.dir/bench_contig.cpp.o.d"
  "bench_contig"
  "bench_contig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_contig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
