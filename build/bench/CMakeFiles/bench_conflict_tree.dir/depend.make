# Empty dependencies file for bench_conflict_tree.
# This may be replaced when dependencies are built.
