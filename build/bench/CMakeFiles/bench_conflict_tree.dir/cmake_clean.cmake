file(REMOVE_RECURSE
  "CMakeFiles/bench_conflict_tree.dir/bench_conflict_tree.cpp.o"
  "CMakeFiles/bench_conflict_tree.dir/bench_conflict_tree.cpp.o.d"
  "bench_conflict_tree"
  "bench_conflict_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_conflict_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
