# Empty compiler generated dependencies file for bench_mpi3.
# This may be replaced when dependencies are built.
