file(REMOVE_RECURSE
  "CMakeFiles/bench_mpi3.dir/bench_mpi3.cpp.o"
  "CMakeFiles/bench_mpi3.dir/bench_mpi3.cpp.o.d"
  "bench_mpi3"
  "bench_mpi3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mpi3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
