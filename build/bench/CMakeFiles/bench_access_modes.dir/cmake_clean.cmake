file(REMOVE_RECURSE
  "CMakeFiles/bench_access_modes.dir/bench_access_modes.cpp.o"
  "CMakeFiles/bench_access_modes.dir/bench_access_modes.cpp.o.d"
  "bench_access_modes"
  "bench_access_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_access_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
