# Empty compiler generated dependencies file for bench_access_modes.
# This may be replaced when dependencies are built.
