# Empty compiler generated dependencies file for bench_batch_sweep.
# This may be replaced when dependencies are built.
