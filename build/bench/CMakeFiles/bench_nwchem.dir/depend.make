# Empty dependencies file for bench_nwchem.
# This may be replaced when dependencies are built.
