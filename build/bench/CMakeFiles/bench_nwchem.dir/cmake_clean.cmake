file(REMOVE_RECURSE
  "CMakeFiles/bench_nwchem.dir/bench_nwchem.cpp.o"
  "CMakeFiles/bench_nwchem.dir/bench_nwchem.cpp.o.d"
  "bench_nwchem"
  "bench_nwchem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nwchem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
