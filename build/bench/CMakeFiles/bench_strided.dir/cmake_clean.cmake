file(REMOVE_RECURSE
  "CMakeFiles/bench_strided.dir/bench_strided.cpp.o"
  "CMakeFiles/bench_strided.dir/bench_strided.cpp.o.d"
  "bench_strided"
  "bench_strided.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_strided.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
