# Empty dependencies file for bench_strided.
# This may be replaced when dependencies are built.
