file(REMOVE_RECURSE
  "CMakeFiles/ga.dir/distribution.cpp.o"
  "CMakeFiles/ga.dir/distribution.cpp.o.d"
  "CMakeFiles/ga.dir/ga.cpp.o"
  "CMakeFiles/ga.dir/ga.cpp.o.d"
  "CMakeFiles/ga.dir/ga_gather.cpp.o"
  "CMakeFiles/ga.dir/ga_gather.cpp.o.d"
  "CMakeFiles/ga.dir/ga_math.cpp.o"
  "CMakeFiles/ga.dir/ga_math.cpp.o.d"
  "libga.a"
  "libga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
