file(REMOVE_RECURSE
  "libga.a"
)
