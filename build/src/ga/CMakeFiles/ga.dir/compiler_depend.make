# Empty compiler generated dependencies file for ga.
# This may be replaced when dependencies are built.
