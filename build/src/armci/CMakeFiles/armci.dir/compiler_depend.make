# Empty compiler generated dependencies file for armci.
# This may be replaced when dependencies are built.
