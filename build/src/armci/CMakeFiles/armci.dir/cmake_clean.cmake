file(REMOVE_RECURSE
  "CMakeFiles/armci.dir/accops.cpp.o"
  "CMakeFiles/armci.dir/accops.cpp.o.d"
  "CMakeFiles/armci.dir/api.cpp.o"
  "CMakeFiles/armci.dir/api.cpp.o.d"
  "CMakeFiles/armci.dir/backend_mpi.cpp.o"
  "CMakeFiles/armci.dir/backend_mpi.cpp.o.d"
  "CMakeFiles/armci.dir/backend_mpi3.cpp.o"
  "CMakeFiles/armci.dir/backend_mpi3.cpp.o.d"
  "CMakeFiles/armci.dir/backend_native.cpp.o"
  "CMakeFiles/armci.dir/backend_native.cpp.o.d"
  "CMakeFiles/armci.dir/conflict_tree.cpp.o"
  "CMakeFiles/armci.dir/conflict_tree.cpp.o.d"
  "CMakeFiles/armci.dir/gmr.cpp.o"
  "CMakeFiles/armci.dir/gmr.cpp.o.d"
  "CMakeFiles/armci.dir/groups.cpp.o"
  "CMakeFiles/armci.dir/groups.cpp.o.d"
  "CMakeFiles/armci.dir/iov.cpp.o"
  "CMakeFiles/armci.dir/iov.cpp.o.d"
  "CMakeFiles/armci.dir/mutex.cpp.o"
  "CMakeFiles/armci.dir/mutex.cpp.o.d"
  "CMakeFiles/armci.dir/state.cpp.o"
  "CMakeFiles/armci.dir/state.cpp.o.d"
  "CMakeFiles/armci.dir/strided.cpp.o"
  "CMakeFiles/armci.dir/strided.cpp.o.d"
  "libarmci.a"
  "libarmci.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/armci.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
