
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/armci/accops.cpp" "src/armci/CMakeFiles/armci.dir/accops.cpp.o" "gcc" "src/armci/CMakeFiles/armci.dir/accops.cpp.o.d"
  "/root/repo/src/armci/api.cpp" "src/armci/CMakeFiles/armci.dir/api.cpp.o" "gcc" "src/armci/CMakeFiles/armci.dir/api.cpp.o.d"
  "/root/repo/src/armci/backend_mpi.cpp" "src/armci/CMakeFiles/armci.dir/backend_mpi.cpp.o" "gcc" "src/armci/CMakeFiles/armci.dir/backend_mpi.cpp.o.d"
  "/root/repo/src/armci/backend_mpi3.cpp" "src/armci/CMakeFiles/armci.dir/backend_mpi3.cpp.o" "gcc" "src/armci/CMakeFiles/armci.dir/backend_mpi3.cpp.o.d"
  "/root/repo/src/armci/backend_native.cpp" "src/armci/CMakeFiles/armci.dir/backend_native.cpp.o" "gcc" "src/armci/CMakeFiles/armci.dir/backend_native.cpp.o.d"
  "/root/repo/src/armci/conflict_tree.cpp" "src/armci/CMakeFiles/armci.dir/conflict_tree.cpp.o" "gcc" "src/armci/CMakeFiles/armci.dir/conflict_tree.cpp.o.d"
  "/root/repo/src/armci/gmr.cpp" "src/armci/CMakeFiles/armci.dir/gmr.cpp.o" "gcc" "src/armci/CMakeFiles/armci.dir/gmr.cpp.o.d"
  "/root/repo/src/armci/groups.cpp" "src/armci/CMakeFiles/armci.dir/groups.cpp.o" "gcc" "src/armci/CMakeFiles/armci.dir/groups.cpp.o.d"
  "/root/repo/src/armci/iov.cpp" "src/armci/CMakeFiles/armci.dir/iov.cpp.o" "gcc" "src/armci/CMakeFiles/armci.dir/iov.cpp.o.d"
  "/root/repo/src/armci/mutex.cpp" "src/armci/CMakeFiles/armci.dir/mutex.cpp.o" "gcc" "src/armci/CMakeFiles/armci.dir/mutex.cpp.o.d"
  "/root/repo/src/armci/state.cpp" "src/armci/CMakeFiles/armci.dir/state.cpp.o" "gcc" "src/armci/CMakeFiles/armci.dir/state.cpp.o.d"
  "/root/repo/src/armci/strided.cpp" "src/armci/CMakeFiles/armci.dir/strided.cpp.o" "gcc" "src/armci/CMakeFiles/armci.dir/strided.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mpisim/CMakeFiles/mpisim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
