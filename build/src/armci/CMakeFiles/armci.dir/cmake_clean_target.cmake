file(REMOVE_RECURSE
  "libarmci.a"
)
