file(REMOVE_RECURSE
  "CMakeFiles/nwproxy.dir/amplitudes.cpp.o"
  "CMakeFiles/nwproxy.dir/amplitudes.cpp.o.d"
  "CMakeFiles/nwproxy.dir/ccsd.cpp.o"
  "CMakeFiles/nwproxy.dir/ccsd.cpp.o.d"
  "CMakeFiles/nwproxy.dir/params.cpp.o"
  "CMakeFiles/nwproxy.dir/params.cpp.o.d"
  "libnwproxy.a"
  "libnwproxy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nwproxy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
