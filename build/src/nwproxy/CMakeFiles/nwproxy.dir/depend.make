# Empty dependencies file for nwproxy.
# This may be replaced when dependencies are built.
