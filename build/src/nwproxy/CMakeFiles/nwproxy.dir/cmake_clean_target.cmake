file(REMOVE_RECURSE
  "libnwproxy.a"
)
