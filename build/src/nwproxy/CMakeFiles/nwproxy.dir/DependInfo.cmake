
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nwproxy/amplitudes.cpp" "src/nwproxy/CMakeFiles/nwproxy.dir/amplitudes.cpp.o" "gcc" "src/nwproxy/CMakeFiles/nwproxy.dir/amplitudes.cpp.o.d"
  "/root/repo/src/nwproxy/ccsd.cpp" "src/nwproxy/CMakeFiles/nwproxy.dir/ccsd.cpp.o" "gcc" "src/nwproxy/CMakeFiles/nwproxy.dir/ccsd.cpp.o.d"
  "/root/repo/src/nwproxy/params.cpp" "src/nwproxy/CMakeFiles/nwproxy.dir/params.cpp.o" "gcc" "src/nwproxy/CMakeFiles/nwproxy.dir/params.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ga/CMakeFiles/ga.dir/DependInfo.cmake"
  "/root/repo/build/src/armci/CMakeFiles/armci.dir/DependInfo.cmake"
  "/root/repo/build/src/mpisim/CMakeFiles/mpisim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
