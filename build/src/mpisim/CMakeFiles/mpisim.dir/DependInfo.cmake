
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mpisim/comm.cpp" "src/mpisim/CMakeFiles/mpisim.dir/comm.cpp.o" "gcc" "src/mpisim/CMakeFiles/mpisim.dir/comm.cpp.o.d"
  "/root/repo/src/mpisim/datatype.cpp" "src/mpisim/CMakeFiles/mpisim.dir/datatype.cpp.o" "gcc" "src/mpisim/CMakeFiles/mpisim.dir/datatype.cpp.o.d"
  "/root/repo/src/mpisim/error.cpp" "src/mpisim/CMakeFiles/mpisim.dir/error.cpp.o" "gcc" "src/mpisim/CMakeFiles/mpisim.dir/error.cpp.o.d"
  "/root/repo/src/mpisim/group.cpp" "src/mpisim/CMakeFiles/mpisim.dir/group.cpp.o" "gcc" "src/mpisim/CMakeFiles/mpisim.dir/group.cpp.o.d"
  "/root/repo/src/mpisim/mailbox.cpp" "src/mpisim/CMakeFiles/mpisim.dir/mailbox.cpp.o" "gcc" "src/mpisim/CMakeFiles/mpisim.dir/mailbox.cpp.o.d"
  "/root/repo/src/mpisim/netmodel.cpp" "src/mpisim/CMakeFiles/mpisim.dir/netmodel.cpp.o" "gcc" "src/mpisim/CMakeFiles/mpisim.dir/netmodel.cpp.o.d"
  "/root/repo/src/mpisim/op.cpp" "src/mpisim/CMakeFiles/mpisim.dir/op.cpp.o" "gcc" "src/mpisim/CMakeFiles/mpisim.dir/op.cpp.o.d"
  "/root/repo/src/mpisim/pacer.cpp" "src/mpisim/CMakeFiles/mpisim.dir/pacer.cpp.o" "gcc" "src/mpisim/CMakeFiles/mpisim.dir/pacer.cpp.o.d"
  "/root/repo/src/mpisim/platform.cpp" "src/mpisim/CMakeFiles/mpisim.dir/platform.cpp.o" "gcc" "src/mpisim/CMakeFiles/mpisim.dir/platform.cpp.o.d"
  "/root/repo/src/mpisim/registration.cpp" "src/mpisim/CMakeFiles/mpisim.dir/registration.cpp.o" "gcc" "src/mpisim/CMakeFiles/mpisim.dir/registration.cpp.o.d"
  "/root/repo/src/mpisim/runtime.cpp" "src/mpisim/CMakeFiles/mpisim.dir/runtime.cpp.o" "gcc" "src/mpisim/CMakeFiles/mpisim.dir/runtime.cpp.o.d"
  "/root/repo/src/mpisim/win.cpp" "src/mpisim/CMakeFiles/mpisim.dir/win.cpp.o" "gcc" "src/mpisim/CMakeFiles/mpisim.dir/win.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
