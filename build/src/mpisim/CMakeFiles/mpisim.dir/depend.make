# Empty dependencies file for mpisim.
# This may be replaced when dependencies are built.
