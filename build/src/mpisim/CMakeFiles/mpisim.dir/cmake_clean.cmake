file(REMOVE_RECURSE
  "CMakeFiles/mpisim.dir/comm.cpp.o"
  "CMakeFiles/mpisim.dir/comm.cpp.o.d"
  "CMakeFiles/mpisim.dir/datatype.cpp.o"
  "CMakeFiles/mpisim.dir/datatype.cpp.o.d"
  "CMakeFiles/mpisim.dir/error.cpp.o"
  "CMakeFiles/mpisim.dir/error.cpp.o.d"
  "CMakeFiles/mpisim.dir/group.cpp.o"
  "CMakeFiles/mpisim.dir/group.cpp.o.d"
  "CMakeFiles/mpisim.dir/mailbox.cpp.o"
  "CMakeFiles/mpisim.dir/mailbox.cpp.o.d"
  "CMakeFiles/mpisim.dir/netmodel.cpp.o"
  "CMakeFiles/mpisim.dir/netmodel.cpp.o.d"
  "CMakeFiles/mpisim.dir/op.cpp.o"
  "CMakeFiles/mpisim.dir/op.cpp.o.d"
  "CMakeFiles/mpisim.dir/pacer.cpp.o"
  "CMakeFiles/mpisim.dir/pacer.cpp.o.d"
  "CMakeFiles/mpisim.dir/platform.cpp.o"
  "CMakeFiles/mpisim.dir/platform.cpp.o.d"
  "CMakeFiles/mpisim.dir/registration.cpp.o"
  "CMakeFiles/mpisim.dir/registration.cpp.o.d"
  "CMakeFiles/mpisim.dir/runtime.cpp.o"
  "CMakeFiles/mpisim.dir/runtime.cpp.o.d"
  "CMakeFiles/mpisim.dir/win.cpp.o"
  "CMakeFiles/mpisim.dir/win.cpp.o.d"
  "libmpisim.a"
  "libmpisim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpisim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
