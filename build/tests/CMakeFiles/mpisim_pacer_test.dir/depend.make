# Empty dependencies file for mpisim_pacer_test.
# This may be replaced when dependencies are built.
