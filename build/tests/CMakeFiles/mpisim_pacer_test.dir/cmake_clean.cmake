file(REMOVE_RECURSE
  "CMakeFiles/mpisim_pacer_test.dir/mpisim/pacer_test.cpp.o"
  "CMakeFiles/mpisim_pacer_test.dir/mpisim/pacer_test.cpp.o.d"
  "mpisim_pacer_test"
  "mpisim_pacer_test.pdb"
  "mpisim_pacer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpisim_pacer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
