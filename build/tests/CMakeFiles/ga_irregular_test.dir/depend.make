# Empty dependencies file for ga_irregular_test.
# This may be replaced when dependencies are built.
