file(REMOVE_RECURSE
  "CMakeFiles/ga_irregular_test.dir/ga/ga_irregular_test.cpp.o"
  "CMakeFiles/ga_irregular_test.dir/ga/ga_irregular_test.cpp.o.d"
  "ga_irregular_test"
  "ga_irregular_test.pdb"
  "ga_irregular_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ga_irregular_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
