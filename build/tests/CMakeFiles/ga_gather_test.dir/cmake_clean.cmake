file(REMOVE_RECURSE
  "CMakeFiles/ga_gather_test.dir/ga/ga_gather_test.cpp.o"
  "CMakeFiles/ga_gather_test.dir/ga/ga_gather_test.cpp.o.d"
  "ga_gather_test"
  "ga_gather_test.pdb"
  "ga_gather_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ga_gather_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
