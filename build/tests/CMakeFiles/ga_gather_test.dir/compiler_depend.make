# Empty compiler generated dependencies file for ga_gather_test.
# This may be replaced when dependencies are built.
