file(REMOVE_RECURSE
  "CMakeFiles/mpisim_datatype_test.dir/mpisim/datatype_test.cpp.o"
  "CMakeFiles/mpisim_datatype_test.dir/mpisim/datatype_test.cpp.o.d"
  "mpisim_datatype_test"
  "mpisim_datatype_test.pdb"
  "mpisim_datatype_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpisim_datatype_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
