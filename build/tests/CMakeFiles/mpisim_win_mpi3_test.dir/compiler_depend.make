# Empty compiler generated dependencies file for mpisim_win_mpi3_test.
# This may be replaced when dependencies are built.
