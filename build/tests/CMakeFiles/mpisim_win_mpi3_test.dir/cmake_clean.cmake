file(REMOVE_RECURSE
  "CMakeFiles/mpisim_win_mpi3_test.dir/mpisim/win_mpi3_test.cpp.o"
  "CMakeFiles/mpisim_win_mpi3_test.dir/mpisim/win_mpi3_test.cpp.o.d"
  "mpisim_win_mpi3_test"
  "mpisim_win_mpi3_test.pdb"
  "mpisim_win_mpi3_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpisim_win_mpi3_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
