file(REMOVE_RECURSE
  "CMakeFiles/armci_mutex_rmw_test.dir/armci/armci_mutex_rmw_test.cpp.o"
  "CMakeFiles/armci_mutex_rmw_test.dir/armci/armci_mutex_rmw_test.cpp.o.d"
  "armci_mutex_rmw_test"
  "armci_mutex_rmw_test.pdb"
  "armci_mutex_rmw_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/armci_mutex_rmw_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
