# Empty compiler generated dependencies file for armci_mutex_rmw_test.
# This may be replaced when dependencies are built.
