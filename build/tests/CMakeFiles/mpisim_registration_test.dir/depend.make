# Empty dependencies file for mpisim_registration_test.
# This may be replaced when dependencies are built.
