file(REMOVE_RECURSE
  "CMakeFiles/mpisim_registration_test.dir/mpisim/registration_test.cpp.o"
  "CMakeFiles/mpisim_registration_test.dir/mpisim/registration_test.cpp.o.d"
  "mpisim_registration_test"
  "mpisim_registration_test.pdb"
  "mpisim_registration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpisim_registration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
