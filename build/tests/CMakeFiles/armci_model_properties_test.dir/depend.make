# Empty dependencies file for armci_model_properties_test.
# This may be replaced when dependencies are built.
