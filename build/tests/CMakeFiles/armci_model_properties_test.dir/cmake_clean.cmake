file(REMOVE_RECURSE
  "CMakeFiles/armci_model_properties_test.dir/armci/armci_model_properties_test.cpp.o"
  "CMakeFiles/armci_model_properties_test.dir/armci/armci_model_properties_test.cpp.o.d"
  "armci_model_properties_test"
  "armci_model_properties_test.pdb"
  "armci_model_properties_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/armci_model_properties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
