# Empty dependencies file for armci_conflict_tree_test.
# This may be replaced when dependencies are built.
