file(REMOVE_RECURSE
  "CMakeFiles/armci_conflict_tree_test.dir/armci/conflict_tree_test.cpp.o"
  "CMakeFiles/armci_conflict_tree_test.dir/armci/conflict_tree_test.cpp.o.d"
  "armci_conflict_tree_test"
  "armci_conflict_tree_test.pdb"
  "armci_conflict_tree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/armci_conflict_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
