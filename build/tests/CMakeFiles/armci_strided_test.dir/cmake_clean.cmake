file(REMOVE_RECURSE
  "CMakeFiles/armci_strided_test.dir/armci/strided_test.cpp.o"
  "CMakeFiles/armci_strided_test.dir/armci/strided_test.cpp.o.d"
  "armci_strided_test"
  "armci_strided_test.pdb"
  "armci_strided_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/armci_strided_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
