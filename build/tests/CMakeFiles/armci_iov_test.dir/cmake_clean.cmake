file(REMOVE_RECURSE
  "CMakeFiles/armci_iov_test.dir/armci/armci_iov_test.cpp.o"
  "CMakeFiles/armci_iov_test.dir/armci/armci_iov_test.cpp.o.d"
  "armci_iov_test"
  "armci_iov_test.pdb"
  "armci_iov_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/armci_iov_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
