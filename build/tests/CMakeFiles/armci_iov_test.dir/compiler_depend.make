# Empty compiler generated dependencies file for armci_iov_test.
# This may be replaced when dependencies are built.
