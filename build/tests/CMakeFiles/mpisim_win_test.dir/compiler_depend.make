# Empty compiler generated dependencies file for mpisim_win_test.
# This may be replaced when dependencies are built.
