file(REMOVE_RECURSE
  "CMakeFiles/mpisim_netmodel_test.dir/mpisim/netmodel_test.cpp.o"
  "CMakeFiles/mpisim_netmodel_test.dir/mpisim/netmodel_test.cpp.o.d"
  "mpisim_netmodel_test"
  "mpisim_netmodel_test.pdb"
  "mpisim_netmodel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpisim_netmodel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
