file(REMOVE_RECURSE
  "CMakeFiles/armci_groups_dla_test.dir/armci/armci_groups_dla_test.cpp.o"
  "CMakeFiles/armci_groups_dla_test.dir/armci/armci_groups_dla_test.cpp.o.d"
  "armci_groups_dla_test"
  "armci_groups_dla_test.pdb"
  "armci_groups_dla_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/armci_groups_dla_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
