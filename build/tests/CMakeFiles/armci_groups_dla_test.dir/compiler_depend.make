# Empty compiler generated dependencies file for armci_groups_dla_test.
# This may be replaced when dependencies are built.
