# Empty compiler generated dependencies file for mpisim_group_test.
# This may be replaced when dependencies are built.
