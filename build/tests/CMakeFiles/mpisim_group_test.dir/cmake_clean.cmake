file(REMOVE_RECURSE
  "CMakeFiles/mpisim_group_test.dir/mpisim/group_test.cpp.o"
  "CMakeFiles/mpisim_group_test.dir/mpisim/group_test.cpp.o.d"
  "mpisim_group_test"
  "mpisim_group_test.pdb"
  "mpisim_group_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpisim_group_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
