# Empty dependencies file for armci_core_test.
# This may be replaced when dependencies are built.
