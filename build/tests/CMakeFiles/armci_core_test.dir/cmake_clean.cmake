file(REMOVE_RECURSE
  "CMakeFiles/armci_core_test.dir/armci/armci_core_test.cpp.o"
  "CMakeFiles/armci_core_test.dir/armci/armci_core_test.cpp.o.d"
  "armci_core_test"
  "armci_core_test.pdb"
  "armci_core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/armci_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
