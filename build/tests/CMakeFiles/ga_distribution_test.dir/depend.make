# Empty dependencies file for ga_distribution_test.
# This may be replaced when dependencies are built.
