file(REMOVE_RECURSE
  "CMakeFiles/ga_distribution_test.dir/ga/distribution_test.cpp.o"
  "CMakeFiles/ga_distribution_test.dir/ga/distribution_test.cpp.o.d"
  "ga_distribution_test"
  "ga_distribution_test.pdb"
  "ga_distribution_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ga_distribution_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
