file(REMOVE_RECURSE
  "CMakeFiles/armci_stats_test.dir/armci/armci_stats_test.cpp.o"
  "CMakeFiles/armci_stats_test.dir/armci/armci_stats_test.cpp.o.d"
  "armci_stats_test"
  "armci_stats_test.pdb"
  "armci_stats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/armci_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
