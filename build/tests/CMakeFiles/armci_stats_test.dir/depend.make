# Empty dependencies file for armci_stats_test.
# This may be replaced when dependencies are built.
