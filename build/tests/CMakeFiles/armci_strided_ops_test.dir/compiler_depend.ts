# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for armci_strided_ops_test.
