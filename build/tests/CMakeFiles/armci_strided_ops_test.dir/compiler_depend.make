# Empty compiler generated dependencies file for armci_strided_ops_test.
# This may be replaced when dependencies are built.
