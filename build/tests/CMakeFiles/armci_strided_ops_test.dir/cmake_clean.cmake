file(REMOVE_RECURSE
  "CMakeFiles/armci_strided_ops_test.dir/armci/armci_strided_ops_test.cpp.o"
  "CMakeFiles/armci_strided_ops_test.dir/armci/armci_strided_ops_test.cpp.o.d"
  "armci_strided_ops_test"
  "armci_strided_ops_test.pdb"
  "armci_strided_ops_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/armci_strided_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
