file(REMOVE_RECURSE
  "CMakeFiles/nwproxy_test.dir/nwproxy/nwproxy_test.cpp.o"
  "CMakeFiles/nwproxy_test.dir/nwproxy/nwproxy_test.cpp.o.d"
  "nwproxy_test"
  "nwproxy_test.pdb"
  "nwproxy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nwproxy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
