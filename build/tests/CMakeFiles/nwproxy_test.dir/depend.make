# Empty dependencies file for nwproxy_test.
# This may be replaced when dependencies are built.
