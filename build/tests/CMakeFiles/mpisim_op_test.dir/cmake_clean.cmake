file(REMOVE_RECURSE
  "CMakeFiles/mpisim_op_test.dir/mpisim/op_test.cpp.o"
  "CMakeFiles/mpisim_op_test.dir/mpisim/op_test.cpp.o.d"
  "mpisim_op_test"
  "mpisim_op_test.pdb"
  "mpisim_op_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpisim_op_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
