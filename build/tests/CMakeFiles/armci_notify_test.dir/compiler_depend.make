# Empty compiler generated dependencies file for armci_notify_test.
# This may be replaced when dependencies are built.
