file(REMOVE_RECURSE
  "CMakeFiles/armci_notify_test.dir/armci/armci_notify_test.cpp.o"
  "CMakeFiles/armci_notify_test.dir/armci/armci_notify_test.cpp.o.d"
  "armci_notify_test"
  "armci_notify_test.pdb"
  "armci_notify_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/armci_notify_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
