# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/mpisim_op_test[1]_include.cmake")
include("/root/repo/build/tests/mpisim_group_test[1]_include.cmake")
include("/root/repo/build/tests/mpisim_datatype_test[1]_include.cmake")
include("/root/repo/build/tests/mpisim_registration_test[1]_include.cmake")
include("/root/repo/build/tests/mpisim_netmodel_test[1]_include.cmake")
include("/root/repo/build/tests/mpisim_comm_test[1]_include.cmake")
include("/root/repo/build/tests/mpisim_win_test[1]_include.cmake")
include("/root/repo/build/tests/armci_conflict_tree_test[1]_include.cmake")
include("/root/repo/build/tests/armci_strided_test[1]_include.cmake")
include("/root/repo/build/tests/armci_core_test[1]_include.cmake")
include("/root/repo/build/tests/armci_iov_test[1]_include.cmake")
include("/root/repo/build/tests/armci_strided_ops_test[1]_include.cmake")
include("/root/repo/build/tests/armci_mutex_rmw_test[1]_include.cmake")
include("/root/repo/build/tests/armci_groups_dla_test[1]_include.cmake")
include("/root/repo/build/tests/ga_distribution_test[1]_include.cmake")
include("/root/repo/build/tests/ga_test[1]_include.cmake")
include("/root/repo/build/tests/nwproxy_test[1]_include.cmake")
include("/root/repo/build/tests/mpisim_pacer_test[1]_include.cmake")
include("/root/repo/build/tests/mpisim_win_mpi3_test[1]_include.cmake")
include("/root/repo/build/tests/ga_gather_test[1]_include.cmake")
include("/root/repo/build/tests/armci_stats_test[1]_include.cmake")
include("/root/repo/build/tests/ga_irregular_test[1]_include.cmake")
include("/root/repo/build/tests/armci_notify_test[1]_include.cmake")
include("/root/repo/build/tests/armci_model_properties_test[1]_include.cmake")
