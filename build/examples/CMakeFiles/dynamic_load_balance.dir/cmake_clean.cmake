file(REMOVE_RECURSE
  "CMakeFiles/dynamic_load_balance.dir/dynamic_load_balance.cpp.o"
  "CMakeFiles/dynamic_load_balance.dir/dynamic_load_balance.cpp.o.d"
  "dynamic_load_balance"
  "dynamic_load_balance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_load_balance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
