# Empty compiler generated dependencies file for dynamic_load_balance.
# This may be replaced when dependencies are built.
