file(REMOVE_RECURSE
  "CMakeFiles/ccsd_mini.dir/ccsd_mini.cpp.o"
  "CMakeFiles/ccsd_mini.dir/ccsd_mini.cpp.o.d"
  "ccsd_mini"
  "ccsd_mini.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccsd_mini.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
