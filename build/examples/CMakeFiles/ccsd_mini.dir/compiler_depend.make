# Empty compiler generated dependencies file for ccsd_mini.
# This may be replaced when dependencies are built.
