# Empty compiler generated dependencies file for ga_patch_decomposition.
# This may be replaced when dependencies are built.
