file(REMOVE_RECURSE
  "CMakeFiles/ga_patch_decomposition.dir/ga_patch_decomposition.cpp.o"
  "CMakeFiles/ga_patch_decomposition.dir/ga_patch_decomposition.cpp.o.d"
  "ga_patch_decomposition"
  "ga_patch_decomposition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ga_patch_decomposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
