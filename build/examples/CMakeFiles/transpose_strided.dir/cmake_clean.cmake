file(REMOVE_RECURSE
  "CMakeFiles/transpose_strided.dir/transpose_strided.cpp.o"
  "CMakeFiles/transpose_strided.dir/transpose_strided.cpp.o.d"
  "transpose_strided"
  "transpose_strided.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transpose_strided.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
