# Empty dependencies file for transpose_strided.
# This may be replaced when dependencies are built.
