// Sharded distributed hash table served by active-message delegates
// (src/am): every rank is simultaneously a shard server and a client
// streaming millions of simulated ops -- puts, gets, and fused
// fetch-modify chains -- at the key's owner. Writes are client-driven
// replicated onto the owner's buddy (rank owner+1), so a seeded
// survivable-mode crash of one server mid-stream loses nothing that was
// acknowledged: clients observe Errc::crashed through their delegate
// handles exactly once, fail over to the buddy replica, and the final
// verification phase proves zero lost and zero duplicated acknowledged
// writes.
//
//     ./build/examples/dht [nranks] [total_ops] [crash 0|1]
//
// Defaults: 8 ranks, 1,000,000 ops, crash enabled. Exit status is nonzero
// on any verification failure.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/am/am.hpp"
#include "src/armci/armci.hpp"
#include "src/mpisim/error.hpp"
#include "src/mpisim/runtime.hpp"

namespace {

using mpisim::Errc;

// Scheduled crash time: far beyond natural virtual time, so only the
// victim's deliberate clock jump can trigger it (deterministic placement
// at the middle of the victim's client stream).
constexpr double kCrashAt = 1e15;

constexpr std::uint64_t kRoleReplica = 1;  // arg.role: primary otherwise

/// One put/get/fma leg's argument (POD, fits kMaxArgBytes).
struct LegArg {
  std::uint64_t slot = 0;
  std::uint64_t role = 0;  // primary shard or buddy replica table
  std::int64_t val = 0;    // put: value; fma: delta
  std::uint64_t ver = 0;   // put: last-writer-wins version
};

/// Put/get slot state.
struct Slot {
  std::uint64_t ver = 0;
  std::int64_t val = 0;
};

/// One rank's storage: its primary shard plus the replica of the shard
/// owned by its predecessor (it is that rank's buddy).
struct Store {
  std::vector<Slot> put_primary, put_replica;
  std::vector<std::int64_t> fma_primary, fma_replica;
};

int verify_failures = 0;  // summed under the simulator lock

void check(bool ok, const char* what, std::uint64_t key) {
  if (ok) return;
  std::lock_guard lk(mpisim::ctx().core().mu());
  ++verify_failures;
  std::fprintf(stderr, "dht: VERIFY FAILED rank %d key %llu: %s\n",
               mpisim::rank(), (unsigned long long)key, what);
}

struct Topology {
  int n = 0;
  int owner(std::uint64_t key) const { return static_cast<int>(key % n); }
  int buddy(std::uint64_t key) const { return (owner(key) + 1) % n; }
  std::uint64_t slot(std::uint64_t key) const { return key / n; }
};

}  // namespace

int main(int argc, char** argv) {
  const int nranks = argc > 1 ? std::atoi(argv[1]) : 8;
  const long total_ops = argc > 2 ? std::atol(argv[2]) : 1'000'000;
  const bool crash = argc > 3 ? std::atoi(argv[3]) != 0 : true;
  const int victim = nranks - 1;

  mpisim::Config cfg;
  cfg.nranks = nranks;
  cfg.platform = mpisim::Platform::infiniband;
  cfg.fault.seed = 7;
  if (crash) {
    cfg.fault.survivable = true;
    cfg.fault.crashes = {{victim, kCrashAt}};
  }

  const Topology topo{nranks};
  // Key spaces: even keys are put/get slots, odd keys are fma counters
  // (disjoint tables). Each client owns a contiguous stripe of each, so
  // per-key write sequences are single-writer and verifiable.
  const std::uint64_t put_keys_per_client = 2048;
  const std::uint64_t fma_keys_per_client = 1024;
  const auto n64 = static_cast<std::uint64_t>(nranks);
  const std::uint64_t put_keys = put_keys_per_client * n64;
  const std::uint64_t fma_keys = fma_keys_per_client * n64;
  const long ops_per_client = total_ops / nranks;

  std::uint64_t served_total = 0;
  mpisim::run(cfg, [&] {
    const int me = mpisim::rank();
    armci::init();
    am::init();

    Store store;
    store.put_primary.resize((put_keys + n64 - 1) / n64 + 1);
    store.put_replica.resize(store.put_primary.size());
    store.fma_primary.assign((fma_keys + n64 - 1) / n64 + 1, 0);
    store.fma_replica.assign(store.fma_primary.size(), 0);

    const int h_put = am::register_handler(
        [&store](int, const void* a, std::size_t bytes, void*, std::size_t) {
          LegArg arg;
          std::memcpy(&arg, a, std::min(bytes, sizeof arg));
          auto& tab = arg.role == kRoleReplica ? store.put_replica
                                               : store.put_primary;
          Slot& s = tab.at(arg.slot);
          if (arg.ver > s.ver) {  // last-writer-wins: retries idempotent
            s.ver = arg.ver;
            s.val = arg.val;
          }
          return std::size_t{0};
        });
    const int h_get = am::register_handler(
        [&store](int, const void* a, std::size_t bytes, void* r,
                 std::size_t) {
          LegArg arg;
          std::memcpy(&arg, a, std::min(bytes, sizeof arg));
          const auto& tab = arg.role == kRoleReplica ? store.put_replica
                                                     : store.put_primary;
          const Slot s = tab.at(arg.slot);
          std::memcpy(r, &s, sizeof s);
          return sizeof s;
        });
    // Fused fetch-modify: one delegate does the read-modify-write at the
    // data instead of a get/put round-trip pair.
    const int h_fma = am::register_handler(
        [&store](int, const void* a, std::size_t bytes, void* r,
                 std::size_t) {
          LegArg arg;
          std::memcpy(&arg, a, std::min(bytes, sizeof arg));
          auto& tab = arg.role == kRoleReplica ? store.fma_replica
                                               : store.fma_primary;
          std::int64_t& c = tab.at(arg.slot);
          const std::int64_t old = c;
          c += arg.val;
          std::memcpy(r, &old, sizeof old);
          return sizeof old;
        });

    // A client's view of the cluster: ranks it has observed dead.
    std::vector<bool> dead(static_cast<std::size_t>(nranks), false);
    const auto note_crashed = [&](int target) {
      dead[static_cast<std::size_t>(target)] = true;
      mpisim::world().failure_ack();
    };
    // Issue one leg and wait; true on ack, false if the target died.
    const auto leg = [&](int target, int handler, const LegArg& arg,
                         std::int64_t* out) {
      if (dead[static_cast<std::size_t>(target)]) return false;
      am::Handle h = am::rpc(target, handler, &arg, sizeof arg);
      try {
        h.wait();
      } catch (const mpisim::MpiError& e) {
        if (e.code() != Errc::crashed) throw;
        note_crashed(target);
        return false;
      }
      if (out != nullptr) {
        const auto r = h.reply();
        if (r.size() == sizeof(std::int64_t))
          std::memcpy(out, r.data(), sizeof *out);
      }
      return true;
    };
    // Replicated write: a leg to the owner and one to the buddy.
    // Acknowledged iff every leg aimed at a live rank succeeded and the
    // key's live authority (owner, or buddy once the owner died) holds
    // it -- so an acked write survives the failover by construction.
    const auto write2 = [&](std::uint64_t key, int handler, LegArg arg,
                            std::int64_t* fetched) {
      const int o = topo.owner(key), b = topo.buddy(key);
      arg.role = 0;
      const bool o_ok = leg(o, handler, arg, fetched);
      arg.role = kRoleReplica;
      std::int64_t replica_fetch = 0;
      const bool b_ok = leg(b, handler, arg, &replica_fetch);
      const bool o_dead = dead[static_cast<std::size_t>(o)];
      const bool b_dead = dead[static_cast<std::size_t>(b)];
      if (fetched != nullptr && o_dead && b_ok) *fetched = replica_fetch;
      return o_dead ? b_ok : (o_ok && (b_dead || b_ok));
    };

    // ---- Phase 1: fire-and-forget fill + termination detection --------
    const std::uint64_t pk0 = static_cast<std::uint64_t>(me) *
                              put_keys_per_client;
    for (std::uint64_t i = 0; i < put_keys_per_client; ++i) {
      const std::uint64_t key = pk0 + i;
      LegArg arg;
      arg.slot = topo.slot(key);
      arg.val = static_cast<std::int64_t>(key * 3 + 1);
      arg.ver = 1;
      arg.role = 0;
      am::rpc_ff(topo.owner(key), h_put, &arg, sizeof arg);
      arg.role = kRoleReplica;
      am::rpc_ff(topo.buddy(key), h_put, &arg, sizeof arg);
    }
    am::quiesce();

    // ---- Phase 2: mixed client stream with a mid-stream server crash --
    std::vector<std::uint64_t> put_acked_ver(put_keys_per_client, 1);
    std::vector<std::int64_t> put_acked_val(put_keys_per_client);
    std::vector<std::uint64_t> put_attempt_ver(put_keys_per_client, 1);
    for (std::uint64_t i = 0; i < put_keys_per_client; ++i)
      put_acked_val[i] = static_cast<std::int64_t>((pk0 + i) * 3 + 1);
    std::vector<std::int64_t> put_attempt_val = put_acked_val;
    std::vector<std::int64_t> fma_acked(fma_keys_per_client, 0);
    std::vector<std::int64_t> fma_attempted(fma_keys_per_client, 0);
    const std::uint64_t fk0 = static_cast<std::uint64_t>(me) *
                              fma_keys_per_client;

    std::uint64_t rng = 0x9e3779b97f4a7c15ull ^ (std::uint64_t)me;
    const auto next = [&rng] {
      rng ^= rng << 13;
      rng ^= rng >> 7;
      rng ^= rng << 17;
      return rng;
    };
    for (long i = 0; i < ops_per_client; ++i) {
      if (crash && me == victim && i == ops_per_client / 2) {
        // Deterministic mid-stream death: jump past the scheduled crash
        // time; the next leg's fault point kills this rank.
        mpisim::clock().advance(2 * kCrashAt);
      }
      const std::uint64_t r = next();
      const int kind = static_cast<int>(r % 4);  // 50% get, 25% put, 25% fma
      if (kind <= 1) {
        // Get a random put-key from its live authority.
        const std::uint64_t key = r / 4 % put_keys;
        const int o = topo.owner(key);
        LegArg arg;
        arg.slot = topo.slot(key);
        const bool use_replica = dead[static_cast<std::size_t>(o)];
        arg.role = use_replica ? kRoleReplica : 0;
        const int target = use_replica ? topo.buddy(key) : o;
        Slot got;
        if (!dead[static_cast<std::size_t>(target)]) {
          am::Handle h = am::rpc(target, h_get, &arg, sizeof arg);
          try {
            h.wait();
            std::memcpy(&got, h.reply().data(), sizeof got);
          } catch (const mpisim::MpiError& e) {
            if (e.code() != Errc::crashed) throw;
            note_crashed(target);
          }
        }
      } else if (kind == 2) {
        // Put to one of MY put keys: next version, deterministic value.
        const std::uint64_t ki = r / 4 % put_keys_per_client;
        const std::uint64_t key = pk0 + ki;
        LegArg arg;
        arg.slot = topo.slot(key);
        arg.ver = ++put_attempt_ver[ki];
        arg.val = static_cast<std::int64_t>(key ^ (arg.ver * 0x51ed'2701));
        put_attempt_val[ki] = arg.val;
        if (write2(key, h_put, arg, nullptr)) {
          put_acked_ver[ki] = arg.ver;
          put_acked_val[ki] = arg.val;
        }
      } else {
        // Fused fetch-and-add on one of MY fma keys.
        const std::uint64_t ki = r / 4 % fma_keys_per_client;
        const std::uint64_t key = fk0 + ki;
        LegArg arg;
        arg.slot = topo.slot(key);
        arg.val = 1;
        std::int64_t old = -1;
        ++fma_attempted[ki];
        if (write2(key, h_fma, arg, &old)) ++fma_acked[ki];
      }
    }
    // Serving barrier: a plain collective would stop serving this rank's
    // shard while stragglers still stream requests at it.
    am::barrier();

    // ---- Phase 3: verification reads from the live authority ----------
    for (std::uint64_t ki = 0; ki < put_keys_per_client; ++ki) {
      const std::uint64_t key = pk0 + ki;
      const int o = topo.owner(key);
      const bool failover = dead[static_cast<std::size_t>(o)];
      LegArg arg;
      arg.slot = topo.slot(key);
      arg.role = failover ? kRoleReplica : 0;
      const int target = failover ? topo.buddy(key) : o;
      am::Handle h = am::rpc(target, h_get, &arg, sizeof arg);
      h.wait();
      Slot got;
      std::memcpy(&got, h.reply().data(), sizeof got);
      // Zero lost acknowledged writes: the authority can never be behind
      // the last acked version...
      check(got.ver >= put_acked_ver[ki], "acked put lost", key);
      // ...and whatever version it holds must be a value this client
      // actually wrote (acked, or the one later unacked attempt).
      if (got.ver == put_acked_ver[ki])
        check(got.val == put_acked_val[ki], "acked put corrupted", key);
      else if (got.ver == put_attempt_ver[ki])
        check(got.val == put_attempt_val[ki], "unacked put corrupted", key);
      else
        check(false, "version from nowhere", key);
    }
    for (std::uint64_t ki = 0; ki < fma_keys_per_client; ++ki) {
      const std::uint64_t key = fk0 + ki;
      const int o = topo.owner(key);
      const bool failover = dead[static_cast<std::size_t>(o)];
      LegArg arg;
      arg.slot = topo.slot(key);
      arg.role = failover ? kRoleReplica : 0;
      const int target = failover ? topo.buddy(key) : o;
      am::Handle h = am::rpc(target, h_fma, &arg, sizeof arg);
      h.wait();  // delta 0 fetch: arg.val defaults to 0
      const auto final_count = h.reply_as<std::int64_t>();
      // No lost acked adds, no duplicated adds.
      check(final_count >= fma_acked[ki], "acked fma adds lost", key);
      check(final_count <= fma_attempted[ki], "fma adds duplicated", key);
    }

    am::barrier();  // keep serving until every rank finished verifying

    const std::uint64_t sent = armci::stats().am_sent;
    const std::uint64_t served = armci::stats().am_served;
    std::uint64_t tot[2] = {0, 0};
    const std::uint64_t mine[2] = {sent, served};
    mpisim::world().allreduce(mine, tot, 2, mpisim::BasicType::uint64,
                              mpisim::Op::sum);
    if (me == 0) {
      served_total = tot[1];
      std::printf(
          "dht: %d ranks, %ld client ops/rank, crash=%d -> %llu delegates "
          "sent, %llu served, %llu terminations, virtual time %.1f ms\n",
          nranks, ops_per_client, crash ? 1 : 0,
          (unsigned long long)tot[0], (unsigned long long)tot[1],
          (unsigned long long)armci::stats().am_terminations,
          mpisim::clock().now_ns() / 1e6);
    }
    am::finalize();
    armci::finalize();
  });

  if (verify_failures != 0) {
    std::fprintf(stderr, "dht: FAILED (%d verification failures)\n",
                 verify_failures);
    return 1;
  }
  std::printf("dht: OK (zero lost or duplicated acknowledged writes; "
              "%llu ops served)\n",
              (unsigned long long)served_total);
  return 0;
}
