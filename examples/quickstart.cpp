// Quickstart: the GA/ARMCI-MPI stack in one page.
//
// Starts a 4-process simulation on the InfiniBand-cluster profile, brings
// up ARMCI over MPI RMA (the paper's contribution), allocates a global
// array, and exercises the three one-sided primitives -- put, get,
// accumulate -- plus a collective dot product. Run:
//
//     ./build/examples/quickstart

#include <cstdio>
#include <numeric>
#include <vector>

#include "src/armci/armci.hpp"
#include "src/ga/ga.hpp"
#include "src/mpisim/runtime.hpp"

int main() {
  mpisim::run(4, mpisim::Platform::infiniband, [] {
    // 1. Initialize ARMCI on the MPI backend (ARMCI-MPI).
    armci::Options opts;
    opts.backend = armci::Backend::mpi;
    armci::init(opts);

    // 2. Create a 64x64 distributed array of doubles; each process owns a
    //    block (here a 2x2 process grid of 32x32 blocks).
    const std::int64_t dims[] = {64, 64};
    ga::GlobalArray a = ga::GlobalArray::create("A", dims, ga::ElemType::dbl);
    a.zero();

    // 3. One process writes a patch that spans all four owners (paper
    //    Fig. 2: one GA_Put -> several noncontiguous ARMCI operations).
    if (mpisim::rank() == 0) {
      ga::Patch patch;
      patch.lo = {16, 16};
      patch.hi = {47, 47};
      std::vector<double> buf(32 * 32);
      std::iota(buf.begin(), buf.end(), 1.0);
      a.put(patch, buf.data());
      std::printf("[rank 0] put a 32x32 patch spanning %zu owners\n",
                  a.locate_region(patch).size());
    }
    a.sync();

    // 4. Everyone accumulates into the same patch (atomic element-wise).
    {
      ga::Patch patch;
      patch.lo = {16, 16};
      patch.hi = {47, 47};
      std::vector<double> ones(32 * 32, 1.0);
      const double alpha = 0.25;
      a.acc(patch, ones.data(), &alpha);
    }
    a.sync();

    // 5. Read back one element and compute a global reduction.
    if (mpisim::rank() == 2) {
      ga::Patch one;
      one.lo = {16, 16};
      one.hi = {16, 16};
      double v = 0.0;
      a.get(one, &v);
      std::printf("[rank 2] a(16,16) = %.2f (1 + 4 ranks * 0.25)\n", v);
    }
    const double norm2 = a.ddot(a);
    if (mpisim::rank() == 0)
      std::printf("[rank 0] ||A||^2 = %.2f, virtual time so far: %.1f us\n",
                  norm2, mpisim::clock().now_ns() * 1e-3);

    a.destroy();
    armci::finalize();
  });
  std::puts("quickstart: OK");
  return 0;
}
