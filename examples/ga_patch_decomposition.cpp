// Figure 2 illustration: how a GA_Put on an index region decomposes into
// per-owner noncontiguous (strided) ARMCI operations.
//
// Prints the block distribution of a 2-d array over 4 processes and the
// owner-by-owner decomposition of a patch that straddles all of them, then
// performs the put and verifies it. Run:
//
//     ./build/examples/ga_patch_decomposition

#include <cstdio>
#include <numeric>
#include <vector>

#include "src/armci/armci.hpp"
#include "src/ga/ga.hpp"
#include "src/mpisim/runtime.hpp"

int main() {
  mpisim::run(4, mpisim::Platform::ideal, [] {
    armci::init({});
    const std::int64_t dims[] = {8, 8};
    ga::GlobalArray g = ga::GlobalArray::create("fig2", dims,
                                                ga::ElemType::dbl);
    g.zero();

    if (mpisim::rank() == 0) {
      std::printf("Distribution of an 8x8 array over 4 processes:\n");
      for (int p = 0; p < 4; ++p) {
        ga::Patch b = g.distribution(p);
        std::printf("  process %d owns rows [%ld..%ld] x cols [%ld..%ld]\n",
                    p, static_cast<long>(b.lo[0]), static_cast<long>(b.hi[0]),
                    static_cast<long>(b.lo[1]), static_cast<long>(b.hi[1]));
      }

      // The patch of paper Fig. 2: overlaps all four blocks.
      ga::Patch patch;
      patch.lo = {2, 2};
      patch.hi = {5, 5};
      std::printf(
          "\nGA_Put on rows [2..5] x cols [2..5] decomposes into %zu\n"
          "noncontiguous ARMCI operations (ARMCI_PutS):\n",
          g.locate_region(patch).size());
      for (const ga::OwnedPatch& op : g.locate_region(patch)) {
        std::printf(
            "  -> process %d: rows [%ld..%ld] x cols [%ld..%ld] "
            "(%ld elements)\n",
            op.proc, static_cast<long>(op.patch.lo[0]),
            static_cast<long>(op.patch.hi[0]),
            static_cast<long>(op.patch.lo[1]),
            static_cast<long>(op.patch.hi[1]),
            static_cast<long>(op.patch.num_elems()));
      }

      std::vector<double> buf(16);
      std::iota(buf.begin(), buf.end(), 1.0);
      g.put(patch, buf.data());
    }
    g.sync();

    // Every owner inspects its block directly (GA_Access / DLA).
    ga::Patch mine;
    auto* block = static_cast<double*>(g.access(mine));
    if (block != nullptr) {
      double local_sum = 0.0;
      const std::int64_t n = mine.num_elems();
      for (std::int64_t i = 0; i < n; ++i) local_sum += block[i];
      std::printf("[rank %d] local block sum after the put: %.0f\n",
                  mpisim::rank(), local_sum);
      g.release();
    }
    g.sync();

    g.destroy();
    armci::finalize();
  });
  std::puts("ga_patch_decomposition: OK");
  return 0;
}
