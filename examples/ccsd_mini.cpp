// A miniature NWChem CCSD(T) run (paper §VII): the full proxy pipeline --
// amplitude tensor on a global array, dynamically load-balanced CCSD
// contraction sweeps (get tile -> contract -> accumulate tile), then the
// get-heavy perturbative-triples phase -- on both ARMCI backends, printing
// the Figure-6-style comparison for one platform, on all three backends
// (native baseline, the paper's MPI-2 port, and the §VIII-B MPI-3 design).
//
//     ./build/examples/ccsd_mini [platform]     (bgp|ib|xt5|xe6, default ib)

#include <cstdio>
#include <string>

#include "src/armci/armci.hpp"
#include "src/mpisim/runtime.hpp"
#include "src/nwproxy/ccsd.hpp"

namespace {

mpisim::Platform parse_platform(const char* s) {
  const std::string p = s;
  if (p == "bgp") return mpisim::Platform::bluegene_p;
  if (p == "xt5") return mpisim::Platform::cray_xt5;
  if (p == "xe6") return mpisim::Platform::cray_xe6;
  return mpisim::Platform::infiniband;
}

}  // namespace

int main(int argc, char** argv) {
  const mpisim::Platform plat =
      argc > 1 ? parse_platform(argv[1]) : mpisim::Platform::infiniband;

  nwproxy::CcsdParams params = nwproxy::w5_scaled(0.15);
  params.iterations = 2;

  std::printf("mini-CCSD(T): no=%ld nv=%ld tile=%ld -> %ld CCSD tasks, "
              "%ld triples\n",
              static_cast<long>(params.no), static_cast<long>(params.nv),
              static_cast<long>(params.tile),
              static_cast<long>(nwproxy::ccsd_tasks(params)),
              static_cast<long>(nwproxy::triples_tasks(params)));

  for (armci::Backend backend :
       {armci::Backend::native, armci::Backend::mpi,
        armci::Backend::mpi3}) {
    mpisim::run(8, plat, [&] {
      armci::Options opts;
      opts.backend = backend;
      armci::init(opts);

      nwproxy::Amplitudes t2;
      nwproxy::PhaseResult ccsd = nwproxy::run_ccsd(params, t2);
      nwproxy::PhaseResult tri = nwproxy::run_triples(params, t2);

      if (mpisim::rank() == 0) {
        std::printf(
            "  %-12s CCSD %8.2f ms (E = %.6f)   (T) %8.2f ms (E = %.6f)\n",
            backend == armci::Backend::mpi      ? "ARMCI-MPI"
            : backend == armci::Backend::native ? "ARMCI-Native"
                                                : "ARMCI-MPI3",
            ccsd.virtual_seconds * 1e3, ccsd.energy,
            tri.virtual_seconds * 1e3, tri.energy);
      }
      t2.destroy();
      armci::finalize();
    });
  }
  std::puts("ccsd_mini: OK (energies must match between backends)");
  return 0;
}
