// Dynamic load balancing with a shared atomic counter -- the "nxtval"
// pattern NWChem uses over GA/ARMCI (paper §IV-A, §VII-D): tasks of wildly
// different sizes are claimed one-by-one from a fetch-and-add counter, so
// fast processes automatically take more tasks. Also demonstrates ARMCI
// mutexes (the Latham queueing algorithm, §V-D) protecting a shared
// accumulator that fetch-and-add alone could not update.
//
//     ./build/examples/dynamic_load_balance

#include <cstdio>
#include <vector>

#include "src/armci/armci.hpp"
#include "src/ga/ga.hpp"
#include "src/mpisim/pacer.hpp"
#include "src/mpisim/runtime.hpp"

int main() {
  mpisim::run(8, mpisim::Platform::infiniband, [] {
    armci::init({});

    // A shared counter hands out task ids; a mutex-protected global cell
    // collects a result that needs read-modify-write.
    ga::AtomicCounter counter = ga::AtomicCounter::create();
    std::vector<void*> accum = armci::malloc_world(sizeof(double));
    if (mpisim::rank() == 0) *static_cast<double*>(accum[0]) = 0.0;
    armci::create_mutexes(1);
    armci::barrier();

    // Tasks are claimed in virtual-clock order (mpisim::Pacer) so the
    // modeled balance -- not host-thread scheduling -- decides who gets
    // what: processes whose previous task was short claim again sooner.
    mpisim::Pacer pacer = mpisim::Pacer::create(mpisim::world());
    const std::int64_t ntasks = 64;
    std::int64_t my_tasks = 0;
    double my_sum = 0.0;
    pacer.enter();
    for (std::int64_t t = 0; (pacer.pace(), t = counter.next()) < ntasks;) {
      // Task t: "work" proportional to t (simulated via the virtual clock).
      mpisim::clock().advance(1000.0 * static_cast<double>(t + 1));  // ns
      my_sum += static_cast<double>(t * t);
      ++my_tasks;
    }
    pacer.leave();

    // Fold the partial result into the global accumulator under the mutex
    // (get-modify-put is not atomic by itself).
    armci::lock(0, 0);
    double v = 0.0;
    armci::get(accum[0], &v, sizeof v, 0);
    v += my_sum;
    armci::put(&v, accum[0], sizeof v, 0);
    armci::fence(0);
    armci::unlock(0, 0);
    armci::barrier();

    std::printf("[rank %d] claimed %ld of %ld tasks\n", mpisim::rank(),
                static_cast<long>(my_tasks), static_cast<long>(ntasks));
    if (mpisim::rank() == 0) {
      const double total = *static_cast<double*>(accum[0]);
      const double expect = 63.0 * 64.0 * 127.0 / 6.0;  // sum of t^2
      std::printf("[rank 0] global sum %.0f (expected %.0f)\n", total,
                  expect);
    }

    armci::destroy_mutexes();
    armci::free(accum[static_cast<std::size_t>(mpisim::rank())]);
    counter.destroy();
    armci::finalize();
  });
  std::puts("dynamic_load_balance: OK");
  return 0;
}
