// Distributed out-of-place matrix transpose -- a strided-operation stress
// case (paper §VI): every process reads row-panels of A and writes them as
// column-panels of B, so each transfer is noncontiguous on at least one
// side and exercises ARMCI-MPI's direct (subarray datatype) method.
//
//     ./build/examples/transpose_strided [method]
//
// where method is one of: direct (default), iov-direct, iov-batched,
// iov-conservative.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/armci/armci.hpp"
#include "src/ga/ga.hpp"
#include "src/mpisim/runtime.hpp"

namespace {

armci::StridedMethod parse_method(const char* s) {
  const std::string m = s;
  if (m == "iov-direct") return armci::StridedMethod::iov_direct;
  if (m == "iov-batched") return armci::StridedMethod::iov_batched;
  if (m == "iov-conservative")
    return armci::StridedMethod::iov_conservative;
  return armci::StridedMethod::direct;
}

}  // namespace

int main(int argc, char** argv) {
  const armci::StridedMethod method =
      argc > 1 ? parse_method(argv[1]) : armci::StridedMethod::direct;

  mpisim::run(4, mpisim::Platform::cray_xt5, [method] {
    armci::Options opts;
    opts.backend = armci::Backend::mpi;
    opts.strided_method = method;
    armci::init(opts);

    const std::int64_t n = 96;
    const std::int64_t dims[] = {n, n};
    ga::GlobalArray a = ga::GlobalArray::create("A", dims, ga::ElemType::dbl);
    ga::GlobalArray b = ga::GlobalArray::create("B", dims, ga::ElemType::dbl);
    b.zero();

    // Fill A: a(i,j) = i * n + j, written by its owners directly.
    ga::Patch mine;
    auto* blk = static_cast<double*>(a.access(mine));
    if (blk != nullptr) {
      const std::int64_t ni = mine.extent(1);
      for (std::int64_t i = mine.lo[0]; i <= mine.hi[0]; ++i)
        for (std::int64_t j = mine.lo[1]; j <= mine.hi[1]; ++j)
          blk[(i - mine.lo[0]) * ni + (j - mine.lo[1])] =
              static_cast<double>(i * n + j);
      a.release_update();
    }
    a.sync();

    // Each process transposes its block of A into B: fetch nothing, write
    // a transposed patch of B one column-panel at a time. The local buffer
    // is read with stride n (a column of the local block), making both
    // sides of the ARMCI operation noncontiguous.
    const double t0 = mpisim::clock().now_ns();
    blk = static_cast<double*>(a.access(mine));
    if (blk != nullptr) {
      const std::int64_t rows = mine.extent(0);
      const std::int64_t cols = mine.extent(1);
      std::vector<double> colbuf(static_cast<std::size_t>(rows));
      for (std::int64_t j = 0; j < cols; ++j) {
        for (std::int64_t i = 0; i < rows; ++i)
          colbuf[static_cast<std::size_t>(i)] =
              blk[i * cols + j];  // column j of my block
        ga::Patch dst;  // row (lo[1]+j) of B, columns [lo[0]..hi[0]]
        dst.lo = {mine.lo[1] + j, mine.lo[0]};
        dst.hi = {mine.lo[1] + j, mine.hi[0]};
        b.put(dst, colbuf.data());
      }
      a.release();
    }
    b.sync();
    const double elapsed_us = (mpisim::clock().now_ns() - t0) * 1e-3;

    // Verify: b(i,j) == a(j,i).
    long errors = 0;
    auto* bblk = static_cast<double*>(b.access(mine));
    if (bblk != nullptr) {
      const std::int64_t ni = mine.extent(1);
      for (std::int64_t i = mine.lo[0]; i <= mine.hi[0]; ++i)
        for (std::int64_t j = mine.lo[1]; j <= mine.hi[1]; ++j)
          if (bblk[(i - mine.lo[0]) * ni + (j - mine.lo[1])] !=
              static_cast<double>(j * n + i))
            ++errors;
      b.release();
    }
    b.sync();
    std::printf("[rank %d] transpose done: %ld errors, %.1f virtual us\n",
                mpisim::rank(), errors, elapsed_us);

    b.destroy();
    a.destroy();
    armci::finalize();
  });
  std::puts("transpose_strided: OK");
  return 0;
}
