// 2-d Jacobi heat relaxation with halo exchange over Global Arrays -- a
// classic PGAS workload: each process updates its own block under direct
// local access and pulls halo rows/columns from its neighbors with
// one-sided gets.
//
//     ./build/examples/stencil_halo [iterations]

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "src/armci/armci.hpp"
#include "src/ga/ga.hpp"
#include "src/mpisim/runtime.hpp"

namespace {

constexpr std::int64_t kN = 96;  // grid size (with boundary)

/// One Jacobi sweep: next = average of the four neighbors of cur.
void sweep(ga::GlobalArray& cur, ga::GlobalArray& next) {
  ga::Patch mine;
  auto* out = static_cast<double*>(next.access(mine));
  if (out != nullptr) {
    const std::int64_t r0 = mine.lo[0], r1 = mine.hi[0];
    const std::int64_t c0 = mine.lo[1], c1 = mine.hi[1];
    const std::int64_t cols = c1 - c0 + 1;

    // Fetch the block plus a one-cell halo from `cur` (interior only).
    const std::int64_t hr0 = std::max<std::int64_t>(0, r0 - 1);
    const std::int64_t hr1 = std::min<std::int64_t>(kN - 1, r1 + 1);
    const std::int64_t hc0 = std::max<std::int64_t>(0, c0 - 1);
    const std::int64_t hc1 = std::min<std::int64_t>(kN - 1, c1 + 1);
    const std::int64_t hrows = hr1 - hr0 + 1, hcols = hc1 - hc0 + 1;
    std::vector<double> halo(static_cast<std::size_t>(hrows * hcols));
    ga::Patch hp;
    hp.lo = {hr0, hc0};
    hp.hi = {hr1, hc1};
    cur.get(hp, halo.data());

    auto at = [&](std::int64_t r, std::int64_t c) {
      return halo[static_cast<std::size_t>((r - hr0) * hcols + (c - hc0))];
    };
    for (std::int64_t r = r0; r <= r1; ++r) {
      for (std::int64_t c = c0; c <= c1; ++c) {
        double v;
        if (r == 0 || r == kN - 1 || c == 0 || c == kN - 1) {
          v = at(r, c);  // fixed boundary
        } else {
          v = 0.25 * (at(r - 1, c) + at(r + 1, c) + at(r, c - 1) +
                      at(r, c + 1));
        }
        out[(r - r0) * cols + (c - c0)] = v;
      }
    }
    next.release_update();
  }
  next.sync();
}

}  // namespace

int main(int argc, char** argv) {
  const int iters = argc > 1 ? std::atoi(argv[1]) : 50;

  mpisim::run(4, mpisim::Platform::cray_xe6, [iters] {
    armci::init({});
    const std::int64_t dims[] = {kN, kN};
    ga::GlobalArray a = ga::GlobalArray::create("heat_a", dims,
                                                ga::ElemType::dbl);
    ga::GlobalArray b = ga::GlobalArray::create("heat_b", dims,
                                                ga::ElemType::dbl);
    a.zero();
    b.zero();

    // Hot top edge, cold bottom edge.
    if (mpisim::rank() == 0) {
      std::vector<double> hot(kN, 100.0);
      ga::Patch top{{0, 0}, {0, kN - 1}};
      a.put(top, hot.data());
      b.put(top, hot.data());
    }
    a.sync();
    b.sync();

    const double t0 = mpisim::clock().now_ns();
    ga::GlobalArray* cur = &a;
    ga::GlobalArray* nxt = &b;
    for (int it = 0; it < iters; ++it) {
      sweep(*cur, *nxt);
      std::swap(cur, nxt);
    }
    const double ms = (mpisim::clock().now_ns() - t0) * 1e-6;

    // Residual heat: total energy must stay bounded by the boundary.
    const double norm = std::sqrt(cur->ddot(*cur));
    ga::GlobalArray::Selected hottest =
        cur->select_elem(ga::GlobalArray::SelectOp::max);
    if (mpisim::rank() == 0) {
      std::printf("stencil: %d sweeps of a %ldx%ld grid on 4 ranks\n", iters,
                  static_cast<long>(kN), static_cast<long>(kN));
      std::printf("  ||u|| = %.3f, hottest interior-ish cell (%ld, %ld) = "
                  "%.2f, %.2f virtual ms\n",
                  norm, static_cast<long>(hottest.subscript[0]),
                  static_cast<long>(hottest.subscript[1]), hottest.value, ms);
      if (hottest.value > 100.0 + 1e-9 || norm <= 0.0) {
        std::puts("stencil: FAILED (unphysical result)");
        std::exit(1);
      }
    }

    b.destroy();
    a.destroy();
    armci::finalize();
  });
  std::puts("stencil_halo: OK");
  return 0;
}
