#include "src/am/am.hpp"

#include <algorithm>
#include <cstring>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/armci/gmr.hpp"
#include "src/armci/state.hpp"
#include "src/mpisim/comm.hpp"
#include "src/mpisim/error.hpp"
#include "src/mpisim/hb.hpp"
#include "src/mpisim/runtime.hpp"

namespace am {

using mpisim::Errc;

namespace {

/// Tag of every request message on the layer's private communicator.
constexpr int kReqTag = 1;

/// Reply tags: base + (seq mod kReplyTagMod). Together with the specific
/// source rank of the posted receive, collisions would need 2^20
/// concurrently outstanding rpcs from one origin to one target.
constexpr int kReplyTagBase = 1000;
constexpr std::uint64_t kReplyTagMod = 1ull << 20;

constexpr std::uint32_t kFlagWantsReply = 1u;
constexpr std::uint32_t kFlagCounted = 2u;

/// On-wire request header, followed by arg_bytes of argument payload.
struct WireHeader {
  std::uint64_t seq = 0;
  std::uint32_t handler = 0;
  std::uint32_t flags = 0;
  std::uint32_t gce = 0;
  std::uint32_t arg_bytes = 0;
};

/// On-wire reply: this header followed by the handler's reply bytes.
struct WireReply {
  std::uint64_t seq = 0;
};

/// Argument of the layer's internal control handler (serving barrier).
struct CtlArg {
  std::uint64_t kind = 0;  ///< 0 = barrier token, 1 = barrier release
  std::uint64_t gen = 0;   ///< barrier generation the message belongs to
};

int reply_tag(std::uint64_t seq) {
  return kReplyTagBase + static_cast<int>(seq % kReplyTagMod);
}

/// One termination counter: delegates issued per target by this rank, and
/// counted delegates served by this rank.
struct GceState {
  std::vector<std::uint64_t> issued;
  std::uint64_t served = 0;
};

/// Per-process layer state, anchored in ProcState::am_state.
struct AmState {
  mpisim::Comm comm;  ///< private dup of the world communicator
  std::vector<Handler> handlers;
  std::uint64_t next_seq = 1;
  bool serving = false;  ///< re-entrancy guard for the serve loop
  GceState gce[kNumGces];

  /// Virtual-time frontier of the progress persona. With the cooperative
  /// engine on, handlers run at request *arrival* time, hidden under the
  /// owner's concurrent compute -- the serve advances this timeline, not
  /// the application clock. Engine off, serving is serial: the application
  /// clock pays for delivery and the reply.
  double persona_now_ns = 0.0;

  // Serving-barrier state (see am::barrier()).
  int ctl_handler = -1;       ///< internal handler id (registered by init)
  std::uint64_t barrier_gen = 0;
  std::unordered_map<std::uint64_t, int> barrier_tokens;  ///< root: per gen
  std::uint64_t barrier_releases = 0;  ///< non-root: releases received
};

AmState& require_am() {
  armci::ProcState& st = armci::state();
  if (st.am_state == nullptr)
    mpisim::raise(Errc::invalid_argument, "am layer not initialized");
  return *static_cast<AmState*>(st.am_state.get());
}

int require_gce(int gce) {
  if (gce < 0 || gce >= kNumGces)
    mpisim::raise(Errc::invalid_argument,
                  "gce id " + std::to_string(gce) + " outside [0, " +
                      std::to_string(kNumGces) + ")");
  return gce;
}

}  // namespace

/// Shared completion state of one rpc(), owned by its Handle copies.
struct OpState {
  mpisim::Comm::Request rreq;  ///< posted reply receive
  std::vector<std::uint8_t> rbuf;
  int target = -1;  ///< world rank
  std::uint64_t seq = 0;
  bool completed = false;
  std::size_t reply_bytes = 0;
  std::exception_ptr error;  ///< parked transport failure
  bool error_surfaced = false;
  std::vector<std::function<void(std::exception_ptr)>> callbacks;
};

namespace {

/// Fire and clear the operation-level callbacks (never under the lock).
void fire_callbacks(OpState& op, std::exception_ptr e) {
  std::vector<std::function<void(std::exception_ptr)>> cbs;
  cbs.swap(op.callbacks);
  for (auto& cb : cbs) cb(e);
}

/// Complete \p op with a transport error. Registered callbacks consume it
/// (the error counts as surfaced through them); otherwise it is rethrown
/// here -- exactly once either way.
void fail(OpState& op, std::exception_ptr e) {
  op.completed = true;
  op.error = e;
  if (!op.callbacks.empty()) {
    op.error_surfaced = true;
    fire_callbacks(op, e);
    return;
  }
  op.error_surfaced = true;
  std::rethrow_exception(e);
}

/// Decode the delivered reply into \p op and run success callbacks.
void finish_reply(OpState& op) {
  mpisim::Status st;
  op.rreq.test(&st);  // already complete; fetches the status
  if (st.bytes < sizeof(WireReply))
    mpisim::raise(Errc::internal, "am reply shorter than its header");
  WireReply rh;
  std::memcpy(&rh, op.rbuf.data(), sizeof rh);
  if (rh.seq != op.seq)
    mpisim::raise(Errc::internal, "am reply sequence mismatch");
  op.reply_bytes = st.bytes - sizeof(WireReply);
  op.completed = true;
  fire_callbacks(op, nullptr);
}

/// Nonblocking completion attempt: serve-loop progress is the caller's
/// job. Returns true when \p op is fully complete; surfaces a parked or
/// newly observed transport failure per the exactly-once contract.
bool try_complete(OpState& op) {
  if (op.completed) {
    if (op.error != nullptr && !op.error_surfaced) {
      op.error_surfaced = true;
      std::rethrow_exception(op.error);
    }
    return true;
  }
  try {
    if (!op.rreq.test()) return false;
  } catch (...) {
    // A rank's *own* scheduled death must unwind the rank, never park.
    if (mpisim::ctx().core().is_failed(mpisim::rank())) throw;
    fail(op, std::current_exception());
    return true;  // reached only when callbacks consumed the error
  }
  finish_reply(op);
  return true;
}

/// Serve one queued inbound request; false when none is queued. The
/// request is consumed and the handler executed under the receiver's
/// progress-persona identity (happens-before detector), so an application
/// touch of handler-written memory is racy until a completion edge -- the
/// reply at the origin, the persona retirement here.
bool serve_one(AmState& am, armci::ProcState& st) {
  mpisim::RankContext& me = mpisim::ctx();
  mpisim::SimCore& core = me.core();
  const std::uint64_t cid = am.comm.id();
  mpisim::Message m;
  {
    std::unique_lock lk(core.mu());
    mpisim::Mailbox& mb = core.mailbox(me.rank());
    if (!mb.has_match(cid, mpisim::kAnySource, kReqTag)) return false;
    m = mb.pop_match(cid, mpisim::kAnySource, kReqTag);
    if (core.hb().enabled()) {
      // The persona acts for the owner: order it after the owner's current
      // point, then acquire the requester's clock at the receive.
      core.hb().persona_sync(me.rank());
      core.hb().recv_join(core.hb().persona(me.rank()), m.vc);
    }
  }
  // Delivery time is node-aware: same-node delegates ride the shared-memory
  // copy cost. With the cooperative progress engine the persona serves at
  // arrival time on its own timeline (the tick that would have drained the
  // queue), overlapped with the owner's compute; without it the owner's
  // application clock pays for the delivery serially.
  const double delivery_ns =
      m.send_ts_ns +
      core.model().p2p_ns(m.payload.size(), m.src_comm_rank, me.rank());
  double serve_ns;
  if (st.opts.progress) {
    am.persona_now_ns = std::max(am.persona_now_ns, delivery_ns);
    serve_ns = am.persona_now_ns;
  } else {
    me.clock().advance_to(delivery_ns);
    serve_ns = me.clock().now_ns();
  }

  if (m.payload.size() < sizeof(WireHeader))
    mpisim::raise(Errc::internal, "am request shorter than its header");
  WireHeader h;
  std::memcpy(&h, m.payload.data(), sizeof h);
  if (h.handler >= am.handlers.size())
    mpisim::raise(Errc::invalid_argument,
                  "am request names unregistered handler " +
                      std::to_string(h.handler));
  if (sizeof(WireHeader) + h.arg_bytes != m.payload.size())
    mpisim::raise(Errc::internal, "am request argument size mismatch");

  std::vector<std::uint8_t> reply(sizeof(WireReply) + kMaxReplyBytes);
  std::size_t reply_bytes = 0;
  {
    am.serving = true;
    struct Unguard {
      bool* flag;
      ~Unguard() { *flag = false; }
    } unguard{&am.serving};
    reply_bytes = am.handlers[h.handler](
        m.src_comm_rank, m.payload.data() + sizeof(WireHeader), h.arg_bytes,
        reply.data() + sizeof(WireReply), kMaxReplyBytes);
  }
  if (reply_bytes > kMaxReplyBytes)
    mpisim::raise(Errc::invalid_argument,
                  "handler reply of " + std::to_string(reply_bytes) +
                      " bytes exceeds kMaxReplyBytes");
  ++st.stats.am_served;
  if ((h.flags & kFlagCounted) != 0) ++am.gce[h.gce].served;

  if ((h.flags & kFlagWantsReply) != 0) {
    WireReply rh;
    rh.seq = h.seq;
    mpisim::Message r;
    r.comm_id = cid;
    r.src_comm_rank = me.rank();
    r.tag = reply_tag(h.seq);
    r.payload.resize(sizeof rh + reply_bytes);
    std::memcpy(r.payload.data(), &rh, sizeof rh);
    std::memcpy(r.payload.data() + sizeof rh, reply.data() + sizeof rh,
                reply_bytes);
    const double send_cost_ns = core.model().p2p_ns(0);
    if (st.opts.progress) {
      am.persona_now_ns += send_cost_ns;
      serve_ns = am.persona_now_ns;
    } else {
      me.clock().advance(send_cost_ns);
      serve_ns = me.clock().now_ns();
    }
    r.send_ts_ns = serve_ns + me.fault().draw_delivery_delay_ns();
    std::lock_guard lk(core.mu());
    core.note_time_locked(std::max(serve_ns, me.clock().now_ns()));
    if (core.survivable() && core.is_dead_locked(m.src_comm_rank)) {
      // The requester died while we served: nobody will consume the
      // reply, and its handle already surfaces Errc::crashed. Drop it.
    } else {
      if (core.hb().enabled()) {
        // The reply carries the *persona's* clock: receiving it hands the
        // origin the handler's publications (completion edge).
        r.vc = core.hb().send_snapshot(core.hb().persona(me.rank()));
      }
      core.mailbox(m.src_comm_rank).push(std::move(r));
      core.poke();
    }
  }
  if (core.hb().enabled()) {
    // The handler ran on this thread: the owner continues sequenced after
    // it, so it acquires the persona clock (no false race with own serve).
    std::lock_guard lk(core.mu());
    core.hb().persona_retire(me.rank());
  }
  return true;
}

int poll_impl() {
  armci::ProcState* stp = armci::state_if_initialized();
  if (stp == nullptr || stp->am_state == nullptr) return 0;
  AmState& am = *static_cast<AmState*>(stp->am_state.get());
  if (am.serving) return 0;  // no nested serving: handlers must not block
  int served = 0;
  while (serve_one(am, *stp)) ++served;
  return served;
}

}  // namespace

void init() {
  armci::ProcState& st = armci::state();
  if (st.am_state != nullptr)
    mpisim::raise(Errc::invalid_argument, "am layer already initialized");
  auto am = std::make_shared<AmState>();
  am->comm = mpisim::world().dup();
  for (GceState& g : am->gce)
    g.issued.assign(static_cast<std::size_t>(mpisim::nranks()), 0);
  // Internal control handler (barrier tokens/releases); registered first so
  // it holds the same id on every rank regardless of user registrations.
  AmState* amp = am.get();
  am->handlers.push_back([amp](int, const void* a, std::size_t bytes, void*,
                               std::size_t) -> std::size_t {
    CtlArg c;
    std::memcpy(&c, a, std::min(bytes, sizeof c));
    if (c.kind == 0)
      ++amp->barrier_tokens[c.gen];
    else
      ++amp->barrier_releases;
    return 0;
  });
  am->ctl_handler = 0;
  st.am_state = am;
  st.am_poll = [] { poll_impl(); };
  am->comm.barrier();
}

void finalize() {
  armci::ProcState* stp = armci::state_if_initialized();
  if (stp == nullptr || stp->am_state == nullptr) return;
  quiesce(0);
  AmState& am = *static_cast<AmState*>(stp->am_state.get());
  am.comm.barrier();
  stp->am_poll = nullptr;
  stp->am_state.reset();
}

bool initialized() noexcept {
  armci::ProcState* stp = armci::state_if_initialized();
  return stp != nullptr && stp->am_state != nullptr;
}

int register_handler(Handler fn) {
  if (fn == nullptr)
    mpisim::raise(Errc::invalid_argument, "null am handler");
  AmState& am = require_am();
  if (am.handlers.size() >= kMaxHandlers)
    mpisim::raise(Errc::resource_exhausted,
                  "handler registry full (kMaxHandlers = " +
                      std::to_string(kMaxHandlers) + ")");
  am.handlers.push_back(std::move(fn));
  return static_cast<int>(am.handlers.size()) - 1;
}

namespace {

/// Argument validation shared by rpc()/rpc_ff(). Runs before any state is
/// mutated (in particular before a termination counter is bumped: a
/// rejected request must not leave a phantom issue quiesce() waits on).
void validate_request(const AmState& am, int target, int handler,
                      const void* arg, std::size_t bytes) {
  if (handler < 0 ||
      static_cast<std::size_t>(handler) >= am.handlers.size())
    mpisim::raise(Errc::invalid_argument,
                  "unregistered handler id " + std::to_string(handler));
  if (bytes > kMaxArgBytes)
    mpisim::raise(Errc::invalid_argument,
                  "argument of " + std::to_string(bytes) +
                      " bytes exceeds kMaxArgBytes");
  if (bytes > 0 && arg == nullptr)
    mpisim::raise(Errc::invalid_argument, "null argument with bytes > 0");
  if (target < 0 || target >= mpisim::nranks())
    mpisim::raise(Errc::rank_out_of_range,
                  "am target " + std::to_string(target) + " outside [0, " +
                      std::to_string(mpisim::nranks()) + ")");
}

/// Build and send one pre-validated request message; parks a transport
/// failure (e.g. target dead) in \p op instead of throwing when \p op is
/// non-null, so the error surfaces through the handle exactly once.
void send_request(AmState& am, armci::ProcState& st, int target, int handler,
                  const void* arg, std::size_t bytes, std::uint32_t flags,
                  int gce, std::uint64_t seq, OpState* op) {
  WireHeader h;
  h.seq = seq;
  h.handler = static_cast<std::uint32_t>(handler);
  h.flags = flags;
  h.gce = static_cast<std::uint32_t>(gce);
  h.arg_bytes = static_cast<std::uint32_t>(bytes);
  std::vector<std::uint8_t> payload(sizeof h + bytes);
  std::memcpy(payload.data(), &h, sizeof h);
  if (bytes > 0) std::memcpy(payload.data() + sizeof h, arg, bytes);
  ++st.stats.am_sent;
  try {
    am.comm.send(payload.data(), payload.size(), target, kReqTag);
  } catch (...) {
    // Park a transport failure (dead target) in the handle; the sender's
    // own scheduled death must keep unwinding the rank instead.
    if (op == nullptr || mpisim::ctx().core().is_failed(mpisim::rank()))
      throw;
    op->completed = true;
    op->error = std::current_exception();
  }
}

}  // namespace

Handle rpc(int target, int handler, const void* arg, std::size_t bytes) {
  armci::ProcState& st = armci::state();
  AmState& am = require_am();
  validate_request(am, target, handler, arg, bytes);
  auto op = std::make_shared<OpState>();
  op->target = target;
  op->seq = am.next_seq++;
  op->rbuf.resize(sizeof(WireReply) + kMaxReplyBytes);
  // Post the reply receive *before* the request leaves: the reply can
  // never pile up in the unexpected queue (or trip the mailbox cap), and
  // the posted-receive fast path delivers it straight into the handle.
  op->rreq = am.comm.irecv(op->rbuf.data(), op->rbuf.size(), target,
                           reply_tag(op->seq));
  send_request(am, st, target, handler, arg, bytes, kFlagWantsReply,
               /*gce=*/0, op->seq, op.get());
  Handle h;
  h.op_ = std::move(op);
  return h;
}

void rpc_ff(int target, int handler, const void* arg, std::size_t bytes,
            int gce) {
  armci::ProcState& st = armci::state();
  AmState& am = require_am();
  require_gce(gce);
  validate_request(am, target, handler, arg, bytes);
  // Count the issue before the send so a crash observed mid-send cannot
  // leave a served-but-never-issued delegate in the global balance; roll it
  // back if the send itself fails (mailbox cap, dead target) -- a delegate
  // that never entered the channel must not hold up termination.
  ++am.gce[gce].issued[static_cast<std::size_t>(target)];
  try {
    send_request(am, st, target, handler, arg, bytes, kFlagCounted, gce,
                 am.next_seq++, /*op=*/nullptr);
  } catch (...) {
    --am.gce[gce].issued[static_cast<std::size_t>(target)];
    throw;
  }
}

int poll() { return poll_impl(); }

bool Handle::test(armci::Completion level) {
  if (op_ == nullptr)
    mpisim::raise(Errc::invalid_argument, "test on an empty am::Handle");
  if (op_->completed || level == armci::Completion::source)
    return try_complete(*op_) || level == armci::Completion::source;
  poll();  // a poll loop must itself serve inbound requests
  return try_complete(*op_);
}

void Handle::wait() {
  if (op_ == nullptr)
    mpisim::raise(Errc::invalid_argument, "wait on an empty am::Handle");
  OpState& op = *op_;
  AmState& am = require_am();
  mpisim::RankContext& me = mpisim::ctx();
  mpisim::SimCore& core = me.core();
  const std::uint64_t cid = am.comm.id();
  for (;;) {
    if (try_complete(op)) return;
    if (poll() > 0) continue;  // serving may have unblocked our reply
    // Block until the reply is delivered, an inbound request arrives
    // (serve-while-waiting), or -- in survivable mode -- the target dies;
    // rreq.test() then surfaces Errc::crashed through the handle.
    std::unique_lock lk(core.mu());
    core.wait(lk,
              [&] {
                if (op.rreq.ready_locked()) return true;
                if (core.mailbox(me.rank())
                        .has_match(cid, mpisim::kAnySource, kReqTag))
                  return true;
                return core.survivable() &&
                       core.is_dead_locked(op.target);
              },
              "am.wait");
  }
}

void Handle::on_complete(armci::Completion level,
                         std::function<void(std::exception_ptr)> fn) {
  if (fn == nullptr)
    mpisim::raise(Errc::invalid_argument, "on_complete callback is null");
  if (op_ == nullptr)
    mpisim::raise(Errc::invalid_argument,
                  "on_complete on an empty am::Handle");
  OpState& op = *op_;
  if (level == armci::Completion::source && !op.completed) {
    fn(nullptr);  // local completion held since rpc() returned
    return;
  }
  if (op.completed) {
    std::exception_ptr e = op.error;
    if (e != nullptr) op.error_surfaced = true;
    fn(e);
    return;
  }
  op.callbacks.push_back(std::move(fn));
}

std::span<const std::uint8_t> Handle::reply() const {
  if (op_ == nullptr || !op_->completed || op_->error != nullptr)
    mpisim::raise(Errc::invalid_argument,
                  "reply() before successful completion");
  return {op_->rbuf.data() + sizeof(WireReply), op_->reply_bytes};
}

void Handle::decode_reply(void* out, std::size_t bytes) const {
  const std::span<const std::uint8_t> r = reply();
  if (r.size() != bytes)
    mpisim::raise(Errc::invalid_argument,
                  "reply of " + std::to_string(r.size()) +
                      " bytes decoded as " + std::to_string(bytes));
  std::memcpy(out, r.data(), bytes);
}

void quiesce(int gce) {
  armci::ProcState& st = armci::state();
  AmState& am = require_am();
  require_gce(gce);
  mpisim::SimCore& core = mpisim::ctx().core();
  const auto n = static_cast<std::size_t>(mpisim::nranks());
  const int me = mpisim::rank();
  // Counting rounds: allreduce [issued_to[0..n), served@me] and converge
  // when every live target's global served count has caught up with the
  // global issue count aimed at it. Ranks inside the allreduce neither
  // issue nor serve, so an equal round is a consistent cut; an in-flight
  // delegate keeps its target's issue count ahead and forces another
  // round. Dead targets are skipped (their queued delegates are lost), and
  // dead *issuers* drop out of the sum -- served can then exceed issued,
  // hence >= rather than ==.
  std::vector<std::uint64_t> in(2 * n), out(2 * n);
  for (;;) {
    poll();
    GceState& g = am.gce[gce];
    std::copy(g.issued.begin(), g.issued.end(), in.begin());
    std::fill(in.begin() + static_cast<std::ptrdiff_t>(n), in.end(), 0);
    in[n + static_cast<std::size_t>(me)] = g.served;
    am.comm.allreduce(in.data(), out.data(), 2 * n,
                      mpisim::BasicType::uint64, mpisim::Op::sum);
    bool converged = true;
    {
      std::lock_guard lk(core.mu());
      for (std::size_t t = 0; t < n; ++t) {
        if (core.is_dead_locked(static_cast<int>(t))) continue;
        if (out[n + t] < out[t]) {
          converged = false;
          break;
        }
      }
    }
    if (converged) break;
  }
  ++st.stats.am_terminations;
  if (core.hb().enabled()) {
    // Termination is the collective completion edge for fire-and-forget
    // delegates: every rank retires its persona, and the allreduce just
    // completed crosses the persona clocks to every other rank.
    std::lock_guard lk(core.mu());
    core.hb().persona_retire(me);
  }
}

void poll_wait(const std::function<bool()>& pred) {
  if (pred == nullptr)
    mpisim::raise(Errc::invalid_argument, "poll_wait predicate is null");
  AmState& am = require_am();
  mpisim::RankContext& me = mpisim::ctx();
  mpisim::SimCore& core = me.core();
  const std::uint64_t cid = am.comm.id();
  for (;;) {
    {
      std::lock_guard lk(core.mu());
      if (pred()) return;
    }
    if (poll_impl() > 0) continue;  // serving may have flipped pred
    std::unique_lock lk(core.mu());
    core.wait(lk,
              [&] {
                return pred() ||
                       core.mailbox(me.rank())
                           .has_match(cid, mpisim::kAnySource, kReqTag);
              },
              "am.poll_wait");
  }
}

void barrier() {
  armci::ProcState& st = armci::state();
  AmState& am = require_am();
  mpisim::SimCore& core = mpisim::ctx().core();
  const int n = mpisim::nranks();
  const int me = mpisim::rank();
  const std::uint64_t gen = ++am.barrier_gen;
  if (n == 1) return;
  if (me == 0) {
    // Root: gather one token per live non-root rank; ranks observed dead
    // count as arrived (they can never enter this generation).
    poll_wait([&] {
      int present = am.barrier_tokens[gen];
      for (int r = 1; r < n; ++r)
        if (core.is_dead_locked(r)) ++present;
      return present >= n - 1;
    });
    am.barrier_tokens.erase(gen);
    CtlArg rel;
    rel.kind = 1;
    rel.gen = gen;
    for (int r = 1; r < n; ++r) {
      if (core.is_failed(r)) continue;
      try {
        send_request(am, st, r, am.ctl_handler, &rel, sizeof rel,
                     /*flags=*/0, /*gce=*/0, am.next_seq++, /*op=*/nullptr);
      } catch (const mpisim::MpiError& e) {
        // Died after sending its token: nobody is waiting for the release.
        if (e.code() != Errc::crashed) throw;
      }
    }
  } else {
    CtlArg tok;
    tok.kind = 0;
    tok.gen = gen;
    send_request(am, st, 0, am.ctl_handler, &tok, sizeof tok, /*flags=*/0,
                 /*gce=*/0, am.next_seq++, /*op=*/nullptr);
    poll_wait([&] { return am.barrier_releases >= gen; });
  }
}

void touch(const void* ptr, std::size_t bytes, bool write) {
  armci::ProcState& st = armci::state();
  mpisim::SimCore& core = mpisim::ctx().core();
  if (!core.hb().enabled()) return;
  const armci::GmrLoc loc = st.table.require(mpisim::rank(), ptr, bytes);
  const bool native = !loc.gmr->win.valid();
  const std::uint64_t space =
      native ? (mpisim::HbChecker::kNativeSpace | loc.gmr->id)
             : loc.gmr->win.id();
  const int target = native ? loc.gmr->group.absolute_id(loc.target_rank)
                            : loc.target_rank;
  const auto lo = static_cast<std::ptrdiff_t>(loc.offset);
  const auto hi = static_cast<std::ptrdiff_t>(loc.offset + bytes);
  std::lock_guard lk(core.mu());
  core.hb().direct_op(space, target, loc.gmr->group.rank(),
                      core.hb().persona(mpisim::rank()),
                      write ? mpisim::HbChecker::OpKind::put
                            : mpisim::HbChecker::OpKind::get,
                      mpisim::Op::replace, lo, hi, "am handler access");
}

}  // namespace am
