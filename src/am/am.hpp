#ifndef AM_AM_HPP
#define AM_AM_HPP

/// \file am.hpp
/// Active-message / RPC layer over the simulator's two-sided channel.
///
/// The one-sided ARMCI substrate moves bytes; this layer moves *work*: a
/// caller delegates a registered handler to a target process, optionally
/// waiting for a small reply (an RPC) or firing-and-forgetting under a
/// GlobalCompletionEvent-style termination detector (a delegate). Targets
/// serve requests cooperatively from the same progress persona that drives
/// the nonblocking aggregation engine: every armci::progress() poke, every
/// blocking am wait, and -- with Options::progress -- every
/// progress_interval_ns of application compute drains the request queue, so
/// a rank that is busy computing still serves its shard.
///
/// Arguments and replies are POD byte strings with hard size bounds
/// (kMaxArgBytes / kMaxReplyBytes): the layer copies them eagerly into the
/// message, so handlers never see caller memory. Handlers execute on the
/// receiver's thread under its *progress persona* identity for the
/// happens-before race detector (MPISIM_RMA_CHECK=race): memory a handler
/// touches (declared via am::touch) is published with the persona's clock,
/// the reply carries that clock to the origin, and the termination detector
/// retires the persona -- so an application read of handler-written memory
/// is racy until the covering completion point, exactly like a deferred
/// nonblocking operation.
///
/// Restrictions, by design:
///  - handlers must not block, send messages, or issue collective or
///    blocking one-sided operations; they run inside the serve loop and
///    re-entrant serving is suppressed (a nested poll() is a no-op);
///  - handler ids come from SPMD-ordered register_handler() calls and are
///    bounded by kMaxHandlers;
///  - init() is collective over the world and requires armci::init() first.

#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <span>

#include "src/armci/types.hpp"

namespace am {

/// Hard bound on the handler-id registry (bounded dispatch table).
inline constexpr std::size_t kMaxHandlers = 64;

/// Hard bound on one request's argument payload.
inline constexpr std::size_t kMaxArgBytes = 4096;

/// Hard bound on one reply payload.
inline constexpr std::size_t kMaxReplyBytes = 4096;

/// Number of independent termination-detector counters (gce ids 0..3).
inline constexpr int kNumGces = 4;

/// A request handler. Runs on the target's thread; \p src is the
/// requester's world rank, [arg, arg+bytes) the argument bytes. Writes at
/// most \p reply_capacity bytes into \p reply and returns the reply size
/// (ignored for fire-and-forget delegates).
using Handler = std::function<std::size_t(
    int src, const void* arg, std::size_t bytes, void* reply,
    std::size_t reply_capacity)>;

/// Collectively attach the AM layer to the initialized ARMCI runtime:
/// duplicates a private world communicator and hooks the serve loop into
/// the cooperative progress persona.
void init();

/// Collectively detach: quiesces the default termination counter, then
/// unhooks. Call before armci::finalize().
void finalize();

/// True between init() and finalize() on this process.
bool initialized() noexcept;

/// Register \p fn and return its handler id. Must be called in the same
/// order on every process (SPMD registry); bounded by kMaxHandlers.
int register_handler(Handler fn);

/// Completion handle of one rpc(). Copyable value; all copies share the
/// operation's state. A transport failure (e.g. the target died,
/// Errc::crashed) surfaces exactly once through the handle -- at the first
/// wait()/test() that observes it, or through an on_complete callback --
/// after which the handle reads complete.
class Handle {
 public:
  Handle() = default;

  /// True once the operation reached \p level. Completion::source is local
  /// completion (argument bytes captured; always true for a live handle).
  /// Completion::operation is full completion: the handler ran and its
  /// reply arrived. Polls the serve loop, so spinning on test() makes
  /// progress for inbound requests too.
  bool test(armci::Completion level = armci::Completion::operation);

  /// Block until full completion, serving inbound requests while waiting
  /// (two ranks rpc-ing each other cannot deadlock). Failure-aware: raises
  /// Errc::crashed once if the target died before replying.
  void wait();

  /// Invoke \p fn when the operation reaches \p level (immediately if it
  /// already has), passing the transport error or nullptr. An error
  /// delivered to a callback counts as surfaced.
  void on_complete(armci::Completion level,
                   std::function<void(std::exception_ptr)> fn);

  /// Reply bytes (valid after full completion).
  std::span<const std::uint8_t> reply() const;

  /// Decode the reply as a POD \p T (size-checked).
  template <typename T>
  T reply_as() const {
    static_assert(std::is_trivially_copyable_v<T>);
    T out;
    decode_reply(&out, sizeof out);
    return out;
  }

 private:
  friend Handle rpc(int, int, const void*, std::size_t);
  void decode_reply(void* out, std::size_t bytes) const;
  std::shared_ptr<struct OpState> op_;
};

/// Delegate handler \p handler to world rank \p target with argument bytes
/// [arg, arg+bytes) and return a completion handle carrying the reply.
Handle rpc(int target, int handler, const void* arg, std::size_t bytes);

/// Fire-and-forget delegate: no reply, completion tracked collectively by
/// termination counter \p gce (see quiesce()).
void rpc_ff(int target, int handler, const void* arg, std::size_t bytes,
            int gce = 0);

/// Serve all currently queued inbound requests; returns the number served.
/// Called automatically from the progress persona, blocking am waits, and
/// armci::progress(); call it explicitly inside request-free compute loops.
int poll();

/// Termination detection for fire-and-forget delegates (collective over
/// the world): returns when every delegate issued to a *live* rank under
/// counter \p gce has been served, alternating serving with failure-aware
/// global counting rounds. Dead ranks' unserved delegates are excluded --
/// in survivable mode the caller learns about the loss through its own
/// failure observations, not by hanging here. On return the caller has
/// acquired its persona's clock (handler effects are ordered).
void quiesce(int gce = 0);

/// Serve inbound requests while waiting for \p pred to become true -- the
/// blocking primitive for code that must stay responsive as a server (a
/// rank waiting on handler-updated local state, a phase fence). \p pred is
/// evaluated with the simulator lock held: it may read rank-local state a
/// handler updates and _locked simulator accessors, and must not block,
/// send, or serve itself.
void poll_wait(const std::function<bool()>& pred);

/// Serving barrier over the live world ranks: returns once every live rank
/// has entered it, serving inbound requests the whole time. Use this --
/// never a plain mpisim barrier/collective -- to fence phases of an
/// RPC-heavy program: a rank blocked in an ordinary collective stops
/// serving, and stragglers still waiting on its shard would deadlock.
/// Centralized at world rank 0, which must be alive; ranks that died
/// before entering are excluded, consistent with survivable collectives.
void barrier();

/// Declare that the running handler reads (\p write false) or writes
/// (\p write true) [ptr, ptr+bytes), which must lie in a global allocation
/// on this process. Records the access under the progress persona for the
/// happens-before race detector; no-op when the detector is off.
void touch(const void* ptr, std::size_t bytes, bool write);

}  // namespace am

#endif  // AM_AM_HPP
