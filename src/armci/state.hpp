#ifndef ARMCI_STATE_HPP
#define ARMCI_STATE_HPP

/// \file state.hpp
/// Per-process ARMCI runtime state, anchored in the simulated process's
/// RankContext (so independent ranks have independent ARMCI instances even
/// though they share an OS address space).

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "src/armci/backend.hpp"
#include "src/armci/dtype_cache.hpp"
#include "src/armci/gmr.hpp"
#include "src/armci/groups.hpp"
#include "src/armci/metrics.hpp"
#include "src/armci/nb.hpp"
#include "src/armci/stats.hpp"
#include "src/armci/types.hpp"

namespace armci {

/// Everything one simulated process knows about its ARMCI runtime.
struct ProcState {
  Options opts;
  PGroup world;
  GmrTable table;
  std::unique_ptr<CommBackend> backend;

  /// Open direct-local-access epochs: region base -> its GMR (paper §V-E).
  std::map<void*, GmrLoc> open_accesses;

  /// ARMCI_Malloc_local allocations (pre-pinned pool on the native path).
  std::map<void*, std::unique_ptr<std::uint8_t[]>> local_allocs;

  /// World mutex set status (ARMCI allows at most one at a time).
  bool mutexes_exist = false;
  int mutex_count = 0;

  /// Native-backend mutex state hosted by *this* process; peers reach it
  /// through the host's RankContext under the simulator's global lock
  /// (modeling the communication helper thread that services requests).
  struct NativeMutex {
    int holder = -1;
    std::deque<int> queue;
  };
  std::vector<NativeMutex> native_mutexes;

  /// Virtual time until which this process's NIC is busy serving native
  /// one-sided transfers (wire occupancy shared by all initiators).
  double nat_nic_busy_ns = 0.0;

  /// Deferred nonblocking-op queues (see nb.hpp).
  NbEngine nb;

  /// Derived-datatype cache for the direct strided/IOV paths; capacity set
  /// from Options::dt_cache_capacity at init().
  DatatypeCache dt_cache;

  /// Operation counters (see stats.hpp).
  Stats stats;

  /// RMA-checker violation total at the last reset_stats(): the checker's
  /// counters are cumulative per run, Stats::rma_conflicts is relative.
  std::uint64_t rma_conflicts_baseline = 0;

  /// Race-detector violation total at the last reset_stats() (same
  /// cumulative-to-relative conversion for Stats::rma_races).
  std::uint64_t rma_races_baseline = 0;

  /// SimClock overlap-gauge values at the last reset_stats(): the clock's
  /// progress_comm_ns/progress_hidden_ns accumulate per run, the Stats
  /// overlap fields are relative to the last reset.
  double overlap_comm_baseline = 0.0;
  double overlap_hidden_baseline = 0.0;

  /// Per-op latency histograms (see metrics.hpp), on when opts.metrics.
  MetricsRegistry metrics;

  /// Active-message layer state (src/am), attached by am::init(). Opaque
  /// here so armci does not depend on the layer above it; lifetime is tied
  /// to the ARMCI instance so an aborted run tears both down together.
  std::shared_ptr<void> am_state;

  /// Serve hook installed by am::init(): drains inbound active messages.
  /// Called from the progress persona and armci::progress() when set.
  std::function<void()> am_poll;

  explicit ProcState(int world_size) : table(world_size) {}
};

/// State of the calling process; throws unless init() has been called.
ProcState& state();

/// Null if ARMCI is not initialized on this process.
ProcState* state_if_initialized() noexcept;

}  // namespace armci

#endif  // ARMCI_STATE_HPP
