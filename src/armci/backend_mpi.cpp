#include "src/armci/backend_mpi.hpp"

#include <algorithm>
#include <cstring>
#include <map>

#include "src/armci/accops.hpp"
#include "src/armci/epoch_guard.hpp"
#include "src/armci/iov.hpp"
#include "src/armci/retry.hpp"
#include "src/armci/state.hpp"
#include "src/armci/strided.hpp"
#include "src/mpisim/error.hpp"
#include "src/mpisim/runtime.hpp"
#include "src/mpisim/trace.hpp"

namespace armci {

using mpisim::Datatype;
using mpisim::Errc;
using mpisim::LockType;
using mpisim::TraceCat;
using mpisim::TraceScope;

namespace {

/// Span view of the written-side pointer array for the overlap scan
/// (puts/accs write remote dst; gets write local dst).
std::span<const void* const> as_const_span(const std::vector<void*>& v) {
  return {const_cast<const void* const*>(v.data()), v.size()};
}

}  // namespace

void MpiBackend::gmr_created(Gmr& gmr) {
  const int me = gmr.group.rank();
  gmr.win = mpisim::Win::create(gmr.bases[static_cast<std::size_t>(me)],
                                gmr.sizes[static_cast<std::size_t>(me)],
                                gmr.group.comm());
  gmr.rmw_mutex = std::make_shared<QueueingMutexSet>(
      QueueingMutexSet::create(gmr.group.comm(), 1, 0));
}

void MpiBackend::gmr_freeing(Gmr& gmr) {
  gmr.rmw_mutex->destroy();
  gmr.rmw_mutex.reset();
  gmr.win.free();
}

LockType MpiBackend::epoch_lock(const Gmr& gmr, OneSided kind) const {
  // §VIII-A: access-mode hints permit shared-lock epochs for phases whose
  // operations cannot conflict with each other.
  if (gmr.mode == AccessMode::read_only && kind == OneSided::get)
    return LockType::shared;
  if (gmr.mode == AccessMode::accumulate_only && kind == OneSided::acc)
    return LockType::shared;
  return LockType::exclusive;
}

bool MpiBackend::local_is_global(const void* p, std::size_t bytes) const {
  return !st_->opts.no_local_copy &&
         st_->table.overlaps_global(mpisim::rank(), p, bytes);
}

void MpiBackend::staged_local_copy(void* dst, const void* src,
                                   std::size_t bytes,
                                   const void* global_side) const {
  // §V-E1: the only safe way to touch a local buffer that is itself in
  // global space is under an exclusive self-epoch on its window, released
  // before any other window is locked (avoiding deadlock from holding two
  // locks).
  ++st_->stats.staged_local_copies;
  TraceScope ts(mpisim::tracer(), TraceCat::backend, "mpi.staged_copy",
                bytes);
  GmrLoc l = st_->table.require(mpisim::rank(), global_side, bytes);
  with_retry(*st_, "mpi.staged_copy", [&] {
    EpochGuard eg(l.gmr->win, LockType::exclusive, l.target_rank);
    LocalAccessGuard la(l.gmr->win, global_side, bytes,
                        /*write=*/dst == global_side);
    std::memcpy(dst, src, bytes);
    mpisim::clock().advance(mpisim::model().pack_ns(bytes));
    la.release();
    eg.release();
  });
}

void MpiBackend::contig(OneSided kind, const GmrLoc& loc, void* local,
                        std::size_t bytes, AccType at, const void* scale) {
  if (kind == OneSided::acc && bytes % acc_type_size(at) != 0)
    mpisim::raise(Errc::invalid_argument,
                  "accumulate length not a multiple of the element size");
  TraceScope ts(mpisim::tracer(), TraceCat::backend, "mpi.contig", bytes);
  const Gmr& gmr = *loc.gmr;
  const LockType lt = epoch_lock(gmr, kind);

  std::vector<std::uint8_t> temp;
  void* buf = local;
  const bool staged = local_is_global(local, bytes);
  if (staged) {
    temp.resize(bytes);
    if (kind != OneSided::get)
      staged_local_copy(temp.data(), local, bytes, local);
    buf = temp.data();
  }
  if (kind == OneSided::acc && !scale_is_identity(at, scale)) {
    if (temp.empty()) temp.resize(bytes);
    scale_buffer(at, scale, temp.data(), buf, bytes);
    mpisim::clock().advance(mpisim::model().pack_ns(bytes));
    buf = temp.data();
  }

  with_retry(*st_, "mpi.contig", [&] {
    EpochGuard eg(gmr.win, lt, loc.target_rank);
    switch (kind) {
      case OneSided::put:
        gmr.win.put(buf, bytes, loc.target_rank, loc.offset);
        break;
      case OneSided::get:
        gmr.win.get(buf, bytes, loc.target_rank, loc.offset);
        break;
      case OneSided::acc: {
        const std::size_t esz = acc_type_size(at);
        const Datatype d = Datatype::basic(basic_type_of_acc(at));
        gmr.win.accumulate(buf, bytes / esz, d, loc.target_rank, loc.offset,
                           bytes / esz, d, mpisim::Op::sum);
        break;
      }
    }
    eg.release();
  });

  if (kind == OneSided::get && staged)
    staged_local_copy(local, temp.data(), bytes, local);
}

// ---------------------------------------------------------------------------
// IOV methods (paper §VI-A/B)
// ---------------------------------------------------------------------------

void MpiBackend::iov(OneSided kind, std::span<const Giov> vec, int proc,
                     AccType at, const void* scale) {
  for (const Giov& g : vec)
    iov_one(kind, g, proc, at, scale, st_->opts.iov_method);
}

void MpiBackend::iov_one(OneSided kind, const Giov& giov, int proc,
                         AccType at, const void* scale, IovMethod method) {
  if (giov.src.size() != giov.dst.size())
    mpisim::raise(Errc::invalid_argument, "IOV src/dst length mismatch");
  if (giov.src.empty() || giov.bytes == 0) return;

  if (method == IovMethod::auto_) {
    // §VI-B: the auto method scans the descriptor and falls back to the
    // conservative method when segments span multiple GMRs or overlap.
    const bool is_get = kind == OneSided::get;
    bool same_gmr = true;
    const Gmr* first = nullptr;
    for (std::size_t i = 0; i < giov.src.size() && same_gmr; ++i) {
      const void* remote = is_get ? giov.src[i] : giov.dst[i];
      GmrLoc l = st_->table.find(proc, remote, giov.bytes);
      if (!l.gmr) {
        same_gmr = false;
      } else if (first == nullptr) {
        first = l.gmr.get();
      } else {
        same_gmr = l.gmr.get() == first;
      }
    }
    const bool overlap = iov_has_overlap(as_const_span(giov.dst), giov.bytes);
    method = (same_gmr && !overlap) ? IovMethod::direct
                                    : IovMethod::conservative;
  }

  switch (method) {
    case IovMethod::conservative:
      iov_conservative(kind, giov, proc, at, scale);
      return;
    case IovMethod::batched:
      iov_batched(kind, giov, proc, at, scale);
      return;
    case IovMethod::direct:
      iov_direct(kind, giov, proc, at, scale);
      return;
    case IovMethod::auto_:
      break;  // unreachable
  }
}

void MpiBackend::iov_conservative(OneSided kind, const Giov& giov, int proc,
                                  AccType at, const void* scale) {
  // One operation per segment, each within its own epoch. Segments may
  // live in different GMRs and may overlap (successive exclusive epochs
  // serialize, so overlap is not erroneous here).
  TraceScope ts(mpisim::tracer(), TraceCat::backend, "mpi.iov_conservative",
                giov.src.size());
  const bool is_get = kind == OneSided::get;
  for (std::size_t i = 0; i < giov.src.size(); ++i) {
    const void* remote = is_get ? giov.src[i] : giov.dst[i];
    void* local = is_get ? giov.dst[i] : const_cast<void*>(giov.src[i]);
    GmrLoc loc = st_->table.require(proc, remote, giov.bytes);
    contig(kind, loc, local, giov.bytes, at, scale);
  }
}

void MpiBackend::iov_batched(OneSided kind, const Giov& giov, int proc,
                             AccType at, const void* scale) {
  TraceScope ts(mpisim::tracer(), TraceCat::backend, "mpi.iov_batched",
                giov.src.size());
  const bool is_get = kind == OneSided::get;
  const std::size_t n = giov.src.size();
  const std::size_t bytes = giov.bytes;

  // Stage or scale the local side up front, so no window lock is ever held
  // while another is requested (§V-E1).
  std::vector<std::uint8_t> temp;
  bool use_temp = false;
  {
    bool any_global = false;
    for (std::size_t i = 0; i < n; ++i) {
      const void* local = is_get ? giov.dst[i] : giov.src[i];
      any_global = any_global || local_is_global(local, bytes);
    }
    const bool need_scale =
        kind == OneSided::acc && !scale_is_identity(at, scale);
    if (any_global || need_scale) {
      temp.resize(n * bytes);
      use_temp = true;
      if (!is_get) {
        for (std::size_t i = 0; i < n; ++i) {
          if (local_is_global(giov.src[i], bytes))
            staged_local_copy(temp.data() + i * bytes, giov.src[i], bytes,
                              giov.src[i]);
          else
            std::memcpy(temp.data() + i * bytes, giov.src[i], bytes);
        }
        if (need_scale) {
          scale_buffer(at, scale, temp.data(), temp.data(), n * bytes);
          mpisim::clock().advance(mpisim::model().pack_ns(n * bytes));
        }
      }
    }
  }

  // Resolve every remote segment and group by GMR, preserving order.
  std::vector<GmrLoc> locs(n);
  std::map<const Gmr*, std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < n; ++i) {
    const void* remote = is_get ? giov.src[i] : giov.dst[i];
    locs[i] = st_->table.require(proc, remote, bytes);
    groups[locs[i].gmr.get()].push_back(i);
  }

  const std::size_t limit = st_->opts.iov_batched_limit;
  const std::size_t esz = acc_type_size(at);
  if (kind == OneSided::acc && bytes % esz != 0)
    mpisim::raise(Errc::invalid_argument,
                  "IOV segment length not a multiple of the element size");
  const Datatype d = Datatype::basic(basic_type_of_acc(at));
  for (const auto& [gmr_ptr, idxs] : groups) {
    const Gmr& gmr = *locs[idxs.front()].gmr;
    const int grank = locs[idxs.front()].target_rank;
    const LockType lt = epoch_lock(gmr, kind);
    with_retry(*st_, "mpi.iov_batched", [&] {
      EpochGuard eg(gmr.win, lt, grank);
      std::size_t issued = 0;
      for (std::size_t i : idxs) {
        if (limit != 0 && issued == limit) {
          eg.cycle();
          issued = 0;
        }
        void* local = use_temp
                          ? static_cast<void*>(temp.data() + i * bytes)
                          : (is_get ? giov.dst[i]
                                    : const_cast<void*>(giov.src[i]));
        switch (kind) {
          case OneSided::put:
            gmr.win.put(local, bytes, grank, locs[i].offset);
            break;
          case OneSided::get:
            gmr.win.get(local, bytes, grank, locs[i].offset);
            break;
          case OneSided::acc:
            gmr.win.accumulate(local, bytes / esz, d, grank, locs[i].offset,
                               bytes / esz, d, mpisim::Op::sum);
            break;
        }
        ++issued;
      }
      eg.release();
    });
  }

  if (is_get && use_temp) {
    for (std::size_t i = 0; i < n; ++i) {
      if (local_is_global(giov.dst[i], bytes))
        staged_local_copy(giov.dst[i], temp.data() + i * bytes, bytes,
                          giov.dst[i]);
      else
        std::memcpy(giov.dst[i], temp.data() + i * bytes, bytes);
    }
  }
}

void MpiBackend::iov_direct(OneSided kind, const Giov& giov, int proc,
                            AccType at, const void* scale) {
  TraceScope ts(mpisim::tracer(), TraceCat::backend, "mpi.iov_direct",
                giov.src.size());
  const bool is_get = kind == OneSided::get;
  const std::size_t n = giov.src.size();
  const std::size_t bytes = giov.bytes;
  const bool is_acc = kind == OneSided::acc;
  const mpisim::BasicType elem =
      is_acc ? basic_type_of_acc(at) : mpisim::BasicType::byte_;
  const std::size_t esz = mpisim::basic_type_size(elem);
  if (bytes % esz != 0)
    mpisim::raise(Errc::invalid_argument,
                  "IOV segment length not a multiple of the element size");

  // All remote segments must resolve into one GMR (§VI-A: required by the
  // direct method; the auto method guarantees it before choosing direct).
  std::vector<std::ptrdiff_t> rdispls(n);
  GmrLoc loc0;
  for (std::size_t i = 0; i < n; ++i) {
    const void* remote = is_get ? giov.src[i] : giov.dst[i];
    GmrLoc l = st_->table.require(proc, remote, bytes);
    if (i == 0) {
      loc0 = l;
    } else if (l.gmr.get() != loc0.gmr.get()) {
      mpisim::raise(Errc::invalid_argument,
                    "direct IOV method requires all segments in one GMR");
    }
    rdispls[i] = static_cast<std::ptrdiff_t>(l.offset);
  }
  // Rebase displacements so the remote type is shape-only (cacheable across
  // base offsets); the minimum becomes the target displacement instead.
  const std::ptrdiff_t rmin = *std::min_element(rdispls.begin(), rdispls.end());
  for (std::ptrdiff_t& d : rdispls) d -= rmin;
  const auto rdisp = static_cast<std::size_t>(rmin);
  const std::vector<std::size_t> blocklens(n, bytes / esz);
  const Datatype rtype =
      st_->dt_cache.hindexed_type(blocklens, rdispls, elem, st_->stats);

  // Local side: one indexed datatype, or a staged/scaled contiguous buffer.
  std::vector<std::uint8_t> temp;
  bool use_temp = kind == OneSided::acc && !scale_is_identity(at, scale);
  for (std::size_t i = 0; i < n && !use_temp; ++i) {
    const void* local = is_get ? giov.dst[i] : giov.src[i];
    use_temp = local_is_global(local, bytes);
  }

  const Gmr& gmr = *loc0.gmr;
  const int grank = loc0.target_rank;
  const LockType lt = epoch_lock(gmr, kind);

  if (use_temp) {
    temp.resize(n * bytes);
    if (!is_get) {
      for (std::size_t i = 0; i < n; ++i) {
        if (local_is_global(giov.src[i], bytes))
          staged_local_copy(temp.data() + i * bytes, giov.src[i], bytes,
                            giov.src[i]);
        else
          std::memcpy(temp.data() + i * bytes, giov.src[i], bytes);
      }
      if (is_acc && !scale_is_identity(at, scale)) {
        scale_buffer(at, scale, temp.data(), temp.data(), n * bytes);
        mpisim::clock().advance(mpisim::model().pack_ns(n * bytes));
      }
    }
    const Datatype ltype =
        Datatype::contiguous(n * bytes / esz, Datatype::basic(elem));
    with_retry(*st_, "mpi.iov_direct", [&] {
      EpochGuard eg(gmr.win, lt, grank);
      switch (kind) {
        case OneSided::put:
          gmr.win.put(temp.data(), 1, ltype, grank, rdisp, 1, rtype);
          break;
        case OneSided::get:
          gmr.win.get(temp.data(), 1, ltype, grank, rdisp, 1, rtype);
          break;
        case OneSided::acc:
          gmr.win.accumulate(temp.data(), 1, ltype, grank, rdisp, 1, rtype,
                             mpisim::Op::sum);
          break;
      }
      eg.release();
    });
    if (is_get) {
      for (std::size_t i = 0; i < n; ++i) {
        if (local_is_global(giov.dst[i], bytes))
          staged_local_copy(giov.dst[i], temp.data() + i * bytes, bytes,
                            giov.dst[i]);
        else
          std::memcpy(giov.dst[i], temp.data() + i * bytes, bytes);
      }
    }
    return;
  }

  // Unstaged: indexed datatype on the local side too.
  const std::uint8_t* lbase = nullptr;
  for (std::size_t i = 0; i < n; ++i) {
    const void* local = is_get ? giov.dst[i] : giov.src[i];
    const auto* p = static_cast<const std::uint8_t*>(local);
    if (lbase == nullptr || p < lbase) lbase = p;
  }
  std::vector<std::ptrdiff_t> ldispls(n);
  for (std::size_t i = 0; i < n; ++i) {
    const void* local = is_get ? giov.dst[i] : giov.src[i];
    ldispls[i] = static_cast<const std::uint8_t*>(local) - lbase;
  }
  const Datatype ltype =
      st_->dt_cache.hindexed_type(blocklens, ldispls, elem, st_->stats);

  auto* origin = const_cast<std::uint8_t*>(lbase);
  with_retry(*st_, "mpi.iov_direct", [&] {
    EpochGuard eg(gmr.win, lt, grank);
    switch (kind) {
      case OneSided::put:
        gmr.win.put(origin, 1, ltype, grank, rdisp, 1, rtype);
        break;
      case OneSided::get:
        gmr.win.get(origin, 1, ltype, grank, rdisp, 1, rtype);
        break;
      case OneSided::acc:
        gmr.win.accumulate(origin, 1, ltype, grank, rdisp, 1, rtype,
                           mpisim::Op::sum);
        break;
    }
    eg.release();
  });
}

// ---------------------------------------------------------------------------
// Deferred nonblocking batches (nb.hpp)
// ---------------------------------------------------------------------------

void MpiBackend::flush_queue(const Gmr& gmr, int target_rank,
                             std::span<const NbOp> ops) {
  if (ops.empty()) return;
  TraceScope ts(mpisim::tracer(), TraceCat::backend, "mpi.nb_flush",
                ops.size());
  // A uniform-kind batch still qualifies for the §VIII-A shared-lock
  // downgrade; mixed batches need the exclusive default.
  LockType lt = epoch_lock(gmr, ops.front().kind);
  for (const NbOp& op : ops) {
    if (op.kind != ops.front().kind) {
      lt = LockType::exclusive;
      break;
    }
  }
  // The engine guarantees the batch is conflict-free, so one epoch is
  // legal; ops within it complete locally when the lock is released.
  with_retry(*st_, "mpi.nb_flush", [&] {
    EpochGuard eg(gmr.win, lt, target_rank);
    for (const NbOp& op : ops) {
      if (op.typed) {
        switch (op.kind) {
          case OneSided::put:
            gmr.win.put(op.local, 1, op.ltype, target_rank, op.offset, 1,
                        op.rtype);
            break;
          case OneSided::get:
            gmr.win.get(op.local, 1, op.ltype, target_rank, op.offset, 1,
                        op.rtype);
            break;
          case OneSided::acc:
            gmr.win.accumulate(op.local, 1, op.ltype, target_rank, op.offset,
                               1, op.rtype, mpisim::Op::sum);
            break;
        }
        continue;
      }
      switch (op.kind) {
        case OneSided::put:
          gmr.win.put(op.local, op.bytes, target_rank, op.offset);
          break;
        case OneSided::get:
          gmr.win.get(op.local, op.bytes, target_rank, op.offset);
          break;
        case OneSided::acc: {
          const std::size_t esz = acc_type_size(op.at);
          if (op.bytes % esz != 0)
            mpisim::raise(Errc::invalid_argument,
                          "accumulate length not a multiple of the element "
                          "size");
          const Datatype d = Datatype::basic(basic_type_of_acc(op.at));
          gmr.win.accumulate(op.local, op.bytes / esz, d, target_rank,
                             op.offset, op.bytes / esz, d, mpisim::Op::sum);
          break;
        }
      }
    }
    eg.release();
  });
}

// ---------------------------------------------------------------------------
// Strided methods (paper §VI-C)
// ---------------------------------------------------------------------------

void MpiBackend::strided(OneSided kind, const void* src, void* dst,
                         const StridedSpec& spec, int proc, AccType at,
                         const void* scale) {
  TraceScope ts(mpisim::tracer(), TraceCat::backend, "mpi.strided",
                static_cast<std::uint64_t>(spec.stride_levels));
  validate_spec(spec);
  const StridedMethod method = st_->opts.strided_method;
  if (method != StridedMethod::direct) {
    const Giov giov = strided_to_iov(src, dst, spec);
    const IovMethod m = method == StridedMethod::iov_direct
                            ? IovMethod::direct
                        : method == StridedMethod::iov_batched
                            ? IovMethod::batched
                            : IovMethod::conservative;
    iov_one(kind, giov, proc, at, scale, m);
    return;
  }

  const bool is_get = kind == OneSided::get;
  const bool is_acc = kind == OneSided::acc;
  const mpisim::BasicType elem =
      is_acc ? basic_type_of_acc(at) : mpisim::BasicType::byte_;
  const void* remote = is_get ? src : dst;
  void* local = is_get ? dst : const_cast<void*>(src);
  const auto& rstrides = is_get ? spec.src_strides : spec.dst_strides;
  const auto& lstrides = is_get ? spec.dst_strides : spec.src_strides;

  const Datatype rtype =
      st_->dt_cache.strided_type(rstrides, spec, elem, st_->stats);
  const Datatype ltype =
      st_->dt_cache.strided_type(lstrides, spec, elem, st_->stats);
  const std::size_t total = strided_total_bytes(spec);
  GmrLoc loc = st_->table.require(proc, remote,
                                  static_cast<std::size_t>(rtype.extent()));
  const Gmr& gmr = *loc.gmr;
  const LockType lt = epoch_lock(gmr, kind);

  const std::size_t lextent = static_cast<std::size_t>(ltype.extent());
  const bool need_scale = is_acc && !scale_is_identity(at, scale);
  const bool staged = local_is_global(local, lextent) || need_scale;

  if (staged) {
    std::vector<std::uint8_t> temp(total);
    const bool local_global = local_is_global(local, lextent);
    if (!is_get) {
      if (local_global) {
        ++st_->stats.staged_local_copies;
        GmrLoc l = st_->table.require(mpisim::rank(), local, lextent);
        with_retry(*st_, "mpi.strided_pack", [&] {
          EpochGuard eg(l.gmr->win, LockType::exclusive, l.target_rank);
          LocalAccessGuard la(l.gmr->win, local, lextent, /*write=*/false);
          ltype.pack(local, 1, temp.data());
          la.release();
          eg.release();
        });
      } else {
        ltype.pack(local, 1, temp.data());
      }
      mpisim::clock().advance(mpisim::model().pack_ns(total));
      if (need_scale) {
        scale_buffer(at, scale, temp.data(), temp.data(), total);
        mpisim::clock().advance(mpisim::model().pack_ns(total));
      }
    }
    const std::size_t esz = mpisim::basic_type_size(elem);
    const Datatype ctype =
        Datatype::contiguous(total / esz, Datatype::basic(elem));
    with_retry(*st_, "mpi.strided", [&] {
      EpochGuard eg(gmr.win, lt, loc.target_rank);
      switch (kind) {
        case OneSided::put:
          gmr.win.put(temp.data(), 1, ctype, loc.target_rank, loc.offset, 1,
                      rtype);
          break;
        case OneSided::get:
          gmr.win.get(temp.data(), 1, ctype, loc.target_rank, loc.offset, 1,
                      rtype);
          break;
        case OneSided::acc:
          gmr.win.accumulate(temp.data(), 1, ctype, loc.target_rank,
                             loc.offset, 1, rtype, mpisim::Op::sum);
          break;
      }
      eg.release();
    });
    if (is_get) {
      if (local_global) {
        ++st_->stats.staged_local_copies;
        GmrLoc l = st_->table.require(mpisim::rank(), local, lextent);
        with_retry(*st_, "mpi.strided_unpack", [&] {
          EpochGuard eg(l.gmr->win, LockType::exclusive, l.target_rank);
          LocalAccessGuard la(l.gmr->win, local, lextent, /*write=*/true);
          ltype.unpack(temp.data(), local, 1);
          la.release();
          eg.release();
        });
      } else {
        ltype.unpack(temp.data(), local, 1);
      }
      mpisim::clock().advance(mpisim::model().pack_ns(total));
    }
    return;
  }

  with_retry(*st_, "mpi.strided", [&] {
    EpochGuard eg(gmr.win, lt, loc.target_rank);
    switch (kind) {
      case OneSided::put:
        gmr.win.put(local, 1, ltype, loc.target_rank, loc.offset, 1, rtype);
        break;
      case OneSided::get:
        gmr.win.get(local, 1, ltype, loc.target_rank, loc.offset, 1, rtype);
        break;
      case OneSided::acc:
        gmr.win.accumulate(local, 1, ltype, loc.target_rank, loc.offset, 1,
                           rtype, mpisim::Op::sum);
        break;
    }
    eg.release();
  });
}

// ---------------------------------------------------------------------------
// Completion, RMW, mutexes, DLA
// ---------------------------------------------------------------------------

void MpiBackend::fence(int /*proc*/) {
  // §V-F: every operation completes remotely inside its own epoch, so
  // ARMCI_Fence is a no-op on the MPI backend.
}

void MpiBackend::fence_all() {}

void MpiBackend::rmw(RmwOp op, void* ploc, void* prem, std::int64_t extra,
                     int proc) {
  TraceScope ts(mpisim::tracer(), TraceCat::backend, "mpi.rmw");
  const bool is_long =
      op == RmwOp::fetch_and_add_long || op == RmwOp::swap_long;
  const std::size_t width = is_long ? 8 : 4;
  GmrLoc loc = st_->table.require(proc, prem, width);

  // §V-D: MPI-2 has no atomic read-modify-write, and a get+put of the same
  // location in one epoch is erroneous; serialize via the GMR's mutex and
  // use two epochs.
  QueueingMutexSet& mset = *loc.gmr->rmw_mutex;
  mset.lock(0, loc.target_rank);

  std::int64_t oldv = 0;
  try {
    std::int64_t old64 = 0;
    std::int32_t old32 = 0;
    void* oldp =
        is_long ? static_cast<void*>(&old64) : static_cast<void*>(&old32);
    with_retry(*st_, "mpi.rmw_get", [&] {
      EpochGuard eg(loc.gmr->win, LockType::exclusive, loc.target_rank);
      loc.gmr->win.get(oldp, width, loc.target_rank, loc.offset);
      eg.release();
    });

    oldv = is_long ? old64 : old32;
    std::int64_t newv = 0;
    switch (op) {
      case RmwOp::fetch_and_add:
      case RmwOp::fetch_and_add_long:
        newv = oldv + extra;
        break;
      case RmwOp::swap:
        newv = *static_cast<std::int32_t*>(ploc);
        break;
      case RmwOp::swap_long:
        newv = *static_cast<std::int64_t*>(ploc);
        break;
    }

    std::int64_t new64 = newv;
    std::int32_t new32 = static_cast<std::int32_t>(newv);
    const void* newp = is_long ? static_cast<const void*>(&new64)
                               : static_cast<const void*>(&new32);
    with_retry(*st_, "mpi.rmw_put", [&] {
      EpochGuard eg(loc.gmr->win, LockType::exclusive, loc.target_rank);
      loc.gmr->win.put(newp, width, loc.target_rank, loc.offset);
      eg.release();
    });
  } catch (...) {
    // Do not leave the GMR's RMW mutex held: peers would queue forever on
    // a token this rank can no longer pass.
    try {
      mset.unlock(0, loc.target_rank);
    } catch (...) {
    }
    throw;
  }

  mset.unlock(0, loc.target_rank);

  if (is_long)
    *static_cast<std::int64_t*>(ploc) = oldv;
  else
    *static_cast<std::int32_t*>(ploc) = static_cast<std::int32_t>(oldv);
}

void MpiBackend::mutexes_create(int count) {
  user_mutexes_ = QueueingMutexSet::create(st_->world.comm(), count, 0);
}

void MpiBackend::mutexes_destroy() { user_mutexes_.destroy(); }

void MpiBackend::mutex_lock(int m, int proc) { user_mutexes_.lock(m, proc); }

void MpiBackend::mutex_unlock(int m, int proc) {
  user_mutexes_.unlock(m, proc);
}

void MpiBackend::access_begin(const GmrLoc& loc) {
  // §V-E: direct load/store access is safe only while the window is locked
  // for exclusive access on this process.
  loc.gmr->win.lock(LockType::exclusive, loc.target_rank);
}

void MpiBackend::access_end(const GmrLoc& loc) {
  loc.gmr->win.unlock(loc.target_rank);
}

}  // namespace armci
