#include "src/armci/mutex.hpp"

#include <mutex>

#include "src/armci/epoch_guard.hpp"
#include "src/mpisim/error.hpp"
#include "src/mpisim/runtime.hpp"
#include "src/mpisim/trace.hpp"

namespace armci {

using mpisim::Errc;
using mpisim::LockType;
using mpisim::TraceCat;
using mpisim::TraceScope;

QueueingMutexSet QueueingMutexSet::create(const mpisim::Comm& comm, int count,
                                          int tag_base) {
  if (count < 0) mpisim::raise(Errc::invalid_argument, "negative mutex count");
  QueueingMutexSet set;
  set.comm_ = comm.dup();  // private tag space for notification messages
  set.count_ = count;
  set.tag_base_ = tag_base;
  // Row layout: nproc request flags plus the survivable-mode holder byte.
  const std::size_t stride = static_cast<std::size_t>(comm.size()) + 1;
  set.bytes_ = std::make_shared<std::vector<std::uint8_t>>(
      static_cast<std::size_t>(count) * stride, 0);
  set.win_ = mpisim::Win::create(
      set.bytes_->empty() ? nullptr : set.bytes_->data(), set.bytes_->size(),
      comm);
  return set;
}

void QueueingMutexSet::destroy() {
  win_.free();
  win_ = mpisim::Win();
  bytes_.reset();
  count_ = 0;
}

void QueueingMutexSet::put_holder(int m, int host, std::uint8_t value) {
  const std::size_t stride = static_cast<std::size_t>(comm_.size()) + 1;
  const std::size_t hoff = static_cast<std::size_t>(m) * stride +
                           static_cast<std::size_t>(comm_.size());
  EpochGuard eg(win_, LockType::exclusive, host);
  win_.put(&value, 1, host, hoff);
  eg.release();
}

void QueueingMutexSet::clear_holder_if(int m, int host, std::uint8_t expected) {
  const std::size_t stride = static_cast<std::size_t>(comm_.size()) + 1;
  const std::size_t hoff = static_cast<std::size_t>(m) * stride +
                           static_cast<std::size_t>(comm_.size());
  const std::uint8_t zero = 0;
  std::uint8_t prev = 0;
  EpochGuard eg(win_, LockType::exclusive, host);
  win_.compare_and_swap(&zero, &expected, &prev, mpisim::BasicType::byte_,
                        host, hoff);
  eg.release();
}

void QueueingMutexSet::lock(int m, int host) {
  if (m < 0 || m >= count_)
    mpisim::raise(Errc::invalid_argument, "mutex index out of range");
  TraceScope ts(mpisim::tracer(), TraceCat::mutex, "qmutex.lock",
                static_cast<std::uint64_t>(m));
  const int n = comm_.size();
  const int me = comm_.rank();
  const bool surv = mpisim::ctx().core().survivable();
  const std::size_t stride = static_cast<std::size_t>(n) + 1;
  const std::size_t row = static_cast<std::size_t>(m) * stride;

  // One exclusive epoch: set B[me] = 1 and fetch every other entry (plus,
  // in survivable mode, the holder byte). The put and the gets touch
  // disjoint bytes, so this is a legal epoch.
  std::vector<std::uint8_t> others(static_cast<std::size_t>(n), 0);
  const std::uint8_t one = 1;
  {
    EpochGuard eg(win_, LockType::exclusive, host);
    win_.put(&one, 1, host, row + static_cast<std::size_t>(me));
    if (me > 0)
      win_.get(others.data(), static_cast<std::size_t>(me), host, row);
    if (me < n - 1)
      win_.get(others.data() + me + 1, static_cast<std::size_t>(n - 1 - me),
               host, row + static_cast<std::size_t>(me) + 1);
    eg.release();
  }

  bool contended = false;
  int dead_seen = -1;
  for (int i = 0; i < n; ++i) {
    if (i == me || others[static_cast<std::size_t>(i)] == 0) continue;
    // A dead rank's request flag is permanent litter; it must not make us
    // wait for a token that can never arrive.
    if (surv && comm_.is_failed(i)) {
      dead_seen = i;
      continue;
    }
    contended = true;
    break;
  }
  if (!contended) {
    // No other live requester: the lock is ours. Publish the holder byte so
    // waiters can reclaim it if we die while holding.
    if (surv) {
      if (dead_seen >= 0) {
        // Skipping the dead rank's flag (possibly reclaiming the mutex it
        // held) is an act of failure detection: charge the detector bound
        // and stamp the latency gauge, as the blocked-waiter path does.
        mpisim::SimCore& core = mpisim::ctx().core();
        std::lock_guard lk(core.mu());
        core.note_death_observed_locked(comm_.world_rank(dead_seen));
      }
      put_holder(m, host, static_cast<std::uint8_t>(me + 1));
    }
    return;
  }

  std::uint8_t token = 0;
  if (!surv) {
    // Enqueued: wait locally for the current holder to forward the lock.
    comm_.recv(&token, 1, mpisim::kAnySource, tag_base_ + m);
    return;
  }
  for (;;) {
    try {
      // The releaser publishes H = me + 1 before sending, so a received
      // token means the holder byte already names us.
      comm_.recv(&token, 1, mpisim::kAnySource, tag_base_ + m);
      return;
    } catch (const mpisim::MpiError& e) {
      if (e.code() != Errc::crashed) throw;
    }
    // A peer died while we were queued. Refetch the row to learn whether
    // the dead rank held this mutex; epochs are serialized, so every woken
    // waiter sees a consistent snapshot.
    std::vector<std::uint8_t> rowbuf(stride, 0);
    {
      EpochGuard eg(win_, LockType::exclusive, host);
      win_.get(rowbuf.data(), stride, host, row);
      eg.release();
    }
    const int holder = static_cast<int>(rowbuf[static_cast<std::size_t>(n)]) - 1;
    if (holder == me) {
      // The releaser handed the lock to us and died before (or while) the
      // token was delivered: the published holder byte is authoritative.
      comm_.failure_ack();
      return;
    }
    if (holder >= 0 && comm_.is_failed(holder)) {
      // Reclaim: the first live requester circularly after the dead holder
      // becomes the new holder; everyone computes the same successor from
      // the serialized snapshot.
      int successor = -1;
      for (int k = 1; k <= n; ++k) {
        const int i = (holder + k) % n;
        if (rowbuf[static_cast<std::size_t>(i)] != 0 && !comm_.is_failed(i)) {
          successor = i;
          break;
        }
      }
      if (successor == me) {
        put_holder(m, host, static_cast<std::uint8_t>(me + 1));
        comm_.failure_ack();
        return;
      }
    }
    // Holder alive (a death elsewhere woke us) or handoff in progress:
    // acknowledge the death epoch and keep waiting.
    comm_.failure_ack();
  }
}

void QueueingMutexSet::unlock(int m, int host) {
  if (m < 0 || m >= count_)
    mpisim::raise(Errc::invalid_argument, "mutex index out of range");
  TraceScope ts(mpisim::tracer(), TraceCat::mutex, "qmutex.unlock",
                static_cast<std::uint64_t>(m));
  const int n = comm_.size();
  const int me = comm_.rank();
  const bool surv = mpisim::ctx().core().survivable();
  const std::size_t stride = static_cast<std::size_t>(n) + 1;
  const std::size_t row = static_cast<std::size_t>(m) * stride;

  std::vector<std::uint8_t> others(static_cast<std::size_t>(n), 0);
  const std::uint8_t zero = 0;
  {
    EpochGuard eg(win_, LockType::exclusive, host);
    win_.put(&zero, 1, host, row + static_cast<std::size_t>(me));
    if (me > 0)
      win_.get(others.data(), static_cast<std::size_t>(me), host, row);
    if (me < n - 1)
      win_.get(others.data() + me + 1, static_cast<std::size_t>(n - 1 - me),
               host, row + static_cast<std::size_t>(me) + 1);
    eg.release();
  }

  // Fair handoff: scan circularly starting at me+1 and forward the lock to
  // the first enqueued requester, if any. Survivable mode skips dead
  // requesters (their flags are litter) and publishes the holder byte
  // before the token send, so the handoff survives our own crash.
  std::uint8_t published = static_cast<std::uint8_t>(me + 1);
  for (int k = 1; k < n; ++k) {
    const int i = (me + k) % n;
    if (others[static_cast<std::size_t>(i)] == 0) continue;
    if (surv && comm_.is_failed(i)) continue;
    if (surv) {
      put_holder(m, host, static_cast<std::uint8_t>(i + 1));
      published = static_cast<std::uint8_t>(i + 1);
    }
    try {
      const std::uint8_t token = 1;
      comm_.send(&token, 1, i, tag_base_ + m);
      return;
    } catch (const mpisim::MpiError& e) {
      if (!surv || e.code() != Errc::crashed) throw;
      // The chosen successor died between the epoch and the send. Its own
      // wake-up (or another waiter's) reclaims from the published holder
      // byte; still try the remaining requesters so an uncontended row
      // ends free.
    }
  }
  // No live requester in the snapshot: free the lock -- but conditionally.
  // A new requester whose claim epoch ran after our flag-clearing epoch has
  // already claimed the lock and published (or is about to publish) its own
  // holder byte; an unconditional H = 0 here would mark a held lock free
  // and strand a later crash recovery. The compare-and-swap only clears H
  // while it still carries the value this releaser last published.
  if (surv) clear_holder_if(m, host, published);
}

}  // namespace armci
