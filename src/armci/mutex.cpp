#include "src/armci/mutex.hpp"

#include "src/armci/epoch_guard.hpp"
#include "src/mpisim/error.hpp"
#include "src/mpisim/runtime.hpp"
#include "src/mpisim/trace.hpp"

namespace armci {

using mpisim::Errc;
using mpisim::LockType;
using mpisim::TraceCat;
using mpisim::TraceScope;

QueueingMutexSet QueueingMutexSet::create(const mpisim::Comm& comm, int count,
                                          int tag_base) {
  if (count < 0) mpisim::raise(Errc::invalid_argument, "negative mutex count");
  QueueingMutexSet set;
  set.comm_ = comm.dup();  // private tag space for notification messages
  set.count_ = count;
  set.tag_base_ = tag_base;
  const std::size_t n = static_cast<std::size_t>(comm.size());
  set.bytes_ = std::make_shared<std::vector<std::uint8_t>>(
      static_cast<std::size_t>(count) * n, 0);
  set.win_ = mpisim::Win::create(
      set.bytes_->empty() ? nullptr : set.bytes_->data(), set.bytes_->size(),
      comm);
  return set;
}

void QueueingMutexSet::destroy() {
  win_.free();
  win_ = mpisim::Win();
  bytes_.reset();
  count_ = 0;
}

void QueueingMutexSet::lock(int m, int host) {
  if (m < 0 || m >= count_)
    mpisim::raise(Errc::invalid_argument, "mutex index out of range");
  TraceScope ts(mpisim::tracer(), TraceCat::mutex, "qmutex.lock",
                static_cast<std::uint64_t>(m));
  const int n = comm_.size();
  const int me = comm_.rank();
  const std::size_t row = static_cast<std::size_t>(m) * static_cast<std::size_t>(n);

  // One exclusive epoch: set B[me] = 1 and fetch every other entry. The
  // put and the two gets touch disjoint bytes, so this is a legal epoch.
  std::vector<std::uint8_t> others(static_cast<std::size_t>(n), 0);
  const std::uint8_t one = 1;
  {
    EpochGuard eg(win_, LockType::exclusive, host);
    win_.put(&one, 1, host, row + static_cast<std::size_t>(me));
    if (me > 0)
      win_.get(others.data(), static_cast<std::size_t>(me), host, row);
    if (me < n - 1)
      win_.get(others.data() + me + 1, static_cast<std::size_t>(n - 1 - me),
               host, row + static_cast<std::size_t>(me) + 1);
    eg.release();
  }

  for (int i = 0; i < n; ++i) {
    if (i != me && others[static_cast<std::size_t>(i)] != 0) {
      // Enqueued: wait locally for the current holder to forward the lock.
      std::uint8_t token = 0;
      comm_.recv(&token, 1, mpisim::kAnySource, tag_base_ + m);
      return;
    }
  }
  // No other requester: the lock is ours.
}

void QueueingMutexSet::unlock(int m, int host) {
  if (m < 0 || m >= count_)
    mpisim::raise(Errc::invalid_argument, "mutex index out of range");
  TraceScope ts(mpisim::tracer(), TraceCat::mutex, "qmutex.unlock",
                static_cast<std::uint64_t>(m));
  const int n = comm_.size();
  const int me = comm_.rank();
  const std::size_t row = static_cast<std::size_t>(m) * static_cast<std::size_t>(n);

  std::vector<std::uint8_t> others(static_cast<std::size_t>(n), 0);
  const std::uint8_t zero = 0;
  {
    EpochGuard eg(win_, LockType::exclusive, host);
    win_.put(&zero, 1, host, row + static_cast<std::size_t>(me));
    if (me > 0)
      win_.get(others.data(), static_cast<std::size_t>(me), host, row);
    if (me < n - 1)
      win_.get(others.data() + me + 1, static_cast<std::size_t>(n - 1 - me),
               host, row + static_cast<std::size_t>(me) + 1);
    eg.release();
  }

  // Fair handoff: scan circularly starting at me+1 and forward the lock to
  // the first enqueued requester, if any.
  for (int k = 1; k < n; ++k) {
    const int i = (me + k) % n;
    if (others[static_cast<std::size_t>(i)] != 0) {
      const std::uint8_t token = 1;
      comm_.send(&token, 1, i, tag_base_ + m);
      return;
    }
  }
}

}  // namespace armci
