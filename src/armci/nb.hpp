#ifndef ARMCI_NB_HPP
#define ARMCI_NB_HPP

/// \file nb.hpp
/// Nonblocking deferred-op aggregation engine with epoch coalescing.
///
/// The MPI-2 mapping pays one exclusive-lock passive epoch per ARMCI op
/// (paper §V-C), which makes per-op synchronization the dominant cost of
/// small-message streams. The nb_* API creates the opportunity to amortize
/// it: between two completion points the application has promised not to
/// touch the buffers involved, so ops bound for the same (GMR, target) can
/// be *deferred* into a queue and later coalesced into a single epoch --
/// N ops pay 1 lock/unlock instead of N.
///
/// Location consistency is preserved by construction:
///  - ops within one queue flush together in program order;
///  - each queue tracks the remote byte ranges it will read / write /
///    accumulate and the local ranges it will read / write in per-queue
///    ConflictTrees (the same structure the §VI-B auto method and the RMA
///    checker use). A new op whose ranges conflict -- under the MPI-2
///    same-origin rules: put vs anything, get vs writes/accs, acc vs
///    reads/writes or a different accumulate type -- forces the conflicting
///    queue to flush *first*, so dependent ops are never batched into one
///    (unordered) epoch. This also keeps the RMA validity checker silent:
///    every batch handed to the backend is proven conflict-free.
///  - blocking ops, fence/barrier, rmw, direct local access, frees, and the
///    wait family are flush points (api.cpp).
///
/// Each deferred op hands its Request a ticket (queue id + sequence
/// number); wait(req) drains exactly the queues the tickets name, and
/// Request::test() compares tickets against the queues' completed
/// sequence numbers.

#include <cstdint>
#include <exception>
#include <functional>
#include <map>
#include <span>
#include <utility>
#include <vector>

#include "src/armci/gmr.hpp"
#include "src/armci/types.hpp"
#include "src/mpisim/conflict_tree.hpp"
#include "src/mpisim/datatype.hpp"

namespace armci {

struct ProcState;
enum class OneSided;

/// One deferred operation, self-contained for later replay: the backend
/// needs no address translation at flush time.
struct NbOp {
  OneSided kind{};
  AccType at = AccType::float64;
  void* local = nullptr;     ///< origin base address
  std::size_t bytes = 0;     ///< payload bytes (stats / cost accounting)
  std::size_t offset = 0;    ///< displacement of the remote base in the
                             ///< target's slice
  bool typed = false;        ///< use ltype/rtype (strided and IOV ops)
  mpisim::Datatype ltype = mpisim::byte_type();
  mpisim::Datatype rtype = mpisim::byte_type();
};

/// Local-buffer contract coverage recorded for the race detector under the
/// rank's progress-persona identity: <space (window id), target rank in
/// that space> of a deferred op's local buffer that lies inside a global
/// allocation. Published (= retired) when the covering queue completes.
struct NbLocalSpace {
  std::uint64_t space = 0;
  int target_rank = -1;
};

/// Deferred ops bound for one (GMR, absolute target) pair, plus the range
/// bookkeeping that decides when a new op may join the batch.
struct NbQueue {
  std::shared_ptr<Gmr> gmr;
  int proc = -1;         ///< absolute target id
  int target_rank = -1;  ///< rank within gmr->group (== window rank)
  std::vector<NbOp> ops;

  // Remote coverage in target-slice offset space. Reads and writes are
  // kept disjoint from everything; accumulates may overlap each other
  // (same-op accumulate is well defined), so r_accs stores their union.
  mpisim::ConflictTree r_reads, r_writes, r_accs;
  // Local coverage in this process's address space: ranges queued ops will
  // read (put/acc sources) and write (get destinations).
  mpisim::ConflictTree l_reads, l_writes;

  bool has_acc = false;
  AccType acc_type = AccType::float64;  ///< element type of queued accs

  std::uint64_t seq_enqueued = 0;   ///< ticket of the newest queued op
  std::uint64_t seq_issued = 0;     ///< every ticket <= this is source-
                                    ///< complete (handed to the transport)
  std::uint64_t seq_completed = 0;  ///< every ticket <= this has flushed

  /// Progress-engine split completion: true between issue_queue() and the
  /// matching complete_target() (ops issued, target completion pending).
  /// Ops may keep arriving meanwhile; the range trees retain issued
  /// coverage until completion so conflicting newcomers force a flush.
  bool pending_flush = false;

  /// A persona-driven drain of this queue failed (e.g. Errc::crashed from
  /// a dead target): the error is parked here and surfaced exactly once at
  /// the next test()/callback/flush that covers the queue. The queue's
  /// tickets read complete (error-drain semantics, as after a failed
  /// flush).
  std::exception_ptr parked;

  /// Race-detector contract coverage awaiting retirement (see NbLocalSpace).
  std::vector<NbLocalSpace> local_spaces;
};

/// Per-process aggregation engine; lives in ProcState. All methods take the
/// owning state explicitly (the engine is a member of it).
class NbEngine {
 public:
  /// Try to defer a contiguous nb op. On success appends a ticket to
  /// \p req and returns true; on false the caller runs the eager path.
  /// May flush queues first when the new op conflicts with queued ones.
  bool try_defer_contig(ProcState& st, OneSided kind, const void* remote,
                        void* local, std::size_t bytes, int proc, AccType at,
                        const void* scale, Request& req);

  /// Strided variant (direct method only; others fall back to eager).
  bool try_defer_strided(ProcState& st, OneSided kind, const void* src,
                         void* dst, const StridedSpec& spec, int proc,
                         AccType at, const void* scale, Request& req);

  /// IOV variant: defers the whole descriptor list or none of it.
  bool try_defer_iov(ProcState& st, OneSided kind, std::span<const Giov> vec,
                     int proc, AccType at, const void* scale, Request& req);

  /// Drain every queue (wait_all, fence_all, barrier, finalize).
  void flush_all(ProcState& st);

  /// Drain every queue bound for \p proc (wait_proc, fence, rmw).
  void flush_proc(ProcState& st, int proc);

  /// Drain every queue on GMR \p gmr_id (access_begin, set_access_mode).
  void flush_gmr(ProcState& st, std::uint64_t gmr_id);

  /// flush_gmr + forget the queues: the GMR is being freed, so their
  /// tickets read as complete afterwards.
  void drop_gmr(ProcState& st, std::uint64_t gmr_id);

  /// Hazard fence ahead of a blocking operation: drains queues bound for
  /// \p proc (same-target program order) and queues whose local coverage
  /// conflicts with [local, local+bytes) -- any overlap when the blocking
  /// op writes the range, overlap with queued writes when it only reads.
  void flush_for_blocking(ProcState& st, int proc, const void* local,
                          std::size_t bytes, bool local_write);

  /// wait(req): drain the queues named by the request's tickets that have
  /// not already completed them.
  void complete(ProcState& st, const Request& req);

  /// Request::test() helper. Absent queues read as complete.
  bool ticket_complete(const NbTicket& t) const noexcept;

  /// Source-completion counterpart: true once the ticket's op has been
  /// handed to the transport (issued or completed). Absent queues read as
  /// complete.
  bool ticket_issued(const NbTicket& t) const noexcept;

  /// True when no op is queued anywhere.
  bool idle() const noexcept;

  // ---- cooperative progress engine ----

  /// One persona tick, fired from the rank's SimClock progress hook (under
  /// application compute) or an explicit armci::progress() poke. Advances
  /// every live queue by at most one stage -- issue the queued batch
  /// (source completion), or complete a previously issued batch at the
  /// target (operation completion + retirement) -- then dispatches any
  /// completion callbacks that became ready. A queue whose drain fails
  /// parks the error (NbQueue::parked) instead of throwing, so one dead
  /// target never stops progress on healthy queues. Re-entrant calls
  /// (a callback issuing communication) are no-ops.
  void progress_tick(ProcState& st);

  /// armci::test(): true once every ticket of \p req is satisfied at
  /// \p level. Surfaces (and consumes) a parked error from a covered queue
  /// by rethrowing it -- exactly once across test()/callback/flush.
  bool test(ProcState& st, const Request& req, Completion level);

  /// armci::on_complete(): invoke \p fn when every ticket of \p req is
  /// satisfied at \p level -- synchronously if that is already true,
  /// otherwise from a later progress tick or completion point. A parked
  /// error from a covered queue is consumed and delivered as the callback
  /// argument; nullptr on success.
  void on_complete(ProcState& st, const Request& req, Completion level,
                   std::function<void(std::exception_ptr)> fn);

 private:
  using QueueKey = std::pair<std::uint64_t, int>;  // (gmr id, absolute proc)

  /// True when deferral is even on the table for this op shape.
  bool engine_enabled(const ProcState& st) const;

  /// True if [p, p+bytes) must be staged (§V-E1) and is therefore not
  /// deferrable.
  bool local_needs_staging(const ProcState& st, const void* p,
                           std::size_t bytes) const;

  /// Flush queues conflicting with the new op, then append it. Returns the
  /// ticket sequence number.
  std::uint64_t enqueue(ProcState& st, const std::shared_ptr<Gmr>& gmr,
                        int proc, int target_rank, NbOp op,
                        std::size_t r_span, std::uintptr_t l_lo,
                        std::uintptr_t l_hi);

  /// Drain one queue through the backend.
  void flush(ProcState& st, NbQueue& q);

  /// Drain a set of queues at one completion point. With >= 2 non-empty
  /// queues the drains run under an mpisim::EpochPipeline, overlapping the
  /// per-target epoch round trips (the GA layer's owner pipelining). A
  /// failing queue (e.g. Errc::crashed from its target) does not stop the
  /// drain: every queue is flushed, and the first error is rethrown after.
  void flush_group(ProcState& st, std::span<NbQueue* const> group);

  /// True when \p q still needs a completion point (queued ops, an issued
  /// batch awaiting target completion, or a parked error to surface).
  static bool queue_live(const NbQueue& q) noexcept {
    return !q.ops.empty() || q.pending_flush || q.parked != nullptr;
  }

  /// Record the race-detector contract interval for a deferred op whose
  /// local buffer lies inside a global allocation (persona identity; see
  /// NbLocalSpace). No-op unless the progress engine and race detector are
  /// both on.
  void record_local_contract(ProcState& st, NbQueue& q, OneSided kind,
                             void* local, std::size_t bytes);

  /// Retirement: publish the queue's persona contract records and create
  /// the persona -> owner happens-before edge.
  void retire_queue(ProcState& st, NbQueue& q);

  /// Dispatch every registered completion callback whose request is now
  /// satisfied at its level. Called from progress ticks and completion
  /// points, never from enqueue paths (no user code re-entry mid-nb_put).
  void run_callbacks(ProcState& st);

  /// Take (and clear) the first parked error among the queues the tickets
  /// name; nullptr when none.
  std::exception_ptr take_parked(std::span<const NbTicket> tickets);

  /// One registered completion callback.
  struct CallbackRec {
    std::vector<NbTicket> tickets;
    Completion level = Completion::operation;
    std::function<void(std::exception_ptr)> fn;
  };

  std::map<QueueKey, NbQueue> queues_;
  std::vector<CallbackRec> callbacks_;
  bool ticking_ = false;  ///< progress_tick re-entrancy guard
};

/// Runtime-internal accessor for Request's ticket list.
class RequestAccess {
 public:
  static void add_ticket(Request& req, std::uint64_t gmr_id, int proc,
                         std::uint64_t seq) {
    req.tickets_.push_back(NbTicket{gmr_id, proc, seq});
  }
  static std::span<const NbTicket> tickets(const Request& req) noexcept {
    return req.tickets_;
  }
};

}  // namespace armci

#endif  // ARMCI_NB_HPP
