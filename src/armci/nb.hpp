#ifndef ARMCI_NB_HPP
#define ARMCI_NB_HPP

/// \file nb.hpp
/// Nonblocking deferred-op aggregation engine with epoch coalescing.
///
/// The MPI-2 mapping pays one exclusive-lock passive epoch per ARMCI op
/// (paper §V-C), which makes per-op synchronization the dominant cost of
/// small-message streams. The nb_* API creates the opportunity to amortize
/// it: between two completion points the application has promised not to
/// touch the buffers involved, so ops bound for the same (GMR, target) can
/// be *deferred* into a queue and later coalesced into a single epoch --
/// N ops pay 1 lock/unlock instead of N.
///
/// Location consistency is preserved by construction:
///  - ops within one queue flush together in program order;
///  - each queue tracks the remote byte ranges it will read / write /
///    accumulate and the local ranges it will read / write in per-queue
///    ConflictTrees (the same structure the §VI-B auto method and the RMA
///    checker use). A new op whose ranges conflict -- under the MPI-2
///    same-origin rules: put vs anything, get vs writes/accs, acc vs
///    reads/writes or a different accumulate type -- forces the conflicting
///    queue to flush *first*, so dependent ops are never batched into one
///    (unordered) epoch. This also keeps the RMA validity checker silent:
///    every batch handed to the backend is proven conflict-free.
///  - blocking ops, fence/barrier, rmw, direct local access, frees, and the
///    wait family are flush points (api.cpp).
///
/// Each deferred op hands its Request a ticket (queue id + sequence
/// number); wait(req) drains exactly the queues the tickets name, and
/// Request::test() compares tickets against the queues' completed
/// sequence numbers.

#include <cstdint>
#include <map>
#include <span>
#include <utility>
#include <vector>

#include "src/armci/gmr.hpp"
#include "src/armci/types.hpp"
#include "src/mpisim/conflict_tree.hpp"
#include "src/mpisim/datatype.hpp"

namespace armci {

struct ProcState;
enum class OneSided;

/// One deferred operation, self-contained for later replay: the backend
/// needs no address translation at flush time.
struct NbOp {
  OneSided kind{};
  AccType at = AccType::float64;
  void* local = nullptr;     ///< origin base address
  std::size_t bytes = 0;     ///< payload bytes (stats / cost accounting)
  std::size_t offset = 0;    ///< displacement of the remote base in the
                             ///< target's slice
  bool typed = false;        ///< use ltype/rtype (strided and IOV ops)
  mpisim::Datatype ltype = mpisim::byte_type();
  mpisim::Datatype rtype = mpisim::byte_type();
};

/// Deferred ops bound for one (GMR, absolute target) pair, plus the range
/// bookkeeping that decides when a new op may join the batch.
struct NbQueue {
  std::shared_ptr<Gmr> gmr;
  int proc = -1;         ///< absolute target id
  int target_rank = -1;  ///< rank within gmr->group (== window rank)
  std::vector<NbOp> ops;

  // Remote coverage in target-slice offset space. Reads and writes are
  // kept disjoint from everything; accumulates may overlap each other
  // (same-op accumulate is well defined), so r_accs stores their union.
  mpisim::ConflictTree r_reads, r_writes, r_accs;
  // Local coverage in this process's address space: ranges queued ops will
  // read (put/acc sources) and write (get destinations).
  mpisim::ConflictTree l_reads, l_writes;

  bool has_acc = false;
  AccType acc_type = AccType::float64;  ///< element type of queued accs

  std::uint64_t seq_enqueued = 0;   ///< ticket of the newest queued op
  std::uint64_t seq_completed = 0;  ///< every ticket <= this has flushed
};

/// Per-process aggregation engine; lives in ProcState. All methods take the
/// owning state explicitly (the engine is a member of it).
class NbEngine {
 public:
  /// Try to defer a contiguous nb op. On success appends a ticket to
  /// \p req and returns true; on false the caller runs the eager path.
  /// May flush queues first when the new op conflicts with queued ones.
  bool try_defer_contig(ProcState& st, OneSided kind, const void* remote,
                        void* local, std::size_t bytes, int proc, AccType at,
                        const void* scale, Request& req);

  /// Strided variant (direct method only; others fall back to eager).
  bool try_defer_strided(ProcState& st, OneSided kind, const void* src,
                         void* dst, const StridedSpec& spec, int proc,
                         AccType at, const void* scale, Request& req);

  /// IOV variant: defers the whole descriptor list or none of it.
  bool try_defer_iov(ProcState& st, OneSided kind, std::span<const Giov> vec,
                     int proc, AccType at, const void* scale, Request& req);

  /// Drain every queue (wait_all, fence_all, barrier, finalize).
  void flush_all(ProcState& st);

  /// Drain every queue bound for \p proc (wait_proc, fence, rmw).
  void flush_proc(ProcState& st, int proc);

  /// Drain every queue on GMR \p gmr_id (access_begin, set_access_mode).
  void flush_gmr(ProcState& st, std::uint64_t gmr_id);

  /// flush_gmr + forget the queues: the GMR is being freed, so their
  /// tickets read as complete afterwards.
  void drop_gmr(ProcState& st, std::uint64_t gmr_id);

  /// Hazard fence ahead of a blocking operation: drains queues bound for
  /// \p proc (same-target program order) and queues whose local coverage
  /// conflicts with [local, local+bytes) -- any overlap when the blocking
  /// op writes the range, overlap with queued writes when it only reads.
  void flush_for_blocking(ProcState& st, int proc, const void* local,
                          std::size_t bytes, bool local_write);

  /// wait(req): drain the queues named by the request's tickets that have
  /// not already completed them.
  void complete(ProcState& st, const Request& req);

  /// Request::test() helper. Absent queues read as complete.
  bool ticket_complete(const NbTicket& t) const noexcept;

  /// True when no op is queued anywhere.
  bool idle() const noexcept;

 private:
  using QueueKey = std::pair<std::uint64_t, int>;  // (gmr id, absolute proc)

  /// True when deferral is even on the table for this op shape.
  bool engine_enabled(const ProcState& st) const;

  /// True if [p, p+bytes) must be staged (§V-E1) and is therefore not
  /// deferrable.
  bool local_needs_staging(const ProcState& st, const void* p,
                           std::size_t bytes) const;

  /// Flush queues conflicting with the new op, then append it. Returns the
  /// ticket sequence number.
  std::uint64_t enqueue(ProcState& st, const std::shared_ptr<Gmr>& gmr,
                        int proc, int target_rank, NbOp op,
                        std::size_t r_span, std::uintptr_t l_lo,
                        std::uintptr_t l_hi);

  /// Drain one queue through the backend.
  void flush(ProcState& st, NbQueue& q);

  /// Drain a set of queues at one completion point. With >= 2 non-empty
  /// queues the drains run under an mpisim::EpochPipeline, overlapping the
  /// per-target epoch round trips (the GA layer's owner pipelining). A
  /// failing queue (e.g. Errc::crashed from its target) does not stop the
  /// drain: every queue is flushed, and the first error is rethrown after.
  void flush_group(ProcState& st, std::span<NbQueue* const> group);

  std::map<QueueKey, NbQueue> queues_;
};

/// Runtime-internal accessor for Request's ticket list.
class RequestAccess {
 public:
  static void add_ticket(Request& req, std::uint64_t gmr_id, int proc,
                         std::uint64_t seq) {
    req.tickets_.push_back(NbTicket{gmr_id, proc, seq});
  }
  static std::span<const NbTicket> tickets(const Request& req) noexcept {
    return req.tickets_;
  }
};

}  // namespace armci

#endif  // ARMCI_NB_HPP
