#ifndef ARMCI_CONFLICT_TREE_HPP
#define ARMCI_CONFLICT_TREE_HPP

/// \file conflict_tree.hpp
/// Forwarding alias for the AVL conflict tree (paper §VI-B).
///
/// The tree itself now lives in src/mpisim/conflict_tree.hpp so the RMA
/// validity checker (mpisim/checker.hpp) can reuse it for epoch-interval
/// bookkeeping; the armci IOV auto-method keeps using it under its
/// historical name through this alias.

#include "src/mpisim/conflict_tree.hpp"

namespace armci {

using ConflictTree = mpisim::ConflictTree;

}  // namespace armci

#endif  // ARMCI_CONFLICT_TREE_HPP
