#ifndef ARMCI_STRIDED_HPP
#define ARMCI_STRIDED_HPP

/// \file strided.hpp
/// Strided-operation machinery (paper §VI-C, Table I, Algorithm 1).
///
/// ARMCI strided notation describes an n-dimensional patch as count[] units
/// per dimension (count[0] in bytes) with per-dimension byte strides for
/// source and destination. Two translation paths exist:
///
///  - Algorithm 1: enumerate the patch as an I/O vector of count[0]-byte
///    segments. StridedIter implements it as an iterator (constant space);
///    strided_to_iov materializes the full descriptor.
///
///  - Direct: translate "backwards" into an MPI subarray datatype by
///    reconstructing the parent array dimensions from the stride ratios
///    (paper §VI-C). When the strides are not expressible as array
///    dimensions, an equivalent nested-hvector type is built instead.

#include <span>

#include "src/armci/types.hpp"
#include "src/mpisim/datatype.hpp"

namespace armci {

/// Throw Errc::invalid_argument unless \p spec is well-formed: vector
/// lengths match stride_levels, counts are nonzero, and strides are large
/// enough that segments within one side cannot self-overlap.
void validate_spec(const StridedSpec& spec);

/// Payload bytes moved by one strided operation.
std::size_t strided_total_bytes(const StridedSpec& spec);

/// Number of contiguous segments (product of count[1..sl]).
std::size_t strided_segments(const StridedSpec& spec);

/// Algorithm 1 as a constant-space iterator: yields the source and
/// destination byte displacement of each count[0]-byte segment, innermost
/// dimension fastest.
class StridedIter {
 public:
  explicit StridedIter(const StridedSpec& spec);

  /// Produce the next segment's displacements; false when exhausted.
  bool next(std::size_t& src_off, std::size_t& dst_off);

  /// Restart the iteration.
  void reset();

  /// Segment payload length (count[0]).
  std::size_t seg_bytes() const noexcept { return spec_->count[0]; }

 private:
  const StridedSpec* spec_;
  std::vector<std::size_t> idx_;  // per-level counters, length sl
  bool done_ = false;
};

/// Materialize Algorithm 1: the full generalized-IOV descriptor for a
/// strided transfer from \p src to \p dst.
Giov strided_to_iov(const void* src, void* dst, const StridedSpec& spec);

/// Parameters of the backward subarray translation (paper §VI-C), in
/// elements of the given size. Valid only if representable() is true.
struct SubarrayParams {
  bool representable = false;
  std::vector<std::size_t> sizes;     // parent array dims, outermost first
  std::vector<std::size_t> subsizes;  // patch dims
  std::vector<std::size_t> starts;    // all zero: src/dst point at the patch
};

/// Attempt the backward translation from one side's strides to subarray
/// dimensions: dim[i] must come out integral from the stride ratios and
/// large enough to contain the patch.
SubarrayParams strided_to_subarray(std::span<const std::size_t> strides,
                                   const StridedSpec& spec,
                                   std::size_t elem_size);

/// Build the direct-method datatype for one side of a strided transfer:
/// the subarray type when representable, else the equivalent nested
/// hvector. \p elem is the element type (byte_ for put/get; the accumulate
/// element type for acc, so the target reduction applies element-wise).
mpisim::Datatype make_strided_type(std::span<const std::size_t> strides,
                                   const StridedSpec& spec,
                                   mpisim::BasicType elem);

}  // namespace armci

#endif  // ARMCI_STRIDED_HPP
