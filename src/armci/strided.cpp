#include "src/armci/strided.hpp"

#include "src/armci/accops.hpp"
#include "src/mpisim/error.hpp"

namespace armci {

using mpisim::Datatype;
using mpisim::Errc;

void validate_spec(const StridedSpec& spec) {
  const int sl = spec.stride_levels;
  if (sl < 0) mpisim::raise(Errc::invalid_argument, "negative stride_levels");
  if (spec.count.size() != static_cast<std::size_t>(sl) + 1)
    mpisim::raise(Errc::invalid_argument, "count[] must have sl + 1 entries");
  if (spec.src_strides.size() != static_cast<std::size_t>(sl) ||
      spec.dst_strides.size() != static_cast<std::size_t>(sl))
    mpisim::raise(Errc::invalid_argument, "stride arrays must have sl entries");
  for (std::size_t c : spec.count)
    if (c == 0) mpisim::raise(Errc::invalid_argument, "zero count");
  // Strides must be monotone and at least cover the inner extent, or
  // segments within one operation would self-overlap.
  std::size_t min_src = spec.count[0], min_dst = spec.count[0];
  for (int i = 0; i < sl; ++i) {
    if (spec.src_strides[static_cast<std::size_t>(i)] < min_src ||
        spec.dst_strides[static_cast<std::size_t>(i)] < min_dst)
      mpisim::raise(Errc::invalid_argument,
                    "stride smaller than the inner dimension extent");
    min_src = spec.src_strides[static_cast<std::size_t>(i)] *
              spec.count[static_cast<std::size_t>(i) + 1];
    min_dst = spec.dst_strides[static_cast<std::size_t>(i)] *
              spec.count[static_cast<std::size_t>(i) + 1];
  }
}

std::size_t strided_total_bytes(const StridedSpec& spec) {
  std::size_t total = 1;
  for (std::size_t c : spec.count) total *= c;
  return total;
}

std::size_t strided_segments(const StridedSpec& spec) {
  std::size_t n = 1;
  for (std::size_t i = 1; i < spec.count.size(); ++i) n *= spec.count[i];
  return n;
}

StridedIter::StridedIter(const StridedSpec& spec)
    : spec_(&spec),
      idx_(static_cast<std::size_t>(spec.stride_levels), 0) {}

bool StridedIter::next(std::size_t& src_off, std::size_t& dst_off) {
  if (done_) return false;
  const int sl = spec_->stride_levels;

  // Displacements from the base pointers (Algorithm 1 body).
  src_off = 0;
  dst_off = 0;
  for (int i = 0; i < sl; ++i) {
    src_off += spec_->src_strides[static_cast<std::size_t>(i)] *
               idx_[static_cast<std::size_t>(i)];
    dst_off += spec_->dst_strides[static_cast<std::size_t>(i)] *
               idx_[static_cast<std::size_t>(i)];
  }

  // Increment the innermost index and propagate the carry.
  if (sl == 0) {
    done_ = true;
    return true;
  }
  idx_[0] += 1;
  for (int i = 0; i < sl - 1; ++i) {
    if (idx_[static_cast<std::size_t>(i)] >=
        spec_->count[static_cast<std::size_t>(i) + 1]) {
      idx_[static_cast<std::size_t>(i)] = 0;
      idx_[static_cast<std::size_t>(i) + 1] += 1;
    }
  }
  if (idx_[static_cast<std::size_t>(sl - 1)] >=
      spec_->count[static_cast<std::size_t>(sl)])
    done_ = true;
  return true;
}

void StridedIter::reset() {
  std::fill(idx_.begin(), idx_.end(), 0);
  done_ = false;
}

Giov strided_to_iov(const void* src, void* dst, const StridedSpec& spec) {
  validate_spec(spec);
  Giov giov;
  giov.bytes = spec.count[0];
  const std::size_t n = strided_segments(spec);
  giov.src.reserve(n);
  giov.dst.reserve(n);
  StridedIter it(spec);
  std::size_t so = 0, to = 0;
  while (it.next(so, to)) {
    giov.src.push_back(static_cast<const std::uint8_t*>(src) + so);
    giov.dst.push_back(static_cast<std::uint8_t*>(dst) + to);
  }
  return giov;
}

SubarrayParams strided_to_subarray(std::span<const std::size_t> strides,
                                   const StridedSpec& spec,
                                   std::size_t elem_size) {
  SubarrayParams p;
  const int sl = spec.stride_levels;
  const std::size_t nd = static_cast<std::size_t>(sl) + 1;
  if (spec.count[0] % elem_size != 0) return p;

  // Paper §VI-C: the parent array's innermost dimension is stride[0] (in
  // elements); inner dimensions follow from consecutive stride ratios; the
  // outermost dimension can be taken as the patch's own outer count.
  std::vector<std::size_t> sizes(nd), subsizes(nd);
  if (sl > 0) {
    if (strides[0] % elem_size != 0) return p;
    sizes[nd - 1] = strides[0] / elem_size;
    for (int i = 1; i < sl; ++i) {
      if (strides[static_cast<std::size_t>(i)] %
              strides[static_cast<std::size_t>(i) - 1] !=
          0)
        return p;
      sizes[nd - 1 - static_cast<std::size_t>(i)] =
          strides[static_cast<std::size_t>(i)] /
          strides[static_cast<std::size_t>(i) - 1];
    }
  }
  // count[nd - 1] is the outer segment count for sl > 0 but the byte length
  // of the single contiguous run for sl == 0, where sizes[0] must be in
  // elements to match subsizes[0].
  sizes[0] = sl == 0 ? spec.count[0] / elem_size : spec.count[nd - 1];
  subsizes[nd - 1] = spec.count[0] / elem_size;
  for (std::size_t i = 1; i < nd; ++i) subsizes[nd - 1 - i] = spec.count[i];
  for (std::size_t d = 0; d < nd; ++d)
    if (subsizes[d] > sizes[d]) return p;

  p.representable = true;
  p.sizes = std::move(sizes);
  p.subsizes = std::move(subsizes);
  p.starts.assign(nd, 0);
  return p;
}

Datatype make_strided_type(std::span<const std::size_t> strides,
                           const StridedSpec& spec, mpisim::BasicType elem) {
  const std::size_t esz = mpisim::basic_type_size(elem);
  if (spec.count[0] % esz != 0)
    mpisim::raise(Errc::invalid_argument,
                  "count[0] not a multiple of the element size");

  SubarrayParams p = strided_to_subarray(strides, spec, esz);
  if (p.representable)
    return Datatype::subarray(p.sizes, p.subsizes, p.starts,
                              Datatype::basic(elem));

  // Irregular strides: equivalent nested hvector construction.
  Datatype t = Datatype::contiguous(spec.count[0] / esz, Datatype::basic(elem));
  for (int i = 0; i < spec.stride_levels; ++i)
    t = Datatype::hvector(spec.count[static_cast<std::size_t>(i) + 1], 1,
                          static_cast<std::ptrdiff_t>(
                              strides[static_cast<std::size_t>(i)]),
                          t);
  return t;
}

}  // namespace armci
