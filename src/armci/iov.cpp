#include "src/armci/iov.hpp"

#include <cstdint>

#include "src/armci/conflict_tree.hpp"

namespace armci {

bool iov_has_overlap(std::span<const void* const> ptrs, std::size_t bytes) {
  if (bytes == 0) return false;
  ConflictTree tree;
  for (const void* p : ptrs) {
    const auto lo = reinterpret_cast<std::uintptr_t>(p);
    if (!tree.insert(lo, lo + bytes - 1)) return true;
  }
  return false;
}

bool iov_has_overlap_naive(std::span<const void* const> ptrs,
                           std::size_t bytes) {
  if (bytes == 0) return false;
  for (std::size_t i = 0; i < ptrs.size(); ++i) {
    const auto a = reinterpret_cast<std::uintptr_t>(ptrs[i]);
    for (std::size_t j = i + 1; j < ptrs.size(); ++j) {
      const auto b = reinterpret_cast<std::uintptr_t>(ptrs[j]);
      if (a < b + bytes && b < a + bytes) return true;
    }
  }
  return false;
}

}  // namespace armci
