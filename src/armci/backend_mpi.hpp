#ifndef ARMCI_BACKEND_MPI_HPP
#define ARMCI_BACKEND_MPI_HPP

/// \file backend_mpi.hpp
/// ARMCI over MPI-2 passive-target RMA — the paper's contribution (§V-§VI).
///
/// Responsibilities:
///  - each ARMCI op runs in its own (normally exclusive) lock epoch, which
///    yields location consistency and remote completion on return (§V-C/F);
///  - local buffers that are themselves in global space are staged through
///    a temporary buffer under a self-epoch, never holding two window locks
///    at once (§V-E1);
///  - IOV transfers via the conservative / batched(B) / direct / auto
///    methods (§VI-A/B) and strided transfers via subarray datatypes or
///    Algorithm-1 IOV translation (§VI-C);
///  - RMW through the per-GMR queueing mutex in two epochs (§V-D);
///  - access-mode hints downgrade exclusive to shared epochs (§VIII-A).

#include <memory>

#include "src/armci/backend.hpp"
#include "src/armci/mutex.hpp"

namespace armci {

class MpiBackend final : public CommBackend {
 public:
  explicit MpiBackend(ProcState* st) : st_(st) {}

  void gmr_created(Gmr& gmr) override;
  void gmr_freeing(Gmr& gmr) override;

  void contig(OneSided kind, const GmrLoc& loc, void* local,
              std::size_t bytes, AccType at, const void* scale) override;
  void iov(OneSided kind, std::span<const Giov> vec, int proc, AccType at,
           const void* scale) override;
  void strided(OneSided kind, const void* src, void* dst,
               const StridedSpec& spec, int proc, AccType at,
               const void* scale) override;

  void fence(int proc) override;
  void fence_all() override;

  void rmw(RmwOp op, void* ploc, void* prem, std::int64_t extra,
           int proc) override;

  void mutexes_create(int count) override;
  void mutexes_destroy() override;
  void mutex_lock(int m, int proc) override;
  void mutex_unlock(int m, int proc) override;

  void access_begin(const GmrLoc& loc) override;
  void access_end(const GmrLoc& loc) override;

  /// Per-op exclusive epochs dominate small-op streams here, so deferred
  /// batches pay off: N ops in one epoch instead of N (§V-C amortized).
  bool nb_defers() const override { return true; }
  void flush_queue(const Gmr& gmr, int target_rank,
                   std::span<const NbOp> ops) override;

 private:
  /// Lock mode for an epoch on \p gmr given the op kind and the GMR's
  /// access-mode hint (§VIII-A).
  mpisim::LockType epoch_lock(const Gmr& gmr, OneSided kind) const;

  /// True if [p, p+bytes) intersects global space on this process, i.e.
  /// the op needs the §V-E1 staging path.
  bool local_is_global(const void* p, std::size_t bytes) const;

  /// Copy between a local global-space region and a private buffer under an
  /// exclusive self-epoch on the containing window.
  void staged_local_copy(void* dst, const void* src, std::size_t bytes,
                         const void* global_side) const;

  /// One IOV descriptor with a forced method (strided ops delegate here).
  void iov_one(OneSided kind, const Giov& giov, int proc, AccType at,
               const void* scale, IovMethod method);

  void iov_conservative(OneSided kind, const Giov& giov, int proc, AccType at,
                        const void* scale);
  void iov_batched(OneSided kind, const Giov& giov, int proc, AccType at,
                   const void* scale);
  void iov_direct(OneSided kind, const Giov& giov, int proc, AccType at,
                  const void* scale);

  ProcState* st_;
  QueueingMutexSet user_mutexes_;
};

}  // namespace armci

#endif  // ARMCI_BACKEND_MPI_HPP
