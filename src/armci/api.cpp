#include "src/armci/armci.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>

#include "src/armci/accops.hpp"
#include "src/armci/backend_mpi.hpp"
#include "src/armci/backend_mpi3.hpp"
#include "src/armci/backend_native.hpp"
#include "src/armci/metrics.hpp"
#include "src/armci/state.hpp"
#include "src/mpisim/error.hpp"
#include "src/mpisim/runtime.hpp"

namespace armci {

using mpisim::Errc;

// ---------------------------------------------------------------------------
// Lifecycle
// ---------------------------------------------------------------------------

namespace {

/// Options::progress, unless MPISIM_PROGRESS overrides it (on|off). The
/// env hook lets CI rerun the whole suite with the progress engine forced
/// on with no code changes. An unknown value is almost certainly a typo of
/// an enabling one, so warn loudly and force off rather than silently run
/// at the config default (the MPISIM_RMA_CHECK convention).
bool effective_progress(const Options& opts) {
  const char* env = std::getenv("MPISIM_PROGRESS");
  if (env != nullptr) {
    const std::string v(env);
    if (v == "on" || v == "1" || v == "true") return true;
    if (v == "off" || v == "0" || v == "false") return false;
    std::fprintf(stderr,
                 "armci: unknown MPISIM_PROGRESS value \"%s\" "
                 "(expected on|off); progress engine disabled\n",
                 env);
    return false;
  }
  return opts.progress;
}

}  // namespace

void init(const Options& opts) {
  mpisim::RankContext& me = mpisim::ctx();
  if (me.user_state != nullptr)
    mpisim::raise(Errc::invalid_argument, "ARMCI already initialized");

  auto st = std::make_unique<ProcState>(mpisim::nranks());
  st->opts = opts;
  st->opts.progress = effective_progress(opts);
  st->dt_cache.set_capacity(opts.dt_cache_capacity);
  st->world = PGroup::world();
  switch (opts.backend) {
    case Backend::mpi:
      st->backend = std::make_unique<MpiBackend>(st.get());
      break;
    case Backend::native:
      st->backend = std::make_unique<NativeBackend>(st.get());
      break;
    case Backend::mpi3:
      st->backend = std::make_unique<Mpi3Backend>(st.get());
      break;
  }
  if (opts.metrics) st->metrics.enable();
  if (opts.trace) me.tracer().enable(opts.trace_capacity);
  ProcState* stp = st.release();
  me.user_state = stp;
  me.user_state_cleanup = [&me] {
    me.clock().clear_progress_hook();
    delete static_cast<ProcState*>(me.user_state);
    me.user_state = nullptr;
  };
  // Arm the cooperative progress engine: the rank's own clock fires the
  // persona every progress_interval_ns of *compute* time charged through
  // advance_compute(). The nb tick drains deferred queues (pointless
  // without deferral, so it keeps its own gate); the am hook -- installed
  // later by am::init(), if at all -- serves inbound active messages.
  if (stp->opts.progress) {
    const bool nb_ticks =
        stp->opts.nb_aggregation && stp->backend->nb_defers();
    me.clock().set_progress_hook(
        [stp, nb_ticks] {
          if (nb_ticks) stp->nb.progress_tick(*stp);
          if (stp->am_poll) stp->am_poll();
        },
        me.core().config().progress_interval_ns);
  }
  mpisim::world().barrier();
}

namespace {

/// Process-local half of finalize(): everything that needs no cooperation
/// from peers and is therefore safe after an aborted run.
void release_local_state() {
  mpisim::RankContext& me = mpisim::ctx();
  // Disarm the progress hook first: it captures the ProcState deleted below.
  me.clock().clear_progress_hook();
  // Capture traces before finalize(): the sink dies with the ARMCI instance.
  me.tracer().disable();
  delete static_cast<ProcState*>(me.user_state);
  me.user_state = nullptr;
  me.user_state_cleanup = nullptr;
}

}  // namespace

void finalize() {
  ProcState* stp = state_if_initialized();
  if (stp == nullptr) return;  // idempotent: second finalize is a no-op
  ProcState& st = *stp;
  mpisim::SimCore& core = mpisim::ctx().core();
  if (core.aborted()) {
    // A peer already failed: every collective below would raise
    // Errc::aborted (or worse, rendezvous with ranks that are gone).
    // Release the local half only; Gmr ownership frees the slices.
    release_local_state();
    return;
  }
  try {
    // Complete deferred nonblocking work before tearing anything down.
    st.nb.flush_all(st);
    // Free any remaining allocations (collective, in consistent order since
    // the tables are replicated).
    for (const auto& gmr : st.table.all()) {
      st.backend->gmr_freeing(*gmr);
      st.table.remove(*gmr);
    }
    if (st.mutexes_exist) {
      st.backend->mutexes_destroy();
      st.mutexes_exist = false;
    }
    mpisim::world().barrier();
  } catch (...) {
    release_local_state();
    throw;
  }
  release_local_state();
}

bool initialized() noexcept { return state_if_initialized() != nullptr; }

const Options& options() { return state().opts; }

const Stats& stats() {
  ProcState& st = state();
  // The checker counts violations per world rank for the whole run; the
  // Stats view is relative to the last reset_stats().
  st.stats.rma_conflicts =
      mpisim::ctx().core().checker().counts(mpisim::rank()).total() -
      st.rma_conflicts_baseline;
  st.stats.rma_races =
      mpisim::ctx().core().hb().counts(mpisim::rank()).total() -
      st.rma_races_baseline;
  // The overlap gauges live on the rank's clock (advance_compute maintains
  // them); like the checker counters they accumulate per run, so subtract
  // the reset_stats() baselines. Clamped at 0: SimClock::reset() between
  // runs zeros the gauges while the baselines persist in ProcState.
  const mpisim::SimClock& ck = mpisim::clock();
  st.stats.overlap_comm_ns =
      std::max(0.0, ck.progress_comm_ns() - st.overlap_comm_baseline);
  st.stats.overlap_hidden_ns =
      std::max(0.0, ck.progress_hidden_ns() - st.overlap_hidden_baseline);
  return st.stats;
}

const MetricsRegistry& metrics() { return state().metrics; }

void reset_stats() {
  ProcState& st = state();
  st.rma_conflicts_baseline =
      mpisim::ctx().core().checker().counts(mpisim::rank()).total();
  st.rma_races_baseline =
      mpisim::ctx().core().hb().counts(mpisim::rank()).total();
  st.overlap_comm_baseline = mpisim::clock().progress_comm_ns();
  st.overlap_hidden_baseline = mpisim::clock().progress_hidden_ns();
  st.stats = Stats{};
  st.metrics.reset();
}

// ---------------------------------------------------------------------------
// Global memory
// ---------------------------------------------------------------------------

namespace {

std::vector<void*> malloc_impl(std::size_t bytes, const PGroup& group) {
  ProcState& st = state();
  const int n = group.size();

  auto gmr = std::make_shared<Gmr>();
  gmr->group = group;
  gmr->bases.resize(static_cast<std::size_t>(n));
  gmr->sizes.resize(static_cast<std::size_t>(n));

  // Allocate the local slice. The Gmr record owns it, so it is released
  // both on the collective armci::free path and when an aborted run tears
  // down ProcState with allocations still live. Shared-window backends
  // allocate nothing here: the window owns one block per node, and
  // gmr_created() overwrites the bases with the window's (the exchange
  // below still agrees on the sizes).
  if (bytes > 0 && !st.backend->uses_shared_windows())
    gmr->local_slice.reset(::operator new(bytes));
  void* base = gmr->local_slice.get();

  // §V-B: all participants exchange their base addresses to build the base
  // address vector returned to the user; zero-size slices contribute NULL.
  struct Info {
    std::uintptr_t base;
    std::size_t size;
  };
  Info mine{reinterpret_cast<std::uintptr_t>(base), bytes};
  std::vector<Info> all(static_cast<std::size_t>(n));
  group.comm().allgather(&mine, all.data(), sizeof(Info));
  for (int r = 0; r < n; ++r) {
    gmr->bases[static_cast<std::size_t>(r)] =
        reinterpret_cast<void*>(all[static_cast<std::size_t>(r)].base);
    gmr->sizes[static_cast<std::size_t>(r)] =
        all[static_cast<std::size_t>(r)].size;
  }

  // Agree on an id (leader's counter, unique via leader world rank).
  static thread_local std::uint64_t counter = 0;
  std::uint64_t id =
      (static_cast<std::uint64_t>(group.absolute_id(0)) << 32) | counter;
  group.comm().bcast(&id, sizeof id, 0);
  if (group.rank() == 0) ++counter;
  gmr->id = id;

  st.backend->gmr_created(*gmr);
  st.table.insert(gmr);
  ++st.stats.allocations;
  return gmr->bases;
}

}  // namespace

std::vector<void*> malloc_world(std::size_t bytes) {
  return malloc_impl(bytes, state().world);
}

std::vector<void*> malloc_group(std::size_t bytes, const PGroup& group) {
  return malloc_impl(bytes, group);
}

void free(void* ptr) { free_group(ptr, state().world); }

void free_group(void* ptr, const PGroup& group) {
  ProcState& st = state();

  // §V-B: a zero-size participant passes NULL and cannot identify the GMR
  // itself (its table may hold several NULL-base entries). Locate it via
  // leader election: processes holding a non-NULL address put forward
  // their group rank; the maximum wins and broadcasts its address, and
  // everyone looks the handle up by <leader, address> in the replicated
  // table.
  GmrLoc loc;
  if (ptr != nullptr) loc = st.table.find(mpisim::rank(), ptr, 0);

  if (ptr != nullptr && !loc.gmr)
    mpisim::raise(Errc::invalid_argument,
                  "armci::free of a non-global pointer");

  const std::int64_t my_vote = loc.gmr ? group.rank() : -1;
  std::int64_t leader = -1;
  group.comm().allreduce(&my_vote, &leader, 1, mpisim::BasicType::int64,
                         mpisim::Op::max);
  if (leader < 0)
    mpisim::raise(Errc::invalid_argument,
                  "armci::free: no process supplied a valid pointer");
  std::uintptr_t addr = reinterpret_cast<std::uintptr_t>(ptr);
  group.comm().bcast(&addr, sizeof addr, static_cast<int>(leader));
  const int leader_proc = group.absolute_id(static_cast<int>(leader));
  GmrLoc found =
      st.table.require(leader_proc, reinterpret_cast<void*>(addr), 0);
  std::shared_ptr<Gmr> gmr = found.gmr;

  // Flush and forget this GMR's deferred queues: tickets into a freed GMR
  // read as complete.
  st.nb.drop_gmr(st, gmr->id);
  st.backend->gmr_freeing(*gmr);
  st.table.remove(*gmr);
  ++st.stats.frees;
  // The local slice is owned by the Gmr record and dies with it here.
}

void* malloc_local(std::size_t bytes) {
  ProcState& st = state();
  auto buf = std::make_unique<std::uint8_t[]>(bytes);
  void* p = buf.get();
  // Local buffers from ARMCI's allocator come from the pre-pinned pool
  // (paper Fig. 5: "ARMCI Alloc" local buffers take the fast path).
  mpisim::ctx().native_reg().register_prepinned(p, bytes);
  st.local_allocs.emplace(p, std::move(buf));
  return p;
}

void free_local(void* ptr) {
  ProcState& st = state();
  if (st.local_allocs.erase(ptr) == 0)
    mpisim::raise(Errc::invalid_argument,
                  "free_local of an unknown pointer");
}

// ---------------------------------------------------------------------------
// Contiguous operations
// ---------------------------------------------------------------------------

namespace {

const double kUnitScaleD = 1.0;

void contig_op(OneSided kind, const void* remote, void* local,
               std::size_t bytes, int proc, AccType at, const void* scale) {
  if (bytes == 0) return;
  ProcState& st = state();
  // Location consistency: queued nb ops to this target (or touching this
  // local buffer) must be issued before a blocking op runs.
  st.nb.flush_for_blocking(st, proc, local, bytes,
                           /*local_write=*/kind == OneSided::get);
  GmrLoc loc = st.table.require(proc, remote, bytes);
  switch (loc.locality) {
    case GmrLoc::Locality::self: ++st.stats.ops_self; break;
    case GmrLoc::Locality::same_node: ++st.stats.ops_same_node; break;
    case GmrLoc::Locality::remote: ++st.stats.ops_remote; break;
  }
  st.backend->contig(kind, loc, local, bytes, at, scale);
}

/// Conservative local bounding box of one side of a strided transfer:
/// count[0] + sum((count[i+1]-1) * stride[i]) bytes from the base. Returns
/// 0 when the spec is malformed (the backend will diagnose it).
std::size_t strided_extent(const StridedSpec& spec,
                           std::span<const std::size_t> strides) {
  const auto sl = static_cast<std::size_t>(spec.stride_levels);
  if (spec.stride_levels < 0 || spec.count.size() != sl + 1 ||
      strides.size() != sl)
    return 0;
  for (std::size_t c : spec.count)
    if (c == 0) return 0;
  std::size_t ext = spec.count[0];
  for (std::size_t i = 0; i < sl; ++i)
    ext += (spec.count[i + 1] - 1) * strides[i];
  return ext;
}

/// flush_for_blocking ahead of a blocking strided op.
void flush_for_strided(ProcState& st, OneSided kind, const void* src,
                       void* dst, const StridedSpec& spec, int proc) {
  const bool is_get = kind == OneSided::get;
  const void* local = is_get ? dst : src;
  const auto& lstrides = is_get ? spec.dst_strides : spec.src_strides;
  st.nb.flush_for_blocking(st, proc, local, strided_extent(spec, lstrides),
                           /*local_write=*/is_get);
}

/// flush_for_blocking ahead of a blocking IOV op: one bounding box over
/// each descriptor's local segment list.
void flush_for_iov(ProcState& st, OneSided kind, std::span<const Giov> vec,
                   int proc) {
  const bool is_get = kind == OneSided::get;
  bool flushed_any_range = false;
  for (const Giov& g : vec) {
    std::uintptr_t lo = 0, hi = 0;
    bool have = false;
    const std::size_t n = std::min(g.src.size(), g.dst.size());
    for (std::size_t i = 0; i < n; ++i) {
      const void* local = is_get ? g.dst[i] : g.src[i];
      const auto p = reinterpret_cast<std::uintptr_t>(local);
      if (!have || p < lo) lo = p;
      if (!have || p + g.bytes > hi) hi = p + g.bytes;
      have = true;
    }
    if (have) {
      st.nb.flush_for_blocking(st, proc, reinterpret_cast<const void*>(lo),
                               hi - lo, /*local_write=*/is_get);
      flushed_any_range = true;
    }
  }
  // Empty descriptors still order against queued ops to the same target.
  if (!flushed_any_range) st.nb.flush_proc(st, proc);
}

}  // namespace

void put(const void* src, void* dst, std::size_t bytes, int proc) {
  ProcState& st = state();
  OpTimer probe(st, OpClass::put, "armci.put", bytes);
  ++st.stats.puts;
  st.stats.put_bytes += bytes;
  contig_op(OneSided::put, dst, const_cast<void*>(src), bytes, proc,
            AccType::float64, &kUnitScaleD);
}

void get(const void* src, void* dst, std::size_t bytes, int proc) {
  ProcState& st = state();
  OpTimer probe(st, OpClass::get, "armci.get", bytes);
  ++st.stats.gets;
  st.stats.get_bytes += bytes;
  contig_op(OneSided::get, src, dst, bytes, proc, AccType::float64,
            &kUnitScaleD);
}

void acc(AccType type, const void* scale, const void* src, void* dst,
         std::size_t bytes, int proc) {
  if (scale == nullptr)
    mpisim::raise(Errc::invalid_argument, "accumulate scale is null");
  if (bytes % acc_type_size(type) != 0)
    mpisim::raise(Errc::invalid_argument,
                  "accumulate length not a multiple of the element size");
  ProcState& st = state();
  OpTimer probe(st, OpClass::acc, "armci.acc", bytes);
  ++st.stats.accs;
  st.stats.acc_bytes += bytes;
  contig_op(OneSided::acc, dst, const_cast<void*>(src), bytes, proc, type,
            scale);
}

// ---------------------------------------------------------------------------
// Noncontiguous operations
// ---------------------------------------------------------------------------

namespace {

std::uint64_t count_iov(std::span<const Giov> iov) {
  Stats& st = state().stats;
  ++st.iov_ops;
  std::uint64_t bytes = 0;
  for (const Giov& g : iov) {
    st.iov_segments += g.src.size();
    bytes += g.bytes * g.src.size();
  }
  st.iov_bytes += bytes;
  return bytes;
}

}  // namespace

void put_iov(std::span<const Giov> iov, int proc) {
  ProcState& st = state();
  OpTimer probe(st, OpClass::iov, "armci.put_iov", count_iov(iov));
  flush_for_iov(st, OneSided::put, iov, proc);
  st.backend->iov(OneSided::put, iov, proc, AccType::float64, &kUnitScaleD);
}

void get_iov(std::span<const Giov> iov, int proc) {
  ProcState& st = state();
  OpTimer probe(st, OpClass::iov, "armci.get_iov", count_iov(iov));
  flush_for_iov(st, OneSided::get, iov, proc);
  st.backend->iov(OneSided::get, iov, proc, AccType::float64, &kUnitScaleD);
}

void acc_iov(AccType type, const void* scale, std::span<const Giov> iov,
             int proc) {
  if (scale == nullptr)
    mpisim::raise(Errc::invalid_argument, "accumulate scale is null");
  ProcState& st = state();
  OpTimer probe(st, OpClass::iov, "armci.acc_iov", count_iov(iov));
  flush_for_iov(st, OneSided::acc, iov, proc);
  st.backend->iov(OneSided::acc, iov, proc, type, scale);
}

namespace {

std::uint64_t count_strided(const StridedSpec& spec) {
  Stats& st = state().stats;
  ++st.strided_ops;
  std::uint64_t bytes = 1;
  for (std::size_t c : spec.count) bytes *= c;
  st.strided_bytes += bytes;
  return bytes;
}

}  // namespace

void put_strided(const void* src, void* dst, const StridedSpec& spec,
                 int proc) {
  ProcState& st = state();
  OpTimer probe(st, OpClass::strided, "armci.put_strided",
                count_strided(spec));
  flush_for_strided(st, OneSided::put, src, dst, spec, proc);
  st.backend->strided(OneSided::put, src, dst, spec, proc, AccType::float64,
                      &kUnitScaleD);
}

void get_strided(const void* src, void* dst, const StridedSpec& spec,
                 int proc) {
  ProcState& st = state();
  OpTimer probe(st, OpClass::strided, "armci.get_strided",
                count_strided(spec));
  flush_for_strided(st, OneSided::get, src, dst, spec, proc);
  st.backend->strided(OneSided::get, src, dst, spec, proc, AccType::float64,
                      &kUnitScaleD);
}

void acc_strided(AccType type, const void* scale, const void* src, void* dst,
                 const StridedSpec& spec, int proc) {
  if (scale == nullptr)
    mpisim::raise(Errc::invalid_argument, "accumulate scale is null");
  ProcState& st = state();
  OpTimer probe(st, OpClass::strided, "armci.acc_strided",
                count_strided(spec));
  flush_for_strided(st, OneSided::acc, src, dst, spec, proc);
  st.backend->strided(OneSided::acc, src, dst, spec, proc, type, scale);
}

// ---------------------------------------------------------------------------
// Nonblocking variants (deferred-op aggregation, nb.hpp)
// ---------------------------------------------------------------------------
//
// Each nb_* op first tries to defer into its (GMR, target) queue; the queue
// is coalesced into a single backend epoch at the next completion point.
// Ops the engine cannot defer (native backend, aggregation disabled, self
// targets, staged local buffers, scaled accumulates, fallback transfer
// methods) run eagerly through the blocking entry point -- which is itself
// a flush point -- and return an empty, born-complete handle. Deferred ops
// mirror the blocking op/byte counters so Stats totals are mode-invariant.

Request nb_put(const void* src, void* dst, std::size_t bytes, int proc) {
  ProcState& st = state();
  ++st.stats.nb_ops;
  Request req;
  if (st.nb.try_defer_contig(st, OneSided::put, dst, const_cast<void*>(src),
                             bytes, proc, AccType::float64, &kUnitScaleD,
                             req)) {
    ++st.stats.nb_deferred;
    ++st.stats.puts;
    st.stats.put_bytes += bytes;
    return req;
  }
  ++st.stats.nb_eager;
  put(src, dst, bytes, proc);
  return req;
}

Request nb_get(const void* src, void* dst, std::size_t bytes, int proc) {
  ProcState& st = state();
  ++st.stats.nb_ops;
  Request req;
  if (st.nb.try_defer_contig(st, OneSided::get, src, dst, bytes, proc,
                             AccType::float64, &kUnitScaleD, req)) {
    ++st.stats.nb_deferred;
    ++st.stats.gets;
    st.stats.get_bytes += bytes;
    return req;
  }
  ++st.stats.nb_eager;
  get(src, dst, bytes, proc);
  return req;
}

Request nb_acc(AccType type, const void* scale, const void* src, void* dst,
               std::size_t bytes, int proc) {
  if (scale == nullptr)
    mpisim::raise(Errc::invalid_argument, "accumulate scale is null");
  if (bytes % acc_type_size(type) != 0)
    mpisim::raise(Errc::invalid_argument,
                  "accumulate length not a multiple of the element size");
  ProcState& st = state();
  ++st.stats.nb_ops;
  Request req;
  if (st.nb.try_defer_contig(st, OneSided::acc, dst, const_cast<void*>(src),
                             bytes, proc, type, scale, req)) {
    ++st.stats.nb_deferred;
    ++st.stats.accs;
    st.stats.acc_bytes += bytes;
    return req;
  }
  ++st.stats.nb_eager;
  acc(type, scale, src, dst, bytes, proc);
  return req;
}

Request nb_put_strided(const void* src, void* dst, const StridedSpec& spec,
                       int proc) {
  ProcState& st = state();
  ++st.stats.nb_ops;
  Request req;
  if (st.nb.try_defer_strided(st, OneSided::put, src, dst, spec, proc,
                              AccType::float64, &kUnitScaleD, req)) {
    ++st.stats.nb_deferred;
    count_strided(spec);
    return req;
  }
  ++st.stats.nb_eager;
  put_strided(src, dst, spec, proc);
  return req;
}

Request nb_get_strided(const void* src, void* dst, const StridedSpec& spec,
                       int proc) {
  ProcState& st = state();
  ++st.stats.nb_ops;
  Request req;
  if (st.nb.try_defer_strided(st, OneSided::get, src, dst, spec, proc,
                              AccType::float64, &kUnitScaleD, req)) {
    ++st.stats.nb_deferred;
    count_strided(spec);
    return req;
  }
  ++st.stats.nb_eager;
  get_strided(src, dst, spec, proc);
  return req;
}

Request nb_acc_strided(AccType type, const void* scale, const void* src,
                       void* dst, const StridedSpec& spec, int proc) {
  if (scale == nullptr)
    mpisim::raise(Errc::invalid_argument, "accumulate scale is null");
  ProcState& st = state();
  ++st.stats.nb_ops;
  Request req;
  if (st.nb.try_defer_strided(st, OneSided::acc, src, dst, spec, proc, type,
                              scale, req)) {
    ++st.stats.nb_deferred;
    count_strided(spec);
    return req;
  }
  ++st.stats.nb_eager;
  acc_strided(type, scale, src, dst, spec, proc);
  return req;
}

Request nb_put_iov(std::span<const Giov> iov, int proc) {
  ProcState& st = state();
  ++st.stats.nb_ops;
  Request req;
  if (st.nb.try_defer_iov(st, OneSided::put, iov, proc, AccType::float64,
                          &kUnitScaleD, req)) {
    ++st.stats.nb_deferred;
    count_iov(iov);
    return req;
  }
  ++st.stats.nb_eager;
  put_iov(iov, proc);
  return req;
}

Request nb_get_iov(std::span<const Giov> iov, int proc) {
  ProcState& st = state();
  ++st.stats.nb_ops;
  Request req;
  if (st.nb.try_defer_iov(st, OneSided::get, iov, proc, AccType::float64,
                          &kUnitScaleD, req)) {
    ++st.stats.nb_deferred;
    count_iov(iov);
    return req;
  }
  ++st.stats.nb_eager;
  get_iov(iov, proc);
  return req;
}

Request nb_acc_iov(AccType type, const void* scale, std::span<const Giov> iov,
                   int proc) {
  if (scale == nullptr)
    mpisim::raise(Errc::invalid_argument, "accumulate scale is null");
  ProcState& st = state();
  ++st.stats.nb_ops;
  Request req;
  if (st.nb.try_defer_iov(st, OneSided::acc, iov, proc, type, scale, req)) {
    ++st.stats.nb_deferred;
    count_iov(iov);
    return req;
  }
  ++st.stats.nb_eager;
  acc_iov(type, scale, iov, proc);
  return req;
}

void wait(Request& req) {
  ProcState& st = state();
  st.nb.complete(st, req);
}

void wait_proc(int proc) {
  ProcState& st = state();
  if (proc < 0 || proc >= mpisim::nranks())
    mpisim::raise(Errc::rank_out_of_range,
                  "wait_proc: rank " + std::to_string(proc) +
                      " outside [0, " + std::to_string(mpisim::nranks()) +
                      ")");
  st.nb.flush_proc(st, proc);
}

void wait_all() {
  ProcState& st = state();
  st.nb.flush_all(st);
}

// ---------------------------------------------------------------------------
// Asynchronous progress (Options::progress, nb.hpp progress engine)
// ---------------------------------------------------------------------------

void progress() {
  ProcState& st = state();
  const bool nb_ticks = st.opts.progress && st.opts.nb_aggregation &&
                        st.backend->nb_defers();
  if (!nb_ticks && !st.am_poll) return;
  // An explicit poke is communication the caller chose to stand in for:
  // charge its virtual time to the overlap gauge as (unhidden) comm so
  // overlap_efficiency only credits ticks that ran under compute.
  mpisim::SimClock& ck = mpisim::ctx().clock();
  const double t0 = ck.now_ns();
  if (nb_ticks) st.nb.progress_tick(st);
  if (st.am_poll) st.am_poll();
  ck.note_progress_comm(ck.now_ns() - t0);
}

bool test(Request& req, Completion level) {
  ProcState& st = state();
  progress();  // drive the engine: a poll loop must itself make progress
  return st.nb.test(st, req, level);
}

bool test(Request& req) { return test(req, Completion::operation); }

void on_complete(Request& req, Completion level,
                 std::function<void(std::exception_ptr)> fn) {
  if (fn == nullptr)
    mpisim::raise(Errc::invalid_argument, "on_complete callback is null");
  ProcState& st = state();
  st.nb.on_complete(st, req, level, std::move(fn));
}

void on_complete(Request& req, std::function<void(std::exception_ptr)> fn) {
  on_complete(req, Completion::operation, std::move(fn));
}

// ---------------------------------------------------------------------------
// Completion and synchronization
// ---------------------------------------------------------------------------

void fence(int proc) {
  ProcState& st = state();
  ++st.stats.fences;
  st.nb.flush_proc(st, proc);
  st.backend->fence(proc);
}

void fence_all() {
  ProcState& st = state();
  ++st.stats.fences;
  st.nb.flush_all(st);
  st.backend->fence_all();
}

void barrier() {
  ProcState& st = state();
  ++st.stats.barriers;
  st.nb.flush_all(st);
  st.backend->fence_all();
  st.world.barrier();
}

void msg_send(const void* buf, std::size_t bytes, int proc, int tag) {
  state().world.comm().send(buf, bytes, proc, tag);
}

void msg_recv(void* buf, std::size_t bytes, int proc, int tag) {
  state().world.comm().recv(buf, bytes, proc, tag);
}

void put_notify(const void* src, void* dst, std::size_t bytes, int* flag,
                int value, int proc) {
  // Location consistency: the target observes this origin's operations in
  // issue order, so data-then-flag is safe. On the MPI backend each op
  // completes remotely inside its own epoch before the next is issued
  // (§V-F); the native backend needs an explicit fence between the two.
  put(src, dst, bytes, proc);
  fence(proc);
  // Happens-before: release the notify channel (keyed by the flag address)
  // after the payload is published and before the flag lands, so a waiter
  // that observes the flag always acquires the payload's publication. The
  // flag word itself is a synchronization object, exempt from race
  // checking -- its ordering is exactly this channel edge.
  mpisim::SimCore& core = mpisim::ctx().core();
  if (core.hb().enabled()) {
    std::lock_guard lk(core.mu());
    core.hb().channel_release(reinterpret_cast<std::uintptr_t>(flag),
                              mpisim::ctx().rank());
  }
  {
    mpisim::HbChecker::MuteScope mute;
    put(&value, flag, sizeof value, proc);
    fence(proc);
  }
}

void wait_notify(const int* flag, int value) {
  ProcState& st = state();
  mpisim::SimCore& core = mpisim::ctx().core();
  // The flag must be globally accessible local memory; poll it under
  // direct local access so the poll does not race the remote flag write.
  GmrLoc loc = st.table.require(mpisim::rank(), flag, sizeof(int));
  const double deadline_ns = core.config().wait_deadline_ns;
  const double t0 = mpisim::clock().now_ns();
  for (;;) {
    if (core.aborted())
      mpisim::raise(Errc::aborted, "wait_notify: peer failure");
    int v;
    {
      // Sync-word access: mute the race detector for the poll itself (the
      // flag is ordered by the notify channel, not by data-race rules).
      mpisim::HbChecker::MuteScope mute;
      st.backend->access_begin(loc);
      {
        // The remote flag write lands as a memcpy under the simulator's
        // global lock (the stand-in for the target NIC); polling under the
        // same lock gives data-then-flag delivery a real happens-before
        // edge, so the payload the flag guards is visible too.
        std::lock_guard lk(core.mu());
        v = *flag;
        // Acquire the producer's channel release: orders every payload
        // access after this wait against the publications that preceded
        // the notify.
        if (v == value)
          core.hb().channel_acquire(reinterpret_cast<std::uintptr_t>(flag),
                                    mpisim::rank());
      }
      st.backend->access_end(loc);
    }
    if (v == value) return;
    if (deadline_ns > 0.0 && mpisim::clock().now_ns() - t0 > deadline_ns)
      mpisim::raise(Errc::wait_timeout,
                    "wait_notify exceeded the virtual-time wait deadline of " +
                        std::to_string(deadline_ns) + " ns");
    // Yield the host thread so the producer can make progress, and charge
    // a poll interval to the virtual clock.
    mpisim::clock().advance(100.0);
    std::this_thread::yield();
  }
}

// ---------------------------------------------------------------------------
// Mutexes and RMW
// ---------------------------------------------------------------------------

void create_mutexes(int count) {
  ProcState& st = state();
  if (st.mutexes_exist)
    mpisim::raise(Errc::invalid_argument,
                  "a mutex set already exists (ARMCI allows one)");
  if (count < 0) mpisim::raise(Errc::invalid_argument, "negative mutex count");
  st.backend->mutexes_create(count);
  st.mutexes_exist = true;
  st.mutex_count = count;
}

void destroy_mutexes() {
  ProcState& st = state();
  if (!st.mutexes_exist)
    mpisim::raise(Errc::invalid_argument, "no mutex set exists");
  st.backend->mutexes_destroy();
  st.mutexes_exist = false;
  st.mutex_count = 0;
}

void lock(int mutex, int proc) {
  ProcState& st = state();
  if (!st.mutexes_exist || mutex < 0 || mutex >= st.mutex_count)
    mpisim::raise(Errc::invalid_argument, "invalid mutex");
  OpTimer probe(st, OpClass::mutex, "armci.lock",
                static_cast<std::uint64_t>(mutex));
  ++st.stats.mutex_locks;
  st.backend->mutex_lock(mutex, proc);
}

void unlock(int mutex, int proc) {
  ProcState& st = state();
  if (!st.mutexes_exist || mutex < 0 || mutex >= st.mutex_count)
    mpisim::raise(Errc::invalid_argument, "invalid mutex");
  st.backend->mutex_unlock(mutex, proc);
}

void rmw(RmwOp op, void* ploc, void* prem, std::int64_t extra, int proc) {
  if (ploc == nullptr || prem == nullptr)
    mpisim::raise(Errc::invalid_argument, "rmw with null pointer");
  ProcState& st = state();
  OpTimer probe(st, OpClass::rmw, "armci.rmw");
  ++st.stats.rmws;
  const bool is_long =
      op == RmwOp::fetch_and_add_long || op == RmwOp::swap_long;
  st.nb.flush_for_blocking(st, proc, ploc, is_long ? 8 : 4,
                           /*local_write=*/true);
  st.backend->rmw(op, ploc, prem, extra, proc);
}

// ---------------------------------------------------------------------------
// Failure detection
// ---------------------------------------------------------------------------

bool is_failed(int proc) {
  state();  // ARMCI must be initialized on the calling process
  mpisim::SimCore& core = mpisim::ctx().core();
  if (proc < 0 || proc >= core.config().nranks)
    mpisim::raise(Errc::invalid_argument, "is_failed: process out of range");
  return core.is_failed(proc);
}

std::vector<int> failed_ranks() {
  state();
  return mpisim::ctx().core().failed_ranks();
}

// ---------------------------------------------------------------------------
// Direct local access and access modes
// ---------------------------------------------------------------------------

void access_begin(void* ptr) {
  ProcState& st = state();
  GmrLoc loc = st.table.require(mpisim::rank(), ptr, 0);
  if (st.open_accesses.contains(ptr))
    mpisim::raise(Errc::invalid_argument,
                  "access_begin: region already open");
  ++st.stats.dla_epochs;
  // Direct load/store must observe queued nb ops on this allocation.
  st.nb.flush_gmr(st, loc.gmr->id);
  st.backend->access_begin(loc);
  // Declare the direct access to the RMA checker. The backend call above
  // establishes the covering epoch (exclusive self-lock on the MPI backend,
  // standing lock_all on mpi3), so the declaration is an audit record; the
  // native backend has no window and the hook is skipped.
  if (loc.gmr->win.valid())
    loc.gmr->win.local_access_begin(ptr, 0, /*write=*/true);
  st.open_accesses.emplace(ptr, loc);
}

void access_end(void* ptr) {
  ProcState& st = state();
  auto it = st.open_accesses.find(ptr);
  if (it == st.open_accesses.end())
    mpisim::raise(Errc::invalid_argument,
                  "access_end without matching access_begin");
  if (it->second.gmr->win.valid())
    it->second.gmr->win.local_access_end(ptr);
  st.backend->access_end(it->second);
  st.open_accesses.erase(it);
}

void set_access_mode(AccessMode mode, void* ptr) {
  ProcState& st = state();
  GmrLoc loc = st.table.require(mpisim::rank(), ptr, 0);
  // Ops queued under the old mode must not flush under the new one (the
  // epoch lock choice depends on it).
  st.nb.flush_gmr(st, loc.gmr->id);
  // Collective over the allocation group: all members must agree on the
  // mode before any further operation targets the GMR.
  loc.gmr->group.barrier();
  loc.gmr->mode = mode;
  loc.gmr->group.barrier();
}

}  // namespace armci
