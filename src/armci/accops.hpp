#ifndef ARMCI_ACCOPS_HPP
#define ARMCI_ACCOPS_HPP

/// \file accops.hpp
/// Scaled-accumulate element arithmetic.
///
/// ARMCI's accumulate is dst += scale * src with a typed scale factor;
/// MPI's accumulate has no scale, so the MPI backend scales the source into
/// a temporary buffer and issues MPI_Accumulate(MPI_SUM) (paper §IV-A: the
/// CHT provides double-precision accumulate natively; here MPI provides the
/// sum and we provide the scaling).

#include <cstddef>

#include "src/armci/types.hpp"
#include "src/mpisim/op.hpp"

namespace armci {

/// mpisim element type corresponding to an AccType.
mpisim::BasicType basic_type_of_acc(AccType t) noexcept;

/// True if \p scale (one element of type \p t) equals 1.
bool scale_is_identity(AccType t, const void* scale) noexcept;

/// dst[i] = scale * src[i] over bytes/sizeof(element) elements.
void scale_buffer(AccType t, const void* scale, void* dst, const void* src,
                  std::size_t bytes);

/// dst[i] += scale * src[i] over bytes/sizeof(element) elements (the native
/// backend's CHT-style fused accumulate).
void scaled_accumulate(AccType t, const void* scale, void* dst,
                       const void* src, std::size_t bytes);

}  // namespace armci

#endif  // ARMCI_ACCOPS_HPP
