#ifndef ARMCI_BACKEND_HPP
#define ARMCI_BACKEND_HPP

/// \file backend.hpp
/// The backend interface both ARMCI implementations satisfy.
///
/// The public ARMCI API (armci.hpp) validates arguments, resolves global
/// addresses through the GMR table, and dispatches here. MpiBackend
/// (backend_mpi.*) is the paper's contribution; NativeBackend
/// (backend_native.*) is the tuned-vendor-ARMCI baseline the paper
/// compares against.

#include <cstdint>
#include <span>

#include "src/armci/gmr.hpp"
#include "src/armci/nb.hpp"
#include "src/armci/types.hpp"

namespace armci {

struct ProcState;

/// Kind of one-sided data transfer.
enum class OneSided { put, get, acc };

/// Per-process backend instance. All methods are called on the owning
/// process's thread; collective methods are documented as such.
class CommBackend {
 public:
  virtual ~CommBackend() = default;

  /// Backend-specific GMR setup (window/mutex creation). Collective over
  /// gmr.group; called by malloc after the base-address exchange.
  virtual void gmr_created(Gmr& gmr) = 0;

  /// Backend-specific GMR teardown. Collective over gmr.group.
  virtual void gmr_freeing(Gmr& gmr) = 0;

  /// Contiguous transfer between the local buffer \p local and the global
  /// location \p loc. For acc, \p scale points to one AccType element
  /// (never null here; identity is still applied via MPI_SUM).
  virtual void contig(OneSided kind, const GmrLoc& loc, void* local,
                      std::size_t bytes, AccType at, const void* scale) = 0;

  /// Generalized I/O vector transfer to/from \p proc (absolute id).
  virtual void iov(OneSided kind, std::span<const Giov> vec, int proc,
                   AccType at, const void* scale) = 0;

  /// Strided transfer in GA/ARMCI notation to/from \p proc.
  virtual void strided(OneSided kind, const void* src, void* dst,
                       const StridedSpec& spec, int proc, AccType at,
                       const void* scale) = 0;

  /// Remote completion of prior put/acc to \p proc.
  virtual void fence(int proc) = 0;
  virtual void fence_all() = 0;

  /// Atomic read-modify-write on a global location (paper §V-D).
  virtual void rmw(RmwOp op, void* ploc, void* prem, std::int64_t extra,
                   int proc) = 0;

  /// World mutexes (ARMCI_Create_mutexes family). create/destroy are
  /// collective over the world.
  virtual void mutexes_create(int count) = 0;
  virtual void mutexes_destroy() = 0;
  virtual void mutex_lock(int m, int proc) = 0;
  virtual void mutex_unlock(int m, int proc) = 0;

  /// Direct local access (paper §V-E): \p loc is on the calling process.
  virtual void access_begin(const GmrLoc& loc) = 0;
  virtual void access_end(const GmrLoc& loc) = 0;

  /// True when this backend exposes GMRs through shared-memory windows
  /// (Win::allocate_shared): malloc leaves the slice allocation to the
  /// window, which owns one node-spanning block per node, instead of
  /// allocating a private local slice.
  virtual bool uses_shared_windows() const { return false; }

  /// True when \p loc is served by the backend's direct same-node data path
  /// (shared-memory load/store instead of an epoch). The nb engine must not
  /// defer such ops: the eager path already completes them at memcpy speed,
  /// and batching them into a flush epoch would only add round trips.
  virtual bool direct_path(const GmrLoc& loc) const {
    (void)loc;
    return false;
  }

  /// True if this backend accepts deferred nb_* batches via flush_queue().
  /// False (the default) makes every nb_* op execute eagerly through the
  /// blocking entry points above -- correct for backends whose per-op
  /// synchronization is already cheap (native).
  virtual bool nb_defers() const { return false; }

  /// Issue one conflict-free batch of deferred ops bound for a target rank
  /// of a GMR, completing them locally before returning (nb.hpp). Only
  /// called when nb_defers() is true, hence the no-op default.
  virtual void flush_queue(const Gmr& /*gmr*/, int /*target_rank*/,
                           std::span<const NbOp> /*ops*/) {}

  /// True when flush_queue() can be split into an issue half and a
  /// completion half so the progress engine can overlap the target-side
  /// wait with application compute: issue_queue() starts the batch
  /// (source-complete), complete_target() later finishes everything issued
  /// (operation-complete). Backends whose flush_queue already completes
  /// per-op (MPI-2 exclusive epochs) keep the default and complete in one
  /// step at issue.
  virtual bool split_completion() const { return false; }

  /// Start one conflict-free batch without waiting for target completion.
  /// Default: full flush_queue (issue == complete).
  virtual void issue_queue(const Gmr& gmr, int target_rank,
                           std::span<const NbOp> ops) {
    flush_queue(gmr, target_rank, ops);
  }

  /// Complete at the target everything previously started by issue_queue()
  /// for <gmr, target_rank>. Only called when split_completion() is true.
  virtual void complete_target(const Gmr& /*gmr*/, int /*target_rank*/) {}
};

}  // namespace armci

#endif  // ARMCI_BACKEND_HPP
