#include "src/armci/dtype_cache.hpp"

#include <utility>

#include "src/armci/strided.hpp"

namespace armci {

namespace {

constexpr std::uint64_t kTagStrided = 1;
constexpr std::uint64_t kTagHindexed = 2;

}  // namespace

std::size_t DatatypeCache::KeyHash::operator()(const Key& k) const noexcept {
  // FNV-1a over the shape words: cheap, and the keys are short.
  std::uint64_t h = 1469598103934665603ull;
  for (std::uint64_t w : k.words) {
    h ^= w;
    h *= 1099511628211ull;
  }
  return static_cast<std::size_t>(h);
}

void DatatypeCache::set_capacity(std::size_t cap) {
  capacity_ = cap;
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
  }
}

mpisim::Datatype DatatypeCache::get_or_build(
    Key key, Stats& stats, const std::function<mpisim::Datatype()>& build) {
  if (capacity_ == 0) return build();
  auto it = index_.find(key);
  if (it != index_.end()) {
    ++stats.dt_cache_hits;
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->second;
  }
  ++stats.dt_cache_misses;
  mpisim::Datatype dt = build();
  lru_.emplace_front(std::move(key), dt);
  index_.emplace(lru_.front().first, lru_.begin());
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
  }
  return dt;
}

mpisim::Datatype DatatypeCache::strided_type(
    std::span<const std::size_t> strides, const StridedSpec& spec,
    mpisim::BasicType elem, Stats& stats) {
  Key key;
  key.words.reserve(3 + spec.count.size() + strides.size());
  key.words.push_back(kTagStrided);
  key.words.push_back(static_cast<std::uint64_t>(elem));
  key.words.push_back(static_cast<std::uint64_t>(spec.stride_levels));
  for (std::size_t c : spec.count) key.words.push_back(c);
  for (std::size_t s : strides) key.words.push_back(s);
  return get_or_build(std::move(key), stats,
                      [&] { return make_strided_type(strides, spec, elem); });
}

mpisim::Datatype DatatypeCache::hindexed_type(
    std::span<const std::size_t> blocklens,
    std::span<const std::ptrdiff_t> displs_bytes, mpisim::BasicType elem,
    Stats& stats) {
  Key key;
  key.words.reserve(2 + blocklens.size() + displs_bytes.size());
  key.words.push_back(kTagHindexed);
  key.words.push_back(static_cast<std::uint64_t>(elem));
  for (std::size_t b : blocklens) key.words.push_back(b);
  for (std::ptrdiff_t d : displs_bytes)
    key.words.push_back(static_cast<std::uint64_t>(d));
  return get_or_build(std::move(key), stats, [&] {
    return mpisim::Datatype::hindexed(blocklens, displs_bytes,
                                      mpisim::Datatype::basic(elem));
  });
}

}  // namespace armci
