#include "src/armci/accops.hpp"

#include <cstdint>

#include "src/mpisim/error.hpp"

namespace armci {

std::size_t acc_type_size(AccType t) noexcept {
  switch (t) {
    case AccType::int32: return 4;
    case AccType::int64: return 8;
    case AccType::float32: return 4;
    case AccType::float64: return 8;
  }
  return 0;
}

mpisim::BasicType basic_type_of_acc(AccType t) noexcept {
  switch (t) {
    case AccType::int32: return mpisim::BasicType::int32;
    case AccType::int64: return mpisim::BasicType::int64;
    case AccType::float32: return mpisim::BasicType::float32;
    case AccType::float64: return mpisim::BasicType::float64;
  }
  return mpisim::BasicType::byte_;
}

namespace {

template <typename T, typename F>
void for_each_elem(const void* scale, void* dst, const void* src,
                   std::size_t bytes, F f) {
  const T s = *static_cast<const T*>(scale);
  auto* d = static_cast<T*>(dst);
  const auto* x = static_cast<const T*>(src);
  const std::size_t n = bytes / sizeof(T);
  for (std::size_t i = 0; i < n; ++i) f(d[i], s, x[i]);
}

template <typename F>
void dispatch(AccType t, const void* scale, void* dst, const void* src,
              std::size_t bytes, F f) {
  if (bytes % acc_type_size(t) != 0)
    mpisim::raise(mpisim::Errc::invalid_argument,
                  "accumulate length not a multiple of the element size");
  switch (t) {
    case AccType::int32:
      for_each_elem<std::int32_t>(scale, dst, src, bytes, f);
      return;
    case AccType::int64:
      for_each_elem<std::int64_t>(scale, dst, src, bytes, f);
      return;
    case AccType::float32:
      for_each_elem<float>(scale, dst, src, bytes, f);
      return;
    case AccType::float64:
      for_each_elem<double>(scale, dst, src, bytes, f);
      return;
  }
}

}  // namespace

bool scale_is_identity(AccType t, const void* scale) noexcept {
  switch (t) {
    case AccType::int32: return *static_cast<const std::int32_t*>(scale) == 1;
    case AccType::int64: return *static_cast<const std::int64_t*>(scale) == 1;
    case AccType::float32: return *static_cast<const float*>(scale) == 1.0f;
    case AccType::float64: return *static_cast<const double*>(scale) == 1.0;
  }
  return false;
}

void scale_buffer(AccType t, const void* scale, void* dst, const void* src,
                  std::size_t bytes) {
  dispatch(t, scale, dst, src, bytes,
           [](auto& d, auto s, auto x) { d = s * x; });
}

void scaled_accumulate(AccType t, const void* scale, void* dst,
                       const void* src, std::size_t bytes) {
  dispatch(t, scale, dst, src, bytes,
           [](auto& d, auto s, auto x) { d += s * x; });
}

}  // namespace armci
