#ifndef ARMCI_DTYPE_CACHE_HPP
#define ARMCI_DTYPE_CACHE_HPP

/// \file dtype_cache.hpp
/// LRU cache of derived datatypes for the direct strided/IOV paths.
///
/// GA applications move the same block shape over and over (every patch of
/// a regularly distributed array has identical counts/strides), so the
/// direct transfer methods rebuild byte-identical subarray/hindexed types
/// for every call. This cache keys the built Datatype handle on the shape
/// alone -- counts, strides, block lengths, displacements, element type --
/// which is exactly the information the constructors consume; base
/// addresses and target displacements are *not* part of the key (callers
/// rebase displacement lists so types are position-independent). Datatype
/// handles are immutable shared values, so returning a cached handle is
/// semantically identical to building a fresh one.
///
/// Capacity comes from Options::dt_cache_capacity; 0 disables the cache
/// (every lookup builds, no counters recorded). Hits/misses land in
/// Stats::dt_cache_hits / dt_cache_misses.

#include <cstdint>
#include <functional>
#include <list>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/armci/stats.hpp"
#include "src/armci/types.hpp"
#include "src/mpisim/datatype.hpp"

namespace armci {

class DatatypeCache {
 public:
  /// Shrink-or-grow the entry budget; evicts LRU entries when shrinking.
  void set_capacity(std::size_t cap);

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t size() const noexcept { return lru_.size(); }

  /// The direct-method datatype for one side of a strided transfer
  /// (make_strided_type), keyed on (strides, spec.count, elem).
  mpisim::Datatype strided_type(std::span<const std::size_t> strides,
                                const StridedSpec& spec,
                                mpisim::BasicType elem, Stats& stats);

  /// An hindexed type for one side of a direct IOV transfer, keyed on
  /// (blocklens, displacements, elem). Displacements should be rebased so
  /// the lowest one is 0, making the type reusable at any base address.
  mpisim::Datatype hindexed_type(std::span<const std::size_t> blocklens,
                                 std::span<const std::ptrdiff_t> displs_bytes,
                                 mpisim::BasicType elem, Stats& stats);

 private:
  /// Flattened shape key. `words` starts with the tag so strided and
  /// hindexed shapes can never collide.
  struct Key {
    std::vector<std::uint64_t> words;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept;
  };
  using Entry = std::pair<Key, mpisim::Datatype>;

  mpisim::Datatype get_or_build(
      Key key, Stats& stats,
      const std::function<mpisim::Datatype()>& build);

  std::size_t capacity_ = 64;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index_;
};

}  // namespace armci

#endif  // ARMCI_DTYPE_CACHE_HPP
