#include "src/armci/backend_native.hpp"

#include <cstring>
#include <mutex>

#include "src/armci/accops.hpp"
#include "src/armci/state.hpp"
#include "src/armci/strided.hpp"
#include "src/mpisim/error.hpp"
#include "src/mpisim/runtime.hpp"
#include "src/mpisim/trace.hpp"

namespace armci {

using mpisim::Errc;
using mpisim::TraceCat;
using mpisim::TraceScope;

namespace {

/// Charge a native transfer to the initiator's clock. Hardware-offloaded
/// RDMA pipelines aggressively across initiators, so (unlike the MPI
/// path's exclusive epochs, which serialize at the target by construction)
/// no target-side occupancy is modeled.
void charge_native_op(mpisim::RmaKind kind, std::size_t bytes,
                      std::size_t nseg, bool pinned, int proc) {
  (void)proc;
  mpisim::clock().advance(mpisim::model().rma_op_ns(
      kind, bytes, nseg, mpisim::Path::native, 0, pinned, mpisim::nranks()));
}

/// Happens-before channel key for a native mutex: the host rank and index
/// name the token; the tag bit keeps the key space disjoint from the
/// flag-address keys used by notify/wait.
std::uint64_t native_mutex_hb_key(int proc, int m) {
  return (1ull << 62) | (static_cast<std::uint64_t>(proc) << 32) |
         static_cast<std::uint32_t>(m);
}

}  // namespace

void NativeBackend::gmr_created(Gmr& gmr) {
  // Native ARMCI allocates from a pre-pinned, pre-registered pool.
  const int me = gmr.group.rank();
  mpisim::ctx().native_reg().register_prepinned(
      gmr.bases[static_cast<std::size_t>(me)],
      gmr.sizes[static_cast<std::size_t>(me)]);
  gmr.group.barrier();
}

void NativeBackend::gmr_freeing(Gmr& gmr) { gmr.group.barrier(); }

bool NativeBackend::local_pinned(const void* p, std::size_t bytes) const {
  return mpisim::ctx().native_reg().is_registered(p, bytes);
}

void NativeBackend::move_segment(OneSided kind, const Gmr& gmr,
                                 int target_rank, std::size_t offset,
                                 void* remote, void* local, std::size_t bytes,
                                 AccType at, const void* scale) const {
  // Direct access; the simulator's global lock stands in for the target
  // NIC/CHT applying the operation atomically with respect to other ops.
  mpisim::SimCore& core = mpisim::ctx().core();
  std::lock_guard lk(core.mu());
  core.check_failed_locked();
  if (core.hb().enabled()) {
    // No window backs native memory: key the shadow space off the GMR id.
    const auto hk = kind == OneSided::put   ? mpisim::RmaChecker::OpKind::put
                    : kind == OneSided::get ? mpisim::RmaChecker::OpKind::get
                                            : mpisim::RmaChecker::OpKind::acc;
    const auto lo = static_cast<std::ptrdiff_t>(offset);
    core.hb().direct_op(
        mpisim::HbChecker::kNativeSpace | gmr.id,
        gmr.group.absolute_id(target_rank), gmr.group.rank(),
        mpisim::ctx().rank(), hk,
        kind == OneSided::acc ? mpisim::Op::sum : mpisim::Op::replace, lo,
        lo + static_cast<std::ptrdiff_t>(bytes),
        mpisim::tracer().enabled() ? mpisim::tracer().current_scope()
                                   : nullptr);
  }
  switch (kind) {
    case OneSided::put:
      std::memcpy(remote, local, bytes);
      break;
    case OneSided::get:
      std::memcpy(local, remote, bytes);
      break;
    case OneSided::acc:
      scaled_accumulate(at, scale, remote, local, bytes);
      break;
  }
}

void NativeBackend::contig(OneSided kind, const GmrLoc& loc, void* local,
                           std::size_t bytes, AccType at, const void* scale) {
  TraceScope ts(mpisim::tracer(), TraceCat::backend, "native.contig", bytes);
  auto* remote = static_cast<std::uint8_t*>(
                     loc.gmr->bases[static_cast<std::size_t>(loc.target_rank)]) +
                 loc.offset;
  move_segment(kind, *loc.gmr, loc.target_rank, loc.offset, remote, local,
               bytes, at, scale);

  const mpisim::RmaKind rk = kind == OneSided::put  ? mpisim::RmaKind::put
                             : kind == OneSided::get ? mpisim::RmaKind::get
                                                     : mpisim::RmaKind::acc;
  const int proc = loc.gmr->group.absolute_id(loc.target_rank);
  charge_native_op(rk, bytes, 1, local_pinned(local, bytes), proc);
  if (kind != OneSided::get) pending_remote_.insert(proc);
}

void NativeBackend::iov(OneSided kind, std::span<const Giov> vec, int proc,
                        AccType at, const void* scale) {
  TraceScope ts(mpisim::tracer(), TraceCat::backend, "native.iov",
                vec.size());
  const bool is_get = kind == OneSided::get;
  for (const Giov& g : vec) {
    if (g.src.size() != g.dst.size())
      mpisim::raise(Errc::invalid_argument, "IOV src/dst length mismatch");
    bool pinned = true;
    for (std::size_t i = 0; i < g.src.size(); ++i) {
      const void* remote_c = is_get ? g.src[i] : g.dst[i];
      void* local = is_get ? g.dst[i] : const_cast<void*>(g.src[i]);
      GmrLoc loc = st_->table.require(proc, remote_c, g.bytes);
      auto* remote =
          static_cast<std::uint8_t*>(
              loc.gmr->bases[static_cast<std::size_t>(loc.target_rank)]) +
          loc.offset;
      move_segment(kind, *loc.gmr, loc.target_rank, loc.offset, remote, local,
                   g.bytes, at, scale);
      pinned = pinned && local_pinned(local, g.bytes);
    }
    const mpisim::RmaKind rk = kind == OneSided::put  ? mpisim::RmaKind::put
                               : kind == OneSided::get ? mpisim::RmaKind::get
                                                       : mpisim::RmaKind::acc;
    charge_native_op(rk, g.bytes * g.src.size(), g.src.size(), pinned, proc);
  }
  if (kind != OneSided::get) pending_remote_.insert(proc);
}

void NativeBackend::strided(OneSided kind, const void* src, void* dst,
                            const StridedSpec& spec, int proc, AccType at,
                            const void* scale) {
  TraceScope ts(mpisim::tracer(), TraceCat::backend, "native.strided",
                static_cast<std::uint64_t>(spec.stride_levels));
  validate_spec(spec);
  const bool is_get = kind == OneSided::get;
  const void* remote_base_c = is_get ? src : dst;
  void* local_base = is_get ? dst : const_cast<void*>(src);

  // The whole remote footprint must be inside one slice.
  std::size_t rext = spec.count[0];
  const auto& rstrides = is_get ? spec.src_strides : spec.dst_strides;
  for (int i = 0; i < spec.stride_levels; ++i)
    rext = rstrides[static_cast<std::size_t>(i)] *
               (spec.count[static_cast<std::size_t>(i) + 1] - 1) +
           (i == 0 ? spec.count[0] : rext);
  GmrLoc loc = st_->table.require(proc, remote_base_c, rext);
  auto* remote_base =
      static_cast<std::uint8_t*>(
          loc.gmr->bases[static_cast<std::size_t>(loc.target_rank)]) +
      loc.offset;

  StridedIter it(spec);
  std::size_t so = 0, to = 0;
  std::size_t nseg = 0;
  bool pinned = true;
  while (it.next(so, to)) {
    const std::size_t roff = is_get ? so : to;
    const std::size_t loff = is_get ? to : so;
    move_segment(kind, *loc.gmr, loc.target_rank, loc.offset + roff,
                 remote_base + roff,
                 static_cast<std::uint8_t*>(local_base) + loff, spec.count[0],
                 at, scale);
    pinned = pinned &&
             local_pinned(static_cast<std::uint8_t*>(local_base) + loff,
                          spec.count[0]);
    ++nseg;
  }
  const mpisim::RmaKind rk = kind == OneSided::put  ? mpisim::RmaKind::put
                             : kind == OneSided::get ? mpisim::RmaKind::get
                                                     : mpisim::RmaKind::acc;
  charge_native_op(rk, strided_total_bytes(spec), nseg, pinned, proc);
  if (kind != OneSided::get) pending_remote_.insert(proc);
}

void NativeBackend::fence(int proc) {
  if (pending_remote_.erase(proc) != 0)
    mpisim::clock().advance(2.0 * mpisim::model().p2p_ns(0));
}

void NativeBackend::fence_all() {
  if (!pending_remote_.empty()) {
    mpisim::clock().advance(2.0 * mpisim::model().p2p_ns(0));
    pending_remote_.clear();
  }
}

void NativeBackend::rmw(RmwOp op, void* ploc, void* prem, std::int64_t extra,
                        int proc) {
  TraceScope ts(mpisim::tracer(), TraceCat::backend, "native.rmw");
  const std::size_t bytes = (op == RmwOp::fetch_and_add_long ||
                             op == RmwOp::swap_long)
                                ? 8
                                : 4;
  const GmrLoc loc = st_->table.require(proc, prem, bytes);
  // Host-side atomic (CHT service): one critical section, one round trip.
  {
    mpisim::SimCore& core = mpisim::ctx().core();
    std::lock_guard lk(core.mu());
    core.check_failed_locked();
    if (core.hb().enabled()) {
      // Accumulate-class atomic: fetch_and_add mixes with itself (sum),
      // swap behaves like an atomic replace -- mixing the two is a race.
      const bool is_swap = op == RmwOp::swap || op == RmwOp::swap_long;
      const auto lo = static_cast<std::ptrdiff_t>(loc.offset);
      core.hb().direct_op(
          mpisim::HbChecker::kNativeSpace | loc.gmr->id,
          loc.gmr->group.absolute_id(loc.target_rank), loc.gmr->group.rank(),
          mpisim::ctx().rank(), mpisim::RmaChecker::OpKind::acc,
          is_swap ? mpisim::Op::replace : mpisim::Op::sum, lo,
          lo + static_cast<std::ptrdiff_t>(bytes), "native.rmw");
    }
    switch (op) {
      case RmwOp::fetch_and_add: {
        auto* r = static_cast<std::int32_t*>(prem);
        const std::int32_t old = *r;
        *r = old + static_cast<std::int32_t>(extra);
        *static_cast<std::int32_t*>(ploc) = old;
        break;
      }
      case RmwOp::fetch_and_add_long: {
        auto* r = static_cast<std::int64_t*>(prem);
        const std::int64_t old = *r;
        *r = old + extra;
        *static_cast<std::int64_t*>(ploc) = old;
        break;
      }
      case RmwOp::swap: {
        auto* r = static_cast<std::int32_t*>(prem);
        auto* l = static_cast<std::int32_t*>(ploc);
        std::swap(*r, *l);
        break;
      }
      case RmwOp::swap_long: {
        auto* r = static_cast<std::int64_t*>(prem);
        auto* l = static_cast<std::int64_t*>(ploc);
        std::swap(*r, *l);
        break;
      }
    }
  }
  mpisim::clock().advance(2.0 * mpisim::model().p2p_ns(0));
}

void NativeBackend::mutexes_create(int count) {
  st_->native_mutexes.assign(static_cast<std::size_t>(count), {});
  st_->world.barrier();
}

void NativeBackend::mutexes_destroy() {
  st_->world.barrier();
  st_->native_mutexes.clear();
}

void NativeBackend::mutex_lock(int m, int proc) {
  mpisim::RankContext& me = mpisim::ctx();
  mpisim::SimCore& core = me.core();
  std::unique_lock lk(core.mu());
  // The host's helper thread services mutex requests; a dead host cannot.
  core.check_target_alive_locked(proc, "native.mutex_lock");
  auto* host = static_cast<ProcState*>(core.rank_ctx(proc).user_state);
  if (host == nullptr || m < 0 ||
      m >= static_cast<int>(host->native_mutexes.size()))
    mpisim::raise(Errc::invalid_argument, "mutex index out of range");

  host->native_mutexes[static_cast<std::size_t>(m)].queue.push_back(me.rank());
  int reclaimed_from = -1;
  bool host_gone = false;
  // The host's death deletes its ProcState (user_state_cleanup runs under
  // mu() when its rank thread exits), so never hold a reference across a
  // wait: re-resolve the mutex row on every predicate evaluation and bail
  // out first when the host is gone. The predicate only flags; the throw
  // happens after wait() returns so the blocked-rank accounting stays
  // balanced (same pattern as comm.recv).
  core.wait(lk, [&] {
    auto* h = static_cast<ProcState*>(core.rank_ctx(proc).user_state);
    if (h == nullptr || m >= static_cast<int>(h->native_mutexes.size()) ||
        (core.survivable() && core.is_dead_locked(proc))) {
      host_gone = true;
      return true;
    }
    auto& mx = h->native_mutexes[static_cast<std::size_t>(m)];
    if (core.survivable()) {
      // A dead holder never unlocks and a dead waiter never takes its
      // turn: reclaim the one, strip the others.
      if (mx.holder != -1 && core.is_dead_locked(mx.holder)) {
        reclaimed_from = mx.holder;
        mx.holder = -1;
      }
      while (!mx.queue.empty() && mx.queue.front() != me.rank() &&
             core.is_dead_locked(mx.queue.front()))
        mx.queue.pop_front();
    }
    return mx.holder == -1 && !mx.queue.empty() && mx.queue.front() == me.rank();
  }, "native.mutex");
  if (host_gone) {
    if (core.survivable() && core.is_dead_locked(proc))
      core.observe_death_locked(proc, "native.mutex_lock");  // throws crashed
    mpisim::raise(Errc::invalid_argument,
                  "mutex set destroyed or host exited while locking");
  }
  auto& mx = static_cast<ProcState*>(core.rank_ctx(proc).user_state)
                 ->native_mutexes[static_cast<std::size_t>(m)];
  mx.queue.pop_front();
  mx.holder = me.rank();
  // Critical-section edge: acquire the clock the previous holder released
  // at unlock (a dead holder never released -- correctly no edge).
  core.hb().channel_acquire(native_mutex_hb_key(proc, m), me.rank());
  if (reclaimed_from >= 0) core.note_death_observed_locked(reclaimed_from);
  lk.unlock();
  mpisim::clock().advance(2.0 * mpisim::model().p2p_ns(0));
}

void NativeBackend::mutex_unlock(int m, int proc) {
  mpisim::RankContext& me = mpisim::ctx();
  mpisim::SimCore& core = me.core();
  std::unique_lock lk(core.mu());
  core.check_target_alive_locked(proc, "native.mutex_unlock");
  auto* host = static_cast<ProcState*>(core.rank_ctx(proc).user_state);
  if (host == nullptr || m < 0 ||
      m >= static_cast<int>(host->native_mutexes.size()))
    mpisim::raise(Errc::invalid_argument, "mutex index out of range");

  auto& mx = host->native_mutexes[static_cast<std::size_t>(m)];
  if (mx.holder != me.rank())
    mpisim::raise(Errc::invalid_argument, "unlock of a mutex not held");
  core.hb().channel_release(native_mutex_hb_key(proc, m), me.rank());
  mx.holder = -1;
  core.poke();
  lk.unlock();
  mpisim::clock().advance(mpisim::model().p2p_ns(0));
}

void NativeBackend::access_begin(const GmrLoc& /*loc*/) {
  // Native ARMCI permits direct load/store access to local global memory
  // without any epoch (cache-coherent platforms).
}

void NativeBackend::access_end(const GmrLoc& /*loc*/) {}

}  // namespace armci
