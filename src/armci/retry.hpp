#ifndef ARMCI_RETRY_HPP
#define ARMCI_RETRY_HPP

/// \file retry.hpp
/// Bounded retry with exponential virtual-time backoff around transient-
/// faultable operations.
///
/// A FaultPlan (mpisim/fault.hpp) can make an operation fail N times before
/// succeeding (Errc::transient). The MPI backends wrap each self-contained
/// epoch in with_retry(): the injector is consulted *before* the body runs,
/// so for a single-operation body either the fault fires and nothing
/// happened, or the body runs to completion. Bodies that issue *several*
/// non-idempotent operations with their own interior fault points (the
/// MPI-3 nonblocking batch flush) must keep their own resume cursor outside
/// the body: with_retry replays the whole body, and replaying an
/// already-applied accumulate would double-apply it. Every other error
/// class (crashes, aborts, semantic errors) propagates unchanged on the
/// first throw.

#include <algorithm>
#include <cmath>

#include "src/armci/state.hpp"
#include "src/mpisim/error.hpp"
#include "src/mpisim/runtime.hpp"

namespace armci {

/// Run \p body, retrying up to st.opts.transient_max_retries times on
/// Errc::transient with exponential backoff charged to virtual time.
/// \p site names the operation for the fault injector's diagnostics.
template <typename Body>
auto with_retry(ProcState& st, const char* site, Body&& body) {
  mpisim::RankContext& me = mpisim::ctx();
  for (int attempt = 0;; ++attempt) {
    try {
      me.fault().maybe_transient(me.clock(), site);
      return body();
    } catch (const mpisim::MpiError& e) {
      if (e.code() != mpisim::Errc::transient) throw;
      ++st.stats.transient_faults;
      if (attempt >= st.opts.transient_max_retries) {
        ++st.stats.retry_exhausted;
        throw;
      }
      ++st.stats.retries;
      me.clock().advance(
          std::ldexp(st.opts.retry_backoff_ns, std::min(attempt, 10)));
    }
  }
}

}  // namespace armci

#endif  // ARMCI_RETRY_HPP
