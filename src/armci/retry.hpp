#ifndef ARMCI_RETRY_HPP
#define ARMCI_RETRY_HPP

/// \file retry.hpp
/// Bounded retry with exponential virtual-time backoff around transient-
/// faultable operations.
///
/// A FaultPlan (mpisim/fault.hpp) can make an operation fail N times before
/// succeeding (Errc::transient). The MPI backends wrap each self-contained
/// epoch in with_retry(): the injector is consulted *before* the body runs,
/// so for a single-operation body either the fault fires and nothing
/// happened, or the body runs to completion. Bodies that issue *several*
/// non-idempotent operations with their own interior fault points (the
/// MPI-3 nonblocking batch flush) must keep their own resume cursor outside
/// the body: with_retry replays the whole body, and replaying an
/// already-applied accumulate would double-apply it. Every other error
/// class (crashes, aborts, semantic errors) propagates unchanged on the
/// first throw.

#include <algorithm>
#include <cmath>

#include "src/armci/state.hpp"
#include "src/mpisim/error.hpp"
#include "src/mpisim/runtime.hpp"

namespace armci {

/// Virtual-time delay charged before retry number \p attempt (0-based).
///
/// Default: pure exponential, base * 2^min(attempt, 10). With
/// opts.retry_jitter > 0 the schedule becomes *decorrelated jitter*
/// (Brooker's "FullJitter/DecorrelatedJitter" family): each delay is drawn
/// uniformly from [base, min(cap, 3 * prev * jitter)], where prev is the
/// previous delay and cap is the exponential ceiling (base * 2^10). The
/// uniform draw comes from the rank's deterministic fault RNG, so runs are
/// reproducible per seed while concurrent ranks' retry storms decorrelate.
/// \p prev carries the previous delay across attempts (in: last delay or
/// base on the first attempt; out: the chosen delay).
inline double retry_delay_ns(const Options& opts, double u, int attempt,
                             double* prev) {
  const double base = opts.retry_backoff_ns;
  const double cap = std::ldexp(base, 10);
  double delay = std::ldexp(base, std::min(attempt, 10));
  if (opts.retry_jitter > 0.0) {
    const double hi = std::min(cap, 3.0 * (*prev) * opts.retry_jitter);
    delay = hi <= base ? base : base + u * (hi - base);
  }
  *prev = delay;
  return delay;
}

/// Total backoff an exhausted with_retry() scope charges under the default
/// exponential schedule (used by tests to bound the deadline).
inline double retry_total_backoff_ns(const Options& opts) {
  double total = 0.0;
  for (int a = 0; a < opts.transient_max_retries; ++a)
    total += std::ldexp(opts.retry_backoff_ns, std::min(a, 10));
  return total;
}

/// Run \p body, retrying up to st.opts.transient_max_retries times on
/// Errc::transient with backoff charged to virtual time (see
/// retry_delay_ns for the schedule). A nonzero opts.retry_deadline_ns
/// additionally bounds the *cumulative* backoff of this scope: when the
/// next delay would push the total past the deadline, the error propagates
/// as retry_exhausted even if attempts remain. \p site names the operation
/// for the fault injector's diagnostics.
template <typename Body>
auto with_retry(ProcState& st, const char* site, Body&& body) {
  mpisim::RankContext& me = mpisim::ctx();
  double prev = st.opts.retry_backoff_ns;
  double slept = 0.0;
  for (int attempt = 0;; ++attempt) {
    try {
      me.fault().maybe_transient(me.clock(), site);
      return body();
    } catch (const mpisim::MpiError& e) {
      if (e.code() != mpisim::Errc::transient) throw;
      ++st.stats.transient_faults;
      if (attempt >= st.opts.transient_max_retries) {
        ++st.stats.retry_exhausted;
        throw;
      }
      const double u =
          st.opts.retry_jitter > 0.0 ? me.fault().draw_unit() : 0.0;
      const double delay = retry_delay_ns(st.opts, u, attempt, &prev);
      if (st.opts.retry_deadline_ns > 0.0 &&
          slept + delay > st.opts.retry_deadline_ns) {
        ++st.stats.retry_exhausted;
        throw;
      }
      ++st.stats.retries;
      slept += delay;
      me.clock().advance(delay);
    }
  }
}

}  // namespace armci

#endif  // ARMCI_RETRY_HPP
