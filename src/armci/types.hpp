#ifndef ARMCI_TYPES_HPP
#define ARMCI_TYPES_HPP

/// \file types.hpp
/// Public types of the ARMCI layer: configuration, IOV descriptors,
/// strided-operation notation, accumulate types, nonblocking handles.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace armci {

/// Which runtime implements the one-sided operations.
enum class Backend {
  mpi,     ///< the paper's contribution: ARMCI over MPI-2 passive RMA
  native,  ///< baseline: aggressively tuned vendor ARMCI (direct access)
  mpi3,    ///< the paper's §VIII-B projection: ARMCI over MPI-3 RMA
           ///< (epochless lock_all/flush, accumulate-based puts, atomic
           ///< fetch_and_op -- the design production ARMCI-MPI adopted)
};

/// Transfer method for generalized I/O vector operations (paper §VI-A/B).
enum class IovMethod {
  conservative,  ///< one RMA op per segment, each in its own epoch
  batched,       ///< up to B ops per epoch; segments must not overlap
  direct,        ///< one RMA op with an indexed datatype per side
  auto_,         ///< conflict-tree scan, then direct or conservative
};

/// Transfer method for strided operations (paper §VI-C).
enum class StridedMethod {
  direct,            ///< one RMA op with subarray datatypes
  iov_direct,        ///< translate to IOV (Algorithm 1), then IovMethod::direct
  iov_batched,       ///< translate to IOV, then IovMethod::batched
  iov_conservative,  ///< translate to IOV, then IovMethod::conservative
};

/// Element type of an accumulate operation (ARMCI_ACC_* equivalents).
enum class AccType {
  int32,   ///< ARMCI_ACC_INT
  int64,   ///< ARMCI_ACC_LNG
  float32, ///< ARMCI_ACC_FLT
  float64, ///< ARMCI_ACC_DBL
};

/// Bytes per element of an AccType.
std::size_t acc_type_size(AccType t) noexcept;

/// Access-mode hints (paper §VIII-A extension). Exclusive is always
/// correct; the others let ARMCI-MPI use shared-lock epochs when the
/// application guarantees the corresponding usage pattern for a phase.
enum class AccessMode {
  exclusive,        ///< default: all ops under exclusive epochs
  read_only,        ///< only get operations will target this allocation
  accumulate_only,  ///< only same-operator accumulates will target it
};

/// Runtime configuration, fixed at init(). Mirrors the environment knobs of
/// the real ARMCI-MPI (ARMCI_IOV_METHOD, ARMCI_IOV_BATCHED_LIMIT, ...).
struct Options {
  Backend backend = Backend::mpi;
  IovMethod iov_method = IovMethod::auto_;
  StridedMethod strided_method = StridedMethod::direct;
  /// Max RMA ops per epoch for IovMethod::batched; 0 = unlimited.
  std::size_t iov_batched_limit = 0;
  /// Skip the global-local-buffer staging copy (paper §V-E1). Safe only on
  /// coherent platforms whose MPI allows concurrent local access; provided
  /// because many MPI implementations extend the standard this way.
  bool no_local_copy = false;
  /// Record per-op virtual-time latency histograms (metrics.hpp). Off, the
  /// probes cost one branch per operation.
  bool metrics = false;
  /// Record begin/end trace events into a per-rank ring buffer, exportable
  /// as Chrome trace_event JSON (mpisim/trace.hpp).
  bool trace = false;
  /// Ring capacity (events per rank) when trace is on.
  std::size_t trace_capacity = 1 << 16;
  /// Max retries of an epoch that failed with a transient fault (injected
  /// via mpisim::FaultPlan) before the error propagates to the caller.
  int transient_max_retries = 5;
  /// Virtual-time backoff charged before the first retry; doubles per
  /// attempt (capped at 2^10 times this base).
  double retry_backoff_ns = 500.0;
  /// Decorrelated jitter factor for the retry backoff: > 0 replaces the
  /// deterministic exponential delay with a draw uniform in
  /// [backoff, min(cap, 3 * previous_delay * jitter)] from the rank's
  /// deterministic fault RNG, decorrelating retry storms across ranks while
  /// keeping runs reproducible per seed. 0 = pure exponential (default).
  double retry_jitter = 0.0;
  /// Cap on the *cumulative* virtual time one with_retry() scope may spend
  /// backing off. Once the total would exceed it, the transient error
  /// propagates (counted in Stats::retry_exhausted) even if attempts
  /// remain. 0 = no deadline (default).
  double retry_deadline_ns = 0.0;
  /// Defer nb_* operations into per-(GMR, target) queues and coalesce each
  /// queue into a single epoch at the next completion point (nb.hpp). Off,
  /// every nb_* op executes eagerly like its blocking counterpart.
  bool nb_aggregation = true;
  /// Entries kept in the LRU derived-datatype cache used by the direct
  /// strided/IOV paths (dtype_cache.hpp); 0 disables the cache.
  std::size_t dt_cache_capacity = 64;
  /// Cooperative progress engine (nb.hpp progress_tick): deferred nb
  /// queues drain from virtual-time ticks (Config::progress_interval_ns of
  /// compute, charged via SimClock::advance_compute) and explicit
  /// armci::progress() pokes, instead of only inside wait()/flush points.
  /// Requires nb_aggregation and a deferring backend to have any effect.
  /// Overridable at run time by the MPISIM_PROGRESS environment variable
  /// (on|off; unknown values warn on stderr and fall back to off).
  bool progress = false;
};

/// Generalized I/O vector descriptor (armci_giov_t): ptr_array_len segment
/// pairs of `bytes` bytes each.
struct Giov {
  std::vector<const void*> src;  ///< source address of each segment
  std::vector<void*> dst;        ///< destination address of each segment
  std::size_t bytes = 0;         ///< length of every segment
};

/// Strided operation descriptor in GA/ARMCI notation (paper Table I).
/// stride_levels == dimensionality - 1; count[0] is in bytes; the stride
/// arrays give byte displacements of each dimension from the base address.
struct StridedSpec {
  int stride_levels = 0;
  std::vector<std::size_t> count;        ///< length stride_levels + 1
  std::vector<std::size_t> src_strides;  ///< length stride_levels
  std::vector<std::size_t> dst_strides;  ///< length stride_levels
};

/// Names one deferred operation inside the nonblocking aggregation engine
/// (nb.hpp): the queue is keyed by (GMR id, absolute target proc) and `seq`
/// is the op's enqueue ticket within that queue. Internal to the runtime;
/// user code only sees it through Request.
struct NbTicket {
  std::uint64_t gmr_id = 0;
  int proc = -1;
  std::uint64_t seq = 0;
};

/// Handle for nonblocking operations. A handle returned by a deferred nb_*
/// op is *live*: it carries the queue-generation tickets of the ops it
/// covers, wait(req) drains exactly the queues those tickets name, and
/// test() reports whether every covered op has been flushed. Ops the engine
/// cannot defer (native backend, staged local buffers, non-identity
/// accumulate scales, ...) execute eagerly and return an empty -- hence
/// born-complete -- handle.
class Request {
 public:
  Request() = default;

  /// True once every operation this handle covers is locally complete.
  bool test() const noexcept;

  /// Absorb \p other's pending ops into this handle, making it a covering
  /// handle: wait(*this) then completes both. Used by callers that issue a
  /// batch of nb ops (one per target) and want one completion point without
  /// the indiscriminate flush of wait_all().
  void merge(const Request& other) {
    tickets_.insert(tickets_.end(), other.tickets_.begin(),
                    other.tickets_.end());
  }

 private:
  friend class RequestAccess;
  std::vector<NbTicket> tickets_;  ///< empty: nothing pending (eager path)
};

/// Completion level of a nonblocking operation, for armci::test() and
/// armci::on_complete(). `source` is local completion: the operation has
/// been handed to the transport and its local buffers are reusable (puts:
/// source captured; gets: NOT yet filled). `operation` is full completion:
/// target-side effects applied and get destinations filled -- the level
/// wait() provides.
enum class Completion {
  source,     ///< local (source) completion: buffers reusable
  operation,  ///< full completion at the target
};

/// Read-modify-write operations (ARMCI_Rmw). The *_long variants operate on
/// std::int64_t, the others on std::int32_t.
enum class RmwOp {
  fetch_and_add,
  fetch_and_add_long,
  swap,
  swap_long,
};

}  // namespace armci

#endif  // ARMCI_TYPES_HPP
