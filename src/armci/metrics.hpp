#ifndef ARMCI_METRICS_HPP
#define ARMCI_METRICS_HPP

/// \file metrics.hpp
/// Per-operation latency metrics (paper §VIII evaluation support).
///
/// The coarse Stats counters say *how many* operations ran; this registry
/// says *how long* each class took in virtual time, as log-bucketed
/// latency histograms with p50/p95/max queries. Latencies are measured at
/// the public API layer (SimClock delta across the backend call), so they
/// include epoch acquisition, serialization behind other origins, datatype
/// packing, and staging copies -- exactly the costs the paper attributes
/// to the epoch-per-op MPI mapping. Disabled (the default), every probe is
/// one branch and nothing else.

#include <array>
#include <cstdint>
#include <string>

namespace armci {

/// Operation classes with independent latency distributions.
enum class OpClass : int {
  put,      ///< contiguous put
  get,      ///< contiguous get
  acc,      ///< contiguous accumulate
  strided,  ///< ARMCI_PutS/GetS/AccS
  iov,      ///< ARMCI_PutV/GetV/AccV
  rmw,      ///< ARMCI_Rmw
  mutex,    ///< ARMCI_Lock (acquisition, including queueing delay)
};
inline constexpr int kOpClassCount = static_cast<int>(OpClass::mutex) + 1;

const char* op_class_name(OpClass c) noexcept;

/// Log2-bucketed histogram of virtual-time latencies. Bucket i holds
/// samples in [2^i, 2^(i+1)) ns (bucket 0 also takes sub-nanosecond
/// samples); max and sum are tracked exactly.
class LatencyHistogram {
 public:
  static constexpr int kBuckets = 64;

  void record(double ns) noexcept;

  std::uint64_t count() const noexcept { return count_; }
  double max_ns() const noexcept { return max_ns_; }
  double sum_ns() const noexcept { return sum_ns_; }
  double mean_ns() const noexcept {
    return count_ == 0 ? 0.0 : sum_ns_ / static_cast<double>(count_);
  }

  /// Latency below which at least \p p (in [0, 1]) of the samples fall:
  /// the upper edge of the first bucket whose cumulative count reaches
  /// p * count(), clamped to max_ns(). Zero when empty.
  double percentile(double p) const noexcept;

  std::uint64_t bucket(int i) const noexcept {
    return buckets_[static_cast<std::size_t>(i)];
  }

  void reset() noexcept;

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  double max_ns_ = 0.0;
  double sum_ns_ = 0.0;
};

/// Cumulative metrics of one operation class.
struct OpMetrics {
  LatencyHistogram latency;
};

/// Per-process metrics registry, toggled by Options::metrics.
class MetricsRegistry {
 public:
  bool enabled() const noexcept { return enabled_; }
  void enable() noexcept { enabled_ = true; }

  void record(OpClass c, double dur_ns) noexcept {
    per_op_[static_cast<std::size_t>(c)].latency.record(dur_ns);
  }

  const OpMetrics& op(OpClass c) const noexcept {
    return per_op_[static_cast<std::size_t>(c)];
  }

  void reset() noexcept {
    for (OpMetrics& m : per_op_) m.latency.reset();
  }

 private:
  bool enabled_ = false;
  std::array<OpMetrics, kOpClassCount> per_op_{};
};

struct ProcState;

/// RAII probe around one API-level operation: snapshots the virtual clock,
/// and on destruction records the elapsed virtual time into the registry
/// and emits begin/end trace events (when the respective sinks are on).
class OpTimer {
 public:
  OpTimer(ProcState& st, OpClass cls, const char* name, std::uint64_t arg = 0);
  ~OpTimer();

  OpTimer(const OpTimer&) = delete;
  OpTimer& operator=(const OpTimer&) = delete;

 private:
  ProcState* st_;
  OpClass cls_;
  const char* name_;
  std::uint64_t arg_;
  double start_ns_;
  bool metrics_;
  bool trace_;
};

/// JSON document with this process's counters, per-op latency summaries,
/// and per-window lock/epoch counters (schema documented in README.md
/// "Observability"). Valid between init() and finalize().
std::string metrics_json();

}  // namespace armci

#endif  // ARMCI_METRICS_HPP
