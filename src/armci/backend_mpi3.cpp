#include "src/armci/backend_mpi3.hpp"

#include <algorithm>
#include <cstring>
#include <map>
#include <vector>

#include "src/armci/accops.hpp"
#include "src/armci/retry.hpp"
#include "src/armci/state.hpp"
#include "src/armci/strided.hpp"
#include "src/mpisim/error.hpp"
#include "src/mpisim/runtime.hpp"
#include "src/mpisim/trace.hpp"

namespace armci {

using mpisim::Datatype;
using mpisim::Errc;
using mpisim::TraceCat;
using mpisim::TraceScope;

void Mpi3Backend::gmr_created(Gmr& gmr) {
  const int me = gmr.group.rank();
  // Node-aware allocation (MPI_Win_allocate_shared): the window owns one
  // block per node and co-located ranks' slices are carved out of the same
  // mapping, enabling the direct load/store fast path between them. The
  // window's bases replace the ones malloc exchanged (no local slice was
  // allocated; see uses_shared_windows()).
  gmr.win = mpisim::Win::allocate_shared(
      gmr.sizes[static_cast<std::size_t>(me)], gmr.group.comm());
  for (int r = 0; r < gmr.group.size(); ++r)
    gmr.bases[static_cast<std::size_t>(r)] = gmr.win.base(r);
  // Epochless mode: one shared lock_all epoch for the window's lifetime.
  gmr.win.lock_all();
  gmr.group.barrier();
  // No per-GMR RMW mutex: MPI-3 provides atomic fetch_and_op directly.
}

void Mpi3Backend::gmr_freeing(Gmr& gmr) {
  gmr.win.flush_all();
  gmr.group.barrier();
  gmr.win.unlock_all();
  gmr.win.free();
}

void Mpi3Backend::issue(OneSided kind, const Gmr& gmr, int grank,
                        std::size_t disp, void* local, std::size_t count,
                        const Datatype& ltype, const Datatype& rtype,
                        AccType at, const void* scale) const {
  // The standing lock_all epoch survives a transient fault, so a retry
  // simply reissues the operation (the injector fires before anything is
  // applied; see retry.hpp).
  with_retry(*st_, "mpi3.issue", [&] {
    switch (kind) {
      case OneSided::put:
        // Put as accumulate(REPLACE): element-atomic, so concurrent updates
        // under the shared lock_all epoch are defined (§VIII-B item 1).
        gmr.win.accumulate(local, count, ltype, grank, disp, count, rtype,
                           mpisim::Op::replace);
        return;
      case OneSided::get:
        gmr.win.get(local, count, ltype, grank, disp, count, rtype);
        gmr.win.flush(grank);  // blocking-get semantics
        return;
      case OneSided::acc: {
        if (!scale_is_identity(at, scale)) {
          const std::size_t bytes = count * ltype.size();
          std::vector<std::uint8_t> temp(bytes);
          ltype.pack(local, count, temp.data());
          scale_buffer(at, scale, temp.data(), temp.data(), bytes);
          mpisim::clock().advance(2.0 * mpisim::model().pack_ns(bytes));
          const std::size_t esz = acc_type_size(at);
          const Datatype ct = Datatype::contiguous(
              bytes / esz, Datatype::basic(basic_type_of_acc(at)));
          gmr.win.accumulate(temp.data(), 1, ct, grank, disp, count, rtype,
                             mpisim::Op::sum);
          return;
        }
        gmr.win.accumulate(local, count, ltype, grank, disp, count, rtype,
                           mpisim::Op::sum);
        return;
      }
    }
  });
}

void Mpi3Backend::flush_queue(const Gmr& gmr, int target_rank,
                              std::span<const NbOp> ops) {
  if (ops.empty()) return;
  // No per-batch lock under the standing lock_all epoch; the win over the
  // blocking path is deferring the get-side flush so the whole queue
  // pipelines into a single flush (§VIII-B item 3). Put/acc need none:
  // their blocking counterparts defer remote completion to fence too.
  bool have_get = false;
  for (const NbOp& op : ops) have_get = have_get || op.kind == OneSided::get;
  issue_ops(gmr, target_rank, ops, have_get);
}

void Mpi3Backend::issue_queue(const Gmr& gmr, int target_rank,
                              std::span<const NbOp> ops) {
  if (ops.empty()) return;
  // Progress-engine issue half: start everything (gets included) and leave
  // the single completing flush to complete_target(), so the target-side
  // wait lands under application compute instead of inside this call.
  issue_ops(gmr, target_rank, ops, false);
}

void Mpi3Backend::complete_target(const Gmr& gmr, int target_rank) {
  with_retry(*st_, "mpi3.nb_complete", [&] { gmr.win.flush(target_rank); });
}

void Mpi3Backend::issue_ops(const Gmr& gmr, int target_rank,
                            std::span<const NbOp> ops, bool flush_after) {
  TraceScope ts(mpisim::tracer(), TraceCat::backend, "mpi3.nb_flush",
                ops.size());
  // Exactly-once issuance under retry: with_retry replays its whole body
  // after a transient fault, but by then a prefix of the batch has already
  // been applied -- and Op::sum accumulates are not idempotent, so a replay
  // from op 0 would double-apply that prefix. The resume index lives
  // *outside* the retry body: each op consults the injector before it is
  // issued and advances `next` after, so a replay picks up at the first op
  // that has not been applied yet.
  std::size_t next = 0;
  mpisim::RankContext& me = mpisim::ctx();
  with_retry(*st_, "mpi3.nb_flush", [&] {
    for (std::size_t i = next; i < ops.size(); ++i) {
      // Per-op fault point: a transient fault can strike mid-batch, which
      // is exactly the schedule the resume index exists for.
      me.fault().maybe_transient(me.clock(), "mpi3.nb_flush.op");
      const NbOp& op = ops[i];
      Datatype lt = op.ltype;
      Datatype rt = op.rtype;
      if (!op.typed) {
        if (op.kind == OneSided::acc) {
          const std::size_t esz = acc_type_size(op.at);
          if (op.bytes % esz != 0)
            mpisim::raise(Errc::invalid_argument,
                          "accumulate length not a multiple of the element "
                          "size");
          lt = rt = Datatype::contiguous(
              op.bytes / esz, Datatype::basic(basic_type_of_acc(op.at)));
        } else {
          lt = rt = Datatype::contiguous(op.bytes, mpisim::byte_type());
        }
      }
      switch (op.kind) {
        case OneSided::put:
          gmr.win.accumulate(op.local, 1, lt, target_rank, op.offset, 1, rt,
                             mpisim::Op::replace);
          break;
        case OneSided::get:
          gmr.win.get(op.local, 1, lt, target_rank, op.offset, 1, rt);
          break;
        case OneSided::acc:
          gmr.win.accumulate(op.local, 1, lt, target_rank, op.offset, 1, rt,
                             mpisim::Op::sum);
          break;
      }
      next = i + 1;
    }
    if (flush_after) gmr.win.flush(target_rank);
  });
}

void Mpi3Backend::shm_contig(OneSided kind, const GmrLoc& loc, void* local,
                             std::size_t bytes, AccType at,
                             const void* scale) const {
  TraceScope ts(mpisim::tracer(), TraceCat::backend, "mpi3.shm", bytes);
  const Gmr& gmr = *loc.gmr;
  // The direct path stays transient-faultable: a retry reissues the whole
  // access, which is safe because the injector fires before anything is
  // copied (retry.hpp) -- so chaos runs exercise the fast path too.
  with_retry(*st_, "mpi3.shm", [&] {
    switch (kind) {
      case OneSided::put:
        gmr.win.shm_put(local, bytes, loc.target_rank, loc.offset);
        return;
      case OneSided::get:
        gmr.win.shm_get(local, bytes, loc.target_rank, loc.offset);
        return;
      case OneSided::acc: {
        const mpisim::BasicType elem = basic_type_of_acc(at);
        if (!scale_is_identity(at, scale)) {
          std::vector<std::uint8_t> temp(bytes);
          scale_buffer(at, scale, temp.data(), local, bytes);
          mpisim::clock().advance(mpisim::model().pack_ns(bytes));
          gmr.win.shm_acc(mpisim::Op::sum, elem, temp.data(), bytes,
                          loc.target_rank, loc.offset);
          return;
        }
        gmr.win.shm_acc(mpisim::Op::sum, elem, local, bytes, loc.target_rank,
                        loc.offset);
        return;
      }
    }
  });
}

void Mpi3Backend::contig(OneSided kind, const GmrLoc& loc, void* local,
                         std::size_t bytes, AccType at, const void* scale) {
  if (kind == OneSided::acc && bytes % acc_type_size(at) != 0)
    mpisim::raise(Errc::invalid_argument,
                  "accumulate length not a multiple of the element size");
  // Locality routing: self and same-node targets bypass the lock/flush
  // machinery entirely and go through direct shared-memory access.
  if (direct_path(loc)) {
    shm_contig(kind, loc, local, bytes, at, scale);
    return;
  }
  TraceScope ts(mpisim::tracer(), TraceCat::backend, "mpi3.contig", bytes);
  const Gmr& gmr = *loc.gmr;
  if (kind == OneSided::acc) {
    const std::size_t esz = acc_type_size(at);
    const Datatype d = Datatype::basic(basic_type_of_acc(at));
    const Datatype ct = Datatype::contiguous(bytes / esz, d);
    issue(kind, gmr, loc.target_rank, loc.offset, local, 1, ct, ct, at,
          scale);
  } else {
    const Datatype bt = Datatype::contiguous(bytes, mpisim::byte_type());
    issue(kind, gmr, loc.target_rank, loc.offset, local, 1, bt, bt, at,
          scale);
  }
}

void Mpi3Backend::iov(OneSided kind, std::span<const Giov> vec, int proc,
                      AccType at, const void* scale) {
  // Direct datatype method per GMR group, under the standing epoch. No
  // overlap scan is needed: conflicting accumulate-class operations are
  // defined (same-op) or merely undefined (MPI-3), never fatal.
  TraceScope ts(mpisim::tracer(), TraceCat::backend, "mpi3.iov", vec.size());
  const bool is_get = kind == OneSided::get;
  for (const Giov& g : vec) {
    if (g.src.size() != g.dst.size())
      mpisim::raise(Errc::invalid_argument, "IOV src/dst length mismatch");
    if (g.src.empty() || g.bytes == 0) continue;

    const mpisim::BasicType elem = kind == OneSided::acc
                                       ? basic_type_of_acc(at)
                                       : mpisim::BasicType::byte_;
    const std::size_t esz = mpisim::basic_type_size(elem);
    if (g.bytes % esz != 0)
      mpisim::raise(Errc::invalid_argument,
                    "IOV segment length not a multiple of the element size");

    // Group segments by owning GMR.
    std::vector<GmrLoc> locs(g.src.size());
    std::map<const Gmr*, std::vector<std::size_t>> groups;
    for (std::size_t i = 0; i < g.src.size(); ++i) {
      const void* remote = is_get ? g.src[i] : g.dst[i];
      locs[i] = st_->table.require(proc, remote, g.bytes);
      groups[locs[i].gmr.get()].push_back(i);
    }

    for (const auto& [gmr_ptr, idxs] : groups) {
      if (direct_path(locs[idxs.front()])) {
        // Same-node IOV: each descriptor segment is a direct copy; the
        // per-segment GmrLoc already carries its displacement.
        for (std::size_t i : idxs) {
          const void* lseg = is_get ? g.dst[i] : g.src[i];
          shm_contig(kind, locs[i], const_cast<void*>(lseg), g.bytes, at,
                     scale);
        }
        continue;
      }
      const Gmr& gmr = *locs[idxs.front()].gmr;
      const int grank = locs[idxs.front()].target_rank;
      const std::vector<std::size_t> blocklens(idxs.size(), g.bytes / esz);
      std::vector<std::ptrdiff_t> rdispls(idxs.size());
      const std::uint8_t* lbase = nullptr;
      for (std::size_t k = 0; k < idxs.size(); ++k) {
        rdispls[k] = static_cast<std::ptrdiff_t>(locs[idxs[k]].offset);
        const void* local = is_get ? g.dst[idxs[k]] : g.src[idxs[k]];
        const auto* p = static_cast<const std::uint8_t*>(local);
        if (lbase == nullptr || p < lbase) lbase = p;
      }
      // Rebase so both types are shape-only and hence cacheable; the
      // minimum remote displacement moves into the issue() disp.
      const std::ptrdiff_t rmin =
          *std::min_element(rdispls.begin(), rdispls.end());
      for (std::ptrdiff_t& d : rdispls) d -= rmin;
      std::vector<std::ptrdiff_t> ldispls(idxs.size());
      for (std::size_t k = 0; k < idxs.size(); ++k) {
        const void* local = is_get ? g.dst[idxs[k]] : g.src[idxs[k]];
        ldispls[k] = static_cast<const std::uint8_t*>(local) - lbase;
      }
      const Datatype rtype =
          st_->dt_cache.hindexed_type(blocklens, rdispls, elem, st_->stats);
      const Datatype ltype =
          st_->dt_cache.hindexed_type(blocklens, ldispls, elem, st_->stats);
      issue(kind, gmr, grank, static_cast<std::size_t>(rmin),
            const_cast<std::uint8_t*>(lbase), 1, ltype, rtype, at, scale);
    }
  }
}

void Mpi3Backend::strided(OneSided kind, const void* src, void* dst,
                          const StridedSpec& spec, int proc, AccType at,
                          const void* scale) {
  TraceScope ts(mpisim::tracer(), TraceCat::backend, "mpi3.strided",
                static_cast<std::uint64_t>(spec.stride_levels));
  validate_spec(spec);
  const bool is_get = kind == OneSided::get;
  const mpisim::BasicType elem = kind == OneSided::acc
                                     ? basic_type_of_acc(at)
                                     : mpisim::BasicType::byte_;
  const void* remote = is_get ? src : dst;
  void* local = is_get ? dst : const_cast<void*>(src);
  const auto& rstrides = is_get ? spec.src_strides : spec.dst_strides;
  const auto& lstrides = is_get ? spec.dst_strides : spec.src_strides;

  const Datatype rtype =
      st_->dt_cache.strided_type(rstrides, spec, elem, st_->stats);
  const Datatype ltype =
      st_->dt_cache.strided_type(lstrides, spec, elem, st_->stats);
  GmrLoc loc = st_->table.require(proc, remote,
                                  static_cast<std::size_t>(rtype.extent()));
  if (direct_path(loc)) {
    // Same-node strided access: walk Algorithm 1's segments as direct
    // shared-memory copies instead of opening a datatype epoch.
    StridedIter it(spec);
    std::size_t s_off = 0, d_off = 0;
    auto* lbase = static_cast<std::uint8_t*>(local);
    GmrLoc seg = loc;
    while (it.next(s_off, d_off)) {
      seg.offset = loc.offset + (is_get ? s_off : d_off);
      shm_contig(kind, seg, lbase + (is_get ? d_off : s_off), spec.count[0],
                 at, scale);
    }
    return;
  }
  issue(kind, *loc.gmr, loc.target_rank, loc.offset, local, 1, ltype, rtype,
        at, scale);
}

void Mpi3Backend::fence(int proc) {
  // Remote completion = MPI_Win_flush on every GMR the target belongs to.
  for (const auto& gmr : st_->table.all()) {
    const int grank = gmr->group.rank_of(proc);
    if (grank >= 0) gmr->win.flush(grank);
  }
}

void Mpi3Backend::fence_all() {
  for (const auto& gmr : st_->table.all()) gmr->win.flush_all();
}

void Mpi3Backend::rmw(RmwOp op, void* ploc, void* prem, std::int64_t extra,
                      int proc) {
  TraceScope ts(mpisim::tracer(), TraceCat::backend, "mpi3.rmw");
  const bool is_long =
      op == RmwOp::fetch_and_add_long || op == RmwOp::swap_long;
  const std::size_t width = is_long ? 8 : 4;
  GmrLoc loc = st_->table.require(proc, prem, width);
  const mpisim::BasicType t =
      is_long ? mpisim::BasicType::int64 : mpisim::BasicType::int32;

  // §VIII-B item 4: one atomic MPI_Fetch_and_op replaces the MPI-2
  // backend's mutex + two exclusive epochs.
  std::int64_t operand64 = extra;
  std::int32_t operand32 = static_cast<std::int32_t>(extra);
  if (op == RmwOp::swap) operand32 = *static_cast<std::int32_t*>(ploc);
  if (op == RmwOp::swap_long) operand64 = *static_cast<std::int64_t*>(ploc);
  const void* operand = is_long ? static_cast<const void*>(&operand64)
                                : static_cast<const void*>(&operand32);
  const mpisim::Op mop =
      (op == RmwOp::swap || op == RmwOp::swap_long) ? mpisim::Op::replace
                                                    : mpisim::Op::sum;
  std::int64_t old64 = 0;
  std::int32_t old32 = 0;
  void* result = is_long ? static_cast<void*>(&old64)
                         : static_cast<void*>(&old32);
  with_retry(*st_, "mpi3.rmw", [&] {
    loc.gmr->win.fetch_and_op(operand, result, t, loc.target_rank, loc.offset,
                              mop);
  });
  if (is_long)
    *static_cast<std::int64_t*>(ploc) = old64;
  else
    *static_cast<std::int32_t*>(ploc) = old32;
}

void Mpi3Backend::mutexes_create(int count) {
  user_mutexes_ = QueueingMutexSet::create(st_->world.comm(), count, 0);
}

void Mpi3Backend::mutexes_destroy() { user_mutexes_.destroy(); }

void Mpi3Backend::mutex_lock(int m, int proc) { user_mutexes_.lock(m, proc); }

void Mpi3Backend::mutex_unlock(int m, int proc) {
  user_mutexes_.unlock(m, proc);
}

void Mpi3Backend::access_begin(const GmrLoc& loc) {
  // Unified memory model: complete outstanding operations, then direct
  // load/store is permitted; no exclusive epoch is needed (or possible,
  // since the lifetime lock_all epoch is in force).
  loc.gmr->win.flush_all();
}

void Mpi3Backend::access_end(const GmrLoc& loc) { loc.gmr->win.flush_all(); }

}  // namespace armci
