#ifndef ARMCI_BACKEND_MPI3_HPP
#define ARMCI_BACKEND_MPI3_HPP

/// \file backend_mpi3.hpp
/// ARMCI over MPI-3 RMA — the paper's §VIII-B projection, implemented.
///
/// The paper identifies four MPI-2 limitations and reports that the MPI-3
/// RMA proposal addresses all of them; this backend uses exactly those
/// features and is the shape the production ARMCI-MPI later took:
///
///  1. *Conflicting operations relaxed from erroneous to undefined* — all
///     communication runs inside one shared lock_all epoch per window;
///     puts are issued as accumulate(REPLACE) so concurrent updates are
///     element-atomic instead of erroneous.
///  2. *Epochless passive mode* — lock_all is taken once at allocation and
///     held for the window's lifetime; per-operation lock/unlock epochs
///     (and their serialization at the target) disappear. ARMCI's local
///     completion is the operation itself; remote completion (Fence) is
///     MPI_Win_flush.
///  3. *Operations pipeline between flushes* — only the first operation
///     after a flush pays wire latency.
///  4. *Atomic read-modify-write* — ARMCI_Rmw maps to MPI_Fetch_and_op
///     (SUM for fetch-and-add, REPLACE for swap): one operation instead of
///     the MPI-2 backend's mutex plus two exclusive epochs.
///
/// Direct local access needs no epoch gymnastics under the unified memory
/// model (flush + direct load/store), and global local buffers need no
/// staging copy: there is no second lock to acquire, hence no
/// double-locking or deadlock hazard (§V-E1 disappears).

#include "src/armci/backend.hpp"
#include "src/armci/mutex.hpp"

namespace armci {

class Mpi3Backend final : public CommBackend {
 public:
  explicit Mpi3Backend(ProcState* st) : st_(st) {}

  void gmr_created(Gmr& gmr) override;
  void gmr_freeing(Gmr& gmr) override;

  void contig(OneSided kind, const GmrLoc& loc, void* local,
              std::size_t bytes, AccType at, const void* scale) override;
  void iov(OneSided kind, std::span<const Giov> vec, int proc, AccType at,
           const void* scale) override;
  void strided(OneSided kind, const void* src, void* dst,
               const StridedSpec& spec, int proc, AccType at,
               const void* scale) override;

  void fence(int proc) override;
  void fence_all() override;

  void rmw(RmwOp op, void* ploc, void* prem, std::int64_t extra,
           int proc) override;

  void mutexes_create(int count) override;
  void mutexes_destroy() override;
  void mutex_lock(int m, int proc) override;
  void mutex_unlock(int m, int proc) override;

  void access_begin(const GmrLoc& loc) override;
  void access_end(const GmrLoc& loc) override;

  /// GMRs live in shared-memory windows (Win::allocate_shared): one block
  /// per node, so co-located ranks can load/store each other's slices.
  bool uses_shared_windows() const override { return true; }

  /// self and same-node contiguous ops take the direct load/store path
  /// (shm_contig) instead of the standing lock_all epoch.
  bool direct_path(const GmrLoc& loc) const override {
    return loc.locality != GmrLoc::Locality::remote &&
           loc.gmr->win.shared_memory();
  }

  /// Ops already pipeline under the standing lock_all epoch; deferral still
  /// pays off by batching the get-side flush: one flush per queue instead
  /// of one per blocking get (§VIII-B item 3).
  bool nb_defers() const override { return true; }
  void flush_queue(const Gmr& gmr, int target_rank,
                   std::span<const NbOp> ops) override;

  /// Under the standing lock_all epoch a batch splits cleanly: issuing the
  /// operations is source completion, the single trailing flush is target
  /// completion -- exactly the halves the progress engine overlaps.
  bool split_completion() const override { return true; }
  void issue_queue(const Gmr& gmr, int target_rank,
                   std::span<const NbOp> ops) override;
  void complete_target(const Gmr& gmr, int target_rank) override;

 private:
  /// Shared body of flush_queue/issue_queue: issue the batch exactly once
  /// under retry, optionally ending with the completing flush.
  void issue_ops(const Gmr& gmr, int target_rank, std::span<const NbOp> ops,
                 bool flush_after);

  /// One transfer against a resolved location under the standing lock_all
  /// epoch, with datatypes describing both sides.
  void issue(OneSided kind, const Gmr& gmr, int grank, std::size_t disp,
             void* local, std::size_t count, const mpisim::Datatype& ltype,
             const mpisim::Datatype& rtype, AccType at,
             const void* scale) const;

  /// The same-node fast path: a contiguous transfer against a self or
  /// co-located target via direct shared-memory access (Win::shm_put/
  /// shm_get/shm_acc) -- no epoch, no flush, memcpy-speed cost, with a
  /// CPU-atomic apply for accumulates.
  void shm_contig(OneSided kind, const GmrLoc& loc, void* local,
                  std::size_t bytes, AccType at, const void* scale) const;

  ProcState* st_;
  QueueingMutexSet user_mutexes_;
};

}  // namespace armci

#endif  // ARMCI_BACKEND_MPI3_HPP
