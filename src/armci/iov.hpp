#ifndef ARMCI_IOV_HPP
#define ARMCI_IOV_HPP

/// \file iov.hpp
/// I/O-vector analysis used by the auto transfer method (paper §VI-B).
///
/// The batched and direct IOV methods are erroneous when segments overlap
/// (or span different GMRs); the auto method scans the descriptor first and
/// falls back to the conservative method when either condition holds.

#include <cstddef>
#include <span>

namespace armci {

/// O(N log N) overlap detection over \p n segments of \p bytes bytes each,
/// using the AVL conflict tree (paper §VI-B).
bool iov_has_overlap(std::span<const void* const> ptrs, std::size_t bytes);

/// Naive O(N^2) pairwise scan; ablation baseline for bench_conflict_tree.
bool iov_has_overlap_naive(std::span<const void* const> ptrs,
                           std::size_t bytes);

}  // namespace armci

#endif  // ARMCI_IOV_HPP
