#include "src/armci/gmr.hpp"

#include "src/mpisim/error.hpp"
#include "src/mpisim/runtime.hpp"

namespace armci {

using mpisim::Errc;

GmrTable::GmrTable(int world_size)
    : by_proc_(static_cast<std::size_t>(world_size)) {}

void GmrTable::insert(std::shared_ptr<Gmr> gmr) {
  for (int r = 0; r < gmr->group.size(); ++r) {
    if (gmr->sizes[static_cast<std::size_t>(r)] == 0) continue;
    const int proc = gmr->group.absolute_id(r);
    const auto base = reinterpret_cast<std::uintptr_t>(
        gmr->bases[static_cast<std::size_t>(r)]);
    by_proc_[static_cast<std::size_t>(proc)][base] = gmr;
  }
}

void GmrTable::remove(const Gmr& gmr) {
  for (int r = 0; r < gmr.group.size(); ++r) {
    if (gmr.sizes[static_cast<std::size_t>(r)] == 0) continue;
    const int proc = gmr.group.absolute_id(r);
    const auto base = reinterpret_cast<std::uintptr_t>(
        gmr.bases[static_cast<std::size_t>(r)]);
    by_proc_[static_cast<std::size_t>(proc)].erase(base);
  }
}

GmrLoc GmrTable::find(int proc, const void* addr, std::size_t bytes) const {
  if (proc < 0 || proc >= static_cast<int>(by_proc_.size()))
    mpisim::raise(Errc::rank_out_of_range,
                  "process id " + std::to_string(proc));
  const auto& m = by_proc_[static_cast<std::size_t>(proc)];
  const auto a = reinterpret_cast<std::uintptr_t>(addr);
  auto it = m.upper_bound(a);
  if (it == m.begin()) return {};
  --it;
  const std::shared_ptr<Gmr>& gmr = it->second;
  const int grank = gmr->group.rank_of(proc);
  const std::size_t size = gmr->sizes[static_cast<std::size_t>(grank)];
  if (a < it->first || a + bytes > it->first + size) return {};
  GmrLoc loc;
  loc.gmr = gmr;
  loc.target_rank = grank;
  loc.offset = a - it->first;
  // Locality classification: ARMCI procs are world ranks, so the node map
  // applies directly. self is distinguished from same_node because it is
  // always direct-accessible, even without a shared-memory window.
  const int me = mpisim::rank();
  if (proc == me)
    loc.locality = GmrLoc::Locality::self;
  else if (mpisim::model().same_node(me, proc))
    loc.locality = GmrLoc::Locality::same_node;
  else
    loc.locality = GmrLoc::Locality::remote;
  return loc;
}

GmrLoc GmrTable::require(int proc, const void* addr, std::size_t bytes) const {
  GmrLoc loc = find(proc, addr, bytes);
  if (!loc.gmr)
    mpisim::raise(Errc::invalid_argument,
                  "address is not within a global allocation on process " +
                      std::to_string(proc));
  return loc;
}

bool GmrTable::overlaps_global(int proc, const void* addr,
                               std::size_t bytes) const {
  if (bytes == 0) return false;
  const auto& m = by_proc_[static_cast<std::size_t>(proc)];
  const auto a = reinterpret_cast<std::uintptr_t>(addr);
  auto it = m.upper_bound(a + bytes - 1);
  if (it == m.begin()) return false;
  --it;
  const std::shared_ptr<Gmr>& gmr = it->second;
  const int grank = gmr->group.rank_of(proc);
  const std::size_t size = gmr->sizes[static_cast<std::size_t>(grank)];
  return it->first + size > a;
}

std::vector<std::shared_ptr<Gmr>> GmrTable::all() const {
  std::vector<std::shared_ptr<Gmr>> out;
  for (const auto& m : by_proc_) {
    for (const auto& [base, gmr] : m) {
      bool seen = false;
      for (const auto& g : out) seen = seen || g.get() == gmr.get();
      if (!seen) out.push_back(gmr);
    }
  }
  return out;
}

bool GmrTable::empty() const noexcept {
  for (const auto& m : by_proc_)
    if (!m.empty()) return false;
  return true;
}

}  // namespace armci
