#ifndef ARMCI_MUTEX_HPP
#define ARMCI_MUTEX_HPP

/// \file mutex.hpp
/// MPI-RMA queueing mutexes (paper §V-D; algorithm of Latham, Ross & Thakur).
///
/// Each mutex hosted on process h is a byte vector B of length nproc in an
/// RMA window on h; B[i] == 1 means process i has requested the lock.
///
/// lock:   one exclusive epoch sets B[me] = 1 and fetches all other entries
///         (nonoverlapping, so legal within one epoch). If any other entry
///         is set, the caller is enqueued and blocks in a wildcard-source
///         receive -- waiting locally, generating no network traffic.
/// unlock: one exclusive epoch clears B[me] and fetches the others; the
///         vector is scanned circularly from me+1 (fairness) and, if a
///         waiter is found, a zero-byte message forwards the lock.
///
/// This is the most scalable one-sided mutual exclusion algorithm known for
/// MPI-2 RMA, and it also backs the per-GMR RMW mutex.
///
/// Survivable mode (mpisim::FaultPlan::survivable) extends each byte vector
/// with a *holder byte* H at index nproc (H == holder + 1, 0 == free),
/// published by the acquirer on a direct claim and by the releaser before
/// the token send on a handoff. When a peer dies, every waiter blocked in
/// the token receive is woken with Errc::crashed (once per death epoch); it
/// refetches the row, and if H names a dead rank the first live requester
/// circularly after the dead holder claims the lock -- so a mutex held by a
/// crashed process is reclaimed within the failure-detection bound instead
/// of hanging to the deadlock deadline. A releaser that finds no live
/// requester frees the lock with a *conditional* clear (compare-and-swap on
/// H against the value it last published): a new requester whose claim
/// epoch raced in after the releaser's flag-clearing epoch keeps its own
/// holder byte intact. Residual windows that stay unrecoverable (and are
/// documented in DESIGN.md): a crash between the request epoch and the
/// holder-byte publication, and a handoff token in flight from a releaser
/// that then dies while a *new* requester arrives mid-recovery.

#include <cstdint>
#include <memory>
#include <vector>

#include "src/mpisim/comm.hpp"
#include "src/mpisim/win.hpp"

namespace armci {

/// A set of queueing mutexes: every member of the communicator hosts
/// \p count mutexes (matching ARMCI_Create_mutexes, where each process
/// contributes `count` and lock(m, p) names mutex m hosted on p).
class QueueingMutexSet {
 public:
  QueueingMutexSet() = default;

  /// Collective over \p comm: allocate the byte-vector windows. \p tag_base
  /// reserves a tag range (one tag per hosted mutex) for the notification
  /// messages; callers must keep it disjoint from application tags.
  static QueueingMutexSet create(const mpisim::Comm& comm, int count,
                                 int tag_base);

  /// Collective destroy. No mutex may be held.
  void destroy();

  bool valid() const noexcept { return win_.valid(); }

  /// Number of mutexes hosted per member.
  int count() const noexcept { return count_; }

  /// Acquire mutex \p m hosted on group rank \p host (blocking, fair).
  void lock(int m, int host);

  /// Release mutex \p m hosted on group rank \p host.
  void unlock(int m, int host);

 private:
  /// Publish the holder byte of mutex \p m on \p host (survivable mode).
  void put_holder(int m, int host, std::uint8_t value);

  /// Atomically clear the holder byte iff it still equals \p expected
  /// (survivable mode): keeps a racing claimant's publication intact.
  void clear_holder_if(int m, int host, std::uint8_t expected);

  mpisim::Comm comm_;
  mpisim::Win win_;
  int count_ = 0;
  int tag_base_ = 0;
  /// Backing storage for this member's hosted byte vectors
  /// (count * (nproc + 1) bytes: nproc request flags plus the holder byte),
  /// shared so copies of the handle stay valid.
  std::shared_ptr<std::vector<std::uint8_t>> bytes_;
};

}  // namespace armci

#endif  // ARMCI_MUTEX_HPP
