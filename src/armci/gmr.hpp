#ifndef ARMCI_GMR_HPP
#define ARMCI_GMR_HPP

/// \file gmr.hpp
/// Global Memory Regions (paper §V, §V-A, §V-B).
///
/// GMR is the layer that aligns ARMCI's PGAS address space with MPI RMA:
/// ARMCI communicates on global addresses <absolute proc id, address>, MPI
/// on <window, rank-in-window, displacement>. Every collective allocation
/// creates one GMR handle holding the MPI window, the allocation group, and
/// the per-member base addresses; a per-process translation table maps any
/// (proc, address) back to the owning GMR, its window rank, and the
/// displacement. The table is replicated on every process (as in real
/// ARMCI), since translation must work without communication.

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "src/armci/groups.hpp"
#include "src/armci/mutex.hpp"
#include "src/armci/types.hpp"
#include "src/mpisim/win.hpp"

namespace armci {

/// Deleter for raw max-aligned storage from ::operator new.
struct OpDelete {
  void operator()(void* p) const noexcept { ::operator delete(p); }
};

/// One global allocation. Instances are replicated per process; the mpisim
/// handles inside (Win, Comm) refer to shared state.
struct Gmr {
  std::uint64_t id = 0;
  PGroup group;  ///< allocation group (absolute-id member list)

  /// Owning handle for *this* process's slice. bases[group.rank()] aliases
  /// it. Ownership lives here (not in the translation table) so the slice
  /// is released even when a fault aborts the run before the collective
  /// free -- ~ProcState tears down the table, which drops the last Gmr
  /// reference, which frees the memory.
  std::unique_ptr<void, OpDelete> local_slice;

  /// Base address and size of each member's slice, indexed by group rank;
  /// zero-size slices have null bases (paper §V-B).
  std::vector<void*> bases;
  std::vector<std::size_t> sizes;

  /// Backend::mpi only: the RMA window exposing the allocation.
  mpisim::Win win;

  /// Backend::mpi only: this GMR's RMW mutex (paper §V-D: "we associate a
  /// mutex with each GMR"). One mutex is hosted per member so RMW ops on
  /// different targets do not contend.
  std::shared_ptr<QueueingMutexSet> rmw_mutex;

  /// Access-mode hint for epoch lock selection (paper §VIII-A).
  AccessMode mode = AccessMode::exclusive;
};

/// Result of a global-address translation.
struct GmrLoc {
  /// Where the target's slice lives relative to the calling process, under
  /// the NetworkModel's node map. self and same_node targets are eligible
  /// for the shared-memory fast path (direct load/store instead of a
  /// lock/flush epoch) when the backend supports it.
  enum class Locality { self, same_node, remote };

  std::shared_ptr<Gmr> gmr;
  int target_rank = -1;    ///< rank in the GMR's group (== window rank)
  std::size_t offset = 0;  ///< byte displacement within the target's slice
  Locality locality = Locality::remote;
};

/// Per-process translation table from (absolute proc, address) to GMR.
class GmrTable {
 public:
  explicit GmrTable(int world_size);

  /// Register \p gmr for every member with a nonempty slice.
  void insert(std::shared_ptr<Gmr> gmr);

  /// Remove \p gmr from all indexes.
  void remove(const Gmr& gmr);

  /// Translate (proc, addr). Returns a loc with null gmr if the address is
  /// not global on \p proc. When \p bytes > 0 the whole range
  /// [addr, addr+bytes) must lie inside one slice.
  GmrLoc find(int proc, const void* addr, std::size_t bytes = 0) const;

  /// Translate or throw Errc::invalid_argument with a diagnostic.
  GmrLoc require(int proc, const void* addr, std::size_t bytes = 0) const;

  /// True if [addr, addr+bytes) intersects any global slice on \p proc
  /// (used for the local-buffer-in-global-space check, paper §V-E1).
  bool overlaps_global(int proc, const void* addr, std::size_t bytes) const;

  /// All distinct GMRs currently registered (finalize-time cleanup).
  std::vector<std::shared_ptr<Gmr>> all() const;

  bool empty() const noexcept;

 private:
  // Per absolute proc: slice base address -> owning GMR.
  std::vector<std::map<std::uintptr_t, std::shared_ptr<Gmr>>> by_proc_;
};

}  // namespace armci

#endif  // ARMCI_GMR_HPP
