#ifndef ARMCI_ARMCI_HPP
#define ARMCI_ARMCI_HPP

/// \file armci.hpp
/// Public API of the ARMCI runtime (paper §IV-§VI).
///
/// ARMCI is the low-level PGAS communication substrate beneath Global
/// Arrays: collective allocation of globally accessible memory, one-sided
/// contiguous / strided / I/O-vector put, get, and accumulate on absolute
/// process ids, mutexes and read-modify-write atomics, and process groups.
/// Two backends implement this interface (selected in Options::backend):
///
///  - Backend::mpi -- the paper's contribution: every operation is mapped
///    onto MPI-2 passive-target RMA through the GMR translation layer, with
///    each op in its own exclusive-lock epoch (so ARMCI's location
///    consistency holds and Fence is a no-op), noncontiguous transfers via
///    the conservative/batched/direct/auto IOV methods and direct subarray
///    datatypes, mutexes via the Latham et al. queueing algorithm, and RMW
///    via a per-GMR mutex.
///
///  - Backend::native -- the baseline: the aggressively tuned vendor ARMCI,
///    modeled as direct remote-memory access with pre-pinned buffers and a
///    communication-helper-thread cost profile. Put/accumulate complete
///    locally on return; remote completion requires fence().
///
/// All functions must be called from inside mpisim::run() after init().
/// Process ids are *absolute* (world) ranks, as in real ARMCI; group-rank
/// translation goes through PGroup::absolute_id (ARMCI_Absolute_id).

#include <cstddef>
#include <exception>
#include <functional>
#include <span>
#include <vector>

#include "src/armci/groups.hpp"
#include "src/armci/metrics.hpp"
#include "src/armci/stats.hpp"
#include "src/armci/types.hpp"

namespace armci {

// ---------------------------------------------------------------------------
// Lifecycle
// ---------------------------------------------------------------------------

/// Collectively initialize ARMCI on the world. Must precede all other calls.
void init(const Options& opts = {});

/// Collectively shut down: frees remaining allocations and mutexes.
void finalize();

/// True between init() and finalize() on this process.
bool initialized() noexcept;

/// The active configuration.
const Options& options();

/// Operation counters of the calling process (see stats.hpp).
const Stats& stats();

/// Per-op latency histograms of the calling process (see metrics.hpp);
/// populated only when Options::metrics is set.
const MetricsRegistry& metrics();

/// Zero the calling process's operation counters and latency histograms.
void reset_stats();

// ---------------------------------------------------------------------------
// Global memory (paper §V-B)
// ---------------------------------------------------------------------------

/// Collective over the world: allocate \p bytes of globally accessible
/// memory on every process and return the base-address vector, indexed by
/// world rank (ARMCI_Malloc). A process may pass bytes == 0; its entry is
/// null.
std::vector<void*> malloc_world(std::size_t bytes);

/// Collective over \p group (ARMCI_Malloc_group). The returned vector is
/// indexed by *group* rank; entries for zero-size allocations are null.
std::vector<void*> malloc_group(std::size_t bytes, const PGroup& group);

/// Collective over the world: free a world allocation (ARMCI_Free).
/// Processes whose slice was empty pass nullptr; the GMR is located via
/// leader election + lookup (paper §V-B).
void free(void* ptr);

/// Collective over \p group: free a group allocation (ARMCI_Free_group).
void free_group(void* ptr, const PGroup& group);

/// Plain local (non-global) memory helpers (ARMCI_Malloc_local). On the
/// native backend this memory comes from the pre-pinned pool; buffers from
/// ordinary new/malloc take the slower nonpinned path (paper Fig. 5).
void* malloc_local(std::size_t bytes);
void free_local(void* ptr);

// ---------------------------------------------------------------------------
// Contiguous one-sided operations (paper §IV-A)
// ---------------------------------------------------------------------------

/// Put \p bytes from local \p src to \p dst on process \p proc. Locally
/// complete on return.
void put(const void* src, void* dst, std::size_t bytes, int proc);

/// Get \p bytes from \p src on process \p proc into local \p dst. Both
/// locally and remotely complete on return.
void get(const void* src, void* dst, std::size_t bytes, int proc);

/// Accumulate: dst[i] += scale * src[i] on process \p proc, element type
/// \p type. \p scale points to one element of that type.
void acc(AccType type, const void* scale, const void* src, void* dst,
         std::size_t bytes, int proc);

// ---------------------------------------------------------------------------
// Noncontiguous operations (paper §VI)
// ---------------------------------------------------------------------------

/// Generalized I/O vector put/get/acc (ARMCI_PutV/GetV/AccV). All
/// descriptors' dst (put/acc) or src (get) addresses must be global; the
/// transfer method is Options::iov_method.
void put_iov(std::span<const Giov> iov, int proc);
void get_iov(std::span<const Giov> iov, int proc);
void acc_iov(AccType type, const void* scale, std::span<const Giov> iov,
             int proc);

/// Strided put/get/acc in GA/ARMCI notation (ARMCI_PutS/GetS/AccS; paper
/// Table I). \p src / \p dst are the first-element addresses; the transfer
/// method is Options::strided_method.
void put_strided(const void* src, void* dst, const StridedSpec& spec,
                 int proc);
void get_strided(const void* src, void* dst, const StridedSpec& spec,
                 int proc);
void acc_strided(AccType type, const void* scale, const void* src, void* dst,
                 const StridedSpec& spec, int proc);

// ---------------------------------------------------------------------------
// Nonblocking variants (ARMCI_NbPut/NbGet/NbAcc + Wait)
// ---------------------------------------------------------------------------
//
// With Options::nb_aggregation (the default) these are *truly* deferred on
// the MPI backends: each op joins a per-(allocation, target) queue and the
// whole queue is issued inside a single synchronization epoch at the next
// completion point -- wait on a covering handle, wait_proc/wait_all, fence,
// barrier, rmw, a blocking op with an overlapping buffer, direct local
// access, or free. Until then the caller must not touch the buffers the op
// names (the usual ARMCI nonblocking contract). Location consistency is
// preserved: an op that conflicts with a queued one forces that queue to
// flush before it enqueues. Ops the engine cannot defer (native backend,
// self targets, buffers needing the §V-E1 staging copy, non-identity
// accumulate scales, non-direct transfer methods) execute eagerly and
// return an empty, born-complete handle.

Request nb_put(const void* src, void* dst, std::size_t bytes, int proc);
Request nb_get(const void* src, void* dst, std::size_t bytes, int proc);
Request nb_acc(AccType type, const void* scale, const void* src, void* dst,
               std::size_t bytes, int proc);

/// Nonblocking strided variants (ARMCI_NbPutS/NbGetS/NbAccS).
Request nb_put_strided(const void* src, void* dst, const StridedSpec& spec,
                       int proc);
Request nb_get_strided(const void* src, void* dst, const StridedSpec& spec,
                       int proc);
Request nb_acc_strided(AccType type, const void* scale, const void* src,
                       void* dst, const StridedSpec& spec, int proc);

/// Nonblocking I/O-vector variants (ARMCI_NbPutV/NbGetV/NbAccV).
Request nb_put_iov(std::span<const Giov> iov, int proc);
Request nb_get_iov(std::span<const Giov> iov, int proc);
Request nb_acc_iov(AccType type, const void* scale, std::span<const Giov> iov,
                   int proc);

/// Complete exactly the operations \p req covers (ARMCI_Wait): the queues
/// named by the handle's tickets are flushed; unrelated queues stay
/// deferred. Handles from eagerly executed ops complete immediately.
void wait(Request& req);

/// Complete all outstanding nonblocking ops to \p proc (ARMCI_WaitProc).
/// Throws Errc::rank_out_of_range unless 0 <= proc < world size.
void wait_proc(int proc);

/// Complete all outstanding nonblocking ops (ARMCI_WaitAll).
void wait_all();

// ---------------------------------------------------------------------------
// Asynchronous progress (Options::progress, nb.hpp progress engine)
// ---------------------------------------------------------------------------
//
// With the cooperative progress engine on, deferred nb_* queues also drain
// *between* completion points: each rank's "progress persona" runs from
// virtual-time ticks inside compute the application charges via
// mpisim::SimClock::advance_compute (every Config::progress_interval_ns),
// and from explicit progress() pokes. A tick issues queued batches
// (source completion) and finishes previously issued ones at their targets
// (operation completion), so communication latency overlaps compute
// instead of stalling the next wait(); Stats::overlap_efficiency() reports
// the measured overlap. test()/on_complete() below observe the two
// completion levels without forcing a flush the way wait() does.

/// Poke the progress engine once: advance every live nonblocking queue by
/// one stage and dispatch ready completion callbacks. No-op when the
/// engine is off (Options::progress false, aggregation off, or a
/// non-deferring backend). Virtual time spent here counts as
/// *unoverlapped* communication in the overlap gauges -- ticks fired from
/// advance_compute() are the ones that hide latency.
void progress();

/// Nonblocking completion probe (ARMCI_Test): drives progress once, then
/// returns true iff every op \p req covers has reached \p level --
/// Completion::source (buffers reusable; get destinations NOT yet filled)
/// or Completion::operation (wait()-level completion). Never flushes. If a
/// covered queue failed in the background (e.g. its target crashed), the
/// parked error is rethrown here -- exactly once across
/// test()/on_complete()/wait() for that queue.
bool test(Request& req, Completion level);

/// test(req, Completion::operation).
bool test(Request& req);

/// Invoke \p fn when every op \p req covers reaches \p level: immediately
/// (before returning) if that is already true, otherwise from a later
/// progress tick or completion point on this rank -- the callback-driven
/// alternative to polling test(). The argument is nullptr on success, or
/// the covered queue's parked background error (consumed exactly once).
/// Callbacks may issue communication and register further callbacks.
void on_complete(Request& req, Completion level,
                 std::function<void(std::exception_ptr)> fn);

/// on_complete at Completion::operation.
void on_complete(Request& req, std::function<void(std::exception_ptr)> fn);

// ---------------------------------------------------------------------------
// Completion and synchronization (paper §IV-A, §V-F)
// ---------------------------------------------------------------------------

/// Ensure remote completion of all put/acc issued to \p proc. A no-op on
/// Backend::mpi (per-op epochs already completed remotely).
void fence(int proc);

/// fence() to every process.
void fence_all();

/// World barrier including fence_all() (ARMCI_Barrier).
void barrier();

/// Two-sided helpers used by GA for bootstrap (ARMCI_Send/ARMCI_Recv).
void msg_send(const void* buf, std::size_t bytes, int proc, int tag);
void msg_recv(void* buf, std::size_t bytes, int proc, int tag);

/// Put-with-notify (ARMCI_Put_flag): transfer \p bytes to \p dst on
/// \p proc, then set the int at \p flag (also on \p proc) to \p value.
/// ARMCI guarantees the flag write is ordered after the data write, so a
/// consumer spinning on the flag (wait_notify) observes complete data --
/// the producer/consumer idiom location consistency enables (paper §IV-A).
void put_notify(const void* src, void* dst, std::size_t bytes, int* flag,
                int value, int proc);

/// Consumer side of put_notify: wait until the local flag (which must lie
/// in global space on the calling process) becomes \p value.
void wait_notify(const int* flag, int value);

// ---------------------------------------------------------------------------
// Mutexes and read-modify-write (paper §V-D)
// ---------------------------------------------------------------------------

/// Collective over the world: every process creates \p count mutexes that
/// it will host (ARMCI_Create_mutexes). Only one mutex set may exist.
void create_mutexes(int count);

/// Collective destroy of the mutex set (ARMCI_Destroy_mutexes).
void destroy_mutexes();

/// Acquire mutex \p mutex hosted on \p proc (blocking, fair, remote-light:
/// a blocked process waits on a message rather than polling the network).
void lock(int mutex, int proc);

/// Release mutex \p mutex hosted on \p proc, forwarding it to the next
/// enqueued requester if any.
void unlock(int mutex, int proc);

/// Atomic read-modify-write on a global int32/int64 location \p prem on
/// process \p proc (ARMCI_Rmw). For fetch_and_add*, \p extra is the
/// increment and the previous value is stored to \p ploc. For swap*, the
/// value at \p ploc is exchanged with the remote location. Atomic only with
/// respect to other rmw() calls, as in ARMCI.
void rmw(RmwOp op, void* ploc, void* prem, std::int64_t extra, int proc);

// ---------------------------------------------------------------------------
// Failure detection (survivable mode, mpisim::FaultPlan::survivable)
// ---------------------------------------------------------------------------

/// True if process \p proc has been detected as failed. Always false unless
/// the runtime runs in survivable mode; operations addressed to a failed
/// process raise Errc::crashed instead of hanging.
bool is_failed(int proc);

/// Absolute ids of every process that has failed so far, ascending.
std::vector<int> failed_ranks();

// ---------------------------------------------------------------------------
// Direct local access (paper §V-E, §VIII-A extension)
// ---------------------------------------------------------------------------

/// Begin direct load/store access to \p ptr, which must lie in a global
/// allocation on the calling process (ARMCI_Access_begin). On Backend::mpi
/// this takes an exclusive self-epoch so local access cannot conflict with
/// remote access; remote ops targeting the region block until access_end().
void access_begin(void* ptr);

/// End direct local access started by access_begin().
void access_end(void* ptr);

/// Collective over the allocation's group: declare the access pattern of
/// the allocation containing \p ptr (paper §VIII-A). read_only and
/// accumulate_only let the MPI backend use shared-lock epochs, removing
/// target-side serialization.
void set_access_mode(AccessMode mode, void* ptr);

}  // namespace armci

#endif  // ARMCI_ARMCI_HPP
