#include "src/armci/groups.hpp"

#include <algorithm>

#include "src/mpisim/error.hpp"
#include "src/mpisim/runtime.hpp"

namespace armci {

using mpisim::Errc;

PGroup::PGroup(mpisim::Comm comm, mpisim::Group group)
    : comm_(std::move(comm)), group_(std::move(group)) {}

PGroup PGroup::world() {
  mpisim::Comm w = mpisim::world();
  mpisim::Group g = w.group();
  return PGroup(std::move(w), std::move(g));
}

int PGroup::rank() const {
  const int r = group_.rank_of_world(mpisim::rank());
  if (r < 0)
    mpisim::raise(Errc::rank_out_of_range, "caller not in ARMCI group");
  return r;
}

int PGroup::absolute_id(int group_rank) const {
  return group_.world_rank(group_rank);
}

int PGroup::rank_of(int proc) const noexcept {
  return group_.rank_of_world(proc);
}

PGroup PGroup::create_collective(std::span<const int> members,
                                 const PGroup& parent) {
  std::vector<int> m(members.begin(), members.end());
  mpisim::Group g(m);
  mpisim::Comm c = parent.comm().create(g);
  if (!c.valid()) return PGroup();
  return PGroup(std::move(c), std::move(g));
}

PGroup PGroup::shrink(const PGroup& parent) {
  if (!parent.valid())
    mpisim::raise(Errc::invalid_argument, "shrink of an invalid group");
  mpisim::Comm shrunk = parent.comm().shrink();
  mpisim::Group g = shrunk.group();
  return PGroup(std::move(shrunk), std::move(g));
}

PGroup PGroup::create_noncollective(std::span<const int> members, int tag) {
  // Recursive intercommunicator creation and merging (paper §V-A; Dinan et
  // al., EuroMPI'11): the sorted member list is split in halves; each half
  // builds its communicator recursively (leaf = MPI_COMM_SELF), then the
  // halves are joined with intercomm_create + merge. O(log n) rounds, and
  // only the members participate.
  std::vector<int> m(members.begin(), members.end());
  std::sort(m.begin(), m.end());
  const int me = mpisim::rank();
  const auto it = std::find(m.begin(), m.end(), me);
  if (it == m.end())
    mpisim::raise(Errc::invalid_argument,
                  "caller is not in the noncollective group member list");

  mpisim::Comm comm = mpisim::Comm::self();
  // At depth d the member list is tiled into blocks of 2^(d+1) indices;
  // the caller's communicator spans its block's half, and the two halves
  // join via intercomm_create + merge. Blocks are aligned to the index
  // grid, so every member independently computes identical boundaries.
  const std::size_t idx = static_cast<std::size_t>(it - m.begin());
  const std::size_t n = m.size();
  for (int depth = 0; (std::size_t{1} << depth) < n; ++depth) {
    const std::size_t half = std::size_t{1} << depth;
    const std::size_t block = half * 2;
    const std::size_t blo = (idx / block) * block;
    const std::size_t bmid = blo + half;
    if (bmid >= n) continue;  // no right half at this level
    const bool am_low = idx < bmid;
    const int remote_leader =
        am_low ? m[bmid] : m[blo];
    mpisim::Comm inter =
        comm.intercomm_create(0, remote_leader, tag * 4096 + depth);
    comm = inter.merge(/*high=*/!am_low);
  }
  return PGroup(std::move(comm), mpisim::Group(std::move(m)));
}

}  // namespace armci
