#include "src/armci/nb.hpp"

#include <algorithm>
#include <exception>

#include "src/armci/accops.hpp"
#include "src/armci/backend.hpp"
#include "src/armci/iov.hpp"
#include "src/armci/state.hpp"
#include "src/armci/strided.hpp"
#include "src/mpisim/runtime.hpp"
#include "src/mpisim/win.hpp"

namespace armci {

namespace {

/// Inclusive local range of [p, p+span).
std::uintptr_t lo_of(const void* p) {
  return reinterpret_cast<std::uintptr_t>(p);
}

std::span<const void* const> as_const_span(const std::vector<void*>& v) {
  return {const_cast<const void* const*>(v.data()), v.size()};
}

}  // namespace

bool Request::test() const noexcept {
  if (tickets_.empty()) return true;
  const ProcState* st = state_if_initialized();
  if (st == nullptr) return true;  // finalize drained or dropped the queues
  for (const NbTicket& t : tickets_)
    if (!st->nb.ticket_complete(t)) return false;
  return true;
}

bool NbEngine::engine_enabled(const ProcState& st) const {
  return st.opts.nb_aggregation && st.backend->nb_defers();
}

bool NbEngine::local_needs_staging(const ProcState& st, const void* p,
                                   std::size_t bytes) const {
  return !st.opts.no_local_copy &&
         st.table.overlaps_global(mpisim::rank(), p, bytes);
}

bool NbEngine::ticket_complete(const NbTicket& t) const noexcept {
  auto it = queues_.find({t.gmr_id, t.proc});
  if (it == queues_.end()) return true;
  return it->second.seq_completed >= t.seq;
}

bool NbEngine::idle() const noexcept {
  return std::all_of(queues_.begin(), queues_.end(),
                     [](const auto& kv) { return kv.second.ops.empty(); });
}

void NbEngine::flush(ProcState& st, NbQueue& q) {
  if (q.ops.empty()) return;
  std::vector<NbOp> batch = std::move(q.ops);
  q.ops.clear();
  q.r_reads.clear();
  q.r_writes.clear();
  q.r_accs.clear();
  q.l_reads.clear();
  q.l_writes.clear();
  q.has_acc = false;
  // Mark complete *before* executing: if the backend surfaces an error
  // (e.g. retry exhaustion) the queue stays consistent and the error
  // reaches the caller of the flush point, matching the blocking paths.
  q.seq_completed = q.seq_enqueued;
  ++st.stats.flushed_queues;
  if (batch.size() >= 2) ++st.stats.coalesced_epochs;
  st.backend->flush_queue(*q.gmr, q.target_rank, batch);
}

void NbEngine::flush_group(ProcState& st, std::span<NbQueue* const> group) {
  std::vector<NbQueue*> pending;
  for (NbQueue* q : group)
    if (q != nullptr && !q->ops.empty()) pending.push_back(q);
  if (pending.empty()) return;

  // Drain every queue even if one fails: a crashed owner must not leave
  // the other owners' batches queued behind the error (their tickets would
  // read incomplete forever). flush() marks the queue complete before the
  // backend call, so the failed queue is consistent too; the first error
  // surfaces once all queues are drained.
  std::exception_ptr first_error;
  auto drain = [&](NbQueue* q) {
    try {
      flush(st, *q);
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  };
  if (pending.size() >= 2) {
    // One completion point covering several targets: overlap the epoch
    // round trips, as a real nonblocking runtime would.
    mpisim::EpochPipeline pipeline;
    for (NbQueue* q : pending) drain(q);
  } else {
    drain(pending.front());
  }
  if (first_error) std::rethrow_exception(first_error);
}

void NbEngine::flush_all(ProcState& st) {
  std::vector<NbQueue*> group;
  for (auto& [key, q] : queues_)
    if (!q.ops.empty()) group.push_back(&q);
  flush_group(st, group);
}

void NbEngine::flush_proc(ProcState& st, int proc) {
  std::vector<NbQueue*> group;
  for (auto& [key, q] : queues_)
    if (q.proc == proc && !q.ops.empty()) group.push_back(&q);
  flush_group(st, group);
}

void NbEngine::flush_gmr(ProcState& st, std::uint64_t gmr_id) {
  std::vector<NbQueue*> group;
  for (auto& [key, q] : queues_)
    if (key.first == gmr_id && !q.ops.empty()) group.push_back(&q);
  flush_group(st, group);
}

void NbEngine::drop_gmr(ProcState& st, std::uint64_t gmr_id) {
  flush_gmr(st, gmr_id);
  for (auto it = queues_.begin(); it != queues_.end();) {
    if (it->first.first == gmr_id)
      it = queues_.erase(it);
    else
      ++it;
  }
}

void NbEngine::flush_for_blocking(ProcState& st, int proc, const void* local,
                                  std::size_t bytes, bool local_write) {
  const std::uintptr_t lo = lo_of(local);
  const std::uintptr_t hi = lo + (bytes == 0 ? 0 : bytes - 1);
  for (auto& [key, q] : queues_) {
    if (q.ops.empty()) continue;
    // Same-target program order: a blocking op to proc must observe every
    // queued op to proc as already issued.
    bool hazard = q.proc == proc;
    // Local buffer hazards across targets (a queued get writing the range a
    // blocking op is about to read, or any queued use of a range the
    // blocking op is about to overwrite).
    if (!hazard && bytes > 0) {
      hazard = q.l_writes.conflicts(lo, hi) ||
               (local_write && q.l_reads.conflicts(lo, hi));
    }
    if (hazard) flush(st, q);
  }
}

void NbEngine::complete(ProcState& st, const Request& req) {
  std::vector<NbQueue*> group;
  for (const NbTicket& t : RequestAccess::tickets(req)) {
    auto it = queues_.find({t.gmr_id, t.proc});
    if (it == queues_.end()) continue;
    NbQueue* q = &it->second;
    if (q->seq_completed >= t.seq) continue;
    if (std::find(group.begin(), group.end(), q) == group.end())
      group.push_back(q);
  }
  flush_group(st, group);
}

std::uint64_t NbEngine::enqueue(ProcState& st, const std::shared_ptr<Gmr>& gmr,
                                int proc, int target_rank, NbOp op,
                                std::size_t r_span, std::uintptr_t l_lo,
                                std::uintptr_t l_hi) {
  const QueueKey key{gmr->id, proc};
  const std::uintptr_t r_lo = op.offset;
  const std::uintptr_t r_hi = op.offset + (r_span == 0 ? 0 : r_span - 1);
  const bool local_write = op.kind == OneSided::get;

  // Local footprint of the new op, as inclusive byte ranges. Typed ops
  // (strided / IOV) use their exact segment list rather than the bounding
  // box [l_lo, l_hi]: a multi-owner GA access interleaves several disjoint
  // footprints inside one user buffer, and bounding boxes would report
  // them as conflicting and serialize the whole pipeline. Very fragmented
  // types fall back to the bounding box to cap the cost.
  constexpr std::size_t kMaxPreciseSegments = 4096;
  std::vector<std::pair<std::uintptr_t, std::uintptr_t>> lsegs;
  if (op.typed && op.ltype.segment_count() <= kMaxPreciseSegments) {
    const std::uintptr_t base = lo_of(op.local);
    op.ltype.for_each_segment(1, [&](mpisim::Segment s) {
      if (s.length == 0) return;
      const std::uintptr_t lo = base + static_cast<std::uintptr_t>(s.offset);
      lsegs.emplace_back(lo, lo + s.length - 1);
    });
  }
  if (lsegs.empty()) lsegs.emplace_back(l_lo, l_hi);
  const auto l_conflicts = [&lsegs](const mpisim::ConflictTree& t) {
    for (const auto& [lo, hi] : lsegs)
      if (t.conflicts(lo, hi)) return true;
    return false;
  };

  // Local-buffer hazards are checked against *every* queue: two queues
  // flush in unspecified order, so cross-queue buffer reuse must serialize
  // through a flush.
  for (auto& [k, q] : queues_) {
    if (q.ops.empty()) continue;
    bool hazard = l_conflicts(q.l_writes) ||
                  (local_write && l_conflicts(q.l_reads));
    // Remote-range hazards only exist within the op's own queue (other
    // queues are different windows or different targets): MPI-2 forbids
    // conflicting ops on one window in one epoch.
    if (!hazard && k == key) {
      switch (op.kind) {
        case OneSided::put:
          hazard = q.r_reads.conflicts(r_lo, r_hi) ||
                   q.r_writes.conflicts(r_lo, r_hi) ||
                   q.r_accs.conflicts(r_lo, r_hi);
          break;
        case OneSided::get:
          hazard = q.r_writes.conflicts(r_lo, r_hi) ||
                   q.r_accs.conflicts(r_lo, r_hi);
          break;
        case OneSided::acc:
          hazard = q.r_reads.conflicts(r_lo, r_hi) ||
                   q.r_writes.conflicts(r_lo, r_hi) ||
                   (q.has_acc && q.acc_type != op.at &&
                    q.r_accs.conflicts(r_lo, r_hi));
          break;
      }
    }
    if (hazard) {
      ++st.stats.nb_conflict_flushes;
      flush(st, q);
    }
  }

  auto [it, inserted] = queues_.try_emplace(key);
  NbQueue& q = it->second;
  if (inserted) {
    q.gmr = gmr;
    q.proc = proc;
    q.target_rank = target_rank;
  }
  mpisim::ConflictTree& l_tree = local_write ? q.l_writes : q.l_reads;
  for (const auto& [lo, hi] : lsegs) l_tree.insert_merge(lo, hi);
  switch (op.kind) {
    case OneSided::put:
      q.r_writes.insert_merge(r_lo, r_hi);
      break;
    case OneSided::get:
      q.r_reads.insert_merge(r_lo, r_hi);
      break;
    case OneSided::acc:
      q.r_accs.insert_merge(r_lo, r_hi);
      q.has_acc = true;
      q.acc_type = op.at;
      break;
  }
  q.ops.push_back(std::move(op));
  return ++q.seq_enqueued;
}

bool NbEngine::try_defer_contig(ProcState& st, OneSided kind,
                                const void* remote, void* local,
                                std::size_t bytes, int proc, AccType at,
                                const void* scale, Request& req) {
  if (!engine_enabled(st) || bytes == 0) return false;
  if (proc == mpisim::rank()) return false;  // self ops alias local memory
  if (kind == OneSided::acc && !scale_is_identity(at, scale)) return false;
  if (local_needs_staging(st, local, bytes)) return false;
  GmrLoc loc = st.table.require(proc, remote, bytes);
  // Direct-path targets (same-node under a shared window) complete at
  // memcpy speed with no epoch to batch: deferring them buys nothing and
  // would delay their effects past the direct access. Fall to the eager
  // path, which routes them through the backend's shm fast path.
  if (st.backend->direct_path(loc)) return false;
  switch (loc.locality) {
    case GmrLoc::Locality::self: ++st.stats.ops_self; break;
    case GmrLoc::Locality::same_node: ++st.stats.ops_same_node; break;
    case GmrLoc::Locality::remote: ++st.stats.ops_remote; break;
  }

  NbOp op;
  op.kind = kind;
  op.at = at;
  op.local = local;
  op.bytes = bytes;
  op.offset = loc.offset;
  const std::uintptr_t l_lo = lo_of(local);
  const std::uint64_t seq = enqueue(st, loc.gmr, proc, loc.target_rank,
                                    std::move(op), bytes, l_lo,
                                    l_lo + bytes - 1);
  RequestAccess::add_ticket(req, loc.gmr->id, proc, seq);
  return true;
}

bool NbEngine::try_defer_strided(ProcState& st, OneSided kind,
                                 const void* src, void* dst,
                                 const StridedSpec& spec, int proc,
                                 AccType at, const void* scale,
                                 Request& req) {
  if (!engine_enabled(st)) return false;
  if (st.opts.strided_method != StridedMethod::direct) return false;
  if (proc == mpisim::rank()) return false;
  if (kind == OneSided::acc && !scale_is_identity(at, scale)) return false;
  validate_spec(spec);

  const bool is_get = kind == OneSided::get;
  const mpisim::BasicType elem = kind == OneSided::acc
                                     ? basic_type_of_acc(at)
                                     : mpisim::BasicType::byte_;
  if (spec.count[0] % mpisim::basic_type_size(elem) != 0) return false;
  const void* remote = is_get ? src : dst;
  void* local = is_get ? dst : const_cast<void*>(src);
  const auto& rstrides = is_get ? spec.src_strides : spec.dst_strides;
  const auto& lstrides = is_get ? spec.dst_strides : spec.src_strides;

  const mpisim::Datatype rtype =
      st.dt_cache.strided_type(rstrides, spec, elem, st.stats);
  const mpisim::Datatype ltype =
      st.dt_cache.strided_type(lstrides, spec, elem, st.stats);
  const auto lextent = static_cast<std::size_t>(ltype.extent());
  if (local_needs_staging(st, local, lextent)) return false;
  GmrLoc loc = st.table.require(proc, remote,
                                static_cast<std::size_t>(rtype.extent()));
  // Direct-path targets complete at memcpy speed with no epoch to batch;
  // the eager path walks their segments through the backend's shm copies.
  if (st.backend->direct_path(loc)) return false;

  NbOp op;
  op.kind = kind;
  op.at = at;
  op.local = local;
  op.bytes = strided_total_bytes(spec);
  op.offset = loc.offset;
  op.typed = true;
  op.ltype = ltype;
  op.rtype = rtype;
  const std::uintptr_t l_lo = lo_of(local);
  const std::uint64_t seq = enqueue(
      st, loc.gmr, proc, loc.target_rank, std::move(op),
      static_cast<std::size_t>(rtype.extent()), l_lo, l_lo + lextent - 1);
  RequestAccess::add_ticket(req, loc.gmr->id, proc, seq);
  return true;
}

bool NbEngine::try_defer_iov(ProcState& st, OneSided kind,
                             std::span<const Giov> vec, int proc, AccType at,
                             const void* scale, Request& req) {
  if (!engine_enabled(st)) return false;
  if (proc == mpisim::rank()) return false;
  if (kind == OneSided::acc && !scale_is_identity(at, scale)) return false;

  const bool is_get = kind == OneSided::get;
  const mpisim::BasicType elem = kind == OneSided::acc
                                     ? basic_type_of_acc(at)
                                     : mpisim::BasicType::byte_;
  const std::size_t esz = mpisim::basic_type_size(elem);

  // Plan every descriptor first; defer all or none so one nb call never
  // splits between deferred and eager halves.
  struct Plan {
    std::shared_ptr<Gmr> gmr;
    int target_rank = -1;
    NbOp op;
    std::size_t r_span = 0;
    std::uintptr_t l_lo = 0, l_hi = 0;
  };
  std::vector<Plan> plans;
  plans.reserve(vec.size());

  for (const Giov& g : vec) {
    if (g.src.size() != g.dst.size()) return false;  // eager path diagnoses
    if (g.src.empty() || g.bytes == 0) continue;
    if (g.bytes % esz != 0) return false;
    // The single hindexed op per side is erroneous if the *written* side
    // self-overlaps (same rule as the §VI-B direct method); the written
    // side is dst for every direction.
    if (iov_has_overlap(as_const_span(g.dst), g.bytes)) return false;

    // Resolve the remote side; all segments must land in one GMR.
    const std::size_t n = g.src.size();
    std::vector<std::ptrdiff_t> rdispls(n);
    GmrLoc loc0;
    for (std::size_t i = 0; i < n; ++i) {
      const void* remote = is_get ? g.src[i] : g.dst[i];
      GmrLoc l = st.table.find(proc, remote, g.bytes);
      if (!l.gmr) return false;
      if (i == 0)
        loc0 = l;
      else if (l.gmr.get() != loc0.gmr.get())
        return false;
      rdispls[i] = static_cast<std::ptrdiff_t>(l.offset);
    }
    // Direct-path targets (same GMR for every segment, so one check) go
    // eager: the backend copies each segment through shared memory.
    if (st.backend->direct_path(loc0)) return false;
    // Rebase both displacement lists so the datatypes are shape-only (and
    // therefore cacheable across base addresses).
    const std::ptrdiff_t rmin =
        *std::min_element(rdispls.begin(), rdispls.end());
    for (auto& d : rdispls) d -= rmin;
    const std::uint8_t* lbase = nullptr;
    for (std::size_t i = 0; i < n; ++i) {
      const void* local = is_get ? g.dst[i] : g.src[i];
      const auto* p = static_cast<const std::uint8_t*>(local);
      if (lbase == nullptr || p < lbase) lbase = p;
    }
    std::vector<std::ptrdiff_t> ldispls(n);
    for (std::size_t i = 0; i < n; ++i) {
      const void* local = is_get ? g.dst[i] : g.src[i];
      ldispls[i] = static_cast<const std::uint8_t*>(local) - lbase;
    }
    const std::vector<std::size_t> blocklens(n, g.bytes / esz);

    Plan p;
    p.op.kind = kind;
    p.op.at = at;
    p.op.local = const_cast<std::uint8_t*>(lbase);
    p.op.bytes = n * g.bytes;
    p.op.offset = static_cast<std::size_t>(rmin);
    p.op.typed = true;
    p.op.rtype = st.dt_cache.hindexed_type(blocklens, rdispls, elem, st.stats);
    p.op.ltype = st.dt_cache.hindexed_type(blocklens, ldispls, elem, st.stats);
    const auto lextent = static_cast<std::size_t>(p.op.ltype.extent());
    if (local_needs_staging(st, lbase, lextent)) return false;
    p.gmr = loc0.gmr;
    p.target_rank = loc0.target_rank;
    p.r_span = static_cast<std::size_t>(p.op.rtype.extent());
    p.l_lo = lo_of(lbase);
    p.l_hi = p.l_lo + lextent - 1;
    plans.push_back(std::move(p));
  }

  for (Plan& p : plans) {
    const std::uint64_t gmr_id = p.gmr->id;
    const std::uint64_t seq =
        enqueue(st, p.gmr, proc, p.target_rank, std::move(p.op), p.r_span,
                p.l_lo, p.l_hi);
    RequestAccess::add_ticket(req, gmr_id, proc, seq);
  }
  return true;
}

}  // namespace armci
