#include "src/armci/nb.hpp"

#include <algorithm>
#include <exception>
#include <mutex>

#include "src/armci/accops.hpp"
#include "src/armci/backend.hpp"
#include "src/armci/iov.hpp"
#include "src/armci/state.hpp"
#include "src/armci/strided.hpp"
#include "src/mpisim/hb.hpp"
#include "src/mpisim/runtime.hpp"
#include "src/mpisim/trace.hpp"
#include "src/mpisim/win.hpp"

namespace armci {

namespace {

/// Inclusive local range of [p, p+span).
std::uintptr_t lo_of(const void* p) {
  return reinterpret_cast<std::uintptr_t>(p);
}

std::span<const void* const> as_const_span(const std::vector<void*>& v) {
  return {const_cast<const void* const*>(v.data()), v.size()};
}

/// Drop a queue's range bookkeeping after its ops reach operation
/// completion (or park on an error).
void clear_trees(NbQueue& q) {
  q.r_reads.clear();
  q.r_writes.clear();
  q.r_accs.clear();
  q.l_reads.clear();
  q.l_writes.clear();
  q.has_acc = false;
}

/// A queue died before its contract records could be published: drop the
/// persona's pending intervals silently (the mirror of the checker's
/// epoch_abandoned). Leaving them pending would make every later touch of
/// the buffers a false race against an operation that no longer exists.
void abandon_contract(NbQueue& q) {
  if (q.local_spaces.empty()) return;
  mpisim::SimCore& core = mpisim::ctx().core();
  mpisim::HbChecker& hb = core.hb();
  const int me = mpisim::rank();
  std::lock_guard lk(core.mu());
  for (const NbLocalSpace& s : q.local_spaces)
    hb.epoch_abandoned(s.space, s.target_rank, hb.persona(me));
  q.local_spaces.clear();
}

}  // namespace

bool Request::test() const noexcept {
  if (tickets_.empty()) return true;
  const ProcState* st = state_if_initialized();
  if (st == nullptr) return true;  // finalize drained or dropped the queues
  for (const NbTicket& t : tickets_)
    if (!st->nb.ticket_complete(t)) return false;
  return true;
}

bool NbEngine::engine_enabled(const ProcState& st) const {
  return st.opts.nb_aggregation && st.backend->nb_defers();
}

bool NbEngine::local_needs_staging(const ProcState& st, const void* p,
                                   std::size_t bytes) const {
  return !st.opts.no_local_copy &&
         st.table.overlaps_global(mpisim::rank(), p, bytes);
}

bool NbEngine::ticket_complete(const NbTicket& t) const noexcept {
  auto it = queues_.find({t.gmr_id, t.proc});
  if (it == queues_.end()) return true;
  return it->second.seq_completed >= t.seq;
}

bool NbEngine::ticket_issued(const NbTicket& t) const noexcept {
  auto it = queues_.find({t.gmr_id, t.proc});
  if (it == queues_.end()) return true;
  const NbQueue& q = it->second;
  return q.seq_issued >= t.seq || q.seq_completed >= t.seq;
}

bool NbEngine::idle() const noexcept {
  return std::all_of(queues_.begin(), queues_.end(),
                     [](const auto& kv) { return !queue_live(kv.second); });
}

void NbEngine::flush(ProcState& st, NbQueue& q) {
  if (q.parked) {
    // Error-drain semantics: the persona already completed the queue's
    // tickets when it parked; the first flush point covering the queue
    // surfaces the error exactly once.
    std::exception_ptr e = std::move(q.parked);
    q.parked = nullptr;
    std::rethrow_exception(e);
  }
  const bool had_pending = q.pending_flush;
  if (q.ops.empty() && !had_pending) return;
  std::vector<NbOp> batch = std::move(q.ops);
  q.ops.clear();
  clear_trees(q);
  q.pending_flush = false;
  // Mark complete *before* executing: if the backend surfaces an error
  // (e.g. retry exhaustion) the queue stays consistent and the error
  // reaches the caller of the flush point, matching the blocking paths.
  q.seq_issued = q.seq_enqueued;
  q.seq_completed = q.seq_enqueued;
  try {
    if (!batch.empty()) {
      ++st.stats.flushed_queues;
      if (batch.size() >= 2) ++st.stats.coalesced_epochs;
      st.backend->flush_queue(*q.gmr, q.target_rank, batch);
    }
    if (had_pending) st.backend->complete_target(*q.gmr, q.target_rank);
  } catch (...) {
    abandon_contract(q);
    throw;
  }
  retire_queue(st, q);
}

void NbEngine::flush_group(ProcState& st, std::span<NbQueue* const> group) {
  std::vector<NbQueue*> pending;
  for (NbQueue* q : group)
    if (q != nullptr && queue_live(*q)) pending.push_back(q);
  if (pending.empty()) return;

  // Drain every queue even if one fails: a crashed owner must not leave
  // the other owners' batches queued behind the error (their tickets would
  // read incomplete forever). flush() marks the queue complete before the
  // backend call, so the failed queue is consistent too; the first error
  // surfaces once all queues are drained.
  std::exception_ptr first_error;
  auto drain = [&](NbQueue* q) {
    try {
      flush(st, *q);
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  };
  if (pending.size() >= 2) {
    // One completion point covering several targets: overlap the epoch
    // round trips, as a real nonblocking runtime would.
    mpisim::EpochPipeline pipeline;
    for (NbQueue* q : pending) drain(q);
  } else {
    drain(pending.front());
  }
  if (first_error) std::rethrow_exception(first_error);
}

void NbEngine::flush_all(ProcState& st) {
  std::vector<NbQueue*> group;
  for (auto& [key, q] : queues_)
    if (queue_live(q)) group.push_back(&q);
  flush_group(st, group);
  run_callbacks(st);
}

void NbEngine::flush_proc(ProcState& st, int proc) {
  std::vector<NbQueue*> group;
  for (auto& [key, q] : queues_)
    if (q.proc == proc && queue_live(q)) group.push_back(&q);
  flush_group(st, group);
  run_callbacks(st);
}

void NbEngine::flush_gmr(ProcState& st, std::uint64_t gmr_id) {
  std::vector<NbQueue*> group;
  for (auto& [key, q] : queues_)
    if (key.first == gmr_id && queue_live(q)) group.push_back(&q);
  flush_group(st, group);
  run_callbacks(st);
}

void NbEngine::drop_gmr(ProcState& st, std::uint64_t gmr_id) {
  flush_gmr(st, gmr_id);
  for (auto it = queues_.begin(); it != queues_.end();) {
    if (it->first.first == gmr_id)
      it = queues_.erase(it);
    else
      ++it;
  }
}

void NbEngine::flush_for_blocking(ProcState& st, int proc, const void* local,
                                  std::size_t bytes, bool local_write) {
  const std::uintptr_t lo = lo_of(local);
  const std::uintptr_t hi = lo + (bytes == 0 ? 0 : bytes - 1);
  for (auto& [key, q] : queues_) {
    if (q.ops.empty() && !q.pending_flush && !q.parked) continue;
    // Same-target program order: a blocking op to proc must observe every
    // queued op to proc as already issued (and a parked error for proc
    // surface before new communication with it).
    bool hazard = q.proc == proc;
    // Local buffer hazards across targets (a queued get writing the range a
    // blocking op is about to read, or any queued use of a range the
    // blocking op is about to overwrite).
    if (!hazard && bytes > 0) {
      hazard = q.l_writes.conflicts(lo, hi) ||
               (local_write && q.l_reads.conflicts(lo, hi));
    }
    if (hazard) flush(st, q);
  }
}

void NbEngine::complete(ProcState& st, const Request& req) {
  std::vector<NbQueue*> group;
  for (const NbTicket& t : RequestAccess::tickets(req)) {
    auto it = queues_.find({t.gmr_id, t.proc});
    if (it == queues_.end()) continue;
    NbQueue* q = &it->second;
    // A parked queue's tickets read complete, but wait() must still visit
    // it to surface the parked error. (A pending_flush queue with
    // seq_completed >= t.seq only has *later* ops in flight: skipping it
    // keeps wait(req) from completing more than the request covers.)
    if (q->seq_completed >= t.seq && !q->parked) continue;
    if (std::find(group.begin(), group.end(), q) == group.end())
      group.push_back(q);
  }
  flush_group(st, group);
  run_callbacks(st);
}

std::uint64_t NbEngine::enqueue(ProcState& st, const std::shared_ptr<Gmr>& gmr,
                                int proc, int target_rank, NbOp op,
                                std::size_t r_span, std::uintptr_t l_lo,
                                std::uintptr_t l_hi) {
  const QueueKey key{gmr->id, proc};
  const std::uintptr_t r_lo = op.offset;
  const std::uintptr_t r_hi = op.offset + (r_span == 0 ? 0 : r_span - 1);
  const bool local_write = op.kind == OneSided::get;

  // Local footprint of the new op, as inclusive byte ranges. Typed ops
  // (strided / IOV) use their exact segment list rather than the bounding
  // box [l_lo, l_hi]: a multi-owner GA access interleaves several disjoint
  // footprints inside one user buffer, and bounding boxes would report
  // them as conflicting and serialize the whole pipeline. Very fragmented
  // types fall back to the bounding box to cap the cost.
  constexpr std::size_t kMaxPreciseSegments = 4096;
  std::vector<std::pair<std::uintptr_t, std::uintptr_t>> lsegs;
  if (op.typed && op.ltype.segment_count() <= kMaxPreciseSegments) {
    const std::uintptr_t base = lo_of(op.local);
    op.ltype.for_each_segment(1, [&](mpisim::Segment s) {
      if (s.length == 0) return;
      const std::uintptr_t lo = base + static_cast<std::uintptr_t>(s.offset);
      lsegs.emplace_back(lo, lo + s.length - 1);
    });
  }
  if (lsegs.empty()) lsegs.emplace_back(l_lo, l_hi);
  const auto l_conflicts = [&lsegs](const mpisim::ConflictTree& t) {
    for (const auto& [lo, hi] : lsegs)
      if (t.conflicts(lo, hi)) return true;
    return false;
  };

  // Local-buffer hazards are checked against *every* queue: two queues
  // flush in unspecified order, so cross-queue buffer reuse must serialize
  // through a flush. Queues in the issued-awaiting-completion state keep
  // their trees populated, so a newcomer conflicting with an in-flight
  // batch forces its completion here too.
  for (auto& [k, q] : queues_) {
    if (q.ops.empty() && !q.pending_flush) continue;
    bool hazard = l_conflicts(q.l_writes) ||
                  (local_write && l_conflicts(q.l_reads));
    // Remote-range hazards only exist within the op's own queue (other
    // queues are different windows or different targets): MPI-2 forbids
    // conflicting ops on one window in one epoch.
    if (!hazard && k == key) {
      switch (op.kind) {
        case OneSided::put:
          hazard = q.r_reads.conflicts(r_lo, r_hi) ||
                   q.r_writes.conflicts(r_lo, r_hi) ||
                   q.r_accs.conflicts(r_lo, r_hi);
          break;
        case OneSided::get:
          hazard = q.r_writes.conflicts(r_lo, r_hi) ||
                   q.r_accs.conflicts(r_lo, r_hi);
          break;
        case OneSided::acc:
          hazard = q.r_reads.conflicts(r_lo, r_hi) ||
                   q.r_writes.conflicts(r_lo, r_hi) ||
                   (q.has_acc && q.acc_type != op.at &&
                    q.r_accs.conflicts(r_lo, r_hi));
          break;
      }
    }
    if (hazard) {
      ++st.stats.nb_conflict_flushes;
      flush(st, q);
    }
  }

  auto [it, inserted] = queues_.try_emplace(key);
  NbQueue& q = it->second;
  if (inserted) {
    q.gmr = gmr;
    q.proc = proc;
    q.target_rank = target_rank;
  }
  mpisim::ConflictTree& l_tree = local_write ? q.l_writes : q.l_reads;
  for (const auto& [lo, hi] : lsegs) l_tree.insert_merge(lo, hi);
  switch (op.kind) {
    case OneSided::put:
      q.r_writes.insert_merge(r_lo, r_hi);
      break;
    case OneSided::get:
      q.r_reads.insert_merge(r_lo, r_hi);
      break;
    case OneSided::acc:
      q.r_accs.insert_merge(r_lo, r_hi);
      q.has_acc = true;
      q.acc_type = op.at;
      break;
  }
  q.ops.push_back(std::move(op));
  return ++q.seq_enqueued;
}

bool NbEngine::try_defer_contig(ProcState& st, OneSided kind,
                                const void* remote, void* local,
                                std::size_t bytes, int proc, AccType at,
                                const void* scale, Request& req) {
  if (!engine_enabled(st) || bytes == 0) return false;
  if (proc == mpisim::rank()) return false;  // self ops alias local memory
  if (kind == OneSided::acc && !scale_is_identity(at, scale)) return false;
  if (local_needs_staging(st, local, bytes)) return false;
  GmrLoc loc = st.table.require(proc, remote, bytes);
  // Direct-path targets (same-node under a shared window) complete at
  // memcpy speed with no epoch to batch: deferring them buys nothing and
  // would delay their effects past the direct access. Fall to the eager
  // path, which routes them through the backend's shm fast path.
  if (st.backend->direct_path(loc)) return false;
  switch (loc.locality) {
    case GmrLoc::Locality::self: ++st.stats.ops_self; break;
    case GmrLoc::Locality::same_node: ++st.stats.ops_same_node; break;
    case GmrLoc::Locality::remote: ++st.stats.ops_remote; break;
  }

  NbOp op;
  op.kind = kind;
  op.at = at;
  op.local = local;
  op.bytes = bytes;
  op.offset = loc.offset;
  const std::uintptr_t l_lo = lo_of(local);
  const std::uint64_t seq = enqueue(st, loc.gmr, proc, loc.target_rank,
                                    std::move(op), bytes, l_lo,
                                    l_lo + bytes - 1);
  RequestAccess::add_ticket(req, loc.gmr->id, proc, seq);
  record_local_contract(st, queues_.find({loc.gmr->id, proc})->second, kind,
                        local, bytes);
  return true;
}

bool NbEngine::try_defer_strided(ProcState& st, OneSided kind,
                                 const void* src, void* dst,
                                 const StridedSpec& spec, int proc,
                                 AccType at, const void* scale,
                                 Request& req) {
  if (!engine_enabled(st)) return false;
  if (st.opts.strided_method != StridedMethod::direct) return false;
  if (proc == mpisim::rank()) return false;
  if (kind == OneSided::acc && !scale_is_identity(at, scale)) return false;
  validate_spec(spec);

  const bool is_get = kind == OneSided::get;
  const mpisim::BasicType elem = kind == OneSided::acc
                                     ? basic_type_of_acc(at)
                                     : mpisim::BasicType::byte_;
  if (spec.count[0] % mpisim::basic_type_size(elem) != 0) return false;
  const void* remote = is_get ? src : dst;
  void* local = is_get ? dst : const_cast<void*>(src);
  const auto& rstrides = is_get ? spec.src_strides : spec.dst_strides;
  const auto& lstrides = is_get ? spec.dst_strides : spec.src_strides;

  const mpisim::Datatype rtype =
      st.dt_cache.strided_type(rstrides, spec, elem, st.stats);
  const mpisim::Datatype ltype =
      st.dt_cache.strided_type(lstrides, spec, elem, st.stats);
  const auto lextent = static_cast<std::size_t>(ltype.extent());
  if (local_needs_staging(st, local, lextent)) return false;
  GmrLoc loc = st.table.require(proc, remote,
                                static_cast<std::size_t>(rtype.extent()));
  // Direct-path targets complete at memcpy speed with no epoch to batch;
  // the eager path walks their segments through the backend's shm copies.
  if (st.backend->direct_path(loc)) return false;

  NbOp op;
  op.kind = kind;
  op.at = at;
  op.local = local;
  op.bytes = strided_total_bytes(spec);
  op.offset = loc.offset;
  op.typed = true;
  op.ltype = ltype;
  op.rtype = rtype;
  const std::uintptr_t l_lo = lo_of(local);
  const std::uint64_t seq = enqueue(
      st, loc.gmr, proc, loc.target_rank, std::move(op),
      static_cast<std::size_t>(rtype.extent()), l_lo, l_lo + lextent - 1);
  RequestAccess::add_ticket(req, loc.gmr->id, proc, seq);
  return true;
}

bool NbEngine::try_defer_iov(ProcState& st, OneSided kind,
                             std::span<const Giov> vec, int proc, AccType at,
                             const void* scale, Request& req) {
  if (!engine_enabled(st)) return false;
  if (proc == mpisim::rank()) return false;
  if (kind == OneSided::acc && !scale_is_identity(at, scale)) return false;

  const bool is_get = kind == OneSided::get;
  const mpisim::BasicType elem = kind == OneSided::acc
                                     ? basic_type_of_acc(at)
                                     : mpisim::BasicType::byte_;
  const std::size_t esz = mpisim::basic_type_size(elem);

  // Plan every descriptor first; defer all or none so one nb call never
  // splits between deferred and eager halves.
  struct Plan {
    std::shared_ptr<Gmr> gmr;
    int target_rank = -1;
    NbOp op;
    std::size_t r_span = 0;
    std::uintptr_t l_lo = 0, l_hi = 0;
  };
  std::vector<Plan> plans;
  plans.reserve(vec.size());

  for (const Giov& g : vec) {
    if (g.src.size() != g.dst.size()) return false;  // eager path diagnoses
    if (g.src.empty() || g.bytes == 0) continue;
    if (g.bytes % esz != 0) return false;
    // The single hindexed op per side is erroneous if the *written* side
    // self-overlaps (same rule as the §VI-B direct method); the written
    // side is dst for every direction.
    if (iov_has_overlap(as_const_span(g.dst), g.bytes)) return false;

    // Resolve the remote side; all segments must land in one GMR.
    const std::size_t n = g.src.size();
    std::vector<std::ptrdiff_t> rdispls(n);
    GmrLoc loc0;
    for (std::size_t i = 0; i < n; ++i) {
      const void* remote = is_get ? g.src[i] : g.dst[i];
      GmrLoc l = st.table.find(proc, remote, g.bytes);
      if (!l.gmr) return false;
      if (i == 0)
        loc0 = l;
      else if (l.gmr.get() != loc0.gmr.get())
        return false;
      rdispls[i] = static_cast<std::ptrdiff_t>(l.offset);
    }
    // Direct-path targets (same GMR for every segment, so one check) go
    // eager: the backend copies each segment through shared memory.
    if (st.backend->direct_path(loc0)) return false;
    // Rebase both displacement lists so the datatypes are shape-only (and
    // therefore cacheable across base addresses).
    const std::ptrdiff_t rmin =
        *std::min_element(rdispls.begin(), rdispls.end());
    for (auto& d : rdispls) d -= rmin;
    const std::uint8_t* lbase = nullptr;
    for (std::size_t i = 0; i < n; ++i) {
      const void* local = is_get ? g.dst[i] : g.src[i];
      const auto* p = static_cast<const std::uint8_t*>(local);
      if (lbase == nullptr || p < lbase) lbase = p;
    }
    std::vector<std::ptrdiff_t> ldispls(n);
    for (std::size_t i = 0; i < n; ++i) {
      const void* local = is_get ? g.dst[i] : g.src[i];
      ldispls[i] = static_cast<const std::uint8_t*>(local) - lbase;
    }
    const std::vector<std::size_t> blocklens(n, g.bytes / esz);

    Plan p;
    p.op.kind = kind;
    p.op.at = at;
    p.op.local = const_cast<std::uint8_t*>(lbase);
    p.op.bytes = n * g.bytes;
    p.op.offset = static_cast<std::size_t>(rmin);
    p.op.typed = true;
    p.op.rtype = st.dt_cache.hindexed_type(blocklens, rdispls, elem, st.stats);
    p.op.ltype = st.dt_cache.hindexed_type(blocklens, ldispls, elem, st.stats);
    const auto lextent = static_cast<std::size_t>(p.op.ltype.extent());
    if (local_needs_staging(st, lbase, lextent)) return false;
    p.gmr = loc0.gmr;
    p.target_rank = loc0.target_rank;
    p.r_span = static_cast<std::size_t>(p.op.rtype.extent());
    p.l_lo = lo_of(lbase);
    p.l_hi = p.l_lo + lextent - 1;
    plans.push_back(std::move(p));
  }

  for (Plan& p : plans) {
    const std::uint64_t gmr_id = p.gmr->id;
    const std::uint64_t seq =
        enqueue(st, p.gmr, proc, p.target_rank, std::move(p.op), p.r_span,
                p.l_lo, p.l_hi);
    RequestAccess::add_ticket(req, gmr_id, proc, seq);
  }
  return true;
}

// ---- cooperative progress engine ----

void NbEngine::record_local_contract(ProcState& st, NbQueue& q, OneSided kind,
                                     void* local, std::size_t bytes) {
  if (!st.opts.progress || bytes == 0) return;
  mpisim::SimCore& core = mpisim::ctx().core();
  mpisim::HbChecker& hb = core.hb();
  if (!hb.enabled()) return;
  // Only local buffers that themselves live in global space have a shadow
  // space to record against (a deferred op whose buffer is global can only
  // be here under no_local_copy; otherwise staging blocked deferral).
  // Private-heap buffers get no coverage -- same blind spot every
  // space-indexed record in the detector has. Strided/IOV deferrals are
  // not covered either: their segment lists would need one interval per
  // segment, and the contig path is where the engine overlap lives.
  const GmrLoc lloc = st.table.find(mpisim::rank(), local, bytes);
  if (!lloc.gmr) return;
  const std::uint64_t space = lloc.gmr->win.id();
  const int me = mpisim::rank();
  // The engine will *write* a deferred get's destination and *read* a
  // deferred put/acc's source, concurrently with whatever the application
  // does next.
  const auto hbkind = kind == OneSided::get ? mpisim::HbChecker::OpKind::put
                                            : mpisim::HbChecker::OpKind::get;
  {
    std::lock_guard lk(core.mu());
    // Order the persona after the enqueue point, then record the contract
    // interval under the persona identity: it stays pending until
    // retirement publishes it, so an application touch in between is an
    // unordered cross-identity conflict.
    hb.persona_sync(me);
    hb.record_local_pending(
        space, lloc.target_rank, lloc.gmr->group.rank(), hb.persona(me),
        hbkind, mpisim::Op::sum, static_cast<std::ptrdiff_t>(lloc.offset),
        static_cast<std::ptrdiff_t>(lloc.offset + bytes),
        "nb deferred-op contract (progress engine)");
  }
  const NbLocalSpace ls{space, lloc.target_rank};
  const auto same = [&](const NbLocalSpace& s) {
    return s.space == ls.space && s.target_rank == ls.target_rank;
  };
  if (std::none_of(q.local_spaces.begin(), q.local_spaces.end(), same))
    q.local_spaces.push_back(ls);
}

void NbEngine::retire_queue(ProcState& st, NbQueue& q) {
  (void)st;
  if (q.local_spaces.empty()) return;
  mpisim::SimCore& core = mpisim::ctx().core();
  mpisim::HbChecker& hb = core.hb();
  const int me = mpisim::rank();
  std::lock_guard lk(core.mu());
  // Publish the persona's contract intervals (they become summaries
  // stamped with the persona clock), then hand the owner the retirement
  // edge: touches after this point are ordered, touches before it were
  // races. Publication is per <space, target>, so two queues sharing a
  // local space retire together -- coarser than per-op, never unsound.
  for (const NbLocalSpace& s : q.local_spaces)
    hb.epoch_flushed(s.space, s.target_rank, hb.persona(me));
  hb.persona_retire(me);
  q.local_spaces.clear();
}

void NbEngine::progress_tick(ProcState& st) {
  if (ticking_) return;  // a callback poked progress(); already inside
  ticking_ = true;
  struct Unguard {
    bool* flag;
    ~Unguard() { *flag = false; }
  } unguard{&ticking_};

  ++st.stats.progress_ticks;
  mpisim::Tracer& tr = mpisim::tracer();
  const bool traced = tr.enabled();
  if (traced) tr.begin(mpisim::TraceCat::progress, "progress.tick");

  const auto note_retired = [&](const NbQueue& q) {
    ++st.stats.progress_retires;
    if (traced) {
      tr.begin(mpisim::TraceCat::progress, "progress.retire",
               static_cast<std::uint64_t>(q.proc));
      tr.end(mpisim::TraceCat::progress, "progress.retire",
             static_cast<std::uint64_t>(q.proc));
    }
  };

  // Snapshot the stage set: backend calls can grow the queue map (std::map
  // nodes are stable, but newcomers belong to the next tick).
  std::vector<NbQueue*> live;
  for (auto& [key, q] : queues_)
    if (!q.parked && (!q.ops.empty() || q.pending_flush)) live.push_back(&q);

  for (NbQueue* qp : live) {
    NbQueue& q = *qp;
    try {
      if (!q.ops.empty()) {
        // Issue stage: hand the queued batch to the transport. Source
        // completion for everything enqueued so far.
        std::vector<NbOp> batch = std::move(q.ops);
        q.ops.clear();
        q.seq_issued = q.seq_enqueued;
        ++st.stats.flushed_queues;
        if (batch.size() >= 2) ++st.stats.coalesced_epochs;
        if (st.backend->split_completion()) {
          const bool need_target =
              std::any_of(batch.begin(), batch.end(), [](const NbOp& o) {
                return o.kind == OneSided::get;
              });
          st.backend->issue_queue(*q.gmr, q.target_rank, batch);
          // put/acc sources are captured at issue; only get destinations
          // stay covered until target completion.
          q.l_reads.clear();
          if (need_target) q.pending_flush = true;
          if (!q.pending_flush) {
            // put/acc-only batch under the standing epoch: issue is the
            // whole completion (matching flush_queue's get-only flush).
            q.seq_completed = q.seq_enqueued;
            clear_trees(q);
            retire_queue(st, q);
            note_retired(q);
          }
        } else {
          // The backend completes per batch (MPI-2 exclusive epochs):
          // issue and completion are one stage.
          q.seq_completed = q.seq_enqueued;
          clear_trees(q);
          st.backend->flush_queue(*q.gmr, q.target_rank, batch);
          retire_queue(st, q);
          note_retired(q);
        }
      } else if (q.pending_flush) {
        // Completion stage: finish the batch issued on an earlier tick.
        st.backend->complete_target(*q.gmr, q.target_rank);
        q.pending_flush = false;
        q.seq_completed = q.seq_issued;
        clear_trees(q);
        retire_queue(st, q);
        note_retired(q);
      }
    } catch (...) {
      // Park the error instead of throwing out of the persona: one dead
      // target must not stop progress on healthy queues, and the caller
      // of advance_compute() is charging compute, not communicating with
      // this target. Tickets read complete (error-drain, like a failed
      // flush); the error surfaces exactly once at the next test(),
      // callback, or flush point covering this queue.
      q.parked = std::current_exception();
      q.pending_flush = false;
      q.seq_issued = q.seq_enqueued;
      q.seq_completed = q.seq_enqueued;
      clear_trees(q);
      abandon_contract(q);
    }
  }
  if (traced) tr.end(mpisim::TraceCat::progress, "progress.tick");
  // Dispatch outside the stage loop and the trace span; callback
  // exceptions propagate to the compute site that drove the tick.
  run_callbacks(st);
}

bool NbEngine::test(ProcState& st, const Request& req, Completion level) {
  (void)st;
  const std::span<const NbTicket> tickets = RequestAccess::tickets(req);
  for (const NbTicket& t : tickets) {
    const bool ok =
        level == Completion::source ? ticket_issued(t) : ticket_complete(t);
    if (!ok) return false;
  }
  // Satisfied -- but a covered queue may have completed *by parking*;
  // surface that (exactly once) rather than reporting clean completion.
  if (std::exception_ptr err = take_parked(tickets))
    std::rethrow_exception(err);
  return true;
}

void NbEngine::on_complete(ProcState& st, const Request& req, Completion level,
                           std::function<void(std::exception_ptr)> fn) {
  (void)st;
  CallbackRec rec;
  const std::span<const NbTicket> tickets = RequestAccess::tickets(req);
  rec.tickets.assign(tickets.begin(), tickets.end());
  rec.level = level;
  rec.fn = std::move(fn);
  bool done = true;
  for (const NbTicket& t : rec.tickets) {
    const bool ok =
        level == Completion::source ? ticket_issued(t) : ticket_complete(t);
    if (!ok) {
      done = false;
      break;
    }
  }
  if (done) {
    rec.fn(take_parked(rec.tickets));  // already satisfied: run in place
    return;
  }
  callbacks_.push_back(std::move(rec));
}

std::exception_ptr NbEngine::take_parked(std::span<const NbTicket> tickets) {
  for (const NbTicket& t : tickets) {
    auto it = queues_.find({t.gmr_id, t.proc});
    if (it == queues_.end()) continue;
    if (it->second.parked) {
      std::exception_ptr e = std::move(it->second.parked);
      it->second.parked = nullptr;
      return e;
    }
  }
  return nullptr;
}

void NbEngine::run_callbacks(ProcState& st) {
  (void)st;
  if (callbacks_.empty()) return;
  // Collect the ready records and erase them *before* invoking anything: a
  // callback may issue nb ops, wait, or register further callbacks, all of
  // which re-enter this engine.
  std::vector<CallbackRec> ready;
  for (auto it = callbacks_.begin(); it != callbacks_.end();) {
    bool done = true;
    for (const NbTicket& t : it->tickets) {
      const bool ok = it->level == Completion::source ? ticket_issued(t)
                                                      : ticket_complete(t);
      if (!ok) {
        done = false;
        break;
      }
    }
    if (done) {
      ready.push_back(std::move(*it));
      it = callbacks_.erase(it);
    } else {
      ++it;
    }
  }
  for (CallbackRec& cb : ready) cb.fn(take_parked(cb.tickets));
}

}  // namespace armci
