#ifndef ARMCI_GROUPS_HPP
#define ARMCI_GROUPS_HPP

/// \file groups.hpp
/// ARMCI process groups (paper §IV, §V-A).
///
/// ARMCI supports collective and noncollective group creation; both must be
/// backed by an MPI communicator so allocations can create windows on them.
/// Collective creation maps directly to communicator creation over the
/// parent. Noncollective creation -- where only the members participate --
/// cannot be expressed with MPI-2's collective communicator constructors;
/// following the paper (and Dinan et al., EuroMPI'11), it is implemented by
/// recursive intercommunicator creation and merging over O(log n) steps.
///
/// ARMCI communication operates on *absolute* process ids; PGroup provides
/// the translation both ways (ARMCI_Absolute_id).

#include <span>
#include <vector>

#include "src/mpisim/comm.hpp"
#include "src/mpisim/group.hpp"

namespace armci {

/// An ARMCI process group: a member list plus its backing communicator.
class PGroup {
 public:
  PGroup() = default;

  /// Group of all processes (backed by the world communicator).
  static PGroup world();

  /// Collective over the *parent* group (all parent members must call):
  /// create a subgroup of the given members (absolute ids, parent-subset).
  /// Nonmembers receive an invalid PGroup.
  static PGroup create_collective(std::span<const int> members,
                                  const PGroup& parent);

  /// Noncollective creation: only the listed members call, and only they
  /// participate. Backed by recursive intercommunicator merging. \p tag
  /// disambiguates concurrent constructions.
  static PGroup create_noncollective(std::span<const int> members, int tag);

  /// Survivable-mode recovery: collectively build the subgroup of
  /// \p parent's members that are still alive, backed by a ULFM-style
  /// shrink of the parent communicator. Collective over the parent's
  /// *surviving* members only -- dead members are excused, which is what
  /// distinguishes this from create_collective after a failure.
  static PGroup shrink(const PGroup& parent);

  bool valid() const noexcept { return comm_.valid(); }

  /// Number of members.
  int size() const noexcept { return group_.size(); }

  /// Calling process's rank within the group.
  int rank() const;

  /// Absolute (world) process id of group rank \p group_rank
  /// (ARMCI_Absolute_id).
  int absolute_id(int group_rank) const;

  /// Group rank of absolute id \p proc, or -1 if not a member.
  int rank_of(int proc) const noexcept;

  /// The member list (absolute ids, group order).
  const mpisim::Group& group() const noexcept { return group_; }

  /// The backing communicator.
  const mpisim::Comm& comm() const noexcept { return comm_; }

  /// Barrier over the group's members.
  void barrier() const { comm_.barrier(); }

 private:
  PGroup(mpisim::Comm comm, mpisim::Group group);

  mpisim::Comm comm_;
  mpisim::Group group_;
};

}  // namespace armci

#endif  // ARMCI_GROUPS_HPP
