#include "src/armci/metrics.hpp"

#include <bit>
#include <cmath>
#include <cstdarg>
#include <cstdio>

#include "src/armci/state.hpp"
#include "src/mpisim/runtime.hpp"
#include "src/mpisim/trace.hpp"

namespace armci {

const char* op_class_name(OpClass c) noexcept {
  switch (c) {
    case OpClass::put: return "put";
    case OpClass::get: return "get";
    case OpClass::acc: return "acc";
    case OpClass::strided: return "strided";
    case OpClass::iov: return "iov";
    case OpClass::rmw: return "rmw";
    case OpClass::mutex: return "mutex";
  }
  return "?";
}

namespace {

int bucket_of(double ns) noexcept {
  if (!(ns >= 1.0)) return 0;  // sub-ns and NaN land in the first bucket
  const auto n = static_cast<std::uint64_t>(ns);
  const int i = std::bit_width(n) - 1;
  return i >= LatencyHistogram::kBuckets ? LatencyHistogram::kBuckets - 1 : i;
}

double bucket_upper_ns(int i) noexcept {
  return std::ldexp(1.0, i + 1);  // 2^(i+1)
}

}  // namespace

void LatencyHistogram::record(double ns) noexcept {
  if (ns < 0.0) ns = 0.0;
  ++buckets_[static_cast<std::size_t>(bucket_of(ns))];
  ++count_;
  sum_ns_ += ns;
  if (ns > max_ns_) max_ns_ = ns;
}

double LatencyHistogram::percentile(double p) const noexcept {
  if (count_ == 0) return 0.0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  auto target = static_cast<std::uint64_t>(
      std::ceil(p * static_cast<double>(count_)));
  if (target == 0) target = 1;
  std::uint64_t cum = 0;
  for (int i = 0; i < kBuckets; ++i) {
    cum += buckets_[static_cast<std::size_t>(i)];
    if (cum >= target) {
      const double upper = bucket_upper_ns(i);
      return upper < max_ns_ ? upper : max_ns_;
    }
  }
  return max_ns_;
}

void LatencyHistogram::reset() noexcept {
  buckets_.fill(0);
  count_ = 0;
  max_ns_ = 0.0;
  sum_ns_ = 0.0;
}

OpTimer::OpTimer(ProcState& st, OpClass cls, const char* name,
                 std::uint64_t arg)
    : st_(&st),
      cls_(cls),
      name_(name),
      arg_(arg),
      start_ns_(0.0),
      metrics_(st.metrics.enabled()),
      trace_(mpisim::tracer().enabled()) {
  if (metrics_ || trace_) start_ns_ = mpisim::clock().now_ns();
  if (trace_) mpisim::tracer().begin(mpisim::TraceCat::api, name_, arg_);
}

OpTimer::~OpTimer() {
  if (trace_) mpisim::tracer().end(mpisim::TraceCat::api, name_, arg_);
  if (metrics_)
    st_->metrics.record(cls_, mpisim::clock().now_ns() - start_ns_);
}

namespace {

void append(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  out += buf;
}

}  // namespace

std::string metrics_json() {
  ProcState& st = state();
  const Stats& s = stats();  // syncs rma_conflicts from the checker
  (void)st;
  const mpisim::Tracer& tr = mpisim::tracer();

  std::string out;
  out.reserve(2048);
  append(out, "{\"schema\":\"armci-metrics-v1\",\"rank\":%d,", mpisim::rank());

  // Flat operation counters (stats.hpp).
  append(out,
         "\"counters\":{\"puts\":%llu,\"gets\":%llu,\"accs\":%llu,"
         "\"put_bytes\":%llu,\"get_bytes\":%llu,\"acc_bytes\":%llu,"
         "\"strided_ops\":%llu,\"strided_bytes\":%llu,"
         "\"iov_ops\":%llu,\"iov_bytes\":%llu,\"iov_segments\":%llu,"
         "\"rmws\":%llu,\"mutex_locks\":%llu,\"fences\":%llu,"
         "\"barriers\":%llu,\"allocations\":%llu,\"frees\":%llu,"
         "\"dla_epochs\":%llu,\"staged_local_copies\":%llu,"
         "\"transient_faults\":%llu,\"retries\":%llu,"
         "\"retry_exhausted\":%llu,\"rma_conflicts\":%llu,",
         (unsigned long long)s.puts, (unsigned long long)s.gets,
         (unsigned long long)s.accs, (unsigned long long)s.put_bytes,
         (unsigned long long)s.get_bytes, (unsigned long long)s.acc_bytes,
         (unsigned long long)s.strided_ops,
         (unsigned long long)s.strided_bytes, (unsigned long long)s.iov_ops,
         (unsigned long long)s.iov_bytes, (unsigned long long)s.iov_segments,
         (unsigned long long)s.rmws, (unsigned long long)s.mutex_locks,
         (unsigned long long)s.fences, (unsigned long long)s.barriers,
         (unsigned long long)s.allocations, (unsigned long long)s.frees,
         (unsigned long long)s.dla_epochs,
         (unsigned long long)s.staged_local_copies,
         (unsigned long long)s.transient_faults, (unsigned long long)s.retries,
         (unsigned long long)s.retry_exhausted,
         (unsigned long long)s.rma_conflicts);
  // Second half of "counters": nonblocking aggregation, datatype cache, and
  // GA owner pipelining (split across two append calls; one would overflow
  // its buffer).
  append(out,
         "\"nb_ops\":%llu,\"nb_deferred\":%llu,\"nb_eager\":%llu,"
         "\"nb_conflict_flushes\":%llu,\"flushed_queues\":%llu,"
         "\"coalesced_epochs\":%llu,\"dt_cache_hits\":%llu,"
         "\"dt_cache_misses\":%llu,\"ga_multi_owner_ops\":%llu,"
         "\"ga_owner_fanout\":%llu,\"ga_nb_batches\":%llu,",
         (unsigned long long)s.nb_ops, (unsigned long long)s.nb_deferred,
         (unsigned long long)s.nb_eager,
         (unsigned long long)s.nb_conflict_flushes,
         (unsigned long long)s.flushed_queues,
         (unsigned long long)s.coalesced_epochs,
         (unsigned long long)s.dt_cache_hits,
         (unsigned long long)s.dt_cache_misses,
         (unsigned long long)s.ga_multi_owner_ops,
         (unsigned long long)s.ga_owner_fanout,
         (unsigned long long)s.ga_nb_batches);
  // Locality classification of contiguous op targets (third append call:
  // the previous format string is near its 512-byte buffer).
  append(out,
         "\"ops_self\":%llu,\"ops_same_node\":%llu,\"ops_remote\":%llu,"
         "\"failovers\":%llu,\"replica_writes\":%llu},",
         (unsigned long long)s.ops_self, (unsigned long long)s.ops_same_node,
         (unsigned long long)s.ops_remote, (unsigned long long)s.failovers,
         (unsigned long long)s.replica_writes);

  // Active-message layer (src/am): delegate traffic and terminations.
  append(out,
         "\"am\":{\"am_sent\":%llu,\"am_served\":%llu,"
         "\"am_terminations\":%llu},",
         (unsigned long long)s.am_sent, (unsigned long long)s.am_served,
         (unsigned long long)s.am_terminations);

  // Per-op-class virtual-time latency summaries.
  out += "\"ops\":{";
  for (int c = 0; c < kOpClassCount; ++c) {
    const auto cls = static_cast<OpClass>(c);
    const LatencyHistogram& h = st.metrics.op(cls).latency;
    append(out,
           "%s\"%s\":{\"count\":%llu,\"mean_ns\":%.3f,\"p50_ns\":%.3f,"
           "\"p95_ns\":%.3f,\"max_ns\":%.3f}",
           c == 0 ? "" : ",", op_class_name(cls),
           (unsigned long long)h.count(), h.mean_ns(), h.percentile(0.50),
           h.percentile(0.95), h.max_ns());
  }
  out += "},";

  // Per-window lock/epoch counters, annotated with the owning GMR where
  // one is still live (mutex-set windows report with "gmr_id":null).
  out += "\"windows\":[";
  bool first = true;
  for (const auto& [win_id, ws] : tr.win_stats()) {
    long long gmr_id = -1;
    for (const auto& gmr : st.table.all()) {
      if (gmr->win.valid() && gmr->win.id() == win_id) {
        gmr_id = static_cast<long long>(gmr->id);
        break;
      }
    }
    append(out, "%s{\"win_id\":%llu,", first ? "" : ",",
           (unsigned long long)win_id);
    if (gmr_id >= 0)
      append(out, "\"gmr_id\":%lld,", gmr_id);
    else
      out += "\"gmr_id\":null,";
    append(out,
           "\"exclusive_locks\":%llu,\"shared_locks\":%llu,"
           "\"lock_alls\":%llu,\"flushes\":%llu,\"epochs\":%llu}",
           (unsigned long long)ws.exclusive_locks,
           (unsigned long long)ws.shared_locks,
           (unsigned long long)ws.lock_alls, (unsigned long long)ws.flushes,
           (unsigned long long)ws.epochs);
    first = false;
  }
  out += "],";

  // RMA validity checker (mpisim checker.hpp): mode and this rank's
  // violation counters by class. All zero on a correct run.
  {
    const mpisim::RmaChecker& chk = mpisim::ctx().core().checker();
    const mpisim::RmaCheckCounts c = chk.counts(mpisim::rank());
    append(out,
           "\"rma_check\":{\"mode\":\"%s\",\"same_origin\":%llu,"
           "\"concurrent\":%llu,\"acc_mix\":%llu,\"local\":%llu,"
           "\"discipline\":%llu},",
           mpisim::rma_check_name(chk.mode()),
           (unsigned long long)c.same_origin, (unsigned long long)c.concurrent,
           (unsigned long long)c.acc_mix, (unsigned long long)c.local,
           (unsigned long long)c.discipline);
  }

  // Happens-before race detector (mpisim hb.hpp, MPISIM_RMA_CHECK=race):
  // this rank's race counters by class, plus summaries dropped by the
  // shadow-store cap. All zero on a correctly synchronized run.
  {
    const mpisim::HbRaceCounts r =
        mpisim::ctx().core().hb().counts(mpisim::rank());
    append(out,
           "\"rma_race\":{\"ww\":%llu,\"rw\":%llu,\"acc_mix\":%llu,"
           "\"shm\":%llu,\"dead_origin\":%llu,\"overflow\":%llu},",
           (unsigned long long)r.ww, (unsigned long long)r.rw,
           (unsigned long long)r.acc_mix, (unsigned long long)r.shm,
           (unsigned long long)r.dead_origin, (unsigned long long)r.overflow);
  }

  // Survivable-mode recovery gauge: virtual time between the most recently
  // observed peer death and this rank noticing it (failure-aware site or
  // read failover). -1 until a death has been observed here.
  append(out, "\"recovery\":{\"detect_latency_ns\":%.3f},",
         mpisim::ctx().last_detect_latency_ns);

  // Cooperative progress engine (nb.hpp progress_tick): tick/retire
  // counters and the measured compute/communication overlap -- how much
  // virtual communication time the engine hid under application compute.
  append(out,
         "\"progress\":{\"enabled\":%s,\"ticks\":%llu,\"retires\":%llu,"
         "\"overlap_comm_ns\":%.3f,\"overlap_hidden_ns\":%.3f,"
         "\"overlap_efficiency\":%.6f},",
         st.opts.progress ? "true" : "false",
         (unsigned long long)s.progress_ticks,
         (unsigned long long)s.progress_retires, s.overlap_comm_ns,
         s.overlap_hidden_ns, s.overlap_efficiency());

  append(out, "\"trace\":{\"enabled\":%s,\"events\":%llu,\"dropped\":%llu}}",
         tr.enabled() ? "true" : "false",
         (unsigned long long)tr.total_events(),
         (unsigned long long)tr.dropped());
  return out;
}

}  // namespace armci
