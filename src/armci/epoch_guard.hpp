#ifndef ARMCI_EPOCH_GUARD_HPP
#define ARMCI_EPOCH_GUARD_HPP

/// \file epoch_guard.hpp
/// RAII ownership of a passive-target lock epoch.
///
/// The MPI backends open dozens of lock/.../unlock epochs; before fault
/// injection existed a throw between lock and unlock was impossible, but a
/// transient fault or peer crash can now surface mid-epoch. EpochGuard makes
/// every epoch exception-safe: the destructor closes a still-open epoch and
/// swallows any error doing so (the original exception is already in
/// flight, and after an abort the unlock itself may raise Errc::aborted).

#include "src/mpisim/win.hpp"

namespace armci {

class EpochGuard {
 public:
  /// Open an exclusive or shared epoch on \p target of \p win.
  EpochGuard(const mpisim::Win& win, mpisim::LockType type, int target)
      : win_(win), type_(type), target_(target) {
    win_.lock(type_, target_);
    held_ = true;
  }

  ~EpochGuard() {
    if (!held_) return;
    try {
      win_.unlock(target_);
    } catch (...) {
      // Unwinding already; the epoch state dies with the aborted run.
    }
  }

  EpochGuard(const EpochGuard&) = delete;
  EpochGuard& operator=(const EpochGuard&) = delete;

  /// Normal-path close: unlock now, propagating any error.
  void release() {
    held_ = false;
    win_.unlock(target_);
  }

  /// Close and immediately reopen the epoch (batched-IOV epoch splitting).
  void cycle() {
    held_ = false;
    win_.unlock(target_);
    win_.lock(type_, target_);
    held_ = true;
  }

 private:
  const mpisim::Win& win_;
  mpisim::LockType type_;
  int target_;
  bool held_ = false;
};

/// RAII declaration of a direct load/store of window memory
/// (Win::local_access_begin/end). Wraps every place the MPI backend touches
/// global-space memory with host instructions instead of RMA -- staged
/// copies, strided pack/unpack, ARMCI direct-local-access epochs -- so the
/// RMA validity checker sees the access. Taken *inside* the exclusive
/// self-epoch that makes the access legal, the declaration is a no-cost
/// audit record; without such an epoch the checker reports conflicts with
/// concurrent RMA epochs at end time.
class LocalAccessGuard {
 public:
  LocalAccessGuard(const mpisim::Win& win, const void* ptr, std::size_t bytes,
                   bool write)
      : win_(win), ptr_(ptr) {
    win_.local_access_begin(ptr_, bytes, write);
    held_ = true;
  }

  ~LocalAccessGuard() {
    if (!held_) return;
    try {
      win_.local_access_end(ptr_);
    } catch (...) {
      // Unwinding already; the deferred report dies with the aborted run.
    }
  }

  LocalAccessGuard(const LocalAccessGuard&) = delete;
  LocalAccessGuard& operator=(const LocalAccessGuard&) = delete;

  /// Normal-path close: end the access now, propagating any violation
  /// report (Errc::rma_conflict in abort mode).
  void release() {
    held_ = false;
    win_.local_access_end(ptr_);
  }

 private:
  const mpisim::Win& win_;
  const void* ptr_;
  bool held_ = false;
};

}  // namespace armci

#endif  // ARMCI_EPOCH_GUARD_HPP
