#include "src/armci/state.hpp"

#include "src/mpisim/error.hpp"
#include "src/mpisim/runtime.hpp"

namespace armci {

ProcState& state() {
  auto* st = state_if_initialized();
  if (st == nullptr)
    mpisim::raise(mpisim::Errc::invalid_argument,
                  "ARMCI is not initialized on this process");
  return *st;
}

ProcState* state_if_initialized() noexcept {
  if (!mpisim::in_simulation()) return nullptr;
  return static_cast<ProcState*>(mpisim::ctx().user_state);
}

}  // namespace armci
