#ifndef ARMCI_BACKEND_NATIVE_HPP
#define ARMCI_BACKEND_NATIVE_HPP

/// \file backend_native.hpp
/// The "ARMCI-Native" baseline: a model of the aggressively tuned vendor
/// ARMCI implementations the paper compares against.
///
/// Data movement is direct remote-memory access (the simulator's shared
/// address space stands in for RDMA), costed on the native path of the
/// platform profile: no epoch overheads, pre-pinned allocations, a
/// communication-helper-thread (CHT) rate for accumulates, and per-segment
/// costs for the natively tuned strided/IOV engines. Semantics follow
/// ARMCI: put/acc are *locally* complete on return and remotely complete
/// only after fence(); get is fully complete on return; mutexes and RMW are
/// serviced host-side (CHT), and direct local access needs no epochs.

#include <set>

#include "src/armci/backend.hpp"

namespace armci {

class NativeBackend final : public CommBackend {
 public:
  explicit NativeBackend(ProcState* st) : st_(st) {}

  void gmr_created(Gmr& gmr) override;
  void gmr_freeing(Gmr& gmr) override;

  void contig(OneSided kind, const GmrLoc& loc, void* local,
              std::size_t bytes, AccType at, const void* scale) override;
  void iov(OneSided kind, std::span<const Giov> vec, int proc, AccType at,
           const void* scale) override;
  void strided(OneSided kind, const void* src, void* dst,
               const StridedSpec& spec, int proc, AccType at,
               const void* scale) override;

  void fence(int proc) override;
  void fence_all() override;

  void rmw(RmwOp op, void* ploc, void* prem, std::int64_t extra,
           int proc) override;

  void mutexes_create(int count) override;
  void mutexes_destroy() override;
  void mutex_lock(int m, int proc) override;
  void mutex_unlock(int m, int proc) override;

  void access_begin(const GmrLoc& loc) override;
  void access_end(const GmrLoc& loc) override;

 private:
  /// Move one segment directly (under the simulator's global lock). The
  /// <gmr, target_rank, offset> locate the remote bytes for the race
  /// detector: native transfers never open an epoch, so each segment is
  /// checked and published as one atomic direct access.
  void move_segment(OneSided kind, const Gmr& gmr, int target_rank,
                    std::size_t offset, void* remote, void* local,
                    std::size_t bytes, AccType at, const void* scale) const;

  /// True if the local buffer came from the pre-pinned pool (ARMCI_Malloc /
  /// ARMCI_Malloc_local); unpinned buffers take the slower path (Fig. 5).
  bool local_pinned(const void* p, std::size_t bytes) const;

  ProcState* st_;
  std::set<int> pending_remote_;  ///< targets with un-fenced put/acc
};

}  // namespace armci

#endif  // ARMCI_BACKEND_NATIVE_HPP
