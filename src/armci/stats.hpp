#ifndef ARMCI_STATS_HPP
#define ARMCI_STATS_HPP

/// \file stats.hpp
/// Per-process operation statistics (the analogue of ARMCI's profiling
/// interface). Counters are incremented at the public API layer, so they
/// are backend-independent: one put() is one put regardless of how the
/// backend maps it onto epochs or datatypes. Useful for performance
/// debugging ("how many strided operations did this GA_Put decompose
/// into?") and exercised by the test suite to pin down the decomposition
/// behaviour of the layers above.

#include <cstdint>

namespace armci {

/// Cumulative operation counters for the calling process.
struct Stats {
  // Contiguous one-sided operations and payload bytes.
  std::uint64_t puts = 0;
  std::uint64_t gets = 0;
  std::uint64_t accs = 0;
  std::uint64_t put_bytes = 0;
  std::uint64_t get_bytes = 0;
  std::uint64_t acc_bytes = 0;

  // Noncontiguous operations (one per ARMCI_PutS/GetS/AccS or
  // ARMCI_PutV/GetV/AccV call) and their payload bytes.
  std::uint64_t strided_ops = 0;
  std::uint64_t strided_bytes = 0;
  std::uint64_t iov_ops = 0;
  std::uint64_t iov_bytes = 0;
  std::uint64_t iov_segments = 0;

  // Locality of contiguous one-sided operations (blocking and deferred)
  // under the NetworkModel's node map: target is the calling process
  // itself, a co-located process (same node), or a remote node. self and
  // same_node ops are eligible for the backend's shared-memory fast path.
  std::uint64_t ops_self = 0;
  std::uint64_t ops_same_node = 0;
  std::uint64_t ops_remote = 0;

  // Synchronization and atomics.
  std::uint64_t rmws = 0;
  std::uint64_t mutex_locks = 0;
  std::uint64_t fences = 0;
  std::uint64_t barriers = 0;

  // Direct local access epochs (ARMCI_Access_begin/end pairs, paper §V-E).
  std::uint64_t dla_epochs = 0;

  // Staging copies of local buffers that themselves live in global space
  // (paper §V-E1): each one is an extra exclusive self-epoch plus a memcpy,
  // so this counter exposes a hidden cost of the MPI mapping.
  std::uint64_t staged_local_copies = 0;

  // Memory management.
  std::uint64_t allocations = 0;
  std::uint64_t frees = 0;

  // RMA validity violations attributed to this process since the last
  // reset_stats() (mpisim checker, Config::rma_check): conflicting access
  // pairs, undisciplined direct local accesses, and lock-state misuse. Zero
  // on every correct run; synced from the checker's counters by stats().
  std::uint64_t rma_conflicts = 0;

  // Happens-before races attributed to this process since the last
  // reset_stats() (mpisim::HbChecker, MPISIM_RMA_CHECK=race): conflicting
  // access pairs unordered by any synchronization edge. Zero on every
  // correctly synchronized run; synced from the detector by stats().
  std::uint64_t rma_races = 0;

  // Fault handling (mpisim::FaultPlan injection): transient faults hit,
  // epochs retried after one, and operations that exhausted their retry
  // budget and surfaced the error.
  std::uint64_t transient_faults = 0;
  std::uint64_t retries = 0;
  std::uint64_t retry_exhausted = 0;

  // Survivable-mode recovery (mpisim::FaultPlan::survivable): GA reads
  // transparently redirected to a buddy replica because the owner died, and
  // write-through copies pushed to replica tiles of replicated arrays.
  std::uint64_t failovers = 0;
  std::uint64_t replica_writes = 0;

  // Nonblocking aggregation engine (nb.hpp): nb_* API calls, how many were
  // deferred into a queue vs executed eagerly, queue drains forced by a
  // conflicting enqueue (location consistency), total queue drains, and
  // drains that coalesced >= 2 ops into one backend epoch.
  std::uint64_t nb_ops = 0;
  std::uint64_t nb_deferred = 0;
  std::uint64_t nb_eager = 0;
  std::uint64_t nb_conflict_flushes = 0;
  std::uint64_t flushed_queues = 0;
  std::uint64_t coalesced_epochs = 0;

  // Cooperative progress engine (nb.hpp progress_tick, Options::progress):
  // persona ticks fired (from SimClock compute intervals and explicit
  // armci::progress() pokes) and queues retired from a tick rather than a
  // blocking completion point.
  std::uint64_t progress_ticks = 0;
  std::uint64_t progress_retires = 0;

  // Compute/communication overlap measured by the virtual clock
  // (SimClock::advance_compute): virtual time spent communicating inside
  // progress ticks, and the share of it that fell under compute the
  // application had already paid for -- i.e. latency the engine hid.
  double overlap_comm_ns = 0.0;
  double overlap_hidden_ns = 0.0;

  /// Fraction of progress-engine communication time hidden under
  /// application compute (0 when the engine never ran). 1.0 = perfect
  /// overlap: every communication nanosecond was paid for by compute.
  double overlap_efficiency() const noexcept {
    return overlap_comm_ns > 0.0 ? overlap_hidden_ns / overlap_comm_ns : 0.0;
  }

  // Active-message layer (src/am): requests sent (rpc + fire-and-forget
  // delegates), inbound requests served by this process's progress
  // persona, and termination-detection waits completed (am::quiesce).
  std::uint64_t am_sent = 0;
  std::uint64_t am_served = 0;
  std::uint64_t am_terminations = 0;

  // Derived-datatype cache (dtype_cache.hpp) in the direct strided/IOV
  // paths: lookups served from the cache vs types built fresh.
  std::uint64_t dt_cache_hits = 0;
  std::uint64_t dt_cache_misses = 0;

  // GA-layer owner pipelining (ga/ga.cpp, ga/ga_gather.cpp): region or
  // element accesses that decomposed into >= 2 owners, the total owner
  // fan-out summed over those accesses (fanout / ops = mean owners per
  // multi-owner access), and the per-owner batches such accesses issued
  // through the nonblocking aggregation engine rather than as blocking
  // per-owner epochs.
  std::uint64_t ga_multi_owner_ops = 0;
  std::uint64_t ga_owner_fanout = 0;
  std::uint64_t ga_nb_batches = 0;

  /// Total one-sided data volume (all op classes).
  std::uint64_t total_bytes() const noexcept {
    return put_bytes + get_bytes + acc_bytes + strided_bytes + iov_bytes;
  }
};

/// Counters of the calling process (valid between init() and finalize()).
const Stats& stats();

/// Zero the calling process's counters.
void reset_stats();

}  // namespace armci

#endif  // ARMCI_STATS_HPP
