#ifndef MPISIM_CLOCK_HPP
#define MPISIM_CLOCK_HPP

/// \file clock.hpp
/// Per-rank virtual clocks.
///
/// The simulator models performance in *virtual time*: every communication
/// action charges nanoseconds (per the active PlatformProfile) to the
/// initiating rank's SimClock, and synchronizing operations reconcile clocks
/// (a receive cannot complete before the matching send's timestamp plus the
/// modeled flight time; a barrier advances everyone to the max). Benchmarks
/// read elapsed virtual time instead of wall-clock time, which makes every
/// figure deterministic and independent of host load.

#include <algorithm>
#include <cstdint>
#include <functional>
#include <utility>

namespace mpisim {

/// A monotonically advancing virtual clock, owned by exactly one rank
/// (its own thread); other ranks may only read a published snapshot.
///
/// The clock doubles as the scheduling point for the rank's cooperative
/// progress engine: a hook installed with set_progress_hook() fires every
/// `interval_ns` of virtual *compute* time charged through
/// advance_compute(). Communication time the hook itself charges counts as
/// overlapped with the surrounding compute -- the clock absorbs
/// min(hook_delta, remaining_compute) of it (total elapsed approximates
/// max(compute, comm), the ideal-overlap model) and tracks both sides in
/// the progress_comm_ns()/progress_hidden_ns() gauges.
class SimClock {
 public:
  SimClock() = default;

  /// Current virtual time in nanoseconds since simulation start.
  double now_ns() const noexcept { return now_ns_; }

  /// Advance by a nonnegative delta (negative deltas are clamped to zero).
  /// Never fires the progress hook: plain advances happen inside backend
  /// code paths (often under the simulator's global lock) where re-entering
  /// the communication engine would deadlock.
  void advance(double delta_ns) noexcept {
    if (delta_ns > 0) now_ns_ += delta_ns;
  }

  /// Advance by \p delta_ns of application *compute* time, firing the
  /// progress hook at every `interval_ns` boundary crossed. Not noexcept:
  /// the hook runs user-visible communication and may throw (the compute
  /// charge and overlap accounting are completed before rethrowing).
  void advance_compute(double delta_ns) {
    if (!(delta_ns > 0)) return;
    if (!hook_ || in_hook_ || !(interval_ns_ > 0)) {
      advance(delta_ns);
      return;
    }
    double remaining = delta_ns;
    if (next_tick_ns_ <= now_ns_) next_tick_ns_ = now_ns_ + interval_ns_;
    while (remaining > 0) {
      const double to_tick = next_tick_ns_ - now_ns_;
      if (remaining < to_tick) {
        now_ns_ += remaining;
        return;
      }
      now_ns_ = next_tick_ns_;
      remaining -= to_tick;
      const double t0 = now_ns_;
      in_hook_ = true;
      try {
        hook_();
      } catch (...) {
        in_hook_ = false;
        hide(now_ns_ - t0, remaining);
        throw;
      }
      in_hook_ = false;
      hide(now_ns_ - t0, remaining);
    }
  }

  /// Install the per-rank progress hook (see advance_compute()). The hook
  /// must be re-entry safe at the call site; the clock itself suppresses
  /// recursive firing.
  void set_progress_hook(std::function<void()> hook, double interval_ns) {
    hook_ = std::move(hook);
    interval_ns_ = interval_ns;
    next_tick_ns_ = 0.0;
  }

  /// Remove the progress hook (rank teardown).
  void clear_progress_hook() noexcept {
    hook_ = nullptr;
    interval_ns_ = 0.0;
    next_tick_ns_ = 0.0;
  }

  /// Credit \p delta_ns of communication time driven by an explicit
  /// progress poke (armci::progress()) to the comm gauge. Not hidden:
  /// the poke ran in the caller's own time, not under compute.
  void note_progress_comm(double delta_ns) noexcept {
    if (delta_ns > 0) progress_comm_ns_ += delta_ns;
  }

  /// Communication virtual time charged from progress ticks and pokes.
  double progress_comm_ns() const noexcept { return progress_comm_ns_; }

  /// The subset of progress_comm_ns() that was absorbed into (hidden
  /// under) surrounding compute time. hidden/comm is overlap efficiency.
  double progress_hidden_ns() const noexcept { return progress_hidden_ns_; }

  /// Move forward to at least \p t_ns (never moves backward).
  void advance_to(double t_ns) noexcept { now_ns_ = std::max(now_ns_, t_ns); }

  /// Reset to zero (benchmark harness use only, between measurement phases).
  void reset() noexcept {
    now_ns_ = 0.0;
    next_tick_ns_ = 0.0;
    progress_comm_ns_ = 0.0;
    progress_hidden_ns_ = 0.0;
  }

 private:
  /// Account a progress tick that charged \p comm_ns: overlap it with the
  /// remaining compute budget and rebase the next tick boundary.
  void hide(double comm_ns, double& remaining) noexcept {
    next_tick_ns_ = now_ns_ + interval_ns_;
    if (comm_ns <= 0) return;
    progress_comm_ns_ += comm_ns;
    const double hidden = std::min(comm_ns, remaining);
    progress_hidden_ns_ += hidden;
    remaining -= hidden;
  }

  double now_ns_ = 0.0;
  std::function<void()> hook_;
  double interval_ns_ = 0.0;
  double next_tick_ns_ = 0.0;
  bool in_hook_ = false;
  double progress_comm_ns_ = 0.0;
  double progress_hidden_ns_ = 0.0;
};

/// Elapsed virtual seconds between two clock readings.
inline double elapsed_seconds(double start_ns, double end_ns) noexcept {
  return (end_ns - start_ns) * 1e-9;
}

}  // namespace mpisim

#endif  // MPISIM_CLOCK_HPP
