#ifndef MPISIM_CLOCK_HPP
#define MPISIM_CLOCK_HPP

/// \file clock.hpp
/// Per-rank virtual clocks.
///
/// The simulator models performance in *virtual time*: every communication
/// action charges nanoseconds (per the active PlatformProfile) to the
/// initiating rank's SimClock, and synchronizing operations reconcile clocks
/// (a receive cannot complete before the matching send's timestamp plus the
/// modeled flight time; a barrier advances everyone to the max). Benchmarks
/// read elapsed virtual time instead of wall-clock time, which makes every
/// figure deterministic and independent of host load.

#include <algorithm>
#include <cstdint>

namespace mpisim {

/// A monotonically advancing virtual clock, owned by exactly one rank
/// (its own thread); other ranks may only read a published snapshot.
class SimClock {
 public:
  SimClock() = default;

  /// Current virtual time in nanoseconds since simulation start.
  double now_ns() const noexcept { return now_ns_; }

  /// Advance by a nonnegative delta (negative deltas are clamped to zero).
  void advance(double delta_ns) noexcept {
    if (delta_ns > 0) now_ns_ += delta_ns;
  }

  /// Move forward to at least \p t_ns (never moves backward).
  void advance_to(double t_ns) noexcept { now_ns_ = std::max(now_ns_, t_ns); }

  /// Reset to zero (benchmark harness use only, between measurement phases).
  void reset() noexcept { now_ns_ = 0.0; }

 private:
  double now_ns_ = 0.0;
};

/// Elapsed virtual seconds between two clock readings.
inline double elapsed_seconds(double start_ns, double end_ns) noexcept {
  return (end_ns - start_ns) * 1e-9;
}

}  // namespace mpisim

#endif  // MPISIM_CLOCK_HPP
