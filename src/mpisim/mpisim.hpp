#ifndef MPISIM_MPISIM_HPP
#define MPISIM_MPISIM_HPP

/// \file mpisim.hpp
/// Umbrella header for the simulated MPI runtime.
///
/// mpisim is a from-scratch, thread-per-rank substitute for an MPI-2 library
/// (see DESIGN.md §2): communicators with two-sided messaging and
/// collectives, derived datatypes, and passive-target RMA windows with
/// MPI-2's strict semantics enforced. Performance is modeled in virtual
/// time against per-platform profiles.

#include "src/mpisim/clock.hpp"
#include "src/mpisim/comm.hpp"
#include "src/mpisim/datatype.hpp"
#include "src/mpisim/error.hpp"
#include "src/mpisim/group.hpp"
#include "src/mpisim/mailbox.hpp"
#include "src/mpisim/netmodel.hpp"
#include "src/mpisim/op.hpp"
#include "src/mpisim/platform.hpp"
#include "src/mpisim/registration.hpp"
#include "src/mpisim/runtime.hpp"
#include "src/mpisim/win.hpp"

#endif  // MPISIM_MPISIM_HPP
