#include "src/mpisim/error.hpp"

namespace mpisim {

const char* errc_name(Errc e) noexcept {
  switch (e) {
    case Errc::internal: return "internal";
    case Errc::invalid_argument: return "invalid_argument";
    case Errc::rank_out_of_range: return "rank_out_of_range";
    case Errc::type_mismatch: return "type_mismatch";
    case Errc::truncation: return "truncation";
    case Errc::window_bounds: return "window_bounds";
    case Errc::no_epoch: return "no_epoch";
    case Errc::double_lock: return "double_lock";
    case Errc::not_locked: return "not_locked";
    case Errc::conflicting_access: return "conflicting_access";
    case Errc::rma_conflict: return "rma_conflict";
    case Errc::rma_race: return "rma_race";
    case Errc::comm_mismatch: return "comm_mismatch";
    case Errc::aborted: return "aborted";
    case Errc::wait_timeout: return "wait_timeout";
    case Errc::transient: return "transient";
    case Errc::resource_exhausted: return "resource_exhausted";
    case Errc::crashed: return "crashed";
    case Errc::revoked: return "revoked";
  }
  return "unknown";
}

MpiError::MpiError(Errc code, const std::string& what)
    : std::runtime_error(std::string("[") + errc_name(code) + "] " + what),
      code_(code) {}

void raise(Errc code, const std::string& detail) {
  throw MpiError(code, "mpisim: " + detail);
}

void require_internal(bool cond, const char* what) {
  if (!cond) raise(Errc::internal, what);
}

}  // namespace mpisim
