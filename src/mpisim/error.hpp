#ifndef MPISIM_ERROR_HPP
#define MPISIM_ERROR_HPP

/// \file error.hpp
/// Error classification for the simulated MPI runtime.
///
/// The simulator enforces MPI-2 semantics strictly: violations that a real
/// MPI library declares "erroneous" (conflicting accesses in an epoch,
/// double-locking a window, type mismatches) raise MpiError here, so the
/// layers above (ARMCI-MPI) must actually implement the paper's avoidance
/// machinery rather than relying on the shared-memory substrate's leniency.

#include <stdexcept>
#include <string>

namespace mpisim {

/// Error classes reported by the simulated runtime.
enum class Errc {
  internal,            ///< bug in the simulator itself
  invalid_argument,    ///< bad count / rank / displacement / datatype
  rank_out_of_range,   ///< rank not in communicator
  type_mismatch,       ///< send/recv or origin/target datatype size mismatch
  truncation,          ///< receive buffer too small for matched message
  window_bounds,       ///< RMA access outside the target window
  no_epoch,            ///< RMA op issued outside a passive-target epoch
  double_lock,         ///< origin already holds a lock on this window
  not_locked,          ///< unlock without a matching lock
  conflicting_access,  ///< conflicting RMA accesses within/between epochs
  rma_conflict,        ///< deferred rma_check violation reported at
                       ///< unlock/flush/local-access-end (checker.hpp)
  rma_race,            ///< conflicting accesses unordered by happens-before
                       ///< (vector-clock race detector, hb.hpp)
  comm_mismatch,       ///< operation on the wrong communicator kind
  aborted,             ///< another rank failed; collective shutdown
  wait_timeout,        ///< blocking wait hit its deadline or a deadlock
  transient,           ///< injected retryable fault (fault.hpp)
  resource_exhausted,  ///< eager-send buffering at the destination mailbox
                       ///< would exceed Config::mailbox_cap_bytes
  crashed,             ///< this rank was killed by the fault plan, or the
                       ///< operation's target rank is dead (survivable mode)
  revoked,             ///< communicator revoked (ULFM-style Comm::revoke)
};

/// Human-readable name of an error class.
const char* errc_name(Errc e) noexcept;

/// Exception thrown for all simulated-MPI errors. what() is prefixed with
/// "[<errc_name>] " so ctest logs identify the error class without a
/// debugger.
class MpiError : public std::runtime_error {
 public:
  MpiError(Errc code, const std::string& what);

  /// Error class of this failure.
  Errc code() const noexcept { return code_; }

 private:
  Errc code_;
};

/// Throw MpiError(code) with a formatted message.
[[noreturn]] void raise(Errc code, const std::string& detail);

/// Internal invariant check; throws Errc::internal on failure.
void require_internal(bool cond, const char* what);

}  // namespace mpisim

#endif  // MPISIM_ERROR_HPP
