#ifndef MPISIM_WIN_HPP
#define MPISIM_WIN_HPP

/// \file win.hpp
/// Passive-target one-sided communication (MPI-2 RMA windows).
///
/// This is the API surface the paper's ARMCI-MPI port is written against,
/// with MPI-2 semantics enforced rather than merely documented:
///
///  - All data access must happen inside a passive-target access epoch
///    (lock() ... unlock()); an op outside an epoch raises Errc::no_epoch.
///  - An origin may hold at most one lock per window at a time; a second
///    lock() raises Errc::double_lock. This is the restriction that forces
///    ARMCI-MPI to stage communication whose *local* buffer is itself in
///    global space through a temporary buffer (paper §V-E1).
///  - Exclusive locks serialize with all other epochs on the target;
///    shared locks admit concurrent origins.
///  - Conflicting accesses (put/get overlap, put/put overlap, accumulate
///    mixed with put/get, accumulates with different ops on the same
///    location) -- whether within one epoch or across concurrent shared
///    epochs -- are *erroneous* in MPI-2; with Config::check_conflicts the
///    simulator detects them and raises Errc::conflicting_access.
///  - Operations complete (locally and remotely) at unlock(); there is no
///    separate local-completion event, matching MPI-2.
///
/// Virtual-time accounting: lock/unlock charge epoch overheads, each
/// operation charges per-op issue cost, datatype-processing cost per
/// segment, serialization at the modeled MPI RMA bandwidth, and (on
/// registration-managed platforms) on-demand pinning of the local buffer.

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "src/mpisim/comm.hpp"
#include "src/mpisim/datatype.hpp"

namespace mpisim {

/// Passive-target lock modes.
enum class LockType { shared, exclusive };

namespace detail {
struct WinImpl;
}

/// RAII scope that overlaps the initiator-blocked round-trip costs of
/// passive-target epochs opened to *distinct* targets.
///
/// Outside a scope, every lock/unlock (and MPI-3 flush) advances the
/// caller's virtual clock by the full request/acknowledge round trip, so k
/// epochs to k different targets serialize into k round trips even though a
/// real nonblocking runtime would have all k requests in flight at once.
/// Inside a scope those round-trip charges are diverted into per-(window,
/// target) chains instead; charges to the same target still sum (they
/// genuinely serialize at that target), and the scope's destructor advances
/// the clock once by the *longest* chain. Data-transfer, packing, and
/// target-occupancy costs are never diverted -- they stay serial on the
/// initiator -- and neither is the busy-until serialization of exclusive
/// locks, so contention semantics are unchanged.
///
/// Used by the ARMCI nonblocking aggregation engine when one completion
/// point drains queues bound for several targets (the GA layer's per-owner
/// pipelining). Scopes nest; an inner scope charges its own maximum at its
/// own exit. One rank is one simulator thread, so the active scope is
/// thread-local.
class EpochPipeline {
 public:
  EpochPipeline();
  ~EpochPipeline();
  EpochPipeline(const EpochPipeline&) = delete;
  EpochPipeline& operator=(const EpochPipeline&) = delete;

  /// The innermost scope on the calling rank, or nullptr.
  static EpochPipeline* active() noexcept;

  /// Divert \p ns of round-trip wait bound for \p target_rank of window
  /// \p win_id into that target's chain.
  void defer_round_trip(std::uint64_t win_id, int target_rank, double ns);

  /// Longest chain accumulated so far (what the destructor will charge).
  double pending_ns() const noexcept;

 private:
  struct Chain {
    std::uint64_t win_id = 0;
    int target_rank = -1;
    double ns = 0.0;
  };
  std::vector<Chain> chains_;
  EpochPipeline* prev_ = nullptr;
};

/// Value handle to an RMA window. Cheap to copy; all copies refer to the
/// same collective window object.
class Win {
 public:
  Win() = default;

  /// Collectively create a window over \p comm exposing [base, base+bytes)
  /// on the calling rank. \p base may be null iff bytes == 0.
  static Win create(void* base, std::size_t bytes, const Comm& comm);

  /// Collectively allocate a shared-memory window exposing \p bytes on the
  /// calling rank (MPI_Win_allocate_shared with a node-spanning twist: one
  /// allocation per *node* of the NetworkModel's node map, with each
  /// co-located rank's segment carved out of its node's block). Ranks the
  /// model places on the same node may access each other's segments with
  /// direct loads and stores -- shm_put/shm_get/shm_acc -- without opening
  /// an epoch; cross-node access still requires ordinary RMA. The window
  /// owns the memory; base(rank) exposes each segment.
  static Win allocate_shared(std::size_t bytes, const Comm& comm);

  /// True when the window was created by allocate_shared().
  bool shared_memory() const noexcept;

  /// Collectively destroy the window. All epochs must be closed.
  void free();

  bool valid() const noexcept { return impl_ != nullptr; }

  /// Open a passive-target access epoch on \p target_rank.
  void lock(LockType type, int target_rank) const;

  /// Close the epoch on \p target_rank; completes all its operations.
  void unlock(int target_rank) const;

  // ---- MPI-3 epochless passive mode (paper §VIII-B) ----

  /// Open one shared-mode access epoch on *every* target at once
  /// (MPI_Win_lock_all). Cannot be combined with lock() by the same origin;
  /// close with unlock_all(). Together with flush() this is the epochless
  /// communication mode the MPI-3 RMA proposal introduced.
  void lock_all() const;

  /// Close the lock_all() epoch, completing all outstanding operations.
  void unlock_all() const;

  /// Complete all outstanding operations to \p target_rank without closing
  /// the epoch (MPI_Win_flush).
  void flush(int target_rank) const;

  /// flush() to every target (MPI_Win_flush_all).
  void flush_all() const;

  /// Contiguous byte put/get convenience wrappers.
  void put(const void* origin, std::size_t bytes, int target_rank,
           std::size_t target_disp) const;
  void get(void* origin, std::size_t bytes, int target_rank,
           std::size_t target_disp) const;

  /// General typed put: origin described by (origin, count, type), target
  /// by byte displacement + (count, type) relative to the target base.
  void put(const void* origin, std::size_t origin_count,
           const Datatype& origin_type, int target_rank,
           std::size_t target_disp, std::size_t target_count,
           const Datatype& target_type) const;

  void get(void* origin, std::size_t origin_count, const Datatype& origin_type,
           int target_rank, std::size_t target_disp, std::size_t target_count,
           const Datatype& target_type) const;

  /// Typed accumulate; \p op is applied element-wise at the target
  /// (Op::replace gives MPI_REPLACE).
  void accumulate(const void* origin, std::size_t origin_count,
                  const Datatype& origin_type, int target_rank,
                  std::size_t target_disp, std::size_t target_count,
                  const Datatype& target_type, Op op) const;

  // ---- MPI-3 atomic read-modify-write (paper §VIII-B) ----

  /// Atomically fetch the target data into \p result and combine \p origin
  /// into the target with \p op (MPI_Get_accumulate). Op::no_op with a null
  /// \p origin is an atomic fetch. Accumulate-class operations are
  /// element-atomic with respect to each other; no_op mixes with any other
  /// accumulate operator (MPI's same_op_no_op rule).
  void get_accumulate(const void* origin, void* result, std::size_t count,
                      const Datatype& type, int target_rank,
                      std::size_t target_disp, Op op) const;

  /// Single-element atomic fetch-and-op (MPI_Fetch_and_op).
  void fetch_and_op(const void* origin, void* result, BasicType type,
                    int target_rank, std::size_t target_disp, Op op) const;

  /// Single-element atomic compare-and-swap (MPI_Compare_and_swap): the
  /// target value is fetched into \p result, and replaced by \p origin iff
  /// it equals \p compare.
  void compare_and_swap(const void* origin, const void* compare, void* result,
                        BasicType type, int target_rank,
                        std::size_t target_disp) const;

  // ---- same-node direct access (shared-memory windows only) ----

  /// Direct store of \p bytes from \p origin into the segment of co-located
  /// \p target_rank at byte displacement \p target_disp. No epoch is taken
  /// and no lock/flush round trip is charged -- only the intra-node copy
  /// cost (NetworkModel::shm_copy_ns). Raises Errc::invalid_argument unless
  /// the window is shared_memory() and the target is on the caller's node.
  /// The RMA checker records the access (RmaChecker::shm_begin) and reports
  /// races against in-flight RMA on the same bytes.
  void shm_put(const void* origin, std::size_t bytes, int target_rank,
               std::size_t target_disp) const;

  /// Direct load counterpart of shm_put.
  void shm_get(void* origin, std::size_t bytes, int target_rank,
               std::size_t target_disp) const;

  /// Direct accumulate: applies \p op element-wise (element type \p type)
  /// into the co-located target's segment. Executed atomically with respect
  /// to RMA accumulates (the CPU-atomic path), so it conflicts only under
  /// the accumulate-mixing rules. \p bytes must be a multiple of the
  /// element size.
  void shm_acc(Op op, BasicType type, const void* origin, std::size_t bytes,
               int target_rank, std::size_t target_disp) const;

  /// Declare a held-open direct load/store of co-located \p target_rank's
  /// segment [target_disp, target_disp + bytes): the shared-memory analogue
  /// of local_access_begin for access that outlives one call (ARMCI access
  /// epochs onto a same-node slice). The checker reports conflicting RMA
  /// issued while the declaration is open.
  void shm_access_begin(int target_rank, std::size_t target_disp,
                        std::size_t bytes, bool write) const;

  /// End the declaration opened at \p target_disp; reports its pending
  /// violations (Errc::rma_conflict in abort mode).
  void shm_access_end(int target_rank, std::size_t target_disp) const;

  // ---- direct local access declaration (RMA validity checking) ----

  /// Declare that the caller is about to load/store [ptr, ptr+bytes) of its
  /// window memory directly (bytes == 0 extends to the end of the slice).
  /// With an exclusive self-epoch held -- the ARMCI DLA discipline -- the
  /// access is safe; otherwise the RMA checker (Config::rma_check) records
  /// it and reports conflicts with concurrent RMA epochs at
  /// local_access_end(). No-op when ptr is not window memory or checking is
  /// off.
  void local_access_begin(const void* ptr, std::size_t bytes,
                          bool write) const;

  /// End the direct access declared at \p ptr; reports its pending
  /// violations (Errc::rma_conflict in abort mode).
  void local_access_end(const void* ptr) const;

  /// Local base address exposed by \p rank (window-group rank). The caller
  /// must hold an appropriate epoch to actually dereference remote memory.
  void* base(int rank) const;

  /// Bytes exposed by \p rank.
  std::size_t size(int rank) const;

  /// The communicator the window was created over.
  Comm comm() const;

  /// Unique id (diagnostics).
  std::uint64_t id() const noexcept;

  bool operator==(const Win& other) const noexcept {
    return impl_ == other.impl_;
  }

 private:
  explicit Win(std::shared_ptr<detail::WinImpl> impl);

  enum class OpKind { put, get, acc };
  void rma_op(OpKind kind, const void* origin, std::size_t origin_count,
              const Datatype& origin_type, int target_rank,
              std::size_t target_disp, std::size_t target_count,
              const Datatype& target_type, Op op) const;
  void shm_op(OpKind kind, Op op, BasicType type, const void* origin,
              std::size_t bytes, int target_rank,
              std::size_t target_disp) const;

  std::shared_ptr<detail::WinImpl> impl_;
};

}  // namespace mpisim

#endif  // MPISIM_WIN_HPP
