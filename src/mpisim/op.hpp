#ifndef MPISIM_OP_HPP
#define MPISIM_OP_HPP

/// \file op.hpp
/// Predefined element types and reduction operators.
///
/// These mirror the MPI basic datatypes and reduction ops used by the
/// ARMCI-MPI port: accumulate and allreduce are defined element-wise over a
/// BasicType, and Op::replace gives MPI_REPLACE semantics (put-like
/// accumulate).

#include <cstddef>
#include <cstdint>

namespace mpisim {

/// Element types understood by reductions and accumulate.
enum class BasicType : std::uint8_t {
  byte_,
  int32,
  int64,
  uint64,
  float32,
  float64,
};

/// Size in bytes of one element of \p t.
std::size_t basic_type_size(BasicType t) noexcept;

/// Printable name ("double", "int", ...).
const char* basic_type_name(BasicType t) noexcept;

/// Reduction / accumulate operators.
enum class Op : std::uint8_t {
  sum,
  prod,
  min,
  max,
  replace,  ///< MPI_REPLACE: target <- origin
  no_op,    ///< MPI_NO_OP: target unchanged (fetch-only accumulates)
  land,     ///< logical AND (integer types)
  lor,      ///< logical OR (integer types)
  band,     ///< bitwise AND (integer types)
  bor,      ///< bitwise OR (integer types)
};

/// Printable name of an operator.
const char* op_name(Op op) noexcept;

/// Apply \p op element-wise: dst[i] = dst[i] OP src[i] for count elements
/// of type \p t. Throws Errc::invalid_argument for undefined combinations
/// (e.g. bitwise ops on floating types).
void apply_op(Op op, BasicType t, void* dst, const void* src, std::size_t count);

/// C++ type -> BasicType mapping for templated call sites.
template <typename T>
constexpr BasicType basic_type_of();

template <> constexpr BasicType basic_type_of<std::uint8_t>() { return BasicType::byte_; }
template <> constexpr BasicType basic_type_of<std::int32_t>() { return BasicType::int32; }
template <> constexpr BasicType basic_type_of<std::int64_t>() { return BasicType::int64; }
template <> constexpr BasicType basic_type_of<std::uint64_t>() { return BasicType::uint64; }
template <> constexpr BasicType basic_type_of<float>() { return BasicType::float32; }
template <> constexpr BasicType basic_type_of<double>() { return BasicType::float64; }

}  // namespace mpisim

#endif  // MPISIM_OP_HPP
