#include "src/mpisim/checker.hpp"

#include <cstdio>
#include <cstring>
#include <utility>

#include "src/mpisim/error.hpp"

namespace mpisim {

namespace {

std::string byte_range(std::ptrdiff_t lo, std::ptrdiff_t hi) {
  return "bytes [" + std::to_string(lo) + ", " + std::to_string(hi) + ")";
}

/// Inclusive tree range back to the half-open form diagnostics use.
std::string byte_range_incl(std::uintptr_t lo, std::uintptr_t hi) {
  return byte_range(static_cast<std::ptrdiff_t>(lo),
                    static_cast<std::ptrdiff_t>(hi) + 1);
}

std::string scope_suffix(const char* scope) {
  return scope != nullptr ? std::string(", in ") + scope : std::string();
}

}  // namespace

const char* rma_check_name(RmaCheck m) noexcept {
  switch (m) {
    case RmaCheck::off: return "off";
    case RmaCheck::warn: return "warn";
    case RmaCheck::abort: return "abort";
    case RmaCheck::race: return "race";
  }
  return "?";
}

bool parse_rma_check(const char* text, RmaCheck* out) noexcept {
  if (text == nullptr) return false;
  if (std::strcmp(text, "off") == 0) { *out = RmaCheck::off; return true; }
  if (std::strcmp(text, "warn") == 0) { *out = RmaCheck::warn; return true; }
  if (std::strcmp(text, "abort") == 0) { *out = RmaCheck::abort; return true; }
  if (std::strcmp(text, "race") == 0) { *out = RmaCheck::race; return true; }
  return false;
}

const char* rma_violation_name(RmaViolation v) noexcept {
  switch (v) {
    case RmaViolation::same_origin: return "same_origin";
    case RmaViolation::concurrent: return "concurrent";
    case RmaViolation::acc_mix: return "acc_mix";
    case RmaViolation::local: return "local";
    case RmaViolation::discipline: return "discipline";
  }
  return "?";
}

RmaChecker::RmaChecker(RmaCheck mode, bool immediate, int nranks)
    : mode_(mode),
      immediate_(immediate),
      per_rank_(static_cast<std::size_t>(nranks > 0 ? nranks : 1)) {}

bool RmaChecker::Sets::empty() const noexcept {
  if (!reads.empty() || !writes.empty()) return false;
  for (const auto& [op, tree] : accs)
    if (!tree.empty()) return false;
  return true;
}

void RmaChecker::Sets::clear() noexcept {
  reads.clear();
  writes.clear();
  accs.clear();
}

void RmaChecker::epoch_opened(std::uint64_t win, int target, int origin,
                              bool exclusive) {
  if (!enabled()) return;
  EpochRec ep;
  ep.id = next_epoch_id_++;
  ep.origin = origin;
  ep.exclusive = exclusive;
  wins_[win].targets[target].open.insert_or_assign(origin, std::move(ep));
}

void RmaChecker::epoch_set_mpi3(std::uint64_t win, int target, int origin) {
  if (!enabled()) return;
  auto wit = wins_.find(win);
  if (wit == wins_.end()) return;
  auto tit = wit->second.targets.find(target);
  if (tit == wit->second.targets.end()) return;
  auto eit = tit->second.open.find(origin);
  if (eit != tit->second.open.end()) eit->second.mpi3 = true;
}

void RmaChecker::epoch_closing(std::uint64_t win, int target, int origin) {
  if (!enabled()) return;
  auto wit = wins_.find(win);
  if (wit == wins_.end()) return;
  auto tit = wit->second.targets.find(target);
  if (tit == wit->second.targets.end()) return;
  auto eit = tit->second.open.find(origin);
  if (eit == tit->second.open.end()) return;

  EpochRec ep = std::move(eit->second);
  tit->second.open.erase(eit);

  // Hand this epoch's access summary to every epoch still open on the
  // target: those epochs were concurrent with it, and MPI-2 makes the
  // conflicting pair erroneous no matter which side's accesses landed
  // first. Epochs opened later never see this ghost, which is what keeps
  // properly serialized (lock-ordered) reuse of the same bytes legal.
  if (!ep.mpi3 && !ep.sets.empty()) {
    std::shared_ptr<Ghost> g;
    for (auto& [orank, oe] : tit->second.open) {
      if (oe.mpi3) continue;
      if (g == nullptr) {
        g = std::make_shared<Ghost>();
        g->epoch_id = ep.id;
        g->origin = ep.origin;
        g->exclusive = ep.exclusive;
        g->scope = ep.scope;
        g->sets = std::move(ep.sets);
      }
      oe.ghosts.push_back(g);
    }
  }
  report(ep.pending);
}

void RmaChecker::epoch_flushed(std::uint64_t win, int target, int origin) {
  if (!enabled()) return;
  auto wit = wins_.find(win);
  if (wit == wins_.end()) return;
  auto tit = wit->second.targets.find(target);
  if (tit == wit->second.targets.end()) return;
  auto eit = tit->second.open.find(origin);
  if (eit == tit->second.open.end()) return;
  // A flush remotely completes everything outstanding: operations on the
  // two sides of it are ordered, so they no longer form a conflicting pair.
  // The epoch's tracking unit restarts empty (ghosts included -- the closed
  // epochs they summarize are now also ordered before the later accesses).
  EpochRec& ep = eit->second;
  ep.sets.clear();
  ep.ghosts.clear();
  report(ep.pending);
}

void RmaChecker::epoch_abandoned(std::uint64_t win, int target, int origin) {
  if (!enabled()) return;
  auto wit = wins_.find(win);
  if (wit == wins_.end()) return;
  auto tit = wit->second.targets.find(target);
  if (tit == wit->second.targets.end()) return;
  tit->second.open.erase(origin);
}

void RmaChecker::window_freed(std::uint64_t win) { wins_.erase(win); }

bool RmaChecker::conflict_with(const Sets& s, OpKind kind, Op op,
                               std::uintptr_t lo, std::uintptr_t hi,
                               Hit* hit) {
  std::uintptr_t olo = 0;
  std::uintptr_t ohi = 0;
  // MPI-2 access rules: get conflicts with writes and accumulates; put with
  // everything; accumulates conflict with reads, writes, and accumulates
  // using a *different* operator (same-op overlap is the one concurrency the
  // model blesses). get_accumulate follows MPI's same_op_no_op rule: no_op
  // mixes with any accumulate operator.
  if (kind != OpKind::get && s.reads.overlapping(lo, hi, &olo, &ohi)) {
    *hit = Hit{Hit::Kind::read, Op::sum, olo, ohi};
    return true;
  }
  if (s.writes.overlapping(lo, hi, &olo, &ohi)) {
    *hit = Hit{Hit::Kind::write, Op::sum, olo, ohi};
    return true;
  }
  for (const auto& [o, tree] : s.accs) {
    bool mixes = false;
    switch (kind) {
      case OpKind::put:
      case OpKind::get:
        mixes = true;
        break;
      case OpKind::acc:
        mixes = o != op;
        break;
      case OpKind::get_acc:
        mixes = o != op && o != Op::no_op && op != Op::no_op;
        break;
    }
    if (mixes && tree.overlapping(lo, hi, &olo, &ohi)) {
      *hit = Hit{Hit::Kind::acc, o, olo, ohi};
      return true;
    }
  }
  return false;
}

RmaViolation RmaChecker::classify(OpKind kind, const Hit& hit,
                                  bool same_origin, bool local) {
  if (local) return RmaViolation::local;
  if (hit.kind == Hit::Kind::acc || kind == OpKind::acc ||
      kind == OpKind::get_acc)
    return RmaViolation::acc_mix;
  return same_origin ? RmaViolation::same_origin : RmaViolation::concurrent;
}

std::string RmaChecker::describe_hit(const Hit& hit) {
  switch (hit.kind) {
    case Hit::Kind::read:
      return "a get of " + byte_range_incl(hit.lo, hit.hi);
    case Hit::Kind::write:
      return "a put to " + byte_range_incl(hit.lo, hit.hi);
    case Hit::Kind::acc:
      return std::string("an accumulate(") + op_name(hit.op) + ") on " +
             byte_range_incl(hit.lo, hit.hi);
    case Hit::Kind::none:
      break;
  }
  return "an access";
}

void RmaChecker::flag(std::vector<Violation>& pending, RmaViolation cls,
                      int world_rank, std::string msg) {
  if (world_rank >= 0 &&
      world_rank < static_cast<int>(per_rank_.size()))
    per_rank_[static_cast<std::size_t>(world_rank)]
        .v[static_cast<int>(cls)]
        .fetch_add(1, std::memory_order_relaxed);
  // Legacy issue-time path (Config::check_conflicts): the operation itself
  // is the error site. Deferral is the rma_check refinement.
  if (immediate_) raise(Errc::conflicting_access, msg);
  if (mode_ != RmaCheck::off) pending.push_back({cls, std::move(msg)});
}

void RmaChecker::report(std::vector<Violation>& pending) {
  if (pending.empty()) return;
  std::vector<Violation> v;
  v.swap(pending);
  if (mode_ == RmaCheck::warn) {
    for (const Violation& x : v)
      std::fprintf(stderr, "mpisim rma_check [%s]: %s\n",
                   rma_violation_name(x.cls), x.msg.c_str());
    return;
  }
  // race includes abort: the HB detector adds cross-epoch coverage on top
  // of the epoch-local rules, it never relaxes them.
  if (mode_ == RmaCheck::abort || mode_ == RmaCheck::race) {
    std::string msg = v.front().msg;
    if (v.size() > 1)
      msg += " (+" + std::to_string(v.size() - 1) + " more violations)";
    raise(Errc::rma_conflict, msg);
  }
}

void RmaChecker::record_op(std::uint64_t win, int target, int origin,
                           int world_origin, OpKind kind, Op op,
                           std::ptrdiff_t lo, std::ptrdiff_t hi,
                           const char* scope) {
  if (!enabled() || lo >= hi) return;
  auto wit = wins_.find(win);
  if (wit == wins_.end()) return;
  TargetRec& tr = wit->second.targets[target];
  auto eit = tr.open.find(origin);
  if (eit == tr.open.end()) return;  // win.cpp raises no_epoch before this
  EpochRec& ep = eit->second;
  ep.scope = scope;

  const char* kind_str = kind == OpKind::put   ? "put"
                         : kind == OpKind::get ? "get"
                         : kind == OpKind::acc ? "accumulate"
                                               : "get_accumulate";
  const auto ulo = static_cast<std::uintptr_t>(lo);
  const auto uhi = static_cast<std::uintptr_t>(hi) - 1;
  const std::string what = std::string(kind_str) + " on " +
                           byte_range(lo, hi) + " of rank " +
                           std::to_string(target) + " (win " +
                           std::to_string(win) + ", epoch #" +
                           std::to_string(ep.id) + " by origin " +
                           std::to_string(origin) + scope_suffix(scope) + ")";

  Hit hit;
  // Epoch-vs-epoch rules apply to MPI-2 lock epochs only: under an MPI-3
  // lock_all epoch conflicting operations have undefined values but are not
  // erroneous. The op is still recorded below so a concurrent direct
  // shared-memory access (shm_begin) can be checked against it.
  if (!ep.mpi3) {
    if (conflict_with(ep.sets, kind, op, ulo, uhi, &hit))
      flag(ep.pending, classify(kind, hit, /*same_origin=*/true, false),
           world_origin,
           what + " conflicts with " + describe_hit(hit) +
               " recorded earlier in the same epoch");

    for (auto& [orank, oe] : tr.open) {
      if (orank == origin || oe.mpi3) continue;
      if (conflict_with(oe.sets, kind, op, ulo, uhi, &hit))
        flag(ep.pending, classify(kind, hit, false, false), world_origin,
             what + " conflicts with " + describe_hit(hit) +
                 " by concurrent epoch #" + std::to_string(oe.id) +
                 " of origin " + std::to_string(orank) +
                 scope_suffix(oe.scope));
    }

    for (const auto& g : ep.ghosts) {
      if (conflict_with(g->sets, kind, op, ulo, uhi, &hit))
        flag(ep.pending, classify(kind, hit, false, false), world_origin,
             what + " conflicts with " + describe_hit(hit) +
                 " by closed concurrent epoch #" +
                 std::to_string(g->epoch_id) + " of origin " +
                 std::to_string(g->origin) + scope_suffix(g->scope));
    }
  }

  // Direct accesses to the target's exposed memory. A get conflicts only
  // with a direct store; put/accumulate write the bytes, so a direct load
  // conflicts too (get_accumulate with no_op is a pure fetch). An MPI-3
  // epoch only checks shared-memory records: plain local access under the
  // unified memory model is legal after a flush (the backend's discipline),
  // while a same-node direct access has no such ordering against in-flight
  // RMA from third ranks.
  const bool writes_target =
      kind == OpKind::put || kind == OpKind::acc ||
      (kind == OpKind::get_acc && op != Op::no_op);
  const bool acc_class = kind == OpKind::acc || kind == OpKind::get_acc;
  for (auto& [lkey, lrec] : tr.locals) {
    if (lrec.covered) continue;
    if (ep.mpi3 && !lrec.shm) continue;
    if (lrec.shm && lrec.accessor == origin) continue;  // origin's own access
    if (lrec.hi <= lo || hi <= lrec.lo) continue;
    if (!lrec.write && !writes_target) continue;
    // The shm accumulate path is element-atomic with RMA accumulates (both
    // apply under the runtime's accumulate atomicity), so only the MPI
    // acc-mixing rules make it a conflict: a different operator, or a
    // non-accumulate access (no_op mixes with any operator).
    if (lrec.acc && acc_class && (op == lrec.op || op == Op::no_op)) continue;
    flag(ep.pending, RmaViolation::local, world_origin,
         what + " conflicts with a direct " +
             (lrec.shm ? std::string("shared-memory ") +
                             (lrec.acc    ? "accumulate to "
                              : lrec.write ? "store to "
                                           : "load of ") +
                             byte_range(lrec.lo, lrec.hi) + " by rank " +
                             std::to_string(lrec.accessor)
                       : std::string("local ") +
                             (lrec.write ? "store to " : "load of ") +
                             byte_range(lrec.lo, lrec.hi)) +
             " on rank " + std::to_string(target) + scope_suffix(lrec.scope));
  }

  switch (kind) {
    case OpKind::get:
      ep.sets.reads.insert_merge(ulo, uhi);
      break;
    case OpKind::put:
      ep.sets.writes.insert_merge(ulo, uhi);
      break;
    case OpKind::acc:
    case OpKind::get_acc:
      ep.sets.accs[op].insert_merge(ulo, uhi);
      break;
  }
}

void RmaChecker::local_begin(std::uint64_t win, int rank, int world_rank,
                             std::ptrdiff_t lo, std::ptrdiff_t hi, bool write,
                             bool covered, const char* scope) {
  if (!enabled() || lo >= hi) return;
  TargetRec& tr = wins_[win].targets[rank];
  LocalRec lrec;
  lrec.lo = lo;
  lrec.hi = hi;
  lrec.write = write;
  lrec.covered = covered;
  lrec.accessor = rank;
  lrec.scope = scope;

  if (!covered) {
    // An undisciplined direct access: check it against every access epoch
    // currently open on this rank's memory, exactly as if it were a
    // same-address RMA op (a local store behaves like a put, a local load
    // like a get).
    const auto ulo = static_cast<std::uintptr_t>(lo);
    const auto uhi = static_cast<std::uintptr_t>(hi) - 1;
    const OpKind as_kind = write ? OpKind::put : OpKind::get;
    const std::string what =
        std::string("direct local ") + (write ? "store to " : "load of ") +
        byte_range(lo, hi) + " on rank " + std::to_string(rank) + " (win " +
        std::to_string(win) + ", no exclusive self-epoch" +
        scope_suffix(scope) + ")";
    Hit hit;
    for (auto& [orank, oe] : tr.open) {
      if (oe.mpi3) continue;
      if (conflict_with(oe.sets, as_kind, Op::replace, ulo, uhi, &hit))
        flag(lrec.pending, RmaViolation::local, world_rank,
             what + " conflicts with " + describe_hit(hit) +
                 " by open epoch #" + std::to_string(oe.id) + " of origin " +
                 std::to_string(orank) + scope_suffix(oe.scope));
      for (const auto& g : oe.ghosts) {
        if (conflict_with(g->sets, as_kind, Op::replace, ulo, uhi, &hit))
          flag(lrec.pending, RmaViolation::local, world_rank,
               what + " conflicts with " + describe_hit(hit) +
                   " by closed concurrent epoch #" +
                   std::to_string(g->epoch_id) + " of origin " +
                   std::to_string(g->origin) + scope_suffix(g->scope));
      }
    }
  }
  tr.locals.insert_or_assign(LocalKey{rank, lo}, std::move(lrec));
}

void RmaChecker::local_end(std::uint64_t win, int rank, std::ptrdiff_t lo) {
  if (!enabled()) return;
  auto wit = wins_.find(win);
  if (wit == wins_.end()) return;
  auto tit = wit->second.targets.find(rank);
  if (tit == wit->second.targets.end()) return;
  auto lit = tit->second.locals.find(LocalKey{rank, lo});
  if (lit == tit->second.locals.end()) return;
  std::vector<Violation> pending = std::move(lit->second.pending);
  tit->second.locals.erase(lit);
  report(pending);
}

void RmaChecker::shm_begin(std::uint64_t win, int target, int origin,
                           int world_origin, OpKind kind, Op op,
                           std::ptrdiff_t lo, std::ptrdiff_t hi,
                           const char* scope) {
  if (!enabled() || lo >= hi) return;
  TargetRec& tr = wins_[win].targets[target];
  const bool write = kind != OpKind::get;
  LocalRec lrec;
  lrec.lo = lo;
  lrec.hi = hi;
  lrec.write = write;
  lrec.shm = true;
  lrec.acc = kind == OpKind::acc || kind == OpKind::get_acc;
  lrec.op = op;
  lrec.accessor = origin;
  lrec.scope = scope;

  // The fast path takes no epoch, so the access is never "covered": check
  // it against every epoch open on the target's memory as if it were a
  // same-address RMA op -- including MPI-3 lock_all epochs, whose recorded
  // in-flight operations a concurrent direct load/store genuinely races
  // (nothing orders the two until the next flush). conflict_with applies
  // the acc-mixing rules, so the CPU-atomic accumulate path coexists with
  // same-operator RMA accumulates.
  const auto ulo = static_cast<std::uintptr_t>(lo);
  const auto uhi = static_cast<std::uintptr_t>(hi) - 1;
  const std::string what =
      std::string("direct shared-memory ") +
      (lrec.acc ? "accumulate to " : write ? "store to " : "load of ") +
      byte_range(lo, hi) + " on rank " +
      std::to_string(target) + " (win " + std::to_string(win) + ", by rank " +
      std::to_string(origin) + ", no epoch" + scope_suffix(scope) + ")";
  Hit hit;
  for (auto& [orank, oe] : tr.open) {
    if (oe.mpi3 && orank == origin) continue;  // own standing lock_all epoch
    if (conflict_with(oe.sets, kind, op, ulo, uhi, &hit))
      flag(lrec.pending, RmaViolation::local, world_origin,
           what + " conflicts with " + describe_hit(hit) +
               " by open epoch #" + std::to_string(oe.id) + " of origin " +
               std::to_string(orank) + scope_suffix(oe.scope));
    for (const auto& g : oe.ghosts) {
      if (conflict_with(g->sets, kind, op, ulo, uhi, &hit))
        flag(lrec.pending, RmaViolation::local, world_origin,
             what + " conflicts with " + describe_hit(hit) +
                 " by closed concurrent epoch #" +
                 std::to_string(g->epoch_id) + " of origin " +
                 std::to_string(g->origin) + scope_suffix(g->scope));
    }
  }
  tr.locals.insert_or_assign(LocalKey{origin, lo}, std::move(lrec));
}

void RmaChecker::shm_end(std::uint64_t win, int target, int origin,
                         std::ptrdiff_t lo) {
  if (!enabled()) return;
  auto wit = wins_.find(win);
  if (wit == wins_.end()) return;
  auto tit = wit->second.targets.find(target);
  if (tit == wit->second.targets.end()) return;
  auto lit = tit->second.locals.find(LocalKey{origin, lo});
  if (lit == tit->second.locals.end()) return;
  std::vector<Violation> pending = std::move(lit->second.pending);
  tit->second.locals.erase(lit);
  report(pending);
}

void RmaChecker::note_discipline(int world_rank) noexcept {
  if (world_rank >= 0 && world_rank < static_cast<int>(per_rank_.size()))
    per_rank_[static_cast<std::size_t>(world_rank)]
        .v[static_cast<int>(RmaViolation::discipline)]
        .fetch_add(1, std::memory_order_relaxed);
}

RmaCheckCounts RmaChecker::counts(int world_rank) const noexcept {
  RmaCheckCounts c;
  if (world_rank < 0 || world_rank >= static_cast<int>(per_rank_.size()))
    return c;
  const PerRankCounts& p = per_rank_[static_cast<std::size_t>(world_rank)];
  c.same_origin = p.v[0].load(std::memory_order_relaxed);
  c.concurrent = p.v[1].load(std::memory_order_relaxed);
  c.acc_mix = p.v[2].load(std::memory_order_relaxed);
  c.local = p.v[3].load(std::memory_order_relaxed);
  c.discipline = p.v[4].load(std::memory_order_relaxed);
  return c;
}

RmaCheckCounts RmaChecker::total_counts() const noexcept {
  RmaCheckCounts t;
  for (std::size_t r = 0; r < per_rank_.size(); ++r) {
    const RmaCheckCounts c = counts(static_cast<int>(r));
    t.same_origin += c.same_origin;
    t.concurrent += c.concurrent;
    t.acc_mix += c.acc_mix;
    t.local += c.local;
    t.discipline += c.discipline;
  }
  return t;
}

}  // namespace mpisim
