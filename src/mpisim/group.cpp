#include "src/mpisim/group.hpp"

#include <numeric>

#include "src/mpisim/error.hpp"

namespace mpisim {

Group::Group(std::vector<int> world_ranks) : members_(std::move(world_ranks)) {
  index_.reserve(members_.size());
  for (int r = 0; r < static_cast<int>(members_.size()); ++r) {
    auto [it, inserted] = index_.emplace(members_[r], r);
    (void)it;
    if (!inserted) raise(Errc::invalid_argument, "duplicate rank in group");
  }
}

Group Group::range(int lo, int hi) {
  if (lo > hi) raise(Errc::invalid_argument, "Group::range lo > hi");
  std::vector<int> m(static_cast<std::size_t>(hi - lo));
  std::iota(m.begin(), m.end(), lo);
  return Group(std::move(m));
}

int Group::world_rank(int r) const {
  if (r < 0 || r >= size())
    raise(Errc::rank_out_of_range, "group rank " + std::to_string(r));
  return members_[static_cast<std::size_t>(r)];
}

int Group::rank_of_world(int wr) const noexcept {
  auto it = index_.find(wr);
  return it == index_.end() ? -1 : it->second;
}

Group Group::incl(std::span<const int> ranks) const {
  std::vector<int> m;
  m.reserve(ranks.size());
  for (int r : ranks) m.push_back(world_rank(r));
  return Group(std::move(m));
}

Group Group::excl(std::span<const int> ranks) const {
  std::vector<bool> drop(members_.size(), false);
  for (int r : ranks) {
    if (r < 0 || r >= size())
      raise(Errc::rank_out_of_range, "group rank " + std::to_string(r));
    drop[static_cast<std::size_t>(r)] = true;
  }
  std::vector<int> m;
  m.reserve(members_.size() - ranks.size());
  for (std::size_t i = 0; i < members_.size(); ++i)
    if (!drop[i]) m.push_back(members_[i]);
  return Group(std::move(m));
}

Group Group::union_with(const Group& other) const {
  std::vector<int> m = members_;
  for (int wr : other.members_)
    if (!contains(wr)) m.push_back(wr);
  return Group(std::move(m));
}

Group Group::intersection(const Group& other) const {
  std::vector<int> m;
  for (int wr : members_)
    if (other.contains(wr)) m.push_back(wr);
  return Group(std::move(m));
}

}  // namespace mpisim
