#include "src/mpisim/pacer.hpp"

#include <limits>
#include <vector>

#include "src/mpisim/error.hpp"
#include "src/mpisim/runtime.hpp"

namespace mpisim {

namespace detail {

struct PacerImpl {
  Comm comm;
  // Guarded by the simulator's global lock.
  std::vector<double> clocks;
  std::vector<bool> active;
  // Generation barrier for enter(): a fast rank may pace and leave() again
  // before slow ranks observe the rendezvous, so "everyone active" is not
  // a stable predicate -- the generation count is.
  int arrived = 0;
  std::uint64_t generation = 0;
};

}  // namespace detail

using detail::PacerImpl;

Pacer::Pacer(std::shared_ptr<PacerImpl> impl) : impl_(std::move(impl)) {}

Pacer Pacer::create(const Comm& comm) {
  SimCore& core = ctx().core();
  std::uint64_t key = 0;
  if (comm.rank() == 0) {
    auto mk = std::make_shared<PacerImpl>();
    mk->comm = comm;
    mk->clocks.assign(static_cast<std::size_t>(comm.size()), 0.0);
    mk->active.assign(static_cast<std::size_t>(comm.size()), false);
    std::lock_guard lk(core.mu());
    key = SimCore::kPacerPublishTag | core.alloc_obj_key_locked();
    // Core-owned rendezvous slot: survives an abort mid-create without
    // leaking and without freeing under a peer still copying.
    core.publish_obj_locked(key, std::move(mk));
    core.poke();
  }
  comm.bcast(&key, sizeof key, 0);
  std::shared_ptr<PacerImpl> impl =
      std::static_pointer_cast<PacerImpl>(core.fetch_published_obj(key));
  comm.barrier();
  if (comm.rank() == 0) core.retire_published_obj(key);
  return Pacer(std::move(impl));
}

void Pacer::enter() {
  PacerImpl& p = *impl_;
  SimCore& core = *p.comm.impl()->core;
  const auto me = static_cast<std::size_t>(p.comm.rank());
  std::unique_lock lk(core.mu());
  p.active[me] = true;
  p.clocks[me] = ctx().clock().now_ns();
  // Rendezvous: without it, a host-fast thread would see only itself
  // active, consider itself the minimum, and race ahead of the region.
  const std::uint64_t my_gen = p.generation;
  if (++p.arrived == p.comm.size()) {
    p.arrived = 0;
    ++p.generation;
    core.poke();
  } else {
    core.wait(lk, [&] { return p.generation != my_gen; }, "pacer.enter");
  }
}

void Pacer::pace(double window_ns) {
  PacerImpl& p = *impl_;
  SimCore& core = *p.comm.impl()->core;
  RankContext& rc = ctx();
  const auto me = static_cast<std::size_t>(p.comm.rank());

  std::unique_lock lk(core.mu());
  require_internal(p.active[me], "Pacer::pace outside enter/leave");
  p.clocks[me] = rc.clock().now_ns();
  core.note_time_locked(rc.clock().now_ns());
  core.poke();
  core.wait(lk, [&] {
    double min_clock = std::numeric_limits<double>::infinity();
    for (std::size_t r = 0; r < p.clocks.size(); ++r)
      if (p.active[r]) min_clock = std::min(min_clock, p.clocks[r]);
    return p.clocks[me] <= min_clock + window_ns;
  }, "pacer.pace");
}

void Pacer::leave() {
  PacerImpl& p = *impl_;
  SimCore& core = *p.comm.impl()->core;
  const auto me = static_cast<std::size_t>(p.comm.rank());
  std::lock_guard lk(core.mu());
  p.active[me] = false;
  core.poke();
}

}  // namespace mpisim
