#ifndef MPISIM_TRACE_HPP
#define MPISIM_TRACE_HPP

/// \file trace.hpp
/// Low-overhead op-level tracing and per-window profiling.
///
/// Every rank owns a Tracer: a fixed-capacity ring buffer of begin/end
/// events stamped with the rank's *virtual* clock (SimClock::now_ns), plus
/// cumulative lock/epoch/flush counters per window. The layers above hook
/// their operations with TraceScope; the window implementation (win.cpp)
/// hooks lock/unlock/flush directly. Disabled (the default), every hook is
/// one predictable branch and nothing else -- no allocation, no clock read.
///
/// Events snapshot to Chrome's trace_event JSON format (one virtual-time
/// track per rank), loadable in chrome://tracing or Perfetto.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/mpisim/clock.hpp"

namespace mpisim {

/// Event category, mapped to the Chrome trace "cat" field.
enum class TraceCat : std::uint8_t {
  api,      ///< public ARMCI entry points
  backend,  ///< backend transfer methods
  window,   ///< RMA window lock/unlock/flush
  mutex,    ///< queueing-mutex protocol steps
  fault,    ///< injected faults and recovery actions (crash, transient
            ///< burst, detector suspicion, shrink)
  race,     ///< happens-before race detections (hb.hpp): a begin/end pair
            ///< brackets each report so Chrome traces show the racing op
  progress, ///< cooperative progress engine: progress.tick spans each
            ///< persona tick, progress.retire marks queue retirement
};

const char* trace_cat_name(TraceCat cat) noexcept;

/// One begin ('B') or end ('E') event. `name` must be a string literal (the
/// buffer stores the pointer only).
struct TraceEvent {
  const char* name = nullptr;
  TraceCat cat = TraceCat::api;
  char phase = 'B';
  double ts_ns = 0.0;
  std::uint64_t arg = 0;  ///< op-dependent: bytes, window id, mutex index
};

/// Cumulative per-window profiling counters (the per-GMR lock/epoch costs
/// of paper §VIII: epoch-per-op semantics show up here first).
struct WinStats {
  std::uint64_t exclusive_locks = 0;
  std::uint64_t shared_locks = 0;
  std::uint64_t lock_alls = 0;
  std::uint64_t flushes = 0;
  std::uint64_t epochs = 0;  ///< completed lock/unlock pairs
};

/// Per-rank trace sink. Owned by the rank's context and touched only from
/// the rank's own thread, so no locking is needed (same rule as SimClock).
class Tracer {
 public:
  explicit Tracer(const SimClock& clock) : clock_(&clock) {}

  bool enabled() const noexcept { return enabled_; }

  /// Start recording with a ring of \p capacity events (oldest overwritten).
  void enable(std::size_t capacity);

  /// Stop recording and drop buffered events and counters.
  void disable();

  void begin(TraceCat cat, const char* name, std::uint64_t arg = 0) {
    if (enabled_) push(cat, name, 'B', arg);
  }

  void end(TraceCat cat, const char* name, std::uint64_t arg = 0) {
    if (enabled_) push(cat, name, 'E', arg);
  }

  /// Mutable counters of window \p id (valid only while enabled).
  WinStats& win(std::uint64_t id) { return win_stats_[id]; }

  const std::map<std::uint64_t, WinStats>& win_stats() const noexcept {
    return win_stats_;
  }

  /// Buffered events in chronological order.
  std::vector<TraceEvent> events() const;

  /// Events emitted since enable(), including any the ring overwrote.
  std::uint64_t total_events() const noexcept { return total_; }

  /// Events lost to ring wrap-around.
  std::uint64_t dropped() const noexcept {
    return total_ > ring_.size() ? total_ - ring_.size() : 0;
  }

  /// Drop buffered events and counters, keep recording.
  void clear();

  /// Name of the innermost still-open 'B' event, or null when none (or when
  /// tracing is disabled). The RMA checker stamps recorded accesses with
  /// this so a violation report can say which traced operation issued each
  /// side of the conflicting pair.
  const char* current_scope() const noexcept {
    return open_.empty() ? nullptr : open_.back();
  }

 private:
  void push(TraceCat cat, const char* name, char phase, std::uint64_t arg);

  const SimClock* clock_;
  bool enabled_ = false;
  std::vector<TraceEvent> ring_;
  std::size_t capacity_ = 0;
  std::uint64_t total_ = 0;
  std::map<std::uint64_t, WinStats> win_stats_;
  std::vector<const char*> open_;  ///< stack of unmatched 'B' event names
};

/// RAII begin/end pair around one traced operation.
class TraceScope {
 public:
  TraceScope(Tracer& t, TraceCat cat, const char* name, std::uint64_t arg = 0)
      : t_(t.enabled() ? &t : nullptr), cat_(cat), name_(name), arg_(arg) {
    if (t_ != nullptr) t_->begin(cat_, name_, arg_);
  }
  ~TraceScope() {
    if (t_ != nullptr) t_->end(cat_, name_, arg_);
  }

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  Tracer* t_;
  TraceCat cat_;
  const char* name_;
  std::uint64_t arg_;
};

/// One rank's captured events, for cross-rank export after the run.
struct RankTrace {
  int rank = 0;
  std::vector<TraceEvent> events;
};

/// Render per-rank event streams as a Chrome trace_event JSON document:
/// one process, one thread (track) per rank, timestamps in virtual
/// microseconds. Load in chrome://tracing or https://ui.perfetto.dev.
std::string chrome_trace_json(const std::vector<RankTrace>& ranks);

}  // namespace mpisim

#endif  // MPISIM_TRACE_HPP
