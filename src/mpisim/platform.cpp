#include "src/mpisim/platform.hpp"

#include "src/mpisim/error.hpp"

namespace mpisim {

namespace {

/// Calibration notes: parameters are chosen so that the NetworkModel
/// reproduces the qualitative regimes in the paper's Figures 3-6, e.g.
///  - BG/P: slow (850 MHz) cores make datatype packing expensive, so the
///    batched method catches up with direct for large segments (Fig. 4a);
///  - InfiniBand: large native-vs-MPI accumulate gap (> 1.5 GiB/s, Fig. 3)
///    and severe batched-method degradation at many segments (Fig. 4b);
///  - XT5: MPI bandwidth halves beyond 32 KiB (Fig. 3/4c);
///  - XE6: ARMCI-MPI beats the development-release native ARMCI by ~2x on
///    put/get and ~25% on accumulate, and the native stack degrades with
///    job size (Fig. 3/6).

PlatformProfile make_bgp() {
  PlatformProfile p;
  p.name = "IBM Blue Gene/P (Intrepid)";
  p.interconnect = "3D Torus";
  p.mpi_version = "IBM MPI";
  p.nodes = 40960;
  p.sockets_per_node = 1;
  p.cores_per_socket = 4;
  p.memory_per_node_gb = 2.0;

  p.cpu_ghz = 0.85;
  p.net_latency_us = 3.5;
  p.net_bw_gbps = 0.425;  // one torus link
  p.copy_gbps = 1.6;

  p.mpi_lock_us = 0.6;   // DCMF torus hardware: cheap lock messages
  p.mpi_unlock_us = 0.6;
  p.mpi_op_us = 0.5;
  p.mpi_bw_eff = 0.82;
  p.mpi_acc_eff = 0.55;
  p.mpi_dt_seg_us = 0.35;  // slow cores: costly datatype processing
  p.mpi_dt_commit_us = 1.2;

  p.nat_op_us = 0.8;
  p.nat_bw_eff = 0.95;
  p.nat_acc_eff = 0.85;
  p.nat_seg_us = 0.55;

  p.ranks_per_node = 4;   // one quad-core socket per node
  p.shm_bw_gbps = 1.3;     // direct load/store, a bit under copy_gbps
  p.shm_latency_us = 0.08;  // slow cores, but still just a coherence miss

  p.dgemm_gflops = 2.7;  // per core, 850 MHz double-hummer
  return p;
}

PlatformProfile make_ib() {
  PlatformProfile p;
  p.name = "Cluster (Fusion)";
  p.interconnect = "InfiniBand QDR";
  p.mpi_version = "MVAPICH2 1.6";
  p.nodes = 320;
  p.sockets_per_node = 2;
  p.cores_per_socket = 4;
  p.memory_per_node_gb = 36.0;

  p.cpu_ghz = 2.6;
  p.net_latency_us = 1.6;
  p.net_bw_gbps = 3.2;
  p.copy_gbps = 3.0;

  p.mpi_lock_us = 1.1;
  p.mpi_unlock_us = 1.1;
  p.mpi_op_us = 0.3;
  p.mpi_bw_eff = 0.88;
  p.mpi_acc_eff = 0.28;  // > 1.5 GiB/s accumulate gap vs native (Fig. 3)
  p.mpi_dt_seg_us = 0.09;
  p.mpi_dt_commit_us = 0.5;
  p.mpi_epoch_quad_us = 0.004;  // MVAPICH2 per-epoch queue scan (Fig. 4b)

  p.nat_op_us = 0.35;
  p.nat_bw_eff = 1.0;
  p.nat_acc_eff = 0.80;
  p.nat_seg_us = 0.14;
  p.nat_unpinned_eff = 0.45;  // ARMCI's nonpinned path (Fig. 5)

  p.on_demand_registration = true;  // MVAPICH2 registers on first touch
  p.reg_page_us = 0.6;
  p.bounce_threshold_bytes = 8192;  // < 2 pages: copy via pre-pinned bounce

  p.ranks_per_node = 8;   // 2 sockets x 4 cores
  p.shm_bw_gbps = 2.5;
  p.shm_latency_us = 0.04;  // cross-socket cache-coherent load/store

  p.dgemm_gflops = 9.0;
  return p;
}

PlatformProfile make_xt5() {
  PlatformProfile p;
  p.name = "Cray XT5 (Jaguar PF)";
  p.interconnect = "Seastar 2+";
  p.mpi_version = "Cray MPI";
  p.nodes = 18688;
  p.sockets_per_node = 2;
  p.cores_per_socket = 6;
  p.memory_per_node_gb = 16.0;

  p.cpu_ghz = 2.6;
  p.net_latency_us = 5.0;  // SeaStar: high small-message latency
  p.net_bw_gbps = 2.1;
  p.copy_gbps = 8.0;

  p.mpi_lock_us = 1.0;
  p.mpi_unlock_us = 1.0;
  p.mpi_op_us = 1.0;
  p.mpi_bw_eff = 0.95;
  p.mpi_bw_eff_large = 0.5;     // halves beyond the kink (Fig. 3)
  p.mpi_bw_kink_bytes = 32768;  // 32 KiB
  p.mpi_acc_eff = 0.60;
  p.mpi_dt_seg_us = 0.06;
  p.mpi_dt_commit_us = 0.6;

  p.nat_op_us = 0.8;
  p.nat_bw_eff = 1.0;
  p.nat_acc_eff = 0.90;
  p.nat_seg_us = 0.12;

  p.ranks_per_node = 12;  // 2 sockets x 6 cores
  p.shm_bw_gbps = 6.0;
  p.shm_latency_us = 0.04;

  p.dgemm_gflops = 9.2;
  return p;
}

PlatformProfile make_xe6() {
  PlatformProfile p;
  p.name = "Cray XE6 (Hopper II)";
  p.interconnect = "Gemini";
  p.mpi_version = "Cray MPI";
  p.nodes = 6392;
  p.sockets_per_node = 2;
  p.cores_per_socket = 12;
  p.memory_per_node_gb = 32.0;

  p.cpu_ghz = 2.1;
  p.net_latency_us = 1.8;
  p.net_bw_gbps = 3.0;
  p.copy_gbps = 5.5;

  p.mpi_lock_us = 1.2;
  p.mpi_unlock_us = 1.2;
  p.mpi_op_us = 0.6;
  p.mpi_bw_eff = 0.50;  // ~1.5 GiB/s: well below peak but 2x native (Fig. 3)
  p.mpi_acc_eff = 0.30;
  p.mpi_dt_seg_us = 0.10;
  p.mpi_dt_commit_us = 0.5;

  // Development-release native ARMCI: half the MPI put/get bandwidth,
  // accumulate ~25% below ARMCI-MPI, degrades with job size (Fig. 6).
  p.nat_op_us = 4.0;
  p.nat_bw_eff = 0.25;
  p.nat_acc_eff = 0.24;
  p.nat_seg_us = 0.50;
  // Calibrated to the benchmark's compressed rank axis (4..64 ranks standing
  // in for hundreds..thousands of cores): the development-release stack's
  // software agent saturates, flattening (T) and worsening CCSD at scale.
  p.nat_congestion_us_per_rank = 1.5;

  p.ranks_per_node = 24;  // 2 sockets x 12 cores
  p.shm_bw_gbps = 4.5;
  p.shm_latency_us = 0.05;

  p.dgemm_gflops = 8.4;
  return p;
}

PlatformProfile make_ideal() {
  PlatformProfile p;
  p.name = "Ideal (functional testing)";
  p.interconnect = "none";
  p.mpi_version = "mpisim";
  p.nodes = 1;
  p.sockets_per_node = 1;
  p.cores_per_socket = 64;
  p.memory_per_node_gb = 64.0;
  p.cpu_ghz = 3.0;
  // Zero-cost network: all bandwidths 0 (interpreted as free), latencies 0.
  p.dgemm_gflops = 10.0;
  return p;
}

}  // namespace

const PlatformProfile& platform_profile(Platform p) {
  static const PlatformProfile bgp = make_bgp();
  static const PlatformProfile ib = make_ib();
  static const PlatformProfile xt5 = make_xt5();
  static const PlatformProfile xe6 = make_xe6();
  static const PlatformProfile ideal = make_ideal();
  switch (p) {
    case Platform::bluegene_p: return bgp;
    case Platform::infiniband: return ib;
    case Platform::cray_xt5: return xt5;
    case Platform::cray_xe6: return xe6;
    case Platform::ideal: return ideal;
  }
  raise(Errc::invalid_argument, "unknown platform");
}

const char* platform_id(Platform p) noexcept {
  switch (p) {
    case Platform::bluegene_p: return "bgp";
    case Platform::infiniband: return "ib";
    case Platform::cray_xt5: return "xt5";
    case Platform::cray_xe6: return "xe6";
    case Platform::ideal: return "ideal";
  }
  return "unknown";
}

}  // namespace mpisim
