#ifndef MPISIM_DATATYPE_HPP
#define MPISIM_DATATYPE_HPP

/// \file datatype.hpp
/// MPI-style derived datatypes.
///
/// ARMCI-MPI's "direct" transfer methods hand noncontiguous layouts to MPI as
/// a single RMA operation carrying an indexed or subarray derived datatype;
/// the MPI library then chooses how to move the data (pack/unpack, batched,
/// or hardware scatter/gather). This module provides exactly the datatype
/// machinery those methods need: basic types, contiguous, (h)vector,
/// (h)indexed, and C-order subarray constructors, with size/extent queries,
/// contiguous-segment iteration, and pack/unpack.
///
/// Datatypes are immutable value handles (shared immutable tree underneath);
/// copying is cheap and thread-safe.

#include <cstddef>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "src/mpisim/op.hpp"

namespace mpisim {

namespace detail {
struct TypeImpl;
}

/// One contiguous piece of a flattened datatype.
struct Segment {
  std::ptrdiff_t offset;  ///< byte offset from the base address
  std::size_t length;     ///< bytes
};

/// Immutable handle to a (possibly derived) datatype.
class Datatype {
 public:
  /// A predefined basic type.
  static Datatype basic(BasicType t);

  /// \p count consecutive copies of \p old.
  static Datatype contiguous(std::size_t count, const Datatype& old);

  /// \p count blocks of \p blocklen elements, regular stride measured in
  /// elements of \p old (MPI_Type_vector).
  static Datatype vector(std::size_t count, std::size_t blocklen,
                         std::ptrdiff_t stride_elems, const Datatype& old);

  /// Like vector() but the stride is given in bytes (MPI_Type_create_hvector).
  static Datatype hvector(std::size_t count, std::size_t blocklen,
                          std::ptrdiff_t stride_bytes, const Datatype& old);

  /// Blocks of varying length at varying displacements, both measured in
  /// elements of \p old (MPI_Type_indexed).
  static Datatype indexed(std::span<const std::size_t> blocklens,
                          std::span<const std::ptrdiff_t> displs_elems,
                          const Datatype& old);

  /// Like indexed() but displacements are in bytes (MPI_Type_create_hindexed).
  static Datatype hindexed(std::span<const std::size_t> blocklens,
                           std::span<const std::ptrdiff_t> displs_bytes,
                           const Datatype& old);

  /// An n-dimensional subarray of an n-dimensional C-order array
  /// (MPI_Type_create_subarray with MPI_ORDER_C). \p sizes are the full
  /// array dimensions, \p subsizes the patch dimensions, \p starts the
  /// patch origin, all in elements of \p old; dimension 0 is outermost.
  static Datatype subarray(std::span<const std::size_t> sizes,
                           std::span<const std::size_t> subsizes,
                           std::span<const std::size_t> starts,
                           const Datatype& old);

  /// Payload bytes carried by one instance of this type.
  std::size_t size() const noexcept;

  /// Bytes spanned in memory by one instance (lower bound is always 0 here).
  std::ptrdiff_t extent() const noexcept;

  /// Underlying element type (uniform across the whole tree).
  BasicType element_type() const noexcept;

  /// True if one instance occupies size() contiguous bytes at offset 0.
  bool contiguous_layout() const noexcept;

  /// Number of maximal contiguous segments in one instance.
  std::size_t segment_count() const noexcept;

  /// Invoke \p f for every contiguous segment of \p count instances laid out
  /// back-to-back (instance i starts at byte offset i * extent()). Adjacent
  /// segments are emitted as produced, not merged.
  void for_each_segment(std::size_t count,
                        const std::function<void(Segment)>& f) const;

  /// Flatten \p count instances into an explicit segment list.
  std::vector<Segment> flatten(std::size_t count) const;

  /// Gather \p count instances from \p base into the contiguous buffer
  /// \p out (which must hold count * size() bytes).
  void pack(const void* base, std::size_t count, void* out) const;

  /// Scatter the contiguous buffer \p in (count * size() bytes) into
  /// \p count instances at \p base.
  void unpack(const void* in, void* base, std::size_t count) const;

 private:
  explicit Datatype(std::shared_ptr<const detail::TypeImpl> impl);
  std::shared_ptr<const detail::TypeImpl> impl_;
};

/// Convenience handles for the common predefined types.
Datatype byte_type();
Datatype int32_type();
Datatype int64_type();
Datatype double_type();

}  // namespace mpisim

#endif  // MPISIM_DATATYPE_HPP
