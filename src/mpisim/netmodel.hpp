#ifndef MPISIM_NETMODEL_HPP
#define MPISIM_NETMODEL_HPP

/// \file netmodel.hpp
/// Virtual-time cost model.
///
/// Every communication action in the simulator charges nanoseconds to the
/// initiating rank's SimClock through this model. Two cost paths coexist:
/// Path::mpi is the moderately tuned MPI RMA stack used by ARMCI-MPI
/// (epoch lock/unlock overheads, per-op issue cost, datatype processing,
/// on-demand registration), and Path::native is the aggressively tuned
/// vendor ARMCI stack (no epochs, CHT-served accumulates, pre-pinned
/// buffers). The paper's figures are comparisons between these two paths
/// on four platform profiles.

#include <algorithm>
#include <cstddef>

#include "src/mpisim/platform.hpp"

namespace mpisim {

/// Which runtime stack is charged for an operation.
enum class Path { mpi, native };

/// RMA operation kind (cost-relevant: accumulate pays a reduced rate).
enum class RmaKind { put, get, acc };

/// Stateless cost calculator over a PlatformProfile. All results are
/// nanoseconds of virtual time.
class NetworkModel {
 public:
  /// \p ranks_per_node_override > 0 replaces the profile's ranks_per_node
  /// (Config::ranks_per_node lets tests co-locate or separate ranks without
  /// defining a new platform).
  explicit NetworkModel(const PlatformProfile& prof,
                        int ranks_per_node_override = 0)
      : prof_(&prof),
        ranks_per_node_(ranks_per_node_override > 0
                            ? ranks_per_node_override
                            : std::max(prof.ranks_per_node, 1)) {}

  const PlatformProfile& profile() const noexcept { return *prof_; }

  // ---- node map (MPI-3 shared-memory locality) ----

  /// Consecutive world ranks per node: ranks [k*n, (k+1)*n) share node k.
  int ranks_per_node() const noexcept { return ranks_per_node_; }

  /// Node id hosting world rank \p rank.
  int node_of(int rank) const noexcept { return rank / ranks_per_node_; }

  /// True when the two world ranks share a node (and hence can reach each
  /// other's shared-memory window segments by direct load/store).
  bool same_node(int a, int b) const noexcept {
    return node_of(a) == node_of(b);
  }

  /// Direct load/store of \p bytes between two co-located ranks: fixed
  /// intra-node latency plus serialization at the shared-memory bandwidth.
  /// No lock, unlock, or per-op MPI overhead applies.
  double shm_copy_ns(std::size_t bytes) const;

  /// Two-sided message: one-way latency plus serialization at peak bandwidth.
  double p2p_ns(std::size_t bytes) const;

  /// Node-aware two-sided message cost between world ranks \p src and
  /// \p dst: co-located ranks pay the shared-memory copy cost (the MPI
  /// intra-node shm transport), everything else the network path. Used by
  /// the simulator's message delivery so same-node delegates/replies are
  /// measurably cheaper than cross-node ones.
  double p2p_ns(std::size_t bytes, int src, int dst) const {
    return same_node(src, dst) ? shm_copy_ns(bytes) : p2p_ns(bytes);
  }

  /// Passive-target lock acquisition (request/grant round trip).
  double lock_ns() const;

  /// Unlock including remote-completion acknowledgement.
  double unlock_ns() const;

  /// One RMA data-transfer operation of \p bytes in \p nsegments contiguous
  /// pieces. \p op_index is the number of operations already issued in the
  /// same epoch (models implementations whose per-epoch queues degrade
  /// superlinearly, as observed for batched transfers on MVAPICH2).
  /// \p local_pinned applies to Path::native only: false selects the
  /// nonpinned (bounce) code path. \p nranks scales congestion-sensitive
  /// native stacks (Cray XE6 development release).
  double rma_op_ns(RmaKind kind, std::size_t bytes, std::size_t nsegments,
                   Path path, std::size_t op_index = 0,
                   bool local_pinned = true, int nranks = 2) const;

  /// Serialization-only (wire) component of an RMA transfer: the time the
  /// target NIC is occupied moving the payload. Subtracting this from
  /// rma_op_ns() gives the initiator-side overhead component.
  double rma_wire_ns(RmaKind kind, std::size_t bytes, Path path,
                     bool local_pinned = true) const;

  /// Local pack/unpack of \p bytes at the host copy rate.
  double pack_ns(std::size_t bytes) const;

  /// Building/committing a derived datatype with \p nsegments segments.
  double dtype_build_ns(std::size_t nsegments) const;

  /// Pinning \p pages 4-KiB pages (on-demand registration).
  double registration_ns(std::size_t pages) const;

  /// Binomial-tree collective of \p bytes over \p nranks.
  double tree_collective_ns(std::size_t bytes, int nranks) const;

  /// Barrier over \p nranks (zero-byte tree up and down).
  double barrier_ns(int nranks) const;

  /// Personalized all-to-all exchange of \p bytes_per_peer over \p nranks.
  double alltoall_ns(std::size_t bytes_per_peer, int nranks) const;

 private:
  double wire_ns(RmaKind kind, std::size_t bytes, Path path,
                 bool local_pinned) const;

  const PlatformProfile* prof_;
  int ranks_per_node_ = 1;
};

}  // namespace mpisim

#endif  // MPISIM_NETMODEL_HPP
