#ifndef MPISIM_CHECKER_HPP
#define MPISIM_CHECKER_HPP

/// \file checker.hpp
/// RMA validity checker: a conflict/epoch race detector for mpisim windows.
///
/// The paper's central contribution is bridging ARMCI's conflict-tolerant,
/// location-consistent model onto MPI-2 RMA, where *concurrent conflicting
/// accesses are erroneous*. A backend bug that violates those access rules
/// (an overlapping put/put under a shared lock, a direct store to window
/// memory during another origin's exposure) produces wrong answers only for
/// schedules that happen to interleave badly -- it passes tests
/// nondeterministically. The checker turns every run into a semantics audit:
/// it records the byte interval of every put/get/accumulate/fetch-op and
/// every declared direct load/store (Win::local_access_begin/end), tagged
/// with <window, target, epoch, lock type, origin>, and detects the MPI-2
/// conflict rules:
///
///  - overlapping put/put and put/get from different origins inside
///    concurrent shared-lock epochs (including epochs that already closed:
///    a closing epoch hands its access summary to the epochs it was
///    concurrent with, so ordering within the overlap window cannot hide a
///    conflict);
///  - accumulate mixed with non-accumulate (or a different accumulate
///    operator) on overlapping bytes;
///  - same-origin overlapping conflicting operations within one epoch;
///  - direct local access to exposed window memory without the DLA
///    discipline (an exclusive self-epoch, as ARMCI_Access_begin takes);
///  - lock-discipline misuse (counted here; the window layer raises the
///    classified Errc).
///
/// Interval bookkeeping reuses the AVL conflict tree of paper §VI-B
/// (conflict_tree.hpp) via its union-building insert_merge().
///
/// Reporting has two paths sharing one recorded state:
///  - Config::check_conflicts (legacy, default on): a conflict raises
///    Errc::conflicting_access immediately at the issuing operation;
///  - Config::rma_check = warn | abort: conflicts become structured
///    diagnostics reported when the access epoch completes -- at unlock /
///    flush / local_access_end -- as MPI-2 prescribes for erroneous-access
///    detection. warn prints to stderr and counts; abort raises
///    Errc::rma_conflict.
///
/// Epochs opened by lock_all() follow MPI-3 semantics (conflicting accesses
/// have undefined *values* but are not erroneous) and are not tracked.
///
/// Thread-safety: every method except counts()/total_counts()/
/// note_discipline() must be called with SimCore::mu() held (they mutate
/// shared per-window state). Counters are atomics so the metrics exporters
/// can read them from any rank thread without the lock.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/mpisim/conflict_tree.hpp"
#include "src/mpisim/op.hpp"

namespace mpisim {

/// Checker reporting mode (Config::rma_check).
enum class RmaCheck {
  off,   ///< record nothing (unless check_conflicts is on)
  warn,  ///< print each violation to stderr at epoch completion and count it
  abort, ///< raise Errc::rma_conflict at epoch completion
  race   ///< abort, plus the vector-clock happens-before detector (hb.hpp)
         ///< raising Errc::rma_race on cross-epoch unordered conflicts
};

const char* rma_check_name(RmaCheck m) noexcept;

/// Parse an MPISIM_RMA_CHECK value. Returns false (and leaves \p out
/// untouched) for anything other than off|warn|abort|race, so callers can
/// reject typos loudly instead of silently running unchecked.
bool parse_rma_check(const char* text, RmaCheck* out) noexcept;

/// Violation classes (counter buckets; also named in diagnostics).
enum class RmaViolation {
  same_origin,  ///< overlapping conflicting ops by one origin in one epoch
  concurrent,   ///< put/put or put/get overlap across concurrent epochs
  acc_mix,      ///< accumulate vs non-accumulate or different-op accumulate
  local,        ///< direct local access conflicting with an RMA access
  discipline,   ///< lock-state misuse (unlock mismatch, double lock, ...)
};

inline constexpr int kRmaViolationCount = 5;

const char* rma_violation_name(RmaViolation v) noexcept;

/// Snapshot of violation counters (per rank or totalled).
struct RmaCheckCounts {
  std::uint64_t same_origin = 0;
  std::uint64_t concurrent = 0;
  std::uint64_t acc_mix = 0;
  std::uint64_t local = 0;
  std::uint64_t discipline = 0;

  std::uint64_t total() const noexcept {
    return same_origin + concurrent + acc_mix + local + discipline;
  }
};

/// The detector. One instance per SimCore; all window state flows through
/// it when enabled().
class RmaChecker {
 public:
  /// \p immediate is Config::check_conflicts: raise Errc::conflicting_access
  /// at the issuing operation instead of deferring to epoch completion.
  RmaChecker(RmaCheck mode, bool immediate, int nranks);

  RmaChecker(const RmaChecker&) = delete;
  RmaChecker& operator=(const RmaChecker&) = delete;

  bool enabled() const noexcept {
    return immediate_ || mode_ != RmaCheck::off;
  }
  RmaCheck mode() const noexcept { return mode_; }

  /// Operation kinds recorded by the window layer. get_acc is
  /// accumulate-class but follows MPI's same_op_no_op mixing rule.
  enum class OpKind { put, get, acc, get_acc };

  // ---- epoch lifecycle (caller holds SimCore::mu()) ----

  /// A lock was granted: open epoch <win, target, origin>.
  void epoch_opened(std::uint64_t win, int target, int origin,
                    bool exclusive);

  /// Mark an epoch as opened by lock_all (MPI-3 semantics: untracked).
  void epoch_set_mpi3(std::uint64_t win, int target, int origin);

  /// The epoch is closing (unlock/unlock_all): report its pending
  /// violations (raising Errc::rma_conflict in abort mode), hand its access
  /// summary to the still-open epochs it was concurrent with, and drop it.
  void epoch_closing(std::uint64_t win, int target, int origin);

  /// flush/flush_all: report pending violations and reset the epoch's
  /// tracking unit (operations separated by a flush no longer conflict).
  void epoch_flushed(std::uint64_t win, int target, int origin);

  /// The epoch's origin died before completing it (survivable mode): drop
  /// the epoch silently -- no violation report, no ghost handoff. The dead
  /// rank's in-flight accesses never completed, and survivors must not be
  /// charged with conflicts against an origin that no longer exists.
  void epoch_abandoned(std::uint64_t win, int target, int origin);

  /// Window destroyed: drop all its state.
  void window_freed(std::uint64_t win);

  // ---- access recording (caller holds SimCore::mu()) ----

  /// Record one target-side byte interval [lo, hi) of an RMA operation and
  /// check it against the origin's own epoch, concurrent epochs, closed
  /// concurrent epochs' summaries, and open local accesses. \p origin is
  /// the window-communicator rank, \p world_origin the world rank (counter
  /// attribution), \p scope the origin's innermost open trace scope (may be
  /// null when tracing is off).
  void record_op(std::uint64_t win, int target, int origin, int world_origin,
                 OpKind kind, Op op, std::ptrdiff_t lo, std::ptrdiff_t hi,
                 const char* scope);

  /// A direct local load/store of [lo, hi) in \p rank's window slice was
  /// declared (Win::local_access_begin). \p covered means the caller holds
  /// an exclusive (or lock_all) self-epoch -- the DLA discipline -- making
  /// the access safe and unrecorded.
  void local_begin(std::uint64_t win, int rank, int world_rank,
                   std::ptrdiff_t lo, std::ptrdiff_t hi, bool write,
                   bool covered, const char* scope);

  /// End of the local access that began at \p lo: report its pending
  /// violations and drop the record.
  void local_end(std::uint64_t win, int rank, std::ptrdiff_t lo);

  /// A direct shared-memory access of [lo, hi) in \p target's slice of a
  /// shared window by co-located \p origin (Win::shm_access_begin and the
  /// shm_put/shm_get/shm_acc fast path). The fast path bypasses epochs
  /// entirely, so this is the only record of the access; it is checked
  /// against every epoch open on the target -- including MPI-3 lock_all
  /// epochs, whose in-flight operations a concurrent direct load/store
  /// genuinely races -- and in-flight RMA issued later is checked back
  /// against it (record_op). \p kind put/get/acc mirrors RMA recording:
  /// an OpKind::acc access is the CPU-atomic accumulate path, which is
  /// element-atomic with accumulates of the same \p op and so conflicts
  /// only under the acc-mixing rules.
  void shm_begin(std::uint64_t win, int target, int origin, int world_origin,
                 OpKind kind, Op op, std::ptrdiff_t lo, std::ptrdiff_t hi,
                 const char* scope);

  /// End of origin's shared-memory access that began at \p lo.
  void shm_end(std::uint64_t win, int target, int origin, std::ptrdiff_t lo);

  /// Lock-discipline misuse detected by the window layer (which raises the
  /// classified Errc itself); the checker only counts it. Lock-free.
  void note_discipline(int world_rank) noexcept;

  // ---- counters (lock-free reads) ----

  RmaCheckCounts counts(int world_rank) const noexcept;
  RmaCheckCounts total_counts() const noexcept;

 private:
  /// Per-epoch (or per-ghost) recorded coverage.
  struct Sets {
    ConflictTree reads;
    ConflictTree writes;
    std::map<Op, ConflictTree> accs;

    bool empty() const noexcept;
    void clear() noexcept;
  };

  /// Summary of a closed epoch, shared by every epoch it was concurrent
  /// with (conflicts across the overlap window are erroneous regardless of
  /// the order the accesses actually happened in).
  struct Ghost {
    std::uint64_t epoch_id = 0;
    int origin = -1;
    bool exclusive = false;
    const char* scope = nullptr;
    Sets sets;
  };

  struct Violation {
    RmaViolation cls = RmaViolation::concurrent;
    std::string msg;
  };

  struct EpochRec {
    std::uint64_t id = 0;
    int origin = -1;
    bool exclusive = false;
    bool mpi3 = false;
    const char* scope = nullptr;  ///< innermost trace scope of the last op
    Sets sets;
    std::vector<std::shared_ptr<const Ghost>> ghosts;
    std::vector<Violation> pending;
  };

  struct LocalRec {
    std::ptrdiff_t lo = 0;
    std::ptrdiff_t hi = 0;
    bool write = false;
    bool covered = false;
    bool shm = false;    ///< same-node direct access (not the owner's own)
    bool acc = false;    ///< shm accumulate (CPU-atomic): acc-mixing rules
    Op op = Op::sum;     ///< accumulate operator when acc
    int accessor = -1;   ///< rank doing the load/store (== target unless shm)
    const char* scope = nullptr;
    std::vector<Violation> pending;
  };

  /// Open direct accesses are keyed by (accessor rank, region offset):
  /// several co-located ranks may hold shm accesses to one target slice at
  /// once, and the owner's own local access must not collide with them.
  using LocalKey = std::pair<int, std::ptrdiff_t>;

  struct TargetRec {
    std::map<int, EpochRec> open;         ///< origin rank -> epoch
    std::map<LocalKey, LocalRec> locals;  ///< (accessor, offset) -> access
  };

  struct WinRec {
    std::map<int, TargetRec> targets;
  };

  struct PerRankCounts {
    std::atomic<std::uint64_t> v[kRmaViolationCount] = {};
  };

  /// What a conflict query matched: which set, and for accumulates which op.
  struct Hit {
    enum class Kind { none, read, write, acc } kind = Kind::none;
    Op op = Op::sum;
    std::uintptr_t lo = 0;  ///< the previously recorded interval (inclusive)
    std::uintptr_t hi = 0;
  };

  static bool conflict_with(const Sets& s, OpKind kind, Op op,
                            std::uintptr_t lo, std::uintptr_t hi, Hit* hit);
  static RmaViolation classify(OpKind kind, const Hit& hit, bool same_origin,
                               bool local);
  static std::string describe_hit(const Hit& hit);

  /// Count, then either raise Errc::conflicting_access (immediate mode) or
  /// defer the message into \p pending.
  void flag(std::vector<Violation>& pending, RmaViolation cls, int world_rank,
            std::string msg);

  /// warn: print and clear; abort: print, clear and raise Errc::rma_conflict.
  void report(std::vector<Violation>& pending);

  RmaCheck mode_;
  bool immediate_;
  std::uint64_t next_epoch_id_ = 1;
  std::map<std::uint64_t, WinRec> wins_;
  std::vector<PerRankCounts> per_rank_;
};

}  // namespace mpisim

#endif  // MPISIM_CHECKER_HPP
