#ifndef MPISIM_MAILBOX_HPP
#define MPISIM_MAILBOX_HPP

/// \file mailbox.hpp
/// Tag-matched message queues for two-sided communication.
///
/// One mailbox per world rank; all access is serialized by the simulator's
/// global lock (see runtime.hpp), so the mailbox itself is a plain data
/// structure. Matching follows MPI rules: (communicator, source, tag) with
/// wildcard source/tag, FIFO per (source, tag) pair.

#include <cstdint>
#include <deque>
#include <vector>

namespace mpisim {

/// Wildcards accepted by receive operations.
inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

/// An in-flight message. Payload is copied at send time (eager protocol).
struct Message {
  std::uint64_t comm_id = 0;  ///< communicator the send was posted on
  int src_comm_rank = 0;      ///< sender's rank in that communicator
  int tag = 0;
  std::vector<std::uint8_t> payload;
  double send_ts_ns = 0.0;  ///< sender's virtual clock at send
  /// Sender's vector clock at send, joined by the matching receive
  /// (happens-before piggyback, hb.hpp). Empty unless the race detector
  /// is enabled.
  std::vector<std::uint64_t> vc;
};

/// Completion information returned by receives.
struct Status {
  int source = kAnySource;  ///< matched sender (comm rank)
  int tag = kAnyTag;
  std::size_t bytes = 0;  ///< matched message size
};

/// Unexpected-message queue for one destination rank.
class Mailbox {
 public:
  /// Append a message (preserves per-(src,tag) FIFO order).
  void push(Message msg) { queue_.push_back(std::move(msg)); }

  /// True if a message matching (comm, src, tag) is queued. \p src and
  /// \p tag may be wildcards.
  bool has_match(std::uint64_t comm_id, int src, int tag) const;

  /// Remove and return the first matching message. Requires has_match().
  Message pop_match(std::uint64_t comm_id, int src, int tag);

  /// Number of queued messages (diagnostics).
  std::size_t size() const noexcept { return queue_.size(); }

 private:
  bool matches(const Message& m, std::uint64_t comm_id, int src,
               int tag) const;

  std::deque<Message> queue_;
};

}  // namespace mpisim

#endif  // MPISIM_MAILBOX_HPP
