#ifndef MPISIM_MAILBOX_HPP
#define MPISIM_MAILBOX_HPP

/// \file mailbox.hpp
/// Tag-matched message queues for two-sided communication.
///
/// One mailbox per world rank; all access is serialized by the simulator's
/// global lock (see runtime.hpp), so the mailbox itself is a plain data
/// structure. Matching follows MPI rules: (communicator, source, tag) with
/// wildcard source/tag, FIFO per (source, tag) pair.
///
/// Receives come in two flavors. A blocking recv() matches against the
/// unexpected-message queue. A nonblocking irecv() *posts* a receive: the
/// posting is registered here, and a later push() delivers the payload
/// straight into the poster's buffer without ever queueing it (the MPI
/// posted-receive fast path). Posted receives win over concurrently blocked
/// recv() calls on the same match pattern, and messages consumed by a
/// posting are invisible to iprobe() -- both consequences of posting being
/// a real reservation rather than a lazy probe.

#include <cstddef>
#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <vector>

namespace mpisim {

/// Wildcards accepted by receive operations.
inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

/// An in-flight message. Payload is copied at send time (eager protocol).
struct Message {
  std::uint64_t comm_id = 0;  ///< communicator the send was posted on
  int src_comm_rank = 0;      ///< sender's rank in that communicator
  int tag = 0;
  std::vector<std::uint8_t> payload;
  double send_ts_ns = 0.0;  ///< sender's virtual clock at send
  /// Sender's vector clock at send, joined by the matching receive
  /// (happens-before piggyback, hb.hpp). Empty unless the race detector
  /// is enabled.
  std::vector<std::uint64_t> vc;
};

/// Completion information returned by receives.
struct Status {
  int source = kAnySource;  ///< matched sender (comm rank)
  int tag = kAnyTag;
  std::size_t bytes = 0;  ///< matched message size
};

/// Shared state of one posted (nonblocking) receive. Owned jointly by the
/// poster's Comm::Request and -- until matched or cancelled -- by the
/// destination mailbox's posted list. All fields are guarded by the
/// simulator's global lock. Delivery copies the payload into `buf` and
/// fills the completion fields; the poster's thread finishes the receive
/// (clock advance, happens-before join, truncation raise) at wait()/test().
struct PostedRecv {
  std::uint64_t comm_id = 0;
  int src = kAnySource;  ///< comm rank or kAnySource
  int tag = kAnyTag;
  void* buf = nullptr;
  std::size_t capacity = 0;

  bool matched = false;    ///< a message has been delivered
  bool cancelled = false;  ///< deregistered before matching (Request dtor)
  bool truncated = false;  ///< message exceeded capacity (raised at wait)
  std::size_t msg_bytes = 0;
  double send_ts_ns = 0.0;
  std::vector<std::uint64_t> vc;  ///< sender's clock (joined at completion)
  Status st;
};

/// Unexpected-message queue plus posted-receive registry for one
/// destination rank.
class Mailbox {
 public:
  /// Deliver a message: the first matching posted receive (post order)
  /// consumes it directly; otherwise it is appended to the unexpected
  /// queue (preserving per-(src,tag) FIFO order). Returns true when a
  /// posted receive consumed it.
  bool push(Message msg);

  /// True if a queued message matches (comm, src, tag). \p src and \p tag
  /// may be wildcards. Posted receives do not participate: a message they
  /// consumed was never queued.
  bool has_match(std::uint64_t comm_id, int src, int tag) const;

  /// Remove and return the first matching queued message. Requires
  /// has_match().
  Message pop_match(std::uint64_t comm_id, int src, int tag);

  /// Register a posted receive (irecv with no queued match). The mailbox
  /// holds a reference until delivery or cancel_posted().
  void post(std::shared_ptr<PostedRecv> rec);

  /// Deliver \p msg into \p rec immediately (irecv that found a queued
  /// match; \p rec must not be registered).
  static void deliver(PostedRecv& rec, Message msg);

  /// True when a currently posted receive would match a message with this
  /// envelope (the send-side cap check: such a message bypasses queueing).
  bool has_posted_match(std::uint64_t comm_id, int src_comm_rank,
                        int tag) const;

  /// Deregister \p rec if it is still posted (Request destructor/error
  /// paths; idempotent). Marks it cancelled.
  void cancel_posted(const std::shared_ptr<PostedRecv>& rec);

  /// Number of queued messages (diagnostics).
  std::size_t size() const noexcept { return queue_.size(); }

  /// Payload bytes currently buffered in the unexpected queue (the eager
  /// protocol's copy-out debt; posted-receive deliveries never count).
  std::size_t queued_bytes() const noexcept { return queued_bytes_; }

  /// High-water mark of queued_bytes() over this mailbox's lifetime.
  std::size_t high_water_bytes() const noexcept { return high_water_bytes_; }

 private:
  bool matches(const Message& m, std::uint64_t comm_id, int src,
               int tag) const;

  std::deque<Message> queue_;
  /// Posted receives in post order (matching scans front to back).
  std::list<std::shared_ptr<PostedRecv>> posted_;
  std::size_t queued_bytes_ = 0;
  std::size_t high_water_bytes_ = 0;
};

}  // namespace mpisim

#endif  // MPISIM_MAILBOX_HPP
