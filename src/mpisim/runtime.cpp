#include "src/mpisim/runtime.hpp"

#include <limits.h>
#include <pthread.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "src/mpisim/comm.hpp"

namespace mpisim {

namespace {

thread_local RankContext* t_ctx = nullptr;

/// Config::rma_check, unless MPISIM_RMA_CHECK overrides it
/// (off|warn|abort|race). The env hook lets CI rerun the whole suite in
/// abort or race mode with no code changes. An unknown value is almost
/// certainly a typo of an *enabling* level, so it must not silently run
/// unchecked at the config default: warn loudly and force off, making the
/// misconfiguration visible in any log that compares checked runs.
RmaCheck effective_rma_check(const Config& cfg) {
  const char* env = std::getenv("MPISIM_RMA_CHECK");
  if (env != nullptr) {
    RmaCheck parsed = RmaCheck::off;
    if (parse_rma_check(env, &parsed)) return parsed;
    std::fprintf(stderr,
                 "mpisim: unknown MPISIM_RMA_CHECK value \"%s\" "
                 "(expected off|warn|abort|race); checker disabled\n",
                 env);
    return RmaCheck::off;
  }
  return cfg.rma_check;
}

std::shared_ptr<CommImpl> make_world_impl(SimCore& core, int nranks,
                                          std::uint64_t id) {
  auto impl = std::make_shared<CommImpl>();
  impl->id = id;
  impl->core = &core;
  impl->group = Group::range(0, nranks);
  const auto n = static_cast<std::size_t>(nranks);
  impl->coll.inbufs.resize(n);
  impl->coll.outbufs.resize(n);
  impl->coll.incounts.resize(n);
  impl->coll.present.assign(n, 0);
  impl->shrink_calls.assign(n, 0);
  return impl;
}

}  // namespace

RankContext::RankContext(SimCore& core, int rank) : core_(&core), rank_(rank) {
  fault_.configure(core.config().fault, rank, &core, &tracer_);
}

RankContext::~RankContext() = default;

SimCore::SimCore(const Config& cfg)
    : cfg_(cfg),
      prof_(platform_profile(cfg.platform)),
      model_(prof_, cfg.ranks_per_node),
      checker_(effective_rma_check(cfg), cfg.check_conflicts, cfg.nranks),
      hb_(effective_rma_check(cfg) == RmaCheck::race, cfg.nranks,
          cfg.rma_check_max_intervals),
      mailboxes_(static_cast<std::size_t>(cfg.nranks)) {
  if (cfg.nranks < 1) raise(Errc::invalid_argument, "nranks < 1");
  running_ = cfg.nranks;
  in_wait_.assign(static_cast<std::size_t>(cfg.nranks), 0);
  pred_seen_gen_.assign(static_cast<std::size_t>(cfg.nranks), 0);
  dead_.assign(static_cast<std::size_t>(cfg.nranks), 0);
  death_ns_.assign(static_cast<std::size_t>(cfg.nranks), 0.0);
  ranks_.reserve(static_cast<std::size_t>(cfg.nranks));
  for (int r = 0; r < cfg.nranks; ++r)
    ranks_.push_back(std::make_unique<RankContext>(*this, r));
  // Comm id 0 is the runtime-internal system channel; world gets id 1.
  world_impl_ = make_world_impl(*this, cfg.nranks, next_comm_id_++);
}

SimCore::~SimCore() = default;

void SimCore::abort(std::exception_ptr err) noexcept {
  std::lock_guard lk(mu_);
  if (!aborted_) {
    aborted_ = true;
    first_error_ = err;
  }
  cv_.notify_all();
}

double SimCore::wait_enter_locked() noexcept {
  ++blocked_;
  if (t_ctx != nullptr) {
    in_wait_[static_cast<std::size_t>(t_ctx->rank())] = 1;
  } else {
    // A waiter outside any rank thread cannot be generation-tracked;
    // quiescent_locked() refuses to declare deadlock while one exists.
    ++anon_waiters_;
  }
  const double now = t_ctx != nullptr ? t_ctx->clock().now_ns() : latest_ns_;
  note_time_locked(now);
  return now;
}

void SimCore::wait_exit_locked() noexcept {
  --blocked_;
  if (t_ctx != nullptr)
    in_wait_[static_cast<std::size_t>(t_ctx->rank())] = 0;
  else
    --anon_waiters_;
}

void SimCore::mark_pred_unsatisfied_locked() noexcept {
  if (t_ctx != nullptr)
    pred_seen_gen_[static_cast<std::size_t>(t_ctx->rank())] = progress_gen_;
}

bool SimCore::quiescent_locked() const noexcept {
  if (running_ <= 0 || blocked_ != running_ || anon_waiters_ > 0) return false;
  for (std::size_t r = 0; r < in_wait_.size(); ++r)
    if (in_wait_[r] != 0 && pred_seen_gen_[r] != progress_gen_) return false;
  return true;
}

void SimCore::throw_aborted() {
  throw MpiError(Errc::aborted, "mpisim: aborted by peer failure");
}

void SimCore::throw_wait_timeout(const char* site, bool deadlock,
                                 double t0_ns) const {
  if (deadlock)
    throw MpiError(Errc::wait_timeout,
                   std::string("mpisim: deadlock detected: every live rank "
                               "is blocked and no progress is possible "
                               "(site: ") +
                       site + ")");
  throw MpiError(
      Errc::wait_timeout,
      std::string("mpisim: ") + site +
          " exceeded the virtual-time wait deadline of " +
          std::to_string(cfg_.wait_deadline_ns) + " ns (entered at " +
          std::to_string(t0_ns) + " ns, virtual time now " +
          std::to_string(latest_ns_) + " ns)");
}

void SimCore::rank_crashed(int rank, double now_ns) noexcept {
  std::lock_guard lk(mu_);
  if (rank < 0 || rank >= cfg_.nranks ||
      dead_[static_cast<std::size_t>(rank)] != 0)
    return;
  dead_[static_cast<std::size_t>(rank)] = 1;
  death_ns_[static_cast<std::size_t>(rank)] = now_ns;
  // Freeze the victim's vector clock: its final value is what recovery
  // edges (failure_ack / agree / shrink) hand to the survivors.
  hb_.note_death(rank);
  latest_dead_ = rank;
  ++death_epoch_;
  note_time_locked(now_ns);
  // A death can satisfy failure-aware wait predicates (recv from the dead
  // rank, collectives completing over the survivors), so it is progress.
  poke();
}

bool SimCore::is_failed(int r) {
  std::lock_guard lk(mu_);
  return is_dead_locked(r);
}

std::vector<int> SimCore::failed_ranks() {
  std::lock_guard lk(mu_);
  std::vector<int> out;
  for (int r = 0; r < cfg_.nranks; ++r)
    if (dead_[static_cast<std::size_t>(r)] != 0) out.push_back(r);
  return out;
}

void SimCore::note_death_observed_locked(int dead_rank) {
  require_internal(t_ctx != nullptr && is_dead_locked(dead_rank),
                   "observe_death on a live rank");
  const double died_at = death_ns_[static_cast<std::size_t>(dead_rank)];
  // The observer cannot learn of the death before the detector bound.
  t_ctx->clock().advance_to(detection_bound_locked(dead_rank));
  note_time_locked(t_ctx->clock().now_ns());
  t_ctx->last_detect_latency_ns = t_ctx->clock().now_ns() - died_at;
  Tracer& tr = t_ctx->tracer();
  if (tr.enabled()) {
    tr.begin(TraceCat::fault, "fault.detect",
             static_cast<std::uint64_t>(dead_rank));
    tr.end(TraceCat::fault, "fault.detect",
           static_cast<std::uint64_t>(dead_rank));
  }
}

void SimCore::observe_death_locked(int dead_rank, const char* site) {
  note_death_observed_locked(dead_rank);
  throw MpiError(
      Errc::crashed,
      std::string("mpisim: ") + site + ": rank " +
          std::to_string(dead_rank) + " is dead (died at " +
          std::to_string(death_ns_[static_cast<std::size_t>(dead_rank)]) +
          " ns, detected at " + std::to_string(t_ctx->clock().now_ns()) +
          " ns)");
}

void SimCore::rank_exited() noexcept {
  std::lock_guard lk(mu_);
  --running_;
  // Wake blocked peers without bumping the progress generation: an exit is
  // not progress toward any predicate, but survivors must re-evaluate
  // quiescence (a rank leaving a rendezvous unmatched is how deadlocks
  // from early exits arise).
  cv_.notify_all();
}

Mailbox& SimCore::mailbox(int r) {
  if (r < 0 || r >= cfg_.nranks)
    raise(Errc::rank_out_of_range, "mailbox rank " + std::to_string(r));
  return mailboxes_[static_cast<std::size_t>(r)];
}

RankContext& SimCore::rank_ctx(int r) {
  if (r < 0 || r >= cfg_.nranks)
    raise(Errc::rank_out_of_range, "rank " + std::to_string(r));
  return *ranks_[static_cast<std::size_t>(r)];
}

void SimCore::publish_comm_locked(std::uint64_t key,
                                  std::shared_ptr<CommImpl> impl) {
  auto [it, inserted] = published_.emplace(key, std::move(impl));
  (void)it;
  require_internal(inserted, "duplicate comm publication key");
}

std::shared_ptr<CommImpl> SimCore::fetch_published_comm(std::uint64_t key) {
  std::unique_lock lk(mu_);
  wait(lk, [&] { return published_.contains(key); }, "comm.publish");
  return published_.at(key);
}

void SimCore::publish_obj_locked(std::uint64_t key, std::shared_ptr<void> obj) {
  auto [it, inserted] = published_objs_.emplace(key, std::move(obj));
  (void)it;
  require_internal(inserted, "duplicate object publication key");
}

std::shared_ptr<void> SimCore::fetch_published_obj(std::uint64_t key) {
  std::unique_lock lk(mu_);
  wait(lk, [&] { return published_objs_.contains(key); }, "obj.publish");
  return published_objs_.at(key);
}

void SimCore::retire_published_obj(std::uint64_t key) {
  std::lock_guard lk(mu_);
  published_objs_.erase(key);
}

namespace {

struct ThreadArg {
  SimCore* core;
  int rank;
  const std::function<void()>* fn;
};

void* rank_thread_main(void* p) {
  auto* arg = static_cast<ThreadArg*>(p);
  SimCore& core = *arg->core;
  RankContext& me = core.rank_ctx(arg->rank);
  t_ctx = &me;
  try {
    (*arg->fn)();
  } catch (const MpiError& e) {
    // A survivable crash is an expected, per-rank failure: the victim is
    // already marked dead, peers observe Errc::crashed at their own
    // failure-aware sites, and the run continues over the survivors.
    // Anything else still tears the run down.
    if (!(e.code() == Errc::crashed && core.survivable() &&
          core.is_failed(me.rank())))
      core.abort(std::current_exception());
  } catch (...) {
    core.abort(std::current_exception());
  }
  if (me.user_state_cleanup) {
    // Run the layer-above cleanup under the global lock: after a peer
    // failure other ranks can still be mid-RMA, and holding mu() orders
    // their aborted check (check_failed_locked) before this rank releases
    // the global memory they would copy into.
    std::exception_ptr cleanup_err;
    {
      std::lock_guard lk(core.mu());
      try {
        me.user_state_cleanup();
      } catch (...) {
        // Cleanup failures after an abort are expected; keep the first error.
        cleanup_err = std::current_exception();
      }
      me.user_state_cleanup = nullptr;
    }
    if (cleanup_err) core.abort(cleanup_err);
  }
  core.rank_exited();
  t_ctx = nullptr;
  return nullptr;
}

}  // namespace

void run(const Config& cfg, const std::function<void()>& rank_main) {
  if (t_ctx != nullptr)
    raise(Errc::invalid_argument, "nested mpisim::run() is not supported");
  SimCore core(cfg);

  pthread_attr_t attr;
  pthread_attr_init(&attr);
  const std::size_t stack =
      std::max<std::size_t>(cfg.stack_bytes, PTHREAD_STACK_MIN);
  pthread_attr_setstacksize(&attr, stack);

  std::vector<pthread_t> threads(static_cast<std::size_t>(cfg.nranks));
  std::vector<ThreadArg> args(static_cast<std::size_t>(cfg.nranks));
  for (int r = 0; r < cfg.nranks; ++r) {
    args[static_cast<std::size_t>(r)] = {&core, r, &rank_main};
    const int rc = pthread_create(&threads[static_cast<std::size_t>(r)], &attr,
                                  rank_thread_main,
                                  &args[static_cast<std::size_t>(r)]);
    if (rc != 0) {
      core.abort(std::make_exception_ptr(
          MpiError(Errc::internal, "pthread_create failed")));
      for (int j = 0; j < r; ++j)
        pthread_join(threads[static_cast<std::size_t>(j)], nullptr);
      pthread_attr_destroy(&attr);
      raise(Errc::internal, "pthread_create failed for rank " +
                                std::to_string(r));
    }
  }
  pthread_attr_destroy(&attr);
  for (pthread_t t : threads) pthread_join(t, nullptr);

  if (core.first_error_) std::rethrow_exception(core.first_error_);
}

void run(int nranks, Platform platform,
         const std::function<void()>& rank_main) {
  Config cfg;
  cfg.nranks = nranks;
  cfg.platform = platform;
  run(cfg, rank_main);
}

RankContext& ctx() {
  if (t_ctx == nullptr)
    raise(Errc::invalid_argument, "mpisim call outside of mpisim::run()");
  return *t_ctx;
}

bool in_simulation() noexcept { return t_ctx != nullptr; }

int rank() { return ctx().rank(); }

int nranks() { return ctx().core().nranks(); }

Comm world() { return Comm(ctx().core().world_impl()); }

SimClock& clock() { return ctx().clock(); }

Tracer& tracer() { return ctx().tracer(); }

const NetworkModel& model() { return ctx().core().model(); }

}  // namespace mpisim
