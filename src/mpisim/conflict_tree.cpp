#include "src/mpisim/conflict_tree.hpp"

#include <algorithm>

namespace mpisim {

namespace detail {
struct CtNode {
  std::uintptr_t lo;
  std::uintptr_t hi;
  CtNode* left = nullptr;
  CtNode* right = nullptr;
  int height = 1;
};
}  // namespace detail

namespace {

using Node = detail::CtNode;

int height_of(const Node* n) noexcept { return n ? n->height : 0; }

void update_height(Node* n) noexcept {
  n->height = 1 + std::max(height_of(n->left), height_of(n->right));
}

int balance_of(const Node* n) noexcept {
  return height_of(n->left) - height_of(n->right);
}

Node* rotate_right(Node* y) noexcept {
  Node* x = y->left;
  y->left = x->right;
  x->right = y;
  update_height(y);
  update_height(x);
  return x;
}

Node* rotate_left(Node* x) noexcept {
  Node* y = x->right;
  x->right = y->left;
  y->left = x;
  update_height(x);
  update_height(y);
  return y;
}

Node* rebalance(Node* n) noexcept {
  update_height(n);
  const int b = balance_of(n);
  if (b > 1) {
    if (balance_of(n->left) < 0) n->left = rotate_left(n->left);
    return rotate_right(n);
  }
  if (b < -1) {
    if (balance_of(n->right) > 0) n->right = rotate_right(n->right);
    return rotate_left(n);
  }
  return n;
}

/// Merged check-and-insert (paper §VI-B): descend comparing against each
/// node; a new range that neither lies wholly below nor wholly above the
/// node's range overlaps it, and the insertion fails.
Node* insert_node(Node* n, std::uintptr_t lo, std::uintptr_t hi, bool& ok) {
  if (n == nullptr) {
    ok = true;
    return new Node{lo, hi};
  }
  if (hi < n->lo) {
    n->left = insert_node(n->left, lo, hi, ok);
  } else if (lo > n->hi) {
    n->right = insert_node(n->right, lo, hi, ok);
  } else {
    // lo or hi falls inside [n->lo, n->hi], or the new range encloses it.
    ok = false;
    return n;
  }
  return ok ? rebalance(n) : n;
}

const Node* find_overlap_node(const Node* n, std::uintptr_t lo,
                              std::uintptr_t hi) {
  while (n != nullptr) {
    if (hi < n->lo)
      n = n->left;
    else if (lo > n->hi)
      n = n->right;
    else
      return n;
  }
  return nullptr;
}

Node* min_node(Node* n) noexcept {
  while (n->left != nullptr) n = n->left;
  return n;
}

/// Standard AVL removal by key. Stored ranges are pairwise disjoint, so
/// ordering by lo alone identifies the node.
Node* erase_node(Node* n, std::uintptr_t lo, bool& removed) {
  if (n == nullptr) return nullptr;
  if (lo < n->lo) {
    n->left = erase_node(n->left, lo, removed);
  } else if (lo > n->lo) {
    n->right = erase_node(n->right, lo, removed);
  } else {
    removed = true;
    if (n->left == nullptr || n->right == nullptr) {
      Node* child = n->left != nullptr ? n->left : n->right;
      delete n;
      return child;
    }
    Node* s = min_node(n->right);
    n->lo = s->lo;
    n->hi = s->hi;
    bool inner = false;
    n->right = erase_node(n->right, s->lo, inner);
  }
  return rebalance(n);
}

void destroy(Node* n) noexcept {
  if (n == nullptr) return;
  destroy(n->left);
  destroy(n->right);
  delete n;
}

bool check_node(const Node* n, std::uintptr_t lo_bound, std::uintptr_t hi_bound,
                bool has_lo, bool has_hi) {
  if (n == nullptr) return true;
  if (n->lo > n->hi) return false;
  if (has_lo && n->lo <= lo_bound) return false;
  if (has_hi && n->hi >= hi_bound) return false;
  if (std::abs(balance_of(n)) > 1) return false;
  if (n->height != 1 + std::max(height_of(n->left), height_of(n->right)))
    return false;
  return check_node(n->left, lo_bound, n->lo, has_lo, true) &&
         check_node(n->right, n->hi, hi_bound, true, has_hi);
}

}  // namespace

ConflictTree::~ConflictTree() { destroy(root_); }

ConflictTree::ConflictTree(ConflictTree&& other) noexcept
    : root_(other.root_), size_(other.size_) {
  other.root_ = nullptr;
  other.size_ = 0;
}

ConflictTree& ConflictTree::operator=(ConflictTree&& other) noexcept {
  if (this != &other) {
    destroy(root_);
    root_ = other.root_;
    size_ = other.size_;
    other.root_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

bool ConflictTree::insert(std::uintptr_t lo, std::uintptr_t hi) {
  if (lo > hi) return false;
  bool ok = false;
  root_ = insert_node(root_, lo, hi, ok);
  if (ok) ++size_;
  return ok;
}

void ConflictTree::insert_merge(std::uintptr_t lo, std::uintptr_t hi) {
  if (lo > hi) return;
  // Absorb every stored range the new one touches, extending the new range
  // to their union, then insert the (now conflict-free) union.
  for (;;) {
    const Node* o = find_overlap_node(root_, lo, hi);
    if (o == nullptr) break;
    lo = std::min(lo, o->lo);
    hi = std::max(hi, o->hi);
    bool removed = false;
    root_ = erase_node(root_, o->lo, removed);
    if (removed) --size_;
  }
  bool ok = false;
  root_ = insert_node(root_, lo, hi, ok);
  if (ok) ++size_;
}

void ConflictTree::insert_coalesce(std::uintptr_t lo, std::uintptr_t hi) {
  if (lo > hi) return;
  // Widen the probe by one on each side (clamped at the type bounds) so
  // touching neighbours are absorbed too, but insert only the union of the
  // ranges actually found -- the probe widening must not leak into storage.
  for (;;) {
    const std::uintptr_t probe_lo = lo == 0 ? lo : lo - 1;
    const std::uintptr_t probe_hi = hi == std::uintptr_t(-1) ? hi : hi + 1;
    const Node* o = find_overlap_node(root_, probe_lo, probe_hi);
    if (o == nullptr) break;
    lo = std::min(lo, o->lo);
    hi = std::max(hi, o->hi);
    bool removed = false;
    root_ = erase_node(root_, o->lo, removed);
    if (removed) --size_;
  }
  bool ok = false;
  root_ = insert_node(root_, lo, hi, ok);
  if (ok) ++size_;
}

namespace {

void visit_node(const Node* n,
                const std::function<void(std::uintptr_t, std::uintptr_t)>& fn) {
  if (n == nullptr) return;
  visit_node(n->left, fn);
  fn(n->lo, n->hi);
  visit_node(n->right, fn);
}

}  // namespace

void ConflictTree::visit(
    const std::function<void(std::uintptr_t, std::uintptr_t)>& fn) const {
  visit_node(root_, fn);
}

bool ConflictTree::conflicts(std::uintptr_t lo, std::uintptr_t hi) const {
  if (lo > hi) return false;
  return find_overlap_node(root_, lo, hi) != nullptr;
}

bool ConflictTree::overlapping(std::uintptr_t lo, std::uintptr_t hi,
                               std::uintptr_t* out_lo,
                               std::uintptr_t* out_hi) const {
  if (lo > hi) return false;
  const Node* n = find_overlap_node(root_, lo, hi);
  if (n == nullptr) return false;
  *out_lo = n->lo;
  *out_hi = n->hi;
  return true;
}

void ConflictTree::clear() noexcept {
  destroy(root_);
  root_ = nullptr;
  size_ = 0;
}

int ConflictTree::height() const noexcept { return height_of(root_); }

bool ConflictTree::check_invariants() const {
  return check_node(root_, 0, 0, false, false);
}

}  // namespace mpisim
