#include "src/mpisim/op.hpp"

#include <algorithm>
#include <cstring>

#include "src/mpisim/error.hpp"

namespace mpisim {

std::size_t basic_type_size(BasicType t) noexcept {
  switch (t) {
    case BasicType::byte_: return 1;
    case BasicType::int32: return 4;
    case BasicType::int64: return 8;
    case BasicType::uint64: return 8;
    case BasicType::float32: return 4;
    case BasicType::float64: return 8;
  }
  return 0;
}

const char* basic_type_name(BasicType t) noexcept {
  switch (t) {
    case BasicType::byte_: return "byte";
    case BasicType::int32: return "int32";
    case BasicType::int64: return "int64";
    case BasicType::uint64: return "uint64";
    case BasicType::float32: return "float";
    case BasicType::float64: return "double";
  }
  return "unknown";
}

const char* op_name(Op op) noexcept {
  switch (op) {
    case Op::sum: return "sum";
    case Op::prod: return "prod";
    case Op::min: return "min";
    case Op::max: return "max";
    case Op::replace: return "replace";
    case Op::no_op: return "no_op";
    case Op::land: return "land";
    case Op::lor: return "lor";
    case Op::band: return "band";
    case Op::bor: return "bor";
  }
  return "unknown";
}

namespace {

template <typename T>
void apply_arith(Op op, T* dst, const T* src, std::size_t count) {
  switch (op) {
    case Op::sum:
      for (std::size_t i = 0; i < count; ++i) dst[i] = static_cast<T>(dst[i] + src[i]);
      return;
    case Op::prod:
      for (std::size_t i = 0; i < count; ++i) dst[i] = static_cast<T>(dst[i] * src[i]);
      return;
    case Op::min:
      for (std::size_t i = 0; i < count; ++i) dst[i] = std::min(dst[i], src[i]);
      return;
    case Op::max:
      for (std::size_t i = 0; i < count; ++i) dst[i] = std::max(dst[i], src[i]);
      return;
    case Op::replace:
      std::memcpy(dst, src, count * sizeof(T));
      return;
    case Op::no_op:
      return;
    default:
      break;
  }
  if constexpr (std::is_integral_v<T>) {
    switch (op) {
      case Op::land:
        for (std::size_t i = 0; i < count; ++i) dst[i] = static_cast<T>(dst[i] && src[i]);
        return;
      case Op::lor:
        for (std::size_t i = 0; i < count; ++i) dst[i] = static_cast<T>(dst[i] || src[i]);
        return;
      case Op::band:
        for (std::size_t i = 0; i < count; ++i) dst[i] = static_cast<T>(dst[i] & src[i]);
        return;
      case Op::bor:
        for (std::size_t i = 0; i < count; ++i) dst[i] = static_cast<T>(dst[i] | src[i]);
        return;
      default:
        break;
    }
  }
  raise(Errc::invalid_argument,
        std::string("operator ") + op_name(op) + " undefined for this element type");
}

}  // namespace

void apply_op(Op op, BasicType t, void* dst, const void* src, std::size_t count) {
  switch (t) {
    case BasicType::byte_:
      apply_arith(op, static_cast<std::uint8_t*>(dst), static_cast<const std::uint8_t*>(src), count);
      return;
    case BasicType::int32:
      apply_arith(op, static_cast<std::int32_t*>(dst), static_cast<const std::int32_t*>(src), count);
      return;
    case BasicType::int64:
      apply_arith(op, static_cast<std::int64_t*>(dst), static_cast<const std::int64_t*>(src), count);
      return;
    case BasicType::uint64:
      apply_arith(op, static_cast<std::uint64_t*>(dst), static_cast<const std::uint64_t*>(src), count);
      return;
    case BasicType::float32:
      apply_arith(op, static_cast<float*>(dst), static_cast<const float*>(src), count);
      return;
    case BasicType::float64:
      apply_arith(op, static_cast<double*>(dst), static_cast<const double*>(src), count);
      return;
  }
  raise(Errc::invalid_argument, "unknown basic type");
}

}  // namespace mpisim
