#ifndef MPISIM_CONFLICT_TREE_HPP
#define MPISIM_CONFLICT_TREE_HPP

/// \file conflict_tree.hpp
/// O(N log N) range overlap detection (paper §VI-B).
///
/// The batched and datatype (direct) IOV transfer methods are erroneous if
/// any two segments overlap; detecting that with a naive pairwise scan is
/// O(N^2), and NWChem IOV descriptors reach tens to hundreds of thousands of
/// segments. The paper's "auto" method instead inserts each segment's byte
/// range [lo..hi] into a self-balancing binary tree ordered such that every
/// node's left subtree lies entirely below lo and right subtree entirely
/// above hi; an overlap is detected during the (merged) check-and-insert
/// descent. Unlike an interval tree, the structure never *stores* an
/// overlapping range -- insertion simply fails, which is exactly the signal
/// the auto method needs to fall back to the conservative transfer method.
///
/// This implementation uses an AVL tree (Adelson-Velskii & Landis), as the
/// paper does, with the check and insert steps merged into one descent plus
/// the usual rebalancing on the way back up.
///
/// The tree lives in mpisim (shared with the armci layer through a using
/// alias) because the RMA validity checker (checker.hpp) reuses it for its
/// per-epoch access-interval bookkeeping: the union-building insert_merge()
/// plus overlapping() give the checker O(log N) conflict queries over the
/// same structure the paper uses for IOV overlap detection.

#include <cstddef>
#include <cstdint>
#include <functional>

namespace mpisim {

namespace detail {
struct CtNode;
}

/// Self-balancing tree of disjoint address ranges with overlap-rejecting
/// insertion. Addresses are arbitrary uintptr_t values; ranges are
/// *inclusive* [lo, hi] to match the paper's formulation.
class ConflictTree {
 public:
  ConflictTree() = default;
  ~ConflictTree();

  ConflictTree(ConflictTree&&) noexcept;
  ConflictTree& operator=(ConflictTree&&) noexcept;
  ConflictTree(const ConflictTree&) = delete;
  ConflictTree& operator=(const ConflictTree&) = delete;

  /// Insert [lo, hi] (inclusive; lo <= hi required). Returns true on
  /// success; returns false -- leaving the tree unchanged -- if the range
  /// overlaps any stored range. Single O(log N) descent.
  bool insert(std::uintptr_t lo, std::uintptr_t hi);

  /// Insert the union: any stored ranges overlapping [lo, hi] are removed
  /// and replaced by one range covering them all. Unlike insert(), this
  /// never fails -- it is the accumulation primitive of the RMA checker,
  /// which records coverage and must keep recording after an overlap.
  void insert_merge(std::uintptr_t lo, std::uintptr_t hi);

  /// insert_merge() that additionally absorbs stored ranges *adjacent* to
  /// [lo, hi] (other.hi + 1 == lo or hi + 1 == other.lo). Accumulation
  /// primitive of the happens-before shadow store (hb.hpp), which coalesces
  /// neighbouring same-class intervals to bound checker memory.
  void insert_coalesce(std::uintptr_t lo, std::uintptr_t hi);

  /// In-order traversal: invoke \p fn(lo, hi) for every stored range in
  /// ascending order. Lets the happens-before detector union one coverage
  /// tree into another when merging access summaries.
  void visit(
      const std::function<void(std::uintptr_t, std::uintptr_t)>& fn) const;

  /// True if [lo, hi] overlaps a stored range (no insertion).
  bool conflicts(std::uintptr_t lo, std::uintptr_t hi) const;

  /// If [lo, hi] overlaps a stored range, copy that range into
  /// (*out_lo, *out_hi) and return true (diagnostics: the checker reports
  /// the previously recorded interval a new access collides with).
  bool overlapping(std::uintptr_t lo, std::uintptr_t hi,
                   std::uintptr_t* out_lo, std::uintptr_t* out_hi) const;

  /// Number of stored ranges.
  std::size_t size() const noexcept { return size_; }

  bool empty() const noexcept { return size_ == 0; }

  /// Remove all ranges.
  void clear() noexcept;

  /// Tree height (diagnostics; AVL guarantees O(log N)).
  int height() const noexcept;

  /// Internal invariant check for tests: AVL balance and ordering hold.
  bool check_invariants() const;

 private:
  detail::CtNode* root_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace mpisim

#endif  // MPISIM_CONFLICT_TREE_HPP
