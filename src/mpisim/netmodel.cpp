#include "src/mpisim/netmodel.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace mpisim {

namespace {

constexpr double kUs = 1000.0;         // ns per microsecond
constexpr double kGiB = 1073741824.0;  // bytes per GiB

/// ns to move `bytes` at `gbps` GiB/s (0 bandwidth = free, for Ideal).
double xfer_ns(std::size_t bytes, double gbps) {
  if (gbps <= 0.0) return 0.0;
  return static_cast<double>(bytes) / (gbps * kGiB) * 1e9;
}

int ceil_log2(int n) {
  int l = 0;
  while ((1 << l) < n) ++l;
  return l;
}

}  // namespace

double NetworkModel::p2p_ns(std::size_t bytes) const {
  return prof_->net_latency_us * kUs + xfer_ns(bytes, prof_->net_bw_gbps);
}

double NetworkModel::lock_ns() const { return prof_->mpi_lock_us * kUs; }

double NetworkModel::unlock_ns() const { return prof_->mpi_unlock_us * kUs; }

double NetworkModel::wire_ns(RmaKind kind, std::size_t bytes, Path path,
                             bool local_pinned) const {
  double eff;
  if (path == Path::mpi) {
    eff = (kind == RmaKind::acc) ? prof_->mpi_acc_eff : prof_->mpi_bw_eff;
    if (prof_->mpi_bw_kink_bytes != 0 && bytes > prof_->mpi_bw_kink_bytes)
      eff *= prof_->mpi_bw_eff_large;
  } else {
    eff = (kind == RmaKind::acc) ? prof_->nat_acc_eff : prof_->nat_bw_eff;
    if (!local_pinned) eff *= prof_->nat_unpinned_eff;
  }
  eff = std::max(eff, 1e-6);
  return xfer_ns(bytes, prof_->net_bw_gbps * eff);
}

double NetworkModel::rma_op_ns(RmaKind kind, std::size_t bytes,
                               std::size_t nsegments, Path path,
                               std::size_t op_index, bool local_pinned,
                               int nranks) const {
  double ns = 0.0;
  if (path == Path::mpi) {
    ns += prof_->mpi_op_us * kUs;
    ns += static_cast<double>(nsegments) * prof_->mpi_dt_seg_us * kUs;
    // Per-epoch queue-scan degradation (MVAPICH2 batched-op issue): the
    // i-th op in an epoch pays i * a small constant, i.e. O(n^2) per epoch.
    ns += static_cast<double>(op_index) * prof_->mpi_epoch_quad_us * kUs;
    // Ops after the first in an epoch are issued nonblocking and pipeline
    // behind it; only the first pays the full wire latency.
    if (op_index == 0) ns += prof_->net_latency_us * kUs;
  } else {
    ns += prof_->nat_op_us * kUs;
    ns += static_cast<double>(nsegments) * prof_->nat_seg_us * kUs;
    ns += prof_->net_latency_us * kUs;
  }
  ns += wire_ns(kind, bytes, path, local_pinned);
  if (path == Path::native && nranks > 0) {
    // Congestion sensitivity of the native stack, used to model the Cray
    // XE6 development-release ARMCI whose performance flattens at scale.
    ns += prof_->nat_congestion_us_per_rank * static_cast<double>(nranks) * kUs;
  }
  return ns;
}

double NetworkModel::rma_wire_ns(RmaKind kind, std::size_t bytes, Path path,
                                 bool local_pinned) const {
  return wire_ns(kind, bytes, path, local_pinned);
}

double NetworkModel::pack_ns(std::size_t bytes) const {
  return xfer_ns(bytes, prof_->copy_gbps);
}

double NetworkModel::shm_copy_ns(std::size_t bytes) const {
  return prof_->shm_latency_us * kUs + xfer_ns(bytes, prof_->shm_bw_gbps);
}

double NetworkModel::dtype_build_ns(std::size_t nsegments) const {
  return prof_->mpi_dt_commit_us * kUs +
         static_cast<double>(nsegments) * prof_->mpi_dt_seg_us * 0.25 * kUs;
}

double NetworkModel::registration_ns(std::size_t pages) const {
  return static_cast<double>(pages) * prof_->reg_page_us * kUs;
}

double NetworkModel::tree_collective_ns(std::size_t bytes, int nranks) const {
  if (nranks <= 1) return 0.0;
  return static_cast<double>(ceil_log2(nranks)) * p2p_ns(bytes);
}

double NetworkModel::barrier_ns(int nranks) const {
  return 2.0 * tree_collective_ns(0, nranks);
}

double NetworkModel::alltoall_ns(std::size_t bytes_per_peer, int nranks) const {
  if (nranks <= 1) return 0.0;
  return static_cast<double>(nranks - 1) * p2p_ns(bytes_per_peer);
}

}  // namespace mpisim
