#include "src/mpisim/mailbox.hpp"

#include <algorithm>
#include <cstring>

#include "src/mpisim/error.hpp"

namespace mpisim {

bool Mailbox::matches(const Message& m, std::uint64_t comm_id, int src,
                      int tag) const {
  return m.comm_id == comm_id && (src == kAnySource || m.src_comm_rank == src) &&
         (tag == kAnyTag || m.tag == tag);
}

void Mailbox::deliver(PostedRecv& rec, Message msg) {
  require_internal(!rec.matched && !rec.cancelled,
                   "delivery into a completed posted receive");
  rec.matched = true;
  rec.msg_bytes = msg.payload.size();
  rec.truncated = msg.payload.size() > rec.capacity;
  // A truncating message still delivers the prefix (diagnosability); the
  // poster raises Errc::truncation when it completes the request.
  std::memcpy(rec.buf, msg.payload.data(),
              std::min(msg.payload.size(), rec.capacity));
  rec.send_ts_ns = msg.send_ts_ns;
  rec.vc = std::move(msg.vc);
  rec.st.source = msg.src_comm_rank;
  rec.st.tag = msg.tag;
  rec.st.bytes = msg.payload.size();
}

bool Mailbox::push(Message msg) {
  for (auto it = posted_.begin(); it != posted_.end(); ++it) {
    PostedRecv& rec = **it;
    if (rec.comm_id != msg.comm_id) continue;
    if (rec.src != kAnySource && rec.src != msg.src_comm_rank) continue;
    if (rec.tag != kAnyTag && rec.tag != msg.tag) continue;
    deliver(rec, std::move(msg));
    posted_.erase(it);
    return true;
  }
  queued_bytes_ += msg.payload.size();
  high_water_bytes_ = std::max(high_water_bytes_, queued_bytes_);
  queue_.push_back(std::move(msg));
  return false;
}

bool Mailbox::has_match(std::uint64_t comm_id, int src, int tag) const {
  for (const Message& m : queue_)
    if (matches(m, comm_id, src, tag)) return true;
  return false;
}

Message Mailbox::pop_match(std::uint64_t comm_id, int src, int tag) {
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (matches(*it, comm_id, src, tag)) {
      Message m = std::move(*it);
      queue_.erase(it);
      queued_bytes_ -= m.payload.size();
      return m;
    }
  }
  raise(Errc::internal, "pop_match without has_match");
}

void Mailbox::post(std::shared_ptr<PostedRecv> rec) {
  posted_.push_back(std::move(rec));
}

bool Mailbox::has_posted_match(std::uint64_t comm_id, int src_comm_rank,
                               int tag) const {
  for (const auto& rec : posted_) {
    if (rec->comm_id != comm_id) continue;
    if (rec->src != kAnySource && rec->src != src_comm_rank) continue;
    if (rec->tag != kAnyTag && rec->tag != tag) continue;
    return true;
  }
  return false;
}

void Mailbox::cancel_posted(const std::shared_ptr<PostedRecv>& rec) {
  rec->cancelled = true;
  for (auto it = posted_.begin(); it != posted_.end(); ++it) {
    if (it->get() == rec.get()) {
      posted_.erase(it);
      return;
    }
  }
}

}  // namespace mpisim

