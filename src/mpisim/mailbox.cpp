#include "src/mpisim/mailbox.hpp"

#include "src/mpisim/error.hpp"

namespace mpisim {

bool Mailbox::matches(const Message& m, std::uint64_t comm_id, int src,
                      int tag) const {
  return m.comm_id == comm_id && (src == kAnySource || m.src_comm_rank == src) &&
         (tag == kAnyTag || m.tag == tag);
}

bool Mailbox::has_match(std::uint64_t comm_id, int src, int tag) const {
  for (const Message& m : queue_)
    if (matches(m, comm_id, src, tag)) return true;
  return false;
}

Message Mailbox::pop_match(std::uint64_t comm_id, int src, int tag) {
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (matches(*it, comm_id, src, tag)) {
      Message m = std::move(*it);
      queue_.erase(it);
      return m;
    }
  }
  raise(Errc::internal, "pop_match without has_match");
}

}  // namespace mpisim
