#ifndef MPISIM_HB_HPP
#define MPISIM_HB_HPP

/// \file hb.hpp
/// Happens-before race detector for the simulated PGAS memory model.
///
/// The epoch checker (checker.hpp) validates MPI-2 access rules *within* a
/// <window, target, epoch>: it is blind to conflicts whose only defense is a
/// missing synchronization edge between epochs -- the class of bugs the PGAS
/// memory-model literature identifies as dominant in real RMA codes. This
/// detector closes that gap with vector clocks: one clock per world rank,
/// advanced by every synchronization edge the simulator observes:
///
///  - exclusive lock epochs: the target-side lock slot serializes them, so
///    an unlock releases its clock into the slot and a later lock acquires
///    it (this also orders armci::Mutex critical sections for free -- the
///    mutex protocol runs on exclusive epochs plus token messages);
///  - shared/lock_all epochs: a shared unlock releases into the slot's
///    shared-join; a later *exclusive* lock acquires it (shared holders do
///    not order each other, and a flush publishes accesses without creating
///    any inter-rank edge -- exactly MPI's semantics);
///  - two-sided messages (including the runtime's internal channels): every
///    send carries the sender's clock, every matching receive joins it;
///  - collectives: all arrivals join into a round accumulator that every
///    departer acquires (barrier = full join);
///  - notify/wait: an explicit named-channel edge keyed by the flag address
///    (the MPI-3 backend posts the flag under lock_all, where no lock-slot
///    edge exists);
///  - failure recovery (survivable mode): failure_ack / agree / shrink
///    acquire the final clocks of the dead, so post-recovery accesses to a
///    dead rank's published data are ordered -- and accesses *without* the
///    recovery edge are reported as dead_origin races.
///
/// Accesses are recorded in a two-tier shadow store per <space, target>
/// (space = window id, or a synthetic id for the native backend's
/// window-less memory): in-flight accesses stay *pending* from issue until
/// their epoch publishes them (unlock / flush / access-guard end), then
/// become *summaries* stamped with the publisher's clock. A new access races
/// with (a) any other-origin pending access that conflicts under the MPI
/// accumulate-aware rules -- no ordering can exist before the publication
/// point, the missing flush IS the edge -- and (b) any conflicting summary
/// whose clock the accessor has not acquired. Races raise Errc::rma_race at
/// the issuing operation with both access sites and the missing edge named.
///
/// Memory is bounded three ways (Config::rma_check_max_intervals):
/// summaries every live peer has already acquired are pruned exactly;
/// under pressure same-origin summaries merge with component-wise *minimum*
/// clocks (provably only false negatives, never false positives) and
/// coalesced intervals; past the hard cap the oldest summaries drop and the
/// overflow counter records the lost coverage.
///
/// Thread-safety: every method except counts()/total_counts() must be
/// called with SimCore::mu() held. Counters are atomics so the metrics
/// exporters can read them from any rank thread without the lock.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/mpisim/checker.hpp"
#include "src/mpisim/conflict_tree.hpp"
#include "src/mpisim/op.hpp"

namespace mpisim {

/// Vector clock: one component per world rank.
using HbClock = std::vector<std::uint64_t>;

/// Race classes (counter buckets; also named in diagnostics).
enum class HbRace {
  ww,           ///< unordered write vs write (put/put)
  rw,           ///< unordered read vs write (get vs put or accumulate)
  acc_mix,      ///< accumulate vs non-accumulate or different-op accumulate
  shm,          ///< a direct (shared-memory or local) access is involved
  dead_origin,  ///< conflicts with a dead rank's data, no recovery edge
};

inline constexpr int kHbRaceCount = 5;

const char* hb_race_name(HbRace c) noexcept;

/// Snapshot of race counters (per rank or totalled).
struct HbRaceCounts {
  std::uint64_t ww = 0;
  std::uint64_t rw = 0;
  std::uint64_t acc_mix = 0;
  std::uint64_t shm = 0;
  std::uint64_t dead_origin = 0;
  /// Summaries dropped by the interval cap: coverage silently lost.
  std::uint64_t overflow = 0;

  std::uint64_t total() const noexcept {
    return ww + rw + acc_mix + shm + dead_origin;
  }
};

/// The detector. One instance per SimCore, active at RmaCheck::race.
class HbChecker {
 public:
  using OpKind = RmaChecker::OpKind;

  /// \p max_intervals caps the shadow store's total recorded intervals
  /// (Config::rma_check_max_intervals); 0 means unbounded.
  HbChecker(bool enabled, int nranks, std::size_t max_intervals);

  HbChecker(const HbChecker&) = delete;
  HbChecker& operator=(const HbChecker&) = delete;

  bool enabled() const noexcept { return enabled_; }

  /// Space-id tag for the native backend's window-less memory regions: the
  /// top bit over the GMR id keeps them disjoint from window ids.
  static constexpr std::uint64_t kNativeSpace = 1ull << 63;

  /// RAII: suppress access recording on the calling thread. Used for
  /// synchronization-word accesses (notify flags): like an atomic in TSan,
  /// a sync word orders other data and is exempt from race checking itself
  /// -- its ordering is expressed through channel_release/channel_acquire.
  class MuteScope {
   public:
    MuteScope() noexcept { ++muted_; }
    ~MuteScope() { --muted_; }
    MuteScope(const MuteScope&) = delete;
    MuteScope& operator=(const MuteScope&) = delete;
  };

  // ---- synchronization edges (caller holds SimCore::mu()) ----

  /// Release for a message send: tick, snapshot the sender's clock.
  HbClock send_snapshot(int world_src);

  /// Acquire on the matching receive: join \p vc into the receiver.
  void recv_join(int world_dst, const HbClock& vc);

  /// A rank arrived at a collective round: tick and join its clock into
  /// the round accumulator \p acc (resized on first arrival).
  void coll_arrive(HbClock& acc, int world_rank);

  /// A rank departs the completed round: acquire the accumulator.
  void coll_depart(int world_rank, const HbClock& acc);

  /// Release half of a named synchronization channel (notify/wait pairs,
  /// keyed by the flag's address).
  void channel_release(std::uint64_t key, int world_src);

  /// Acquire half: join the channel's clock into \p world_dst (no-op if
  /// the channel was never released).
  void channel_acquire(std::uint64_t key, int world_dst);

  /// \p world_rank died: freeze its clock (and its progress persona's) and
  /// mark both for dead_origin classification.
  void note_death(int world_rank);

  /// Recovery edge (failure_ack / agree / shrink): the observer acquires
  /// every dead rank's final clock (persona rows included).
  void ack_deaths(int world_observer);

  // ---- progress persona (caller holds SimCore::mu()) ----
  //
  // A rank's cooperative progress engine acts on deferred operations'
  // *local* buffers after the application call has returned. Those
  // deferred-contract accesses are recorded under a distinct clock
  // identity -- the rank's "progress persona", clock row nranks + r -- so
  // an application touch of a busy buffer before the engine retires the
  // operation is an unordered cross-identity conflict (a real race), while
  // retirement creates an explicit persona -> owner happens-before edge
  // that makes later touches clean. Target-side records of persona-issued
  // operations keep the application identity: the engine runs
  // cooperatively on the owner's thread and only publishes earlier than
  // wait() would have.

  /// Clock identity of \p world_rank's progress persona.
  int persona(int world_rank) const noexcept { return nranks_ + world_rank; }

  /// Order the persona after its owner's current program point (call
  /// before the persona records on the owner's behalf).
  void persona_sync(int owner);

  /// The retirement edge: the owner acquires its persona's clock. Call
  /// after publishing the persona's pending accesses.
  void persona_retire(int owner);

  /// Record a deferred-operation local-buffer contract interval under the
  /// persona identity WITHOUT checking it (recording never reports; the
  /// race fires when a conflicting access checks against it later).
  void record_local_pending(std::uint64_t space, int target, int origin,
                            int world_origin, OpKind kind, Op op,
                            std::ptrdiff_t lo, std::ptrdiff_t hi,
                            const char* scope);

  // ---- epoch lifecycle (caller holds SimCore::mu()) ----

  /// A lock was granted on <win, target>. Every grant acquires the last
  /// exclusive release; an exclusive grant additionally acquires the joined
  /// shared releases (the grant waited for all of them). lock_all grants
  /// are shared grants on every target.
  void lock_granted(std::uint64_t win, int target, int world_origin,
                    bool exclusive);

  /// unlock/unlock_all on <win, target>: publish the origin's pending
  /// accesses and release its clock into the slot.
  void lock_released(std::uint64_t win, int target, int world_origin,
                     bool exclusive);

  /// flush/flush_all: publish pending accesses -- publication only, a
  /// flush creates no inter-rank edge.
  void epoch_flushed(std::uint64_t win, int target, int world_origin);

  /// The epoch's origin died before completing: drop its pending accesses
  /// silently (they never completed; see checker.hpp epoch_abandoned).
  void epoch_abandoned(std::uint64_t win, int target, int world_origin);

  /// Window destroyed (collective): drop all its shadow state.
  void window_freed(std::uint64_t win);

  // ---- access recording (caller holds SimCore::mu()) ----

  /// Record one target-side byte interval of an RMA operation issued by
  /// \p world_origin (window-communicator rank \p origin, for diagnostics):
  /// check it against the shadow store, raising Errc::rma_race on an
  /// unordered conflict, then add it to the origin's pending set.
  void record_op(std::uint64_t space, int target, int origin,
                 int world_origin, OpKind kind, Op op, std::ptrdiff_t lo,
                 std::ptrdiff_t hi, const char* scope);

  /// An atomically-completing direct access (shm fast path, native
  /// backend): check and publish in one step under the global lock.
  void direct_op(std::uint64_t space, int target, int origin,
                 int world_origin, OpKind kind, Op op, std::ptrdiff_t lo,
                 std::ptrdiff_t hi, const char* scope);

  /// A direct access held open over an interval (DLA local access without
  /// exclusive-epoch coverage, shm access guards): check and record as
  /// pending until access_end(). \p write selects store vs load.
  void access_begin(std::uint64_t space, int target, int origin,
                    int world_origin, bool write, std::ptrdiff_t lo,
                    std::ptrdiff_t hi, const char* scope);

  /// End of the guard access that began at \p lo: publish it.
  void access_end(std::uint64_t space, int target, int world_origin,
                  std::ptrdiff_t lo);

  // ---- counters (lock-free reads) ----

  HbRaceCounts counts(int world_rank) const noexcept;
  HbRaceCounts total_counts() const noexcept;

  /// Total intervals currently held in the shadow store (tests; requires
  /// SimCore::mu()).
  std::size_t shadow_intervals() const noexcept { return intervals_; }

 private:
  /// One recorded, not-yet-published access.
  struct Pending {
    int origin = -1;        ///< communicator rank (diagnostics)
    int world_origin = -1;  ///< clock identity
    OpKind kind = OpKind::put;
    Op op = Op::sum;
    bool direct = false;  ///< guard-style direct access (not RMA)
    std::uintptr_t lo = 0;  ///< inclusive, matching ConflictTree
    std::uintptr_t hi = 0;
    const char* scope = nullptr;
  };

  /// Published coverage of one origin's epoch (or one direct access),
  /// stamped with the publisher's clock at publication.
  struct Summary {
    std::uint64_t id = 0;   ///< publication number (diagnostics)
    int origin = -1;
    int world_origin = -1;
    bool any_direct = false;
    const char* how = nullptr;  ///< "unlock", "flush", "access-end", ...
    const char* scope = nullptr;
    HbClock vc;
    ConflictTree reads;
    ConflictTree writes;
    std::map<Op, ConflictTree> accs;

    std::size_t interval_count() const noexcept;
  };

  /// Target-side lock slot: the release clocks later grants acquire.
  struct Slot {
    HbClock excl;         ///< last exclusive release
    HbClock shared_join;  ///< join of shared releases since then
  };

  struct TargetRec {
    Slot slot;
    std::vector<Pending> pending;
    std::list<Summary> summaries;
  };

  using SpaceKey = std::pair<std::uint64_t, int>;  ///< <space id, target>

  struct PerRankCounts {
    std::atomic<std::uint64_t> v[kHbRaceCount] = {};
    std::atomic<std::uint64_t> overflow{0};
  };

  void tick(int world_rank);
  void join(HbClock& into, const HbClock& from) const;
  bool ordered(const HbClock& vc, int world_rank) const;

  /// Check one new access against \p t's pending and published state;
  /// raises Errc::rma_race on an unordered conflict.
  void check(const TargetRec& t, std::uint64_t space, int target,
             const Pending& a);

  /// Move \p world_origin's pending RMA accesses into a summary stamped
  /// with its (ticked) clock, then enforce the memory bound.
  void publish(TargetRec& t, int world_origin, const char* how);

  /// Publish a single access (atomic direct op, or a guard access ending)
  /// as its own summary.
  void publish_one(TargetRec& t, const Pending& a, const char* how);

  /// Prune acquired-everywhere summaries, merge same-origin summaries
  /// under pressure, and enforce the hard cap (counting overflow against
  /// \p world_origin).
  void bound_memory(TargetRec& t, int world_origin);

  [[noreturn]] void report(HbRace cls, int world_rank, std::string msg);

  /// "rank N", or "rank N's progress persona" for persona identities.
  std::string rank_desc(int world) const;

  static thread_local int muted_;

  bool enabled_;
  int nranks_;
  std::size_t max_intervals_;
  std::size_t intervals_ = 0;  ///< current shadow-store interval total
  std::uint64_t next_id_ = 1;
  std::vector<HbClock> clocks_;
  std::vector<std::uint8_t> dead_;
  std::map<SpaceKey, TargetRec> spaces_;
  std::map<std::uint64_t, HbClock> channels_;
  std::vector<PerRankCounts> per_rank_;
};

}  // namespace mpisim

#endif  // MPISIM_HB_HPP
