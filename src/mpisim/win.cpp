#include "src/mpisim/win.hpp"

#include <algorithm>
#include <cstring>

#include "src/mpisim/checker.hpp"
#include "src/mpisim/error.hpp"
#include "src/mpisim/runtime.hpp"

namespace mpisim {

namespace detail {

/// One origin's open access epoch on one target. Access-interval tracking
/// lives in the RMA checker (checker.hpp), keyed by <window, target,
/// origin>; the window only keeps what the lock protocol itself needs.
struct Epoch {
  LockType type = LockType::exclusive;
  std::size_t ops_issued = 0;
};

/// locked_target sentinel: the origin holds a lock_all epoch.
constexpr int kLockAll = -2;

/// Per-target lock and epoch state.
struct TargetState {
  std::map<int, Epoch> open;  // origin comm rank -> epoch
  std::deque<std::pair<int, LockType>> waiters;
  double busy_until_ns = 0.0;  // virtual end of the last exclusive epoch
};

struct WinImpl {
  std::uint64_t id = 0;
  Comm comm;
  std::vector<void*> bases;
  std::vector<std::size_t> sizes;
  std::vector<TargetState> targets;
  std::vector<int> locked_target;  // per-origin: target locked, or -1
  bool freed = false;
  // allocate_shared() windows: the window owns one block per node, and
  // bases[] point into the block of the rank's node.
  bool shared = false;
  std::vector<std::unique_ptr<std::uint8_t[]>> node_blocks;
};

namespace {

/// Survivor-side lock-state cleanup: a dead rank can neither complete the
/// epochs it holds nor consume the grants it queued for, so both would
/// stall every later requester forever. Abandon its open epochs (silently
/// -- see RmaChecker::epoch_abandoned) and drop its queued requests.
/// Caller must hold the global lock.
void purge_dead_locked(SimCore& core, WinImpl& w, int target) {
  TargetState& ts = w.targets[static_cast<std::size_t>(target)];
  for (auto it = ts.open.begin(); it != ts.open.end();) {
    const int world = w.comm.group().world_rank(it->first);
    if (core.is_dead_locked(world)) {
      core.checker().epoch_abandoned(w.id, target, it->first);
      core.hb().epoch_abandoned(w.id, target, world);
      it = ts.open.erase(it);
    } else {
      ++it;
    }
  }
  std::erase_if(ts.waiters, [&](const std::pair<int, LockType>& wtr) {
    return core.is_dead_locked(w.comm.group().world_rank(wtr.first));
  });
}

/// Grant as many queued lock requests as compatibility allows (FIFO).
/// Registers each granted epoch with the RMA checker here -- not after the
/// waiter's wait() returns -- so a ghost handoff by an epoch closing in
/// between already sees the new epoch as concurrent.
void grant_locked(SimCore& core, WinImpl& w, int target) {
  if (core.survivable()) purge_dead_locked(core, w, target);
  TargetState& ts = w.targets[static_cast<std::size_t>(target)];
  while (!ts.waiters.empty()) {
    auto [origin, type] = ts.waiters.front();
    const bool has_exclusive =
        std::any_of(ts.open.begin(), ts.open.end(), [](const auto& kv) {
          return kv.second.type == LockType::exclusive;
        });
    if (type == LockType::exclusive) {
      if (!ts.open.empty()) return;
    } else {
      if (has_exclusive) return;
    }
    Epoch ep;
    ep.type = type;
    ts.open.emplace(origin, ep);
    core.checker().epoch_opened(w.id, target, origin,
                                type == LockType::exclusive);
    core.hb().lock_granted(w.id, target, w.comm.group().world_rank(origin),
                           type == LockType::exclusive);
    ts.waiters.pop_front();
  }
}

/// Validate a target rank before indexing per-target window state.
void require_target(const WinImpl& w, int target_rank, const char* site) {
  if (target_rank < 0 || target_rank >= w.comm.size())
    raise(Errc::rank_out_of_range, std::string(site) + " target " +
                                       std::to_string(target_rank));
}

/// Window-group rank of the caller; raises if the caller is not in the
/// window's group (every passive-target entry point needs this before
/// indexing locked_target).
int require_member(const WinImpl& w, RankContext& me) {
  const int myrank = w.comm.group().rank_of_world(me.rank());
  if (myrank < 0) raise(Errc::rank_out_of_range, "caller not in window group");
  return myrank;
}

/// The caller's innermost traced operation, for checker diagnostics.
const char* trace_scope(RankContext& me) {
  return me.tracer().enabled() ? me.tracer().current_scope() : nullptr;
}

/// Validate a same-node direct access and return the target-segment pointer
/// at \p disp. The window must be an allocate_shared() window and the
/// target must live on the caller's node under the core's node map.
std::uint8_t* require_shm(const WinImpl& w, SimCore& core, RankContext& me,
                          int target_rank, std::size_t disp, std::size_t bytes,
                          const char* site) {
  require_target(w, target_rank, site);
  if (!w.shared)
    raise(Errc::invalid_argument,
          std::string(site) + " on a window not created by allocate_shared");
  const int target_world = w.comm.group().world_rank(target_rank);
  if (!core.model().same_node(me.rank(), target_world))
    raise(Errc::invalid_argument,
          std::string(site) + ": target rank " + std::to_string(target_rank) +
              " (world " + std::to_string(target_world) +
              ") is not on the caller's node");
  const std::size_t sz = w.sizes[static_cast<std::size_t>(target_rank)];
  if (disp + bytes > sz)
    raise(Errc::window_bounds,
          std::string(site) + " access [" + std::to_string(disp) + ", " +
              std::to_string(disp + bytes) + ") exceeds segment of " +
              std::to_string(sz) + " bytes on rank " +
              std::to_string(target_rank));
  return static_cast<std::uint8_t*>(
             w.bases[static_cast<std::size_t>(target_rank)]) +
         disp;
}

}  // namespace

}  // namespace detail

using detail::Epoch;
using detail::TargetState;
using detail::WinImpl;

// ---------------------------------------------------------------------------
// EpochPipeline
// ---------------------------------------------------------------------------

namespace {

/// Innermost pipeline scope of the calling rank (one rank == one thread).
thread_local EpochPipeline* g_active_pipeline = nullptr;

}  // namespace

EpochPipeline::EpochPipeline() : prev_(g_active_pipeline) {
  g_active_pipeline = this;
}

EpochPipeline::~EpochPipeline() {
  g_active_pipeline = prev_;
  const double ns = pending_ns();
  if (ns > 0.0) ctx().clock().advance(ns);
}

EpochPipeline* EpochPipeline::active() noexcept { return g_active_pipeline; }

void EpochPipeline::defer_round_trip(std::uint64_t win_id, int target_rank,
                                     double ns) {
  if (ns <= 0.0) return;
  for (Chain& c : chains_) {
    if (c.win_id == win_id && c.target_rank == target_rank) {
      c.ns += ns;
      return;
    }
  }
  chains_.push_back(Chain{win_id, target_rank, ns});
}

double EpochPipeline::pending_ns() const noexcept {
  double mx = 0.0;
  for (const Chain& c : chains_) mx = std::max(mx, c.ns);
  return mx;
}

namespace detail {
namespace {

/// Charge \p round_trip_ns of initiator-blocked epoch wait: diverted into
/// the active pipeline scope's per-target chain, or straight to the clock.
void charge_round_trip(RankContext& me, const WinImpl& w, int target_rank,
                       double round_trip_ns) {
  if (EpochPipeline* pl = EpochPipeline::active())
    pl->defer_round_trip(w.id, target_rank, round_trip_ns);
  else
    me.clock().advance(round_trip_ns);
}

}  // namespace
}  // namespace detail

Win::Win(std::shared_ptr<WinImpl> impl) : impl_(std::move(impl)) {}

Win Win::create(void* base, std::size_t bytes, const Comm& comm) {
  if (base == nullptr && bytes != 0)
    raise(Errc::invalid_argument, "null window base with nonzero size");

  struct Info {
    std::uintptr_t base;
    std::size_t size;
  };
  const int n = comm.size();
  Info mine{reinterpret_cast<std::uintptr_t>(base), bytes};
  std::vector<Info> all(static_cast<std::size_t>(n));
  comm.allgather(&mine, all.data(), sizeof(Info));

  SimCore& core = ctx().core();
  std::uint64_t id = 0;
  if (comm.rank() == 0) {
    auto mk = std::make_shared<WinImpl>();
    mk->comm = comm;
    mk->bases.reserve(static_cast<std::size_t>(n));
    mk->sizes.reserve(static_cast<std::size_t>(n));
    for (const Info& i : all) {
      mk->bases.push_back(reinterpret_cast<void*>(i.base));
      mk->sizes.push_back(i.size);
    }
    mk->targets.resize(static_cast<std::size_t>(n));
    mk->locked_target.assign(static_cast<std::size_t>(n), -1);
    {
      std::lock_guard lk(core.mu());
      mk->id = core.alloc_win_id_locked();
      id = mk->id;
      // Core-owned rendezvous slot: survives an abort mid-create without
      // leaking and without freeing under a peer still copying.
      core.publish_obj_locked(SimCore::kWinPublishTag | id, std::move(mk));
      core.poke();
    }
  }
  comm.bcast(&id, sizeof id, 0);
  std::shared_ptr<WinImpl> impl = std::static_pointer_cast<WinImpl>(
      core.fetch_published_obj(SimCore::kWinPublishTag | id));
  comm.barrier();
  if (comm.rank() == 0) core.retire_published_obj(SimCore::kWinPublishTag | id);

  // Window memory is registered at creation time (MPI_Alloc_mem-style);
  // Figure 5's on-demand costs concern *local* buffers used as RMA origins.
  ctx().mpi_reg().register_prepinned(base, bytes);
  return Win(std::move(impl));
}

Win Win::allocate_shared(std::size_t bytes, const Comm& comm) {
  const int n = comm.size();
  std::size_t mine = bytes;
  std::vector<std::size_t> sizes(static_cast<std::size_t>(n));
  comm.allgather(&mine, sizes.data(), sizeof(std::size_t));

  SimCore& core = ctx().core();
  std::uint64_t id = 0;
  if (comm.rank() == 0) {
    auto mk = std::make_shared<WinImpl>();
    mk->comm = comm;
    mk->shared = true;
    mk->sizes = sizes;
    mk->bases.assign(static_cast<std::size_t>(n), nullptr);
    // One allocation per node: group the comm's ranks by the node their
    // world rank lives on and carve each rank's segment, in comm-rank
    // order, out of its node's block. Co-located ranks therefore share one
    // contiguous mapping, which is what makes direct load/store meaningful.
    const NetworkModel& nm = core.model();
    std::vector<int> node(static_cast<std::size_t>(n));
    std::map<int, std::size_t> node_bytes;
    for (int r = 0; r < n; ++r) {
      node[static_cast<std::size_t>(r)] =
          nm.node_of(comm.group().world_rank(r));
      node_bytes[node[static_cast<std::size_t>(r)]] +=
          sizes[static_cast<std::size_t>(r)];
    }
    std::map<int, std::uint8_t*> cursor;
    for (const auto& [nid, total] : node_bytes) {
      mk->node_blocks.push_back(
          std::make_unique<std::uint8_t[]>(total > 0 ? total : 1));
      cursor[nid] = mk->node_blocks.back().get();
    }
    for (int r = 0; r < n; ++r) {
      const std::size_t sz = sizes[static_cast<std::size_t>(r)];
      std::uint8_t*& cur = cursor[node[static_cast<std::size_t>(r)]];
      mk->bases[static_cast<std::size_t>(r)] = sz > 0 ? cur : nullptr;
      cur += sz;
    }
    mk->targets.resize(static_cast<std::size_t>(n));
    mk->locked_target.assign(static_cast<std::size_t>(n), -1);
    {
      std::lock_guard lk(core.mu());
      mk->id = core.alloc_win_id_locked();
      id = mk->id;
      core.publish_obj_locked(SimCore::kWinPublishTag | id, std::move(mk));
      core.poke();
    }
  }
  comm.bcast(&id, sizeof id, 0);
  std::shared_ptr<WinImpl> impl = std::static_pointer_cast<WinImpl>(
      core.fetch_published_obj(SimCore::kWinPublishTag | id));
  comm.barrier();
  if (comm.rank() == 0) core.retire_published_obj(SimCore::kWinPublishTag | id);

  // Shared mappings behave like MPI_Win_allocate memory: pre-pinned.
  ctx().mpi_reg().register_prepinned(
      impl->bases[static_cast<std::size_t>(comm.rank())],
      impl->sizes[static_cast<std::size_t>(comm.rank())]);
  return Win(std::move(impl));
}

bool Win::shared_memory() const noexcept {
  return impl_ != nullptr && impl_->shared;
}

void Win::free() {
  WinImpl& w = *impl_;
  SimCore& core = ctx().core();
  {
    std::lock_guard lk(core.mu());
    if (w.locked_target[static_cast<std::size_t>(w.comm.rank())] != -1) {
      core.checker().note_discipline(ctx().rank());
      raise(Errc::not_locked, "Win::free with an open epoch");
    }
  }
  w.comm.barrier();
  if (w.comm.rank() == 0) {
    std::lock_guard lk(core.mu());
    w.freed = true;
    core.checker().window_freed(w.id);
    core.hb().window_freed(w.id);
  }
  w.comm.barrier();
  impl_.reset();
}

void Win::lock(LockType type, int target_rank) const {
  WinImpl& w = *impl_;
  SimCore& core = *w.comm.impl()->core;
  RankContext& me = ctx();
  const int myrank = detail::require_member(w, me);
  detail::require_target(w, target_rank, "lock");
  me.fault().fault_point(me.clock());

  std::unique_lock lk(core.mu());
  // A dead target's window memory may already be released by its cleanup
  // hook; fail the epoch with Errc::crashed before queueing for it.
  core.check_target_alive_locked(w.comm.group().world_rank(target_rank),
                                 "win.lock");
  if (w.locked_target[static_cast<std::size_t>(myrank)] != -1) {
    core.checker().note_discipline(me.rank());
    raise(Errc::double_lock,
          "origin already holds a lock on this window (target " +
              std::to_string(w.locked_target[static_cast<std::size_t>(myrank)]) +
              ")");
  }
  const char* trace_name =
      type == LockType::exclusive ? "win.lock_excl" : "win.lock_shared";
  me.tracer().begin(TraceCat::window, trace_name, w.id);
  TargetState& ts = w.targets[static_cast<std::size_t>(target_rank)];
  ts.waiters.emplace_back(myrank, type);
  detail::grant_locked(core, w, target_rank);
  core.poke();
  core.wait(lk,
            [&] {
              if (ts.open.contains(myrank)) return true;
              if (!core.survivable()) return false;
              // The blocking holder may have died: purge and regrant. Only
              // poke when something actually changed, so an unchanged
              // predicate still counts toward quiescence detection.
              const std::size_t open_n = ts.open.size();
              const std::size_t wait_n = ts.waiters.size();
              detail::grant_locked(core, w, target_rank);
              if (ts.open.size() != open_n || ts.waiters.size() != wait_n)
                core.poke();
              return ts.open.contains(myrank);
            },
            "win.lock");
  w.locked_target[static_cast<std::size_t>(myrank)] = target_rank;

  // Virtual time: a lock round trip; exclusive epochs additionally serialize
  // behind the previous exclusive epoch's completion time. A fault plan may
  // charge an extra lock-grant stall here. The round trip may be diverted
  // into an EpochPipeline scope; the busy-until serialization never is.
  detail::charge_round_trip(me, w, target_rank,
                            core.model().lock_ns() +
                                me.fault().draw_lock_stall_ns());
  if (type == LockType::exclusive) me.clock().advance_to(ts.busy_until_ns);
  if (me.tracer().enabled()) {
    WinStats& ws = me.tracer().win(w.id);
    if (type == LockType::exclusive)
      ++ws.exclusive_locks;
    else
      ++ws.shared_locks;
    me.tracer().end(TraceCat::window, trace_name, w.id);
  }
}

void Win::unlock(int target_rank) const {
  WinImpl& w = *impl_;
  SimCore& core = *w.comm.impl()->core;
  RankContext& me = ctx();
  const int myrank = detail::require_member(w, me);
  detail::require_target(w, target_rank, "unlock");
  me.fault().fault_point(me.clock());

  std::unique_lock lk(core.mu());
  TargetState& ts = w.targets[static_cast<std::size_t>(target_rank)];
  auto it = ts.open.find(myrank);
  if (it == ts.open.end() ||
      w.locked_target[static_cast<std::size_t>(myrank)] != target_rank) {
    core.checker().note_discipline(me.rank());
    raise(Errc::not_locked, "unlock without a matching lock");
  }

  // Epoch completion is the MPI-2 reporting point for erroneous accesses:
  // may raise Errc::rma_conflict in abort mode (before the trace 'B' event,
  // so an aborting unlock leaves the trace balanced).
  core.checker().epoch_closing(w.id, target_rank, myrank);

  me.tracer().begin(TraceCat::window, "win.unlock", w.id);
  const bool was_exclusive = it->second.type == LockType::exclusive;
  core.hb().lock_released(w.id, target_rank, me.rank(), was_exclusive);
  ts.open.erase(it);
  w.locked_target[static_cast<std::size_t>(myrank)] = -1;

  detail::charge_round_trip(me, w, target_rank, core.model().unlock_ns());
  if (was_exclusive)
    ts.busy_until_ns = std::max(ts.busy_until_ns, me.clock().now_ns());
  core.note_time_locked(me.clock().now_ns());

  detail::grant_locked(core, w, target_rank);
  core.poke();
  if (me.tracer().enabled()) {
    ++me.tracer().win(w.id).epochs;
    me.tracer().end(TraceCat::window, "win.unlock", w.id);
  }
}

void Win::lock_all() const {
  WinImpl& w = *impl_;
  SimCore& core = *w.comm.impl()->core;
  RankContext& me = ctx();
  const int myrank = detail::require_member(w, me);
  me.fault().fault_point(me.clock());

  std::unique_lock lk(core.mu());
  if (w.locked_target[static_cast<std::size_t>(myrank)] != -1) {
    core.checker().note_discipline(me.rank());
    raise(Errc::double_lock, "lock_all while holding a lock on this window");
  }
  me.tracer().begin(TraceCat::window, "win.lock_all", w.id);
  // Shared-mode epochs on every target; wait for each in turn (shared
  // requests only queue behind exclusive holders, so this cannot deadlock
  // against another lock_all).
  for (int t = 0; t < w.comm.size(); ++t) {
    TargetState& ts = w.targets[static_cast<std::size_t>(t)];
    ts.waiters.emplace_back(myrank, LockType::shared);
    detail::grant_locked(core, w, t);
    core.poke();
    core.wait(lk, [&] { return ts.open.contains(myrank); }, "win.lock_all");
    // lock_all epochs follow MPI-3 semantics: conflicting accesses have
    // undefined values but are not erroneous, so the checker skips them.
    core.checker().epoch_set_mpi3(w.id, t, myrank);
  }
  w.locked_target[static_cast<std::size_t>(myrank)] = detail::kLockAll;
  me.clock().advance(core.model().lock_ns() +
                     me.fault().draw_lock_stall_ns());
  if (me.tracer().enabled()) {
    ++me.tracer().win(w.id).lock_alls;
    me.tracer().end(TraceCat::window, "win.lock_all", w.id);
  }
}

void Win::unlock_all() const {
  WinImpl& w = *impl_;
  SimCore& core = *w.comm.impl()->core;
  RankContext& me = ctx();
  const int myrank = detail::require_member(w, me);

  std::unique_lock lk(core.mu());
  if (w.locked_target[static_cast<std::size_t>(myrank)] != detail::kLockAll) {
    core.checker().note_discipline(me.rank());
    raise(Errc::not_locked, "unlock_all without lock_all");
  }
  me.tracer().begin(TraceCat::window, "win.unlock_all", w.id);
  for (int t = 0; t < w.comm.size(); ++t) {
    TargetState& ts = w.targets[static_cast<std::size_t>(t)];
    core.checker().epoch_closing(w.id, t, myrank);
    core.hb().lock_released(w.id, t, me.rank(), /*exclusive=*/false);
    ts.open.erase(myrank);
    detail::grant_locked(core, w, t);
  }
  w.locked_target[static_cast<std::size_t>(myrank)] = -1;
  me.clock().advance(core.model().unlock_ns());
  core.note_time_locked(me.clock().now_ns());
  core.poke();
  if (me.tracer().enabled()) {
    ++me.tracer().win(w.id).epochs;
    me.tracer().end(TraceCat::window, "win.unlock_all", w.id);
  }
}

void Win::flush(int target_rank) const {
  WinImpl& w = *impl_;
  SimCore& core = *w.comm.impl()->core;
  RankContext& me = ctx();
  const int myrank = detail::require_member(w, me);
  detail::require_target(w, target_rank, "flush");

  std::unique_lock lk(core.mu());
  TargetState& ts = w.targets[static_cast<std::size_t>(target_rank)];
  auto it = ts.open.find(myrank);
  if (it == ts.open.end())
    raise(Errc::no_epoch, "flush without an epoch on the target");
  // Remote completion orders accesses across the flush: report pending
  // violations and restart the epoch's conflict-tracking unit.
  core.checker().epoch_flushed(w.id, target_rank, myrank);
  core.hb().epoch_flushed(w.id, target_rank, me.rank());
  me.tracer().begin(TraceCat::window, "win.flush", w.id);
  // Remote completion of everything outstanding: one acknowledgement round
  // trip; afterwards the next operation pays wire latency again.
  if (it->second.ops_issued > 0) {
    it->second.ops_issued = 0;
    detail::charge_round_trip(me, w, target_rank,
                              core.model().unlock_ns() +
                                  core.model().p2p_ns(0));
  }
  if (me.tracer().enabled()) {
    ++me.tracer().win(w.id).flushes;
    me.tracer().end(TraceCat::window, "win.flush", w.id);
  }
}

void Win::flush_all() const {
  WinImpl& w = *impl_;
  SimCore& core = *w.comm.impl()->core;
  RankContext& me = ctx();
  const int myrank = detail::require_member(w, me);

  std::unique_lock lk(core.mu());
  me.tracer().begin(TraceCat::window, "win.flush_all", w.id);
  bool any = false;
  for (int t = 0; t < w.comm.size(); ++t) {
    TargetState& ts = w.targets[static_cast<std::size_t>(t)];
    auto it = ts.open.find(myrank);
    if (it != ts.open.end()) {
      core.checker().epoch_flushed(w.id, t, myrank);
      core.hb().epoch_flushed(w.id, t, me.rank());
      if (it->second.ops_issued > 0) {
        it->second.ops_issued = 0;
        any = true;
      }
    }
  }
  if (any)
    me.clock().advance(core.model().unlock_ns() + core.model().p2p_ns(0));
  if (me.tracer().enabled()) {
    ++me.tracer().win(w.id).flushes;
    me.tracer().end(TraceCat::window, "win.flush_all", w.id);
  }
}

void Win::put(const void* origin, std::size_t bytes, int target_rank,
              std::size_t target_disp) const {
  const Datatype t = byte_type();
  rma_op(OpKind::put, origin, bytes, t, target_rank, target_disp, bytes, t,
         Op::replace);
}

void Win::get(void* origin, std::size_t bytes, int target_rank,
              std::size_t target_disp) const {
  const Datatype t = byte_type();
  rma_op(OpKind::get, origin, bytes, t, target_rank, target_disp, bytes, t,
         Op::replace);
}

void Win::put(const void* origin, std::size_t origin_count,
              const Datatype& origin_type, int target_rank,
              std::size_t target_disp, std::size_t target_count,
              const Datatype& target_type) const {
  rma_op(OpKind::put, origin, origin_count, origin_type, target_rank,
         target_disp, target_count, target_type, Op::replace);
}

void Win::get(void* origin, std::size_t origin_count,
              const Datatype& origin_type, int target_rank,
              std::size_t target_disp, std::size_t target_count,
              const Datatype& target_type) const {
  rma_op(OpKind::get, origin, origin_count, origin_type, target_rank,
         target_disp, target_count, target_type, Op::replace);
}

void Win::accumulate(const void* origin, std::size_t origin_count,
                     const Datatype& origin_type, int target_rank,
                     std::size_t target_disp, std::size_t target_count,
                     const Datatype& target_type, Op op) const {
  rma_op(OpKind::acc, origin, origin_count, origin_type, target_rank,
         target_disp, target_count, target_type, op);
}

void Win::get_accumulate(const void* origin, void* result, std::size_t count,
                         const Datatype& type, int target_rank,
                         std::size_t target_disp, Op op) const {
  WinImpl& w = *impl_;
  SimCore& core = *w.comm.impl()->core;
  RankContext& me = ctx();
  const int myrank = detail::require_member(w, me);
  detail::require_target(w, target_rank, "get_accumulate");
  const std::size_t bytes = count * type.size();
  if (bytes == 0) return;
  if (!type.contiguous_layout())
    raise(Errc::invalid_argument,
          "get_accumulate supports contiguous datatypes");
  if (op != Op::no_op && origin == nullptr)
    raise(Errc::invalid_argument, "null origin with a combining op");
  if (target_disp + bytes > w.sizes[static_cast<std::size_t>(target_rank)])
    raise(Errc::window_bounds, "get_accumulate outside the window");

  auto* tptr = static_cast<std::uint8_t*>(
                   w.bases[static_cast<std::size_t>(target_rank)]) +
               target_disp;

  std::unique_lock lk(core.mu());
  core.check_failed_locked();
  core.check_target_alive_locked(w.comm.group().world_rank(target_rank),
                                 "win.rma");
  TargetState& ts = w.targets[static_cast<std::size_t>(target_rank)];
  auto eit = ts.open.find(myrank);
  if (eit == ts.open.end())
    raise(Errc::no_epoch, "RMA operation outside a passive-target epoch");
  Epoch& ep = eit->second;

  // Accumulate-class access: recorded under MPI's same_op_no_op mixing rule
  // (no_op combines with any accumulate operator).
  if (core.checker().enabled()) {
    const auto lo = static_cast<std::ptrdiff_t>(target_disp);
    core.checker().record_op(w.id, target_rank, myrank, me.rank(),
                             RmaChecker::OpKind::get_acc, op, lo,
                             lo + static_cast<std::ptrdiff_t>(bytes),
                             detail::trace_scope(me));
  }
  if (core.hb().enabled()) {
    const auto lo = static_cast<std::ptrdiff_t>(target_disp);
    core.hb().record_op(w.id, target_rank, myrank, me.rank(),
                        RmaChecker::OpKind::get_acc, op, lo,
                        lo + static_cast<std::ptrdiff_t>(bytes),
                        detail::trace_scope(me));
  }

  // Accumulate-class atomicity: fetch, then combine, in one critical
  // section.
  std::memcpy(result, tptr, bytes);
  if (op != Op::no_op)
    apply_op(op, type.element_type(), tptr, origin, count);

  // Fetching semantics: the caller needs the reply, so unlike put-class
  // operations the round trip is always paid.
  const NetworkModel& nm = core.model();
  me.clock().advance(nm.rma_op_ns(RmaKind::acc, bytes, 1, Path::mpi,
                                  ep.ops_issued, true, w.comm.size()) +
                     nm.p2p_ns(bytes));
  ++ep.ops_issued;
}

void Win::fetch_and_op(const void* origin, void* result, BasicType type,
                       int target_rank, std::size_t target_disp,
                       Op op) const {
  get_accumulate(origin, result, 1, Datatype::basic(type), target_rank,
                 target_disp, op);
}

void Win::compare_and_swap(const void* origin, const void* compare,
                           void* result, BasicType type, int target_rank,
                           std::size_t target_disp) const {
  WinImpl& w = *impl_;
  SimCore& core = *w.comm.impl()->core;
  RankContext& me = ctx();
  const int myrank = detail::require_member(w, me);
  detail::require_target(w, target_rank, "compare_and_swap");
  const std::size_t bytes = basic_type_size(type);
  if (target_disp + bytes > w.sizes[static_cast<std::size_t>(target_rank)])
    raise(Errc::window_bounds, "compare_and_swap outside the window");

  auto* tptr = static_cast<std::uint8_t*>(
                   w.bases[static_cast<std::size_t>(target_rank)]) +
               target_disp;

  std::unique_lock lk(core.mu());
  core.check_failed_locked();
  core.check_target_alive_locked(w.comm.group().world_rank(target_rank),
                                 "win.rma");
  TargetState& ts = w.targets[static_cast<std::size_t>(target_rank)];
  auto eit = ts.open.find(myrank);
  if (eit == ts.open.end())
    raise(Errc::no_epoch, "RMA operation outside a passive-target epoch");
  Epoch& ep = eit->second;

  std::memcpy(result, tptr, bytes);
  if (std::memcmp(tptr, compare, bytes) == 0)
    std::memcpy(tptr, origin, bytes);

  const NetworkModel& nm = core.model();
  me.clock().advance(nm.rma_op_ns(RmaKind::acc, bytes, 1, Path::mpi,
                                  ep.ops_issued, true, w.comm.size()) +
                     nm.p2p_ns(bytes));
  ++ep.ops_issued;
}

void Win::rma_op(OpKind kind, const void* origin, std::size_t origin_count,
                 const Datatype& origin_type, int target_rank,
                 std::size_t target_disp, std::size_t target_count,
                 const Datatype& target_type, Op op) const {
  WinImpl& w = *impl_;
  SimCore& core = *w.comm.impl()->core;
  RankContext& me = ctx();
  const int myrank = detail::require_member(w, me);
  detail::require_target(w, target_rank, "rma_op");
  const std::size_t bytes = origin_count * origin_type.size();

  if (bytes != target_count * target_type.size())
    raise(Errc::type_mismatch, "origin/target transfer sizes differ");
  if (bytes == 0) return;
  me.fault().fault_point(me.clock());
  if (kind == OpKind::acc &&
      origin_type.element_type() != target_type.element_type())
    raise(Errc::type_mismatch, "accumulate element types differ");

  const std::size_t target_span =
      target_disp + (target_count - 1) * static_cast<std::size_t>(
                                             target_type.extent()) +
      static_cast<std::size_t>(target_type.extent());
  if (target_span > w.sizes[static_cast<std::size_t>(target_rank)])
    raise(Errc::window_bounds,
          "access [" + std::to_string(target_disp) + ", " +
              std::to_string(target_span) + ") exceeds window of " +
              std::to_string(w.sizes[static_cast<std::size_t>(target_rank)]) +
              " bytes on rank " + std::to_string(target_rank));

  auto* tbase = static_cast<std::uint8_t*>(
                    w.bases[static_cast<std::size_t>(target_rank)]) +
                target_disp;

  std::unique_lock lk(core.mu());
  core.check_failed_locked();
  core.check_target_alive_locked(w.comm.group().world_rank(target_rank),
                                 "win.rma");
  TargetState& ts = w.targets[static_cast<std::size_t>(target_rank)];
  auto eit = ts.open.find(myrank);
  if (eit == ts.open.end())
    raise(Errc::no_epoch, "RMA operation outside a passive-target epoch");
  Epoch& ep = eit->second;

  const std::vector<Segment> osegs = origin_type.flatten(origin_count);
  const std::vector<Segment> tsegs = target_type.flatten(target_count);

  // ---- MPI-2 conflicting-access detection (checker.hpp) ----
  // Record-and-check per segment, so conflicts *within* one operation
  // (e.g. a put datatype that writes the same bytes twice) are caught too:
  // earlier segments of this op are already recorded when later segments
  // are checked. With Config::check_conflicts a conflict raises
  // Errc::conflicting_access here; in rma_check warn/abort mode it is
  // reported when the epoch completes.
  if (core.checker().enabled()) {
    const auto chk_kind = kind == OpKind::put   ? RmaChecker::OpKind::put
                          : kind == OpKind::get ? RmaChecker::OpKind::get
                                                : RmaChecker::OpKind::acc;
    const char* scope = detail::trace_scope(me);
    for (const Segment& s : tsegs) {
      const std::ptrdiff_t lo =
          static_cast<std::ptrdiff_t>(target_disp) + s.offset;
      core.checker().record_op(w.id, target_rank, myrank, me.rank(), chk_kind,
                               op, lo, lo + static_cast<std::ptrdiff_t>(s.length),
                               scope);
    }
  }
  if (core.hb().enabled()) {
    const auto hb_kind = kind == OpKind::put   ? RmaChecker::OpKind::put
                         : kind == OpKind::get ? RmaChecker::OpKind::get
                                               : RmaChecker::OpKind::acc;
    const char* scope = detail::trace_scope(me);
    for (const Segment& s : tsegs) {
      const std::ptrdiff_t lo =
          static_cast<std::ptrdiff_t>(target_disp) + s.offset;
      core.hb().record_op(w.id, target_rank, myrank, me.rank(), hb_kind, op,
                          lo, lo + static_cast<std::ptrdiff_t>(s.length),
                          scope);
    }
  }

  // ---- Data movement (safe under the global lock) ----
  {
    const std::size_t esz = basic_type_size(origin_type.element_type());
    auto* obase =
        static_cast<std::uint8_t*>(const_cast<void*>(origin));  // get writes
    std::size_t oi = 0, ti = 0, opos = 0, tpos = 0;
    while (oi < osegs.size() && ti < tsegs.size()) {
      const std::size_t chunk =
          std::min(osegs[oi].length - opos, tsegs[ti].length - tpos);
      std::uint8_t* optr = obase + osegs[oi].offset + opos;
      std::uint8_t* tptr = tbase + tsegs[ti].offset + tpos;
      switch (kind) {
        case OpKind::put:
          std::memcpy(tptr, optr, chunk);
          break;
        case OpKind::get:
          std::memcpy(optr, tptr, chunk);
          break;
        case OpKind::acc:
          apply_op(op, origin_type.element_type(), tptr, optr, chunk / esz);
          break;
      }
      opos += chunk;
      tpos += chunk;
      if (opos == osegs[oi].length) { ++oi; opos = 0; }
      if (tpos == tsegs[ti].length) { ++ti; tpos = 0; }
    }
  }

  // ---- Virtual-time accounting ----
  const NetworkModel& nm = core.model();
  const PlatformProfile& prof = nm.profile();
  const std::size_t nseg = std::max(osegs.size(), tsegs.size());
  const bool contig = nseg == 1;
  double cost = nm.rma_op_ns(
      kind == OpKind::put ? RmaKind::put
      : kind == OpKind::get ? RmaKind::get
                            : RmaKind::acc,
      bytes, nseg, Path::mpi, ep.ops_issued, /*local_pinned=*/true,
      w.comm.size());
  if (!contig) {
    cost += nm.dtype_build_ns(nseg);
    // A noncontiguous side without hardware scatter/gather costs a pack at
    // the origin plus an unpack at the target (two host copies).
    if (osegs.size() > 1) cost += 2.0 * nm.pack_ns(bytes);
    if (tsegs.size() > 1) cost += 2.0 * nm.pack_ns(bytes);
  }
  if (prof.on_demand_registration) {
    if (bytes <= prof.bounce_threshold_bytes) {
      cost += nm.pack_ns(bytes);  // copy through pre-pinned bounce buffers
    } else {
      const std::size_t pages = me.mpi_reg().ensure_registered(origin, bytes);
      cost += nm.registration_ns(pages);
    }
  }
  me.clock().advance(cost);
  ++ep.ops_issued;
}

namespace {

/// Locate \p ptr inside one rank's window slice. Returns the slice's rank
/// and the byte interval [lo, hi) the access covers (bytes == 0 extends to
/// the end of the slice), or rank -1 when ptr is not window memory.
struct LocalSlice {
  int rank = -1;
  std::ptrdiff_t lo = 0;
  std::ptrdiff_t hi = 0;
};

LocalSlice find_slice(const WinImpl& w, const void* ptr, std::size_t bytes) {
  LocalSlice out;
  const auto p = reinterpret_cast<std::uintptr_t>(ptr);
  for (int r = 0; r < w.comm.size(); ++r) {
    const auto b =
        reinterpret_cast<std::uintptr_t>(w.bases[static_cast<std::size_t>(r)]);
    const std::size_t sz = w.sizes[static_cast<std::size_t>(r)];
    if (sz == 0 || p < b || p >= b + sz) continue;
    out.rank = r;
    out.lo = static_cast<std::ptrdiff_t>(p - b);
    out.hi = bytes == 0
                 ? static_cast<std::ptrdiff_t>(sz)
                 : std::min(out.lo + static_cast<std::ptrdiff_t>(bytes),
                            static_cast<std::ptrdiff_t>(sz));
    return out;
  }
  return out;
}

}  // namespace

void Win::local_access_begin(const void* ptr, std::size_t bytes,
                             bool write) const {
  WinImpl& w = *impl_;
  SimCore& core = *w.comm.impl()->core;
  if (!core.checker().enabled()) return;
  RankContext& me = ctx();
  const int myrank = w.comm.group().rank_of_world(me.rank());
  if (myrank < 0) return;
  const LocalSlice s = find_slice(w, ptr, bytes);
  if (s.rank < 0 || s.lo >= s.hi) return;  // not exposed through this window

  std::lock_guard lk(core.mu());
  // The DLA discipline (ARMCI_Access_begin): holding an exclusive self-lock
  // -- or a lock_all epoch, whose MPI-3 unified-model semantics permit
  // direct access -- makes the load/store safe; anything else is checked
  // against the epochs currently exposing this memory.
  const TargetState& ts = w.targets[static_cast<std::size_t>(s.rank)];
  auto it = ts.open.find(myrank);
  const bool covered =
      it != ts.open.end() &&
      (it->second.type == LockType::exclusive ||
       w.locked_target[static_cast<std::size_t>(myrank)] == detail::kLockAll);
  core.checker().local_begin(w.id, s.rank, me.rank(), s.lo, s.hi, write,
                             covered, detail::trace_scope(me));
  // Happens-before: an exclusive self-epoch orders the access through the
  // lock slot; a lock_all-covered or bare access is only ordered by
  // whatever edges the program actually created, so record it.
  const bool covered_excl =
      it != ts.open.end() && it->second.type == LockType::exclusive;
  if (!covered_excl)
    core.hb().access_begin(w.id, s.rank, myrank, me.rank(), write, s.lo,
                           s.hi, detail::trace_scope(me));
}

void Win::local_access_end(const void* ptr) const {
  WinImpl& w = *impl_;
  SimCore& core = *w.comm.impl()->core;
  if (!core.checker().enabled()) return;
  const LocalSlice s = find_slice(w, ptr, 1);
  if (s.rank < 0) return;

  std::lock_guard lk(core.mu());
  // Reports the access's pending violations: may raise Errc::rma_conflict.
  core.checker().local_end(w.id, s.rank, s.lo);
  core.hb().access_end(w.id, s.rank, ctx().rank(), s.lo);
}

void Win::shm_put(const void* origin, std::size_t bytes, int target_rank,
                  std::size_t target_disp) const {
  shm_op(OpKind::put, Op::replace, BasicType::byte_, origin, bytes,
         target_rank, target_disp);
}

void Win::shm_get(void* origin, std::size_t bytes, int target_rank,
                  std::size_t target_disp) const {
  shm_op(OpKind::get, Op::replace, BasicType::byte_, origin, bytes,
         target_rank, target_disp);
}

void Win::shm_acc(Op op, BasicType type, const void* origin, std::size_t bytes,
                  int target_rank, std::size_t target_disp) const {
  shm_op(OpKind::acc, op, type, origin, bytes, target_rank, target_disp);
}

void Win::shm_op(OpKind kind, Op op, BasicType type, const void* origin,
                 std::size_t bytes, int target_rank,
                 std::size_t target_disp) const {
  WinImpl& w = *impl_;
  SimCore& core = *w.comm.impl()->core;
  RankContext& me = ctx();
  const int myrank = detail::require_member(w, me);
  if (bytes == 0) return;
  me.fault().fault_point(me.clock());
  const char* site = kind == OpKind::put   ? "win.shm_put"
                     : kind == OpKind::get ? "win.shm_get"
                                           : "win.shm_acc";
  std::uint8_t* tptr = detail::require_shm(w, core, me, target_rank,
                                           target_disp, bytes, site);
  std::size_t count = 0;
  if (kind == OpKind::acc) {
    const std::size_t esz = basic_type_size(type);
    if (bytes % esz != 0)
      raise(Errc::invalid_argument,
            "shm_acc length not a multiple of the element size");
    count = bytes / esz;
  }

  std::lock_guard lk(core.mu());
  core.check_failed_locked();
  core.check_target_alive_locked(w.comm.group().world_rank(target_rank),
                                 "win.shm_op");
  const auto lo = static_cast<std::ptrdiff_t>(target_disp);
  const auto hi = lo + static_cast<std::ptrdiff_t>(bytes);
  // The only record of this access: no epoch exists to attribute it to.
  // Begin/copy/end execute atomically under the core lock, so the record
  // only ever conflicts with RMA already in flight (recorded since its
  // epoch's last flush), never with operations issued afterwards.
  if (core.checker().enabled())
    core.checker().shm_begin(w.id, target_rank, myrank, me.rank(),
                             kind == OpKind::put   ? RmaChecker::OpKind::put
                             : kind == OpKind::get ? RmaChecker::OpKind::get
                                                   : RmaChecker::OpKind::acc,
                             op, lo, hi, detail::trace_scope(me));
  // Happens-before: the shm fast path bypasses every epoch, so the access
  // checks and publishes in one atomic step under the core lock.
  core.hb().direct_op(w.id, target_rank, myrank, me.rank(),
                      kind == OpKind::put   ? RmaChecker::OpKind::put
                      : kind == OpKind::get ? RmaChecker::OpKind::get
                                            : RmaChecker::OpKind::acc,
                      op, lo, hi, detail::trace_scope(me));
  auto* obase = static_cast<std::uint8_t*>(const_cast<void*>(origin));
  switch (kind) {
    case OpKind::put:
      std::memcpy(tptr, obase, bytes);
      break;
    case OpKind::get:
      std::memcpy(obase, tptr, bytes);
      break;
    case OpKind::acc:
      apply_op(op, type, tptr, obase, count);
      break;
  }
  if (core.checker().enabled())
    core.checker().shm_end(w.id, target_rank, myrank, lo);
  // Direct load/store: no lock or flush round trips, just the intra-node
  // copy. WinStats epoch counters are deliberately untouched -- the fast
  // path completing without epochs is an observable property tests assert.
  me.clock().advance(core.model().shm_copy_ns(bytes));
  core.note_time_locked(me.clock().now_ns());
}

void Win::shm_access_begin(int target_rank, std::size_t target_disp,
                           std::size_t bytes, bool write) const {
  WinImpl& w = *impl_;
  SimCore& core = *w.comm.impl()->core;
  if (!core.checker().enabled()) return;
  RankContext& me = ctx();
  const int myrank = detail::require_member(w, me);
  if (bytes == 0) return;
  detail::require_shm(w, core, me, target_rank, target_disp, bytes,
                      "win.shm_access_begin");

  std::lock_guard lk(core.mu());
  const auto lo = static_cast<std::ptrdiff_t>(target_disp);
  core.checker().shm_begin(
      w.id, target_rank, myrank, me.rank(),
      write ? RmaChecker::OpKind::put : RmaChecker::OpKind::get, Op::replace,
      lo, lo + static_cast<std::ptrdiff_t>(bytes), detail::trace_scope(me));
  core.hb().access_begin(w.id, target_rank, myrank, me.rank(), write, lo,
                         lo + static_cast<std::ptrdiff_t>(bytes),
                         detail::trace_scope(me));
}

void Win::shm_access_end(int target_rank, std::size_t target_disp) const {
  WinImpl& w = *impl_;
  SimCore& core = *w.comm.impl()->core;
  if (!core.checker().enabled()) return;
  RankContext& me = ctx();
  const int myrank = detail::require_member(w, me);

  std::lock_guard lk(core.mu());
  // Reports the access's pending violations: may raise Errc::rma_conflict.
  core.checker().shm_end(w.id, target_rank, myrank,
                         static_cast<std::ptrdiff_t>(target_disp));
  core.hb().access_end(w.id, target_rank, me.rank(),
                       static_cast<std::ptrdiff_t>(target_disp));
}

void* Win::base(int rank) const {
  return impl_->bases.at(static_cast<std::size_t>(rank));
}

std::size_t Win::size(int rank) const {
  return impl_->sizes.at(static_cast<std::size_t>(rank));
}

Comm Win::comm() const { return impl_->comm; }

std::uint64_t Win::id() const noexcept { return impl_->id; }

}  // namespace mpisim
