#ifndef MPISIM_COMM_HPP
#define MPISIM_COMM_HPP

/// \file comm.hpp
/// Communicators: intra- and inter-communicators with two-sided messaging
/// and collectives.
///
/// ARMCI-MPI backs every ARMCI process group with a communicator. Collective
/// group creation maps to split()/create_from_group(); noncollective group
/// creation uses intercomm_create() + merge() recursively (Dinan et al.,
/// EuroMPI'11), both of which are provided here with MPI semantics.

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "src/mpisim/group.hpp"
#include "src/mpisim/mailbox.hpp"
#include "src/mpisim/op.hpp"

namespace mpisim {

class SimCore;

/// Rendezvous state for in-progress collectives on one communicator.
/// All fields are guarded by the simulator's global lock.
struct CollCtx {
  std::uint64_t gen = 0;       ///< completed-collective generation
  int arrived = 0;             ///< ranks arrived in the current round
  double max_clock_ns = 0.0;   ///< max arrival clock this round
  double result_clock_ns = 0.0;  ///< departure clock of the finished round
  std::vector<const void*> inbufs;
  std::vector<void*> outbufs;
  std::vector<std::size_t> incounts;  ///< per-rank scalar argument slot
  /// Per group rank: arrived in the current round? Survivable mode
  /// completes a round once every member is present *or dead*; the
  /// completer nulls the absent members' buffer slots so leader functions
  /// skip them (stale pointers from prior rounds must never be read).
  std::vector<std::uint8_t> present;
  /// Set by a rooted collective's leader function when the rank the result
  /// depends on (bcast source, reduce destination) is dead this round:
  /// survivors raise Errc::crashed instead of silently keeping stale
  /// buffers (ULFM: a collective that depends on a failed process fails).
  bool dep_dead = false;
  /// Happens-before accumulator (hb.hpp): every arrival joins its vector
  /// clock here; the completer moves it to hb_result, which every departer
  /// acquires. Safe as a single result slot: the next round cannot
  /// complete before every live member departed this one.
  std::vector<std::uint64_t> hb_acc;
  std::vector<std::uint64_t> hb_result;
};

/// Shared state of one communicator, identical on every member rank.
struct CommImpl {
  std::uint64_t id = 0;
  SimCore* core = nullptr;
  Group group;  ///< local group (world ranks)

  // Intercommunicator support.
  bool is_inter = false;
  Group remote_group;

  // Survivable-failure support (guarded by the global lock).
  bool revoked = false;  ///< sticky ULFM-style revocation flag
  /// Per group rank: number of shrink() calls made, used to derive the
  /// publication key of each shrink round (collective, so all live members
  /// agree on the sequence number).
  std::vector<std::uint32_t> shrink_calls;

  CollCtx coll;
};

/// Value handle to a communicator, bound to the calling rank. Cheap to copy.
class Comm {
 public:
  Comm() = default;

  /// Wrap shared state for the calling rank (internal; used by run()).
  explicit Comm(std::shared_ptr<CommImpl> impl);

  bool valid() const noexcept { return impl_ != nullptr; }

  /// My rank in this communicator's (local) group.
  int rank() const;

  /// Size of the (local) group.
  int size() const noexcept;

  /// True for an intercommunicator.
  bool is_inter() const noexcept;

  /// Size of the remote group (intercommunicators only).
  int remote_size() const;

  /// The local group.
  const Group& group() const noexcept;

  /// The remote group (intercommunicators only).
  const Group& remote_group() const;

  /// World rank of \p r in the local group.
  int world_rank(int r) const;

  /// Unique id (diagnostics; matches message envelopes).
  std::uint64_t id() const noexcept;

  // ---- Two-sided messaging (intra; on intercomms ranks are remote) ----

  /// Blocking standard-mode send of \p bytes to \p dest.
  void send(const void* buf, std::size_t bytes, int dest, int tag) const;

  /// Blocking receive; \p src / \p tag may be kAnySource / kAnyTag.
  Status recv(void* buf, std::size_t capacity, int src, int tag) const;

  /// Nonblocking probe: true if a matching message is queued.
  bool iprobe(int src, int tag, Status* st = nullptr) const;

  // ---- Nonblocking point-to-point ----

  /// Handle for isend()/irecv(). A receive is truly *posted*: the matching
  /// message -- even one arriving later -- is delivered straight into the
  /// buffer under the simulator lock, and wait()/test() complete it on the
  /// posting thread (clock advance, happens-before join). Complete each
  /// receive exactly once, via wait() or a successful test(); a second
  /// wait() raises Errc::invalid_argument. Destroying a never-completed
  /// receive deterministically cancels the posting (a message already
  /// delivered is consumed so its happens-before edge is not lost). Sends
  /// are eager and born complete; their wait() is an idempotent no-op.
  /// Move-only: the handle owns the posting. A posted receive wins over a
  /// concurrently blocked recv() on the same match pattern.
  class Request {
   public:
    Request() = default;
    ~Request();
    Request(Request&&) noexcept = default;
    Request& operator=(Request&&) noexcept = default;
    Request(const Request&) = delete;
    Request& operator=(const Request&) = delete;

    /// Block until the operation completes; fills \p st for receives.
    /// Failure-aware like Comm::recv(): raises Errc::revoked on a revoked
    /// communicator, and in survivable mode Errc::crashed when the awaited
    /// specific sender is dead -- or, for wildcard-source receives, once
    /// per death epoch not yet covered by failure_ack().
    void wait(Status* st = nullptr);

    /// True once complete (receives: a matching message has been consumed
    /// into the buffer). A successful test() completes the request in
    /// place of wait(); afterwards test() keeps returning true. Surfaces
    /// the same failure errors as wait() without blocking.
    bool test(Status* st = nullptr);

    /// True when wait()/test() will complete without blocking (a message
    /// has been delivered, the request already completed, or it is a
    /// send). Caller must hold the simulator lock (SimCore::mu()): this is
    /// the nonblocking peek multi-event wait predicates need (e.g. the AM
    /// layer's serve-while-waiting loop).
    bool ready_locked() const noexcept;

   private:
    friend class Comm;
    void complete_matched(std::unique_lock<std::mutex>& lk, Status* st);
    std::shared_ptr<CommImpl> impl_;
    std::shared_ptr<PostedRecv> rec_;
    bool is_recv_ = false;
    bool completed_ = false;
    Status status_;
  };

  /// Nonblocking standard-mode send (eager: the payload is copied out and
  /// the request is born complete, matching this simulator's send()).
  Request isend(const void* buf, std::size_t bytes, int dest, int tag) const;

  /// Nonblocking receive: posts the match; wait()/test() complete it.
  Request irecv(void* buf, std::size_t capacity, int src, int tag) const;

  /// Complete every request in \p reqs (MPI_Waitall).
  static void wait_all(std::span<Request> reqs);

  // ---- Collectives (intracommunicators) ----

  void barrier() const;
  void bcast(void* buf, std::size_t bytes, int root) const;

  /// Element-wise reduction to \p root; in == out allowed on no rank.
  void reduce(const void* in, void* out, std::size_t count, BasicType t,
              Op op, int root) const;
  void allreduce(const void* in, void* out, std::size_t count, BasicType t,
                 Op op) const;

  /// Gather \p bytes from every rank into rank-ordered \p out (all ranks).
  void allgather(const void* in, void* out, std::size_t bytes) const;

  /// Variable-size allgather; \p counts gives each rank's contribution.
  void allgatherv(const void* in, std::size_t my_bytes, void* out,
                  std::span<const std::size_t> counts) const;

  /// Personalized exchange: rank i sends in[j*bytes..] to rank j.
  void alltoall(const void* in, void* out, std::size_t bytes) const;

  /// Inclusive prefix reduction.
  void scan(const void* in, void* out, std::size_t count, BasicType t,
            Op op) const;

  // ---- Communicator construction ----

  /// Singleton communicator containing only the calling rank
  /// (MPI_COMM_SELF equivalent). Noncollective; usable as the leaf of
  /// recursive intercommunicator constructions.
  static Comm self();

  /// Duplicate (new id, same group). Collective.
  Comm dup() const;

  /// Split by color/key (color < 0: the caller gets no communicator back).
  /// Collective over this communicator.
  Comm split(int color, int key) const;

  /// Create a subcommunicator for \p group (subset of this comm's group,
  /// given as world ranks). Collective over this communicator; ranks not in
  /// \p group receive an invalid Comm.
  Comm create(const Group& subgroup) const;

  /// Build an intercommunicator. Collective over this (local) communicator.
  /// \p remote_leader_world is the world rank of the remote group's leader;
  /// the two leaders rendezvous with \p tag on a world channel.
  Comm intercomm_create(int local_leader, int remote_leader_world,
                        int tag) const;

  /// Merge an intercommunicator into an intracommunicator. The group that
  /// passes high=true is ordered after the other. Collective over both sides.
  Comm merge(bool high) const;

  // ---- ULFM-style fault-tolerance primitives (survivable mode) ----

  /// True when the member \p r (local group rank) has been declared dead.
  bool is_failed(int r) const;

  /// Mark this communicator revoked (MPIX_Comm_revoke): sticky; blocked
  /// receives on it wake with Errc::revoked and later point-to-point and
  /// collective entries raise Errc::revoked. Noncollective — any member
  /// may call it after observing a failure.
  void revoke() const;

  /// Build a new intracommunicator over the surviving members
  /// (MPIX_Comm_shrink). Collective over the *live* members; works on a
  /// revoked communicator. The lowest-ranked survivor constructs the new
  /// shared state and publishes it for the rest.
  Comm shrink() const;

  /// Fault-tolerant AND-agreement (MPIX_Comm_agree): returns the logical
  /// AND of every live member's \p flag, completing over the survivors
  /// even when members died. Acknowledges observed failures on return.
  bool agree(bool flag) const;

  /// Acknowledge all failures observed so far (MPIX_Comm_failure_ack):
  /// any-source receives stop raising Errc::crashed for already-observed
  /// deaths and may complete against messages from live senders.
  void failure_ack() const;

  /// Shared-state accessor (simulator internals and Window).
  const std::shared_ptr<CommImpl>& impl() const noexcept { return impl_; }

 private:
  /// Run one rendezvous collective round: every member contributes
  /// (in, out, count); the last arriver executes \p leader_fn while holding
  /// the global lock, then everyone's clock advances to the common result
  /// time (max arrival + \p cost_ns). Returns this round's
  /// CollCtx::dep_dead verdict (true when a rooted collective's dependency
  /// rank was dead; always false for unrooted collectives).
  bool collective_round(
      const void* in, void* out, std::size_t count, double cost_ns,
      const std::function<void(CollCtx&, const Group&)>& leader_fn) const;

  std::shared_ptr<CommImpl> impl_;
};

}  // namespace mpisim

#endif  // MPISIM_COMM_HPP
