#include "src/mpisim/fault.hpp"

#include <cstring>
#include <string>

#include "src/mpisim/error.hpp"
#include "src/mpisim/runtime.hpp"
#include "src/mpisim/trace.hpp"

namespace mpisim {

void FaultInjector::configure(const FaultPlan& plan, int rank, SimCore* core,
                              Tracer* tracer) {
  rank_ = rank;
  enabled_ = plan.enabled();
  core_ = core;
  tracer_ = tracer;
  survivable_ = plan.survivable;

  // Decorrelate the per-rank streams: rank 0 with seed S must not replay
  // rank 1's draws with seed S - 1. Seeded even for disabled plans so
  // draw_unit() consumers (retry jitter) stay deterministic.
  rng_ = plan.seed ^ (0x9e3779b97f4a7c15ull * (static_cast<std::uint64_t>(
                                                  rank) + 1));
  if (!enabled_) return;

  crash_at_ns_ = -1.0;
  for (const RankCrashSpec& c : plan.crashes) {
    if (c.rank == rank && (crash_at_ns_ < 0.0 || c.at_ns < crash_at_ns_))
      crash_at_ns_ = c.at_ns;
  }

  rate_ = plan.transient.rate;
  fail_count_ = plan.transient.fail_count > 0 ? plan.transient.fail_count : 1;
  stall_ns_ = plan.transient.stall_ns;
  site_ = plan.transient.site;
  skip_ = plan.transient.skip > 0 ? plan.transient.skip : 0;
  bounded_bursts_ = plan.transient.max_bursts > 0;
  max_bursts_ = plan.transient.max_bursts;
  pending_failures_ = 0;

  delay_rate_ = plan.delay_rate;
  delay_ns_ = plan.delay_ns;
  lock_stall_rate_ = plan.lock_stall_rate;
  lock_stall_ns_ = plan.lock_stall_ns;
  transients_ = 0;
}

std::uint64_t FaultInjector::next_u64() noexcept {
  // splitmix64 (Steele et al.): tiny, full-period, and seedable per rank.
  std::uint64_t z = (rng_ += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

double FaultInjector::next_unit() noexcept {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

void FaultInjector::fault_point_slow(const SimClock& clock) {
  if (crash_at_ns_ < 0.0 || clock.now_ns() < crash_at_ns_) return;
  const double at = crash_at_ns_;
  crash_at_ns_ = -1.0;  // crash exactly once
  if (tracer_ != nullptr) {
    tracer_->begin(TraceCat::fault, "fault.crash",
                   static_cast<std::uint64_t>(rank_));
    tracer_->end(TraceCat::fault, "fault.crash",
                 static_cast<std::uint64_t>(rank_));
  }
  // Survivable mode: record the death in the core *before* unwinding, so
  // peers blocked on this rank wake with Errc::crashed instead of waiting
  // for the victim's thread to exit.
  if (survivable_ && core_ != nullptr)
    core_->rank_crashed(rank_, clock.now_ns());
  throw MpiError(Errc::crashed,
                 "rank " + std::to_string(rank_) +
                     " crashed by fault plan (scheduled at " +
                     std::to_string(at) + " ns, fired at " +
                     std::to_string(clock.now_ns()) + " ns)");
}

void FaultInjector::maybe_transient_slow(SimClock& clock, const char* site) {
  if (site_ != nullptr && std::strcmp(site_, site) != 0) return;
  if (pending_failures_ == 0) {
    if (skip_ > 0) {
      --skip_;
      return;
    }
    if (bounded_bursts_ && max_bursts_ == 0) return;  // allowance spent
    if (next_unit() >= rate_) return;
    if (bounded_bursts_) --max_bursts_;
    pending_failures_ = fail_count_;
    if (tracer_ != nullptr) {
      tracer_->begin(TraceCat::fault, "fault.transient_burst",
                     static_cast<std::uint64_t>(fail_count_));
      tracer_->end(TraceCat::fault, "fault.transient_burst",
                   static_cast<std::uint64_t>(fail_count_));
    }
  }
  --pending_failures_;
  ++transients_;
  clock.advance(stall_ns_);
  throw MpiError(Errc::transient,
                 std::string(site) + ": transient fault injected on rank " +
                     std::to_string(rank_) + " (" +
                     std::to_string(pending_failures_) +
                     " more before success)");
}

double FaultInjector::draw_delivery_delay_ns() {
  if (!enabled_ || delay_rate_ <= 0.0) return 0.0;
  return next_unit() < delay_rate_ ? delay_ns_ : 0.0;
}

double FaultInjector::draw_lock_stall_ns() {
  if (!enabled_ || lock_stall_rate_ <= 0.0) return 0.0;
  return next_unit() < lock_stall_rate_ ? lock_stall_ns_ : 0.0;
}

}  // namespace mpisim
