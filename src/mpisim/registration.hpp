#ifndef MPISIM_REGISTRATION_HPP
#define MPISIM_REGISTRATION_HPP

/// \file registration.hpp
/// Memory-registration (pinning) model.
///
/// RDMA-capable interconnects require communication buffers to be pinned and
/// registered with the NIC. The paper's interoperability study (Figure 5)
/// shows the cost of *mismatched* registration: native ARMCI allocates from
/// a pre-pinned pool, while MVAPICH2 registers pages on demand and bounces
/// small transfers through pre-pinned internal buffers. This class models a
/// per-rank, per-runtime-system registration cache: the first transfer
/// touching an unregistered page pays the pin cost; later transfers are free.

#include <cstdint>
#include <map>

namespace mpisim {

/// Registration cache for one rank and one runtime system (MPI or native
/// ARMCI keep *separate* caches -- that separation is the point of Fig. 5).
class RegistrationCache {
 public:
  static constexpr std::size_t kPageBytes = 4096;

  /// Mark [addr, addr+len) registered and return the number of 4-KiB pages
  /// that were newly pinned (0 if the range was already fully registered).
  std::size_t ensure_registered(const void* addr, std::size_t len);

  /// True if [addr, addr+len) is fully registered already.
  bool is_registered(const void* addr, std::size_t len) const;

  /// Mark [addr, addr+len) registered without reporting a cost (models
  /// allocation from a pre-pinned pool).
  void register_prepinned(const void* addr, std::size_t len);

  /// Drop all registrations (e.g. at runtime finalize).
  void clear() noexcept { pages_.clear(); }

  /// Total pages currently pinned (resource-consumption metric).
  std::size_t pinned_pages() const noexcept;

 private:
  // Half-open page-number intervals [first, second).
  using PageMap = std::map<std::uintptr_t, std::uintptr_t>;

  std::pair<std::uintptr_t, std::uintptr_t> page_range(const void* addr,
                                                       std::size_t len) const;

  PageMap pages_;
};

}  // namespace mpisim

#endif  // MPISIM_REGISTRATION_HPP
