#include "src/mpisim/datatype.hpp"

#include <cstring>
#include <numeric>

#include "src/mpisim/error.hpp"

namespace mpisim {

namespace detail {

/// Immutable node of a datatype tree. `extent` may exceed `size` when the
/// layout has holes; both describe exactly one instance of the type.
struct TypeImpl {
  enum class Kind { basic, hvector, hindexed } kind = Kind::basic;

  BasicType elem = BasicType::byte_;
  std::size_t size = 0;        // payload bytes per instance
  std::ptrdiff_t extent = 0;   // bytes spanned per instance
  std::size_t nsegments = 1;   // maximal contiguous segments per instance
  bool contig = true;

  std::shared_ptr<const TypeImpl> child;  // null for Kind::basic

  // hvector parameters
  std::size_t count = 0;
  std::size_t blocklen = 0;
  std::ptrdiff_t stride_bytes = 0;

  // hindexed parameters
  std::vector<std::size_t> blocklens;
  std::vector<std::ptrdiff_t> displs;
};

namespace {

void walk(const TypeImpl& t, std::ptrdiff_t base,
          const std::function<void(Segment)>& f) {
  switch (t.kind) {
    case TypeImpl::Kind::basic:
      f({base, t.size});
      return;
    case TypeImpl::Kind::hvector: {
      const TypeImpl& c = *t.child;
      for (std::size_t i = 0; i < t.count; ++i) {
        std::ptrdiff_t block = base + static_cast<std::ptrdiff_t>(i) * t.stride_bytes;
        if (c.contig) {
          f({block, t.blocklen * c.size});
        } else {
          for (std::size_t j = 0; j < t.blocklen; ++j)
            walk(c, block + static_cast<std::ptrdiff_t>(j) * c.extent, f);
        }
      }
      return;
    }
    case TypeImpl::Kind::hindexed: {
      const TypeImpl& c = *t.child;
      for (std::size_t i = 0; i < t.blocklens.size(); ++i) {
        std::ptrdiff_t block = base + t.displs[i];
        if (c.contig) {
          f({block, t.blocklens[i] * c.size});
        } else {
          for (std::size_t j = 0; j < t.blocklens[i]; ++j)
            walk(c, block + static_cast<std::ptrdiff_t>(j) * c.extent, f);
        }
      }
      return;
    }
  }
}

}  // namespace

}  // namespace detail

using detail::TypeImpl;

Datatype::Datatype(std::shared_ptr<const TypeImpl> impl) : impl_(std::move(impl)) {}

Datatype Datatype::basic(BasicType t) {
  auto impl = std::make_shared<TypeImpl>();
  impl->kind = TypeImpl::Kind::basic;
  impl->elem = t;
  impl->size = basic_type_size(t);
  impl->extent = static_cast<std::ptrdiff_t>(impl->size);
  impl->nsegments = 1;
  impl->contig = true;
  return Datatype(std::move(impl));
}

Datatype Datatype::contiguous(std::size_t count, const Datatype& old) {
  // A contiguous type is an hvector with stride == child extent.
  return hvector(count, 1, old.extent(), old);
}

Datatype Datatype::vector(std::size_t count, std::size_t blocklen,
                          std::ptrdiff_t stride_elems, const Datatype& old) {
  return hvector(count, blocklen, stride_elems * old.extent(), old);
}

Datatype Datatype::hvector(std::size_t count, std::size_t blocklen,
                           std::ptrdiff_t stride_bytes, const Datatype& old) {
  if (count == 0 || blocklen == 0)
    raise(Errc::invalid_argument, "hvector with zero count or blocklen");
  const TypeImpl& c = *old.impl_;
  auto impl = std::make_shared<TypeImpl>();
  impl->kind = TypeImpl::Kind::hvector;
  impl->elem = c.elem;
  impl->child = old.impl_;
  impl->count = count;
  impl->blocklen = blocklen;
  impl->stride_bytes = stride_bytes;
  impl->size = count * blocklen * c.size;

  const std::ptrdiff_t block_extent =
      static_cast<std::ptrdiff_t>(blocklen) * c.extent;
  impl->extent = static_cast<std::ptrdiff_t>(count - 1) * stride_bytes + block_extent;
  if (impl->extent < block_extent)  // negative stride: span measured from 0
    impl->extent = block_extent - static_cast<std::ptrdiff_t>(count - 1) * stride_bytes;

  const bool block_contig = c.contig;
  impl->contig = block_contig && (count == 1 || stride_bytes == block_extent);
  if (impl->contig) {
    impl->nsegments = 1;
  } else if (block_contig) {
    // Blocks separated by holes: one segment per block unless stride packs
    // them back-to-back (handled above).
    impl->nsegments = count;
  } else {
    impl->nsegments = count * blocklen * c.nsegments;
  }
  return Datatype(std::move(impl));
}

Datatype Datatype::indexed(std::span<const std::size_t> blocklens,
                           std::span<const std::ptrdiff_t> displs_elems,
                           const Datatype& old) {
  std::vector<std::ptrdiff_t> displs_bytes(displs_elems.size());
  for (std::size_t i = 0; i < displs_elems.size(); ++i)
    displs_bytes[i] = displs_elems[i] * old.extent();
  return hindexed(blocklens, displs_bytes, old);
}

Datatype Datatype::hindexed(std::span<const std::size_t> blocklens,
                            std::span<const std::ptrdiff_t> displs_bytes,
                            const Datatype& old) {
  if (blocklens.size() != displs_bytes.size())
    raise(Errc::invalid_argument, "hindexed blocklens/displs length mismatch");
  if (blocklens.empty())
    raise(Errc::invalid_argument, "hindexed with zero blocks");
  const TypeImpl& c = *old.impl_;
  auto impl = std::make_shared<TypeImpl>();
  impl->kind = TypeImpl::Kind::hindexed;
  impl->elem = c.elem;
  impl->child = old.impl_;
  impl->blocklens.assign(blocklens.begin(), blocklens.end());
  impl->displs.assign(displs_bytes.begin(), displs_bytes.end());

  std::size_t payload = 0;
  std::ptrdiff_t hi = 0;
  std::size_t nseg = 0;
  for (std::size_t i = 0; i < blocklens.size(); ++i) {
    payload += blocklens[i] * c.size;
    const std::ptrdiff_t end =
        displs_bytes[i] + static_cast<std::ptrdiff_t>(blocklens[i]) * c.extent;
    hi = std::max(hi, end);
    nseg += c.contig ? 1 : blocklens[i] * c.nsegments;
  }
  impl->size = payload;
  impl->extent = hi;
  impl->nsegments = nseg;
  impl->contig = (nseg == 1 && blocklens.size() == 1 && displs_bytes[0] == 0 &&
                  static_cast<std::size_t>(impl->extent) == impl->size);
  return Datatype(std::move(impl));
}

Datatype Datatype::subarray(std::span<const std::size_t> sizes,
                            std::span<const std::size_t> subsizes,
                            std::span<const std::size_t> starts,
                            const Datatype& old) {
  const std::size_t nd = sizes.size();
  if (nd == 0 || subsizes.size() != nd || starts.size() != nd)
    raise(Errc::invalid_argument, "subarray dimension mismatch");
  for (std::size_t d = 0; d < nd; ++d) {
    if (subsizes[d] == 0 || starts[d] + subsizes[d] > sizes[d])
      raise(Errc::invalid_argument, "subarray patch out of bounds");
  }

  // Build innermost (fastest-varying, C order) dimension first, then wrap
  // with hvectors. The start offsets accumulate into one leading hole,
  // expressed as a single-block hindexed at the end.
  Datatype t = Datatype::contiguous(subsizes[nd - 1], old);
  std::ptrdiff_t row_bytes = old.extent();  // bytes per element of dim d+1 row
  for (std::size_t d = nd - 1; d-- > 0;) {
    // Stride between consecutive index values of dimension d, in bytes:
    // product of sizes of all faster dimensions times the element extent.
    std::ptrdiff_t stride = old.extent();
    for (std::size_t k = d + 1; k < nd; ++k)
      stride *= static_cast<std::ptrdiff_t>(sizes[k]);
    t = Datatype::hvector(subsizes[d], 1, stride, t);
  }
  // Leading displacement of the patch origin.
  std::ptrdiff_t disp = 0;
  for (std::size_t d = 0; d < nd; ++d) {
    std::ptrdiff_t stride = old.extent();
    for (std::size_t k = d + 1; k < nd; ++k)
      stride *= static_cast<std::ptrdiff_t>(sizes[k]);
    disp += static_cast<std::ptrdiff_t>(starts[d]) * stride;
  }
  (void)row_bytes;
  if (disp == 0) return t;
  const std::size_t one = 1;
  return Datatype::hindexed(std::span<const std::size_t>(&one, 1),
                            std::span<const std::ptrdiff_t>(&disp, 1), t);
}

std::size_t Datatype::size() const noexcept { return impl_->size; }
std::ptrdiff_t Datatype::extent() const noexcept { return impl_->extent; }
BasicType Datatype::element_type() const noexcept { return impl_->elem; }
bool Datatype::contiguous_layout() const noexcept { return impl_->contig; }
std::size_t Datatype::segment_count() const noexcept { return impl_->nsegments; }

void Datatype::for_each_segment(std::size_t count,
                                const std::function<void(Segment)>& f) const {
  for (std::size_t i = 0; i < count; ++i)
    detail::walk(*impl_, static_cast<std::ptrdiff_t>(i) * impl_->extent, f);
}

std::vector<Segment> Datatype::flatten(std::size_t count) const {
  // Coalesce adjacent segments: consecutive instances of a contiguous type
  // (and steps of a packed stride) collapse into one long segment, so both
  // data movement and segment-based cost accounting see the true layout.
  std::vector<Segment> out;
  for_each_segment(count, [&](Segment s) {
    if (!out.empty() &&
        out.back().offset + static_cast<std::ptrdiff_t>(out.back().length) ==
            s.offset) {
      out.back().length += s.length;
    } else {
      out.push_back(s);
    }
  });
  return out;
}

void Datatype::pack(const void* base, std::size_t count, void* out) const {
  const auto* src = static_cast<const std::uint8_t*>(base);
  auto* dst = static_cast<std::uint8_t*>(out);
  std::size_t pos = 0;
  for_each_segment(count, [&](Segment s) {
    std::memcpy(dst + pos, src + s.offset, s.length);
    pos += s.length;
  });
}

void Datatype::unpack(const void* in, void* base, std::size_t count) const {
  const auto* src = static_cast<const std::uint8_t*>(in);
  auto* dst = static_cast<std::uint8_t*>(base);
  std::size_t pos = 0;
  for_each_segment(count, [&](Segment s) {
    std::memcpy(dst + s.offset, src + pos, s.length);
    pos += s.length;
  });
}

Datatype byte_type() { return Datatype::basic(BasicType::byte_); }
Datatype int32_type() { return Datatype::basic(BasicType::int32); }
Datatype int64_type() { return Datatype::basic(BasicType::int64); }
Datatype double_type() { return Datatype::basic(BasicType::float64); }

}  // namespace mpisim
