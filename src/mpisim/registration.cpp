#include "src/mpisim/registration.hpp"

#include <algorithm>

namespace mpisim {

std::pair<std::uintptr_t, std::uintptr_t> RegistrationCache::page_range(
    const void* addr, std::size_t len) const {
  const auto a = reinterpret_cast<std::uintptr_t>(addr);
  const std::uintptr_t first = a / kPageBytes;
  const std::uintptr_t last = (a + (len == 0 ? 0 : len - 1)) / kPageBytes + 1;
  return {first, last};
}

std::size_t RegistrationCache::ensure_registered(const void* addr,
                                                 std::size_t len) {
  if (len == 0) return 0;
  auto [lo, hi] = page_range(addr, len);
  std::size_t newly = 0;

  // Walk existing intervals overlapping [lo, hi), counting gaps, then merge.
  auto it = pages_.upper_bound(lo);
  if (it != pages_.begin()) {
    auto prev = std::prev(it);
    if (prev->second >= lo) it = prev;
  }
  std::uintptr_t cur = lo;
  std::uintptr_t merged_lo = lo, merged_hi = hi;
  while (it != pages_.end() && it->first <= hi) {
    if (it->first > cur) newly += it->first - cur;
    cur = std::max(cur, it->second);
    merged_lo = std::min(merged_lo, it->first);
    merged_hi = std::max(merged_hi, it->second);
    it = pages_.erase(it);
  }
  if (cur < hi) newly += hi - cur;
  pages_[merged_lo] = merged_hi;
  return newly;
}

bool RegistrationCache::is_registered(const void* addr, std::size_t len) const {
  if (len == 0) return true;
  auto [lo, hi] = page_range(addr, len);
  auto it = pages_.upper_bound(lo);
  if (it == pages_.begin()) return false;
  --it;
  return it->first <= lo && it->second >= hi;
}

void RegistrationCache::register_prepinned(const void* addr, std::size_t len) {
  ensure_registered(addr, len);
}

std::size_t RegistrationCache::pinned_pages() const noexcept {
  std::size_t total = 0;
  for (const auto& [lo, hi] : pages_) total += hi - lo;
  return total;
}

}  // namespace mpisim
