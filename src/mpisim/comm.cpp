#include "src/mpisim/comm.hpp"

#include <algorithm>
#include <cstring>

#include "src/mpisim/error.hpp"
#include "src/mpisim/runtime.hpp"

namespace mpisim {

namespace {

/// Communicator id reserved for runtime-internal rendezvous (leader
/// handshakes of intercomm_create/merge); never handed to user code.
constexpr std::uint64_t kSystemChannel = 0;

/// Serialize a rank list (+ trailing extras) into a byte payload.
std::vector<std::uint8_t> encode_ints(std::span<const std::int64_t> vals) {
  std::vector<std::uint8_t> out(vals.size() * sizeof(std::int64_t));
  std::memcpy(out.data(), vals.data(), out.size());
  return out;
}

std::vector<std::int64_t> decode_ints(std::span<const std::uint8_t> bytes) {
  std::vector<std::int64_t> out(bytes.size() / sizeof(std::int64_t));
  std::memcpy(out.data(), bytes.data(), bytes.size());
  return out;
}

/// Leader-to-leader message on the system channel, addressed by world rank.
void system_send(SimCore& core, int dest_world, int tag,
                 std::vector<std::uint8_t> payload) {
  RankContext& me = ctx();
  me.fault().fault_point(me.clock());
  Message m;
  m.comm_id = kSystemChannel;
  m.src_comm_rank = me.rank();  // world rank on the system channel
  m.tag = tag;
  m.payload = std::move(payload);
  m.send_ts_ns = me.clock().now_ns() + me.fault().draw_delivery_delay_ns();
  me.clock().advance(core.model().p2p_ns(0));
  std::unique_lock lk(core.mu());
  core.note_time_locked(me.clock().now_ns());
  if (core.hb().enabled()) m.vc = core.hb().send_snapshot(me.rank());
  core.mailbox(dest_world).push(std::move(m));
  core.poke();
}

std::vector<std::uint8_t> system_recv(SimCore& core, int src_world, int tag) {
  RankContext& me = ctx();
  me.fault().fault_point(me.clock());
  std::unique_lock lk(core.mu());
  Mailbox& mb = core.mailbox(me.rank());
  core.wait(lk, [&] { return mb.has_match(kSystemChannel, src_world, tag); },
            "comm.system_recv");
  Message m = mb.pop_match(kSystemChannel, src_world, tag);
  core.hb().recv_join(me.rank(), m.vc);
  me.clock().advance_to(m.send_ts_ns + core.model().p2p_ns(m.payload.size(),
                                                           src_world,
                                                           me.rank()));
  return std::move(m.payload);
}

/// Survivable mode: a collective round may complete once every member has
/// either arrived or died -- the survivors must not block forever on a
/// dead peer. Caller must hold the global lock.
bool round_satisfied_locked(const CollCtx& cc, const CommImpl& c) {
  for (int r = 0; r < c.group.size(); ++r) {
    if (cc.present[static_cast<std::size_t>(r)] != 0) continue;
    if (!c.core->is_dead_locked(c.group.world_rank(r))) return false;
  }
  return true;
}

[[noreturn]] void throw_revoked(const char* site) {
  throw MpiError(Errc::revoked, std::string("mpisim: ") + site +
                                    " on a revoked communicator");
}

}  // namespace

Comm::Comm(std::shared_ptr<CommImpl> impl) : impl_(std::move(impl)) {}

int Comm::rank() const {
  const int r = impl_->group.rank_of_world(ctx().rank());
  if (r < 0) raise(Errc::rank_out_of_range, "caller not in communicator");
  return r;
}

int Comm::size() const noexcept { return impl_->group.size(); }

bool Comm::is_inter() const noexcept { return impl_->is_inter; }

int Comm::remote_size() const {
  if (!impl_->is_inter) raise(Errc::comm_mismatch, "remote_size on intracomm");
  return impl_->remote_group.size();
}

const Group& Comm::group() const noexcept { return impl_->group; }

const Group& Comm::remote_group() const {
  if (!impl_->is_inter) raise(Errc::comm_mismatch, "remote_group on intracomm");
  return impl_->remote_group;
}

int Comm::world_rank(int r) const { return impl_->group.world_rank(r); }

std::uint64_t Comm::id() const noexcept { return impl_->id; }

// ---------------------------------------------------------------------------
// Two-sided messaging
// ---------------------------------------------------------------------------

void Comm::send(const void* buf, std::size_t bytes, int dest, int tag) const {
  CommImpl& c = *impl_;
  SimCore& core = *c.core;
  const Group& dest_group = c.is_inter ? c.remote_group : c.group;
  const int dest_world = dest_group.world_rank(dest);

  Message m;
  m.comm_id = c.id;
  m.src_comm_rank = rank();
  m.tag = tag;
  m.payload.assign(static_cast<const std::uint8_t*>(buf),
                   static_cast<const std::uint8_t*>(buf) + bytes);
  RankContext& me = ctx();
  me.fault().fault_point(me.clock());
  m.send_ts_ns = me.clock().now_ns() + me.fault().draw_delivery_delay_ns();
  // Eager protocol: the sender pays injection overhead only.
  me.clock().advance(core.model().p2p_ns(0));

  std::unique_lock lk(core.mu());
  if (c.revoked) throw_revoked("comm.send");
  core.check_target_alive_locked(dest_world, "comm.send");
  Mailbox& mb = core.mailbox(dest_world);
  // Eager-flow control: refuse to buffer without bound. A message that a
  // posted receive consumes never queues and is exempt; the cap applies
  // only to unexpected-queue growth at the destination.
  const std::size_t cap = core.config().mailbox_cap_bytes;
  if (cap > 0 && !mb.has_posted_match(m.comm_id, m.src_comm_rank, m.tag) &&
      mb.queued_bytes() + m.payload.size() > cap) {
    raise(Errc::resource_exhausted,
          "eager send of " + std::to_string(m.payload.size()) +
              " bytes to world rank " + std::to_string(dest_world) +
              " would exceed the mailbox cap (" +
              std::to_string(mb.queued_bytes()) + " of " +
              std::to_string(cap) + " bytes already queued)");
  }
  core.note_time_locked(me.clock().now_ns());
  if (core.hb().enabled()) m.vc = core.hb().send_snapshot(me.rank());
  mb.push(std::move(m));
  core.poke();
}

Status Comm::recv(void* buf, std::size_t capacity, int src, int tag) const {
  CommImpl& c = *impl_;
  SimCore& core = *c.core;
  RankContext& me = ctx();
  me.fault().fault_point(me.clock());

  std::unique_lock lk(core.mu());
  if (c.revoked) throw_revoked("comm.recv");
  Mailbox& mb = core.mailbox(me.rank());
  // Failure-aware wait: wake not only on a match but also on revocation
  // and on the death of the awaited sender (specific source), or -- for
  // wildcard receives -- on any death not yet covered by failure_ack()
  // (the sender we are waiting for might be the one that died). The
  // predicate only flags; the throw happens after wait() returns so the
  // core's blocked-rank accounting stays balanced.
  int dead_src = -1;
  bool was_revoked = false;
  core.wait(lk,
            [&] {
              if (mb.has_match(c.id, src, tag)) return true;
              if (c.revoked) {
                was_revoked = true;
                return true;
              }
              if (core.survivable()) {
                if (src != kAnySource) {
                  const Group& g = c.is_inter ? c.remote_group : c.group;
                  const int w = g.world_rank(src);
                  if (core.is_dead_locked(w)) {
                    dead_src = w;
                    return true;
                  }
                } else if (core.death_epoch_locked() >
                           me.acked_death_epoch) {
                  dead_src = core.latest_dead_locked();
                  return true;
                }
              }
              return false;
            },
            "comm.recv");
  if (was_revoked) throw_revoked("comm.recv");
  if (dead_src >= 0) core.observe_death_locked(dead_src, "comm.recv");
  Message m = mb.pop_match(c.id, src, tag);
  core.hb().recv_join(me.rank(), m.vc);
  lk.unlock();

  if (m.payload.size() > capacity)
    raise(Errc::truncation, "message of " + std::to_string(m.payload.size()) +
                                " bytes into " + std::to_string(capacity) +
                                "-byte buffer");
  std::memcpy(buf, m.payload.data(), m.payload.size());
  const Group& sg = c.is_inter ? c.remote_group : c.group;
  me.clock().advance_to(
      m.send_ts_ns + core.model().p2p_ns(m.payload.size(),
                                         sg.world_rank(m.src_comm_rank),
                                         me.rank()));

  Status st;
  st.source = m.src_comm_rank;
  st.tag = m.tag;
  st.bytes = m.payload.size();
  return st;
}

bool Comm::iprobe(int src, int tag, Status* st) const {
  CommImpl& c = *impl_;
  SimCore& core = *c.core;
  RankContext& me = ctx();
  std::unique_lock lk(core.mu());
  Mailbox& mb = core.mailbox(me.rank());
  if (!mb.has_match(c.id, src, tag)) return false;
  if (st != nullptr) {
    // Peek by popping and re-inserting would break FIFO; match manually.
    Message m = mb.pop_match(c.id, src, tag);
    st->source = m.src_comm_rank;
    st->tag = m.tag;
    st->bytes = m.payload.size();
    mb.push(std::move(m));  // NOTE: reordered to the back; acceptable for
                            // probe-then-recv-with-explicit-source patterns.
  }
  return true;
}

// ---------------------------------------------------------------------------
// Nonblocking point-to-point
// ---------------------------------------------------------------------------

Comm::Request Comm::isend(const void* buf, std::size_t bytes, int dest,
                          int tag) const {
  // Eager protocol: identical to send(); the handle exists for symmetry.
  send(buf, bytes, dest, tag);
  return Request();
}

Comm::Request Comm::irecv(void* buf, std::size_t capacity, int src,
                          int tag) const {
  CommImpl& c = *impl_;
  SimCore& core = *c.core;
  RankContext& me = ctx();

  Request r;
  r.impl_ = impl_;
  r.is_recv_ = true;
  auto rec = std::make_shared<PostedRecv>();
  rec->comm_id = c.id;
  rec->src = src;
  rec->tag = tag;
  rec->buf = buf;
  rec->capacity = capacity;
  r.rec_ = rec;

  std::lock_guard lk(core.mu());
  if (c.revoked) throw_revoked("comm.irecv");
  Mailbox& mb = core.mailbox(me.rank());
  if (mb.has_match(c.id, src, tag))
    Mailbox::deliver(*rec, mb.pop_match(c.id, src, tag));
  else
    mb.post(std::move(rec));
  return r;
}

namespace {

/// Survivable-mode failure check shared by Request wait()/test(): the
/// world rank whose death this unmatched receive must surface, or -1.
/// Caller holds the global lock.
int pending_death_locked(const SimCore& core, const CommImpl& c,
                         const PostedRecv& p) {
  if (!core.survivable()) return -1;
  if (p.src != kAnySource) {
    const Group& g = c.is_inter ? c.remote_group : c.group;
    const int w = g.world_rank(p.src);
    return core.is_dead_locked(w) ? w : -1;
  }
  if (core.death_epoch_locked() > ctx().acked_death_epoch)
    return core.latest_dead_locked();
  return -1;
}

}  // namespace

/// Finish a matched receive on the poster's thread: happens-before join,
/// truncation raise, clock advance to the node-aware delivery time, status
/// publication. Expects the global lock held on entry; returns unlocked.
void Comm::Request::complete_matched(std::unique_lock<std::mutex>& lk,
                                     Status* st) {
  CommImpl& c = *impl_;
  SimCore& core = *c.core;
  RankContext& me = ctx();
  PostedRecv& p = *rec_;
  core.hb().recv_join(me.rank(), p.vc);
  lk.unlock();
  completed_ = true;
  if (p.truncated)
    raise(Errc::truncation, "message of " + std::to_string(p.msg_bytes) +
                                " bytes into " + std::to_string(p.capacity) +
                                "-byte buffer");
  const Group& sg = c.is_inter ? c.remote_group : c.group;
  me.clock().advance_to(p.send_ts_ns +
                        core.model().p2p_ns(p.msg_bytes,
                                            sg.world_rank(p.st.source),
                                            me.rank()));
  status_ = p.st;
  if (st != nullptr) *st = status_;
}

void Comm::Request::wait(Status* st) {
  if (!is_recv_) {  // sends are eager and born complete; wait is a no-op
    if (st != nullptr) *st = status_;
    return;
  }
  if (completed_)
    raise(Errc::invalid_argument,
          "Request::wait on an already-completed receive");
  CommImpl& c = *impl_;
  SimCore& core = *c.core;
  RankContext& me = ctx();
  me.fault().fault_point(me.clock());

  std::unique_lock lk(core.mu());
  PostedRecv& p = *rec_;
  // Failure-aware wait, mirroring Comm::recv(): wake on delivery, but also
  // on revocation and -- in survivable mode -- on the death of the awaited
  // sender (specific source) or any unacked death (wildcard source), so a
  // nonblocking receive's wait() cannot block forever on a dead peer.
  int dead_src = -1;
  bool was_revoked = false;
  core.wait(lk,
            [&] {
              if (p.matched) return true;
              if (c.revoked) {
                was_revoked = true;
                return true;
              }
              dead_src = pending_death_locked(core, c, p);
              return dead_src >= 0;
            },
            "comm.irecv_wait");
  if (!p.matched) {
    // Error completion: deregister the posting so it cannot dangle, then
    // surface the failure exactly once through this handle.
    core.mailbox(me.rank()).cancel_posted(rec_);
    completed_ = true;
    if (was_revoked) throw_revoked("comm.irecv_wait");
    core.observe_death_locked(dead_src, "comm.irecv_wait");  // throws
  }
  complete_matched(lk, st);
}

bool Comm::Request::test(Status* st) {
  if (!is_recv_ || completed_) {
    if (st != nullptr) *st = status_;
    return true;
  }
  CommImpl& c = *impl_;
  SimCore& core = *c.core;
  RankContext& me = ctx();
  std::unique_lock lk(core.mu());
  PostedRecv& p = *rec_;
  if (!p.matched) {
    // Nonblocking failure surface: the same conditions wait() wakes on.
    if (c.revoked) {
      core.mailbox(me.rank()).cancel_posted(rec_);
      completed_ = true;
      throw_revoked("comm.irecv_test");
    }
    const int dead_src = pending_death_locked(core, c, p);
    if (dead_src >= 0) {
      core.mailbox(me.rank()).cancel_posted(rec_);
      completed_ = true;
      core.observe_death_locked(dead_src, "comm.irecv_test");  // throws
    }
    return false;
  }
  complete_matched(lk, st);
  return true;
}

bool Comm::Request::ready_locked() const noexcept {
  return !is_recv_ || completed_ || (rec_ != nullptr && rec_->matched);
}

Comm::Request::~Request() {
  if (!is_recv_ || completed_ || rec_ == nullptr || impl_ == nullptr) return;
  if (!in_simulation()) return;  // simulator already torn down
  SimCore& core = *impl_->core;
  RankContext& me = ctx();
  std::lock_guard lk(core.mu());
  if (!rec_->matched) {
    // Never matched: deregister deterministically so the mailbox holds no
    // dangling posting aimed at a dead stack frame.
    core.mailbox(me.rank()).cancel_posted(rec_);
    return;
  }
  // Delivered but never completed: consume the message here -- join the
  // sender's clock and advance past the delivery -- so dropping the handle
  // cannot erase a communication the buffer already observed. Never throws.
  CommImpl& c = *impl_;
  core.hb().recv_join(me.rank(), rec_->vc);
  const Group& sg = c.is_inter ? c.remote_group : c.group;
  me.clock().advance_to(rec_->send_ts_ns +
                        core.model().p2p_ns(rec_->msg_bytes,
                                            sg.world_rank(rec_->st.source),
                                            me.rank()));
}

void Comm::wait_all(std::span<Request> reqs) {
  for (Request& r : reqs) {
    if (r.is_recv_ && r.completed_) continue;  // tolerate test()-completed
    r.wait();
  }
}

// ---------------------------------------------------------------------------
// Collectives
// ---------------------------------------------------------------------------

bool Comm::collective_round(
    const void* in, void* out, std::size_t count, double cost_ns,
    const std::function<void(CollCtx&, const Group&)>& leader_fn) const {
  // On intercommunicators this rendezvous runs over the *local* group
  // (coll buffers are sized for it), which is exactly what merge() needs.
  CommImpl& c = *impl_;
  SimCore& core = *c.core;
  RankContext& me = ctx();
  me.fault().fault_point(me.clock());
  const int n = c.group.size();
  const int myrank = rank();

  std::unique_lock lk(core.mu());
  if (c.revoked) throw_revoked("comm.collective");
  CollCtx& cc = c.coll;
  const std::uint64_t my_gen = cc.gen;
  cc.inbufs[static_cast<std::size_t>(myrank)] = in;
  cc.outbufs[static_cast<std::size_t>(myrank)] = out;
  cc.incounts[static_cast<std::size_t>(myrank)] = count;
  cc.present[static_cast<std::size_t>(myrank)] = 1;
  cc.max_clock_ns = std::max(cc.max_clock_ns, me.clock().now_ns());
  core.note_time_locked(me.clock().now_ns());
  if (core.hb().enabled()) core.hb().coll_arrive(cc.hb_acc, me.rank());
  ++cc.arrived;

  // Complete the round: null the buffer slots of members that never
  // arrived (dead; their pointers are stale from earlier rounds) so
  // leader functions skip them, fold the detector bound of each dead
  // member into the departure clock, run the leader body, and open the
  // next generation. Caller holds the global lock.
  const auto complete_locked = [&] {
    double detect_ns = cc.max_clock_ns;
    if (core.survivable()) {
      for (int r = 0; r < n; ++r) {
        const auto ri = static_cast<std::size_t>(r);
        if (cc.present[ri] != 0) continue;
        cc.inbufs[ri] = nullptr;
        cc.outbufs[ri] = nullptr;
        cc.incounts[ri] = 0;
        detect_ns = std::max(
            detect_ns, core.detection_bound_locked(c.group.world_rank(r)));
      }
    }
    cc.dep_dead = false;
    if (leader_fn) leader_fn(cc, c.group);
    cc.hb_result = std::move(cc.hb_acc);
    cc.hb_acc.clear();
    cc.result_clock_ns = detect_ns + cost_ns;
    cc.arrived = 0;
    cc.max_clock_ns = 0.0;
    std::fill(cc.present.begin(), cc.present.end(), 0);
    ++cc.gen;
    core.poke();
  };

  if (cc.arrived == n ||
      (core.survivable() && round_satisfied_locked(cc, c))) {
    complete_locked();
  } else {
    // Survivable mode: a waiter may become the completer when the last
    // missing member dies rather than arrives (the death poke wakes it).
    core.wait(lk,
              [&] {
                if (cc.gen != my_gen) return true;
                if (core.survivable() && round_satisfied_locked(cc, c)) {
                  complete_locked();
                  return true;
                }
                return false;
              },
              "comm.collective");
  }
  me.clock().advance_to(cc.result_clock_ns);
  if (core.hb().enabled()) core.hb().coll_depart(me.rank(), cc.hb_result);
  // Safe to read after the wait: the next round on this comm cannot
  // complete (and overwrite the flag) until every live member -- including
  // this one -- has arrived at it, i.e. has left this call.
  return cc.dep_dead;
}

void Comm::barrier() const {
  collective_round(nullptr, nullptr, 0,
                   ctx().core().model().barrier_ns(size()), nullptr);
}

namespace {

/// A rooted collective completed over the survivors but its dependency
/// rank (bcast source / reduce destination) was dead: raise Errc::crashed
/// on every surviving caller rather than returning stale buffers. The
/// detection bound was already folded into the round's result clock, so
/// the observation advances nothing; it stamps the latency gauge and the
/// trace event before throwing.
void raise_dead_root(CommImpl& c, int root, const char* site) {
  std::lock_guard lk(c.core->mu());
  c.core->observe_death_locked(c.group.world_rank(root), site);  // throws
}

}  // namespace

void Comm::bcast(void* buf, std::size_t bytes, int root) const {
  const double cost = ctx().core().model().tree_collective_ns(bytes, size());
  const bool root_dead = collective_round(
      buf, buf, bytes, cost, [root, bytes](CollCtx& cc, const Group& g) {
        const void* src = cc.outbufs[static_cast<std::size_t>(root)];
        if (src == nullptr) {  // root died; data is gone
          cc.dep_dead = true;
          return;
        }
        for (int r = 0; r < g.size(); ++r) {
          if (r == root) continue;
          void* dst = cc.outbufs[static_cast<std::size_t>(r)];
          if (dst == nullptr) continue;  // dead member
          std::memcpy(dst, src, bytes);
        }
      });
  if (root_dead) raise_dead_root(*impl_, root, "comm.bcast");
}

void Comm::reduce(const void* in, void* out, std::size_t count, BasicType t,
                  Op op, int root) const {
  const std::size_t bytes = count * basic_type_size(t);
  const double cost = ctx().core().model().tree_collective_ns(bytes, size());
  const bool root_dead = collective_round(
      in, out, count, cost, [=](CollCtx& cc, const Group& g) {
        auto* dst = static_cast<std::uint8_t*>(
            cc.outbufs[static_cast<std::size_t>(root)]);
        if (dst == nullptr) {  // root died; nowhere to reduce into
          cc.dep_dead = true;
          return;
        }
        bool first = true;
        for (int r = 0; r < g.size(); ++r) {
          const void* src = cc.inbufs[static_cast<std::size_t>(r)];
          if (src == nullptr) continue;  // dead member contributes nothing
          if (first) {
            std::memcpy(dst, src, bytes);
            first = false;
          } else {
            apply_op(op, t, dst, src, count);
          }
        }
      });
  if (root_dead) raise_dead_root(*impl_, root, "comm.reduce");
}

void Comm::allreduce(const void* in, void* out, std::size_t count, BasicType t,
                     Op op) const {
  const std::size_t bytes = count * basic_type_size(t);
  const double cost =
      2.0 * ctx().core().model().tree_collective_ns(bytes, size());
  collective_round(
      in, out, count, cost, [=](CollCtx& cc, const Group& g) {
        std::vector<std::uint8_t> acc(bytes);
        bool first = true;
        for (int r = 0; r < g.size(); ++r) {
          const void* src = cc.inbufs[static_cast<std::size_t>(r)];
          if (src == nullptr) continue;  // dead member contributes nothing
          if (first) {
            std::memcpy(acc.data(), src, bytes);
            first = false;
          } else {
            apply_op(op, t, acc.data(), src, count);
          }
        }
        if (first) return;  // no live contributions at all
        for (int r = 0; r < g.size(); ++r) {
          void* dst = cc.outbufs[static_cast<std::size_t>(r)];
          if (dst != nullptr) std::memcpy(dst, acc.data(), bytes);
        }
      });
}

void Comm::allgather(const void* in, void* out, std::size_t bytes) const {
  const double cost = ctx().core().model().tree_collective_ns(
      bytes * static_cast<std::size_t>(size()), size());
  collective_round(
      in, out, bytes, cost, [bytes](CollCtx& cc, const Group& g) {
        for (int r = 0; r < g.size(); ++r) {
          const void* src = cc.inbufs[static_cast<std::size_t>(r)];
          if (src == nullptr) continue;  // dead member's slice stays as-is
          for (int w = 0; w < g.size(); ++w) {
            auto* base = static_cast<std::uint8_t*>(
                cc.outbufs[static_cast<std::size_t>(w)]);
            if (base == nullptr) continue;
            std::memcpy(base + static_cast<std::size_t>(r) * bytes, src,
                        bytes);
          }
        }
      });
}

void Comm::allgatherv(const void* in, std::size_t my_bytes, void* out,
                      std::span<const std::size_t> counts) const {
  if (static_cast<int>(counts.size()) != size())
    raise(Errc::invalid_argument, "allgatherv counts size mismatch");
  std::size_t total = 0;
  for (std::size_t c : counts) total += c;
  const double cost = ctx().core().model().tree_collective_ns(total, size());
  std::vector<std::size_t> offsets(counts.size());
  std::size_t pos = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    offsets[i] = pos;
    pos += counts[i];
  }
  collective_round(
      in, out, my_bytes, cost, [&](CollCtx& cc, const Group& g) {
        for (int r = 0; r < g.size(); ++r) {
          const void* src = cc.inbufs[static_cast<std::size_t>(r)];
          if (src == nullptr) continue;  // dead member's slice stays as-is
          require_internal(cc.incounts[static_cast<std::size_t>(r)] ==
                               counts[static_cast<std::size_t>(r)],
                           "allgatherv inconsistent counts");
          for (int w = 0; w < g.size(); ++w) {
            auto* base = static_cast<std::uint8_t*>(
                cc.outbufs[static_cast<std::size_t>(w)]);
            if (base == nullptr) continue;
            std::memcpy(base + offsets[static_cast<std::size_t>(r)], src,
                        counts[static_cast<std::size_t>(r)]);
          }
        }
      });
}

void Comm::alltoall(const void* in, void* out, std::size_t bytes) const {
  const double cost = ctx().core().model().alltoall_ns(bytes, size());
  collective_round(
      in, out, bytes, cost, [bytes](CollCtx& cc, const Group& g) {
        for (int r = 0; r < g.size(); ++r) {
          const auto* src =
              static_cast<const std::uint8_t*>(cc.inbufs[static_cast<std::size_t>(r)]);
          if (src == nullptr) continue;  // dead member sends nothing
          for (int w = 0; w < g.size(); ++w) {
            auto* base = static_cast<std::uint8_t*>(
                cc.outbufs[static_cast<std::size_t>(w)]);
            if (base == nullptr) continue;
            std::memcpy(base + static_cast<std::size_t>(r) * bytes,
                        src + static_cast<std::size_t>(w) * bytes, bytes);
          }
        }
      });
}

void Comm::scan(const void* in, void* out, std::size_t count, BasicType t,
                Op op) const {
  const std::size_t bytes = count * basic_type_size(t);
  const double cost = ctx().core().model().tree_collective_ns(bytes, size());
  collective_round(
      in, out, count, cost, [=](CollCtx& cc, const Group& g) {
        std::vector<std::uint8_t> acc(bytes);
        bool first = true;
        for (int r = 0; r < g.size(); ++r) {
          const void* src = cc.inbufs[static_cast<std::size_t>(r)];
          if (src != nullptr) {
            if (first) {
              std::memcpy(acc.data(), src, bytes);
              first = false;
            } else {
              apply_op(op, t, acc.data(), src, count);
            }
          }
          void* dst = cc.outbufs[static_cast<std::size_t>(r)];
          if (dst != nullptr && !first)
            std::memcpy(dst, acc.data(), bytes);
        }
      });
}

// ---------------------------------------------------------------------------
// Communicator construction
// ---------------------------------------------------------------------------

namespace {

std::shared_ptr<CommImpl> make_intracomm(SimCore& core, std::uint64_t id,
                                         Group group) {
  auto impl = std::make_shared<CommImpl>();
  impl->id = id;
  impl->core = &core;
  impl->group = std::move(group);
  const auto n = static_cast<std::size_t>(impl->group.size());
  impl->coll.inbufs.resize(n);
  impl->coll.outbufs.resize(n);
  impl->coll.incounts.resize(n);
  impl->coll.present.assign(n, 0);
  impl->shrink_calls.assign(n, 0);
  return impl;
}

}  // namespace

Comm Comm::self() {
  RankContext& me = ctx();
  SimCore& core = me.core();
  std::uint64_t id;
  {
    std::lock_guard lk(core.mu());
    id = core.alloc_comm_id_locked();
  }
  return Comm(make_intracomm(core, id, Group({me.rank()})));
}

Comm Comm::dup() const {
  SimCore& core = *impl_->core;
  std::shared_ptr<CommImpl> result;
  collective_round(nullptr, &result, 0, core.model().barrier_ns(size()),
                   [&core](CollCtx& cc, const Group& g) {
                     auto impl = make_intracomm(
                         core, core.alloc_comm_id_locked(), g);
                     for (int r = 0; r < g.size(); ++r) {
                       void* slot = cc.outbufs[static_cast<std::size_t>(r)];
                       if (slot == nullptr) continue;  // dead member
                       *static_cast<std::shared_ptr<CommImpl>*>(slot) = impl;
                     }
                   });
  return Comm(std::move(result));
}

Comm Comm::split(int color, int key) const {
  SimCore& core = *impl_->core;
  struct In {
    int color, key;
  } my{color, key};
  std::shared_ptr<CommImpl> result;
  collective_round(
      &my, &result, 0, core.model().barrier_ns(size()),
      [&core](CollCtx& cc, const Group& g) {
        // Gather (color, key, group rank), bucket by color, order each
        // bucket by (key, rank), and build one communicator per color.
        struct Entry {
          int color, key, grank;
        };
        std::vector<Entry> entries;
        entries.reserve(static_cast<std::size_t>(g.size()));
        for (int r = 0; r < g.size(); ++r) {
          const auto* in =
              static_cast<const In*>(cc.inbufs[static_cast<std::size_t>(r)]);
          if (in == nullptr) continue;  // dead member joins no color
          entries.push_back({in->color, in->key, r});
        }
        std::sort(entries.begin(), entries.end(), [](const Entry& a,
                                                     const Entry& b) {
          if (a.color != b.color) return a.color < b.color;
          if (a.key != b.key) return a.key < b.key;
          return a.grank < b.grank;
        });
        std::size_t i = 0;
        while (i < entries.size()) {
          std::size_t j = i;
          while (j < entries.size() && entries[j].color == entries[i].color)
            ++j;
          if (entries[i].color >= 0) {
            std::vector<int> members;
            members.reserve(j - i);
            for (std::size_t k = i; k < j; ++k)
              members.push_back(g.world_rank(entries[k].grank));
            auto impl = make_intracomm(core, core.alloc_comm_id_locked(),
                                       Group(std::move(members)));
            for (std::size_t k = i; k < j; ++k) {
              void* slot =
                  cc.outbufs[static_cast<std::size_t>(entries[k].grank)];
              if (slot == nullptr) continue;
              *static_cast<std::shared_ptr<CommImpl>*>(slot) = impl;
            }
          }
          i = j;
        }
      });
  return Comm(std::move(result));
}

Comm Comm::create(const Group& subgroup) const {
  SimCore& core = *impl_->core;
  std::shared_ptr<CommImpl> result;
  collective_round(
      &subgroup, &result, 0, core.model().barrier_ns(size()),
      [&core, &subgroup](CollCtx& cc, const Group& g) {
        auto impl =
            subgroup.size() > 0
                ? make_intracomm(core, core.alloc_comm_id_locked(), subgroup)
                : nullptr;
        for (int r = 0; r < g.size(); ++r) {
          void* slot = cc.outbufs[static_cast<std::size_t>(r)];
          if (slot != nullptr && impl && subgroup.contains(g.world_rank(r)))
            *static_cast<std::shared_ptr<CommImpl>*>(slot) = impl;
        }
      });
  return Comm(std::move(result));
}

Comm Comm::intercomm_create(int local_leader, int remote_leader_world,
                            int tag) const {
  CommImpl& c = *impl_;
  SimCore& core = *c.core;
  const int my_leader_world = c.group.world_rank(local_leader);
  const bool i_allocate = my_leader_world < remote_leader_world;

  // Leaders exchange (comm id, member list) on the system channel; the
  // lower-world-rank leader allocates the id for both sides.
  std::int64_t agreed_id = 0;
  std::vector<std::int64_t> remote_members;
  if (rank() == local_leader) {
    std::int64_t proposed = 0;
    if (i_allocate) {
      std::unique_lock lk(core.mu());
      proposed = static_cast<std::int64_t>(core.alloc_comm_id_locked());
    }
    std::vector<std::int64_t> msg;
    msg.push_back(proposed);
    for (int wr : c.group.members()) msg.push_back(wr);
    system_send(core, remote_leader_world, tag, encode_ints(msg));
    auto reply = decode_ints(system_recv(core, remote_leader_world, tag));
    agreed_id = i_allocate ? proposed : reply[0];
    remote_members.assign(reply.begin() + 1, reply.end());
  }

  // Leader broadcasts (id, remote member list) within the local group.
  std::int64_t remote_count =
      static_cast<std::int64_t>(remote_members.size());
  bcast(&agreed_id, sizeof agreed_id, local_leader);
  bcast(&remote_count, sizeof remote_count, local_leader);
  remote_members.resize(static_cast<std::size_t>(remote_count));
  bcast(remote_members.data(),
        remote_members.size() * sizeof(std::int64_t), local_leader);

  // Each side shares one impl, published by its leader.
  const std::uint64_t side =
      my_leader_world < remote_leader_world ? 0u : 1u;
  const std::uint64_t key = static_cast<std::uint64_t>(agreed_id) * 2 + side;
  std::shared_ptr<CommImpl> impl;
  if (rank() == local_leader) {
    std::vector<int> rm(remote_members.begin(), remote_members.end());
    impl = make_intracomm(core, static_cast<std::uint64_t>(agreed_id), c.group);
    impl->is_inter = true;
    impl->remote_group = Group(std::move(rm));
    std::unique_lock lk(core.mu());
    core.publish_comm_locked(key, impl);
    core.poke();
  } else {
    impl = core.fetch_published_comm(key);
  }
  barrier();
  return Comm(std::move(impl));
}

Comm Comm::merge(bool high) const {
  CommImpl& c = *impl_;
  if (!c.is_inter) raise(Errc::comm_mismatch, "merge on intracommunicator");
  SimCore& core = *c.core;

  // Use the lowest-ranked member of each side as its leader. Leaders
  // handshake on the system channel; intra-side broadcasts reuse this
  // intercomm's local-group rendezvous context.
  const int local_leader = 0;
  const int my_leader_world = c.group.world_rank(0);
  const int remote_leader_world = c.remote_group.world_rank(0);
  const bool i_allocate = my_leader_world < remote_leader_world;

  std::int64_t merged_id = 0;
  std::int64_t remote_high = 0;
  const int tag = static_cast<int>(c.id % 1000000) + 7;
  if (rank() == local_leader) {
    std::int64_t proposed = 0;
    if (i_allocate) {
      std::unique_lock lk(core.mu());
      proposed = static_cast<std::int64_t>(core.alloc_comm_id_locked());
    }
    std::vector<std::int64_t> msg{proposed, high ? 1 : 0};
    system_send(core, remote_leader_world, tag, encode_ints(msg));
    auto reply = decode_ints(system_recv(core, remote_leader_world, tag));
    merged_id = i_allocate ? proposed : reply[0];
    remote_high = reply[1];
  }
  bcast(&merged_id, sizeof merged_id, local_leader);
  bcast(&remote_high, sizeof remote_high, local_leader);

  // Combined order: the high group second; on a tie, the side with the
  // lower leader world rank first (deterministic stand-in for MPI's
  // implementation-defined ordering).
  const bool my_side_first =
      (high != (remote_high != 0)) ? !high : i_allocate;
  std::vector<int> members;
  members.reserve(c.group.members().size() + c.remote_group.members().size());
  const auto& first = my_side_first ? c.group.members() : c.remote_group.members();
  const auto& second = my_side_first ? c.remote_group.members() : c.group.members();
  members.insert(members.end(), first.begin(), first.end());
  members.insert(members.end(), second.begin(), second.end());

  // The allocating side's leader publishes the single merged impl.
  const std::uint64_t key = static_cast<std::uint64_t>(merged_id) * 2;
  std::shared_ptr<CommImpl> impl;
  if (rank() == local_leader && i_allocate) {
    impl = make_intracomm(core, static_cast<std::uint64_t>(merged_id),
                          Group(std::move(members)));
    std::unique_lock lk(core.mu());
    core.publish_comm_locked(key, impl);
    core.poke();
  } else {
    impl = core.fetch_published_comm(key);
  }
  Comm merged(std::move(impl));
  merged.barrier();
  return merged;
}

// ---------------------------------------------------------------------------
// ULFM-style fault-tolerance primitives
// ---------------------------------------------------------------------------

bool Comm::is_failed(int r) const {
  CommImpl& c = *impl_;
  return c.core->is_failed(c.group.world_rank(r));
}

void Comm::revoke() const {
  CommImpl& c = *impl_;
  SimCore& core = *c.core;
  RankContext& me = ctx();
  Tracer& tr = me.tracer();
  if (tr.enabled()) {
    tr.begin(TraceCat::fault, "fault.revoke", c.id);
    tr.end(TraceCat::fault, "fault.revoke", c.id);
  }
  std::lock_guard lk(core.mu());
  c.revoked = true;
  core.note_time_locked(me.clock().now_ns());
  core.poke();  // blocked receivers must wake and observe the revocation
}

Comm Comm::shrink() const {
  CommImpl& c = *impl_;
  SimCore& core = *c.core;
  RankContext& me = ctx();
  me.fault().fault_point(me.clock());
  Tracer& tr = me.tracer();
  if (tr.enabled()) {
    tr.begin(TraceCat::fault, "fault.shrink", c.id);
    tr.end(TraceCat::fault, "fault.shrink", c.id);
  }

  // Snapshot the survivor set and this round's sequence number under the
  // lock: liveness is global shared state, so every live member calling
  // this collective sees the same set (assuming no new failure mid-shrink;
  // see DESIGN.md for the failure model).
  std::vector<int> live;
  std::uint32_t seq = 0;
  {
    std::lock_guard lk(core.mu());
    for (int wr : c.group.members())
      if (!core.is_dead_locked(wr)) live.push_back(wr);
    // Recovery edge: shrinking acknowledges every observed death, so the
    // survivors acquire the dead ranks' final clocks (post-shrink accesses
    // to data the dead published are ordered, not dead_origin races).
    core.hb().ack_deaths(me.rank());
    const int myrank = c.group.rank_of_world(me.rank());
    if (myrank < 0)
      raise(Errc::rank_out_of_range, "shrink caller not in communicator");
    seq = c.shrink_calls[static_cast<std::size_t>(myrank)]++;
  }
  require_internal(!live.empty(), "shrink with no survivors");

  // The lowest-ranked survivor builds the shrunken shared state; the rest
  // fetch it. No parent-comm collectives are used, so shrink() works on a
  // revoked communicator (as ULFM requires). Key layout: [63:62] publish
  // namespace tag, [61:32] comm id, [31:0] per-comm shrink sequence --
  // explicit widths, checked, so neither field can silently clobber the
  // other and fetch a stale publication.
  require_internal(c.id < (1ull << 30), "comm id overflows shrink key");
  const std::uint64_t key = (3ull << 62) | (c.id << 32) | seq;
  std::shared_ptr<CommImpl> impl;
  if (live.front() == me.rank()) {
    std::unique_lock lk(core.mu());
    impl = make_intracomm(core, core.alloc_comm_id_locked(), Group(live));
    core.publish_comm_locked(key, impl);
    core.poke();
  } else {
    impl = core.fetch_published_comm(key);
  }
  Comm out(std::move(impl));
  out.barrier();  // synchronize the survivors' clocks on the new comm
  return out;
}

bool Comm::agree(bool flag) const {
  // Fault-tolerant AND-agreement: allreduce(min) completes over the live
  // members in survivable mode, so survivors reach the same verdict even
  // when peers died before contributing.
  std::int32_t v = flag ? 1 : 0;
  std::int32_t out = 1;
  allreduce(&v, &out, 1, BasicType::int32, Op::min);
  failure_ack();
  return out != 0;
}

void Comm::failure_ack() const {
  SimCore& core = *impl_->core;
  RankContext& me = ctx();
  std::lock_guard lk(core.mu());
  me.acked_death_epoch = core.death_epoch_locked();
  core.hb().ack_deaths(me.rank());
}

}  // namespace mpisim
