#include "src/mpisim/comm.hpp"

#include <algorithm>
#include <cstring>

#include "src/mpisim/error.hpp"
#include "src/mpisim/runtime.hpp"

namespace mpisim {

namespace {

/// Communicator id reserved for runtime-internal rendezvous (leader
/// handshakes of intercomm_create/merge); never handed to user code.
constexpr std::uint64_t kSystemChannel = 0;

/// Serialize a rank list (+ trailing extras) into a byte payload.
std::vector<std::uint8_t> encode_ints(std::span<const std::int64_t> vals) {
  std::vector<std::uint8_t> out(vals.size() * sizeof(std::int64_t));
  std::memcpy(out.data(), vals.data(), out.size());
  return out;
}

std::vector<std::int64_t> decode_ints(std::span<const std::uint8_t> bytes) {
  std::vector<std::int64_t> out(bytes.size() / sizeof(std::int64_t));
  std::memcpy(out.data(), bytes.data(), bytes.size());
  return out;
}

/// Leader-to-leader message on the system channel, addressed by world rank.
void system_send(SimCore& core, int dest_world, int tag,
                 std::vector<std::uint8_t> payload) {
  RankContext& me = ctx();
  me.fault().fault_point(me.clock());
  Message m;
  m.comm_id = kSystemChannel;
  m.src_comm_rank = me.rank();  // world rank on the system channel
  m.tag = tag;
  m.payload = std::move(payload);
  m.send_ts_ns = me.clock().now_ns() + me.fault().draw_delivery_delay_ns();
  me.clock().advance(core.model().p2p_ns(0));
  std::unique_lock lk(core.mu());
  core.note_time_locked(me.clock().now_ns());
  core.mailbox(dest_world).push(std::move(m));
  core.poke();
}

std::vector<std::uint8_t> system_recv(SimCore& core, int src_world, int tag) {
  RankContext& me = ctx();
  me.fault().fault_point(me.clock());
  std::unique_lock lk(core.mu());
  Mailbox& mb = core.mailbox(me.rank());
  core.wait(lk, [&] { return mb.has_match(kSystemChannel, src_world, tag); },
            "comm.system_recv");
  Message m = mb.pop_match(kSystemChannel, src_world, tag);
  me.clock().advance_to(m.send_ts_ns +
                        core.model().p2p_ns(m.payload.size()));
  return std::move(m.payload);
}

}  // namespace

Comm::Comm(std::shared_ptr<CommImpl> impl) : impl_(std::move(impl)) {}

int Comm::rank() const {
  const int r = impl_->group.rank_of_world(ctx().rank());
  if (r < 0) raise(Errc::rank_out_of_range, "caller not in communicator");
  return r;
}

int Comm::size() const noexcept { return impl_->group.size(); }

bool Comm::is_inter() const noexcept { return impl_->is_inter; }

int Comm::remote_size() const {
  if (!impl_->is_inter) raise(Errc::comm_mismatch, "remote_size on intracomm");
  return impl_->remote_group.size();
}

const Group& Comm::group() const noexcept { return impl_->group; }

const Group& Comm::remote_group() const {
  if (!impl_->is_inter) raise(Errc::comm_mismatch, "remote_group on intracomm");
  return impl_->remote_group;
}

int Comm::world_rank(int r) const { return impl_->group.world_rank(r); }

std::uint64_t Comm::id() const noexcept { return impl_->id; }

// ---------------------------------------------------------------------------
// Two-sided messaging
// ---------------------------------------------------------------------------

void Comm::send(const void* buf, std::size_t bytes, int dest, int tag) const {
  CommImpl& c = *impl_;
  SimCore& core = *c.core;
  const Group& dest_group = c.is_inter ? c.remote_group : c.group;
  const int dest_world = dest_group.world_rank(dest);

  Message m;
  m.comm_id = c.id;
  m.src_comm_rank = rank();
  m.tag = tag;
  m.payload.assign(static_cast<const std::uint8_t*>(buf),
                   static_cast<const std::uint8_t*>(buf) + bytes);
  RankContext& me = ctx();
  me.fault().fault_point(me.clock());
  m.send_ts_ns = me.clock().now_ns() + me.fault().draw_delivery_delay_ns();
  // Eager protocol: the sender pays injection overhead only.
  me.clock().advance(core.model().p2p_ns(0));

  std::unique_lock lk(core.mu());
  core.note_time_locked(me.clock().now_ns());
  core.mailbox(dest_world).push(std::move(m));
  core.poke();
}

Status Comm::recv(void* buf, std::size_t capacity, int src, int tag) const {
  CommImpl& c = *impl_;
  SimCore& core = *c.core;
  RankContext& me = ctx();
  me.fault().fault_point(me.clock());

  std::unique_lock lk(core.mu());
  Mailbox& mb = core.mailbox(me.rank());
  core.wait(lk, [&] { return mb.has_match(c.id, src, tag); }, "comm.recv");
  Message m = mb.pop_match(c.id, src, tag);
  lk.unlock();

  if (m.payload.size() > capacity)
    raise(Errc::truncation, "message of " + std::to_string(m.payload.size()) +
                                " bytes into " + std::to_string(capacity) +
                                "-byte buffer");
  std::memcpy(buf, m.payload.data(), m.payload.size());
  me.clock().advance_to(m.send_ts_ns + core.model().p2p_ns(m.payload.size()));

  Status st;
  st.source = m.src_comm_rank;
  st.tag = m.tag;
  st.bytes = m.payload.size();
  return st;
}

bool Comm::iprobe(int src, int tag, Status* st) const {
  CommImpl& c = *impl_;
  SimCore& core = *c.core;
  RankContext& me = ctx();
  std::unique_lock lk(core.mu());
  Mailbox& mb = core.mailbox(me.rank());
  if (!mb.has_match(c.id, src, tag)) return false;
  if (st != nullptr) {
    // Peek by popping and re-inserting would break FIFO; match manually.
    Message m = mb.pop_match(c.id, src, tag);
    st->source = m.src_comm_rank;
    st->tag = m.tag;
    st->bytes = m.payload.size();
    mb.push(std::move(m));  // NOTE: reordered to the back; acceptable for
                            // probe-then-recv-with-explicit-source patterns.
  }
  return true;
}

// ---------------------------------------------------------------------------
// Nonblocking point-to-point
// ---------------------------------------------------------------------------

Comm::Request Comm::isend(const void* buf, std::size_t bytes, int dest,
                          int tag) const {
  // Eager protocol: identical to send(); the handle exists for symmetry.
  send(buf, bytes, dest, tag);
  return Request();
}

Comm::Request Comm::irecv(void* buf, std::size_t capacity, int src,
                          int tag) const {
  Request r;
  r.impl_ = impl_;
  r.buf = buf;
  r.capacity = capacity;
  r.src = src;
  r.tag = tag;
  r.is_recv = true;
  r.done = false;
  return r;
}

void Comm::Request::wait(Status* st) {
  if (!done) {
    status = Comm(impl_).recv(buf, capacity, src, tag);
    done = true;
  }
  if (st != nullptr) *st = status;
}

bool Comm::Request::test(Status* st) {
  if (!done) {
    Comm c(impl_);
    if (!c.iprobe(src, tag)) return false;
    status = c.recv(buf, capacity, src, tag);
    done = true;
  }
  if (st != nullptr) *st = status;
  return true;
}

void Comm::wait_all(std::span<Request> reqs) {
  for (Request& r : reqs) r.wait();
}

// ---------------------------------------------------------------------------
// Collectives
// ---------------------------------------------------------------------------

void Comm::collective_round(
    const void* in, void* out, std::size_t count, double cost_ns,
    const std::function<void(CollCtx&, const Group&)>& leader_fn) const {
  // On intercommunicators this rendezvous runs over the *local* group
  // (coll buffers are sized for it), which is exactly what merge() needs.
  CommImpl& c = *impl_;
  SimCore& core = *c.core;
  RankContext& me = ctx();
  me.fault().fault_point(me.clock());
  const int n = c.group.size();
  const int myrank = rank();

  std::unique_lock lk(core.mu());
  CollCtx& cc = c.coll;
  const std::uint64_t my_gen = cc.gen;
  cc.inbufs[static_cast<std::size_t>(myrank)] = in;
  cc.outbufs[static_cast<std::size_t>(myrank)] = out;
  cc.incounts[static_cast<std::size_t>(myrank)] = count;
  cc.max_clock_ns = std::max(cc.max_clock_ns, me.clock().now_ns());
  core.note_time_locked(me.clock().now_ns());

  if (++cc.arrived == n) {
    if (leader_fn) leader_fn(cc, c.group);
    cc.result_clock_ns = cc.max_clock_ns + cost_ns;
    cc.arrived = 0;
    cc.max_clock_ns = 0.0;
    ++cc.gen;
    core.poke();
  } else {
    core.wait(lk, [&] { return cc.gen != my_gen; }, "comm.collective");
  }
  me.clock().advance_to(cc.result_clock_ns);
}

void Comm::barrier() const {
  collective_round(nullptr, nullptr, 0,
                   ctx().core().model().barrier_ns(size()), nullptr);
}

void Comm::bcast(void* buf, std::size_t bytes, int root) const {
  const double cost = ctx().core().model().tree_collective_ns(bytes, size());
  collective_round(buf, buf, bytes, cost,
                   [root, bytes](CollCtx& cc, const Group& g) {
                     const void* src = cc.outbufs[static_cast<std::size_t>(root)];
                     for (int r = 0; r < g.size(); ++r) {
                       if (r == root) continue;
                       std::memcpy(cc.outbufs[static_cast<std::size_t>(r)], src,
                                   bytes);
                     }
                   });
}

void Comm::reduce(const void* in, void* out, std::size_t count, BasicType t,
                  Op op, int root) const {
  const std::size_t bytes = count * basic_type_size(t);
  const double cost = ctx().core().model().tree_collective_ns(bytes, size());
  collective_round(
      in, out, count, cost, [=](CollCtx& cc, const Group& g) {
        auto* dst = static_cast<std::uint8_t*>(
            cc.outbufs[static_cast<std::size_t>(root)]);
        std::memcpy(dst, cc.inbufs[0], bytes);
        for (int r = 1; r < g.size(); ++r)
          apply_op(op, t, dst, cc.inbufs[static_cast<std::size_t>(r)], count);
      });
}

void Comm::allreduce(const void* in, void* out, std::size_t count, BasicType t,
                     Op op) const {
  const std::size_t bytes = count * basic_type_size(t);
  const double cost =
      2.0 * ctx().core().model().tree_collective_ns(bytes, size());
  collective_round(
      in, out, count, cost, [=](CollCtx& cc, const Group& g) {
        std::vector<std::uint8_t> acc(bytes);
        std::memcpy(acc.data(), cc.inbufs[0], bytes);
        for (int r = 1; r < g.size(); ++r)
          apply_op(op, t, acc.data(), cc.inbufs[static_cast<std::size_t>(r)],
                   count);
        for (int r = 0; r < g.size(); ++r)
          std::memcpy(cc.outbufs[static_cast<std::size_t>(r)], acc.data(),
                      bytes);
      });
}

void Comm::allgather(const void* in, void* out, std::size_t bytes) const {
  const double cost = ctx().core().model().tree_collective_ns(
      bytes * static_cast<std::size_t>(size()), size());
  collective_round(
      in, out, bytes, cost, [bytes](CollCtx& cc, const Group& g) {
        for (int r = 0; r < g.size(); ++r) {
          for (int w = 0; w < g.size(); ++w) {
            auto* dst = static_cast<std::uint8_t*>(
                            cc.outbufs[static_cast<std::size_t>(w)]) +
                        static_cast<std::size_t>(r) * bytes;
            std::memcpy(dst, cc.inbufs[static_cast<std::size_t>(r)], bytes);
          }
        }
      });
}

void Comm::allgatherv(const void* in, std::size_t my_bytes, void* out,
                      std::span<const std::size_t> counts) const {
  if (static_cast<int>(counts.size()) != size())
    raise(Errc::invalid_argument, "allgatherv counts size mismatch");
  std::size_t total = 0;
  for (std::size_t c : counts) total += c;
  const double cost = ctx().core().model().tree_collective_ns(total, size());
  std::vector<std::size_t> offsets(counts.size());
  std::size_t pos = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    offsets[i] = pos;
    pos += counts[i];
  }
  collective_round(
      in, out, my_bytes, cost, [&](CollCtx& cc, const Group& g) {
        for (int r = 0; r < g.size(); ++r) {
          require_internal(cc.incounts[static_cast<std::size_t>(r)] ==
                               counts[static_cast<std::size_t>(r)],
                           "allgatherv inconsistent counts");
          for (int w = 0; w < g.size(); ++w) {
            auto* dst = static_cast<std::uint8_t*>(
                            cc.outbufs[static_cast<std::size_t>(w)]) +
                        offsets[static_cast<std::size_t>(r)];
            std::memcpy(dst, cc.inbufs[static_cast<std::size_t>(r)],
                        counts[static_cast<std::size_t>(r)]);
          }
        }
      });
}

void Comm::alltoall(const void* in, void* out, std::size_t bytes) const {
  const double cost = ctx().core().model().alltoall_ns(bytes, size());
  collective_round(
      in, out, bytes, cost, [bytes](CollCtx& cc, const Group& g) {
        for (int r = 0; r < g.size(); ++r) {
          const auto* src =
              static_cast<const std::uint8_t*>(cc.inbufs[static_cast<std::size_t>(r)]);
          for (int w = 0; w < g.size(); ++w) {
            auto* dst = static_cast<std::uint8_t*>(
                            cc.outbufs[static_cast<std::size_t>(w)]) +
                        static_cast<std::size_t>(r) * bytes;
            std::memcpy(dst, src + static_cast<std::size_t>(w) * bytes, bytes);
          }
        }
      });
}

void Comm::scan(const void* in, void* out, std::size_t count, BasicType t,
                Op op) const {
  const std::size_t bytes = count * basic_type_size(t);
  const double cost = ctx().core().model().tree_collective_ns(bytes, size());
  collective_round(
      in, out, count, cost, [=](CollCtx& cc, const Group& g) {
        std::vector<std::uint8_t> acc(bytes);
        for (int r = 0; r < g.size(); ++r) {
          if (r == 0)
            std::memcpy(acc.data(), cc.inbufs[0], bytes);
          else
            apply_op(op, t, acc.data(), cc.inbufs[static_cast<std::size_t>(r)],
                     count);
          std::memcpy(cc.outbufs[static_cast<std::size_t>(r)], acc.data(),
                      bytes);
        }
      });
}

// ---------------------------------------------------------------------------
// Communicator construction
// ---------------------------------------------------------------------------

namespace {

std::shared_ptr<CommImpl> make_intracomm(SimCore& core, std::uint64_t id,
                                         Group group) {
  auto impl = std::make_shared<CommImpl>();
  impl->id = id;
  impl->core = &core;
  impl->group = std::move(group);
  const auto n = static_cast<std::size_t>(impl->group.size());
  impl->coll.inbufs.resize(n);
  impl->coll.outbufs.resize(n);
  impl->coll.incounts.resize(n);
  return impl;
}

}  // namespace

Comm Comm::self() {
  RankContext& me = ctx();
  SimCore& core = me.core();
  std::uint64_t id;
  {
    std::lock_guard lk(core.mu());
    id = core.alloc_comm_id_locked();
  }
  return Comm(make_intracomm(core, id, Group({me.rank()})));
}

Comm Comm::dup() const {
  SimCore& core = *impl_->core;
  std::shared_ptr<CommImpl> result;
  collective_round(nullptr, &result, 0, core.model().barrier_ns(size()),
                   [&core](CollCtx& cc, const Group& g) {
                     auto impl = make_intracomm(
                         core, core.alloc_comm_id_locked(), g);
                     for (int r = 0; r < g.size(); ++r)
                       *static_cast<std::shared_ptr<CommImpl>*>(
                           cc.outbufs[static_cast<std::size_t>(r)]) = impl;
                   });
  return Comm(std::move(result));
}

Comm Comm::split(int color, int key) const {
  SimCore& core = *impl_->core;
  struct In {
    int color, key;
  } my{color, key};
  std::shared_ptr<CommImpl> result;
  collective_round(
      &my, &result, 0, core.model().barrier_ns(size()),
      [&core](CollCtx& cc, const Group& g) {
        // Gather (color, key, group rank), bucket by color, order each
        // bucket by (key, rank), and build one communicator per color.
        struct Entry {
          int color, key, grank;
        };
        std::vector<Entry> entries;
        entries.reserve(static_cast<std::size_t>(g.size()));
        for (int r = 0; r < g.size(); ++r) {
          const auto* in =
              static_cast<const In*>(cc.inbufs[static_cast<std::size_t>(r)]);
          entries.push_back({in->color, in->key, r});
        }
        std::sort(entries.begin(), entries.end(), [](const Entry& a,
                                                     const Entry& b) {
          if (a.color != b.color) return a.color < b.color;
          if (a.key != b.key) return a.key < b.key;
          return a.grank < b.grank;
        });
        std::size_t i = 0;
        while (i < entries.size()) {
          std::size_t j = i;
          while (j < entries.size() && entries[j].color == entries[i].color)
            ++j;
          if (entries[i].color >= 0) {
            std::vector<int> members;
            members.reserve(j - i);
            for (std::size_t k = i; k < j; ++k)
              members.push_back(g.world_rank(entries[k].grank));
            auto impl = make_intracomm(core, core.alloc_comm_id_locked(),
                                       Group(std::move(members)));
            for (std::size_t k = i; k < j; ++k)
              *static_cast<std::shared_ptr<CommImpl>*>(
                  cc.outbufs[static_cast<std::size_t>(entries[k].grank)]) =
                  impl;
          }
          i = j;
        }
      });
  return Comm(std::move(result));
}

Comm Comm::create(const Group& subgroup) const {
  SimCore& core = *impl_->core;
  std::shared_ptr<CommImpl> result;
  collective_round(
      &subgroup, &result, 0, core.model().barrier_ns(size()),
      [&core, &subgroup](CollCtx& cc, const Group& g) {
        auto impl =
            subgroup.size() > 0
                ? make_intracomm(core, core.alloc_comm_id_locked(), subgroup)
                : nullptr;
        for (int r = 0; r < g.size(); ++r) {
          if (impl && subgroup.contains(g.world_rank(r)))
            *static_cast<std::shared_ptr<CommImpl>*>(
                cc.outbufs[static_cast<std::size_t>(r)]) = impl;
        }
      });
  return Comm(std::move(result));
}

Comm Comm::intercomm_create(int local_leader, int remote_leader_world,
                            int tag) const {
  CommImpl& c = *impl_;
  SimCore& core = *c.core;
  const int my_leader_world = c.group.world_rank(local_leader);
  const bool i_allocate = my_leader_world < remote_leader_world;

  // Leaders exchange (comm id, member list) on the system channel; the
  // lower-world-rank leader allocates the id for both sides.
  std::int64_t agreed_id = 0;
  std::vector<std::int64_t> remote_members;
  if (rank() == local_leader) {
    std::int64_t proposed = 0;
    if (i_allocate) {
      std::unique_lock lk(core.mu());
      proposed = static_cast<std::int64_t>(core.alloc_comm_id_locked());
    }
    std::vector<std::int64_t> msg;
    msg.push_back(proposed);
    for (int wr : c.group.members()) msg.push_back(wr);
    system_send(core, remote_leader_world, tag, encode_ints(msg));
    auto reply = decode_ints(system_recv(core, remote_leader_world, tag));
    agreed_id = i_allocate ? proposed : reply[0];
    remote_members.assign(reply.begin() + 1, reply.end());
  }

  // Leader broadcasts (id, remote member list) within the local group.
  std::int64_t remote_count =
      static_cast<std::int64_t>(remote_members.size());
  bcast(&agreed_id, sizeof agreed_id, local_leader);
  bcast(&remote_count, sizeof remote_count, local_leader);
  remote_members.resize(static_cast<std::size_t>(remote_count));
  bcast(remote_members.data(),
        remote_members.size() * sizeof(std::int64_t), local_leader);

  // Each side shares one impl, published by its leader.
  const std::uint64_t side =
      my_leader_world < remote_leader_world ? 0u : 1u;
  const std::uint64_t key = static_cast<std::uint64_t>(agreed_id) * 2 + side;
  std::shared_ptr<CommImpl> impl;
  if (rank() == local_leader) {
    std::vector<int> rm(remote_members.begin(), remote_members.end());
    impl = make_intracomm(core, static_cast<std::uint64_t>(agreed_id), c.group);
    impl->is_inter = true;
    impl->remote_group = Group(std::move(rm));
    std::unique_lock lk(core.mu());
    core.publish_comm_locked(key, impl);
    core.poke();
  } else {
    impl = core.fetch_published_comm(key);
  }
  barrier();
  return Comm(std::move(impl));
}

Comm Comm::merge(bool high) const {
  CommImpl& c = *impl_;
  if (!c.is_inter) raise(Errc::comm_mismatch, "merge on intracommunicator");
  SimCore& core = *c.core;

  // Use the lowest-ranked member of each side as its leader. Leaders
  // handshake on the system channel; intra-side broadcasts reuse this
  // intercomm's local-group rendezvous context.
  const int local_leader = 0;
  const int my_leader_world = c.group.world_rank(0);
  const int remote_leader_world = c.remote_group.world_rank(0);
  const bool i_allocate = my_leader_world < remote_leader_world;

  std::int64_t merged_id = 0;
  std::int64_t remote_high = 0;
  const int tag = static_cast<int>(c.id % 1000000) + 7;
  if (rank() == local_leader) {
    std::int64_t proposed = 0;
    if (i_allocate) {
      std::unique_lock lk(core.mu());
      proposed = static_cast<std::int64_t>(core.alloc_comm_id_locked());
    }
    std::vector<std::int64_t> msg{proposed, high ? 1 : 0};
    system_send(core, remote_leader_world, tag, encode_ints(msg));
    auto reply = decode_ints(system_recv(core, remote_leader_world, tag));
    merged_id = i_allocate ? proposed : reply[0];
    remote_high = reply[1];
  }
  bcast(&merged_id, sizeof merged_id, local_leader);
  bcast(&remote_high, sizeof remote_high, local_leader);

  // Combined order: the high group second; on a tie, the side with the
  // lower leader world rank first (deterministic stand-in for MPI's
  // implementation-defined ordering).
  const bool my_side_first =
      (high != (remote_high != 0)) ? !high : i_allocate;
  std::vector<int> members;
  members.reserve(c.group.members().size() + c.remote_group.members().size());
  const auto& first = my_side_first ? c.group.members() : c.remote_group.members();
  const auto& second = my_side_first ? c.remote_group.members() : c.group.members();
  members.insert(members.end(), first.begin(), first.end());
  members.insert(members.end(), second.begin(), second.end());

  // The allocating side's leader publishes the single merged impl.
  const std::uint64_t key = static_cast<std::uint64_t>(merged_id) * 2;
  std::shared_ptr<CommImpl> impl;
  if (rank() == local_leader && i_allocate) {
    impl = make_intracomm(core, static_cast<std::uint64_t>(merged_id),
                          Group(std::move(members)));
    std::unique_lock lk(core.mu());
    core.publish_comm_locked(key, impl);
    core.poke();
  } else {
    impl = core.fetch_published_comm(key);
  }
  Comm merged(std::move(impl));
  merged.barrier();
  return merged;
}

}  // namespace mpisim
