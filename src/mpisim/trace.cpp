#include "src/mpisim/trace.hpp"

#include <cstdio>

namespace mpisim {

const char* trace_cat_name(TraceCat cat) noexcept {
  switch (cat) {
    case TraceCat::api: return "api";
    case TraceCat::backend: return "backend";
    case TraceCat::window: return "window";
    case TraceCat::mutex: return "mutex";
    case TraceCat::fault: return "fault";
    case TraceCat::race: return "race";
    case TraceCat::progress: return "progress";
  }
  return "?";
}

void Tracer::enable(std::size_t capacity) {
  if (capacity == 0) capacity = 1;
  enabled_ = true;
  capacity_ = capacity;
  ring_.clear();
  ring_.reserve(capacity);
  total_ = 0;
  win_stats_.clear();
}

void Tracer::disable() {
  enabled_ = false;
  ring_.clear();
  ring_.shrink_to_fit();
  capacity_ = 0;
  total_ = 0;
  win_stats_.clear();
  open_.clear();
}

void Tracer::clear() {
  ring_.clear();
  total_ = 0;
  win_stats_.clear();
}

void Tracer::push(TraceCat cat, const char* name, char phase,
                  std::uint64_t arg) {
  if (phase == 'B') {
    open_.push_back(name);
  } else if (!open_.empty()) {
    open_.pop_back();
  }
  TraceEvent ev{name, cat, phase, clock_->now_ns(), arg};
  if (ring_.size() < capacity_) {
    ring_.push_back(ev);
  } else {
    ring_[total_ % capacity_] = ev;
  }
  ++total_;
}

std::vector<TraceEvent> Tracer::events() const {
  if (total_ <= ring_.size()) return ring_;
  // Ring wrapped: oldest surviving event sits at the next write slot.
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  const std::size_t start = total_ % capacity_;
  for (std::size_t i = 0; i < ring_.size(); ++i)
    out.push_back(ring_[(start + i) % capacity_]);
  return out;
}

std::string chrome_trace_json(const std::vector<RankTrace>& ranks) {
  std::string out;
  out += "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  char buf[256];
  for (const RankTrace& rt : ranks) {
    for (const TraceEvent& ev : rt.events) {
      // Chrome's "ts" field is in microseconds; virtual ns divide exactly.
      std::snprintf(buf, sizeof buf,
                    "%s{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%c\","
                    "\"ts\":%.6f,\"pid\":0,\"tid\":%d,"
                    "\"args\":{\"arg\":%llu}}",
                    first ? "" : ",", ev.name != nullptr ? ev.name : "?",
                    trace_cat_name(ev.cat), ev.phase, ev.ts_ns * 1e-3,
                    rt.rank, static_cast<unsigned long long>(ev.arg));
      out += buf;
      first = false;
    }
  }
  out += "]}";
  return out;
}

}  // namespace mpisim
