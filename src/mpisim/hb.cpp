#include "src/mpisim/hb.hpp"

#include <algorithm>
#include <climits>

#include "src/mpisim/error.hpp"
#include "src/mpisim/runtime.hpp"
#include "src/mpisim/trace.hpp"

namespace mpisim {

namespace {

/// List lengths at which the shadow store starts compacting itself.
constexpr std::size_t kPruneThreshold = 8;
constexpr std::size_t kMergeThreshold = 16;

std::string byte_range(std::uintptr_t lo, std::uintptr_t hi) {
  // Inclusive storage back to the half-open form diagnostics use.
  return "bytes [" + std::to_string(lo) + ", " + std::to_string(hi + 1) + ")";
}

std::string space_name(std::uint64_t space) {
  if ((space & HbChecker::kNativeSpace) != 0)
    return "gmr " + std::to_string(space & ~HbChecker::kNativeSpace);
  return "win " + std::to_string(space);
}

std::string scope_suffix(const char* scope) {
  return scope != nullptr ? std::string(", in ") + scope : std::string();
}

bool is_acc_class(HbChecker::OpKind k) noexcept {
  return k == HbChecker::OpKind::acc || k == HbChecker::OpKind::get_acc;
}

/// Pairwise MPI conflict rule (mirrors RmaChecker::conflict_with): only
/// read/read and same-operator accumulate/accumulate overlap is blessed;
/// get_accumulate's no_op mixes with any operator.
bool ops_conflict(HbChecker::OpKind k1, Op o1, HbChecker::OpKind k2, Op o2) {
  using OpKind = HbChecker::OpKind;
  if (k1 == OpKind::get && k2 == OpKind::get) return false;
  if (is_acc_class(k1) && is_acc_class(k2)) {
    if (o1 == o2) return false;
    if ((k1 == OpKind::get_acc || k2 == OpKind::get_acc) &&
        (o1 == Op::no_op || o2 == Op::no_op))
      return false;
    return true;
  }
  return true;
}

}  // namespace

thread_local int HbChecker::muted_ = 0;

const char* hb_race_name(HbRace c) noexcept {
  switch (c) {
    case HbRace::ww: return "ww";
    case HbRace::rw: return "rw";
    case HbRace::acc_mix: return "acc_mix";
    case HbRace::shm: return "shm";
    case HbRace::dead_origin: return "dead_origin";
  }
  return "?";
}

std::size_t HbChecker::Summary::interval_count() const noexcept {
  std::size_t n = reads.size() + writes.size();
  for (const auto& [o, tree] : accs) {
    (void)o;
    n += tree.size();
  }
  return n;
}

HbChecker::HbChecker(bool enabled, int nranks, std::size_t max_intervals)
    // Rows nranks..2*nranks-1 are the per-rank progress personas (see the
    // persona() section in hb.hpp); clock components span both halves.
    : enabled_(enabled),
      nranks_(nranks),
      max_intervals_(max_intervals),
      clocks_(static_cast<std::size_t>(2 * nranks),
              HbClock(static_cast<std::size_t>(2 * nranks), 0)),
      dead_(static_cast<std::size_t>(2 * nranks), 0),
      per_rank_(static_cast<std::size_t>(2 * nranks)) {}

void HbChecker::tick(int world_rank) {
  auto& row = clocks_[static_cast<std::size_t>(world_rank)];
  ++row[static_cast<std::size_t>(world_rank)];
}

void HbChecker::join(HbClock& into, const HbClock& from) const {
  if (from.empty()) return;
  if (into.size() < from.size()) into.resize(from.size(), 0);
  for (std::size_t i = 0; i < from.size(); ++i)
    into[i] = std::max(into[i], from[i]);
}

bool HbChecker::ordered(const HbClock& vc, int world_rank) const {
  const HbClock& mine = clocks_[static_cast<std::size_t>(world_rank)];
  for (std::size_t i = 0; i < vc.size(); ++i)
    if (vc[i] > mine[i]) return false;
  return true;
}

// ---------------------------------------------------------------------------
// Synchronization edges
// ---------------------------------------------------------------------------

HbClock HbChecker::send_snapshot(int world_src) {
  if (!enabled_) return {};
  tick(world_src);
  return clocks_[static_cast<std::size_t>(world_src)];
}

void HbChecker::recv_join(int world_dst, const HbClock& vc) {
  if (!enabled_ || vc.empty()) return;
  join(clocks_[static_cast<std::size_t>(world_dst)], vc);
}

void HbChecker::coll_arrive(HbClock& acc, int world_rank) {
  if (!enabled_) return;
  tick(world_rank);
  join(acc, clocks_[static_cast<std::size_t>(world_rank)]);
}

void HbChecker::coll_depart(int world_rank, const HbClock& acc) {
  if (!enabled_) return;
  join(clocks_[static_cast<std::size_t>(world_rank)], acc);
}

void HbChecker::channel_release(std::uint64_t key, int world_src) {
  if (!enabled_) return;
  tick(world_src);
  join(channels_[key], clocks_[static_cast<std::size_t>(world_src)]);
}

void HbChecker::channel_acquire(std::uint64_t key, int world_dst) {
  if (!enabled_) return;
  auto it = channels_.find(key);
  if (it == channels_.end()) return;
  join(clocks_[static_cast<std::size_t>(world_dst)], it->second);
}

void HbChecker::note_death(int world_rank) {
  if (!enabled_) return;
  if (world_rank >= 0 && world_rank < nranks_) {
    dead_[static_cast<std::size_t>(world_rank)] = 1;
    // The rank's progress persona dies with it.
    dead_[static_cast<std::size_t>(persona(world_rank))] = 1;
  }
}

void HbChecker::ack_deaths(int world_observer) {
  if (!enabled_) return;
  auto& mine = clocks_[static_cast<std::size_t>(world_observer)];
  for (int r = 0; r < 2 * nranks_; ++r)
    if (dead_[static_cast<std::size_t>(r)] != 0)
      join(mine, clocks_[static_cast<std::size_t>(r)]);
}

void HbChecker::persona_sync(int owner) {
  if (!enabled_) return;
  join(clocks_[static_cast<std::size_t>(persona(owner))],
       clocks_[static_cast<std::size_t>(owner)]);
}

void HbChecker::persona_retire(int owner) {
  if (!enabled_) return;
  join(clocks_[static_cast<std::size_t>(owner)],
       clocks_[static_cast<std::size_t>(persona(owner))]);
}

void HbChecker::record_local_pending(std::uint64_t space, int target,
                                     int origin, int world_origin, OpKind kind,
                                     Op op, std::ptrdiff_t lo,
                                     std::ptrdiff_t hi, const char* scope) {
  if (!enabled_ || muted_ != 0 || lo >= hi) return;
  Pending a;
  a.origin = origin;
  a.world_origin = world_origin;
  a.kind = kind;
  a.op = op;
  a.direct = false;
  a.lo = static_cast<std::uintptr_t>(lo);
  a.hi = static_cast<std::uintptr_t>(hi) - 1;
  a.scope = scope;
  // Deliberately no check(): the contract record itself races with
  // nothing at recording time (it mirrors an operation the application
  // just legally issued); conflicts fire when a later access checks
  // against it.
  spaces_[{space, target}].pending.push_back(a);
  ++intervals_;
}

// ---------------------------------------------------------------------------
// Epoch lifecycle
// ---------------------------------------------------------------------------

void HbChecker::lock_granted(std::uint64_t win, int target, int world_origin,
                             bool exclusive) {
  if (!enabled_) return;
  Slot& slot = spaces_[{win, target}].slot;
  auto& mine = clocks_[static_cast<std::size_t>(world_origin)];
  // Every grant waited for the last exclusive holder; an exclusive grant
  // waited for every shared holder too.
  join(mine, slot.excl);
  if (exclusive) join(mine, slot.shared_join);
}

void HbChecker::lock_released(std::uint64_t win, int target, int world_origin,
                              bool exclusive) {
  if (!enabled_) return;
  auto it = spaces_.find({win, target});
  if (it == spaces_.end()) return;
  TargetRec& t = it->second;
  publish(t, world_origin, exclusive ? "unlock" : "shared unlock");
  tick(world_origin);
  Slot& slot = t.slot;
  const HbClock& mine = clocks_[static_cast<std::size_t>(world_origin)];
  if (exclusive) {
    slot.excl = mine;
    slot.shared_join.clear();
  } else {
    join(slot.shared_join, mine);
  }
}

void HbChecker::epoch_flushed(std::uint64_t win, int target,
                              int world_origin) {
  if (!enabled_) return;
  auto it = spaces_.find({win, target});
  if (it == spaces_.end()) return;
  publish(it->second, world_origin, "flush");
}

void HbChecker::epoch_abandoned(std::uint64_t win, int target,
                                int world_origin) {
  if (!enabled_) return;
  auto it = spaces_.find({win, target});
  if (it == spaces_.end()) return;
  auto& pending = it->second.pending;
  // The dead origin's in-flight accesses never completed; survivors must
  // not be charged with races against them (checker.hpp epoch_abandoned).
  for (auto pit = pending.begin(); pit != pending.end();) {
    if (pit->world_origin == world_origin) {
      --intervals_;
      pit = pending.erase(pit);
    } else {
      ++pit;
    }
  }
}

void HbChecker::window_freed(std::uint64_t win) {
  if (!enabled_) return;
  auto it = spaces_.lower_bound({win, INT_MIN});
  while (it != spaces_.end() && it->first.first == win) {
    intervals_ -= it->second.pending.size();
    for (const Summary& s : it->second.summaries)
      intervals_ -= s.interval_count();
    it = spaces_.erase(it);
  }
}

// ---------------------------------------------------------------------------
// Access recording
// ---------------------------------------------------------------------------

namespace {

std::string kind_desc(HbChecker::OpKind kind, Op op, bool direct) {
  using OpKind = HbChecker::OpKind;
  if (direct) {
    if (kind == OpKind::put) return "direct store to";
    if (kind == OpKind::get) return "direct load of";
    return std::string("cpu-atomic accumulate(") + op_name(op) + ") on";
  }
  switch (kind) {
    case OpKind::put: return "put to";
    case OpKind::get: return "get of";
    case OpKind::acc:
      return std::string("accumulate(") + op_name(op) + ") on";
    case OpKind::get_acc:
      return std::string("get_accumulate(") + op_name(op) + ") on";
  }
  return "access to";
}

}  // namespace

std::string HbChecker::rank_desc(int world) const {
  if (world >= nranks_)
    return "rank " + std::to_string(world - nranks_) + "'s progress persona";
  return "rank " + std::to_string(world);
}

void HbChecker::check(const TargetRec& t, std::uint64_t space, int target,
                      const Pending& a) {
  const std::string what =
      rank_desc(a.world_origin) + "'s " +
      kind_desc(a.kind, a.op, a.direct) + " " + byte_range(a.lo, a.hi) +
      " in rank " + std::to_string(target) + "'s slice of " +
      space_name(space) + scope_suffix(a.scope);

  // (a) In-flight accesses by other origins: no synchronization edge can
  // order an operation that has not been completed yet -- the missing
  // flush/unlock IS the race, regardless of clocks.
  for (const Pending& p : t.pending) {
    if (p.world_origin == a.world_origin) continue;
    if (p.hi < a.lo || a.hi < p.lo) continue;
    if (!ops_conflict(a.kind, a.op, p.kind, p.op)) continue;
    HbRace cls;
    if (dead_[static_cast<std::size_t>(p.world_origin)] != 0)
      cls = HbRace::dead_origin;
    else if (a.direct || p.direct)
      cls = HbRace::shm;
    else if (is_acc_class(a.kind) || is_acc_class(p.kind))
      cls = HbRace::acc_mix;
    else if (a.kind == OpKind::put && p.kind == OpKind::put)
      cls = HbRace::ww;
    else
      cls = HbRace::rw;
    report(cls, a.world_origin,
           what + " races with " + rank_desc(p.world_origin) +
               "'s in-flight " + kind_desc(p.kind, p.op, p.direct) + " " +
               byte_range(p.lo, p.hi) + scope_suffix(p.scope) +
               "; missing edge: the prior operation was never completed by "
               "a flush or unlock that happens-before this access");
  }

  // (b) Published summaries the accessor has not synchronized with.
  for (const Summary& s : t.summaries) {
    if (s.world_origin == a.world_origin) continue;
    if (ordered(s.vc, a.world_origin)) continue;
    std::uintptr_t olo = 0;
    std::uintptr_t ohi = 0;
    const char* prior_kind = nullptr;
    Op prior_op = Op::sum;
    bool prior_write = false;
    bool prior_acc = false;
    if (a.kind != OpKind::get && s.reads.overlapping(a.lo, a.hi, &olo, &ohi)) {
      prior_kind = "get of";
    } else if (s.writes.overlapping(a.lo, a.hi, &olo, &ohi)) {
      prior_kind = "put to";
      prior_write = true;
    } else {
      for (const auto& [o, tree] : s.accs) {
        if (!ops_conflict(a.kind, a.op, OpKind::acc, o)) continue;
        if (tree.overlapping(a.lo, a.hi, &olo, &ohi)) {
          prior_kind = "accumulate on";
          prior_op = o;
          prior_acc = true;
          break;
        }
      }
    }
    if (prior_kind == nullptr) continue;
    const bool prior_dead =
        dead_[static_cast<std::size_t>(s.world_origin)] != 0;
    HbRace cls;
    if (prior_dead)
      cls = HbRace::dead_origin;
    else if (a.direct || s.any_direct)
      cls = HbRace::shm;
    else if (prior_acc || is_acc_class(a.kind))
      cls = HbRace::acc_mix;
    else if (a.kind == OpKind::put && prior_write)
      cls = HbRace::ww;
    else
      cls = HbRace::rw;
    std::string msg =
        what + " races with " + rank_desc(s.world_origin) +
        "'s " + prior_kind + " " + byte_range(olo, ohi) + " (epoch #" +
        std::to_string(s.id) + ", published at " + s.how +
        scope_suffix(s.scope) + ")";
    if (prior_acc) msg += " [op " + std::string(op_name(prior_op)) + "]";
    if (prior_dead)
      msg += "; missing edge: the origin died and no failure_ack/agree/"
             "shrink recovery edge precedes this access";
    else
      msg += "; missing edge: no synchronization (message, collective, lock "
             "handoff, or notify) from that publication to rank " +
             std::to_string(a.world_origin) + " before this access";
    report(cls, a.world_origin, std::move(msg));
  }
}

void HbChecker::record_op(std::uint64_t space, int target, int origin,
                          int world_origin, OpKind kind, Op op,
                          std::ptrdiff_t lo, std::ptrdiff_t hi,
                          const char* scope) {
  if (!enabled_ || muted_ != 0 || lo >= hi) return;
  Pending a;
  a.origin = origin;
  a.world_origin = world_origin;
  a.kind = kind;
  a.op = op;
  a.direct = false;
  a.lo = static_cast<std::uintptr_t>(lo);
  a.hi = static_cast<std::uintptr_t>(hi) - 1;
  a.scope = scope;
  TargetRec& t = spaces_[{space, target}];
  check(t, space, target, a);
  t.pending.push_back(a);
  ++intervals_;
}

void HbChecker::direct_op(std::uint64_t space, int target, int origin,
                          int world_origin, OpKind kind, Op op,
                          std::ptrdiff_t lo, std::ptrdiff_t hi,
                          const char* scope) {
  if (!enabled_ || muted_ != 0 || lo >= hi) return;
  Pending a;
  a.origin = origin;
  a.world_origin = world_origin;
  a.kind = kind;
  a.op = op;
  a.direct = true;
  a.lo = static_cast<std::uintptr_t>(lo);
  a.hi = static_cast<std::uintptr_t>(hi) - 1;
  a.scope = scope;
  TargetRec& t = spaces_[{space, target}];
  check(t, space, target, a);
  // The operation completes atomically under the global lock: publish it
  // immediately with the origin's clock at this instant.
  t.pending.push_back(a);
  ++intervals_;
  publish_one(t, a, "direct access");
}

void HbChecker::access_begin(std::uint64_t space, int target, int origin,
                             int world_origin, bool write, std::ptrdiff_t lo,
                             std::ptrdiff_t hi, const char* scope) {
  if (!enabled_ || muted_ != 0 || lo >= hi) return;
  Pending a;
  a.origin = origin;
  a.world_origin = world_origin;
  a.kind = write ? OpKind::put : OpKind::get;
  a.op = Op::sum;
  a.direct = true;
  a.lo = static_cast<std::uintptr_t>(lo);
  a.hi = static_cast<std::uintptr_t>(hi) - 1;
  a.scope = scope;
  TargetRec& t = spaces_[{space, target}];
  check(t, space, target, a);
  t.pending.push_back(a);
  ++intervals_;
}

void HbChecker::access_end(std::uint64_t space, int target, int world_origin,
                           std::ptrdiff_t lo) {
  if (!enabled_ || muted_ != 0) return;
  auto it = spaces_.find({space, target});
  if (it == spaces_.end()) return;
  TargetRec& t = it->second;
  const auto ulo = static_cast<std::uintptr_t>(lo);
  for (const Pending& p : t.pending) {
    if (p.direct && p.world_origin == world_origin && p.lo == ulo) {
      Pending copy = p;
      publish_one(t, copy, "access-end");
      return;
    }
  }
}

void HbChecker::publish(TargetRec& t, int world_origin, const char* how) {
  bool any = false;
  for (const Pending& p : t.pending)
    if (!p.direct && p.world_origin == world_origin) {
      any = true;
      break;
    }
  if (!any) return;
  tick(world_origin);
  Summary s;
  s.id = next_id_++;
  s.world_origin = world_origin;
  s.how = how;
  s.vc = clocks_[static_cast<std::size_t>(world_origin)];
  for (auto pit = t.pending.begin(); pit != t.pending.end();) {
    if (pit->direct || pit->world_origin != world_origin) {
      ++pit;
      continue;
    }
    s.origin = pit->origin;
    if (pit->scope != nullptr) s.scope = pit->scope;
    switch (pit->kind) {
      case OpKind::get:
        s.reads.insert_coalesce(pit->lo, pit->hi);
        break;
      case OpKind::put:
        s.writes.insert_coalesce(pit->lo, pit->hi);
        break;
      case OpKind::acc:
      case OpKind::get_acc:
        s.accs[pit->op].insert_coalesce(pit->lo, pit->hi);
        break;
    }
    --intervals_;
    pit = t.pending.erase(pit);
  }
  intervals_ += s.interval_count();
  t.summaries.push_back(std::move(s));
  bound_memory(t, world_origin);
}

void HbChecker::publish_one(TargetRec& t, const Pending& a,
                            const char* how) {
  tick(a.world_origin);
  Summary s;
  s.id = next_id_++;
  s.origin = a.origin;
  s.world_origin = a.world_origin;
  s.any_direct = a.direct;
  s.how = how;
  s.scope = a.scope;
  s.vc = clocks_[static_cast<std::size_t>(a.world_origin)];
  switch (a.kind) {
    case OpKind::get:
      s.reads.insert_coalesce(a.lo, a.hi);
      break;
    case OpKind::put:
      s.writes.insert_coalesce(a.lo, a.hi);
      break;
    case OpKind::acc:
    case OpKind::get_acc:
      s.accs[a.op].insert_coalesce(a.lo, a.hi);
      break;
  }
  // Drop the pending entry that produced this summary (if still queued).
  for (auto pit = t.pending.begin(); pit != t.pending.end(); ++pit) {
    if (pit->direct == a.direct && pit->world_origin == a.world_origin &&
        pit->lo == a.lo && pit->hi == a.hi && pit->kind == a.kind) {
      --intervals_;
      t.pending.erase(pit);
      break;
    }
  }
  intervals_ += s.interval_count();
  t.summaries.push_back(std::move(s));
  bound_memory(t, a.world_origin);
}

void HbChecker::bound_memory(TargetRec& t, int world_origin) {
  // Exact pruning: a summary every live peer has already acquired can
  // never race again (any future access is ordered after it).
  if (t.summaries.size() > kPruneThreshold) {
    for (auto it = t.summaries.begin(); it != t.summaries.end();) {
      bool acquired = true;
      for (int r = 0; r < nranks_ && acquired; ++r) {
        if (r == it->world_origin ||
            dead_[static_cast<std::size_t>(r)] != 0)
          continue;
        acquired = ordered(it->vc, r);
      }
      if (acquired) {
        intervals_ -= it->interval_count();
        it = t.summaries.erase(it);
      } else {
        ++it;
      }
    }
  }

  // Under pressure, merge same-origin summaries with component-wise
  // *minimum* clocks. Taking the older clock only widens the set of
  // accessors considered synchronized-after -- false negatives, never
  // false positives -- and keeps serial epoch loops at O(1) summaries.
  if (t.summaries.size() > kMergeThreshold) {
    for (auto it = t.summaries.begin(); it != t.summaries.end(); ++it) {
      auto jt = std::next(it);
      while (jt != t.summaries.end()) {
        if (jt->world_origin != it->world_origin) {
          ++jt;
          continue;
        }
        intervals_ -= it->interval_count() + jt->interval_count();
        for (std::size_t i = 0;
             i < it->vc.size() && i < jt->vc.size(); ++i)
          it->vc[i] = std::min(it->vc[i], jt->vc[i]);
        ConflictTree* into_r = &it->reads;
        ConflictTree* into_w = &it->writes;
        jt->reads.visit([into_r](std::uintptr_t lo, std::uintptr_t hi) {
          into_r->insert_coalesce(lo, hi);
        });
        jt->writes.visit([into_w](std::uintptr_t lo, std::uintptr_t hi) {
          into_w->insert_coalesce(lo, hi);
        });
        for (auto& [o, tree] : jt->accs) {
          ConflictTree* into_a = &it->accs[o];
          tree.visit([into_a](std::uintptr_t lo, std::uintptr_t hi) {
            into_a->insert_coalesce(lo, hi);
          });
        }
        it->any_direct = it->any_direct || jt->any_direct;
        it->how = "merged publications";
        intervals_ += it->interval_count();
        jt = t.summaries.erase(jt);
      }
    }
  }

  // Hard cap: drop the oldest summaries and record the lost coverage.
  if (max_intervals_ == 0) return;
  auto& overflow = per_rank_[static_cast<std::size_t>(world_origin)].overflow;
  while (intervals_ > max_intervals_ && !t.summaries.empty()) {
    intervals_ -= t.summaries.front().interval_count();
    t.summaries.pop_front();
    overflow.fetch_add(1, std::memory_order_relaxed);
  }
  // Other targets may hold the remaining weight; sweep them oldest-first.
  for (auto& [key, other] : spaces_) {
    (void)key;
    while (intervals_ > max_intervals_ && !other.summaries.empty()) {
      intervals_ -= other.summaries.front().interval_count();
      other.summaries.pop_front();
      overflow.fetch_add(1, std::memory_order_relaxed);
    }
    if (intervals_ <= max_intervals_) break;
  }
}

void HbChecker::report(HbRace cls, int world_rank, std::string msg) {
  per_rank_[static_cast<std::size_t>(world_rank)]
      .v[static_cast<int>(cls)]
      .fetch_add(1, std::memory_order_relaxed);
  if (in_simulation()) {
    Tracer& tr = ctx().tracer();
    if (tr.enabled()) {
      tr.begin(TraceCat::race, "race.detect",
               static_cast<std::uint64_t>(cls));
      tr.end(TraceCat::race, "race.detect", static_cast<std::uint64_t>(cls));
    }
  }
  raise(Errc::rma_race,
        std::string("happens-before race [") + hb_race_name(cls) + "]: " +
            msg);
}

HbRaceCounts HbChecker::counts(int world_rank) const noexcept {
  HbRaceCounts out;
  if (world_rank < 0 || world_rank >= nranks_) return out;
  // A rank's progress-persona row folds into the rank's own counters: the
  // persona acts on the rank's behalf, and callers index by world rank.
  for (const int row : {world_rank, nranks_ + world_rank}) {
    const PerRankCounts& c = per_rank_[static_cast<std::size_t>(row)];
    out.ww += c.v[0].load(std::memory_order_relaxed);
    out.rw += c.v[1].load(std::memory_order_relaxed);
    out.acc_mix += c.v[2].load(std::memory_order_relaxed);
    out.shm += c.v[3].load(std::memory_order_relaxed);
    out.dead_origin += c.v[4].load(std::memory_order_relaxed);
    out.overflow += c.overflow.load(std::memory_order_relaxed);
  }
  return out;
}

HbRaceCounts HbChecker::total_counts() const noexcept {
  HbRaceCounts out;
  for (int r = 0; r < nranks_; ++r) {
    const HbRaceCounts c = counts(r);
    out.ww += c.ww;
    out.rw += c.rw;
    out.acc_mix += c.acc_mix;
    out.shm += c.shm;
    out.dead_origin += c.dead_origin;
    out.overflow += c.overflow;
  }
  return out;
}

}  // namespace mpisim
