#ifndef MPISIM_PLATFORM_HPP
#define MPISIM_PLATFORM_HPP

/// \file platform.hpp
/// Platform profiles for the four evaluation machines (paper Table II).
///
/// Each profile parameterizes the virtual-time NetworkModel with the
/// qualitative performance regimes the paper reports: peak link bandwidth,
/// small-message latency, per-epoch and per-operation software overheads of
/// the (moderately tuned) MPI RMA path versus the (aggressively tuned)
/// native ARMCI path, CPU-speed-dependent datatype packing rates, and the
/// InfiniBand memory-registration model behind Figure 5. Absolute numbers
/// are calibrated to the published curves' *shape* (who wins, by what
/// factor, where the crossovers fall), not to the original testbeds.

#include <cstddef>
#include <string>

namespace mpisim {

/// Identifier for a built-in profile.
enum class Platform {
  bluegene_p,  ///< IBM Blue Gene/P "Intrepid" (3D torus, IBM MPI)
  infiniband,  ///< "Fusion" cluster (InfiniBand QDR, MVAPICH2 1.6)
  cray_xt5,    ///< Cray XT5 "Jaguar PF" (SeaStar 2+, Cray MPI)
  cray_xe6,    ///< Cray XE6 "Hopper II" (Gemini, Cray MPI)
  ideal,       ///< zero-cost network: functional testing only
};

/// All model parameters for one machine. Bandwidths are GiB/s of payload,
/// latencies/overheads are microseconds, unless noted otherwise.
struct PlatformProfile {
  // ---- Table II facts (printed by bench_platforms) ----
  std::string name;
  std::string interconnect;
  std::string mpi_version;
  int nodes = 0;
  int sockets_per_node = 0;
  int cores_per_socket = 0;
  double memory_per_node_gb = 0.0;

  // ---- base hardware ----
  double cpu_ghz = 0.0;          ///< drives packing / copy rates
  double net_latency_us = 0.0;   ///< one-way small-message latency
  double net_bw_gbps = 0.0;      ///< peak payload bandwidth, GiB/s
  double copy_gbps = 0.0;        ///< local memcpy bandwidth, GiB/s

  // ---- MPI RMA path (ARMCI-MPI) ----
  double mpi_lock_us = 0.0;        ///< lock request/grant round trip
  double mpi_unlock_us = 0.0;      ///< unlock + remote completion
  double mpi_op_us = 0.0;          ///< per-RMA-op issue overhead
  double mpi_bw_eff = 1.0;         ///< bandwidth efficiency vs peak
  double mpi_bw_eff_large = 1.0;   ///< efficiency beyond mpi_bw_kink_bytes
  std::size_t mpi_bw_kink_bytes = 0;  ///< 0 = no kink (XT5: 32 KiB, halves)
  double mpi_acc_eff = 1.0;        ///< accumulate-path efficiency vs put
  double mpi_dt_seg_us = 0.0;      ///< datatype processing per segment
  double mpi_dt_commit_us = 0.0;   ///< datatype build/commit per operation
  double mpi_epoch_quad_us = 0.0;  ///< per-op queue-scan cost growing with
                                   ///< ops already in the epoch (MVAPICH2
                                   ///< batched-method degradation, Fig. 4b)

  // ---- native ARMCI path (baseline) ----
  double nat_op_us = 0.0;        ///< per-op overhead (no epochs needed)
  double nat_bw_eff = 1.0;       ///< bandwidth efficiency vs peak
  double nat_acc_eff = 1.0;      ///< CHT-served accumulate efficiency
  double nat_seg_us = 0.0;       ///< per-segment cost of native strided path
  double nat_unpinned_eff = 1.0; ///< efficiency when local buffer not pinned
  double nat_congestion_us_per_rank = 0.0;  ///< per-op cost growing with job
                                            ///< size (XE6 dev-release stack)

  // ---- registration model (Figure 5; meaningful on InfiniBand) ----
  bool on_demand_registration = false;  ///< MPI pins pages at first use
  double reg_page_us = 0.0;             ///< per-4KiB-page pin cost
  std::size_t bounce_threshold_bytes = 0;  ///< small msgs copied via
                                           ///< pre-pinned bounce buffers
  // ---- node map / shared-memory path (MPI-3 Win_allocate_shared) ----
  int ranks_per_node = 1;       ///< consecutive ranks the NetworkModel
                                ///< co-locates on one node (1 = every rank
                                ///< is alone on its node; ideal keeps 1 so
                                ///< functional tests see no shm path)
  double shm_bw_gbps = 0.0;     ///< intra-node direct load/store bandwidth
                                ///< (0 = free, like all ideal costs)
  double shm_latency_us = 0.0;  ///< fixed cost of one intra-node access
  // ---- compute model (Figure 6) ----
  double dgemm_gflops = 0.0;  ///< per-core DGEMM rate for the NWChem proxy
};

/// Built-in profile for \p p.
const PlatformProfile& platform_profile(Platform p);

/// Short machine-readable id ("bgp", "ib", "xt5", "xe6", "ideal").
const char* platform_id(Platform p) noexcept;

/// All four paper platforms, in Table II order.
inline constexpr Platform kPaperPlatforms[] = {
    Platform::bluegene_p, Platform::infiniband, Platform::cray_xt5,
    Platform::cray_xe6};

}  // namespace mpisim

#endif  // MPISIM_PLATFORM_HPP
