#ifndef MPISIM_GROUP_HPP
#define MPISIM_GROUP_HPP

/// \file group.hpp
/// Process groups: ordered sets of world ranks (MPI_Group equivalent).
///
/// ARMCI's absolute-process-id model requires constant translation between
/// "rank in some group" and "world rank"; Group provides both directions.

#include <span>
#include <unordered_map>
#include <vector>

namespace mpisim {

/// An ordered set of distinct world ranks. Immutable after construction.
class Group {
 public:
  Group() = default;

  /// Build from an explicit rank list (must be distinct).
  explicit Group(std::vector<int> world_ranks);

  /// The contiguous group {lo, lo+1, ..., hi-1}.
  static Group range(int lo, int hi);

  /// Number of members.
  int size() const noexcept { return static_cast<int>(members_.size()); }

  /// World rank of group member \p r (throws if out of range).
  int world_rank(int r) const;

  /// Rank of world rank \p wr within this group, or -1 if absent.
  int rank_of_world(int wr) const noexcept;

  /// True if \p wr is a member.
  bool contains(int wr) const noexcept { return rank_of_world(wr) >= 0; }

  /// Subgroup containing exactly the listed member ranks, in that order.
  Group incl(std::span<const int> ranks) const;

  /// Subgroup of all members except the listed member ranks.
  Group excl(std::span<const int> ranks) const;

  /// Members of this group followed by members of \p other not already
  /// present (MPI_Group_union ordering).
  Group union_with(const Group& other) const;

  /// Members of this group that are also in \p other, in this group's order.
  Group intersection(const Group& other) const;

  /// All members, in group order.
  const std::vector<int>& members() const noexcept { return members_; }

  bool operator==(const Group& other) const noexcept {
    return members_ == other.members_;
  }

 private:
  std::vector<int> members_;
  std::unordered_map<int, int> index_;  // world rank -> group rank
};

}  // namespace mpisim

#endif  // MPISIM_GROUP_HPP
