#ifndef MPISIM_FAULT_HPP
#define MPISIM_FAULT_HPP

/// \file fault.hpp
/// Deterministic fault injection for the simulated runtime.
///
/// A FaultPlan (part of Config) schedules rank crashes at virtual times and
/// parameterizes transient faults: delayed message delivery, lock-grant
/// stalls, and operations that fail N times before succeeding. Each rank
/// owns a FaultInjector seeded from (plan seed, rank), so a given plan
/// produces the *identical* fault sequence on every run -- chaos-test
/// failures reproduce from their printed seed. All randomness is drawn from
/// a private splitmix64 stream; wall-clock time is never consulted.
///
/// Fault sites are the runtime's communication entry points (send, recv,
/// collectives, window lock/unlock, RMA issue). A scheduled crash fires at
/// the first fault point at or after its virtual time and raises
/// Errc::crashed on the victim; the runtime's abort propagation then wakes
/// every blocked peer with Errc::aborted. Transient faults raise
/// Errc::transient, which the ARMCI layer absorbs with bounded
/// retry-with-backoff (retry.hpp).

#include <cstdint>
#include <vector>

#include "src/mpisim/clock.hpp"

namespace mpisim {

class SimCore;
class Tracer;

/// Kill one rank at (or after) a virtual time.
struct RankCrashSpec {
  int rank = -1;        ///< victim world rank
  double at_ns = 0.0;   ///< earliest virtual time the crash may fire
};

/// N-times-then-succeed operation failures.
struct TransientFaultSpec {
  /// Probability that a faultable operation starts a failure burst.
  double rate = 0.0;
  /// Failures per burst: the op raises Errc::transient this many times,
  /// then the next attempt succeeds (assuming the caller retries).
  int fail_count = 1;
  /// Virtual time charged to the victim per failed attempt.
  double stall_ns = 0.0;
  /// Non-null: only fault points whose site name matches exactly are
  /// eligible; all other sites pass through untouched. Lets a regression
  /// test aim a deterministic fault at one operation (e.g. the k-th op of
  /// an MPI-3 nonblocking batch) without perturbing the rest of the run.
  const char* site = nullptr;
  /// Number of eligible consults to let through before the first burst may
  /// start (with rate = 1.0 this pinpoints exactly which consult fails).
  int skip = 0;
  /// > 0: total bursts allowed; later consults pass untouched once spent.
  /// Together with rate = 1.0 and skip this makes the (skip+1)-th consult
  /// fail exactly fail_count times and everything else succeed -- the
  /// retried operation itself would otherwise re-draw and fail forever.
  int max_bursts = 0;
};

/// Complete fault schedule for one run. Default-constructed plans are
/// disabled and cost one branch per fault point.
struct FaultPlan {
  /// Seed for every rank's private fault stream.
  std::uint64_t seed = 0;

  /// Scheduled rank crashes.
  std::vector<RankCrashSpec> crashes;

  /// Transient (retryable) operation failures.
  TransientFaultSpec transient;

  /// Probability that a message's delivery is delayed by delay_ns.
  double delay_rate = 0.0;
  double delay_ns = 0.0;

  /// Probability that a lock grant is stalled by lock_stall_ns.
  double lock_stall_rate = 0.0;
  double lock_stall_ns = 0.0;

  /// Survivable-failure mode: a scheduled crash marks the victim dead in
  /// the core instead of tearing down the whole run. Blocked peers that
  /// depend on the dead rank observe Errc::crashed (after the detection
  /// period below) rather than the blanket Errc::aborted, collectives
  /// complete over the live members, and the layers above may recover
  /// (ULFM-style shrink/agree, ARMCI mutex reclaim, GA replica failover).
  /// Off by default: the victim's escaped exception aborts the run as
  /// before. Intentionally NOT part of enabled() -- survivable alone
  /// schedules no faults.
  bool survivable = false;

  /// Failure-detection period (virtual ns): how long after a rank's death
  /// any observer's clock is advanced before it may raise Errc::crashed
  /// about that rank. Models an eventually-perfect heartbeat detector
  /// piggybacked on the virtual clock without per-message heartbeats.
  double detect_period_ns = 1000.0;

  bool enabled() const noexcept {
    return !crashes.empty() || transient.rate > 0.0 || delay_rate > 0.0 ||
           lock_stall_rate > 0.0;
  }
};

/// Per-rank deterministic fault source. Owned by RankContext; all methods
/// must be called from the owning rank's thread.
class FaultInjector {
 public:
  FaultInjector() = default;

  /// Bind this injector to \p rank's slice of \p plan. \p core (may be
  /// null in unit tests) receives the death notification when a survivable
  /// crash fires; \p tracer (may be null) gets fault-category trace events.
  void configure(const FaultPlan& plan, int rank, SimCore* core = nullptr,
                 Tracer* tracer = nullptr);

  bool enabled() const noexcept { return enabled_; }

  /// Crash fault point: raises Errc::crashed when this rank's scheduled
  /// crash time has been reached on \p clock.
  void fault_point(const SimClock& clock) {
    if (!enabled_) return;
    fault_point_slow(clock);
  }

  /// Transient fault point: with plan probability, raises Errc::transient
  /// (charging the configured stall to \p clock) fail_count times in a row
  /// before letting the operation through. Named \p site for diagnostics.
  void maybe_transient(SimClock& clock, const char* site) {
    if (!enabled_ || rate_ <= 0.0) return;
    maybe_transient_slow(clock, site);
  }

  /// Extra delivery latency to add to the message being sent (ns; usually 0).
  double draw_delivery_delay_ns();

  /// Extra stall to charge after a lock grant (ns; usually 0).
  double draw_lock_stall_ns();

  /// Number of transient faults raised so far on this rank.
  std::uint64_t transients_raised() const noexcept { return transients_; }

  /// Uniform draw in [0, 1) from this rank's private stream. Seeded even
  /// when the plan is disabled, so deterministic consumers outside the
  /// injector (retry-backoff jitter) always have a stream to draw from.
  double draw_unit() noexcept { return next_unit(); }

 private:
  void fault_point_slow(const SimClock& clock);
  void maybe_transient_slow(SimClock& clock, const char* site);

  /// Next value of the private splitmix64 stream.
  std::uint64_t next_u64() noexcept;
  /// Uniform draw in [0, 1).
  double next_unit() noexcept;

  bool enabled_ = false;
  int rank_ = -1;
  std::uint64_t rng_ = 0;
  SimCore* core_ = nullptr;    ///< death sink for survivable crashes
  Tracer* tracer_ = nullptr;   ///< fault-event trace sink
  bool survivable_ = false;

  double crash_at_ns_ = -1.0;  ///< < 0: no crash scheduled for this rank

  double rate_ = 0.0;
  int fail_count_ = 1;
  double stall_ns_ = 0.0;
  const char* site_ = nullptr;  ///< non-null: transients hit this site only
  int skip_ = 0;                ///< eligible consults to pass before faulting
  int max_bursts_ = 0;          ///< > 0: bursts remaining; 0 once spent
  bool bounded_bursts_ = false;  ///< max_bursts was configured > 0
  int pending_failures_ = 0;  ///< remaining failures of the current burst

  double delay_rate_ = 0.0;
  double delay_ns_ = 0.0;
  double lock_stall_rate_ = 0.0;
  double lock_stall_ns_ = 0.0;

  std::uint64_t transients_ = 0;
};

}  // namespace mpisim

#endif  // MPISIM_FAULT_HPP
