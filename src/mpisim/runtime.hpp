#ifndef MPISIM_RUNTIME_HPP
#define MPISIM_RUNTIME_HPP

/// \file runtime.hpp
/// The simulator core: thread-per-rank SPMD execution.
///
/// mpisim::run(cfg, fn) launches cfg.nranks OS threads; each runs \p fn as
/// one "MPI process". All mpisim calls locate their rank's context through a
/// thread-local pointer, so user code reads like ordinary SPMD MPI code:
///
///     mpisim::run({.nranks = 4}, [] {
///       if (mpisim::rank() == 0) ...
///       mpisim::world().barrier();
///     });
///
/// Shared simulator state is serialized by a single global mutex (SimCore::mu)
/// with one condition variable for all blocking operations. This coarse
/// locking is deliberate: the simulator's performance story is told in
/// *virtual* time (SimClock + NetworkModel), so host-side scalability of the
/// simulator itself is irrelevant, while a single lock makes the many
/// blocking-rendezvous protocols (receives, window locks, collectives)
/// trivially deadlock- and race-free and lets an aborting rank wake every
/// blocked peer.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "src/mpisim/checker.hpp"
#include "src/mpisim/clock.hpp"
#include "src/mpisim/error.hpp"
#include "src/mpisim/fault.hpp"
#include "src/mpisim/hb.hpp"
#include "src/mpisim/mailbox.hpp"
#include "src/mpisim/netmodel.hpp"
#include "src/mpisim/platform.hpp"
#include "src/mpisim/registration.hpp"
#include "src/mpisim/trace.hpp"

namespace mpisim {

class Comm;
struct CommImpl;
class SimCore;

/// Simulation parameters.
struct Config {
  int nranks = 4;
  Platform platform = Platform::ideal;
  /// Track access ranges inside window epochs and raise
  /// Errc::conflicting_access on MPI-2-erroneous overlap.
  bool check_conflicts = true;
  /// RMA validity checker mode (checker.hpp): record every RMA byte
  /// interval and declared direct local access, and report MPI-2 conflict
  /// violations when the access epoch completes. warn (the default) prints
  /// to stderr and counts; abort raises Errc::rma_conflict; race adds the
  /// vector-clock happens-before detector (hb.hpp), raising Errc::rma_race
  /// on cross-epoch unordered conflicts. Overridable at run time by the
  /// MPISIM_RMA_CHECK environment variable (off|warn|abort|race; unknown
  /// values warn on stderr and fall back to off).
  RmaCheck rma_check = RmaCheck::warn;
  /// Cap on the happens-before shadow store's total recorded byte
  /// intervals (pending accesses plus published summaries): past it the
  /// oldest summaries are dropped and counted in the race overflow
  /// counter. 0 disables the cap.
  std::size_t rma_check_max_intervals = 1 << 16;
  /// Ranks per node for the NetworkModel's node map: consecutive ranks in
  /// groups of this size share a node (and its shared-memory windows).
  /// 0 (the default) takes the platform profile's ranks_per_node; > 0
  /// overrides it, letting tests co-locate or separate ranks at will.
  int ranks_per_node = 0;
  /// Per-rank thread stack size in bytes (large rank counts need small
  /// stacks; user code must keep big arrays on the heap).
  std::size_t stack_bytes = 1 << 20;
  /// Deterministic fault schedule (fault.hpp). Disabled by default.
  FaultPlan fault;
  /// Virtual-time deadline for any single blocking wait: when global
  /// virtual time advances this far past a wait's entry while its predicate
  /// stays false, the wait raises Errc::wait_timeout instead of hanging
  /// silently. 0 disables the deadline. Independently, a wait whose every
  /// live peer is also blocked is detected as a deadlock and raises
  /// Errc::wait_timeout regardless of this setting.
  double wait_deadline_ns = 0.0;
  /// Byte cap on any one destination's queued (unconsumed) eager-send
  /// payload: a send whose message would push the destination mailbox's
  /// queued_bytes() past this raises Errc::resource_exhausted at the
  /// *sender* instead of buffering without bound (a client flooding one
  /// stalled server rank gets clean backpressure, not OOM). Messages
  /// consumed directly by a posted receive never queue and are exempt, as
  /// is the runtime-internal system channel. 0 (the default) is unlimited.
  std::size_t mailbox_cap_bytes = 0;
  /// Virtual-time interval between cooperative progress-engine ticks: a
  /// rank's progress hook (SimClock::set_progress_hook) fires each time
  /// this much *compute* time accumulates through advance_compute().
  /// Communication layers above (armci's nb engine) install the hook when
  /// their progress engine is enabled.
  double progress_interval_ns = 10'000.0;
};

/// Per-rank state. One instance per simulated process, owned by SimCore and
/// bound to its thread via a thread_local pointer.
class RankContext {
 public:
  RankContext(SimCore& core, int rank);
  ~RankContext();

  RankContext(const RankContext&) = delete;
  RankContext& operator=(const RankContext&) = delete;

  int rank() const noexcept { return rank_; }
  SimCore& core() noexcept { return *core_; }
  SimClock& clock() noexcept { return clock_; }

  /// This rank's trace sink (disabled unless the layer above enables it).
  Tracer& tracer() noexcept { return tracer_; }

  /// Registration cache of the MPI runtime on this rank.
  RegistrationCache& mpi_reg() noexcept { return mpi_reg_; }
  /// Registration cache of the native ARMCI runtime on this rank.
  RegistrationCache& native_reg() noexcept { return native_reg_; }

  /// This rank's fault stream (configured from Config::fault).
  FaultInjector& fault() noexcept { return fault_; }

  /// Slot for the layer above (ARMCI keeps its per-process state here).
  void* user_state = nullptr;
  /// Cleanup hook invoked when the rank thread finishes (even on error).
  std::function<void()> user_state_cleanup;

  /// Virtual-time latency of this rank's most recent failure observation
  /// (observation clock minus the victim's death time; < 0 until this rank
  /// observes a death). Survivable mode's detection-latency gauge.
  double last_detect_latency_ns = -1.0;
  /// Death epoch acknowledged via Comm::failure_ack(): any-source receives
  /// raise Errc::crashed once per unacknowledged epoch (ULFM
  /// MPI_Comm_failure_ack semantics), then proceed.
  std::uint64_t acked_death_epoch = 0;

 private:
  SimCore* core_;
  int rank_;
  SimClock clock_;
  Tracer tracer_{clock_};
  RegistrationCache mpi_reg_;
  RegistrationCache native_reg_;
  FaultInjector fault_;
};

/// Shared simulation state for one run().
class SimCore {
 public:
  SimCore(const Config& cfg);
  ~SimCore();

  SimCore(const SimCore&) = delete;
  SimCore& operator=(const SimCore&) = delete;

  const Config& config() const noexcept { return cfg_; }
  int nranks() const noexcept { return cfg_.nranks; }
  const PlatformProfile& profile() const noexcept { return prof_; }
  const NetworkModel& model() const noexcept { return model_; }

  /// The RMA validity checker (checker.hpp). Stateful methods require mu();
  /// counter reads and note_discipline() are lock-free.
  RmaChecker& checker() noexcept { return checker_; }

  /// The happens-before race detector (hb.hpp), active at RmaCheck::race.
  /// Stateful methods require mu(); counter reads are lock-free.
  HbChecker& hb() noexcept { return hb_; }

  /// The global lock guarding all shared simulator state.
  std::mutex& mu() noexcept { return mu_; }
  /// Notified on every state change; all blocking waits use wait().
  std::condition_variable& cv() noexcept { return cv_; }

  /// Announce a state change that can satisfy a blocked rank's predicate:
  /// bumps the progress generation (so the deadlock detector knows work
  /// happened) and wakes every waiter. Caller must hold mu(). All mutation
  /// sites (mailbox push, lock grant, collective completion, ...) must use
  /// this instead of cv().notify_all(), or quiescence detection would
  /// miscount them as deadlock.
  void poke() noexcept {
    ++progress_gen_;
    cv_.notify_all();
  }

  /// Block until \p pred() holds, waking on any state change. Raises
  /// Errc::aborted if another rank failed meanwhile, and Errc::wait_timeout
  /// when every live rank is blocked (deadlock) or when the virtual-time
  /// deadline (Config::wait_deadline_ns) expires first. \p lk must hold
  /// mu(); \p site names the wait in diagnostics.
  template <typename Pred>
  void wait(std::unique_lock<std::mutex>& lk, Pred pred,
            const char* site = "blocking wait") {
    if (aborted_) throw_aborted();
    if (pred()) return;
    const double t0 = wait_enter_locked();
    for (;;) {
      if (aborted_) {
        wait_exit_locked();
        throw_aborted();
      }
      if (pred()) {
        wait_exit_locked();
        return;
      }
      if (deadlocked_) {
        wait_exit_locked();
        throw_wait_timeout(site, /*deadlock=*/true, t0);
      }
      if (cfg_.wait_deadline_ns > 0.0 &&
          latest_ns_ - t0 > cfg_.wait_deadline_ns) {
        wait_exit_locked();
        throw_wait_timeout(site, /*deadlock=*/false, t0);
      }
      // We just evaluated our predicate as false against the current state;
      // stamp that with the progress generation. Quiescence is certain --
      // not merely suspected -- once every live rank is blocked AND has
      // re-evaluated its predicate since the last poke(): all state
      // mutations run under mu() on a live rank and announce themselves via
      // poke(), so no predicate can ever become true again. A peer that was
      // poked but has not rescheduled yet still carries a stale stamp,
      // which defers the verdict until it actually re-evaluates; detection
      // is therefore immune to host-scheduling stalls (and needs no
      // heuristic grace period).
      mark_pred_unsatisfied_locked();
      if (quiescent_locked()) {
        deadlocked_ = true;
        cv_.notify_all();
        wait_exit_locked();
        throw_wait_timeout(site, /*deadlock=*/true, t0);
      }
      // The timeout is only a safety net: every relevant transition
      // (poke, abort, rank exit, deadlock verdict) notifies cv_.
      cv_.wait_for(lk, std::chrono::seconds(1));
    }
  }

  /// Record the first failure and wake all blocked ranks.
  void abort(std::exception_ptr err) noexcept;

  /// True once any rank failed. Safe to poll without holding mu().
  bool aborted() const noexcept { return aborted_; }

  /// Raise Errc::aborted if a peer already failed; caller must hold mu().
  /// RMA data movement calls this so no operation copies into memory a
  /// crashed rank's cleanup hook may have released.
  void check_failed_locked() const {
    if (aborted_) throw_aborted();
  }

  // ---- Survivable-failure support (Config::fault.survivable) ----

  /// True when scheduled crashes mark the victim dead instead of aborting
  /// the whole run.
  bool survivable() const noexcept { return cfg_.fault.survivable; }

  /// Record that \p rank died at virtual time \p now_ns and wake every
  /// blocked waiter so failure-aware predicates can observe it. Called by
  /// the victim's FaultInjector before its crash exception unwinds.
  void rank_crashed(int rank, double now_ns) noexcept;

  /// True when \p r has been declared dead. Caller must hold mu().
  bool is_dead_locked(int r) const noexcept {
    return r >= 0 && r < static_cast<int>(dead_.size()) &&
           dead_[static_cast<std::size_t>(r)] != 0;
  }

  /// Locking convenience around is_dead_locked().
  bool is_failed(int r);

  /// World ranks declared dead so far, ascending.
  std::vector<int> failed_ranks();

  /// Monotone count of deaths; any-source receives compare it against the
  /// caller's acked_death_epoch. Caller must hold mu().
  std::uint64_t death_epoch_locked() const noexcept { return death_epoch_; }

  /// Most recently declared dead rank (diagnostics; -1 if none). Caller
  /// must hold mu().
  int latest_dead_locked() const noexcept { return latest_dead_; }

  /// Virtual time by which every rank's detector has declared \p r dead.
  /// Caller must hold mu(); \p r must be dead.
  double detection_bound_locked(int r) const noexcept {
    return death_ns_[static_cast<std::size_t>(r)] +
           cfg_.fault.detect_period_ns;
  }

  /// The calling rank observes \p dead_rank's death without failing: its
  /// clock advances to the detector bound and its detection-latency gauge
  /// is stamped (read-failover sites survive the death, so no throw).
  /// Caller must hold mu() and be a rank thread.
  void note_death_observed_locked(int dead_rank);

  /// The calling rank observes \p dead_rank's death: its clock advances to
  /// the detector bound (death time + FaultPlan::detect_period_ns), its
  /// detection-latency gauge is stamped, and Errc::crashed is raised.
  /// Caller must hold mu() and be a rank thread.
  [[noreturn]] void observe_death_locked(int dead_rank, const char* site);

  /// Raise Errc::crashed via observe_death_locked() when \p target is
  /// dead; otherwise no-op. The survivable-mode analogue of
  /// check_failed_locked() for operations addressing one specific rank.
  void check_target_alive_locked(int target, const char* site) {
    if (survivable() && is_dead_locked(target))
      observe_death_locked(target, site);
  }

  /// Fold \p now_ns into the global high-water virtual time that wait
  /// deadlines measure against. Caller must hold mu().
  void note_time_locked(double now_ns) noexcept {
    if (now_ns > latest_ns_) latest_ns_ = now_ns;
  }

  /// A rank's thread is exiting (normally or after a failure).
  void rank_exited() noexcept;

  /// Mailbox of world rank \p r (access under mu()).
  Mailbox& mailbox(int r);

  /// Context of world rank \p r.
  RankContext& rank_ctx(int r);

  /// Fresh communicator id; caller must hold mu().
  std::uint64_t alloc_comm_id_locked() noexcept { return next_comm_id_++; }

  /// Fresh window id; caller must hold mu().
  std::uint64_t alloc_win_id_locked() noexcept { return next_win_id_++; }

  /// Fresh object-publication key suffix; caller must hold mu().
  std::uint64_t alloc_obj_key_locked() noexcept { return next_obj_key_++; }

  /// The world communicator's shared state.
  const std::shared_ptr<CommImpl>& world_impl() const noexcept {
    return world_impl_;
  }

  /// Publish a communicator impl under \p key for peers to fetch (used by
  /// intercomm construction, where one leader builds the shared state).
  /// Caller must hold mu() and notify cv() afterwards.
  void publish_comm_locked(std::uint64_t key, std::shared_ptr<CommImpl> impl);

  /// Block until a peer publishes \p key, then return the shared impl.
  std::shared_ptr<CommImpl> fetch_published_comm(std::uint64_t key);

  /// Key namespaces for publish_obj_locked: window and pacer ids come from
  /// independent counters, so tag the high bits to keep keys unique.
  static constexpr std::uint64_t kWinPublishTag = 1ull << 62;
  static constexpr std::uint64_t kPacerPublishTag = 2ull << 62;

  /// Publish an arbitrary shared object under \p key for peers to fetch
  /// (windows, pacers: one leader builds the shared state, peers copy it).
  /// The core holds a strong reference until retire_published_obj(), so an
  /// abort mid-rendezvous can neither leak the object nor free it under a
  /// peer still copying. Caller must hold mu() and poke() afterwards.
  void publish_obj_locked(std::uint64_t key, std::shared_ptr<void> obj);

  /// Block until a peer publishes \p key, then return the shared object.
  std::shared_ptr<void> fetch_published_obj(std::uint64_t key);

  /// Drop the core's reference to a published object (after every peer has
  /// copied it). Skipping this on an error path is safe: the entry is
  /// released when the core is destroyed.
  void retire_published_obj(std::uint64_t key);

 private:
  friend void run(const Config&, const std::function<void()>&);

  /// Publish the caller's clock and count it as blocked; returns the wait's
  /// entry time (deadline reference point). Caller must hold mu().
  double wait_enter_locked() noexcept;
  void wait_exit_locked() noexcept;
  /// Record that the calling rank evaluated its wait predicate as false at
  /// the current progress generation. Caller must hold mu().
  void mark_pred_unsatisfied_locked() noexcept;
  /// True when every live rank is blocked and has evaluated its predicate
  /// as false at the current progress generation: a certain deadlock.
  /// Caller must hold mu().
  bool quiescent_locked() const noexcept;
  [[noreturn]] static void throw_aborted();
  [[noreturn]] void throw_wait_timeout(const char* site, bool deadlock,
                                       double t0_ns) const;

  Config cfg_;
  const PlatformProfile& prof_;
  NetworkModel model_;
  RmaChecker checker_;
  HbChecker hb_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::atomic<bool> aborted_{false};
  std::exception_ptr first_error_;

  // Liveness accounting (all under mu_ except the atomic aborted_ above).
  int running_ = 0;            ///< rank threads not yet exited
  int blocked_ = 0;            ///< ranks currently inside wait()
  int anon_waiters_ = 0;       ///< waiters with no rank context (untrackable)
  bool deadlocked_ = false;    ///< sticky: quiescence was detected
  std::uint64_t progress_gen_ = 0;  ///< bumped by every poke()
  double latest_ns_ = 0.0;     ///< high-water published virtual time
  std::vector<std::uint8_t> dead_;  ///< per rank: declared dead? (survivable)
  std::vector<double> death_ns_;    ///< per rank: virtual death time
  std::uint64_t death_epoch_ = 0;   ///< total deaths so far
  int latest_dead_ = -1;            ///< most recently declared dead rank
  std::vector<std::uint8_t> in_wait_;  ///< per rank: inside wait()?
  /// Per rank: progress generation at its last false predicate evaluation.
  std::vector<std::uint64_t> pred_seen_gen_;

  std::vector<std::unique_ptr<RankContext>> ranks_;
  std::vector<Mailbox> mailboxes_;
  std::uint64_t next_comm_id_ = 1;
  std::uint64_t next_win_id_ = 1;
  std::uint64_t next_obj_key_ = 1;
  std::shared_ptr<CommImpl> world_impl_;
  std::map<std::uint64_t, std::shared_ptr<CommImpl>> published_;
  std::map<std::uint64_t, std::shared_ptr<void>> published_objs_;
};

/// Run \p rank_main on cfg.nranks simulated processes. Blocks until all
/// finish; rethrows the first rank failure (after shutting down the rest).
void run(const Config& cfg, const std::function<void()>& rank_main);

/// Convenience overload.
void run(int nranks, Platform platform, const std::function<void()>& rank_main);

/// Context of the calling simulated process (throws outside run()).
RankContext& ctx();

/// True when called from inside a simulated process.
bool in_simulation() noexcept;

/// Rank of the calling simulated process in the world communicator.
int rank();

/// Number of simulated processes.
int nranks();

/// The world communicator.
Comm world();

/// This rank's virtual clock.
SimClock& clock();

/// This rank's trace sink.
Tracer& tracer();

/// The active cost model.
const NetworkModel& model();

}  // namespace mpisim

#endif  // MPISIM_RUNTIME_HPP
