#ifndef MPISIM_RUNTIME_HPP
#define MPISIM_RUNTIME_HPP

/// \file runtime.hpp
/// The simulator core: thread-per-rank SPMD execution.
///
/// mpisim::run(cfg, fn) launches cfg.nranks OS threads; each runs \p fn as
/// one "MPI process". All mpisim calls locate their rank's context through a
/// thread-local pointer, so user code reads like ordinary SPMD MPI code:
///
///     mpisim::run({.nranks = 4}, [] {
///       if (mpisim::rank() == 0) ...
///       mpisim::world().barrier();
///     });
///
/// Shared simulator state is serialized by a single global mutex (SimCore::mu)
/// with one condition variable for all blocking operations. This coarse
/// locking is deliberate: the simulator's performance story is told in
/// *virtual* time (SimClock + NetworkModel), so host-side scalability of the
/// simulator itself is irrelevant, while a single lock makes the many
/// blocking-rendezvous protocols (receives, window locks, collectives)
/// trivially deadlock- and race-free and lets an aborting rank wake every
/// blocked peer.

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "src/mpisim/clock.hpp"
#include "src/mpisim/error.hpp"
#include "src/mpisim/mailbox.hpp"
#include "src/mpisim/netmodel.hpp"
#include "src/mpisim/platform.hpp"
#include "src/mpisim/registration.hpp"
#include "src/mpisim/trace.hpp"

namespace mpisim {

class Comm;
struct CommImpl;
class SimCore;

/// Simulation parameters.
struct Config {
  int nranks = 4;
  Platform platform = Platform::ideal;
  /// Track access ranges inside window epochs and raise
  /// Errc::conflicting_access on MPI-2-erroneous overlap.
  bool check_conflicts = true;
  /// Per-rank thread stack size in bytes (large rank counts need small
  /// stacks; user code must keep big arrays on the heap).
  std::size_t stack_bytes = 1 << 20;
};

/// Per-rank state. One instance per simulated process, owned by SimCore and
/// bound to its thread via a thread_local pointer.
class RankContext {
 public:
  RankContext(SimCore& core, int rank);
  ~RankContext();

  RankContext(const RankContext&) = delete;
  RankContext& operator=(const RankContext&) = delete;

  int rank() const noexcept { return rank_; }
  SimCore& core() noexcept { return *core_; }
  SimClock& clock() noexcept { return clock_; }

  /// This rank's trace sink (disabled unless the layer above enables it).
  Tracer& tracer() noexcept { return tracer_; }

  /// Registration cache of the MPI runtime on this rank.
  RegistrationCache& mpi_reg() noexcept { return mpi_reg_; }
  /// Registration cache of the native ARMCI runtime on this rank.
  RegistrationCache& native_reg() noexcept { return native_reg_; }

  /// Slot for the layer above (ARMCI keeps its per-process state here).
  void* user_state = nullptr;
  /// Cleanup hook invoked when the rank thread finishes (even on error).
  std::function<void()> user_state_cleanup;

 private:
  SimCore* core_;
  int rank_;
  SimClock clock_;
  Tracer tracer_{clock_};
  RegistrationCache mpi_reg_;
  RegistrationCache native_reg_;
};

/// Shared simulation state for one run().
class SimCore {
 public:
  SimCore(const Config& cfg);
  ~SimCore();

  SimCore(const SimCore&) = delete;
  SimCore& operator=(const SimCore&) = delete;

  const Config& config() const noexcept { return cfg_; }
  int nranks() const noexcept { return cfg_.nranks; }
  const PlatformProfile& profile() const noexcept { return prof_; }
  const NetworkModel& model() const noexcept { return model_; }

  /// The global lock guarding all shared simulator state.
  std::mutex& mu() noexcept { return mu_; }
  /// Notified on every state change; all blocking waits use wait().
  std::condition_variable& cv() noexcept { return cv_; }

  /// Block until \p pred() holds, waking on any state change. Throws
  /// Errc::aborted if another rank failed meanwhile. \p lk must hold mu().
  template <typename Pred>
  void wait(std::unique_lock<std::mutex>& lk, Pred pred) {
    cv_.wait(lk, [&] { return aborted_ || pred(); });
    if (aborted_) throw MpiError(Errc::aborted, "mpisim: aborted by peer failure");
  }

  /// Record the first failure and wake all blocked ranks.
  void abort(std::exception_ptr err) noexcept;

  /// True once any rank failed.
  bool aborted() const noexcept { return aborted_; }

  /// Mailbox of world rank \p r (access under mu()).
  Mailbox& mailbox(int r);

  /// Context of world rank \p r.
  RankContext& rank_ctx(int r);

  /// Fresh communicator id; caller must hold mu().
  std::uint64_t alloc_comm_id_locked() noexcept { return next_comm_id_++; }

  /// Fresh window id; caller must hold mu().
  std::uint64_t alloc_win_id_locked() noexcept { return next_win_id_++; }

  /// The world communicator's shared state.
  const std::shared_ptr<CommImpl>& world_impl() const noexcept {
    return world_impl_;
  }

  /// Publish a communicator impl under \p key for peers to fetch (used by
  /// intercomm construction, where one leader builds the shared state).
  /// Caller must hold mu() and notify cv() afterwards.
  void publish_comm_locked(std::uint64_t key, std::shared_ptr<CommImpl> impl);

  /// Block until a peer publishes \p key, then return the shared impl.
  std::shared_ptr<CommImpl> fetch_published_comm(std::uint64_t key);

 private:
  friend void run(const Config&, const std::function<void()>&);

  Config cfg_;
  const PlatformProfile& prof_;
  NetworkModel model_;

  std::mutex mu_;
  std::condition_variable cv_;
  bool aborted_ = false;
  std::exception_ptr first_error_;

  std::vector<std::unique_ptr<RankContext>> ranks_;
  std::vector<Mailbox> mailboxes_;
  std::uint64_t next_comm_id_ = 1;
  std::uint64_t next_win_id_ = 1;
  std::shared_ptr<CommImpl> world_impl_;
  std::map<std::uint64_t, std::shared_ptr<CommImpl>> published_;
};

/// Run \p rank_main on cfg.nranks simulated processes. Blocks until all
/// finish; rethrows the first rank failure (after shutting down the rest).
void run(const Config& cfg, const std::function<void()>& rank_main);

/// Convenience overload.
void run(int nranks, Platform platform, const std::function<void()>& rank_main);

/// Context of the calling simulated process (throws outside run()).
RankContext& ctx();

/// True when called from inside a simulated process.
bool in_simulation() noexcept;

/// Rank of the calling simulated process in the world communicator.
int rank();

/// Number of simulated processes.
int nranks();

/// The world communicator.
Comm world();

/// This rank's virtual clock.
SimClock& clock();

/// This rank's trace sink.
Tracer& tracer();

/// The active cost model.
const NetworkModel& model();

}  // namespace mpisim

#endif  // MPISIM_RUNTIME_HPP
