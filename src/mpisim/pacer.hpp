#ifndef MPISIM_PACER_HPP
#define MPISIM_PACER_HPP

/// \file pacer.hpp
/// Virtual-time pacing for dynamically load-balanced loops.
///
/// The simulator races rank threads on the host's wall clock, but work
/// distribution in a dynamically load-balanced loop (shared-counter task
/// claiming) should be decided by the *modeled* clocks: a rank whose
/// virtual clock is ahead has, in the modeled execution, not yet finished
/// its current task and must not claim the next one early. Pacer provides
/// that ordering: inside an enter()/leave() region, pace() blocks the
/// calling thread while its virtual clock is ahead of the minimum clock of
/// all ranks still in the region (plus an optional window). The rank at the
/// minimum never blocks, so progress is guaranteed; the result is a
/// deterministic, virtually-balanced task assignment -- a lightweight
/// conservative parallel-discrete-event scheme for the task loop.

#include <memory>

#include "src/mpisim/comm.hpp"

namespace mpisim {

namespace detail {
struct PacerImpl;
}

/// Value handle; collective create over a communicator.
class Pacer {
 public:
  Pacer() = default;

  /// Collective over \p comm: create a pacing region descriptor.
  static Pacer create(const Comm& comm);

  /// Join the paced region (publishes this rank's clock). Collective over
  /// the communicator: blocks until every member has entered, so no rank
  /// can start claiming work while peers are still outside the region.
  void enter();

  /// Block while this rank's virtual clock exceeds the minimum clock of
  /// all ranks currently in the region by more than \p window_ns.
  void pace(double window_ns = 0.0);

  /// Leave the region (this rank's clock no longer constrains others).
  void leave();

  bool valid() const noexcept { return impl_ != nullptr; }

 private:
  explicit Pacer(std::shared_ptr<detail::PacerImpl> impl);
  std::shared_ptr<detail::PacerImpl> impl_;
};

}  // namespace mpisim

#endif  // MPISIM_PACER_HPP
