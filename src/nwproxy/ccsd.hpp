#ifndef NWPROXY_CCSD_HPP
#define NWPROXY_CCSD_HPP

/// \file ccsd.hpp
/// The CCSD and (T) proxy phases (paper §VII-C/D).
///
/// run_ccsd executes `iterations` sweeps of the dominant CCSD contraction
/// pattern: tasks (one per upper-triangular virtual tile pair) are claimed
/// from a shared atomic counter (NWChem's nxtval dynamic load balancing);
/// each task one-sidedly GETs amplitude tiles, contracts them against
/// integral tiles synthesized on the fly (modeled DGEMM time charged at the
/// platform's per-core rate), and ACCumulates the result tile back --
/// get/compute/accumulate, the signature GA workload. A damped Jacobi-style
/// update and a pseudo-energy close each iteration.
///
/// run_triples executes the get-heavy (T) phase: one task per occupied
/// (i,j,k) triple fetches amplitude rows for the three pair indices and
/// reduces them into an energy contribution, charging the ~nv^3 triples
/// kernel per task.
///
/// Both are collective over all processes; ARMCI must be initialized (the
/// backend choice decides whether this is ARMCI-MPI or ARMCI-Native).

#include <cstdint>

#include "src/nwproxy/amplitudes.hpp"
#include "src/nwproxy/params.hpp"

namespace nwproxy {

/// Outcome of one proxy phase.
struct PhaseResult {
  double virtual_seconds = 0.0;       ///< job time: slowest rank's clock
  double virtual_seconds_mean = 0.0;  ///< mean across ranks (balance check)
  double energy = 0.0;           ///< pseudo-energy (correctness signal)
  std::int64_t my_tasks = 0;     ///< tasks executed by the calling rank
  std::int64_t total_tasks = 0;  ///< tasks in the phase (per iteration)
};

/// Run the CCSD phase; on return, \p t2 holds the final amplitudes (it is
/// created and initialized inside). Collective.
PhaseResult run_ccsd(const CcsdParams& p, Amplitudes& t2);

/// Run the (T) phase over existing amplitudes \p t2. Collective.
PhaseResult run_triples(const CcsdParams& p, const Amplitudes& t2);

/// Serial reference for one CCSD sweep on tiny problems (tests): the value
/// of T2new(r, c) that one iteration must produce from amplitudes `f`.
double ccsd_reference_value(const CcsdParams& p, std::int64_t r,
                            std::int64_t c,
                            double (*f)(std::int64_t, std::int64_t));

}  // namespace nwproxy

#endif  // NWPROXY_CCSD_HPP
