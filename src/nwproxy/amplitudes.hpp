#ifndef NWPROXY_AMPLITUDES_HPP
#define NWPROXY_AMPLITUDES_HPP

/// \file amplitudes.hpp
/// T2 amplitude storage for the CCSD(T) proxy.
///
/// The doubles amplitudes t2(i,j;c,d) are stored as a 2-d global array in
/// the standard matricized form: row = composite occupied pair ij (no^2
/// rows), column = composite virtual pair cd (nv^2 columns). Work is tiled
/// over the composite virtual-pair index in chunks of tile^2 columns, so a
/// tile access is a 2-d patch (all rows x one column band) that decomposes
/// into strided ARMCI transfers across the owners -- the access pattern the
/// paper's Figure 4 microbenchmarks isolate.

#include <cstdint>
#include <string>
#include <utility>

#include "src/ga/ga.hpp"
#include "src/nwproxy/params.hpp"

namespace nwproxy {

/// Distributed T2 tensor (matricized), plus tile bookkeeping.
class Amplitudes {
 public:
  Amplitudes() = default;

  /// Collective: allocate the (no^2 x nv^2) array.
  static Amplitudes create(const CcsdParams& p, const std::string& name);

  /// Collective: free.
  void destroy();

  ga::GlobalArray& array() noexcept { return ga_; }
  const ga::GlobalArray& array() const noexcept { return ga_; }

  std::int64_t rows() const noexcept { return rows_; }
  std::int64_t cols() const noexcept { return cols_; }
  std::int64_t ntiles() const noexcept { return ntiles_; }

  /// Inclusive column range [first, last] of pair-tile \p t.
  std::pair<std::int64_t, std::int64_t> tile_cols(std::int64_t t) const;

  /// Width (columns) of pair-tile \p t (the last tile may be partial).
  std::int64_t tile_width(std::int64_t t) const;

  /// Collective: fill with the deterministic reference values
  /// t2(r, c) = ref_value(r, c).
  void init_reference();

  /// Deterministic pseudo-amplitude (smooth, nonzero, order ~1e-2).
  static double ref_value(std::int64_t r, std::int64_t c);

 private:
  ga::GlobalArray ga_;
  std::int64_t rows_ = 0;
  std::int64_t cols_ = 0;
  std::int64_t tsq_ = 0;
  std::int64_t ntiles_ = 0;
};

/// On-the-fly "integral" coefficient coupling virtual-pair tile \p kt into
/// output tile \p bt for task row-tile \p at -- the stand-in for a
/// synthesized V(ab,cd) integral tile (direct-integral computation).
double v_coeff(std::int64_t at, std::int64_t bt, std::int64_t kt);

}  // namespace nwproxy

#endif  // NWPROXY_AMPLITUDES_HPP
