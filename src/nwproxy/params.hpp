#ifndef NWPROXY_PARAMS_HPP
#define NWPROXY_PARAMS_HPP

/// \file params.hpp
/// Problem parameterization for the NWChem CCSD(T) proxy (paper §VII-C).
///
/// The paper's application study runs coupled-cluster singles and doubles
/// with perturbative triples on a water pentamer (w5): no = 20 correlated
/// occupied orbitals, nv = 435 virtual orbitals, aug-cc-pVTZ basis. The
/// full T2 amplitude tensor (no^2 * nv^2 doubles ~ 0.6 GB) and especially
/// the two-electron integrals (nv^4) exceed what a laptop-scale simulation
/// should allocate, so the proxy (a) scales the orbital counts down while
/// preserving the communication pattern (get tile -> contract -> accumulate
/// tile, dynamically load-balanced through a shared counter), and
/// (b) synthesizes integral tiles on the fly -- exactly what "direct"
/// quantum chemistry codes do -- instead of storing nv^4 values.

#include <cstdint>

namespace nwproxy {

/// Proxy problem dimensions.
struct CcsdParams {
  std::int64_t no = 8;          ///< correlated occupied orbitals
  std::int64_t nv = 48;         ///< virtual orbitals
  std::int64_t tile = 12;       ///< tile edge over the virtual index
  int iterations = 3;           ///< CCSD iterations to run
  double mix = 0.5;             ///< Jacobi damping for the pseudo-update
  std::int64_t chunk_tasks = 1; ///< tasks claimed per counter fetch
};

/// The water pentamer of the paper (no=20, nv=435), scaled by
/// \p fraction in both orbital spaces (>= the minimum viable sizes).
CcsdParams w5_scaled(double fraction);

/// Number of composite virtual-pair tiles (ceil(nv^2 / tile^2)).
std::int64_t pair_tiles(const CcsdParams& p);

/// Number of CCSD tasks per iteration: upper-triangular (a,b) tile pairs.
std::int64_t ccsd_tasks(const CcsdParams& p);

/// Number of (T) tasks: i <= j <= k occupied triples.
std::int64_t triples_tasks(const CcsdParams& p);

/// Modeled FLOP count of one CCSD tile contraction (the ladder-term DGEMM
/// the real code would run: 2 * no^2 * tile^2 * tile^2).
double ccsd_task_flops(const CcsdParams& p);

/// Modeled FLOP count of one (T) triple: ~ 2 * nv^4 work per (i,j,k).
double triples_task_flops(const CcsdParams& p);

}  // namespace nwproxy

#endif  // NWPROXY_PARAMS_HPP
