#include "src/nwproxy/amplitudes.hpp"

#include <cmath>

#include "src/mpisim/error.hpp"
#include "src/mpisim/runtime.hpp"

namespace nwproxy {

Amplitudes Amplitudes::create(const CcsdParams& p, const std::string& name) {
  Amplitudes a;
  a.rows_ = p.no * p.no;
  a.cols_ = p.nv * p.nv;
  a.tsq_ = p.tile * p.tile;
  a.ntiles_ = (a.cols_ + a.tsq_ - 1) / a.tsq_;
  const std::int64_t dims[] = {a.rows_, a.cols_};
  a.ga_ = ga::GlobalArray::create(name, dims, ga::ElemType::dbl);
  return a;
}

void Amplitudes::destroy() { ga_.destroy(); }

std::pair<std::int64_t, std::int64_t> Amplitudes::tile_cols(
    std::int64_t t) const {
  const std::int64_t lo = t * tsq_;
  const std::int64_t hi = std::min(cols_ - 1, lo + tsq_ - 1);
  return {lo, hi};
}

std::int64_t Amplitudes::tile_width(std::int64_t t) const {
  auto [lo, hi] = tile_cols(t);
  return hi - lo + 1;
}

double Amplitudes::ref_value(std::int64_t r, std::int64_t c) {
  // Smooth and deterministic; magnitude ~1e-2 like real amplitudes.
  return 0.01 * std::sin(0.37 * static_cast<double>(r) +
                         0.61 * static_cast<double>(c)) +
         0.002;
}

void Amplitudes::init_reference() {
  ga::Patch p;
  auto* ptr = static_cast<double*>(ga_.access(p));
  if (ptr != nullptr) {
    const std::int64_t ni = p.extent(1);
    for (std::int64_t r = p.lo[0]; r <= p.hi[0]; ++r)
      for (std::int64_t c = p.lo[1]; c <= p.hi[1]; ++c)
        ptr[(r - p.lo[0]) * ni + (c - p.lo[1])] = ref_value(r, c);
    ga_.release_update();
  }
  ga_.sync();
}

double v_coeff(std::int64_t at, std::int64_t bt, std::int64_t kt) {
  // Decaying coupling: dominated by kt == bt, perturbed by the tile pair.
  const double d = static_cast<double>(kt - bt);
  return std::cos(0.2 * static_cast<double>(at)) /
         (1.0 + 0.5 * d * d);
}

}  // namespace nwproxy
