#include "src/nwproxy/ccsd.hpp"

#include <algorithm>
#include <cmath>
#include <tuple>
#include <vector>

#include "src/armci/armci.hpp"
#include "src/mpisim/comm.hpp"
#include "src/mpisim/pacer.hpp"
#include "src/mpisim/runtime.hpp"

namespace nwproxy {

namespace {

/// Charge the virtual clock for \p flops of local DGEMM-class compute at
/// the platform's per-core rate. advance_compute marks this as
/// application compute the progress engine may tick under: with
/// Options::progress on, deferred prefetches drain (and their latency
/// hides) inside the contraction instead of stalling the next wait.
void charge_flops(double flops) {
  const double gflops = mpisim::model().profile().dgemm_gflops;
  if (gflops > 0.0)
    mpisim::clock().advance_compute(flops / gflops);  // ns = f/GF
}

/// Decode a linear task id into the upper-triangular tile pair (at <= bt).
void decode_pair(std::int64_t task, std::int64_t& at, std::int64_t& bt) {
  // task = bt(bt+1)/2 + at with 0 <= at <= bt.
  bt = static_cast<std::int64_t>(
      (std::sqrt(8.0 * static_cast<double>(task) + 1.0) - 1.0) / 2.0);
  while ((bt + 1) * (bt + 2) / 2 <= task) ++bt;
  while (bt * (bt + 1) / 2 > task) --bt;
  at = task - bt * (bt + 1) / 2;
}

/// Decode a linear task id into the ordered occupied triple i <= j <= k.
void decode_triple(std::int64_t task, std::int64_t no, std::int64_t& i,
                   std::int64_t& j, std::int64_t& k) {
  std::int64_t t = task;
  for (i = 0; i < no; ++i) {
    const std::int64_t m = no - i;
    const std::int64_t block = m * (m + 1) / 2;
    if (t < block) break;
    t -= block;
  }
  for (j = i; j < no; ++j) {
    const std::int64_t m = no - j;
    if (t < m) break;
    t -= m;
  }
  k = j + t;
}

/// Execute one CCSD task: C(:, bt) = sum_kt v(at,bt,kt) * T2(:, kt), then
/// accumulate C into T2new's bt tile. The real contraction would be a
/// DGEMM against the synthesized integral tile; its time is charged to the
/// virtual clock while a rank-1 coefficient update keeps a verifiable
/// data dependency.
void run_ccsd_task(const CcsdParams& p, const Amplitudes& t2,
                   Amplitudes& t2new, std::int64_t at, std::int64_t bt,
                   std::vector<double>& c_buf, std::vector<double>& b_buf,
                   std::vector<double>& b_next) {
  const std::int64_t rows = t2.rows();
  const std::int64_t wb = t2.tile_width(bt);
  c_buf.assign(static_cast<std::size_t>(rows * wb), 0.0);

  // Double-buffered tile pipeline: the next tile's nb_get is issued before
  // contracting the current one, so its per-owner batches sit deferred
  // through the contraction and complete -- epochs overlapped across
  // owners -- at the next wait instead of serializing get-then-compute.
  auto issue_tile = [&](std::int64_t kt, std::vector<double>& buf) {
    const auto [klo, khi] = t2.tile_cols(kt);
    buf.resize(static_cast<std::size_t>(rows * (khi - klo + 1)));
    ga::Patch patch;
    patch.lo = {0, klo};
    patch.hi = {rows - 1, khi};
    return t2.array().nb_get(patch, buf.data());
  };

  const std::int64_t ntiles = t2.ntiles();
  armci::Request pending;
  if (ntiles > 0) pending = issue_tile(0, b_buf);
  for (std::int64_t kt = 0; kt < ntiles; ++kt) {
    // Callback-driven completion: with the progress engine on, the
    // prefetch usually finishes from a tick inside the previous
    // contraction's charge_flops, and the callback has already fired by
    // the time we get here -- the wait() below is then a no-op fallback
    // for whatever a tick did not retire (and for engine-off runs).
    bool tile_ready = false;
    armci::on_complete(pending, [&tile_ready](std::exception_ptr err) {
      if (err) std::rethrow_exception(err);
      tile_ready = true;
    });
    if (!tile_ready) armci::wait(pending);
    if (kt + 1 < ntiles) pending = issue_tile(kt + 1, b_next);

    const auto [klo, khi] = t2.tile_cols(kt);
    const std::int64_t wk = khi - klo + 1;
    const double v = v_coeff(at, bt, kt);
    const std::int64_t w = std::min(wb, wk);
    for (std::int64_t r = 0; r < rows; ++r)
      for (std::int64_t x = 0; x < w; ++x)
        c_buf[static_cast<std::size_t>(r * wb + x)] +=
            v * b_buf[static_cast<std::size_t>(r * wk + x)];
    charge_flops(ccsd_task_flops(p));
    std::swap(b_buf, b_next);  // the prefetched tile becomes current
  }

  const auto [blo, bhi] = t2new.tile_cols(bt);
  ga::Patch out;
  out.lo = {0, blo};
  out.hi = {rows - 1, bhi};
  const double one = 1.0;
  t2new.array().acc(out, c_buf.data(), &one);
}

/// Phase time metric: job time is the slowest rank's virtual time. Task
/// claiming is paced by mpisim::Pacer, so the assignment is decided by the
/// modeled clocks (not host scheduling) and the maximum is stable; the
/// mean is reported too for imbalance diagnostics.
std::pair<double, double> elapsed_seconds(double t0_ns) {
  const double mine = (mpisim::clock().now_ns() - t0_ns) * 1e-9;
  double mean = 0.0, mx = 0.0;
  mpisim::world().allreduce(&mine, &mean, 1, mpisim::BasicType::float64,
                            mpisim::Op::sum);
  mpisim::world().allreduce(&mine, &mx, 1, mpisim::BasicType::float64,
                            mpisim::Op::max);
  return {mx, mean / mpisim::nranks()};
}

}  // namespace

PhaseResult run_ccsd(const CcsdParams& p, Amplitudes& t2) {
  t2 = Amplitudes::create(p, "t2");
  Amplitudes t2new = Amplitudes::create(p, "t2new");
  t2.init_reference();
  ga::AtomicCounter counter = ga::AtomicCounter::create();
  mpisim::Pacer pacer = mpisim::Pacer::create(mpisim::world());
  armci::barrier();

  PhaseResult res;
  res.total_tasks = ccsd_tasks(p);
  const double t0 = mpisim::clock().now_ns();

  std::vector<double> c_buf, b_buf, b_next;
  for (int iter = 0; iter < p.iterations; ++iter) {
    t2new.array().zero();
    counter.reset(0);

    // nxtval-style dynamic load balancing (paper §IV-A / §VII-D), claimed
    // in virtual-clock order so the modeled balance is deterministic.
    pacer.enter();
    std::int64_t start = 0;
    while ((pacer.pace(), start = counter.next(p.chunk_tasks)) <
           res.total_tasks) {
      const std::int64_t end =
          std::min(start + p.chunk_tasks, res.total_tasks);
      for (std::int64_t task = start; task < end; ++task) {
        // Permute the task order (prime-stride) so concurrently claimed
        // tasks hit different output tiles -- production task lists are
        // interleaved the same way to avoid accumulate hotspots.
        const std::int64_t mixed = (task * 7919) % res.total_tasks;
        std::int64_t at = 0, bt = 0;
        decode_pair(mixed, at, bt);
        run_ccsd_task(p, t2, t2new, at, bt, c_buf, b_buf, b_next);
        ++res.my_tasks;
      }
    }
    pacer.leave();
    armci::barrier();

    // Damped Jacobi-style amplitude update, then the iteration "energy".
    const double keep = 1.0 - p.mix;
    t2.array().add(&keep, t2.array(), &p.mix, t2new.array());
    res.energy = t2.array().ddot(t2.array());
  }

  armci::barrier();
  std::tie(res.virtual_seconds, res.virtual_seconds_mean) =
      elapsed_seconds(t0);
  counter.destroy();
  t2new.destroy();
  return res;
}

PhaseResult run_triples(const CcsdParams& p, const Amplitudes& t2) {
  ga::AtomicCounter counter = ga::AtomicCounter::create();
  mpisim::Pacer pacer = mpisim::Pacer::create(mpisim::world());
  armci::barrier();

  PhaseResult res;
  res.total_tasks = triples_tasks(p);
  const double t0 = mpisim::clock().now_ns();
  const std::int64_t cols = t2.cols();

  std::vector<double> b1(static_cast<std::size_t>(cols));
  std::vector<double> b2(static_cast<std::size_t>(cols));
  std::vector<double> b3(static_cast<std::size_t>(cols));
  double local_e = 0.0;

  pacer.enter();
  std::int64_t start = 0;
  while ((pacer.pace(), start = counter.next(p.chunk_tasks)) <
         res.total_tasks) {
    const std::int64_t end = std::min(start + p.chunk_tasks, res.total_tasks);
    for (std::int64_t task = start; task < end; ++task) {
      std::int64_t i = 0, j = 0, k = 0;
      decode_triple(task, p.no, i, j, k);

      // Fetch the amplitude rows of the three pair indices (get-heavy):
      // issue all three nonblocking, complete at one covering wait so the
      // engine overlaps the rows' epochs when they live on different owners.
      auto fetch_row = [&](std::int64_t a, std::int64_t b,
                           std::vector<double>& buf) {
        ga::Patch patch;
        patch.lo = {a * p.no + b, 0};
        patch.hi = {a * p.no + b, cols - 1};
        return t2.array().nb_get(patch, buf.data());
      };
      armci::Request rows_req = fetch_row(i, j, b1);
      rows_req.merge(fetch_row(j, k, b2));
      rows_req.merge(fetch_row(i, k, b3));
      armci::wait(rows_req);

      // Triples kernel stand-in: reduce the three rows into one energy
      // contribution; the real ~nv^3 kernel's time is charged instead.
      double e = 0.0;
      for (std::int64_t c = 0; c < cols; ++c)
        e += b1[static_cast<std::size_t>(c)] * b2[static_cast<std::size_t>(c)] *
             b3[static_cast<std::size_t>(c)];
      local_e += e / (1.0 + static_cast<double>(i + j + k));
      charge_flops(triples_task_flops(p));
      ++res.my_tasks;
    }
  }
  pacer.leave();
  armci::barrier();

  mpisim::world().allreduce(&local_e, &res.energy, 1,
                            mpisim::BasicType::float64, mpisim::Op::sum);
  std::tie(res.virtual_seconds, res.virtual_seconds_mean) =
      elapsed_seconds(t0);
  counter.destroy();
  return res;
}

double ccsd_reference_value(const CcsdParams& p, std::int64_t r,
                            std::int64_t c,
                            double (*f)(std::int64_t, std::int64_t)) {
  const std::int64_t tsq = p.tile * p.tile;
  const std::int64_t cols = p.nv * p.nv;
  const std::int64_t ntiles = (cols + tsq - 1) / tsq;
  const std::int64_t bt = c / tsq;
  const std::int64_t x = c - bt * tsq;
  const auto width = [&](std::int64_t t) {
    return std::min(cols, (t + 1) * tsq) - t * tsq;
  };
  double acc = 0.0;
  for (std::int64_t at = 0; at <= bt; ++at) {
    for (std::int64_t kt = 0; kt < ntiles; ++kt) {
      const std::int64_t w = std::min(width(bt), width(kt));
      if (x < w) acc += v_coeff(at, bt, kt) * f(r, kt * tsq + x);
    }
  }
  return acc;
}

}  // namespace nwproxy
