#include "src/nwproxy/params.hpp"

#include <algorithm>
#include <cmath>

namespace nwproxy {

CcsdParams w5_scaled(double fraction) {
  CcsdParams p;
  p.no = std::max<std::int64_t>(4, static_cast<std::int64_t>(20 * fraction));
  p.nv = std::max<std::int64_t>(16, static_cast<std::int64_t>(435 * fraction));
  p.tile = std::clamp<std::int64_t>(p.nv / 4, 4, 16);
  return p;
}

std::int64_t pair_tiles(const CcsdParams& p) {
  const std::int64_t nv2 = p.nv * p.nv;
  const std::int64_t tsq = p.tile * p.tile;
  return (nv2 + tsq - 1) / tsq;
}

std::int64_t ccsd_tasks(const CcsdParams& p) {
  const std::int64_t t = pair_tiles(p);
  return t * (t + 1) / 2;
}

std::int64_t triples_tasks(const CcsdParams& p) {
  return p.no * (p.no + 1) * (p.no + 2) / 6;
}

double ccsd_task_flops(const CcsdParams& p) {
  // Per (ab,cd)-tile contraction. The production code blocks the ladder
  // DGEMM over the occupied pairs as well, so the per-claim critical-path
  // compute carries one factor of tile, not tile^2 -- this keeps the proxy
  // in the communication-sensitive regime the paper's Figure 6 reflects.
  const double no2 = static_cast<double>(p.no) * static_cast<double>(p.no);
  const double tsq = static_cast<double>(p.tile) * static_cast<double>(p.tile);
  return 2.0 * no2 * tsq * static_cast<double>(p.tile);
}

double triples_task_flops(const CcsdParams& p) {
  // (T) is O(no^3 * nv^4) total; per (i,j,k) triple that is ~nv^4 work at
  // full scale, but the bench problem's nv is scaled down ~5x more than a
  // real run, so one factor of nv is replaced by no to keep the proxy's
  // compute/communication balance in the regime of the paper's runs.
  const double nv = static_cast<double>(p.nv);
  return 2.0 * nv * nv * nv * static_cast<double>(p.no);
}

}  // namespace nwproxy
