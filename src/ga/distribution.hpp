#ifndef GA_DISTRIBUTION_HPP
#define GA_DISTRIBUTION_HPP

/// \file distribution.hpp
/// Regular block distribution of an n-dimensional array over processes.
///
/// Matches Global Arrays' default layout: the process count is factored
/// into an n-dimensional grid (respecting per-dimension minimum chunk
/// hints), each dimension is split into nearly equal blocks, and grid cell
/// (c_0, ..., c_{n-1}) belongs to the process with row-major cell index.
/// GA_Put/Get/Acc on an index region decompose into one patch per
/// intersected owner (paper Fig. 2).

#include <cstdint>
#include <span>
#include <vector>

namespace ga {

/// An inclusive index region [lo[d], hi[d]] per dimension (GA convention).
struct Patch {
  std::vector<std::int64_t> lo;
  std::vector<std::int64_t> hi;

  /// Elements covered (0 if any dimension is inverted).
  std::int64_t num_elems() const noexcept;

  /// Extent hi[d] - lo[d] + 1.
  std::int64_t extent(std::size_t d) const noexcept {
    return hi[d] - lo[d] + 1;
  }

  bool operator==(const Patch&) const = default;
};

/// Owner of one intersected sub-patch.
struct OwnedPatch {
  int proc = -1;  ///< absolute process id
  Patch patch;    ///< global coordinates
};

/// Immutable block distribution.
class Distribution {
 public:
  Distribution() = default;

  /// Distribute \p dims over \p nprocs processes. \p chunk (optional) gives
  /// per-dimension minimum block extents (GA chunk hints): a dimension is
  /// split into at most dims[d] / max(chunk[d], 1) blocks.
  ///
  /// \p ranks_per_node > 1 selects the node-aware mapping: grid cells are
  /// grouped into sub-bricks whose shape is factored from ranks_per_node,
  /// and each brick's cells map to *consecutive* process ids -- so spatially
  /// adjacent tiles land on ranks the platform co-locates on one node, and
  /// a patch access spanning neighboring tiles stays on the intra-node
  /// fast path. 0 or 1 keeps the classic row-major cell order.
  Distribution(std::span<const std::int64_t> dims, int nprocs,
               std::span<const std::int64_t> chunk = {},
               int ranks_per_node = 0);

  /// Irregular distribution (GA_Create_irregular's map): \p block_starts[d]
  /// lists the first index of every block in dimension d -- it must start
  /// at 0 and be strictly increasing below dims[d]. The number of owning
  /// processes is the product of the per-dimension block counts.
  Distribution(std::span<const std::int64_t> dims,
               std::span<const std::vector<std::int64_t>> block_starts);

  int ndim() const noexcept { return static_cast<int>(dims_.size()); }
  const std::vector<std::int64_t>& dims() const noexcept { return dims_; }

  /// Processor grid extents (product <= nprocs).
  const std::vector<int>& grid() const noexcept { return grid_; }

  /// Number of processes that own a block.
  int owning_procs() const noexcept;

  /// Owning process of element \p idx.
  int owner_of(std::span<const std::int64_t> idx) const;

  /// Block owned by \p proc; an empty patch (lo > hi in dim 0) when the
  /// process owns nothing.
  Patch patch_of(int proc) const;

  /// Decompose \p region into per-owner sub-patches, owner order
  /// deterministic (row-major grid order).
  std::vector<OwnedPatch> intersect(const Patch& region) const;

  /// Block index of \p x in dimension \p d.
  int block_index(std::size_t d, std::int64_t x) const;

  /// True when the node-aware cell-to-process mapping is active (i.e. the
  /// mapping differs from the row-major default).
  bool node_clustered() const noexcept { return !cell_to_proc_.empty(); }

  /// True when both distributions assign every element to the same owner
  /// (same shape, processor grid, and block boundaries). The owner-computes
  /// collectives use this to decide whether paired local blocks line up.
  bool operator==(const Distribution&) const = default;

 private:
  std::vector<std::int64_t> dims_;
  std::vector<int> grid_;
  // starts_[d][i] = first index of block i in dimension d; the sentinel
  // starts_[d][grid_[d]] == dims_[d] closes the last block.
  std::vector<std::vector<std::int64_t>> starts_;
  // Node-aware mode: cell_to_proc_[row-major cell index] = owning process
  // (with proc_to_cell_ the inverse). Empty = identity (row-major order).
  std::vector<int> cell_to_proc_;
  std::vector<int> proc_to_cell_;

  int proc_of_cell(int cell) const noexcept {
    return cell_to_proc_.empty() ? cell
                                 : cell_to_proc_[static_cast<std::size_t>(cell)];
  }
  int cell_of_proc(int proc) const noexcept {
    return proc_to_cell_.empty() ? proc
                                 : proc_to_cell_[static_cast<std::size_t>(proc)];
  }
};

}  // namespace ga

#endif  // GA_DISTRIBUTION_HPP
