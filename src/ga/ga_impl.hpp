#ifndef GA_GA_IMPL_HPP
#define GA_GA_IMPL_HPP

/// \file ga_impl.hpp
/// Internal shared state of a GlobalArray (used by the implementation
/// files ga.cpp / ga_gather.cpp; not part of the public API).

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/ga/distribution.hpp"
#include "src/ga/ga.hpp"
#include "src/mpisim/runtime.hpp"

namespace ga::detail {

struct GaImpl {
  std::string name;
  ElemType type = ElemType::dbl;
  std::vector<std::int64_t> dims;
  Distribution dist;
  std::vector<void*> bases;  ///< per absolute process id (null: no block)
  Patch my_patch;
  int access_depth = 0;

  /// Fault-tolerance policy fixed at create()/rebuild().
  Resilience resilience = Resilience::none;
  /// Distribution rank -> absolute process id. Empty = identity (the
  /// initial world distribution); rebuild() installs the survivor list.
  std::vector<int> procs;
  /// Primary block size in bytes per distribution rank. Replicated arrays
  /// append distribution rank r's replica to the allocation of its buddy
  /// (r + 1) % nprocs, at offset block_bytes[buddy].
  std::vector<std::size_t> block_bytes;
};

/// Number of distribution ranks the array is laid out over.
inline int dist_nprocs(const GaImpl& ga) noexcept {
  return ga.procs.empty() ? mpisim::nranks()
                          : static_cast<int>(ga.procs.size());
}

/// Absolute process id of distribution rank \p r.
inline int abs_proc(const GaImpl& ga, int r) noexcept {
  return ga.procs.empty() ? r : ga.procs[static_cast<std::size_t>(r)];
}

/// Distribution rank of absolute process \p proc, -1 if not in the map.
inline int dist_rank_of(const GaImpl& ga, int proc) noexcept {
  if (ga.procs.empty()) return proc < mpisim::nranks() ? proc : -1;
  for (std::size_t i = 0; i < ga.procs.size(); ++i)
    if (ga.procs[i] == proc) return static_cast<int>(i);
  return -1;
}

/// True when the array keeps buddy replicas and has enough ranks for the
/// buddy ring to be meaningful.
inline bool replicated(const GaImpl& ga) noexcept {
  return ga.resilience == Resilience::replicate && dist_nprocs(ga) >= 2;
}

/// Buddy (replica holder) of distribution rank \p r.
inline int buddy_of(const GaImpl& ga, int r) noexcept {
  return (r + 1) % dist_nprocs(ga);
}

/// Record a multi-owner GA access in armci::stats(): \p owners is the
/// access's fan-out, \p batches how many of its per-owner ops the
/// aggregation engine deferred (vs executed eagerly). No-op for owners < 2.
void count_multi_owner(int owners, std::uint64_t batches);

}  // namespace ga::detail

#endif  // GA_GA_IMPL_HPP
