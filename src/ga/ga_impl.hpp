#ifndef GA_GA_IMPL_HPP
#define GA_GA_IMPL_HPP

/// \file ga_impl.hpp
/// Internal shared state of a GlobalArray (used by the implementation
/// files ga.cpp / ga_gather.cpp; not part of the public API).

#include <cstdint>
#include <string>
#include <vector>

#include "src/ga/distribution.hpp"
#include "src/ga/ga.hpp"

namespace ga::detail {

struct GaImpl {
  std::string name;
  ElemType type = ElemType::dbl;
  std::vector<std::int64_t> dims;
  Distribution dist;
  std::vector<void*> bases;  ///< per world rank (null where no block)
  Patch my_patch;
  int access_depth = 0;
};

/// Record a multi-owner GA access in armci::stats(): \p owners is the
/// access's fan-out, \p batches how many of its per-owner ops the
/// aggregation engine deferred (vs executed eagerly). No-op for owners < 2.
void count_multi_owner(int owners, std::uint64_t batches);

}  // namespace ga::detail

#endif  // GA_GA_IMPL_HPP
