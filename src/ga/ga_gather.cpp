// Element-wise scatter/gather (GA_Scatter / GA_Gather / GA_Scatter_acc) and
// element-selection / element-wise-multiply collectives.
//
// Scatter/gather are the GA operations that map onto ARMCI's generalized
// I/O vector interface: subscripts are bucketed by owner and each owner
// receives one IOV descriptor whose segments are single elements -- the
// many-small-segments regime the paper's IOV methods (§VI-A) exist for.

#include <cstring>
#include <limits>
#include <map>

#include "src/armci/armci.hpp"
#include "src/ga/ga.hpp"
#include "src/ga/ga_impl.hpp"
#include "src/ga/layout.hpp"
#include "src/mpisim/comm.hpp"
#include "src/mpisim/error.hpp"
#include "src/mpisim/runtime.hpp"

namespace ga {

using mpisim::Errc;

namespace {

enum class ElemXfer { put, get, acc };

void element_xfer(detail::GaImpl& ga, ElemXfer kind, void* values,
                  std::span<const std::int64_t> subs, std::int64_t n,
                  const void* alpha) {
  const std::size_t nd = static_cast<std::size_t>(ga.dist.ndim());
  const std::size_t esz = elem_size(ga.type);
  if (subs.size() != static_cast<std::size_t>(n) * nd)
    mpisim::raise(Errc::invalid_argument,
                  "subscript array must hold n * ndim entries");

  // Bucket elements by owner, preserving per-owner order.
  std::map<int, armci::Giov> per_owner;
  for (std::int64_t i = 0; i < n; ++i) {
    const std::span<const std::int64_t> idx =
        subs.subspan(static_cast<std::size_t>(i) * nd, nd);
    const int proc = ga.dist.owner_of(idx);
    const Patch block = ga.dist.patch_of(proc);
    auto* remote =
        static_cast<std::uint8_t*>(ga.bases[static_cast<std::size_t>(proc)]) +
        detail::element_offset(block, idx, esz);
    auto* local = static_cast<std::uint8_t*>(values) +
                  static_cast<std::size_t>(i) * esz;
    armci::Giov& g = per_owner[proc];
    g.bytes = esz;
    if (kind == ElemXfer::get) {
      g.src.push_back(remote);
      g.dst.push_back(local);
    } else {
      g.src.push_back(local);
      g.dst.push_back(remote);
    }
  }

  const armci::AccType at = ga.type == ElemType::dbl
                                ? armci::AccType::float64
                                : armci::AccType::int64;
  for (auto& [proc, giov] : per_owner) {
    switch (kind) {
      case ElemXfer::put:
        armci::put_iov({&giov, 1}, proc);
        break;
      case ElemXfer::get:
        armci::get_iov({&giov, 1}, proc);
        break;
      case ElemXfer::acc:
        armci::acc_iov(at, alpha, {&giov, 1}, proc);
        break;
    }
  }
}

}  // namespace

void GlobalArray::scatter(const void* values,
                          std::span<const std::int64_t> subs,
                          std::int64_t n) {
  element_xfer(*impl_, ElemXfer::put, const_cast<void*>(values), subs, n,
               nullptr);
}

void GlobalArray::gather(void* values, std::span<const std::int64_t> subs,
                         std::int64_t n) const {
  element_xfer(*impl_, ElemXfer::get, values, subs, n, nullptr);
}

void GlobalArray::scatter_acc(const void* values,
                              std::span<const std::int64_t> subs,
                              std::int64_t n, const void* alpha) {
  if (alpha == nullptr)
    mpisim::raise(Errc::invalid_argument, "scatter_acc with null alpha");
  element_xfer(*impl_, ElemXfer::acc, const_cast<void*>(values), subs, n,
               alpha);
}

void GlobalArray::elem_multiply(const GlobalArray& a, const GlobalArray& b) {
  if (dims() != a.dims() || dims() != b.dims() || type() != ElemType::dbl ||
      a.type() != ElemType::dbl || b.type() != ElemType::dbl)
    mpisim::raise(Errc::invalid_argument,
                  "elem_multiply requires conformable double arrays");
  sync();
  Patch p, pa, pb;
  auto* pc = static_cast<double*>(access(p));
  auto* xa = static_cast<double*>(const_cast<GlobalArray&>(a).access(pa));
  auto* xb = static_cast<double*>(const_cast<GlobalArray&>(b).access(pb));
  if (pc != nullptr) {
    const std::int64_t n = p.num_elems();
    for (std::int64_t i = 0; i < n; ++i) pc[i] = xa[i] * xb[i];
  }
  if (xb != nullptr) const_cast<GlobalArray&>(b).release();
  if (xa != nullptr) const_cast<GlobalArray&>(a).release();
  if (pc != nullptr) release_update();
  sync();
}

GlobalArray::Selected GlobalArray::select_elem(SelectOp op) const {
  if (type() != ElemType::dbl)
    mpisim::raise(Errc::invalid_argument,
                  "select_elem requires a double array");
  sync();
  auto& self = const_cast<GlobalArray&>(*this);
  Patch p;
  const auto* blk = static_cast<const double*>(self.access(p));

  // Local candidate: best value plus its *flattened global* index, so ties
  // resolve deterministically toward the lowest index.
  struct Cand {
    double value;
    std::int64_t flat;
  };
  const std::size_t nd = static_cast<std::size_t>(ndim());
  Cand mine{op == SelectOp::max ? -std::numeric_limits<double>::infinity()
                                : std::numeric_limits<double>::infinity(),
            std::numeric_limits<std::int64_t>::max()};
  if (blk != nullptr) {
    std::vector<std::int64_t> idx(p.lo);
    const std::int64_t n = p.num_elems();
    for (std::int64_t i = 0; i < n; ++i) {
      const double v = blk[i];
      const bool better = op == SelectOp::max ? v > mine.value : v < mine.value;
      if (better) {
        std::int64_t flat = 0;
        for (std::size_t d = 0; d < nd; ++d) flat = flat * dims()[d] + idx[d];
        mine = {v, flat};
      }
      // Advance the n-d index within the block (row-major).
      for (std::size_t d = nd; d-- > 0;) {
        if (++idx[d] <= p.hi[d]) break;
        idx[d] = p.lo[d];
      }
    }
  }
  if (blk != nullptr) self.release();

  // Exchange all candidates; everyone picks the same winner.
  std::vector<Cand> all(static_cast<std::size_t>(mpisim::nranks()));
  mpisim::world().allgather(&mine, all.data(), sizeof(Cand));
  Cand best = mine;
  for (const Cand& c : all) {
    const bool better =
        op == SelectOp::max
            ? (c.value > best.value ||
               (c.value == best.value && c.flat < best.flat))
            : (c.value < best.value ||
               (c.value == best.value && c.flat < best.flat));
    if (better) best = c;
  }

  Selected out;
  out.value = best.value;
  out.subscript.assign(nd, 0);
  std::int64_t rem = best.flat;
  for (std::size_t d = nd; d-- > 0;) {
    out.subscript[d] = rem % dims()[d];
    rem /= dims()[d];
  }
  sync();
  return out;
}

}  // namespace ga
