// Element-wise scatter/gather (GA_Scatter / GA_Gather / GA_Scatter_acc) and
// element-selection / element-wise-multiply collectives.
//
// Scatter/gather are the GA operations that map onto ARMCI's generalized
// I/O vector interface: subscripts are bucketed by owner and each owner
// receives one IOV descriptor whose segments are single elements -- the
// many-small-segments regime the paper's IOV methods (§VI-A) exist for.

#include <cstring>
#include <limits>
#include <map>

#include "src/armci/armci.hpp"
#include "src/armci/state.hpp"
#include "src/ga/ga.hpp"
#include "src/ga/ga_impl.hpp"
#include "src/ga/layout.hpp"
#include "src/mpisim/comm.hpp"
#include "src/mpisim/error.hpp"
#include "src/mpisim/runtime.hpp"

namespace ga {

using mpisim::Errc;

namespace {

enum class ElemXfer { put, get, acc };

void element_xfer(detail::GaImpl& ga, ElemXfer kind, void* values,
                  std::span<const std::int64_t> subs, std::int64_t n,
                  const void* alpha) {
  const std::size_t nd = static_cast<std::size_t>(ga.dist.ndim());
  const std::size_t esz = elem_size(ga.type);
  if (n < 0)
    mpisim::raise(Errc::invalid_argument, "negative element count");
  if (subs.size() != static_cast<std::size_t>(n) * nd)
    mpisim::raise(Errc::invalid_argument,
                  "subscript array must hold n * ndim entries");

  // Resolve every element's owner and remote address up front. scatter
  // needs the full list before bucketing: with duplicate subscripts its
  // semantics are last-writer-wins (location consistency), so only the
  // final occurrence of each remote element may enter the IOV -- both the
  // conservative and the direct/deferred paths treat overlapping
  // destination segments in one descriptor as erroneous.
  std::vector<std::uint8_t*> remotes(static_cast<std::size_t>(n));
  std::vector<int> owners_of(static_cast<std::size_t>(n));  // dist ranks
  std::map<const void*, std::int64_t> last_writer;
  for (std::int64_t i = 0; i < n; ++i) {
    const std::span<const std::int64_t> idx =
        subs.subspan(static_cast<std::size_t>(i) * nd, nd);
    const int proc = ga.dist.owner_of(idx);
    const Patch block = ga.dist.patch_of(proc);
    auto* remote =
        static_cast<std::uint8_t*>(
            ga.bases[static_cast<std::size_t>(detail::abs_proc(ga, proc))]) +
        detail::element_offset(block, idx, esz);
    remotes[static_cast<std::size_t>(i)] = remote;
    owners_of[static_cast<std::size_t>(i)] = proc;
    if (kind == ElemXfer::put) last_writer[remote] = i;
  }

  // Buddy-replica address of an element (replicated arrays): same offset
  // within the owner's block, stored on the ring successor after its own
  // block. Null when the buddy holds no storage.
  const bool repl = detail::replicated(ga);
  auto replica_of = [&](int owner, std::uint8_t* remote) -> std::uint8_t* {
    const int buddy = detail::buddy_of(ga, owner);
    auto* bbase = static_cast<std::uint8_t*>(
        ga.bases[static_cast<std::size_t>(detail::abs_proc(ga, buddy))]);
    if (bbase == nullptr) return nullptr;
    auto* obase = static_cast<std::uint8_t*>(
        ga.bases[static_cast<std::size_t>(detail::abs_proc(ga, owner))]);
    return bbase + ga.block_bytes[static_cast<std::size_t>(buddy)] +
           static_cast<std::size_t>(remote - obase);
  };

  // Bucket elements by the absolute process each transfer is issued to,
  // preserving per-owner order. Duplicates are dropped only for scatter;
  // gather reads a duplicate into each of its (distinct) destinations, and
  // scatter_acc applies every contribution -- accumulation is commutative,
  // so all duplicates must land. Replicated arrays write through to the
  // buddy replica and fail gets over to it when the owner has died.
  std::map<int, armci::Giov> per_owner;
  bool observed_death = false;
  int dead_owner_abs = -1;
  for (std::int64_t i = 0; i < n; ++i) {
    auto* remote = remotes[static_cast<std::size_t>(i)];
    auto* local = static_cast<std::uint8_t*>(values) +
                  static_cast<std::size_t>(i) * esz;
    const int owner = owners_of[static_cast<std::size_t>(i)];
    const int owner_abs = detail::abs_proc(ga, owner);
    std::uint8_t* rep = repl ? replica_of(owner, remote) : nullptr;
    const int buddy_abs =
        repl ? detail::abs_proc(ga, detail::buddy_of(ga, owner)) : -1;
    const bool owner_dead = repl && armci::is_failed(owner_abs);
    const bool buddy_dead =
        repl && (rep == nullptr || armci::is_failed(buddy_abs));

    if (kind == ElemXfer::get) {
      armci::Giov& g = (owner_dead && !buddy_dead) ? per_owner[buddy_abs]
                                                   : per_owner[owner_abs];
      g.bytes = esz;
      g.src.push_back((owner_dead && !buddy_dead) ? rep : remote);
      g.dst.push_back(local);
      if (owner_dead && !buddy_dead) {
        ++armci::state().stats.failovers;
        observed_death = true;
        dead_owner_abs = owner_abs;
      }
      continue;
    }

    if (kind == ElemXfer::put && last_writer[remote] != i) continue;
    if (!owner_dead) {
      armci::Giov& g = per_owner[owner_abs];
      g.bytes = esz;
      g.src.push_back(local);
      g.dst.push_back(remote);
    }
    if (repl && !buddy_dead) {
      armci::Giov& g = per_owner[buddy_abs];
      g.bytes = esz;
      g.src.push_back(local);
      g.dst.push_back(rep);
      ++armci::state().stats.replica_writes;
    }
  }
  if (observed_death) {
    mpisim::SimCore& core = mpisim::ctx().core();
    std::lock_guard lk(core.mu());
    core.note_death_observed_locked(dead_owner_abs);
  }

  // One nonblocking IOV batch per owner, one covering wait: the
  // aggregation engine overlaps the per-owner epochs (see region_xfer).
  const armci::AccType at = ga.type == ElemType::dbl
                                ? armci::AccType::float64
                                : armci::AccType::int64;
  armci::Request req;
  int fanout = 0;
  std::uint64_t batches = 0;
  for (auto& [proc, giov] : per_owner) {
    armci::Request r;
    switch (kind) {
      case ElemXfer::put:
        r = armci::nb_put_iov({&giov, 1}, proc);
        break;
      case ElemXfer::get:
        r = armci::nb_get_iov({&giov, 1}, proc);
        break;
      case ElemXfer::acc:
        r = armci::nb_acc_iov(at, alpha, {&giov, 1}, proc);
        break;
    }
    if (!r.test()) ++batches;
    req.merge(r);
    ++fanout;
  }
  detail::count_multi_owner(fanout, batches);
  armci::wait(req);
}

}  // namespace

void GlobalArray::scatter(const void* values,
                          std::span<const std::int64_t> subs,
                          std::int64_t n) {
  element_xfer(*impl_, ElemXfer::put, const_cast<void*>(values), subs, n,
               nullptr);
}

void GlobalArray::gather(void* values, std::span<const std::int64_t> subs,
                         std::int64_t n) const {
  element_xfer(*impl_, ElemXfer::get, values, subs, n, nullptr);
}

void GlobalArray::scatter_acc(const void* values,
                              std::span<const std::int64_t> subs,
                              std::int64_t n, const void* alpha) {
  if (alpha == nullptr)
    mpisim::raise(Errc::invalid_argument, "scatter_acc with null alpha");
  element_xfer(*impl_, ElemXfer::acc, const_cast<void*>(values), subs, n,
               alpha);
}

void GlobalArray::elem_multiply(const GlobalArray& a, const GlobalArray& b) {
  if (dims() != a.dims() || dims() != b.dims() || type() != ElemType::dbl ||
      a.type() != ElemType::dbl || b.type() != ElemType::dbl)
    mpisim::raise(Errc::invalid_argument,
                  "elem_multiply requires conformable double arrays");
  sync();
  // Owner-computes only works in place when all three arrays assign this
  // block to this process; with a different chunk or irregular map the
  // paired local blocks cover different index ranges, so stage a's and b's
  // conformable patches one-sidedly instead. The gets happen before the
  // local-access epoch opens (holding a self-epoch while locking another
  // window is the §V-E1 trap).
  const bool aligned =
      impl_->dist == a.impl_->dist && impl_->dist == b.impl_->dist;
  std::vector<double> sa, sb;
  if (!aligned) {
    const std::int64_t n = impl_->my_patch.num_elems();
    if (n > 0) {
      sa.resize(static_cast<std::size_t>(n));
      sb.resize(static_cast<std::size_t>(n));
      a.get(impl_->my_patch, sa.data());
      b.get(impl_->my_patch, sb.data());
    }
  }
  Patch p, pa, pb;
  auto* pc = static_cast<double*>(access(p));
  if (aligned) {
    auto* xa = static_cast<double*>(const_cast<GlobalArray&>(a).access(pa));
    auto* xb = static_cast<double*>(const_cast<GlobalArray&>(b).access(pb));
    if (pc != nullptr) {
      const std::int64_t n = p.num_elems();
      for (std::int64_t i = 0; i < n; ++i) pc[i] = xa[i] * xb[i];
    }
    if (xb != nullptr) const_cast<GlobalArray&>(b).release();
    if (xa != nullptr) const_cast<GlobalArray&>(a).release();
  } else if (pc != nullptr) {
    const std::int64_t n = p.num_elems();
    for (std::int64_t i = 0; i < n; ++i) {
      const auto k = static_cast<std::size_t>(i);
      pc[i] = sa[k] * sb[k];
    }
  }
  if (pc != nullptr) release_update();
  sync();
}

GlobalArray::Selected GlobalArray::select_elem(SelectOp op) const {
  if (type() != ElemType::dbl)
    mpisim::raise(Errc::invalid_argument,
                  "select_elem requires a double array");
  sync();
  auto& self = const_cast<GlobalArray&>(*this);
  Patch p;
  const auto* blk = static_cast<const double*>(self.access(p));

  // Local candidate: best value plus its *flattened global* index, so ties
  // resolve deterministically toward the lowest index.
  struct Cand {
    double value;
    std::int64_t flat;
  };
  const std::size_t nd = static_cast<std::size_t>(ndim());
  Cand mine{op == SelectOp::max ? -std::numeric_limits<double>::infinity()
                                : std::numeric_limits<double>::infinity(),
            std::numeric_limits<std::int64_t>::max()};
  if (blk != nullptr) {
    std::vector<std::int64_t> idx(p.lo);
    const std::int64_t n = p.num_elems();
    for (std::int64_t i = 0; i < n; ++i) {
      const double v = blk[i];
      const bool better = op == SelectOp::max ? v > mine.value : v < mine.value;
      if (better) {
        std::int64_t flat = 0;
        for (std::size_t d = 0; d < nd; ++d) flat = flat * dims()[d] + idx[d];
        mine = {v, flat};
      }
      // Advance the n-d index within the block (row-major).
      for (std::size_t d = nd; d-- > 0;) {
        if (++idx[d] <= p.hi[d]) break;
        idx[d] = p.lo[d];
      }
    }
  }
  if (blk != nullptr) self.release();

  // Exchange all candidates; everyone picks the same winner.
  std::vector<Cand> all(static_cast<std::size_t>(mpisim::nranks()));
  mpisim::world().allgather(&mine, all.data(), sizeof(Cand));
  Cand best = mine;
  for (std::size_t r = 0; r < all.size(); ++r) {
    // A dead rank's slot was excused by the FT allgather and holds a
    // zero-initialized candidate; it must not win the selection.
    if (mpisim::ctx().core().is_failed(static_cast<int>(r))) continue;
    const Cand& c = all[r];
    const bool better =
        op == SelectOp::max
            ? (c.value > best.value ||
               (c.value == best.value && c.flat < best.flat))
            : (c.value < best.value ||
               (c.value == best.value && c.flat < best.flat));
    if (better) best = c;
  }

  Selected out;
  out.value = best.value;
  out.subscript.assign(nd, 0);
  std::int64_t rem = best.flat;
  for (std::size_t d = nd; d-- > 0;) {
    out.subscript[d] = rem % dims()[d];
    rem /= dims()[d];
  }
  sync();
  return out;
}

}  // namespace ga
