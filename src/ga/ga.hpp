#ifndef GA_GA_HPP
#define GA_GA_HPP

/// \file ga.hpp
/// Global Arrays: distributed, shared, multidimensional arrays over ARMCI
/// (paper §II-B).
///
/// A GlobalArray aggregates the memory of all processes into one n-d array
/// accessed through one-sided put/get/accumulate on high-level index
/// ranges; the runtime decomposes each access into per-owner strided ARMCI
/// operations (paper Fig. 2). Locality is exposed through distribution
/// queries and direct access to the local block; parallel math routines
/// (zero/fill/scale/add/dot/dgemm) and an atomic read-increment (the
/// "nxtval" dynamic load-balancing primitive of NWChem) round out the
/// interface the proxy application needs.
///
/// Conventions: C row-major order, *inclusive* lo/hi index ranges as in the
/// GA API, and element types double or int64.

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/armci/types.hpp"
#include "src/ga/distribution.hpp"

namespace ga {

/// Element type of a global array.
enum class ElemType {
  dbl,    ///< double (GA C_DBL)
  int64,  ///< std::int64_t (GA C_LONG)
};

/// Bytes per element.
std::size_t elem_size(ElemType t) noexcept;

/// Cell-to-owner mapping policy for create().
enum class NodeMapping {
  linear,      ///< classic GA order: row-major grid cell index = owner
  node_aware,  ///< cluster adjacent tiles on ranks the platform co-locates
};

/// Fault-tolerance policy for create() (survivable mode,
/// mpisim::FaultPlan::survivable).
enum class Resilience {
  none,       ///< classic GA: an owner's death loses its block
  replicate,  ///< buddy replication: every block is mirrored on the next
              ///< rank in the distribution ring; puts/accumulates write
              ///< through to the replica and gets transparently fail over
              ///< to it when the owner has died
};

namespace detail {
struct GaImpl;
}

/// Handle to a distributed array. Copies are cheap and refer to the same
/// array. All collective members must be called by every process.
class GlobalArray {
 public:
  GlobalArray() = default;

  /// Collective: create an array of shape \p dims distributed blockwise
  /// over all processes. \p chunk optionally gives per-dimension minimum
  /// block extents (GA chunk hints). \p mapping selects how grid cells map
  /// to owners: NodeMapping::node_aware clusters adjacent tiles onto ranks
  /// the platform's node map co-locates, so neighborhood accesses ride the
  /// intra-node fast path (no-op when every rank is its own node).
  static GlobalArray create(const std::string& name,
                            std::span<const std::int64_t> dims, ElemType type,
                            std::span<const std::int64_t> chunk = {},
                            NodeMapping mapping = NodeMapping::linear,
                            Resilience resilience = Resilience::none);

  /// Collective: like create() but with an explicit irregular distribution
  /// (GA_Create_irregular): \p block_starts[d] lists the first index of
  /// every block in dimension d. The product of the per-dimension block
  /// counts must not exceed the number of processes.
  static GlobalArray create_irregular(
      const std::string& name, std::span<const std::int64_t> dims,
      ElemType type, std::span<const std::vector<std::int64_t>> block_starts);

  /// Collective: like create(), copying shape/type/distribution from \p g.
  static GlobalArray duplicate(const std::string& name, const GlobalArray& g);

  /// Collective: free the array.
  void destroy();

  bool valid() const noexcept { return impl_ != nullptr; }

  // ---- Shape and distribution queries ----

  const std::string& name() const;
  int ndim() const;
  const std::vector<std::int64_t>& dims() const;
  ElemType type() const;

  /// Block owned by \p proc (empty patch if it owns nothing).
  Patch distribution(int proc) const;

  /// Owner of element \p subscript (GA_Locate).
  int locate(std::span<const std::int64_t> subscript) const;

  /// Owners intersecting [lo, hi] (GA_Locate_region).
  std::vector<OwnedPatch> locate_region(const Patch& region) const;

  // ---- One-sided access (GA_Put / GA_Get / GA_Acc) ----

  /// Copy the local buffer \p buf into the region [lo, hi]. \p ld gives the
  /// buffer's leading dimensions: ld[k] is the buffer extent (in elements)
  /// of dimension k+1, for k in [0, ndim-2); empty means the buffer is
  /// exactly the patch shape.
  void put(const Patch& region, const void* buf,
           std::span<const std::int64_t> ld = {});

  /// Copy the region [lo, hi] into the local buffer \p buf.
  void get(const Patch& region, void* buf,
           std::span<const std::int64_t> ld = {}) const;

  /// Nonblocking get (GA_NbGet): issue the per-owner reads through the
  /// ARMCI aggregation engine and return the covering handle;
  /// armci::wait() on it before touching \p buf. Lets a caller overlap a
  /// tile fetch with compute (the CCSD driver's double buffering).
  armci::Request nb_get(const Patch& region, void* buf,
                        std::span<const std::int64_t> ld = {}) const;

  /// array[region] += alpha * buf (element type of the array; \p alpha
  /// points to one element).
  void acc(const Patch& region, const void* buf, const void* alpha,
           std::span<const std::int64_t> ld = {});

  // ---- Direct local access (GA_Access / GA_Release, paper §V-E) ----

  /// Begin direct access to the calling process's block. Returns the block
  /// pointer and fills \p patch with its global coordinates; null if this
  /// process owns nothing. Must be paired with release()/release_update().
  void* access(Patch& patch);

  /// End direct read-only access.
  void release();

  /// End direct access that modified the block.
  void release_update();

  // ---- Element-wise scatter/gather (GA_Scatter / GA_Gather) ----

  /// Write \p n individual elements: values[i] goes to the element at
  /// subscript subs[i*ndim .. i*ndim+ndim). Decomposes into one ARMCI
  /// I/O-vector operation per owner.
  void scatter(const void* values, std::span<const std::int64_t> subs,
               std::int64_t n);

  /// Read \p n individual elements into \p values.
  void gather(void* values, std::span<const std::int64_t> subs,
              std::int64_t n) const;

  /// array[subs[i]] += alpha * values[i] (GA_Scatter_acc).
  void scatter_acc(const void* values, std::span<const std::int64_t> subs,
                   std::int64_t n, const void* alpha);

  // ---- Atomic element update (GA_Read_inc) ----

  /// Atomically add \p inc to the int64 element at \p subscript and return
  /// its previous value. Array type must be int64.
  std::int64_t read_inc(std::span<const std::int64_t> subscript,
                        std::int64_t inc);

  // ---- Collective math (all processes must call) ----

  void zero();
  void fill(const void* value);

  /// this = alpha * this.
  void scale(const void* alpha);

  /// this = alpha * a + beta * b (identical shape/type/distribution).
  void add(const void* alpha, const GlobalArray& a, const void* beta,
           const GlobalArray& b);

  /// Element-wise copy into \p dst (identical shape/type).
  void copy_to(GlobalArray& dst) const;

  /// Dot product over all elements (double arrays).
  double ddot(const GlobalArray& other) const;

  /// this = a .* b element-wise (GA_Elem_multiply; double arrays with
  /// identical shape/distribution).
  void elem_multiply(const GlobalArray& a, const GlobalArray& b);

  /// Value and subscript of the globally largest (or smallest) element
  /// (GA_Select_elem; double arrays). Ties break toward the lowest
  /// flattened index, so the result is deterministic. Collective.
  struct Selected {
    double value = 0.0;
    std::vector<std::int64_t> subscript;
  };
  enum class SelectOp { min, max };
  Selected select_elem(SelectOp op) const;

  /// this = transpose(a) for 2-d arrays of the same element type with
  /// dims reversed (GA_Transpose). Owner-computes: each process fetches
  /// the transposed patch of \p a one-sidedly and writes its own block.
  void transpose_from(const GlobalArray& a);

  /// Collective barrier + fence (GA_Sync).
  void sync() const;

  /// Survivable-mode recovery (collective over the *surviving* processes):
  /// redistribute the array over the live process set. Each survivor
  /// fetches its new block from the old array -- reading through buddy
  /// replicas where an owner died -- into a fresh allocation, then the old
  /// storage is released. Requires replication (or no dead owners) for the
  /// content to be complete; all copies of the handle observe the rebuilt
  /// array.
  void rebuild();

  /// Matrix multiply C = alpha * op(A) * op(B) + beta * C for 2-d double
  /// arrays, transa/transb in {'n', 't'} (GA_Dgemm, owner-computes with
  /// blocked one-sided gets).
  static void dgemm(char transa, char transb, double alpha,
                    const GlobalArray& a, const GlobalArray& b, double beta,
                    GlobalArray& c);

 private:
  explicit GlobalArray(std::shared_ptr<detail::GaImpl> impl);

  std::shared_ptr<detail::GaImpl> impl_;
};

/// Shared atomic counter for dynamic load balancing (NWChem's nxtval).
/// Hosted on process 0; next() is an ARMCI fetch-and-add.
class AtomicCounter {
 public:
  AtomicCounter() = default;

  /// Collective: create with initial value 0.
  static AtomicCounter create();

  /// Collective: destroy.
  void destroy();

  /// Atomically fetch the current value and add \p inc.
  std::int64_t next(std::int64_t inc = 1);

  /// Collective: reset to \p value.
  void reset(std::int64_t value);

  bool valid() const noexcept { return !bases_.empty(); }

 private:
  std::vector<void*> bases_;
};

}  // namespace ga

#endif  // GA_GA_HPP
