#ifndef GA_LAYOUT_HPP
#define GA_LAYOUT_HPP

/// \file layout.hpp
/// Local-block memory layout helpers shared by the GA implementation
/// files: every process stores its block in C row-major order.

#include <cstdint>
#include <span>
#include <vector>

#include "src/ga/distribution.hpp"

namespace ga::detail {

/// Byte strides (row-major) for a block of the given extents.
inline std::vector<std::size_t> row_major_strides(
    std::span<const std::int64_t> ext, std::size_t esz) {
  const std::size_t nd = ext.size();
  std::vector<std::size_t> s(nd);
  std::size_t acc = esz;
  for (std::size_t d = nd; d-- > 0;) {
    s[d] = acc;
    acc *= static_cast<std::size_t>(ext[d]);
  }
  return s;
}

/// Byte offset of global element \p idx within the owner block \p block.
inline std::size_t element_offset(const Patch& block,
                                  std::span<const std::int64_t> idx,
                                  std::size_t esz) {
  const std::size_t nd = idx.size();
  std::vector<std::int64_t> ext(nd);
  for (std::size_t d = 0; d < nd; ++d) ext[d] = block.extent(d);
  const std::vector<std::size_t> strides = row_major_strides(ext, esz);
  std::size_t off = 0;
  for (std::size_t d = 0; d < nd; ++d)
    off += static_cast<std::size_t>(idx[d] - block.lo[d]) * strides[d];
  return off;
}

}  // namespace ga::detail

#endif  // GA_LAYOUT_HPP
