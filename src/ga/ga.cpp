#include "src/ga/ga.hpp"

#include <algorithm>
#include <cstring>

#include "src/armci/armci.hpp"
#include "src/armci/state.hpp"
#include "src/ga/ga_impl.hpp"
#include "src/ga/layout.hpp"
#include "src/mpisim/error.hpp"
#include "src/mpisim/runtime.hpp"

namespace ga {

using mpisim::Errc;

std::size_t elem_size(ElemType t) noexcept {
  return t == ElemType::dbl ? sizeof(double) : sizeof(std::int64_t);
}

using detail::GaImpl;

GlobalArray::GlobalArray(std::shared_ptr<GaImpl> impl)
    : impl_(std::move(impl)) {}

namespace {

/// Shared tail of the create() variants: compute the per-rank block sizes,
/// allocate the local block (plus the buddy replica for replicated arrays)
/// and zero it. Collective over the world; in survivable mode dead ranks
/// are excused by the FT collectives underneath.
std::shared_ptr<GaImpl> finish_create(std::shared_ptr<GaImpl> impl) {
  const int nprocs = detail::dist_nprocs(*impl);
  const std::size_t esz = elem_size(impl->type);
  impl->block_bytes.assign(static_cast<std::size_t>(nprocs), 0);
  for (int r = 0; r < nprocs; ++r)
    impl->block_bytes[static_cast<std::size_t>(r)] =
        static_cast<std::size_t>(impl->dist.patch_of(r).num_elems()) * esz;

  const int me = detail::dist_rank_of(*impl, mpisim::rank());
  if (me >= 0) {
    impl->my_patch = impl->dist.patch_of(me);
  } else {
    const std::size_t nd = static_cast<std::size_t>(impl->dist.ndim());
    impl->my_patch.lo.assign(nd, 0);
    impl->my_patch.hi.assign(nd, -1);  // empty: not in the distribution map
  }

  std::size_t bytes =
      me >= 0 ? impl->block_bytes[static_cast<std::size_t>(me)] : 0;
  if (detail::replicated(*impl) && me >= 0) {
    // This rank is the buddy of its ring predecessor: append its replica.
    const int pred = (me + nprocs - 1) % nprocs;
    bytes += impl->block_bytes[static_cast<std::size_t>(pred)];
  }
  impl->bases = armci::malloc_world(bytes);
  if (bytes > 0)
    std::memset(impl->bases[static_cast<std::size_t>(mpisim::rank())], 0,
                bytes);
  armci::barrier();
  return impl;
}

}  // namespace

GlobalArray GlobalArray::create(const std::string& name,
                                std::span<const std::int64_t> dims,
                                ElemType type,
                                std::span<const std::int64_t> chunk,
                                NodeMapping mapping, Resilience resilience) {
  auto impl = std::make_shared<GaImpl>();
  impl->name = name;
  impl->type = type;
  impl->dims.assign(dims.begin(), dims.end());
  impl->dist = Distribution(dims, mpisim::nranks(), chunk,
                            mapping == NodeMapping::node_aware
                                ? mpisim::model().ranks_per_node()
                                : 0);
  impl->resilience = resilience;
  return GlobalArray(finish_create(std::move(impl)));
}

GlobalArray GlobalArray::create_irregular(
    const std::string& name, std::span<const std::int64_t> dims,
    ElemType type, std::span<const std::vector<std::int64_t>> block_starts) {
  auto impl = std::make_shared<GaImpl>();
  impl->name = name;
  impl->type = type;
  impl->dims.assign(dims.begin(), dims.end());
  impl->dist = Distribution(dims, block_starts);
  if (impl->dist.owning_procs() > mpisim::nranks())
    mpisim::raise(Errc::invalid_argument,
                  "irregular distribution needs more processes than exist");
  return GlobalArray(finish_create(std::move(impl)));
}

GlobalArray GlobalArray::duplicate(const std::string& name,
                                   const GlobalArray& g) {
  auto impl = std::make_shared<GaImpl>();
  impl->name = name;
  impl->type = g.impl_->type;
  impl->dims = g.impl_->dims;
  impl->dist = g.impl_->dist;  // identical distribution, irregular or not
  impl->resilience = g.impl_->resilience;
  impl->procs = g.impl_->procs;
  return GlobalArray(finish_create(std::move(impl)));
}

void GlobalArray::destroy() {
  if (!impl_) return;
  armci::barrier();
  armci::free(impl_->bases[static_cast<std::size_t>(mpisim::rank())]);
  impl_.reset();
}

const std::string& GlobalArray::name() const { return impl_->name; }
int GlobalArray::ndim() const { return impl_->dist.ndim(); }
const std::vector<std::int64_t>& GlobalArray::dims() const {
  return impl_->dims;
}
ElemType GlobalArray::type() const { return impl_->type; }

Patch GlobalArray::distribution(int proc) const {
  const int r = detail::dist_rank_of(*impl_, proc);
  if (r >= 0) return impl_->dist.patch_of(r);
  const std::size_t nd = static_cast<std::size_t>(impl_->dist.ndim());
  Patch empty;
  empty.lo.assign(nd, 0);
  empty.hi.assign(nd, -1);
  return empty;
}

int GlobalArray::locate(std::span<const std::int64_t> subscript) const {
  return detail::abs_proc(*impl_, impl_->dist.owner_of(subscript));
}

std::vector<OwnedPatch> GlobalArray::locate_region(const Patch& region) const {
  std::vector<OwnedPatch> out = impl_->dist.intersect(region);
  for (OwnedPatch& op : out) op.proc = detail::abs_proc(*impl_, op.proc);
  return out;
}

namespace detail {

void count_multi_owner(int owners, std::uint64_t batches) {
  if (owners < 2) return;
  armci::Stats& s = armci::state().stats;
  ++s.ga_multi_owner_ops;
  s.ga_owner_fanout += static_cast<std::uint64_t>(owners);
  s.ga_nb_batches += batches;
}

}  // namespace detail

namespace {

enum class XferKind { put, get, acc };

/// Decompose a region access into one ARMCI strided op per owner
/// (paper Fig. 2 / §VI-C). The ops go through the nonblocking aggregation
/// engine — one deferred batch per owner — and the returned covering
/// handle completes them all at one point, so the engine can overlap the
/// per-owner epochs instead of round-tripping serially (DART-style target
/// pipelining). region_xfer() waits on the handle to keep put/get/acc
/// blocking; nb_get() hands it to the caller.
armci::Request region_xfer_issue(GaImpl& ga, XferKind kind,
                                 const Patch& region, void* buf,
                                 std::span<const std::int64_t> ld,
                                 const void* alpha) {
  const std::size_t nd = static_cast<std::size_t>(ga.dist.ndim());
  const std::size_t esz = elem_size(ga.type);
  if (region.lo.size() != nd || region.hi.size() != nd)
    mpisim::raise(Errc::invalid_argument, "region rank mismatch");
  if (!ld.empty() && ld.size() != nd - 1)
    mpisim::raise(Errc::invalid_argument, "ld must have ndim-1 entries");

  // Byte strides of the caller's buffer.
  std::vector<std::int64_t> buf_ext(nd);
  for (std::size_t d = 0; d < nd; ++d) buf_ext[d] = region.extent(d);
  for (std::size_t k = 0; k + 1 < nd; ++k) {
    if (!ld.empty()) {
      if (ld[k] < buf_ext[k + 1])
        mpisim::raise(Errc::invalid_argument,
                      "ld smaller than the patch extent");
      buf_ext[k + 1] = ld[k];
    }
  }
  const std::vector<std::size_t> buf_strides =
      detail::row_major_strides(buf_ext, esz);

  armci::Request req;
  int owners = 0;
  std::uint64_t batches = 0;
  const bool repl = detail::replicated(ga);
  for (const OwnedPatch& op : ga.dist.intersect(region)) {
    const int owner_abs = detail::abs_proc(ga, op.proc);
    const Patch block = ga.dist.patch_of(op.proc);
    std::vector<std::int64_t> blk_ext(nd);
    for (std::size_t d = 0; d < nd; ++d) blk_ext[d] = block.extent(d);
    const std::vector<std::size_t> rem_strides =
        detail::row_major_strides(blk_ext, esz);

    // Remote address of the sub-patch start within the owner's block.
    std::size_t rem_off = 0;
    std::size_t loc_off = 0;
    for (std::size_t d = 0; d < nd; ++d) {
      rem_off += static_cast<std::size_t>(op.patch.lo[d] - block.lo[d]) *
                 rem_strides[d];
      loc_off += static_cast<std::size_t>(op.patch.lo[d] - region.lo[d]) *
                 buf_strides[d];
    }
    auto* remote =
        static_cast<std::uint8_t*>(
            ga.bases[static_cast<std::size_t>(owner_abs)]) +
        rem_off;
    auto* local = static_cast<std::uint8_t*>(buf) + loc_off;

    // Buddy replica of this block (replicated arrays): same layout, stored
    // on the ring successor after its own block.
    const int buddy = repl ? detail::buddy_of(ga, op.proc) : -1;
    const int buddy_abs = repl ? detail::abs_proc(ga, buddy) : -1;
    std::uint8_t* replica = nullptr;
    if (repl && ga.bases[static_cast<std::size_t>(buddy_abs)] != nullptr)
      replica = static_cast<std::uint8_t*>(
                    ga.bases[static_cast<std::size_t>(buddy_abs)]) +
                ga.block_bytes[static_cast<std::size_t>(buddy)] + rem_off;

    // ARMCI strided notation: count[0] in bytes over the innermost
    // dimension; stride level i covers dimension nd-2-i.
    armci::StridedSpec spec;
    spec.stride_levels = static_cast<int>(nd) - 1;
    spec.count.resize(nd);
    spec.count[0] = static_cast<std::size_t>(op.patch.extent(nd - 1)) * esz;
    for (std::size_t i = 1; i < nd; ++i)
      spec.count[i] = static_cast<std::size_t>(op.patch.extent(nd - 1 - i));
    spec.src_strides.resize(nd - 1);
    spec.dst_strides.resize(nd - 1);
    for (std::size_t i = 0; i + 1 < nd; ++i) {
      const std::size_t d = nd - 2 - i;
      const std::size_t local_stride = buf_strides[d];
      const std::size_t remote_stride = rem_strides[d];
      if (kind == XferKind::get) {
        spec.src_strides[i] = remote_stride;
        spec.dst_strides[i] = local_stride;
      } else {
        spec.src_strides[i] = local_stride;
        spec.dst_strides[i] = remote_stride;
      }
    }

    const armci::AccType at = ga.type == ElemType::dbl
                                  ? armci::AccType::float64
                                  : armci::AccType::int64;
    const bool owner_dead = repl && armci::is_failed(owner_abs);
    const bool buddy_dead =
        repl && (replica == nullptr || armci::is_failed(buddy_abs));

    if (kind == XferKind::get) {
      armci::Request r;
      if (owner_dead && !buddy_dead) {
        // Transparent failover: serve the read from the buddy replica and
        // record the detection latency of the owner's death.
        r = armci::nb_get_strided(replica, local, spec, buddy_abs);
        ++armci::state().stats.failovers;
        mpisim::SimCore& core = mpisim::ctx().core();
        std::lock_guard lk(core.mu());
        core.note_death_observed_locked(owner_abs);
      } else {
        // Owner alive (or nothing to fail over to: surface the error the
        // way a non-replicated access would).
        r = armci::nb_get_strided(remote, local, spec, owner_abs);
      }
      if (!r.test()) ++batches;
      req.merge(r);
      ++owners;
      continue;
    }

    // put/acc: primary write unless the owner is gone, plus the
    // write-through replica copy that keeps failover reads exact.
    if (!owner_dead) {
      armci::Request r;
      if (kind == XferKind::put)
        r = armci::nb_put_strided(local, remote, spec, owner_abs);
      else
        r = armci::nb_acc_strided(at, alpha, local, remote, spec, owner_abs);
      if (!r.test()) ++batches;  // deferred, not eager: one per-owner batch
      req.merge(r);
    }
    if (repl && !buddy_dead) {
      armci::Request r;
      if (kind == XferKind::put)
        r = armci::nb_put_strided(local, replica, spec, buddy_abs);
      else
        r = armci::nb_acc_strided(at, alpha, local, replica, spec, buddy_abs);
      if (!r.test()) ++batches;
      req.merge(r);
      ++armci::state().stats.replica_writes;
    }
    ++owners;
  }
  detail::count_multi_owner(owners, batches);
  return req;
}

/// Blocking region access: issue through the engine, complete at one
/// covering wait (the engine overlaps the per-owner epochs there).
void region_xfer(GaImpl& ga, XferKind kind, const Patch& region, void* buf,
                 std::span<const std::int64_t> ld, const void* alpha) {
  armci::Request req = region_xfer_issue(ga, kind, region, buf, ld, alpha);
  armci::wait(req);
}

}  // namespace

void GlobalArray::put(const Patch& region, const void* buf,
                      std::span<const std::int64_t> ld) {
  region_xfer(*impl_, XferKind::put, region, const_cast<void*>(buf), ld,
              nullptr);
}

void GlobalArray::get(const Patch& region, void* buf,
                      std::span<const std::int64_t> ld) const {
  region_xfer(*impl_, XferKind::get, region, buf, ld, nullptr);
}

armci::Request GlobalArray::nb_get(const Patch& region, void* buf,
                                   std::span<const std::int64_t> ld) const {
  return region_xfer_issue(*impl_, XferKind::get, region, buf, ld, nullptr);
}

void GlobalArray::acc(const Patch& region, const void* buf, const void* alpha,
                      std::span<const std::int64_t> ld) {
  if (alpha == nullptr)
    mpisim::raise(Errc::invalid_argument, "acc with null alpha");
  region_xfer(*impl_, XferKind::acc, region, const_cast<void*>(buf), ld,
              alpha);
}

void* GlobalArray::access(Patch& patch) {
  GaImpl& ga = *impl_;
  patch = ga.my_patch;
  void* base = ga.bases[static_cast<std::size_t>(mpisim::rank())];
  if (base == nullptr) return nullptr;
  if (ga.access_depth == 0) armci::access_begin(base);
  ++ga.access_depth;
  return base;
}

void GlobalArray::release() {
  GaImpl& ga = *impl_;
  void* base = ga.bases[static_cast<std::size_t>(mpisim::rank())];
  if (base == nullptr) return;
  if (ga.access_depth <= 0)
    mpisim::raise(Errc::invalid_argument, "release without access");
  if (--ga.access_depth == 0) armci::access_end(base);
}

void GlobalArray::release_update() { release(); }

std::int64_t GlobalArray::read_inc(std::span<const std::int64_t> subscript,
                                   std::int64_t inc) {
  GaImpl& ga = *impl_;
  if (ga.type != ElemType::int64)
    mpisim::raise(Errc::invalid_argument, "read_inc requires an int64 array");
  const int proc = ga.dist.owner_of(subscript);
  const int proc_abs = detail::abs_proc(ga, proc);
  const Patch block = ga.dist.patch_of(proc);
  const std::size_t nd = static_cast<std::size_t>(ga.dist.ndim());
  std::vector<std::int64_t> ext(nd);
  for (std::size_t d = 0; d < nd; ++d) ext[d] = block.extent(d);
  const std::vector<std::size_t> strides =
      detail::row_major_strides(ext, sizeof(std::int64_t));
  std::size_t off = 0;
  for (std::size_t d = 0; d < nd; ++d)
    off += static_cast<std::size_t>(subscript[d] - block.lo[d]) * strides[d];
  auto* remote = static_cast<std::uint8_t*>(
                     ga.bases[static_cast<std::size_t>(proc_abs)]) +
                 off;
  std::int64_t old = 0;
  armci::rmw(armci::RmwOp::fetch_and_add_long, &old, remote, inc, proc_abs);
  return old;
}

void GlobalArray::sync() const { armci::barrier(); }

void GlobalArray::rebuild() {
  GaImpl& old = *impl_;
  if (old.access_depth != 0)
    mpisim::raise(Errc::invalid_argument,
                  "rebuild with a direct-access epoch open");
  // Settle in-flight traffic and agree on the survivor set. The FT world
  // barrier excuses dead ranks, so every survivor leaves it having
  // observed at least the deaths that preceded its entry.
  armci::barrier();
  const std::vector<int> dead = armci::failed_ranks();
  std::vector<int> live;
  for (int r = 0; r < mpisim::nranks(); ++r)
    if (std::find(dead.begin(), dead.end(), r) == dead.end())
      live.push_back(r);

  // New distribution over the survivors, same policy as create().
  auto fresh = std::make_shared<GaImpl>();
  fresh->name = old.name;
  fresh->type = old.type;
  fresh->dims = old.dims;
  fresh->dist = Distribution(old.dims, static_cast<int>(live.size()));
  fresh->resilience = old.resilience;
  if (static_cast<int>(live.size()) != mpisim::nranks()) fresh->procs = live;
  fresh = finish_create(std::move(fresh));

  // Owner-computes copy: every survivor reads its new block from the old
  // array -- failing over to buddy replicas where the owner died -- and
  // writes it through the new array's put path, which also populates the
  // new replicas.
  GlobalArray fresh_handle(fresh);
  if (fresh->my_patch.num_elems() > 0) {
    std::vector<std::uint8_t> tmp(
        static_cast<std::size_t>(fresh->my_patch.num_elems()) *
        elem_size(fresh->type));
    region_xfer(old, XferKind::get, fresh->my_patch, tmp.data(), {}, nullptr);
    fresh_handle.put(fresh->my_patch, tmp.data());
  }
  armci::barrier();

  // Release the old storage and swing every handle copy to the new state.
  armci::free(old.bases[static_cast<std::size_t>(mpisim::rank())]);
  *impl_ = std::move(*fresh);
  armci::barrier();
}

// ---------------------------------------------------------------------------
// AtomicCounter
// ---------------------------------------------------------------------------

AtomicCounter AtomicCounter::create() {
  AtomicCounter c;
  c.bases_ =
      armci::malloc_world(mpisim::rank() == 0 ? sizeof(std::int64_t) : 0);
  if (mpisim::rank() == 0) *static_cast<std::int64_t*>(c.bases_[0]) = 0;
  armci::barrier();
  return c;
}

void AtomicCounter::destroy() {
  armci::barrier();
  armci::free(bases_[static_cast<std::size_t>(mpisim::rank())]);
  bases_.clear();
}

std::int64_t AtomicCounter::next(std::int64_t inc) {
  std::int64_t old = 0;
  armci::rmw(armci::RmwOp::fetch_and_add_long, &old, bases_[0], inc, 0);
  return old;
}

void AtomicCounter::reset(std::int64_t value) {
  armci::barrier();
  if (mpisim::rank() == 0) {
    armci::access_begin(bases_[0]);
    *static_cast<std::int64_t*>(bases_[0]) = value;
    armci::access_end(bases_[0]);
  }
  armci::barrier();
}

}  // namespace ga
