#include "src/ga/distribution.hpp"

#include <algorithm>

#include "src/mpisim/error.hpp"

namespace ga {

using mpisim::Errc;

std::int64_t Patch::num_elems() const noexcept {
  std::int64_t n = 1;
  for (std::size_t d = 0; d < lo.size(); ++d) {
    if (hi[d] < lo[d]) return 0;
    n *= hi[d] - lo[d] + 1;
  }
  return n;
}

namespace {

/// Prime factors of n, descending.
std::vector<int> prime_factors_desc(int n) {
  std::vector<int> f;
  for (int p = 2; p * p <= n; ++p)
    while (n % p == 0) {
      f.push_back(p);
      n /= p;
    }
  if (n > 1) f.push_back(n);
  std::sort(f.rbegin(), f.rend());
  return f;
}

}  // namespace

Distribution::Distribution(std::span<const std::int64_t> dims, int nprocs,
                           std::span<const std::int64_t> chunk,
                           int ranks_per_node) {
  if (dims.empty()) mpisim::raise(Errc::invalid_argument, "0-d array");
  if (nprocs < 1) mpisim::raise(Errc::invalid_argument, "nprocs < 1");
  for (std::int64_t d : dims)
    if (d <= 0) mpisim::raise(Errc::invalid_argument, "nonpositive dimension");
  if (!chunk.empty() && chunk.size() != dims.size())
    mpisim::raise(Errc::invalid_argument, "chunk/dims rank mismatch");

  dims_.assign(dims.begin(), dims.end());
  const std::size_t nd = dims_.size();
  grid_.assign(nd, 1);

  // Per-dimension cap on the number of blocks (chunk hints; GA semantics:
  // blocks are at least `chunk[d]` wide).
  std::vector<std::int64_t> cap(nd);
  for (std::size_t d = 0; d < nd; ++d) {
    const std::int64_t min_block =
        chunk.empty() ? 1 : std::max<std::int64_t>(chunk[d], 1);
    cap[d] = std::max<std::int64_t>(1, dims_[d] / min_block);
  }

  // Greedy grid factorization (MPI_Dims_create flavor): hand each prime
  // factor of nprocs to the dimension with the largest per-block extent
  // that can still accept it.
  for (int f : prime_factors_desc(nprocs)) {
    std::size_t best = nd;
    double best_len = -1.0;
    for (std::size_t d = 0; d < nd; ++d) {
      if (static_cast<std::int64_t>(grid_[d]) * f > cap[d]) continue;
      const double len = static_cast<double>(dims_[d]) / grid_[d];
      if (len > best_len) {
        best_len = len;
        best = d;
      }
    }
    if (best == nd) continue;  // factor unusable: some procs own nothing
    grid_[best] *= f;
  }

  starts_.resize(nd);
  for (std::size_t d = 0; d < nd; ++d) {
    const int g = grid_[d];
    starts_[d].resize(static_cast<std::size_t>(g) + 1);
    for (int i = 0; i <= g; ++i)
      starts_[d][static_cast<std::size_t>(i)] =
          dims_[d] * i / g;
  }

  // Node-aware cell-to-process mapping: factor ranks_per_node into a
  // sub-brick shape local[d] (each local[d] dividing grid_[d]), then map
  // every brick of spatially adjacent cells to consecutive process ids.
  // Consecutive ids share a node (the node map is id / ranks_per_node and
  // the brick volume divides ranks_per_node), so neighboring tiles cluster
  // on one node. Factors that fit no dimension are dropped: partial
  // clustering still shortens the average tile-to-tile distance.
  if (ranks_per_node > 1) {
    std::vector<int> local(nd, 1);
    for (int f : prime_factors_desc(ranks_per_node)) {
      std::size_t best = nd;
      int best_bricks = 0;
      for (std::size_t d = 0; d < nd; ++d) {
        if (grid_[d] % (local[d] * f) != 0) continue;
        const int bricks = grid_[d] / local[d];
        if (bricks > best_bricks) {
          best_bricks = bricks;
          best = d;
        }
      }
      if (best != nd) local[best] *= f;
    }
    int brick_vol = 1;
    for (int l : local) brick_vol *= l;
    if (brick_vol > 1) {
      const int ncells = owning_procs();
      cell_to_proc_.resize(static_cast<std::size_t>(ncells));
      proc_to_cell_.resize(static_cast<std::size_t>(ncells));
      std::vector<int> cell(nd, 0);
      for (int c = 0; c < ncells; ++c) {
        int brick = 0, within = 0;
        for (std::size_t d = 0; d < nd; ++d) {
          brick = brick * (grid_[d] / local[d]) + cell[d] / local[d];
          within = within * local[d] + cell[d] % local[d];
        }
        const int proc = brick * brick_vol + within;
        cell_to_proc_[static_cast<std::size_t>(c)] = proc;
        proc_to_cell_[static_cast<std::size_t>(proc)] = c;
        for (std::size_t d = nd; d-- > 0;) {
          if (++cell[d] < grid_[d]) break;
          cell[d] = 0;
        }
      }
    }
  }
}

Distribution::Distribution(
    std::span<const std::int64_t> dims,
    std::span<const std::vector<std::int64_t>> block_starts) {
  if (dims.empty()) mpisim::raise(Errc::invalid_argument, "0-d array");
  if (block_starts.size() != dims.size())
    mpisim::raise(Errc::invalid_argument, "block_starts/dims rank mismatch");
  dims_.assign(dims.begin(), dims.end());
  const std::size_t nd = dims_.size();
  grid_.resize(nd);
  starts_.resize(nd);
  for (std::size_t d = 0; d < nd; ++d) {
    const auto& bs = block_starts[d];
    if (bs.empty() || bs.front() != 0)
      mpisim::raise(Errc::invalid_argument,
                    "block starts must begin at index 0");
    for (std::size_t i = 1; i < bs.size(); ++i)
      if (bs[i] <= bs[i - 1] || bs[i] >= dims_[d])
        mpisim::raise(Errc::invalid_argument,
                      "block starts must be strictly increasing and "
                      "below the dimension extent");
    grid_[d] = static_cast<int>(bs.size());
    starts_[d] = bs;
    starts_[d].push_back(dims_[d]);  // closing sentinel
  }
}

int Distribution::owning_procs() const noexcept {
  int p = 1;
  for (int g : grid_) p *= g;
  return p;
}

int Distribution::block_index(std::size_t d, std::int64_t x) const {
  const auto& s = starts_[d];
  // Last block whose start <= x.
  auto it = std::upper_bound(s.begin(), s.end() - 1, x);
  return static_cast<int>(it - s.begin()) - 1;
}

int Distribution::owner_of(std::span<const std::int64_t> idx) const {
  if (idx.size() != dims_.size())
    mpisim::raise(Errc::invalid_argument, "subscript rank mismatch");
  int cell = 0;
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    if (idx[d] < 0 || idx[d] >= dims_[d])
      mpisim::raise(Errc::invalid_argument, "subscript out of range");
    cell = cell * grid_[d] + block_index(d, idx[d]);
  }
  return proc_of_cell(cell);
}

Patch Distribution::patch_of(int proc) const {
  const std::size_t nd = dims_.size();
  Patch p;
  p.lo.assign(nd, 0);
  p.hi.assign(nd, -1);
  if (proc < 0 || proc >= owning_procs()) return p;  // owns nothing
  // Decompose the process's grid cell into coordinates, row-major.
  std::vector<int> cell(nd);
  int rem = cell_of_proc(proc);
  for (std::size_t d = nd; d-- > 0;) {
    cell[d] = rem % grid_[d];
    rem /= grid_[d];
  }
  for (std::size_t d = 0; d < nd; ++d) {
    p.lo[d] = starts_[d][static_cast<std::size_t>(cell[d])];
    p.hi[d] = starts_[d][static_cast<std::size_t>(cell[d]) + 1] - 1;
  }
  return p;
}

std::vector<OwnedPatch> Distribution::intersect(const Patch& region) const {
  const std::size_t nd = dims_.size();
  if (region.lo.size() != nd || region.hi.size() != nd)
    mpisim::raise(Errc::invalid_argument, "region rank mismatch");
  for (std::size_t d = 0; d < nd; ++d) {
    if (region.lo[d] < 0 || region.hi[d] >= dims_[d] ||
        region.lo[d] > region.hi[d])
      mpisim::raise(Errc::invalid_argument, "region out of range");
  }

  // Block-index ranges touched per dimension.
  std::vector<int> first(nd), last(nd);
  for (std::size_t d = 0; d < nd; ++d) {
    first[d] = block_index(d, region.lo[d]);
    last[d] = block_index(d, region.hi[d]);
  }

  std::vector<OwnedPatch> out;
  std::vector<int> cell(first.begin(), first.end());
  while (true) {
    OwnedPatch op;
    op.patch.lo.resize(nd);
    op.patch.hi.resize(nd);
    int c = 0;
    for (std::size_t d = 0; d < nd; ++d) {
      c = c * grid_[d] + cell[d];
      const std::int64_t blo = starts_[d][static_cast<std::size_t>(cell[d])];
      const std::int64_t bhi =
          starts_[d][static_cast<std::size_t>(cell[d]) + 1] - 1;
      op.patch.lo[d] = std::max(region.lo[d], blo);
      op.patch.hi[d] = std::min(region.hi[d], bhi);
    }
    op.proc = proc_of_cell(c);
    out.push_back(std::move(op));

    // Advance the cell counter (row-major, innermost last).
    std::size_t d = nd;
    while (d-- > 0) {
      if (cell[d] < last[d]) {
        ++cell[d];
        break;
      }
      cell[d] = first[d];
      if (d == 0) return out;
    }
    if (d == static_cast<std::size_t>(-1)) return out;
  }
}

}  // namespace ga
