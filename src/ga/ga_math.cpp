// Collective math routines over GlobalArray (GA_Zero, GA_Fill, GA_Scale,
// GA_Add, GA_Copy, GA_Ddot, GA_Dgemm). All are owner-computes: each process
// updates its own block under direct local access, then synchronizes.

#include <algorithm>
#include <cstring>

#include "src/ga/ga.hpp"
#include "src/ga/ga_impl.hpp"
#include "src/mpisim/error.hpp"
#include "src/mpisim/comm.hpp"
#include "src/mpisim/runtime.hpp"

namespace ga {

using mpisim::Errc;

namespace {

std::int64_t local_elems(const Patch& p) { return p.num_elems(); }

void require_conformable(const GlobalArray& a, const GlobalArray& b,
                         const char* what) {
  if (a.dims() != b.dims() || a.type() != b.type())
    mpisim::raise(Errc::invalid_argument,
                  std::string(what) + ": arrays are not conformable");
}

template <typename T, typename F>
void for_local(GlobalArray& g, F f) {
  g.sync();  // collective entry barrier (GA semantics): no one-sided op
             // from the previous phase may still be in flight
  Patch p;
  auto* ptr = static_cast<T*>(g.access(p));
  if (ptr != nullptr) f(ptr, local_elems(p));
  if (ptr != nullptr) g.release_update();
  g.sync();
}

}  // namespace

void GlobalArray::zero() {
  if (type() == ElemType::dbl) {
    for_local<double>(*this, [](double* p, std::int64_t n) {
      std::fill(p, p + n, 0.0);
    });
  } else {
    for_local<std::int64_t>(*this, [](std::int64_t* p, std::int64_t n) {
      std::fill(p, p + n, std::int64_t{0});
    });
  }
}

void GlobalArray::fill(const void* value) {
  if (type() == ElemType::dbl) {
    const double v = *static_cast<const double*>(value);
    for_local<double>(*this,
                      [v](double* p, std::int64_t n) { std::fill(p, p + n, v); });
  } else {
    const std::int64_t v = *static_cast<const std::int64_t*>(value);
    for_local<std::int64_t>(*this, [v](std::int64_t* p, std::int64_t n) {
      std::fill(p, p + n, v);
    });
  }
}

void GlobalArray::scale(const void* alpha) {
  if (type() == ElemType::dbl) {
    const double a = *static_cast<const double*>(alpha);
    for_local<double>(*this, [a](double* p, std::int64_t n) {
      for (std::int64_t i = 0; i < n; ++i) p[i] *= a;
    });
  } else {
    const std::int64_t a = *static_cast<const std::int64_t*>(alpha);
    for_local<std::int64_t>(*this, [a](std::int64_t* p, std::int64_t n) {
      for (std::int64_t i = 0; i < n; ++i) p[i] *= a;
    });
  }
}

void GlobalArray::add(const void* alpha, const GlobalArray& a,
                      const void* beta, const GlobalArray& b) {
  require_conformable(*this, a, "add");
  require_conformable(*this, b, "add");
  if (type() != ElemType::dbl)
    mpisim::raise(Errc::invalid_argument, "add supports double arrays");
  const double av = *static_cast<const double*>(alpha);
  const double bv = *static_cast<const double*>(beta);

  sync();
  // Owner-computes in place is only valid when all three arrays give this
  // process the same block; conformable dims with different chunk hints or
  // an irregular map used to read the wrong elements here. Mismatched
  // distributions stage a's and b's conformable patches with one-sided
  // gets, issued before the local-access epoch opens (§V-E1).
  const bool aligned =
      impl_->dist == a.impl_->dist && impl_->dist == b.impl_->dist;
  std::vector<double> sa, sb;
  if (!aligned) {
    const std::int64_t n = local_elems(impl_->my_patch);
    if (n > 0) {
      sa.resize(static_cast<std::size_t>(n));
      sb.resize(static_cast<std::size_t>(n));
      a.get(impl_->my_patch, sa.data());
      b.get(impl_->my_patch, sb.data());
    }
  }
  Patch p, pa, pb;
  auto* pc = static_cast<double*>(access(p));
  if (aligned) {
    auto* xa = static_cast<double*>(const_cast<GlobalArray&>(a).access(pa));
    auto* xb = static_cast<double*>(const_cast<GlobalArray&>(b).access(pb));
    if (pc != nullptr) {
      const std::int64_t n = local_elems(p);
      for (std::int64_t i = 0; i < n; ++i) pc[i] = av * xa[i] + bv * xb[i];
    }
    if (xb != nullptr) const_cast<GlobalArray&>(b).release();
    if (xa != nullptr) const_cast<GlobalArray&>(a).release();
  } else if (pc != nullptr) {
    const std::int64_t n = local_elems(p);
    for (std::int64_t i = 0; i < n; ++i) {
      const auto k = static_cast<std::size_t>(i);
      pc[i] = av * sa[k] + bv * sb[k];
    }
  }
  if (pc != nullptr) release_update();
  sync();
}

void GlobalArray::copy_to(GlobalArray& dst) const {
  require_conformable(*this, dst, "copy");
  sync();
  if (impl_->dist == dst.impl_->dist) {
    Patch p, pd;
    auto& self = const_cast<GlobalArray&>(*this);
    auto* src = static_cast<const std::uint8_t*>(self.access(p));
    auto* d = static_cast<std::uint8_t*>(dst.access(pd));
    if (src != nullptr)
      std::memcpy(d, src,
                  static_cast<std::size_t>(local_elems(p)) * elem_size(type()));
    if (d != nullptr) dst.release_update();
    if (src != nullptr) self.release();
  } else {
    // Paired blocks cover different index ranges: stage the source patch
    // that matches dst's block one-sidedly, then write it in place.
    Patch pd;
    const std::int64_t n = local_elems(dst.impl_->my_patch);
    std::vector<std::uint8_t> buf;
    if (n > 0) {
      buf.resize(static_cast<std::size_t>(n) * elem_size(type()));
      get(dst.impl_->my_patch, buf.data());
    }
    auto* d = static_cast<std::uint8_t*>(dst.access(pd));
    if (d != nullptr && !buf.empty()) std::memcpy(d, buf.data(), buf.size());
    if (d != nullptr) dst.release_update();
  }
  dst.sync();
}

double GlobalArray::ddot(const GlobalArray& other) const {
  require_conformable(*this, other, "ddot");
  if (type() != ElemType::dbl)
    mpisim::raise(Errc::invalid_argument, "ddot requires double arrays");
  sync();
  // Mismatched distributions: stage other's conformable patch before the
  // local-access epoch (same reasoning as add()).
  const bool aligned = impl_->dist == other.impl_->dist;
  std::vector<double> sy;
  if (!aligned) {
    const std::int64_t n = local_elems(impl_->my_patch);
    if (n > 0) {
      sy.resize(static_cast<std::size_t>(n));
      other.get(impl_->my_patch, sy.data());
    }
  }
  Patch p, po;
  auto& self = const_cast<GlobalArray&>(*this);
  auto& oth = const_cast<GlobalArray&>(other);
  auto* x = static_cast<const double*>(self.access(p));
  auto* y = aligned ? static_cast<const double*>(oth.access(po)) : sy.data();
  double local = 0.0;
  if (x != nullptr) {
    const std::int64_t n = local_elems(p);
    for (std::int64_t i = 0; i < n; ++i) local += x[i] * y[i];
  }
  if (aligned && y != nullptr) oth.release();
  if (x != nullptr) self.release();
  double total = 0.0;
  mpisim::world().allreduce(&local, &total, 1, mpisim::BasicType::float64,
                            mpisim::Op::sum);
  return total;
}

void GlobalArray::transpose_from(const GlobalArray& a) {
  if (ndim() != 2 || a.ndim() != 2 || type() != a.type() ||
      dims()[0] != a.dims()[1] || dims()[1] != a.dims()[0])
    mpisim::raise(Errc::invalid_argument,
                  "transpose requires 2-d arrays with reversed dims");
  sync();
  Patch p;
  auto* out = static_cast<std::uint8_t*>(access(p));
  if (out != nullptr) {
    const std::size_t esz = elem_size(type());
    const std::int64_t rows = p.extent(0);
    const std::int64_t cols = p.extent(1);
    // Fetch the source patch a[p.lo1..p.hi1][p.lo0..p.hi0] and scatter it
    // transposed into the local block.
    std::vector<std::uint8_t> buf(static_cast<std::size_t>(rows * cols) * esz);
    Patch src;
    src.lo = {p.lo[1], p.lo[0]};
    src.hi = {p.hi[1], p.hi[0]};
    a.get(src, buf.data());
    for (std::int64_t i = 0; i < rows; ++i)
      for (std::int64_t j = 0; j < cols; ++j)
        std::memcpy(out + static_cast<std::size_t>(i * cols + j) * esz,
                    buf.data() + static_cast<std::size_t>(j * rows + i) * esz,
                    esz);
    release_update();
  }
  sync();
}

void GlobalArray::dgemm(char transa, char transb, double alpha,
                        const GlobalArray& a, const GlobalArray& b,
                        double beta, GlobalArray& c) {
  const bool ta = transa == 't' || transa == 'T';
  const bool tb = transb == 't' || transb == 'T';
  if (a.ndim() != 2 || b.ndim() != 2 || c.ndim() != 2 ||
      a.type() != ElemType::dbl || b.type() != ElemType::dbl ||
      c.type() != ElemType::dbl)
    mpisim::raise(Errc::invalid_argument, "dgemm requires 2-d double arrays");

  const std::int64_t m = c.dims()[0];
  const std::int64_t n = c.dims()[1];
  const std::int64_t k = ta ? a.dims()[0] : a.dims()[1];
  const std::int64_t am = ta ? a.dims()[1] : a.dims()[0];
  const std::int64_t bk = tb ? b.dims()[1] : b.dims()[0];
  const std::int64_t bn = tb ? b.dims()[0] : b.dims()[1];
  if (am != m || bk != k || bn != n)
    mpisim::raise(Errc::invalid_argument, "dgemm shape mismatch");

  c.sync();
  Patch cp;
  auto* cl = static_cast<double*>(c.access(cp));
  if (cl != nullptr) {
    const std::int64_t mi = cp.extent(0);
    const std::int64_t ni = cp.extent(1);
    for (std::int64_t i = 0; i < mi * ni; ++i) cl[i] *= beta;

    // Owner-computes over K blocks: get A and B panels one-sidedly, then a
    // local (naive) matrix multiply accumulates into the local C block.
    const std::int64_t kb = std::min<std::int64_t>(k, 128);
    std::vector<double> pa(static_cast<std::size_t>(mi * kb));
    std::vector<double> pb(static_cast<std::size_t>(kb * ni));
    for (std::int64_t k0 = 0; k0 < k; k0 += kb) {
      const std::int64_t kk = std::min(kb, k - k0);
      Patch ra;
      ra.lo = ta ? std::vector<std::int64_t>{k0, cp.lo[0]}
                 : std::vector<std::int64_t>{cp.lo[0], k0};
      ra.hi = ta ? std::vector<std::int64_t>{k0 + kk - 1, cp.hi[0]}
                 : std::vector<std::int64_t>{cp.hi[0], k0 + kk - 1};
      a.get(ra, pa.data());
      Patch rb;
      rb.lo = tb ? std::vector<std::int64_t>{cp.lo[1], k0}
                 : std::vector<std::int64_t>{k0, cp.lo[1]};
      rb.hi = tb ? std::vector<std::int64_t>{cp.hi[1], k0 + kk - 1}
                 : std::vector<std::int64_t>{k0 + kk - 1, cp.hi[1]};
      b.get(rb, pb.data());

      // pa layout: ta ? (kk x mi) : (mi x kk); pb: tb ? (ni x kk) : (kk x ni)
      for (std::int64_t i = 0; i < mi; ++i) {
        for (std::int64_t kk2 = 0; kk2 < kk; ++kk2) {
          const double av =
              ta ? pa[static_cast<std::size_t>(kk2 * mi + i)]
                 : pa[static_cast<std::size_t>(i * kk + kk2)];
          if (av == 0.0) continue;
          const double s = alpha * av;
          for (std::int64_t j = 0; j < ni; ++j) {
            const double bv =
                tb ? pb[static_cast<std::size_t>(j * kk + kk2)]
                   : pb[static_cast<std::size_t>(kk2 * ni + j)];
            cl[i * ni + j] += s * bv;
          }
        }
      }
    }
  }
  if (cl != nullptr) c.release_update();
  c.sync();
}

}  // namespace ga
