// Tests for GA element-wise scatter/gather, scatter_acc, elem_multiply and
// select_elem, across all three ARMCI backends.

#include <gtest/gtest.h>

#include <numeric>
#include <random>
#include <vector>

#include "src/armci/armci.hpp"
#include "src/ga/ga.hpp"
#include "src/mpisim/runtime.hpp"

namespace ga {
namespace {

using mpisim::Platform;

class GaGatherTest : public ::testing::TestWithParam<armci::Backend> {
 protected:
  armci::Options opts() const {
    armci::Options o;
    o.backend = GetParam();
    return o;
  }
};

TEST_P(GaGatherTest, ScatterThenGatherRoundTrip) {
  mpisim::run(4, Platform::ideal, [&] {
    armci::init(opts());
    const std::int64_t dims[] = {24, 24};
    GlobalArray g = GlobalArray::create("sg", dims, ElemType::dbl);
    g.zero();
    if (mpisim::rank() == 0) {
      // A diagonal-ish scatter touching every owner.
      std::vector<std::int64_t> subs;
      std::vector<double> vals;
      for (std::int64_t i = 0; i < 24; ++i) {
        subs.push_back(i);
        subs.push_back((i * 7) % 24);
        vals.push_back(100.0 + static_cast<double>(i));
      }
      g.scatter(vals.data(), subs, 24);
      armci::fence_all();

      std::vector<double> back(24, -1.0);
      g.gather(back.data(), subs, 24);
      EXPECT_EQ(back, vals);
    }
    g.sync();
    // Elements not scattered are still zero.
    Patch one;
    one.lo = {1, 0};
    one.hi = {1, 0};
    double v = -1;
    g.get(one, &v);
    EXPECT_DOUBLE_EQ(v, 0.0);
    g.destroy();
    armci::finalize();
  });
}

TEST_P(GaGatherTest, ScatterAccAccumulatesFromAllRanks) {
  mpisim::run(4, Platform::ideal, [&] {
    armci::init(opts());
    const std::int64_t dims[] = {16, 16};
    GlobalArray g = GlobalArray::create("sa", dims, ElemType::dbl);
    g.zero();
    g.sync();
    // Every rank accumulates 1.0 into the same 8 scattered elements.
    std::vector<std::int64_t> subs;
    std::vector<double> vals(8, 1.0);
    for (std::int64_t i = 0; i < 8; ++i) {
      subs.push_back(i * 2);
      subs.push_back(15 - i);
    }
    const double alpha = 0.5;
    g.scatter_acc(vals.data(), subs, 8, &alpha);
    g.sync();
    std::vector<double> back(8, 0.0);
    g.gather(back.data(), subs, 8);
    for (double v : back) EXPECT_DOUBLE_EQ(v, 4 * 0.5);
    g.destroy();
    armci::finalize();
  });
}

TEST_P(GaGatherTest, GatherInt64Elements) {
  mpisim::run(3, Platform::ideal, [&] {
    armci::init(opts());
    const std::int64_t dims[] = {30};
    GlobalArray g = GlobalArray::create("gi", dims, ElemType::int64);
    g.zero();
    if (mpisim::rank() == 2) {
      std::vector<std::int64_t> subs{3, 17, 29};
      std::vector<std::int64_t> vals{33, 1717, 2929};
      g.scatter(vals.data(), subs, 3);
      std::vector<std::int64_t> back(3, 0);
      g.gather(back.data(), subs, 3);
      EXPECT_EQ(back, vals);
    }
    g.sync();
    g.destroy();
    armci::finalize();
  });
}

TEST_P(GaGatherTest, MismatchedSubscriptCountThrows) {
  EXPECT_THROW(
      mpisim::run(2, Platform::ideal,
                  [&] {
                    armci::init(opts());
                    const std::int64_t dims[] = {8, 8};
                    GlobalArray g =
                        GlobalArray::create("bad", dims, ElemType::dbl);
                    std::vector<std::int64_t> subs{1, 2, 3};  // 1.5 pairs
                    double v[2] = {0, 0};
                    g.gather(v, subs, 2);
                  }),
      mpisim::MpiError);
}

TEST_P(GaGatherTest, ElemMultiply) {
  mpisim::run(4, Platform::ideal, [&] {
    armci::init(opts());
    const std::int64_t dims[] = {12, 12};
    GlobalArray a = GlobalArray::create("a", dims, ElemType::dbl);
    GlobalArray b = GlobalArray::duplicate("b", a);
    GlobalArray c = GlobalArray::duplicate("c", a);
    const double x = 3.0, y = -2.0;
    a.fill(&x);
    b.fill(&y);
    c.elem_multiply(a, b);
    Patch all;
    all.lo = {0, 0};
    all.hi = {11, 11};
    std::vector<double> back(144);
    c.get(all, back.data());
    for (double v : back) EXPECT_DOUBLE_EQ(v, -6.0);
    c.destroy();
    b.destroy();
    a.destroy();
    armci::finalize();
  });
}

TEST_P(GaGatherTest, SelectElemFindsGlobalExtremes) {
  mpisim::run(4, Platform::ideal, [&] {
    armci::init(opts());
    const std::int64_t dims[] = {20, 20};
    GlobalArray g = GlobalArray::create("sel", dims, ElemType::dbl);
    g.zero();
    if (mpisim::rank() == 0) {
      const double hi = 99.5, lo = -7.25;
      Patch ph{{13, 17}, {13, 17}};
      g.put(ph, &hi);
      Patch pl{{2, 3}, {2, 3}};
      g.put(pl, &lo);
    }
    g.sync();
    GlobalArray::Selected mx = g.select_elem(GlobalArray::SelectOp::max);
    EXPECT_DOUBLE_EQ(mx.value, 99.5);
    EXPECT_EQ(mx.subscript, (std::vector<std::int64_t>{13, 17}));
    GlobalArray::Selected mn = g.select_elem(GlobalArray::SelectOp::min);
    EXPECT_DOUBLE_EQ(mn.value, -7.25);
    EXPECT_EQ(mn.subscript, (std::vector<std::int64_t>{2, 3}));
    g.destroy();
    armci::finalize();
  });
}

TEST_P(GaGatherTest, SelectElemTieBreaksTowardLowestIndex) {
  mpisim::run(4, Platform::ideal, [&] {
    armci::init(opts());
    const std::int64_t dims[] = {10, 10};
    GlobalArray g = GlobalArray::create("tie", dims, ElemType::dbl);
    const double v = 5.0;
    g.fill(&v);  // every element ties
    GlobalArray::Selected mx = g.select_elem(GlobalArray::SelectOp::max);
    EXPECT_DOUBLE_EQ(mx.value, 5.0);
    EXPECT_EQ(mx.subscript, (std::vector<std::int64_t>{0, 0}));
    g.destroy();
    armci::finalize();
  });
}

TEST_P(GaGatherTest, RandomScatterGatherProperty) {
  mpisim::run(4, Platform::ideal, [&] {
    armci::init(opts());
    const std::int64_t dims[] = {32, 16, 8};
    GlobalArray g = GlobalArray::create("rnd", dims, ElemType::dbl);
    g.zero();
    if (mpisim::rank() == 1) {
      std::mt19937_64 rng(7);
      // Distinct random subscripts (overlap would make put order matter).
      std::set<std::tuple<std::int64_t, std::int64_t, std::int64_t>> used;
      std::vector<std::int64_t> subs;
      std::vector<double> vals;
      while (used.size() < 100) {
        const std::int64_t i = static_cast<std::int64_t>(rng() % 32);
        const std::int64_t j = static_cast<std::int64_t>(rng() % 16);
        const std::int64_t k = static_cast<std::int64_t>(rng() % 8);
        if (!used.insert({i, j, k}).second) continue;
        subs.insert(subs.end(), {i, j, k});
        vals.push_back(static_cast<double>(used.size()));
      }
      g.scatter(vals.data(), subs, 100);
      std::vector<double> back(100, 0.0);
      g.gather(back.data(), subs, 100);
      EXPECT_EQ(back, vals);
      // Cross-check one element through the patch interface.
      Patch one;
      one.lo = {subs[0], subs[1], subs[2]};
      one.hi = one.lo;
      double v = 0;
      g.get(one, &v);
      EXPECT_DOUBLE_EQ(v, vals[0]);
    }
    g.sync();
    g.destroy();
    armci::finalize();
  });
}

INSTANTIATE_TEST_SUITE_P(Backends, GaGatherTest,
                         ::testing::Values(armci::Backend::mpi,
                                           armci::Backend::native,
                                           armci::Backend::mpi3),
                         [](const auto& info) {
                           switch (info.param) {
                             case armci::Backend::mpi: return "Mpi";
                             case armci::Backend::native: return "Native";
                             case armci::Backend::mpi3: return "Mpi3";
                           }
                           return "?";
                         });

}  // namespace
}  // namespace ga
