// Tests for GA element-wise scatter/gather, scatter_acc, elem_multiply and
// select_elem, across all three ARMCI backends.

#include <gtest/gtest.h>

#include <numeric>
#include <random>
#include <vector>

#include "src/armci/armci.hpp"
#include "src/ga/ga.hpp"
#include "src/mpisim/runtime.hpp"

namespace ga {
namespace {

using mpisim::Platform;

class GaGatherTest : public ::testing::TestWithParam<armci::Backend> {
 protected:
  armci::Options opts() const {
    armci::Options o;
    o.backend = GetParam();
    return o;
  }
};

TEST_P(GaGatherTest, ScatterThenGatherRoundTrip) {
  mpisim::run(4, Platform::ideal, [&] {
    armci::init(opts());
    const std::int64_t dims[] = {24, 24};
    GlobalArray g = GlobalArray::create("sg", dims, ElemType::dbl);
    g.zero();
    if (mpisim::rank() == 0) {
      // A diagonal-ish scatter touching every owner.
      std::vector<std::int64_t> subs;
      std::vector<double> vals;
      for (std::int64_t i = 0; i < 24; ++i) {
        subs.push_back(i);
        subs.push_back((i * 7) % 24);
        vals.push_back(100.0 + static_cast<double>(i));
      }
      g.scatter(vals.data(), subs, 24);
      armci::fence_all();

      std::vector<double> back(24, -1.0);
      g.gather(back.data(), subs, 24);
      EXPECT_EQ(back, vals);
    }
    g.sync();
    // Elements not scattered are still zero.
    Patch one;
    one.lo = {1, 0};
    one.hi = {1, 0};
    double v = -1;
    g.get(one, &v);
    EXPECT_DOUBLE_EQ(v, 0.0);
    g.destroy();
    armci::finalize();
  });
}

TEST_P(GaGatherTest, ScatterAccAccumulatesFromAllRanks) {
  mpisim::run(4, Platform::ideal, [&] {
    armci::init(opts());
    const std::int64_t dims[] = {16, 16};
    GlobalArray g = GlobalArray::create("sa", dims, ElemType::dbl);
    g.zero();
    g.sync();
    // Every rank accumulates 1.0 into the same 8 scattered elements.
    std::vector<std::int64_t> subs;
    std::vector<double> vals(8, 1.0);
    for (std::int64_t i = 0; i < 8; ++i) {
      subs.push_back(i * 2);
      subs.push_back(15 - i);
    }
    const double alpha = 0.5;
    g.scatter_acc(vals.data(), subs, 8, &alpha);
    g.sync();
    std::vector<double> back(8, 0.0);
    g.gather(back.data(), subs, 8);
    for (double v : back) EXPECT_DOUBLE_EQ(v, 4 * 0.5);
    g.destroy();
    armci::finalize();
  });
}

TEST_P(GaGatherTest, GatherInt64Elements) {
  mpisim::run(3, Platform::ideal, [&] {
    armci::init(opts());
    const std::int64_t dims[] = {30};
    GlobalArray g = GlobalArray::create("gi", dims, ElemType::int64);
    g.zero();
    if (mpisim::rank() == 2) {
      std::vector<std::int64_t> subs{3, 17, 29};
      std::vector<std::int64_t> vals{33, 1717, 2929};
      g.scatter(vals.data(), subs, 3);
      std::vector<std::int64_t> back(3, 0);
      g.gather(back.data(), subs, 3);
      EXPECT_EQ(back, vals);
    }
    g.sync();
    g.destroy();
    armci::finalize();
  });
}

TEST_P(GaGatherTest, MismatchedSubscriptCountThrows) {
  EXPECT_THROW(
      mpisim::run(2, Platform::ideal,
                  [&] {
                    armci::init(opts());
                    const std::int64_t dims[] = {8, 8};
                    GlobalArray g =
                        GlobalArray::create("bad", dims, ElemType::dbl);
                    std::vector<std::int64_t> subs{1, 2, 3};  // 1.5 pairs
                    double v[2] = {0, 0};
                    g.gather(v, subs, 2);
                  }),
      mpisim::MpiError);
}

TEST_P(GaGatherTest, ElemMultiply) {
  mpisim::run(4, Platform::ideal, [&] {
    armci::init(opts());
    const std::int64_t dims[] = {12, 12};
    GlobalArray a = GlobalArray::create("a", dims, ElemType::dbl);
    GlobalArray b = GlobalArray::duplicate("b", a);
    GlobalArray c = GlobalArray::duplicate("c", a);
    const double x = 3.0, y = -2.0;
    a.fill(&x);
    b.fill(&y);
    c.elem_multiply(a, b);
    Patch all;
    all.lo = {0, 0};
    all.hi = {11, 11};
    std::vector<double> back(144);
    c.get(all, back.data());
    for (double v : back) EXPECT_DOUBLE_EQ(v, -6.0);
    c.destroy();
    b.destroy();
    a.destroy();
    armci::finalize();
  });
}

TEST_P(GaGatherTest, SelectElemFindsGlobalExtremes) {
  mpisim::run(4, Platform::ideal, [&] {
    armci::init(opts());
    const std::int64_t dims[] = {20, 20};
    GlobalArray g = GlobalArray::create("sel", dims, ElemType::dbl);
    g.zero();
    if (mpisim::rank() == 0) {
      const double hi = 99.5, lo = -7.25;
      Patch ph{{13, 17}, {13, 17}};
      g.put(ph, &hi);
      Patch pl{{2, 3}, {2, 3}};
      g.put(pl, &lo);
    }
    g.sync();
    GlobalArray::Selected mx = g.select_elem(GlobalArray::SelectOp::max);
    EXPECT_DOUBLE_EQ(mx.value, 99.5);
    EXPECT_EQ(mx.subscript, (std::vector<std::int64_t>{13, 17}));
    GlobalArray::Selected mn = g.select_elem(GlobalArray::SelectOp::min);
    EXPECT_DOUBLE_EQ(mn.value, -7.25);
    EXPECT_EQ(mn.subscript, (std::vector<std::int64_t>{2, 3}));
    g.destroy();
    armci::finalize();
  });
}

TEST_P(GaGatherTest, SelectElemTieBreaksTowardLowestIndex) {
  mpisim::run(4, Platform::ideal, [&] {
    armci::init(opts());
    const std::int64_t dims[] = {10, 10};
    GlobalArray g = GlobalArray::create("tie", dims, ElemType::dbl);
    const double v = 5.0;
    g.fill(&v);  // every element ties
    GlobalArray::Selected mx = g.select_elem(GlobalArray::SelectOp::max);
    EXPECT_DOUBLE_EQ(mx.value, 5.0);
    EXPECT_EQ(mx.subscript, (std::vector<std::int64_t>{0, 0}));
    g.destroy();
    armci::finalize();
  });
}

TEST_P(GaGatherTest, RandomScatterGatherProperty) {
  mpisim::run(4, Platform::ideal, [&] {
    armci::init(opts());
    const std::int64_t dims[] = {32, 16, 8};
    GlobalArray g = GlobalArray::create("rnd", dims, ElemType::dbl);
    g.zero();
    if (mpisim::rank() == 1) {
      std::mt19937_64 rng(7);
      // Distinct random subscripts (overlap would make put order matter).
      std::set<std::tuple<std::int64_t, std::int64_t, std::int64_t>> used;
      std::vector<std::int64_t> subs;
      std::vector<double> vals;
      while (used.size() < 100) {
        const std::int64_t i = static_cast<std::int64_t>(rng() % 32);
        const std::int64_t j = static_cast<std::int64_t>(rng() % 16);
        const std::int64_t k = static_cast<std::int64_t>(rng() % 8);
        if (!used.insert({i, j, k}).second) continue;
        subs.insert(subs.end(), {i, j, k});
        vals.push_back(static_cast<double>(used.size()));
      }
      g.scatter(vals.data(), subs, 100);
      std::vector<double> back(100, 0.0);
      g.gather(back.data(), subs, 100);
      EXPECT_EQ(back, vals);
      // Cross-check one element through the patch interface.
      Patch one;
      one.lo = {subs[0], subs[1], subs[2]};
      one.hi = one.lo;
      double v = 0;
      g.get(one, &v);
      EXPECT_DOUBLE_EQ(v, vals[0]);
    }
    g.sync();
    g.destroy();
    armci::finalize();
  });
}

// A negative element count used to be cast straight to size_t and read as
// a huge request; it must raise invalid_argument from all three entry
// points before any subscript is touched.
TEST_P(GaGatherTest, NegativeElementCountThrows) {
  for (int which = 0; which < 3; ++which) {
    EXPECT_THROW(
        mpisim::run(2, Platform::ideal,
                    [&] {
                      armci::init(opts());
                      const std::int64_t dims[] = {8, 8};
                      GlobalArray g =
                          GlobalArray::create("neg", dims, ElemType::dbl);
                      std::vector<std::int64_t> subs{1, 2};
                      double v = 1.0;
                      const double alpha = 1.0;
                      if (which == 0)
                        g.scatter(&v, subs, -1);
                      else if (which == 1)
                        g.gather(&v, subs, -1);
                      else
                        g.scatter_acc(&v, subs, -1, &alpha);
                    }),
        mpisim::MpiError);
  }
}

// GA_Scatter with a duplicated subscript stores the last value listed for
// that element (last-writer-wins), not an arbitrary interleaving of the
// per-owner batches.
TEST_P(GaGatherTest, ScatterDuplicateSubscriptLastWriterWins) {
  mpisim::run(4, Platform::ideal, [&] {
    armci::init(opts());
    const std::int64_t dims[] = {16, 16};
    GlobalArray g = GlobalArray::create("dup", dims, ElemType::dbl);
    g.zero();
    if (mpisim::rank() == 0) {
      // Element (3,5) appears three times, (9,2) twice.
      std::vector<std::int64_t> subs{3, 5, 9, 2, 3, 5, 9, 2, 3, 5};
      std::vector<double> vals{1.0, 10.0, 2.0, 20.0, 3.0};
      g.scatter(vals.data(), subs, 5);
      armci::fence_all();

      std::vector<std::int64_t> q{3, 5, 9, 2};
      std::vector<double> back(2, -1.0);
      g.gather(back.data(), q, 2);
      EXPECT_DOUBLE_EQ(back[0], 3.0);
      EXPECT_DOUBLE_EQ(back[1], 20.0);
    }
    g.sync();
    g.destroy();
    armci::finalize();
  });
}

// Gather may list the same element any number of times; every copy of the
// subscript returns the same stored value.
TEST_P(GaGatherTest, GatherDuplicateSubscriptsReturnSameValue) {
  mpisim::run(4, Platform::ideal, [&] {
    armci::init(opts());
    const std::int64_t dims[] = {16, 16};
    GlobalArray g = GlobalArray::create("gdup", dims, ElemType::dbl);
    g.zero();
    if (mpisim::rank() == 0) {
      std::vector<std::int64_t> one{11, 13};
      double v = 42.5;
      g.scatter(&v, one, 1);
      armci::fence_all();

      std::vector<std::int64_t> subs{11, 13, 11, 13, 11, 13, 11, 13};
      std::vector<double> back(4, 0.0);
      g.gather(back.data(), subs, 4);
      for (double x : back) EXPECT_DOUBLE_EQ(x, 42.5);
    }
    g.sync();
    g.destroy();
    armci::finalize();
  });
}

// scatter_acc is an accumulate, so duplicated subscripts are NOT collapsed:
// every occurrence contributes (unlike scatter's last-writer-wins).
TEST_P(GaGatherTest, ScatterAccDuplicateSubscriptsAllApply) {
  mpisim::run(4, Platform::ideal, [&] {
    armci::init(opts());
    const std::int64_t dims[] = {16, 16};
    GlobalArray g = GlobalArray::create("adup", dims, ElemType::dbl);
    g.zero();
    g.sync();
    if (mpisim::rank() == 0) {
      std::vector<std::int64_t> subs{2, 2, 2, 2, 2, 2, 4, 4};
      std::vector<double> vals{1.0, 2.0, 3.0, 10.0};
      const double alpha = 2.0;
      g.scatter_acc(vals.data(), subs, 4, &alpha);
      armci::fence_all();

      std::vector<std::int64_t> q{2, 2, 4, 4};
      std::vector<double> back(2, 0.0);
      g.gather(back.data(), q, 2);
      EXPECT_DOUBLE_EQ(back[0], 12.0);  // 2 * (1 + 2 + 3)
      EXPECT_DOUBLE_EQ(back[1], 20.0);  // 2 * 10
    }
    g.sync();
    g.destroy();
    armci::finalize();
  });
}

INSTANTIATE_TEST_SUITE_P(Backends, GaGatherTest,
                         ::testing::Values(armci::Backend::mpi,
                                           armci::Backend::native,
                                           armci::Backend::mpi3),
                         [](const auto& info) {
                           switch (info.param) {
                             case armci::Backend::mpi: return "Mpi";
                             case armci::Backend::native: return "Native";
                             case armci::Backend::mpi3: return "Mpi3";
                           }
                           return "?";
                         });

}  // namespace
}  // namespace ga
