// Unit and property tests for the block distribution.

#include "src/ga/distribution.hpp"

#include <gtest/gtest.h>

#include <set>

#include "src/mpisim/error.hpp"

namespace ga {
namespace {

TEST(DistributionTest, OneDimensionalEvenSplit) {
  const std::int64_t dims[] = {100};
  Distribution d(dims, 4);
  EXPECT_EQ(d.grid(), (std::vector<int>{4}));
  EXPECT_EQ(d.patch_of(0).lo[0], 0);
  EXPECT_EQ(d.patch_of(0).hi[0], 24);
  EXPECT_EQ(d.patch_of(3).hi[0], 99);
}

TEST(DistributionTest, TwoDimensionalGrid) {
  const std::int64_t dims[] = {64, 64};
  Distribution d(dims, 4);
  // 4 = 2x2 for a square array.
  EXPECT_EQ(d.grid(), (std::vector<int>{2, 2}));
  Patch p = d.patch_of(3);
  EXPECT_EQ(p.lo[0], 32);
  EXPECT_EQ(p.lo[1], 32);
  EXPECT_EQ(p.hi[0], 63);
  EXPECT_EQ(p.hi[1], 63);
}

TEST(DistributionTest, ElongatedArrayGetsElongatedGrid) {
  const std::int64_t dims[] = {1000, 10};
  Distribution d(dims, 8);
  EXPECT_GE(d.grid()[0], d.grid()[1]);
}

TEST(DistributionTest, ChunkHintLimitsSplitting) {
  const std::int64_t dims[] = {64, 64};
  const std::int64_t chunk[] = {64, 1};  // dim 0 must stay whole
  Distribution d(dims, 4, chunk);
  EXPECT_EQ(d.grid()[0], 1);
  EXPECT_EQ(d.grid()[1], 4);
}

TEST(DistributionTest, MoreProcsThanElements) {
  const std::int64_t dims[] = {3};
  Distribution d(dims, 8);
  EXPECT_LE(d.owning_procs(), 3);
  // Non-owning procs get an empty patch.
  Patch p = d.patch_of(7);
  EXPECT_EQ(p.num_elems(), 0);
}

TEST(DistributionTest, OwnerOfMatchesPatchOf) {
  const std::int64_t dims[] = {37, 23};
  Distribution d(dims, 6);
  for (std::int64_t i = 0; i < 37; ++i) {
    for (std::int64_t j = 0; j < 23; ++j) {
      const std::int64_t idx[] = {i, j};
      const int owner = d.owner_of(idx);
      Patch p = d.patch_of(owner);
      EXPECT_GE(i, p.lo[0]);
      EXPECT_LE(i, p.hi[0]);
      EXPECT_GE(j, p.lo[1]);
      EXPECT_LE(j, p.hi[1]);
    }
  }
}

TEST(DistributionTest, PatchesPartitionTheArray) {
  const std::int64_t dims[] = {17, 31};
  Distribution d(dims, 12);
  std::int64_t total = 0;
  for (int p = 0; p < 12; ++p) total += d.patch_of(p).num_elems();
  EXPECT_EQ(total, 17 * 31);
}

TEST(DistributionTest, IntersectSingleOwner) {
  const std::int64_t dims[] = {64, 64};
  Distribution d(dims, 4);
  Patch r;
  r.lo = {2, 3};
  r.hi = {10, 12};
  auto owned = d.intersect(r);
  ASSERT_EQ(owned.size(), 1u);
  EXPECT_EQ(owned[0].proc, 0);
  EXPECT_EQ(owned[0].patch, r);
}

TEST(DistributionTest, IntersectAllOwners) {
  const std::int64_t dims[] = {64, 64};
  Distribution d(dims, 4);
  Patch r;
  r.lo = {16, 16};
  r.hi = {47, 47};
  auto owned = d.intersect(r);
  ASSERT_EQ(owned.size(), 4u);  // paper Fig. 2: a put spanning 4 processes
  std::int64_t covered = 0;
  std::set<int> procs;
  for (const auto& op : owned) {
    covered += op.patch.num_elems();
    procs.insert(op.proc);
  }
  EXPECT_EQ(covered, 32 * 32);
  EXPECT_EQ(procs.size(), 4u);
}

TEST(DistributionTest, IntersectOutOfRangeThrows) {
  const std::int64_t dims[] = {8};
  Distribution d(dims, 2);
  Patch r;
  r.lo = {4};
  r.hi = {9};
  EXPECT_THROW(d.intersect(r), mpisim::MpiError);
}

TEST(DistributionTest, InvalidConstructionThrows) {
  const std::int64_t dims[] = {0};
  EXPECT_THROW(Distribution(dims, 2), mpisim::MpiError);
  const std::int64_t ok[] = {4};
  EXPECT_THROW(Distribution(ok, 0), mpisim::MpiError);
}

// Property sweep: every region decomposition covers the region exactly
// once, with each sub-patch inside its owner's block.
class DistributionPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(DistributionPropertyTest, IntersectionIsExactCover) {
  auto [rows, cols, nproc] = GetParam();
  const std::int64_t dims[] = {rows, cols};
  Distribution d(dims, nproc);

  Patch r;
  r.lo = {rows / 5, cols / 3};
  r.hi = {rows - 1 - rows / 7, cols - 1 - cols / 8};
  auto owned = d.intersect(r);

  std::int64_t covered = 0;
  for (const auto& op : owned) {
    covered += op.patch.num_elems();
    Patch block = d.patch_of(op.proc);
    for (std::size_t dd = 0; dd < 2; ++dd) {
      EXPECT_GE(op.patch.lo[dd], block.lo[dd]);
      EXPECT_LE(op.patch.hi[dd], block.hi[dd]);
      EXPECT_GE(op.patch.lo[dd], r.lo[dd]);
      EXPECT_LE(op.patch.hi[dd], r.hi[dd]);
    }
  }
  EXPECT_EQ(covered, r.num_elems());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DistributionPropertyTest,
    ::testing::Combine(::testing::Values(16, 37, 100),
                       ::testing::Values(8, 23, 64),
                       ::testing::Values(1, 2, 5, 8, 16)));

// Node-aware mapping: a 4x4 grid over 16 ranks with 4 ranks per node must
// assign each 2x2 brick of adjacent tiles to the four consecutive ranks of
// one node, while still distributing every element exactly once.
TEST(DistributionTest, NodeAwareMappingClustersOwnersByNode) {
  const std::int64_t dims[] = {64, 64};
  const int kRanksPerNode = 4;
  Distribution d(dims, 16, {}, kRanksPerNode);
  EXPECT_TRUE(d.node_clustered());
  EXPECT_EQ(d.grid(), (std::vector<int>{4, 4}));

  // Still a bijection: every rank owns exactly one block, blocks tile the
  // array, and owner_of agrees with patch_of.
  std::int64_t total = 0;
  for (int p = 0; p < 16; ++p) {
    const Patch b = d.patch_of(p);
    total += b.num_elems();
    EXPECT_EQ(d.owner_of(std::vector<std::int64_t>{b.lo[0], b.lo[1]}), p);
    EXPECT_EQ(d.owner_of(std::vector<std::int64_t>{b.hi[0], b.hi[1]}), p);
  }
  EXPECT_EQ(total, 64 * 64);

  // The clustering property: the four tiles of each 32x32 quadrant belong
  // to the four ranks of one node.
  for (std::int64_t qr : {0, 32}) {
    for (std::int64_t qc : {0, 32}) {
      std::set<int> nodes;
      for (std::int64_t dr : {0, 16}) {
        for (std::int64_t dc : {0, 16}) {
          const int owner = d.owner_of(
              std::vector<std::int64_t>{qr + dr, qc + dc});
          nodes.insert(owner / kRanksPerNode);
        }
      }
      EXPECT_EQ(nodes.size(), 1u)
          << "quadrant (" << qr << "," << qc << ") spans several nodes";
    }
  }

  // The linear mapping puts the 4 tiles of a quadrant on 2 nodes.
  Distribution linear(dims, 16);
  EXPECT_FALSE(linear.node_clustered());
  std::set<int> linear_nodes;
  for (std::int64_t dr : {0, 16})
    for (std::int64_t dc : {0, 16})
      linear_nodes.insert(
          linear.owner_of(std::vector<std::int64_t>{dr, dc}) / kRanksPerNode);
  EXPECT_GT(linear_nodes.size(), 1u);
}

// A node size that does not factor into the grid degrades gracefully to
// the row-major order instead of leaving ranks unused.
TEST(DistributionTest, NodeAwareMappingFallsBackWhenUnfactorable) {
  const std::int64_t dims[] = {35};
  Distribution d(dims, 7, {}, 4);  // 4 shares no factor with grid {7}
  EXPECT_FALSE(d.node_clustered());
  for (int p = 0; p < 7; ++p) {
    const Patch b = d.patch_of(p);
    EXPECT_EQ(d.owner_of(std::vector<std::int64_t>{b.lo[0]}), p);
  }
}

TEST(DistributionTest, NodeAwareIntersectNamesPermutedOwners) {
  const std::int64_t dims[] = {64, 64};
  Distribution d(dims, 16, {}, 4);
  Patch r;
  r.lo = {0, 0};
  r.hi = {63, 63};
  std::set<int> procs;
  std::int64_t covered = 0;
  for (const auto& op : d.intersect(r)) {
    procs.insert(op.proc);
    covered += op.patch.num_elems();
    // Each sub-patch must lie inside the block patch_of reports for the
    // owner intersect() named -- the permutation is applied consistently.
    const Patch b = d.patch_of(op.proc);
    for (std::size_t dd = 0; dd < 2; ++dd) {
      EXPECT_GE(op.patch.lo[dd], b.lo[dd]);
      EXPECT_LE(op.patch.hi[dd], b.hi[dd]);
    }
  }
  EXPECT_EQ(procs.size(), 16u);
  EXPECT_EQ(covered, 64 * 64);
}

TEST(DistributionTest, ThreeDimensional) {
  const std::int64_t dims[] = {16, 16, 16};
  Distribution d(dims, 8);
  EXPECT_EQ(d.grid(), (std::vector<int>{2, 2, 2}));
  std::int64_t total = 0;
  for (int p = 0; p < 8; ++p) total += d.patch_of(p).num_elems();
  EXPECT_EQ(total, 16 * 16 * 16);
}

}  // namespace
}  // namespace ga
