// Tests for the pipelined multi-owner GA data path: per-owner nonblocking
// batches completed at one covering wait, the GA fan-out counters, the
// MPI-2 one-epoch-per-owner bound, and the distribution-mismatch fixes in
// the owner-computes collectives (add / elem_multiply / ddot / copy_to).

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "src/armci/armci.hpp"
#include "src/ga/ga.hpp"
#include "src/mpisim/runtime.hpp"
#include "src/mpisim/trace.hpp"

namespace ga {
namespace {

using mpisim::Platform;

/// Lock/unlock synchronization epochs this rank opened, over every window.
std::uint64_t lock_epoch_total() {
  std::uint64_t n = 0;
  for (const auto& [id, ws] : mpisim::tracer().win_stats())
    n += ws.exclusive_locks + ws.shared_locks;
  return n;
}

class GaPipelineTest : public ::testing::TestWithParam<armci::Backend> {
 protected:
  armci::Options opts() const {
    armci::Options o;
    o.backend = GetParam();
    return o;
  }
  /// The native backend completes everything eagerly (nb_defers() false),
  /// so no nonblocking batches are ever counted there.
  bool defers() const { return GetParam() != armci::Backend::native; }
};

// Rank 0 writes and reads a patch owned entirely by ranks 1..4: the GA
// layer must count one multi-owner op with fan-out 4 per access and, on
// deferring backends, issue exactly one nonblocking batch per owner.
TEST_P(GaPipelineTest, MultiOwnerAccessCountsFanoutAndBatches) {
  mpisim::run(5, Platform::ideal, [&] {
    armci::init(opts());
    const std::int64_t dims[] = {8, 40};
    const std::int64_t chunk[] = {8, 1};  // one 8-column tile per rank
    GlobalArray g = GlobalArray::create("fan", dims, ElemType::dbl, chunk);
    g.zero();

    Patch region;
    region.lo = {0, 8};
    region.hi = {7, 39};
    if (mpisim::rank() == 0) {
      const auto n = static_cast<std::size_t>(region.num_elems());
      std::vector<double> out(n);
      std::iota(out.begin(), out.end(), 1.0);
      armci::reset_stats();

      g.put(region, out.data());
      EXPECT_EQ(armci::stats().ga_multi_owner_ops, 1u);
      EXPECT_EQ(armci::stats().ga_owner_fanout, 4u);
      EXPECT_EQ(armci::stats().ga_nb_batches, defers() ? 4u : 0u);

      std::vector<double> back(n, -1.0);
      g.get(region, back.data());
      EXPECT_EQ(armci::stats().ga_multi_owner_ops, 2u);
      EXPECT_EQ(armci::stats().ga_owner_fanout, 8u);
      EXPECT_EQ(armci::stats().ga_nb_batches, defers() ? 8u : 0u);
      EXPECT_EQ(back, out);

      const double alpha = 2.0;
      g.acc(region, out.data(), &alpha);
      EXPECT_EQ(armci::stats().ga_multi_owner_ops, 3u);
      EXPECT_EQ(armci::stats().ga_owner_fanout, 12u);

      g.get(region, back.data());
      for (std::size_t i = 0; i < n; ++i)
        EXPECT_DOUBLE_EQ(back[i], 3.0 * out[i]);
    }
    g.sync();
    g.destroy();
    armci::finalize();
  });
}

// A deferred multi-owner nb_get must survive an unrelated blocking access
// to another array: the covering wait completes only the queues holding
// the request's own per-owner batches.
TEST_P(GaPipelineTest, CoveringWaitLeavesUnrelatedQueuesDeferred) {
  if (!defers()) GTEST_SKIP() << "native backend has no deferred queues";
  mpisim::run(3, Platform::ideal, [&] {
    armci::init(opts());
    const std::int64_t dims[] = {4, 12};
    const std::int64_t chunk[] = {4, 1};
    GlobalArray a = GlobalArray::create("cwa", dims, ElemType::dbl, chunk);
    GlobalArray b = GlobalArray::create("cwb", dims, ElemType::dbl, chunk);
    const double va = 3.0, vb = 7.0;
    a.fill(&va);
    b.fill(&vb);

    if (mpisim::rank() == 0) {
      Patch region;
      region.lo = {0, 4};
      region.hi = {3, 11};
      const auto n = static_cast<std::size_t>(region.num_elems());
      std::vector<double> abuf(n, 0.0), bbuf(n, 0.0);

      armci::Request ra = a.nb_get(region, abuf.data());
      EXPECT_FALSE(ra.test());

      b.get(region, bbuf.data());  // blocking, touches only b's queues
      for (double v : bbuf) EXPECT_DOUBLE_EQ(v, vb);
      EXPECT_FALSE(ra.test());

      armci::wait(ra);
      for (double v : abuf) EXPECT_DOUBLE_EQ(v, va);
    }
    a.sync();
    a.destroy();
    b.destroy();
    armci::finalize();
  });
}

INSTANTIATE_TEST_SUITE_P(Backends, GaPipelineTest,
                         ::testing::Values(armci::Backend::mpi,
                                           armci::Backend::native,
                                           armci::Backend::mpi3),
                         [](const auto& info) {
                           switch (info.param) {
                             case armci::Backend::mpi: return "Mpi";
                             case armci::Backend::native: return "Native";
                             case armci::Backend::mpi3: return "Mpi3";
                           }
                           return "?";
                         });

// On MPI-2 a pipelined k-owner get costs at most one lock epoch per owner
// (not one per stride level or per retry), matching the CI perf assertion.
TEST(GaPipelineEpochTest, Mpi2MultiOwnerGetOpensOneEpochPerOwner) {
  mpisim::run(5, Platform::ideal, [] {
    armci::Options o;
    o.backend = armci::Backend::mpi;
    o.trace = true;
    armci::init(o);
    const std::int64_t dims[] = {8, 40};
    const std::int64_t chunk[] = {8, 1};
    GlobalArray g = GlobalArray::create("epoch", dims, ElemType::dbl, chunk);
    g.zero();
    if (mpisim::rank() == 0) {
      Patch region;
      region.lo = {0, 8};
      region.hi = {7, 39};
      std::vector<double> buf(static_cast<std::size_t>(region.num_elems()));
      g.get(region, buf.data());  // warm-up (registration, datatype cache)
      const std::uint64_t e0 = lock_epoch_total();
      g.get(region, buf.data());
      EXPECT_LE(lock_epoch_total() - e0, 4u);
    }
    g.sync();
    g.destroy();
    armci::finalize();
  });
}

// Regression for the distribution-mismatch bug: the owner-computes
// collectives used to index the other array's local buffer with this
// array's patch offsets, which reads garbage whenever the process grids
// differ. With a column-tiled a, a row-tiled b, and a square-tiled c the
// per-rank patches disagree in every pair, so each collective below
// produced wrong values before the staged-copy fallback.
TEST(GaMismatchTest, CollectivesAcrossMismatchedDistributions) {
  mpisim::run(4, Platform::ideal, [] {
    armci::Options o;
    armci::init(o);
    const std::int64_t dims[] = {8, 8};
    const std::int64_t col_tiles[] = {8, 1};  // grid {1, 4}
    const std::int64_t row_tiles[] = {1, 8};  // grid {4, 1}
    GlobalArray a = GlobalArray::create("mma", dims, ElemType::dbl, col_tiles);
    GlobalArray b = GlobalArray::create("mmb", dims, ElemType::dbl, row_tiles);
    GlobalArray c = GlobalArray::create("mmc", dims, ElemType::dbl);  // {2,2}

    Patch all;
    all.lo = {0, 0};
    all.hi = {7, 7};
    std::vector<double> va(64);
    std::iota(va.begin(), va.end(), 0.0);
    if (mpisim::rank() == 0) a.put(all, va.data());
    const double two = 2.0;
    b.fill(&two);
    a.sync();

    // c = 1*a + 10*b, every operand on a different grid.
    const double one = 1.0, ten = 10.0;
    c.add(&one, a, &ten, b);
    std::vector<double> back(64, -1.0);
    c.get(all, back.data());
    for (std::size_t i = 0; i < 64; ++i)
      EXPECT_DOUBLE_EQ(back[i], va[i] + 20.0) << "add mismatch at " << i;

    c.elem_multiply(a, b);
    c.get(all, back.data());
    for (std::size_t i = 0; i < 64; ++i)
      EXPECT_DOUBLE_EQ(back[i], 2.0 * va[i]) << "multiply mismatch at " << i;

    // ddot across grids: sum of 2*i over 0..63.
    EXPECT_DOUBLE_EQ(a.ddot(b), 4032.0);

    // copy_to across grids.
    a.copy_to(c);
    c.get(all, back.data());
    EXPECT_EQ(back, va);

    c.sync();
    a.destroy();
    b.destroy();
    c.destroy();
    armci::finalize();
  });
}

}  // namespace
}  // namespace ga
