// Integration tests for the Global Arrays layer on both ARMCI backends.

#include "src/ga/ga.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "src/armci/armci.hpp"
#include "src/mpisim/runtime.hpp"

namespace ga {
namespace {

using mpisim::Platform;

class GaTest : public ::testing::TestWithParam<armci::Backend> {
 protected:
  armci::Options opts() const {
    armci::Options o;
    o.backend = GetParam();
    return o;
  }
};

TEST_P(GaTest, CreateQueryDestroy) {
  mpisim::run(4, Platform::ideal, [&] {
    armci::init(opts());
    const std::int64_t dims[] = {32, 48};
    GlobalArray g = GlobalArray::create("test", dims, ElemType::dbl);
    EXPECT_EQ(g.ndim(), 2);
    EXPECT_EQ(g.dims(), (std::vector<std::int64_t>{32, 48}));
    EXPECT_EQ(g.type(), ElemType::dbl);
    EXPECT_EQ(g.name(), "test");
    // Every element has exactly one owner.
    const std::int64_t idx[] = {31, 47};
    EXPECT_GE(g.locate(idx), 0);
    g.destroy();
    armci::finalize();
  });
}

TEST_P(GaTest, NodeAwareCreateClustersOwnersAndRoundTrips) {
  // Four ranks on one node (infiniband profile, ranks_per_node = 4 via the
  // config override): node-aware creation permutes tile owners, and data
  // ops must follow the permuted distribution exactly.
  mpisim::Config cfg;
  cfg.nranks = 4;
  cfg.platform = Platform::infiniband;
  cfg.ranks_per_node = 4;
  mpisim::run(cfg, [&] {
    armci::init(opts());
    const std::int64_t dims[] = {32, 32};
    GlobalArray g = GlobalArray::create("na", dims, ElemType::dbl, {},
                                        NodeMapping::node_aware);
    // All four owners share the single node, trivially clustered; the
    // interesting property is that the permuted distribution stays a
    // bijection the data path agrees with.
    std::vector<std::int64_t> owned(4, 0);
    for (int p = 0; p < 4; ++p)
      owned[static_cast<std::size_t>(p)] = g.distribution(p).num_elems();
    EXPECT_EQ(std::accumulate(owned.begin(), owned.end(), std::int64_t{0}),
              32 * 32);

    Patch all;
    all.lo = {0, 0};
    all.hi = {31, 31};
    std::vector<double> src(32 * 32), back(32 * 32, 0.0);
    std::iota(src.begin(), src.end(), 0.0);
    if (mpisim::rank() == 0) g.put(all, src.data());
    g.sync();
    g.get(all, back.data());
    EXPECT_EQ(back, src);
    g.destroy();
    armci::finalize();
  });
}

TEST_P(GaTest, PutGetWholeArray) {
  mpisim::run(4, Platform::ideal, [&] {
    armci::init(opts());
    const std::int64_t dims[] = {20, 30};
    GlobalArray g = GlobalArray::create("pg", dims, ElemType::dbl);
    Patch all;
    all.lo = {0, 0};
    all.hi = {19, 29};
    if (mpisim::rank() == 0) {
      std::vector<double> buf(600);
      std::iota(buf.begin(), buf.end(), 0.0);
      g.put(all, buf.data());
    }
    g.sync();
    // Every rank reads the whole array back.
    std::vector<double> back(600, -1.0);
    g.get(all, back.data());
    for (int i = 0; i < 600; ++i) EXPECT_DOUBLE_EQ(back[static_cast<std::size_t>(i)], i);
    g.destroy();
    armci::finalize();
  });
}

TEST_P(GaTest, PutPatchSpanningFourOwners) {
  // Paper Fig. 2: a GA_Put on a patch crossing block boundaries becomes
  // several noncontiguous ARMCI operations.
  mpisim::run(4, Platform::ideal, [&] {
    armci::init(opts());
    const std::int64_t dims[] = {64, 64};
    GlobalArray g = GlobalArray::create("fig2", dims, ElemType::dbl);
    g.zero();
    Patch r;
    r.lo = {20, 24};
    r.hi = {43, 39};
    ASSERT_EQ(g.locate_region(r).size(), 4u);
    if (mpisim::rank() == 1) {
      std::vector<double> buf(static_cast<std::size_t>(r.num_elems()));
      std::iota(buf.begin(), buf.end(), 100.0);
      g.put(r, buf.data());
    }
    g.sync();
    std::vector<double> back(static_cast<std::size_t>(r.num_elems()));
    g.get(r, back.data());
    for (std::size_t i = 0; i < back.size(); ++i)
      EXPECT_DOUBLE_EQ(back[i], 100.0 + static_cast<double>(i));
    // Outside the patch: still zero.
    Patch outside;
    outside.lo = {0, 0};
    outside.hi = {0, 0};
    double v = -1;
    g.get(outside, &v);
    EXPECT_DOUBLE_EQ(v, 0.0);
    g.destroy();
    armci::finalize();
  });
}

TEST_P(GaTest, GetWithLeadingDimension) {
  mpisim::run(2, Platform::ideal, [&] {
    armci::init(opts());
    const std::int64_t dims[] = {8, 8};
    GlobalArray g = GlobalArray::create("ld", dims, ElemType::dbl);
    Patch all;
    all.lo = {0, 0};
    all.hi = {7, 7};
    if (mpisim::rank() == 0) {
      std::vector<double> buf(64);
      std::iota(buf.begin(), buf.end(), 0.0);
      g.put(all, buf.data());
    }
    g.sync();
    // Fetch a 3x4 patch into a buffer with pitch 10.
    Patch r;
    r.lo = {2, 1};
    r.hi = {4, 4};
    std::vector<double> buf(3 * 10, -1.0);
    const std::int64_t ld[] = {10};
    g.get(r, buf.data(), ld);
    for (std::int64_t i = 0; i < 3; ++i) {
      for (std::int64_t j = 0; j < 4; ++j)
        EXPECT_DOUBLE_EQ(buf[static_cast<std::size_t>(i * 10 + j)],
                         static_cast<double>((i + 2) * 8 + (j + 1)));
      EXPECT_DOUBLE_EQ(buf[static_cast<std::size_t>(i * 10 + 9)], -1.0);
    }
    g.destroy();
    armci::finalize();
  });
}

TEST_P(GaTest, AccumulateFromAllRanks) {
  mpisim::run(4, Platform::ideal, [&] {
    armci::init(opts());
    const std::int64_t dims[] = {16, 16};
    GlobalArray g = GlobalArray::create("acc", dims, ElemType::dbl);
    g.zero();
    Patch all;
    all.lo = {0, 0};
    all.hi = {15, 15};
    std::vector<double> ones(256, 1.0);
    const double alpha = 2.0;
    g.acc(all, ones.data(), &alpha);
    g.sync();
    std::vector<double> back(256);
    g.get(all, back.data());
    for (double v : back) EXPECT_DOUBLE_EQ(v, 8.0);  // 4 ranks * 2.0
    g.destroy();
    armci::finalize();
  });
}

TEST_P(GaTest, AccessReleaseLocalBlock) {
  mpisim::run(4, Platform::ideal, [&] {
    armci::init(opts());
    const std::int64_t dims[] = {32, 32};
    GlobalArray g = GlobalArray::create("axs", dims, ElemType::dbl);
    Patch p;
    auto* ptr = static_cast<double*>(g.access(p));
    if (ptr != nullptr) {
      EXPECT_EQ(p, g.distribution(mpisim::rank()));
      const std::int64_t n = p.num_elems();
      for (std::int64_t i = 0; i < n; ++i) ptr[i] = mpisim::rank() + 0.25;
      g.release_update();
    }
    g.sync();
    // Verify through one-sided reads.
    Patch other = g.distribution((mpisim::rank() + 1) % 4);
    if (other.num_elems() > 0) {
      double v = -1;
      Patch one;
      one.lo = other.lo;
      one.hi = other.lo;
      g.get(one, &v);
      EXPECT_DOUBLE_EQ(v, (mpisim::rank() + 1) % 4 + 0.25);
    }
    g.destroy();
    armci::finalize();
  });
}

TEST_P(GaTest, ReadIncIsAtomicTaskCounter) {
  mpisim::run(8, Platform::ideal, [&] {
    armci::init(opts());
    const std::int64_t dims[] = {4};
    GlobalArray g = GlobalArray::create("cnt", dims, ElemType::int64);
    g.zero();
    g.sync();
    const std::int64_t idx[] = {2};
    std::set<std::int64_t> seen;
    for (int i = 0; i < 10; ++i) seen.insert(g.read_inc(idx, 1));
    EXPECT_EQ(seen.size(), 10u);  // my tickets are distinct
    g.sync();
    std::int64_t final_val = 0;
    Patch one;
    one.lo = {2};
    one.hi = {2};
    g.get(one, &final_val);
    EXPECT_EQ(final_val, 80);
    g.destroy();
    armci::finalize();
  });
}

TEST_P(GaTest, ZeroFillScale) {
  mpisim::run(4, Platform::ideal, [&] {
    armci::init(opts());
    const std::int64_t dims[] = {24, 24};
    GlobalArray g = GlobalArray::create("zfs", dims, ElemType::dbl);
    const double v = 3.0;
    g.fill(&v);
    const double s = -0.5;
    g.scale(&s);
    Patch all;
    all.lo = {0, 0};
    all.hi = {23, 23};
    std::vector<double> back(576);
    g.get(all, back.data());
    for (double x : back) EXPECT_DOUBLE_EQ(x, -1.5);
    g.zero();
    g.get(all, back.data());
    for (double x : back) EXPECT_DOUBLE_EQ(x, 0.0);
    g.destroy();
    armci::finalize();
  });
}

TEST_P(GaTest, AddAndDdot) {
  mpisim::run(4, Platform::ideal, [&] {
    armci::init(opts());
    const std::int64_t dims[] = {10, 10};
    GlobalArray a = GlobalArray::create("a", dims, ElemType::dbl);
    GlobalArray b = GlobalArray::duplicate("b", a);
    GlobalArray c = GlobalArray::duplicate("c", a);
    const double two = 2.0, three = 3.0;
    a.fill(&two);
    b.fill(&three);
    const double alpha = 1.0, beta = -1.0;
    c.add(&alpha, a, &beta, b);  // c = a - b = -1 everywhere
    EXPECT_DOUBLE_EQ(c.ddot(c), 100.0);
    EXPECT_DOUBLE_EQ(a.ddot(b), 600.0);
    c.destroy();
    b.destroy();
    a.destroy();
    armci::finalize();
  });
}

TEST_P(GaTest, CopyPreservesContents) {
  mpisim::run(4, Platform::ideal, [&] {
    armci::init(opts());
    const std::int64_t dims[] = {12, 18};
    GlobalArray a = GlobalArray::create("src", dims, ElemType::dbl);
    GlobalArray b = GlobalArray::duplicate("dst", a);
    Patch all;
    all.lo = {0, 0};
    all.hi = {11, 17};
    if (mpisim::rank() == 0) {
      std::vector<double> buf(216);
      std::iota(buf.begin(), buf.end(), 7.0);
      a.put(all, buf.data());
    }
    a.sync();
    a.copy_to(b);
    std::vector<double> back(216);
    b.get(all, back.data());
    for (int i = 0; i < 216; ++i)
      EXPECT_DOUBLE_EQ(back[static_cast<std::size_t>(i)], 7.0 + i);
    b.destroy();
    a.destroy();
    armci::finalize();
  });
}

TEST_P(GaTest, DgemmMatchesReference) {
  mpisim::run(4, Platform::ideal, [&] {
    armci::init(opts());
    const std::int64_t m = 24, k = 16, n = 20;
    const std::int64_t da[] = {m, k}, db[] = {k, n}, dc[] = {m, n};
    GlobalArray A = GlobalArray::create("A", da, ElemType::dbl);
    GlobalArray B = GlobalArray::create("B", db, ElemType::dbl);
    GlobalArray C = GlobalArray::create("C", dc, ElemType::dbl);

    std::vector<double> ha(static_cast<std::size_t>(m * k));
    std::vector<double> hb(static_cast<std::size_t>(k * n));
    for (std::size_t i = 0; i < ha.size(); ++i)
      ha[i] = std::sin(static_cast<double>(i));
    for (std::size_t i = 0; i < hb.size(); ++i)
      hb[i] = std::cos(static_cast<double>(i) * 0.5);
    if (mpisim::rank() == 0) {
      Patch pa{{0, 0}, {m - 1, k - 1}};
      A.put(pa, ha.data());
      Patch pb{{0, 0}, {k - 1, n - 1}};
      B.put(pb, hb.data());
    }
    A.sync();
    B.sync();
    C.zero();

    GlobalArray::dgemm('n', 'n', 1.0, A, B, 0.0, C);

    std::vector<double> hc(static_cast<std::size_t>(m * n), 0.0);
    Patch pc{{0, 0}, {m - 1, n - 1}};
    C.get(pc, hc.data());
    for (std::int64_t i = 0; i < m; ++i) {
      for (std::int64_t j = 0; j < n; ++j) {
        double ref = 0.0;
        for (std::int64_t kk = 0; kk < k; ++kk)
          ref += ha[static_cast<std::size_t>(i * k + kk)] *
                 hb[static_cast<std::size_t>(kk * n + j)];
        EXPECT_NEAR(hc[static_cast<std::size_t>(i * n + j)], ref, 1e-10);
      }
    }
    C.destroy();
    B.destroy();
    A.destroy();
    armci::finalize();
  });
}

TEST_P(GaTest, DgemmTransposedOperands) {
  mpisim::run(4, Platform::ideal, [&] {
    armci::init(opts());
    const std::int64_t m = 12, k = 10, n = 14;
    const std::int64_t da[] = {k, m}, db[] = {n, k}, dc[] = {m, n};
    GlobalArray A = GlobalArray::create("At", da, ElemType::dbl);
    GlobalArray B = GlobalArray::create("Bt", db, ElemType::dbl);
    GlobalArray C = GlobalArray::create("Ct", dc, ElemType::dbl);

    std::vector<double> ha(static_cast<std::size_t>(k * m));
    std::vector<double> hb(static_cast<std::size_t>(n * k));
    for (std::size_t i = 0; i < ha.size(); ++i) ha[i] = 0.01 * static_cast<double>(i) - 0.3;
    for (std::size_t i = 0; i < hb.size(); ++i) hb[i] = 0.02 * static_cast<double>(i) + 0.1;
    if (mpisim::rank() == 0) {
      Patch pa{{0, 0}, {k - 1, m - 1}};
      A.put(pa, ha.data());
      Patch pb{{0, 0}, {n - 1, k - 1}};
      B.put(pb, hb.data());
    }
    A.sync();
    B.sync();
    C.zero();
    GlobalArray::dgemm('t', 't', 2.0, A, B, 0.0, C);

    std::vector<double> hc(static_cast<std::size_t>(m * n));
    Patch pc{{0, 0}, {m - 1, n - 1}};
    C.get(pc, hc.data());
    for (std::int64_t i = 0; i < m; ++i) {
      for (std::int64_t j = 0; j < n; ++j) {
        double ref = 0.0;
        for (std::int64_t kk = 0; kk < k; ++kk)
          ref += ha[static_cast<std::size_t>(kk * m + i)] *
                 hb[static_cast<std::size_t>(j * k + kk)];
        EXPECT_NEAR(hc[static_cast<std::size_t>(i * n + j)], 2.0 * ref, 1e-10);
      }
    }
    C.destroy();
    B.destroy();
    A.destroy();
    armci::finalize();
  });
}

TEST_P(GaTest, AtomicCounterDistributesTickets) {
  mpisim::run(8, Platform::ideal, [&] {
    armci::init(opts());
    AtomicCounter c = AtomicCounter::create();
    std::vector<std::int64_t> mine;
    for (int i = 0; i < 15; ++i) mine.push_back(c.next());
    for (std::size_t i = 1; i < mine.size(); ++i)
      EXPECT_GT(mine[i], mine[i - 1]);
    armci::barrier();
    // All 8 * 15 increments landed exactly once.
    if (mpisim::rank() == 0) { EXPECT_EQ(c.next(), 120); }
    armci::barrier();
    c.reset(5);
    if (mpisim::rank() == 3) { EXPECT_EQ(c.next(), 5); }
    armci::barrier();
    c.destroy();
    armci::finalize();
  });
}

TEST_P(GaTest, OneDimensionalArray) {
  mpisim::run(3, Platform::ideal, [&] {
    armci::init(opts());
    const std::int64_t dims[] = {100};
    GlobalArray g = GlobalArray::create("vec", dims, ElemType::dbl);
    g.zero();
    Patch r;
    r.lo = {10};
    r.hi = {89};
    if (mpisim::rank() == 2) {
      std::vector<double> buf(80);
      std::iota(buf.begin(), buf.end(), 0.0);
      g.put(r, buf.data());
    }
    g.sync();
    std::vector<double> back(80);
    g.get(r, back.data());
    for (int i = 0; i < 80; ++i) EXPECT_DOUBLE_EQ(back[static_cast<std::size_t>(i)], i);
    g.destroy();
    armci::finalize();
  });
}

TEST_P(GaTest, ThreeDimensionalPatchOps) {
  mpisim::run(8, Platform::ideal, [&] {
    armci::init(opts());
    const std::int64_t dims[] = {12, 10, 8};
    GlobalArray g = GlobalArray::create("cube", dims, ElemType::dbl);
    g.zero();
    Patch r;
    r.lo = {3, 2, 1};
    r.hi = {9, 7, 6};
    if (mpisim::rank() == 0) {
      std::vector<double> buf(static_cast<std::size_t>(r.num_elems()));
      std::iota(buf.begin(), buf.end(), 0.5);
      g.put(r, buf.data());
    }
    g.sync();
    std::vector<double> back(static_cast<std::size_t>(r.num_elems()), -1);
    g.get(r, back.data());
    for (std::size_t i = 0; i < back.size(); ++i)
      EXPECT_DOUBLE_EQ(back[i], 0.5 + static_cast<double>(i));
    g.destroy();
    armci::finalize();
  });
}

TEST(GaTransposeTest, TransposeMatchesReference) {
  mpisim::run(4, Platform::ideal, [] {
    armci::init({});
    const std::int64_t da[] = {18, 26}, db[] = {26, 18};
    GlobalArray a = GlobalArray::create("A", da, ElemType::dbl);
    GlobalArray b = GlobalArray::create("B", db, ElemType::dbl);
    if (mpisim::rank() == 0) {
      std::vector<double> buf(18 * 26);
      std::iota(buf.begin(), buf.end(), 0.0);
      Patch all{{0, 0}, {17, 25}};
      a.put(all, buf.data());
    }
    a.sync();
    b.transpose_from(a);
    std::vector<double> back(26 * 18);
    Patch allb{{0, 0}, {25, 17}};
    b.get(allb, back.data());
    for (std::int64_t i = 0; i < 26; ++i)
      for (std::int64_t j = 0; j < 18; ++j)
        EXPECT_DOUBLE_EQ(back[static_cast<std::size_t>(i * 18 + j)],
                         static_cast<double>(j * 26 + i));
    b.destroy();
    a.destroy();
    armci::finalize();
  });
}

TEST(GaTransposeTest, ShapeMismatchThrows) {
  EXPECT_THROW(mpisim::run(2, Platform::ideal,
                           [] {
                             armci::init({});
                             const std::int64_t da[] = {8, 6};
                             const std::int64_t db[] = {8, 6};  // not reversed
                             GlobalArray a =
                                 GlobalArray::create("A", da, ElemType::dbl);
                             GlobalArray b =
                                 GlobalArray::create("B", db, ElemType::dbl);
                             b.transpose_from(a);
                           }),
               mpisim::MpiError);
}

INSTANTIATE_TEST_SUITE_P(Backends, GaTest,
                         ::testing::Values(armci::Backend::mpi,
                                           armci::Backend::native,
                                           armci::Backend::mpi3),
                         [](const auto& info) {
                           switch (info.param) {
                             case armci::Backend::mpi: return "Mpi";
                             case armci::Backend::native: return "Native";
                             case armci::Backend::mpi3: return "Mpi3";
                           }
                           return "?";
                         });

}  // namespace
}  // namespace ga
