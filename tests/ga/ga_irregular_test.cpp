// Tests for irregular block distributions (GA_Create_irregular) and the
// distribution-preserving duplicate().

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "src/armci/armci.hpp"
#include "src/ga/ga.hpp"
#include "src/mpisim/runtime.hpp"

namespace ga {
namespace {

using mpisim::Platform;

TEST(IrregularDistributionTest, ExplicitBlockBoundaries) {
  const std::int64_t dims[] = {10, 12};
  const std::vector<std::vector<std::int64_t>> starts = {{0, 7}, {0, 2, 9}};
  Distribution d(dims, starts);
  EXPECT_EQ(d.grid(), (std::vector<int>{2, 3}));
  EXPECT_EQ(d.owning_procs(), 6);

  Patch p0 = d.patch_of(0);
  EXPECT_EQ(p0.lo, (std::vector<std::int64_t>{0, 0}));
  EXPECT_EQ(p0.hi, (std::vector<std::int64_t>{6, 1}));
  Patch p5 = d.patch_of(5);
  EXPECT_EQ(p5.lo, (std::vector<std::int64_t>{7, 9}));
  EXPECT_EQ(p5.hi, (std::vector<std::int64_t>{9, 11}));

  // Every element still has exactly one owner.
  std::int64_t total = 0;
  for (int p = 0; p < 6; ++p) total += d.patch_of(p).num_elems();
  EXPECT_EQ(total, 120);
}

TEST(IrregularDistributionTest, InvalidMapsThrow) {
  const std::int64_t dims[] = {10};
  EXPECT_THROW(Distribution(dims, std::vector<std::vector<std::int64_t>>{
                                      {1, 5}}),  // must start at 0
               mpisim::MpiError);
  EXPECT_THROW(Distribution(dims, std::vector<std::vector<std::int64_t>>{
                                      {0, 5, 5}}),  // not increasing
               mpisim::MpiError);
  EXPECT_THROW(Distribution(dims, std::vector<std::vector<std::int64_t>>{
                                      {0, 10}}),  // start beyond extent
               mpisim::MpiError);
}

TEST(IrregularGaTest, CreateIrregularAndTransfer) {
  mpisim::run(4, Platform::ideal, [] {
    armci::init({});
    const std::int64_t dims[] = {10, 10};
    // Deliberately lopsided: rows split 8/2, columns split 3/7.
    const std::vector<std::vector<std::int64_t>> starts = {{0, 8}, {0, 3}};
    GlobalArray g = GlobalArray::create_irregular("irr", dims,
                                                  ElemType::dbl, starts);
    EXPECT_EQ(g.distribution(0).hi, (std::vector<std::int64_t>{7, 2}));
    EXPECT_EQ(g.distribution(3).lo, (std::vector<std::int64_t>{8, 3}));
    g.zero();

    // A patch crossing both split lines touches all four owners.
    Patch r;
    r.lo = {6, 1};
    r.hi = {9, 6};
    EXPECT_EQ(g.locate_region(r).size(), 4u);
    if (mpisim::rank() == 2) {
      std::vector<double> buf(static_cast<std::size_t>(r.num_elems()));
      std::iota(buf.begin(), buf.end(), 1.0);
      g.put(r, buf.data());
    }
    g.sync();
    std::vector<double> back(static_cast<std::size_t>(r.num_elems()), -1.0);
    g.get(r, back.data());
    for (std::size_t i = 0; i < back.size(); ++i)
      EXPECT_DOUBLE_EQ(back[i], 1.0 + static_cast<double>(i));
    g.destroy();
    armci::finalize();
  });
}

TEST(IrregularGaTest, TooManyBlocksThrows) {
  EXPECT_THROW(
      mpisim::run(2, Platform::ideal,
                  [] {
                    armci::init({});
                    const std::int64_t dims[] = {10};
                    const std::vector<std::vector<std::int64_t>> starts = {
                        {0, 3, 6}};  // 3 blocks > 2 processes
                    GlobalArray::create_irregular("big", dims, ElemType::dbl,
                                                  starts);
                  }),
      mpisim::MpiError);
}

TEST(IrregularGaTest, DuplicatePreservesIrregularDistribution) {
  mpisim::run(4, Platform::ideal, [] {
    armci::init({});
    const std::int64_t dims[] = {12};
    const std::vector<std::vector<std::int64_t>> starts = {{0, 1, 2, 3}};
    GlobalArray a = GlobalArray::create_irregular("a", dims, ElemType::dbl,
                                                  starts);
    GlobalArray b = GlobalArray::duplicate("b", a);
    for (int p = 0; p < 4; ++p)
      EXPECT_EQ(a.distribution(p), b.distribution(p));
    // add() requires identical distributions -- it must work on the pair.
    const double x = 2.0, y = 5.0;
    a.fill(&x);
    b.fill(&y);
    GlobalArray c = GlobalArray::duplicate("c", a);
    const double one = 1.0;
    c.add(&one, a, &one, b);
    EXPECT_DOUBLE_EQ(c.ddot(c), 12 * 49.0);
    c.destroy();
    b.destroy();
    a.destroy();
    armci::finalize();
  });
}

TEST(IrregularGaTest, ReadIncOnIrregularBlocks) {
  mpisim::run(3, Platform::ideal, [] {
    armci::init({});
    const std::int64_t dims[] = {9};
    const std::vector<std::vector<std::int64_t>> starts = {{0, 1, 8}};
    GlobalArray g = GlobalArray::create_irregular("cnt", dims,
                                                  ElemType::int64, starts);
    g.zero();
    g.sync();
    const std::int64_t idx[] = {8};  // lives in the last (1-wide) block
    for (int i = 0; i < 5; ++i) g.read_inc(idx, 2);
    g.sync();
    std::int64_t v = 0;
    Patch one{{8}, {8}};
    g.get(one, &v);
    EXPECT_EQ(v, 3 * 5 * 2);
    g.destroy();
    armci::finalize();
  });
}

}  // namespace
}  // namespace ga
