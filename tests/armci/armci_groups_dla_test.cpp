// Integration tests for ARMCI process groups (collective + noncollective
// creation, §V-A), group allocations, direct local access (§V-E), and
// access-mode hints (§VIII-A).

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/armci/armci.hpp"
#include "src/mpisim/runtime.hpp"

namespace armci {
namespace {

using mpisim::Platform;

TEST(ArmciGroupTest, WorldGroupBasics) {
  mpisim::run(4, Platform::ideal, [] {
    init({});
    PGroup w = PGroup::world();
    EXPECT_EQ(w.size(), 4);
    EXPECT_EQ(w.rank(), mpisim::rank());
    EXPECT_EQ(w.absolute_id(2), 2);
    EXPECT_EQ(w.rank_of(3), 3);
    finalize();
  });
}

TEST(ArmciGroupTest, CollectiveSubgroupCreation) {
  mpisim::run(5, Platform::ideal, [] {
    init({});
    const std::vector<int> members{1, 3, 4};
    PGroup g = PGroup::create_collective(members, PGroup::world());
    if (mpisim::rank() == 1 || mpisim::rank() == 3 || mpisim::rank() == 4) {
      ASSERT_TRUE(g.valid());
      EXPECT_EQ(g.size(), 3);
      EXPECT_EQ(g.absolute_id(g.rank()), mpisim::rank());
      // ARMCI_Absolute_id translation both ways.
      EXPECT_EQ(g.rank_of(g.absolute_id(0)), 0);
    } else {
      EXPECT_FALSE(g.valid());
    }
    finalize();
  });
}

TEST(ArmciGroupTest, NoncollectiveCreationOnlyMembersParticipate) {
  mpisim::run(6, Platform::ideal, [] {
    init({});
    // Ranks 1, 2, 4 form a group WITHOUT the other ranks calling anything.
    if (mpisim::rank() == 1 || mpisim::rank() == 2 || mpisim::rank() == 4) {
      const std::vector<int> members{1, 2, 4};
      PGroup g = PGroup::create_noncollective(members, /*tag=*/17);
      ASSERT_TRUE(g.valid());
      EXPECT_EQ(g.size(), 3);
      EXPECT_EQ(g.absolute_id(g.rank()), mpisim::rank());
      // The backing communicator is real: run a collective on it.
      std::int64_t mine = mpisim::rank(), sum = 0;
      g.comm().allreduce(&mine, &sum, 1, mpisim::BasicType::int64,
                         mpisim::Op::sum);
      EXPECT_EQ(sum, 7);
    }
    // Non-members do unrelated work meanwhile.
    finalize();
  });
}

TEST(ArmciGroupTest, NoncollectiveGroupSizes) {
  // Exercise power-of-two and ragged sizes through the recursive merge.
  for (int gsize : {1, 2, 3, 5, 8}) {
    mpisim::run(8, Platform::ideal, [gsize] {
      init({});
      if (mpisim::rank() < gsize) {
        std::vector<int> members;
        for (int r = 0; r < gsize; ++r) members.push_back(r);
        PGroup g = PGroup::create_noncollective(members, 23);
        EXPECT_EQ(g.size(), gsize);
        EXPECT_EQ(g.rank(), mpisim::rank());
        g.barrier();
      }
      finalize();
    });
  }
}

TEST(ArmciGroupTest, GroupAllocationAndTransfer) {
  mpisim::run(6, Platform::ideal, [] {
    init({});
    const std::vector<int> members{0, 2, 5};
    PGroup g = PGroup::create_collective(members, PGroup::world());
    if (g.valid()) {
      std::vector<void*> bases = malloc_group(128, g);
      ASSERT_EQ(bases.size(), 3u);  // indexed by group rank
      g.barrier();
      if (mpisim::rank() == 0) {
        // Communicate with group rank 2 == absolute process 5.
        const char v = 'G';
        put(&v, bases[2], 1, g.absolute_id(2));
        fence(g.absolute_id(2));
      }
      g.barrier();
      if (mpisim::rank() == 5) {
        EXPECT_EQ(static_cast<char*>(bases[2])[0], 'G');
      }
      free_group(bases[static_cast<std::size_t>(g.rank())], g);
    }
    finalize();
  });
}

TEST(ArmciGroupTest, ZeroSizeGroupAllocation) {
  mpisim::run(4, Platform::ideal, [] {
    init({});
    PGroup w = PGroup::world();
    std::vector<void*> bases =
        malloc_group(mpisim::rank() % 2 == 0 ? 64 : 0, w);
    EXPECT_EQ(bases[1], nullptr);
    EXPECT_NE(bases[0], nullptr);
    free_group(bases[static_cast<std::size_t>(mpisim::rank())], w);
    finalize();
  });
}

class ArmciDlaTest : public ::testing::TestWithParam<Backend> {
 protected:
  Options opts() const {
    Options o;
    o.backend = GetParam();
    return o;
  }
};

TEST_P(ArmciDlaTest, AccessBeginEndRoundTrip) {
  mpisim::run(2, Platform::ideal, [&] {
    init(opts());
    std::vector<void*> bases = malloc_world(64 * sizeof(double));
    auto* mine = static_cast<double*>(
        bases[static_cast<std::size_t>(mpisim::rank())]);
    access_begin(mine);
    for (int i = 0; i < 64; ++i) mine[i] = mpisim::rank() * 100.0 + i;
    access_end(mine);
    barrier();
    if (mpisim::rank() == 0) {
      double v = 0;
      get(static_cast<double*>(bases[1]) + 7, &v, sizeof v, 1);
      EXPECT_DOUBLE_EQ(v, 107.0);
    }
    barrier();
    free(bases[static_cast<std::size_t>(mpisim::rank())]);
    finalize();
  });
}

TEST_P(ArmciDlaTest, UnmatchedAccessEndThrows) {
  EXPECT_THROW(mpisim::run(2, Platform::ideal,
                           [&] {
                             init(opts());
                             std::vector<void*> bases = malloc_world(64);
                             access_end(
                                 bases[static_cast<std::size_t>(
                                     mpisim::rank())]);
                           }),
               mpisim::MpiError);
}

TEST_P(ArmciDlaTest, AccessOnNonGlobalPointerThrows) {
  EXPECT_THROW(mpisim::run(2, Platform::ideal,
                           [&] {
                             init(opts());
                             double local = 0;
                             access_begin(&local);
                           }),
               mpisim::MpiError);
}

INSTANTIATE_TEST_SUITE_P(Backends, ArmciDlaTest,
                         ::testing::Values(Backend::mpi, Backend::native,
                                           Backend::mpi3),
                         [](const auto& info) {
                           switch (info.param) {
                             case Backend::mpi: return "Mpi";
                             case Backend::native: return "Native";
                             case Backend::mpi3: return "Mpi3";
                           }
                           return "?";
                         });

// §V-E (MPI backend): while a process holds direct access, a remote
// exclusive epoch on its region must wait -- the DLA epoch serializes.
TEST(ArmciDlaMpiTest, RemoteOpWaitsForAccessEnd) {
  mpisim::run(2, Platform::ideal, [] {
    Options o;
    o.backend = Backend::mpi;
    init(o);
    std::vector<void*> bases = malloc_world(sizeof(std::int64_t));
    auto* mine = static_cast<std::int64_t*>(
        bases[static_cast<std::size_t>(mpisim::rank())]);
    *mine = 0;
    barrier();
    if (mpisim::rank() == 1) {
      access_begin(mine);
      *mine = 1;
      // Signal rank 0 to start its put, then hold the access a moment.
      const int go = 1;
      msg_send(&go, sizeof go, 0, 5);
      *mine = 2;
      access_end(mine);
    } else {
      int go = 0;
      msg_recv(&go, sizeof go, 1, 5);
      const std::int64_t v = 99;
      put(&v, bases[1], sizeof v, 1);  // blocks until access_end
      fence(1);
    }
    barrier();
    if (mpisim::rank() == 1) { EXPECT_EQ(*mine, 99); }
    free(bases[static_cast<std::size_t>(mpisim::rank())]);
    finalize();
  });
}

// §VIII-A: access-mode hints. With accumulate_only, concurrent accumulates
// use shared epochs and still sum correctly.
TEST(ArmciAccessModeTest, AccumulateOnlySharedEpochsSumCorrectly) {
  mpisim::run(8, Platform::ideal, [] {
    Options o;
    o.backend = Backend::mpi;
    init(o);
    std::vector<void*> bases = malloc_world(16 * sizeof(double));
    auto* mine = static_cast<double*>(
        bases[static_cast<std::size_t>(mpisim::rank())]);
    std::memset(mine, 0, 16 * sizeof(double));
    set_access_mode(AccessMode::accumulate_only,
                    bases[static_cast<std::size_t>(mpisim::rank())]);
    barrier();
    std::vector<double> src(16, 1.0);
    const double one = 1.0;
    for (int i = 0; i < 5; ++i)
      acc(AccType::float64, &one, src.data(), bases[0], 16 * sizeof(double),
          0);
    barrier();
    if (mpisim::rank() == 0)
      for (int i = 0; i < 16; ++i) EXPECT_DOUBLE_EQ(mine[i], 40.0);
    set_access_mode(AccessMode::exclusive,
                    bases[static_cast<std::size_t>(mpisim::rank())]);
    free(bases[static_cast<std::size_t>(mpisim::rank())]);
    finalize();
  });
}

TEST(ArmciAccessModeTest, ReadOnlyAllowsConcurrentGets) {
  mpisim::run(8, Platform::ideal, [] {
    Options o;
    o.backend = Backend::mpi;
    init(o);
    std::vector<void*> bases = malloc_world(256 * sizeof(double));
    auto* mine = static_cast<double*>(
        bases[static_cast<std::size_t>(mpisim::rank())]);
    for (int i = 0; i < 256; ++i) mine[i] = mpisim::rank() + i * 0.5;
    barrier();
    set_access_mode(AccessMode::read_only,
                    bases[static_cast<std::size_t>(mpisim::rank())]);
    // All ranks hammer rank 0 with gets under shared locks.
    std::vector<double> buf(256);
    for (int iter = 0; iter < 10; ++iter) {
      get(bases[0], buf.data(), 256 * sizeof(double), 0);
      for (int i = 0; i < 256; ++i) EXPECT_DOUBLE_EQ(buf[static_cast<std::size_t>(i)], i * 0.5);
    }
    barrier();
    set_access_mode(AccessMode::exclusive,
                    bases[static_cast<std::size_t>(mpisim::rank())]);
    free(bases[static_cast<std::size_t>(mpisim::rank())]);
    finalize();
  });
}

}  // namespace
}  // namespace armci
