// Tests for the ARMCI operation-statistics interface, including its use as
// an observability probe: a GA patch access spanning K owners must issue
// exactly K strided ARMCI operations (paper Fig. 2).

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "src/armci/armci.hpp"
#include "src/armci/stats.hpp"
#include "src/ga/ga.hpp"
#include "src/mpisim/runtime.hpp"

namespace armci {
namespace {

using mpisim::Platform;

TEST(ArmciStatsTest, CountersStartAtZero) {
  mpisim::run(2, Platform::ideal, [] {
    init({});
    EXPECT_EQ(stats().puts, 0u);
    EXPECT_EQ(stats().total_bytes(), 0u);
    finalize();
  });
}

TEST(ArmciStatsTest, ContiguousOpsCounted) {
  mpisim::run(2, Platform::ideal, [] {
    init({});
    std::vector<void*> bases = malloc_world(256);
    barrier();
    reset_stats();
    if (mpisim::rank() == 0) {
      char buf[64] = {};
      put(buf, bases[1], 64, 1);
      put(buf, bases[1], 32, 1);
      get(bases[1], buf, 16, 1);
      const double one = 1.0;
      double d[2] = {1, 2};
      acc(AccType::float64, &one, d, bases[1], 16, 1);
      EXPECT_EQ(stats().puts, 2u);
      EXPECT_EQ(stats().put_bytes, 96u);
      EXPECT_EQ(stats().gets, 1u);
      EXPECT_EQ(stats().get_bytes, 16u);
      EXPECT_EQ(stats().accs, 1u);
      EXPECT_EQ(stats().acc_bytes, 16u);
      EXPECT_EQ(stats().total_bytes(), 128u);
    }
    barrier();
    free(bases[static_cast<std::size_t>(mpisim::rank())]);
    finalize();
  });
}

TEST(ArmciStatsTest, StridedAndIovCounted) {
  mpisim::run(2, Platform::ideal, [] {
    init({});
    std::vector<void*> bases = malloc_world(1024);
    barrier();
    reset_stats();
    if (mpisim::rank() == 0) {
      std::vector<char> local(256);
      StridedSpec s;
      s.stride_levels = 1;
      s.count = {32, 4};
      s.src_strides = {32};
      s.dst_strides = {64};
      put_strided(local.data(), bases[1], s, 1);
      EXPECT_EQ(stats().strided_ops, 1u);
      EXPECT_EQ(stats().strided_bytes, 128u);

      Giov g;
      g.bytes = 16;
      for (int i = 0; i < 4; ++i) {
        g.src.push_back(local.data() + i * 16);
        g.dst.push_back(static_cast<char*>(bases[1]) + 512 + i * 32);
      }
      put_iov({&g, 1}, 1);
      EXPECT_EQ(stats().iov_ops, 1u);
      EXPECT_EQ(stats().iov_segments, 4u);
      EXPECT_EQ(stats().iov_bytes, 64u);
    }
    barrier();
    free(bases[static_cast<std::size_t>(mpisim::rank())]);
    finalize();
  });
}

TEST(ArmciStatsTest, SyncAndAtomicsCounted) {
  mpisim::run(2, Platform::ideal, [] {
    init({});
    std::vector<void*> bases = malloc_world(8);
    create_mutexes(1);
    barrier();
    reset_stats();
    lock(0, 0);
    unlock(0, 0);
    std::int64_t old = 0;
    rmw(RmwOp::fetch_and_add_long, &old, bases[0], 1, 0);
    fence(0);
    barrier();
    EXPECT_EQ(stats().mutex_locks, 1u);
    EXPECT_EQ(stats().rmws, 1u);
    EXPECT_GE(stats().fences, 1u);
    EXPECT_GE(stats().barriers, 1u);
    barrier();
    destroy_mutexes();
    free(bases[static_cast<std::size_t>(mpisim::rank())]);
    finalize();
  });
}

TEST(ArmciStatsTest, AllocationsAndFreesCounted) {
  mpisim::run(2, Platform::ideal, [] {
    init({});
    reset_stats();
    std::vector<void*> a = malloc_world(64);
    std::vector<void*> b = malloc_world(64);
    EXPECT_EQ(stats().allocations, 2u);
    free(b[static_cast<std::size_t>(mpisim::rank())]);
    free(a[static_cast<std::size_t>(mpisim::rank())]);
    EXPECT_EQ(stats().frees, 2u);
    finalize();
  });
}

TEST(ArmciStatsTest, ResetZeroesEverything) {
  mpisim::run(2, Platform::ideal, [] {
    init({});
    std::vector<void*> bases = malloc_world(64);
    barrier();
    if (mpisim::rank() == 0) {
      char c = 1;
      put(&c, bases[1], 1, 1);
    }
    reset_stats();
    EXPECT_EQ(stats().puts, 0u);
    EXPECT_EQ(stats().barriers, 0u);
    EXPECT_EQ(stats().allocations, 0u);
    barrier();
    free(bases[static_cast<std::size_t>(mpisim::rank())]);
    finalize();
  });
}

// Observability: direct-local-access epochs (paper §V-E) are counted.
TEST(ArmciStatsTest, DlaEpochsCounted) {
  mpisim::run(2, Platform::ideal, [] {
    init({});
    std::vector<void*> bases = malloc_world(64);
    barrier();
    reset_stats();
    void* mine = bases[static_cast<std::size_t>(mpisim::rank())];
    access_begin(mine);
    static_cast<char*>(mine)[0] = 42;
    access_end(mine);
    EXPECT_EQ(stats().dla_epochs, 1u);
    access_begin(mine);
    access_end(mine);
    EXPECT_EQ(stats().dla_epochs, 2u);
    barrier();
    free(mine);
    finalize();
  });
}

// Observability: a put whose local buffer lives inside the global space
// must stage through a private copy (paper §V-E1), and says so.
TEST(ArmciStatsTest, StagedLocalCopiesCounted) {
  mpisim::run(2, Platform::ideal, [] {
    init({});
    std::vector<void*> bases = malloc_world(256);
    barrier();
    reset_stats();
    if (mpisim::rank() == 0) {
      // Source inside rank 0's own global segment: the backend cannot pass
      // it to MPI while the window is locked, so it stages a copy.
      put(bases[0], bases[1], 64, 1);
      EXPECT_GE(stats().staged_local_copies, 1u);

      // A plain private buffer needs no staging.
      reset_stats();
      char buf[64] = {};
      put(buf, bases[1], 64, 1);
      EXPECT_EQ(stats().staged_local_copies, 0u);
    }
    barrier();
    free(bases[static_cast<std::size_t>(mpisim::rank())]);
    finalize();
  });
}

// Observability: paper Fig. 2 -- one GA put spanning four owners issues
// exactly four strided ARMCI operations.
TEST(ArmciStatsTest, GaPatchDecompositionVisibleInCounters) {
  mpisim::run(4, Platform::ideal, [] {
    init({});
    const std::int64_t dims[] = {64, 64};
    ga::GlobalArray g = ga::GlobalArray::create("fig2", dims,
                                                ga::ElemType::dbl);
    g.sync();
    reset_stats();
    if (mpisim::rank() == 0) {
      ga::Patch r;
      r.lo = {16, 16};
      r.hi = {47, 47};
      std::vector<double> buf(32 * 32);
      std::iota(buf.begin(), buf.end(), 0.0);
      g.put(r, buf.data());
      EXPECT_EQ(stats().strided_ops, 4u);  // one per owner
      EXPECT_EQ(stats().strided_bytes, 32u * 32u * 8u);

      // A patch inside one owner: exactly one strided op.
      ga::Patch small;
      small.lo = {0, 0};
      small.hi = {7, 7};
      g.put(small, buf.data());
      EXPECT_EQ(stats().strided_ops, 5u);
    }
    g.sync();
    g.destroy();
    finalize();
  });
}

TEST(ArmciStatsTest, GaScatterUsesIovOps) {
  mpisim::run(4, Platform::ideal, [] {
    init({});
    const std::int64_t dims[] = {16, 16};
    ga::GlobalArray g = ga::GlobalArray::create("sc", dims, ga::ElemType::dbl);
    g.sync();
    reset_stats();
    if (mpisim::rank() == 0) {
      // One element in each quadrant: four owners -> four IOV operations.
      std::vector<std::int64_t> subs{2, 2, 2, 12, 12, 2, 12, 12};
      std::vector<double> vals{1, 2, 3, 4};
      g.scatter(vals.data(), subs, 4);
      EXPECT_EQ(stats().iov_ops, 4u);
      EXPECT_EQ(stats().iov_segments, 4u);
    }
    g.sync();
    g.destroy();
    finalize();
  });
}

}  // namespace
}  // namespace armci
